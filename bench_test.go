// Package tack's root benchmark harness: one testing.B benchmark per table
// and figure in the TACK paper's evaluation. Each benchmark runs the
// corresponding experiment in quick mode and reports the headline series as
// custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates (a scaled-down version of) the paper's entire evaluation.
// Run `go run ./cmd/tackbench all` for the full-length tables.
package tack

import (
	"testing"

	"github.com/tacktp/tack/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFig1WLANGoodput regenerates Figure 1: the headline ACK-reduction
// and goodput-improvement preview across 802.11 standards.
func BenchmarkFig1WLANGoodput(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3AckContention regenerates Figure 3: data/ACK throughput
// contention under 1:1 … 16:1 acking over 802.11n.
func BenchmarkFig3AckContention(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig5aIACKHoLB regenerates Figure 5(a): receive-buffer blocking
// with and without loss-event IACKs.
func BenchmarkFig5aIACKHoLB(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5bRichTack regenerates Figure 5(b): utilization vs ACK-path
// loss for TACK-rich / TACK-poor / TCP BBR.
func BenchmarkFig5bRichTack(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig6aRoundTripTiming regenerates Figure 6(a): sampled vs
// advanced RTTmin tracking.
func BenchmarkFig6aRoundTripTiming(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6bTimingImpact regenerates Figure 6(b): latency/loss impact
// of the advanced round-trip timing.
func BenchmarkFig6bTimingImpact(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig8AckFrequency regenerates Figure 8: the ACK-frequency
// reduction analysis over the 802.11 family.
func BenchmarkFig8AckFrequency(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9aGoodputGain regenerates Figure 9(a): goodput improvement
// across standards and RTTs.
func BenchmarkFig9aGoodputGain(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9bIdealGoodput regenerates Figure 9(b): the ideal goodput
// trend of ACK thinning against the UDP baseline and PHY capacity.
func BenchmarkFig9bIdealGoodput(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig10aActualGoodput regenerates Figure 10(a): actual TCP-TACK vs
// TCP BBR goodput per standard.
func BenchmarkFig10aActualGoodput(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFig10bAckThinning regenerates Figure 10(b): legacy TCP under ACK
// thinning (L = 1…16) against TACK.
func BenchmarkFig10bAckThinning(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkFig11Miracast regenerates Figure 11: the Miracast projection A/B
// (rebuffering and macroblocking).
func BenchmarkFig11Miracast(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig13Hybrid regenerates Figure 13: the WLAN+WAN hybrid matrix.
func BenchmarkFig13Hybrid(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Ranking regenerates Figure 14: the Pantheon-style power-
// metric ranking over a randomized WAN ensemble.
func BenchmarkFig14Ranking(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15Friendliness regenerates Figure 15: TCP friendliness ratios
// on shared bottlenecks.
func BenchmarkFig15Friendliness(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16BetaBound regenerates Figure 16 / Appendix B.1: the β lower
// bound and buffer-requirement table.
func BenchmarkFig16BetaBound(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17FrequencyModel regenerates Figure 17 / Appendix B.4: the
// ACK-frequency surface and its pivot points.
func BenchmarkFig17FrequencyModel(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkExtSplit runs the §7 TCP-splitting extension experiment.
func BenchmarkExtSplit(b *testing.B) { runExperiment(b, "ext-split") }

// BenchmarkExtReorder runs the §7 reordering / adaptive-IACK-delay
// extension experiment.
func BenchmarkExtReorder(b *testing.B) { runExperiment(b, "ext-reorder") }

// BenchmarkExtPacing runs the §5.3 pacing-vs-burst ablation.
func BenchmarkExtPacing(b *testing.B) { runExperiment(b, "ext-pacing") }
