package tack_test

// End-to-end acceptance test for the observability plane: ≥8 live
// connections are driven through a netem proxy, a mid-flow NAT rebind
// wedges every one of them, and the test requires that (a) the debug
// endpoint keeps serving valid Prometheus output and per-connection
// JSON all the way through the failure, (b) the anomaly detectors fire
// and dump flight-recorder post-mortems, and (c) the dumps are ordinary
// trace files the analyzer parses, ending in the anomaly that caused
// them.

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack"
	"github.com/tacktp/tack/internal/endpoint"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
)

// freeTCPAddr reserves an ephemeral TCP port and returns it for use as
// a debug listen address (closed before use; the tiny reuse race is
// acceptable in tests).
func freeTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// expositionLine matches one valid Prometheus text-format line.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9.eE+-]+(e[+-][0-9]+)?)$`)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(body)
}

func TestObservabilityPlaneUnderChaosStall(t *testing.T) {
	const nConns = 8
	dumpDir := t.TempDir()
	debugAddr := freeTCPAddr(t)
	reg := tack.NewMetrics()

	srv, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{
		Transport:   tack.Config{Mode: tack.ModeTACK},
		IdleTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy, err := netem.NewUDPProxy(netem.ProxyConfig{Target: srv.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// The client side carries the senders whose stalls we want recorded:
	// a short MinRTO makes StallRTOs×RTO trip fast after the rebind cuts
	// the ack path.
	cli, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{
		Transport: tack.Config{
			Mode: tack.ModeTACK, TransferBytes: 1 << 40, Metrics: reg,
			MinRTO: 50 * sim.Millisecond, MaxRTO: 200 * sim.Millisecond,
		},
		IdleTimeout:   5 * time.Second,
		DebugAddr:     debugAddr,
		PostMortemDir: dumpDir,
		StallRTOs:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for i := 0; i < nConns; i++ {
			c, err := srv.AcceptTimeout(30 * time.Second)
			if err != nil {
				return
			}
			go c.Wait(60 * time.Second)
		}
	}()

	conns := make([]*tack.Conn, 0, nConns)
	for i := 0; i < nConns; i++ {
		c, err := cli.Dial(proxy.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}

	// Scrape mid-transfer, pre-failure: every line must be valid
	// exposition format and the conns route must list all senders.
	time.Sleep(200 * time.Millisecond)
	metricsURL := "http://" + debugAddr + "/metrics"
	for _, line := range strings.Split(strings.TrimRight(scrape(t, metricsURL), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line mid-run: %q", line)
		}
	}
	var states []endpoint.ConnState
	if err := json.Unmarshal([]byte(scrape(t, "http://"+debugAddr+"/debug/tack/conns")), &states); err != nil {
		t.Fatalf("conns route: %v", err)
	}
	if len(states) != nConns {
		t.Fatalf("conns route listed %d connections, want %d", len(states), nConns)
	}
	for _, s := range states {
		if s.Role != "sender" || s.FlightRecorded == 0 {
			t.Errorf("conn %08x: role=%s flight_recorded=%d, want recording sender",
				s.ConnID, s.Role, s.FlightRecorded)
		}
	}

	// Yank the path: every sender loses its ack stream at once.
	if err := proxy.Rebind(); err != nil {
		t.Fatal(err)
	}

	// The stall detectors (4 × ~75 ms RTO) must fire on every sender and
	// dump well before the 5 s idle timeout reaps the connections. Other
	// classes (retx_storm) may legitimately fire too; the gate is on the
	// stall dumps specifically.
	deadline := time.Now().Add(10 * time.Second)
	var stallDumps []string
	for time.Now().Before(deadline) {
		stallDumps, _ = filepath.Glob(filepath.Join(dumpDir, "postmortem-*-stall.jsonl"))
		if len(stallDumps) >= nConns && reg.Counter("ep.anomaly.stall").Value() >= nConns {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(stallDumps) < nConns {
		t.Fatalf("got %d stall post-mortem dumps, want >= %d (ep.anomaly.stall=%d)",
			len(stallDumps), nConns, reg.Counter("ep.anomaly.stall").Value())
	}
	dumps, _ := filepath.Glob(filepath.Join(dumpDir, "postmortem-*.jsonl"))

	// /metrics must still scrape cleanly while the endpoint is wedged,
	// and must now carry the anomaly counters.
	wedged := scrape(t, metricsURL)
	for _, line := range strings.Split(strings.TrimRight(wedged, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line while wedged: %q", line)
		}
	}
	if !strings.Contains(wedged, "tack_ep_anomaly_stall") {
		t.Error("/metrics missing tack_ep_anomaly_stall after stall fired")
	}
	if reg.Counter("ep.anomaly.stall").Value() < nConns {
		t.Errorf("ep.anomaly.stall = %d, want >= %d", reg.Counter("ep.anomaly.stall").Value(), nConns)
	}

	// Each dump (any class) must be a parseable trace whose analysis
	// reports its anomaly, alongside the flow's real protocol history
	// (acks/data); stall dumps must specifically attribute the stall.
	for _, path := range dumps {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		events, err := telemetry.DecodeJSONL(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(events) == 0 {
			t.Fatalf("%s: empty dump", path)
		}
		var sawAnomaly, sawProtocol bool
		for _, e := range events {
			switch e.Kind {
			case telemetry.KindAnomaly:
				sawAnomaly = true
			case telemetry.KindAckReceived, telemetry.KindDataSent, telemetry.KindRTOFired:
				sawProtocol = true
			}
		}
		if !sawAnomaly || !sawProtocol {
			t.Errorf("%s: anomaly=%v protocol=%v, want both in dump", path, sawAnomaly, sawProtocol)
		}
		summary := telemetry.Analyze(events)
		if len(summary.Flows) != 1 {
			t.Fatalf("%s: analyzer found %d flows, want 1", path, len(summary.Flows))
		}
		if len(summary.Flows[0].Anomalies) == 0 {
			t.Errorf("%s: analyzer reported no anomalies", path)
		}
		if strings.HasSuffix(path, "-stall.jsonl") && summary.Flows[0].Anomalies["stall"] == 0 {
			t.Errorf("%s: analyzer missed the stall: %v", path, summary.Flows[0].Anomalies)
		}
		if !strings.Contains(summary.String(), "ANOMALIES: ") {
			t.Errorf("%s: report missing ANOMALIES line", path)
		}
	}

	// Wedged connections must terminate (idle timeout), never hang.
	for i, c := range conns {
		if err := c.Wait(30 * time.Second); err == nil {
			t.Errorf("conn %d completed a 1 TiB transfer through a dead path", i)
		}
	}
	acceptWG.Wait()
}

// TestFlightRecorderDisabled pins the opt-out: FlightRecorder < 0 must
// leave connections ring-less and snapshots at zero recorded events.
func TestFlightRecorderDisabled(t *testing.T) {
	srv, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{
		Transport:      tack.Config{Mode: tack.ModeTACK},
		FlightRecorder: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	accepted := make(chan *tack.Conn, 1)
	go func() {
		c, err := srv.AcceptTimeout(10 * time.Second)
		if err == nil {
			c.Wait(0)
			accepted <- c
		}
	}()
	cli, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{
		Transport:      tack.Config{Mode: tack.ModeTACK, TransferBytes: 64 << 10},
		FlightRecorder: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	c, err := cli.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.FlightRecorder() != nil {
		t.Error("client ring present with FlightRecorder: -1")
	}
	sc := <-accepted
	if sc.FlightRecorder() != nil {
		t.Error("server ring present with FlightRecorder: -1")
	}
}
