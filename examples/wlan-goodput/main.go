// wlan-goodput: the paper's headline scenario — TCP-TACK vs legacy TCP BBR
// over a simulated 802.11n WLAN, printing goodput, acknowledgment counts
// and medium statistics side by side.
//
// Run with: go run ./examples/wlan-goodput [-std b|g|n|ac] [-rtt 80ms] [-dur 10s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

func main() {
	stdName := flag.String("std", "n", "802.11 standard: b, g, n, ac")
	rtt := flag.Duration("rtt", 80*time.Millisecond, "end-to-end RTT (added by a fast WAN hop)")
	dur := flag.Duration("dur", 10*time.Second, "measurement duration")
	flag.Parse()

	var std phy.Standard
	switch *stdName {
	case "b":
		std = phy.Std80211b
	case "g":
		std = phy.Std80211g
	case "n":
		std = phy.Std80211n
	case "ac":
		std = phy.Std80211ac
	default:
		log.Fatalf("unknown standard %q", *stdName)
	}

	run := func(cfg transport.Config, label string) (goodput float64, acks, data int) {
		loop := sim.NewLoop(7)
		path, medium, _, _ := topo.HybridPath(loop,
			topo.WLANConfig{Standard: std},
			topo.WANConfig{RateBps: 2e9, OWD: sim.Time(*rtt) / 2})
		flow, err := topo.NewFlow(loop, cfg, path)
		if err != nil {
			log.Fatal(err)
		}
		flow.Start()
		loop.RunUntil(sim.Time(*dur))
		goodput = float64(flow.Receiver.Delivered()) * 8 / dur.Seconds()
		acks = flow.Receiver.Stats.AcksSent()
		data = flow.Receiver.Stats.DataPackets
		fmt.Printf("%-10s %8.1f Mbit/s   %7d data pkts   %6d acks (1:%0.1f)   collisions %v\n",
			label, goodput/1e6, data, acks, float64(data)/float64(acks),
			medium.CollisionTime().Duration().Round(time.Microsecond))
		return
	}

	fmt.Printf("802.11%s, RTT %v, %v measurement\n\n", *stdName, *rtt, *dur)
	tackG, tackAcks, _ := run(transport.Config{Mode: transport.ModeTACK, CC: "bbr", RichTACK: true}, "TCP-TACK")
	bbrG, bbrAcks, _ := run(transport.Config{Mode: transport.ModeLegacy, CC: "bbr"}, "TCP BBR")

	fmt.Printf("\nTACK reduced acks by %.1f%% and improved goodput by %.1f%%\n",
		(1-float64(tackAcks)/float64(bbrAcks))*100, (tackG/bbrG-1)*100)
}
