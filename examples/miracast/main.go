// miracast: an A/B screen-projection comparison over a noisy 802.11n link —
// an RTP-over-UDP pipeline (unreliable: lost fragments macroblock) against
// TCP-TACK (reliable: late frames rebuffer), echoing the paper's §6.4
// deployment study.
//
// Run with: go run ./examples/miracast [-dur 30s] [-bitrate 55]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/tacktp/tack/internal/mac"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
	"github.com/tacktp/tack/internal/video"
)

const per = 0.06 // noisy-room per-MPDU error rate

func main() {
	durFlag := flag.Duration("dur", 30*time.Second, "session duration")
	bitrate := flag.Float64("bitrate", 55, "video bitrate in Mbit/s")
	flag.Parse()
	dur := sim.Time(*durFlag)
	bps := *bitrate * 1e6

	fmt.Printf("projection session: %v at %.0f Mbit/s over noisy 802.11n (PER %.0f%%)\n\n",
		*durFlag, *bitrate, per*100)
	rebufRTP, macroRTP := runRTP(dur, bps)
	fmt.Printf("%-10s rebuffering %5.1f%%   macroblocking %5.0f /30min\n", "RTP+UDP", rebufRTP*100, macroRTP)
	rebufT, macroT := runTACK(dur, bps)
	fmt.Printf("%-10s rebuffering %5.1f%%   macroblocking %5.0f /30min\n", "TCP-TACK", rebufT*100, macroT)
	fmt.Println("\nexpected shape (paper Fig. 11): only RTP macroblocks; TACK's rebuffering is low.")
}

// runTACK streams frames through the reliable TACK transport.
func runTACK(dur sim.Time, bitrate float64) (rebuffer, macroblocks float64) {
	loop := sim.NewLoop(3)
	path, _ := topo.WLANPath(loop, topo.WLANConfig{Standard: phy.Std80211n, PER: per})
	// Appendix B.3: real-time applications run TACK with L=1 (the
	// TCP_QUICKACK-like option).
	cfg := transport.Config{Mode: transport.ModeTACK, CC: "bbr", RichTACK: true, AppPaced: true}
	cfg.Params.L = 1
	cfg.Params.SettleFraction = 8
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		log.Fatal(err)
	}
	flow.Start()

	src := video.NewSource(bitrate)
	playout := video.NewPlayout(src.FPS, 5)
	var frameEnds []uint64
	var total uint64
	next := 0
	var tick func()
	tick = func() {
		n := src.NextFrameBytes()
		total += uint64(n)
		frameEnds = append(frameEnds, total)
		flow.Sender.AddBytes(int64(n))
		delivered := uint64(flow.Receiver.Delivered())
		for next < len(frameEnds) && frameEnds[next] <= delivered {
			playout.OnFrame(loop.Now(), false)
			next++
		}
		playout.Tick(loop.Now())
		loop.After(src.Interval(), tick)
	}
	loop.After(0, tick)
	loop.RunUntil(dur)
	playout.Finish(dur)
	return playout.RebufferRatio(dur), playout.MacroblockPer30Min(dur)
}

// runRTP streams raw fragments with a fixed render deadline.
func runRTP(dur sim.Time, bitrate float64) (rebuffer, macroblocks float64) {
	loop := sim.NewLoop(3)
	m := mac.NewMedium(loop, phy.Get(phy.Std80211n))
	m.PER = per
	// The socket queue absorbs a whole frame burst (a frame spans ~80
	// fragments at this bitrate).
	phone := m.AddStation("phone", 512)
	tv := m.AddStation("tv", 512)

	type fstate struct {
		need, got int
		due       sim.Time
	}
	frames := map[int]*fstate{}
	tv.Receive = func(f *mac.Frame) {
		if st, ok := frames[f.Payload.(int)]; ok {
			st.got++
		}
	}

	src := video.NewSource(bitrate)
	playout := video.NewPlayout(src.FPS, 5)
	deadline := 6 * src.Interval() // ~100 ms playout budget
	id := 0
	var tick func()
	tick = func() {
		now := loop.Now()
		n := src.NextFrameBytes()
		nf := (n + 1438) / 1439
		frames[id] = &fstate{need: nf, due: now + deadline}
		for i := 0; i < nf; i++ {
			phone.Send(tv, 1439+79, id)
		}
		for fid, st := range frames {
			if now >= st.due {
				playout.OnFrame(now, st.got < st.need)
				delete(frames, fid)
			}
		}
		playout.Tick(now)
		id++
		loop.After(src.Interval(), tick)
	}
	loop.After(0, tick)
	loop.RunUntil(dur)
	playout.Finish(dur)
	return playout.RebufferRatio(dur), playout.MacroblockPer30Min(dur)
}
