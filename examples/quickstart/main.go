// Quickstart: transfer a bounded stream between a TCP-TACK sender and
// receiver over an in-memory emulated WAN path, then print the transfer
// outcome and acknowledgment statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

func main() {
	// A deterministic discrete-event loop drives everything.
	loop := sim.NewLoop(42)

	// 50 Mbit/s bottleneck, 40 ms RTT, light (0.5%) data-path loss.
	path, fwd, _ := topo.WANPath(loop, topo.WANConfig{
		RateBps:  50e6,
		OWD:      20 * sim.Millisecond,
		DataLoss: 0.005,
	})

	// TCP-TACK with the paper's defaults (β=4, L=2, rich TACKs, BBR).
	cfg := transport.Config{
		Mode:          transport.ModeTACK,
		CC:            "bbr",
		RichTACK:      true,
		TransferBytes: 16 << 20, // 16 MiB
	}
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		log.Fatal(err)
	}

	var doneAt sim.Time
	flow.Sender.OnDone = func() { doneAt = loop.Now() }
	flow.Start()
	loop.RunUntil(60 * sim.Second)

	if !flow.Sender.Done() {
		log.Fatalf("transfer incomplete: %d/%d bytes acked",
			flow.Sender.CumAcked(), cfg.TransferBytes)
	}
	goodput := float64(cfg.TransferBytes) * 8 / doneAt.Seconds() / 1e6
	snd, rcv := flow.Sender.Stats, flow.Receiver.Stats

	fmt.Printf("transferred %d MiB in %v  (%.1f Mbit/s goodput)\n",
		cfg.TransferBytes>>20, doneAt, goodput)
	fmt.Printf("data packets: %d (retransmits %d, link drops shown below)\n",
		snd.DataPackets, snd.Retransmits)
	fmt.Printf("acknowledgments: %d TACKs + %d IACKs (%d loss, %d window) = 1 ack per %.1f data packets\n",
		rcv.TACKsSent, rcv.IACKsSent, rcv.LossIACKs, rcv.WindowIACKs,
		float64(rcv.DataPackets)/float64(rcv.AcksSent()))
	fmt.Printf("link: %d sent, %d dropped by loss model\n", fwd.Sent, fwd.Dropped)
	if min, ok := flow.Sender.RTTMin(); ok {
		fmt.Printf("sender RTTmin estimate: %v (true floor 40ms + serialization)\n", min)
	}
}
