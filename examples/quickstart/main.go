// Quickstart: transfer a bounded stream between a TCP-TACK sender and
// receiver over real UDP sockets on loopback, using only the public
// tack package, then print the transfer outcome and acknowledgment
// statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tacktp/tack"
)

func main() {
	const size = 16 << 20 // 16 MiB

	// TCP-TACK with the paper's defaults (β=4, L=2, rich TACKs, BBR).
	cfg := tack.Config{
		Mode:          tack.ModeTACK,
		CC:            "bbr",
		RichTACK:      true,
		TransferBytes: size,
	}

	// One endpoint serves every inbound connection on its socket.
	srv, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	start := time.Now()
	conn, err := tack.Dial(srv.LocalAddr().String(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	served, err := srv.Accept()
	if err != nil {
		log.Fatal(err)
	}

	// Wait for both halves: the sender finishes when every byte is
	// acknowledged, the receiver shortly after its completion linger.
	if err := conn.Wait(60 * time.Second); err != nil {
		log.Fatalf("transfer failed: %v", err)
	}
	elapsed := time.Since(start)
	if err := served.Wait(30 * time.Second); err != nil {
		log.Fatalf("server side: %v", err)
	}

	goodput := float64(size) * 8 / elapsed.Seconds() / 1e6
	snd, rcv := conn.Sender().Stats, served.Receiver().Stats

	fmt.Printf("transferred %d MiB in %v  (%.1f Mbit/s goodput)\n",
		size>>20, elapsed.Round(time.Millisecond), goodput)
	fmt.Printf("data packets: %d (retransmits %d)\n",
		snd.DataPackets, snd.Retransmits)
	fmt.Printf("acknowledgments: %d TACKs + %d IACKs (%d loss, %d window) = 1 ack per %.1f data packets\n",
		rcv.TACKsSent, rcv.IACKsSent, rcv.LossIACKs, rcv.WindowIACKs,
		float64(rcv.DataPackets)/float64(rcv.AcksSent()))
	if min, ok := conn.Sender().RTTMin(); ok {
		fmt.Printf("sender RTTmin estimate: %v\n", min)
	}
}
