// Quickstart: transfer 16 MiB between a TCP-TACK sender and receiver
// over real UDP sockets on loopback, using only the public tack package
// and the stream API: the client opens a stream on a multiplexed
// connection and writes the payload; the server accepts the stream and
// reads it to EOF. The transfer outcome and acknowledgment statistics
// are printed at the end.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"github.com/tacktp/tack"
)

func main() {
	const size = 16 << 20 // 16 MiB

	// TCP-TACK with the paper's defaults (β=4, L=2, rich TACKs, BBR),
	// plus stream multiplexing. A single stream is the modern shape of
	// the old single-bytestream pipe; more OpenStream calls would share
	// the same connection.
	streams := tack.DefaultStreamConfig()
	cfg := tack.Config{
		Mode:     tack.ModeTACK,
		CC:       "bbr",
		RichTACK: true,
		Streams:  &streams,
	}

	// One endpoint serves every inbound connection on its socket.
	srv, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Server: accept the connection, then its first stream, and drain it.
	done := make(chan int64, 1)
	servedCh := make(chan *tack.Conn, 1)
	go func() {
		served, err := srv.AcceptTimeout(30 * time.Second)
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		servedCh <- served
		rs, err := served.AcceptStream(30 * time.Second)
		if err != nil {
			log.Fatalf("accept stream: %v", err)
		}
		n, err := io.Copy(io.Discard, rs)
		if err != nil {
			log.Fatalf("read stream: %v", err)
		}
		done <- n
	}()

	start := time.Now()
	conn, err := cli.Dial(srv.LocalAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	ss, err := conn.OpenStream()
	if err != nil {
		log.Fatal(err)
	}
	chunk := make([]byte, 64<<10)
	for sent := 0; sent < size; sent += len(chunk) {
		if _, err := ss.Write(chunk); err != nil {
			log.Fatalf("write: %v", err)
		}
	}
	ss.Close() // FIN: no more data on this stream

	got := <-done
	elapsed := time.Since(start)
	if got != size {
		log.Fatalf("delivered %d bytes, want %d", got, size)
	}

	// Tear the connection down gracefully, then read the final stats
	// (safe once Wait reports the connection finished).
	served := <-servedCh
	conn.Close()
	if err := conn.Wait(30 * time.Second); err != nil {
		log.Fatalf("close: %v", err)
	}
	if err := served.Wait(30 * time.Second); err != nil {
		log.Fatalf("server side: %v", err)
	}

	goodput := float64(size) * 8 / elapsed.Seconds() / 1e6
	snd, rcv := conn.Sender().Stats, served.Receiver().Stats

	fmt.Printf("streamed %d MiB in %v  (%.1f Mbit/s goodput)\n",
		size>>20, elapsed.Round(time.Millisecond), goodput)
	fmt.Printf("data packets: %d (retransmits %d)\n",
		snd.DataPackets, snd.Retransmits)
	fmt.Printf("acknowledgments: %d TACKs + %d IACKs (%d loss, %d window) = 1 ack per %.1f data packets\n",
		rcv.TACKsSent, rcv.IACKsSent, rcv.LossIACKs, rcv.WindowIACKs,
		float64(rcv.DataPackets)/float64(rcv.AcksSent()))
	if min, ok := conn.Sender().RTTMin(); ok {
		fmt.Printf("sender RTTmin estimate: %v\n", min)
	}
}
