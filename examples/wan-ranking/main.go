// wan-ranking: a miniature Pantheon — every implemented transport scheme
// races over a randomized ensemble of emulated WAN paths and is ranked per
// scenario by Kleinrock's power metric log(throughput / OWD95), echoing the
// paper's §6.6 horizontal evaluation.
//
// Run with: go run ./examples/wan-ranking [-scenarios 8] [-dur 10s]
package main

import (
	"flag"
	"fmt"
	"time"

	"github.com/tacktp/tack/internal/pantheon"
	"github.com/tacktp/tack/internal/sim"
)

func main() {
	n := flag.Int("scenarios", 8, "number of randomized path scenarios")
	dur := flag.Duration("dur", 10*time.Second, "per-run duration")
	seed := flag.Int64("seed", 1, "scenario seed")
	flag.Parse()

	scenarios := pantheon.SampleScenarios(*n, *seed, sim.Time(*dur))
	schemes := pantheon.DefaultSchemes()
	fmt.Printf("racing %d schemes over %d scenarios (%v each)...\n\n", len(schemes), *n, *dur)

	rankings, raw := pantheon.Evaluate(scenarios, schemes)

	fmt.Println("scenario details and winners:")
	for i, sc := range scenarios {
		best := raw[i][0]
		for _, r := range raw[i] {
			if r.Power > best.Power {
				best = r
			}
		}
		fmt.Printf("  %-28s winner: %-10s (%.1f Mbit/s, OWD95 %v)\n",
			sc.String(), best.Scheme, best.Goodput/1e6,
			best.OWD95.Duration().Round(time.Millisecond))
	}

	fmt.Println("\noverall ranking (mean per-scenario rank; smaller is better):")
	for i, r := range rankings {
		fmt.Printf("  %d. %-12s mean %.2f  median %.0f  range [%.0f, %.0f]\n",
			i+1, r.Scheme, r.Mean, r.Ranks.Median(), r.Ranks.Min(), r.Ranks.Max())
	}
}
