// udptransfer: runs real TCP-TACK transfers over UDP sockets on loopback
// — both endpoints in one process — and prints goodput plus the
// data-to-acknowledgment ratio. This exercises the identical sans-IO
// protocol engine the simulator drives, over the kernel's real UDP path,
// with any number of concurrent connections multiplexed on one server
// socket.
//
// In TACK mode each flow carries its payload on a multiplexed stream
// (one stream per connection — the single-pipe workload expressed through
// the stream API; -streams N fans each connection out to N concurrent
// streams). Legacy mode has no stream layer and keeps the bounded
// synthetic pipe (Config.TransferBytes).
//
// Run with: go run ./examples/udptransfer [-bytes 33554432] [-mode tack|legacy] [-flows 1] [-streams 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"github.com/tacktp/tack"
)

func main() {
	size := flag.Int64("bytes", 32<<20, "transfer size in bytes (per flow)")
	mode := flag.String("mode", "tack", "protocol mode: tack or legacy")
	flows := flag.Int("flows", 1, "concurrent connections")
	nStreams := flag.Int("streams", 1, "streams per connection (tack mode)")
	flag.Parse()

	cfg := tack.Config{Mode: tack.ModeTACK, CC: "bbr", RichTACK: true}
	useStreams := *mode != "legacy"
	if useStreams {
		streams := tack.DefaultStreamConfig()
		streams.MaxStreams = *nStreams + 1
		cfg.Streams = &streams
	} else {
		cfg.Mode = tack.ModeLegacy
		cfg.TransferBytes = *size
	}

	srv, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Server side: accept every connection; in stream mode drain each
	// connection's streams to EOF, in legacy mode wait for the bounded
	// transfer to complete.
	served := make(chan *tack.Conn, *flows)
	go func() {
		for i := 0; i < *flows; i++ {
			c, err := srv.Accept()
			if err != nil {
				log.Fatalf("accept: %v", err)
			}
			go func() {
				if useStreams {
					var drain sync.WaitGroup
					for s := 0; s < *nStreams; s++ {
						rs, err := c.AcceptStream(time.Minute)
						if err != nil {
							log.Fatalf("server conn %d accept stream: %v", c.ConnID(), err)
						}
						drain.Add(1)
						go func(rs *tack.RecvStream) {
							defer drain.Done()
							if _, err := io.Copy(io.Discard, rs); err != nil {
								log.Fatalf("server conn %d stream %d: %v", c.ConnID(), rs.ID(), err)
							}
						}(rs)
					}
					drain.Wait()
				} else if err := c.Wait(5 * time.Minute); err != nil {
					log.Fatalf("server conn %d: %v", c.ConnID(), err)
				}
				served <- c
			}()
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	conns := make([]*tack.Conn, *flows)
	for i := range conns {
		c, err := cli.Dial(srv.LocalAddr().String())
		if err != nil {
			log.Fatalf("dial: %v", err)
		}
		conns[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !useStreams {
				if err := c.Wait(5 * time.Minute); err != nil {
					log.Fatalf("conn %d: %v", c.ConnID(), err)
				}
				return
			}
			// Split the flow's bytes across its streams; each stream
			// writes its share and FINs.
			var sw sync.WaitGroup
			share := *size / int64(*nStreams)
			for s := 0; s < *nStreams; s++ {
				ss, err := c.OpenStream()
				if err != nil {
					log.Fatalf("conn %d open stream: %v", c.ConnID(), err)
				}
				sw.Add(1)
				go func(ss *tack.SendStream, n int64) {
					defer sw.Done()
					chunk := make([]byte, 64<<10)
					for sent := int64(0); sent < n; {
						step := int64(len(chunk))
						if n-sent < step {
							step = n - sent
						}
						if _, err := ss.Write(chunk[:step]); err != nil {
							log.Fatalf("stream %d write: %v", ss.ID(), err)
						}
						sent += step
					}
					ss.Close()
				}(ss, share)
			}
			sw.Wait()
		}()
	}
	wg.Wait()

	// In stream mode the transfer is done when every server-side drain
	// saw EOF; collect the served connections (and with them, elapsed).
	servedConns := make([]*tack.Conn, 0, *flows)
	for i := 0; i < *flows; i++ {
		servedConns = append(servedConns, <-served)
	}
	elapsed := time.Since(start)

	// Close stream-mode connections gracefully so the final statistics
	// are stable to read.
	if useStreams {
		for _, c := range conns {
			c.Close()
			if err := c.Wait(time.Minute); err != nil {
				log.Fatalf("close conn %d: %v", c.ConnID(), err)
			}
		}
		for _, c := range servedConns {
			if err := c.Wait(time.Minute); err != nil {
				log.Fatalf("server close conn %d: %v", c.ConnID(), err)
			}
		}
	}

	total := *size * int64(*flows)
	fmt.Printf("mode=%s: %d flow(s) x %d MiB over loopback UDP in %v (%.0f Mbit/s aggregate)\n",
		*mode, *flows, *size>>20, elapsed.Round(time.Millisecond),
		float64(total)*8/elapsed.Seconds()/1e6)
	var st tack.SenderStats
	for _, c := range conns {
		s := c.Sender().Stats
		st.DataPackets += s.DataPackets
		st.Retransmits += s.Retransmits
		st.Timeouts += s.Timeouts
		st.AcksReceived += s.AcksReceived
	}
	fmt.Printf("senders: %d data pkts (%d retx, %d timeouts), %d acks received\n",
		st.DataPackets, st.Retransmits, st.Timeouts, st.AcksReceived)
	var rs tack.ReceiverStats
	for _, c := range servedConns {
		r := c.Receiver().Stats
		rs.DataPackets += r.DataPackets
		rs.TACKsSent += r.TACKsSent
		rs.IACKsSent += r.IACKsSent
	}
	fmt.Printf("receivers: %d TACKs + %d IACKs => 1 ack per %.1f data packets\n",
		rs.TACKsSent, rs.IACKsSent, float64(rs.DataPackets)/float64(rs.AcksSent()))
}
