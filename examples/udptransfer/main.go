// udptransfer: runs real TCP-TACK transfers over UDP sockets on loopback
// — both endpoints in one process — and prints goodput plus the
// data-to-acknowledgment ratio. This exercises the identical sans-IO
// protocol engine the simulator drives, over the kernel's real UDP path,
// with any number of concurrent connections multiplexed on one server
// socket.
//
// Run with: go run ./examples/udptransfer [-bytes 33554432] [-mode tack|legacy] [-flows 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/tacktp/tack"
)

func main() {
	size := flag.Int64("bytes", 32<<20, "transfer size in bytes (per flow)")
	mode := flag.String("mode", "tack", "protocol mode: tack or legacy")
	flows := flag.Int("flows", 1, "concurrent connections")
	flag.Parse()

	m := tack.ModeTACK
	if *mode == "legacy" {
		m = tack.ModeLegacy
	}
	cfg := tack.Config{Mode: m, TransferBytes: *size, CC: "bbr", RichTACK: true}

	srv, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	served := make(chan *tack.Conn, *flows)
	go func() {
		for i := 0; i < *flows; i++ {
			c, err := srv.Accept()
			if err != nil {
				log.Fatalf("accept: %v", err)
			}
			go func() {
				if err := c.Wait(5 * time.Minute); err != nil {
					log.Fatalf("server conn %d: %v", c.ConnID(), err)
				}
				served <- c
			}()
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	conns := make([]*tack.Conn, *flows)
	for i := range conns {
		c, err := cli.Dial(srv.LocalAddr().String())
		if err != nil {
			log.Fatalf("dial: %v", err)
		}
		conns[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Wait(5 * time.Minute); err != nil {
				log.Fatalf("conn %d: %v", c.ConnID(), err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *size * int64(*flows)
	fmt.Printf("mode=%s: %d flow(s) x %d MiB over loopback UDP in %v (%.0f Mbit/s aggregate)\n",
		*mode, *flows, *size>>20, elapsed.Round(time.Millisecond),
		float64(total)*8/elapsed.Seconds()/1e6)
	var st tack.SenderStats
	for _, c := range conns {
		s := c.Sender().Stats
		st.DataPackets += s.DataPackets
		st.Retransmits += s.Retransmits
		st.Timeouts += s.Timeouts
		st.AcksReceived += s.AcksReceived
	}
	fmt.Printf("senders: %d data pkts (%d retx, %d timeouts), %d acks received\n",
		st.DataPackets, st.Retransmits, st.Timeouts, st.AcksReceived)
	var rs tack.ReceiverStats
	for i := 0; i < *flows; i++ {
		c := <-served
		r := c.Receiver().Stats
		rs.DataPackets += r.DataPackets
		rs.TACKsSent += r.TACKsSent
		rs.IACKsSent += r.IACKsSent
	}
	fmt.Printf("receivers: %d TACKs + %d IACKs => 1 ack per %.1f data packets\n",
		rs.TACKsSent, rs.IACKsSent, float64(rs.DataPackets)/float64(rs.AcksSent()))
}
