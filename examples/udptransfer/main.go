// udptransfer: runs a real TCP-TACK transfer over UDP sockets on loopback
// — both endpoints in one process — and prints goodput plus the
// data-to-acknowledgment ratio. This exercises the identical sans-IO
// protocol engine the simulator drives, over the kernel's real UDP path.
//
// Run with: go run ./examples/udptransfer [-bytes 33554432] [-mode tack|legacy]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/tacktp/tack/internal/transport"
)

func main() {
	size := flag.Int64("bytes", 32<<20, "transfer size in bytes")
	mode := flag.String("mode", "tack", "protocol mode: tack or legacy")
	flag.Parse()

	m := transport.ModeTACK
	if *mode == "legacy" {
		m = transport.ModeLegacy
	}

	rcv, err := transport.NewUDPReceiverRunner(
		transport.Config{Mode: m, TransferBytes: *size}, "127.0.0.1:0", "")
	if err != nil {
		log.Fatal(err)
	}
	defer rcv.Close()

	snd, err := transport.NewUDPSenderRunner(
		transport.Config{Mode: m, TransferBytes: *size, CC: "bbr", RichTACK: true},
		"127.0.0.1:0", rcv.LocalAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer snd.Close()

	errc := make(chan error, 1)
	go func() { errc <- rcv.Run(2 * time.Minute) }()

	start := time.Now()
	if err := snd.Run(2 * time.Minute); err != nil {
		log.Fatalf("sender: %v", err)
	}
	elapsed := time.Since(start)
	rcv.Close()
	<-errc

	st := snd.Sender.Stats
	rs := rcv.Receiver.Stats
	fmt.Printf("mode=%s: %d MiB over loopback UDP in %v (%.0f Mbit/s)\n",
		*mode, *size>>20, elapsed.Round(time.Millisecond),
		float64(*size)*8/elapsed.Seconds()/1e6)
	fmt.Printf("sender: %d data pkts (%d retx, %d timeouts), %d acks received\n",
		st.DataPackets, st.Retransmits, st.Timeouts, st.AcksReceived)
	fmt.Printf("receiver: %d TACKs + %d IACKs => 1 ack per %.1f data packets\n",
		rs.TACKsSent, rs.IACKsSent, float64(rs.DataPackets)/float64(rs.AcksSent()))
}
