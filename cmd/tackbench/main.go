// Command tackbench regenerates the TACK paper's evaluation tables and
// figures from the simulated substrate.
//
// Usage:
//
//	tackbench list                 # list experiment ids
//	tackbench all [-quick]         # run everything
//	tackbench fig3 fig10a ...      # run specific experiments
//	tackbench run [-path wlan] [-trace out.jsonl] [-json]   # one traced flow
//	tackbench chaos [-conns 8] [-bytes 256K] [-seed 7]      # adversarial live soak
//	tackbench mux [-objects 8] [-bytes 256K] [-json]        # stream multiplexing vs serialized
//	tackbench rack [-objects 4] [-bytes 16K] [-json]        # RACK-TLP vs dup-thresh under burst loss
//	tackbench swarm [-conns 10000] [-sockets 4] [-json]     # connection-scale swarm vs socket group
//	tackbench fec [-seeds 5] [-duration 30] [-json]         # FEC stream class vs ARQ-only under burst loss
//
// Flags:
//
//	-quick   reduced durations/ensembles (CI-friendly)
//	-seed N  RNG seed (default 1)
//
// The run subcommand has its own flag set (see tackbench run -h); its
// -trace output is the input format of cmd/tacktrace.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tacktp/tack/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced durations and ensembles")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tackbench [-quick] [-seed N] list | all | <fig-id>... | run [flags] | chaos [flags] | mux [flags] | rack [flags] | swarm [flags] | fec [flags]\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", experiments.IDs())
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	var ids []string
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case "run":
		runCmd(args[1:])
		return
	case "chaos":
		chaosCmd(args[1:])
		return
	case "mux":
		muxCmd(args[1:])
		return
	case "rack":
		rackCmd(args[1:])
		return
	case "swarm":
		swarmCmd(args[1:])
		return
	case "fec":
		fecCmd(args[1:])
		return
	case "all":
		ids = experiments.IDs()
	default:
		ids = args
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
