package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flag"

	"github.com/tacktp/tack/internal/endpoint"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// swarmCmd is the connection-scale harness: one server endpoint (an
// SO_REUSEPORT socket group when -sockets > 1) under a swarm of
// connections from a pool of client endpoints, mixing three lifetimes:
//
//   - held connections (-conns): app-paced, keepalive-held, dialed during
//     the ramp and then churned (-churn redials/held-conn/second) through
//     the steady-state window — these measure connection-setup rate,
//     handshake latency, and sustained concurrent-connection scale;
//   - short transfers (-short workers × -bytes): continuous
//     dial→transfer→teardown loops — full-lifecycle throughput;
//   - long flows (-long × -long-bytes): bounded bulk transfers running
//     for the whole window — steady-state aggregate goodput.
//
// Every client endpoint is its own UDP socket, so each contributes a
// distinct 4-tuple and the kernel's reuseport flow hash can spread the
// swarm across the server's socket group; a single client endpoint
// would collapse onto one member and measure nothing.
//
//	tackbench swarm -conns 10000 -sockets 4 -duration 10s
//	tackbench swarm -conns 2000 -duration 5s -json > BENCH_swarm.json
//
// scripts/bench_smoke.sh runs this twice (sockets=1 vs N) and gates the
// multi-socket speedup on multi-core runners.
func swarmCmd(args []string) {
	fs := flag.NewFlagSet("swarm", flag.ExitOnError)
	conns := fs.Int("conns", 10000, "held connections (app-paced, keepalive-held)")
	sockets := fs.Int("sockets", 0, "server socket-group size (0 = min(4, GOMAXPROCS))")
	shards := fs.Int("shards", 0, "server shard count (0 = endpoint default)")
	clients := fs.Int("clients", 64, "client endpoints the held swarm is spread over")
	dialers := fs.Int("dialers", 8, "concurrent dial workers per client endpoint during ramp")
	churn := fs.Float64("churn", 0.05, "held-connection churn: this fraction redialed per second")
	short := fs.Int("short", 32, "short-transfer workers (continuous dial→transfer→close loops)")
	bytesStr := fs.String("bytes", "2K", "short-transfer size (K/M/G)")
	long := fs.Int("long", 8, "long-lived bulk flows (each from its own client endpoint)")
	longBytesStr := fs.String("long-bytes", "64M", "long-flow transfer size (K/M/G)")
	duration := fs.Duration("duration", 10*time.Second, "steady-state window after the ramp")
	timeout := fs.Duration("timeout", 30*time.Second, "per-dial handshake deadline")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)

	size, err := parseBytes(*bytesStr)
	if err != nil {
		fatal(err)
	}
	longBytes, err := parseBytes(*longBytesStr)
	if err != nil {
		fatal(err)
	}
	if *sockets <= 0 {
		*sockets = runtime.GOMAXPROCS(0)
		if *sockets > 4 {
			*sockets = 4
		}
	}

	// The server's idle reaper must comfortably outlive both the ramp (an
	// overloaded single-core run can take tens of seconds) and the
	// keepalive cadence below; churn-closed conns leave via FIN teardown,
	// not the reaper, so a generous floor costs nothing.
	idle := 2 * *duration
	if idle < 2*time.Minute {
		idle = 2 * time.Minute
	}
	reg := telemetry.NewRegistry()
	srv, err := endpoint.Listen("127.0.0.1:0", endpoint.Config{
		Transport:        transport.Config{Mode: transport.ModeTACK, Metrics: reg},
		Sockets:          *sockets,
		Shards:           *shards,
		AcceptBacklog:    4096,
		IdleTimeout:      idle,
		HandshakeTimeout: 15 * time.Second,
		FlightRecorder:   -1,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	addr := srv.LocalAddr().String()
	go func() {
		for {
			if _, err := srv.Accept(); err != nil {
				return
			}
		}
	}()

	// Client pools. Held conns send nothing after the handshake (app-paced
	// source with no bytes); keepalives defeat the server's idle reaper.
	mkPool := func(n int, tcfg transport.Config, keepalive time.Duration) []*endpoint.Endpoint {
		pool := make([]*endpoint.Endpoint, n)
		for i := range pool {
			ep, err := endpoint.Listen("127.0.0.1:0", endpoint.Config{
				Transport:         tcfg,
				KeepaliveInterval: keepalive,
				IdleTimeout:       -1,
				HandshakeTimeout:  30 * time.Second,
				FlightRecorder:    -1,
			})
			if err != nil {
				fatal(err)
			}
			pool[i] = ep
		}
		return pool
	}
	// A 5s keepalive keeps 10k held conns at ~2k background pps instead
	// of 10k; the server's idle floor above dwarfs it.
	heldPool := mkPool(*clients, transport.Config{Mode: transport.ModeTACK, AppPaced: true}, 5*time.Second)
	shortPool := mkPool(max(1, *clients/8), transport.Config{Mode: transport.ModeTACK, TransferBytes: size}, 0)
	longPool := mkPool(*long, transport.Config{Mode: transport.ModeTACK, TransferBytes: longBytes}, 0)
	defer func() {
		for _, p := range [][]*endpoint.Endpoint{heldPool, shortPool, longPool} {
			for _, ep := range p {
				ep.Close()
			}
		}
	}()

	var (
		mu        sync.Mutex
		hs        = stats.NewSummary() // handshake latencies, seconds
		dialErrs  atomic.Int64
		churned   atomic.Int64
		shortDone atomic.Int64
		longDone  atomic.Int64
		peakConns atomic.Int64
	)
	dial := func(ep *endpoint.Endpoint) (*endpoint.Conn, bool) {
		t0 := time.Now()
		c, err := ep.Dial(addr)
		if err != nil {
			dialErrs.Add(1)
			return nil, false
		}
		d := time.Since(t0).Seconds()
		mu.Lock()
		hs.Add(d)
		mu.Unlock()
		return c, true
	}

	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	// Peak-concurrency sampler.
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if n := int64(srv.ConnCount()); n > peakConns.Load() {
					peakConns.Store(n)
				}
			}
		}
	}()

	// Long flows: each endpoint re-dials for the whole window; bytes from
	// a flow cut off mid-transfer are credited from its final snapshot.
	var longBytesMoved atomic.Int64
	var loadWG sync.WaitGroup
	for _, ep := range longPool {
		loadWG.Add(1)
		go func(ep *endpoint.Endpoint) {
			defer loadWG.Done()
			for !stopped() {
				c, ok := dial(ep)
				if !ok {
					return
				}
				done := make(chan error, 1)
				go func() { done <- c.Wait(10 * *duration) }()
				select {
				case err := <-done:
					if err == nil {
						longDone.Add(1)
						longBytesMoved.Add(longBytes)
					}
				case <-stop:
					if s := c.StateSnapshot(); s != nil {
						longBytesMoved.Add(s.BytesAcked)
					}
					c.Close()
					return
				}
			}
		}(ep)
	}

	// Short transfers: full dial→transfer→teardown lifecycles.
	for w := 0; w < *short; w++ {
		loadWG.Add(1)
		go func(ep *endpoint.Endpoint) {
			defer loadWG.Done()
			for !stopped() {
				c, ok := dial(ep)
				if !ok {
					return
				}
				if err := c.Wait(*timeout); err == nil {
					shortDone.Add(1)
				} else {
					c.Close()
				}
			}
		}(shortPool[w%len(shortPool)])
	}

	// Ramp: dial the held swarm as fast as the pool allows and measure
	// the connection-setup rate over it.
	rampStart := time.Now()
	held := make([][]*endpoint.Conn, len(heldPool))
	var rampWG sync.WaitGroup
	for i, ep := range heldPool {
		target := *conns / len(heldPool)
		if i < *conns%len(heldPool) {
			target++
		}
		held[i] = make([]*endpoint.Conn, 0, target)
		rampWG.Add(1)
		go func(i int, ep *endpoint.Endpoint, target int) {
			defer rampWG.Done()
			var cmu sync.Mutex
			var dwg sync.WaitGroup
			sem := make(chan struct{}, *dialers)
			for n := 0; n < target; n++ {
				sem <- struct{}{}
				dwg.Add(1)
				go func() {
					defer dwg.Done()
					defer func() { <-sem }()
					// One retry: under a saturated ramp a handshake
					// timeout is congestion, not a verdict; a persistent
					// failure still shows up in dial_errors.
					c, ok := dial(ep)
					if !ok {
						c, ok = dial(ep)
					}
					if ok {
						cmu.Lock()
						held[i] = append(held[i], c)
						cmu.Unlock()
					}
				}()
			}
			dwg.Wait()
		}(i, ep, target)
	}
	rampWG.Wait()
	rampElapsed := time.Since(rampStart)
	heldOK := 0
	for i := range held {
		heldOK += len(held[i])
	}
	setupRate := float64(heldOK) / rampElapsed.Seconds()
	if !*jsonOut {
		fmt.Printf("ramp: %d/%d held conns in %v (%.0f conns/s, p99 handshake %.2f ms)\n",
			heldOK, *conns, rampElapsed.Round(time.Millisecond), setupRate, hs.Percentile(99)*1e3)
	}

	// Steady state: hold the swarm for -duration while churning it.
	steadyStart := time.Now()
	var churnWG sync.WaitGroup
	if *churn > 0 && heldOK > 0 {
		interval := time.Duration(float64(time.Second) / (*churn * float64(heldOK)))
		if interval < 200*time.Microsecond {
			interval = 200 * time.Microsecond
		}
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			next := 0
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					i := next % len(held)
					next++
					if len(held[i]) == 0 {
						continue
					}
					// Close the oldest held conn on this client and redial
					// its replacement: a full open/close cycle through the
					// socket group.
					c := held[i][0]
					held[i] = held[i][1:]
					c.Close()
					if nc, ok := dial(heldPool[i]); ok {
						held[i] = append(held[i], nc)
					}
					churned.Add(1)
				}
			}
		}()
	}
	time.Sleep(*duration)
	close(stop)
	churnWG.Wait()
	loadWG.Wait()
	samplerWG.Wait()
	steadyElapsed := time.Since(steadyStart)

	// Teardown the held swarm; goodput counts payload bytes moved by the
	// transfer classes over the steady window (held conns carry none).
	for i := range held {
		for _, c := range held[i] {
			c.Close()
		}
	}
	bytesMoved := longBytesMoved.Load() + shortDone.Load()*size
	goodputMBs := float64(bytesMoved) / 1e6 / steadyElapsed.Seconds()

	s := reg.Snapshot()
	perSock := map[string]int64{}
	for i := 0; i < srv.SocketCount(); i++ {
		perSock[fmt.Sprintf("sock%d", i)] = s.Counters[fmt.Sprintf("ep.sock.%d.rx_packets", i)]
	}
	mu.Lock()
	doc := map[string]any{
		"conns":             *conns,
		"held_ok":           heldOK,
		"sockets_requested": *sockets,
		"sockets":           srv.SocketCount(),
		"clients":           *clients,
		"ramp_s":            rampElapsed.Seconds(),
		"steady_s":          steadyElapsed.Seconds(),
		"setup_rate_per_s":  setupRate,
		"hs_p50_ms":         hs.Percentile(50) * 1e3,
		"hs_p99_ms":         hs.Percentile(99) * 1e3,
		"peak_conns":        peakConns.Load(),
		"churned":           churned.Load(),
		"short_done":        shortDone.Load(),
		"long_done":         longDone.Load(),
		"bytes_moved":       bytesMoved,
		"goodput_mb_s":      goodputMBs,
		"dial_errors":       dialErrs.Load(),
		"server": map[string]int64{
			"rx_packets":   s.Counters["ep.rx_packets"],
			"rx_err":       s.Counters["ep.rx_err"],
			"demux_drops":  s.Counters["ep.demux_drops"],
			"accept_drops": s.Counters["ep.accept_drops"],
			"reaped":       s.Counters["ep.reaped"],
		},
		"per_socket_rx": perSock,
	}
	mu.Unlock()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
		return
	}
	fmt.Printf("swarm sockets=%d(%d) conns=%d: setup %.0f/s, hs p50 %.2f ms p99 %.2f ms, peak %d conns\n",
		srv.SocketCount(), *sockets, heldOK, setupRate,
		hs.Percentile(50)*1e3, hs.Percentile(99)*1e3, peakConns.Load())
	fmt.Printf("  steady %v: churn %d redials, %d short + %d long transfers, %.1f MB/s goodput, %d dial errors\n",
		steadyElapsed.Round(time.Millisecond), churned.Load(), shortDone.Load(), longDone.Load(),
		goodputMBs, dialErrs.Load())
	fmt.Printf("  server: rx %d pkts (per-socket %v), rx_err %d, demux_drops %d, accept_drops %d\n",
		s.Counters["ep.rx_packets"], perSock, s.Counters["ep.rx_err"],
		s.Counters["ep.demux_drops"], s.Counters["ep.accept_drops"])
	if dialErrs.Load() > 0 {
		os.Exit(1)
	}
}
