package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/tacktp/tack/internal/endpoint"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// chaosCmd drives N concurrent live connections (real UDP sockets on
// loopback) through a netem.UDPProxy injecting the adversarial impairment
// stack — Gilbert–Elliott burst loss, independent loss, duplication, bit
// corruption, reordering, jitter, and optionally a mid-flow address rebind.
// It is the command-line face of the chaos soak in internal/endpoint:
//
//	tackbench chaos -conns 8 -bytes 256K -seed 7
//	tackbench chaos -ge-enter 0.05 -ge-exit 0.2 -corrupt 0.05 -json
//	tackbench chaos -rebind 500ms                # NAT-timeout emulation: must recover via path migration
//	tackbench chaos -rebind 500ms -migrate=false # legacy behavior: reject the new address, fail cleanly
//
// The impairment decision sequence is deterministic per -seed (same seed ⇒
// same drop/duplicate/corrupt/reorder verdicts in each direction), so a row
// quoted in EXPERIMENTS.md can be reproduced; wall-clock timing (and hence
// goodput) still varies with the host.
func chaosCmd(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	conns := fs.Int("conns", 8, "concurrent connections")
	bytesStr := fs.String("bytes", "256K", "transfer size per connection (K/M/G)")
	seed := fs.Int64("seed", 1, "impairment decision seed (per-direction sequences are deterministic)")
	loss := fs.Float64("loss", 0.02, "independent loss rate, both directions")
	dup := fs.Float64("dup", 0.03, "duplication rate")
	corrupt := fs.Float64("corrupt", 0.02, "bit-corruption rate (corrupted datagrams are forwarded, not dropped)")
	reorder := fs.Float64("reorder", 0.05, "reordering rate (2ms hold-back)")
	jitterMs := fs.Float64("jitter", 3, "max uniform jitter in ms")
	geEnter := fs.Float64("ge-enter", 0.02, "Gilbert–Elliott P(good→bad) per packet; 0 disables")
	geExit := fs.Float64("ge-exit", 0.3, "Gilbert–Elliott P(bad→good) per packet")
	geLoss := fs.Float64("ge-loss", 0.7, "Gilbert–Elliott loss rate in the bad state")
	rebind := fs.Duration("rebind", 0, "rebind the server-facing socket after this long (0 = never); with -migrate the connections validate and adopt the new address, without it they fail cleanly")
	migrate := fs.Bool("migrate", true, "enable path migration (PATH_CHALLENGE validation of rebound addresses); -migrate=false reproduces the legacy reject-and-stall behavior")
	hrtoMs := fs.Float64("hrto", 50, "handshake retransmission timeout in ms")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-connection completion deadline")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)

	size, err := parseBytes(*bytesStr)
	if err != nil {
		fatal(err)
	}
	imp := netem.Impairments{
		LossRate:      *loss,
		DuplicateRate: *dup,
		CorruptRate:   *corrupt,
		ReorderRate:   *reorder,
		ReorderDelay:  2 * sim.Millisecond,
		JitterMax:     sim.Time(*jitterMs * float64(sim.Millisecond)),
		GE:            netem.GilbertElliott{PEnterBad: *geEnter, PExitBad: *geExit, LossBad: *geLoss},
	}

	srvReg, cliReg := telemetry.NewRegistry(), telemetry.NewRegistry()
	srv, err := endpoint.Listen("127.0.0.1:0", endpoint.Config{
		Transport:        transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: srvReg},
		HandshakeTimeout: 30 * time.Second,
		HandshakeRTO:     time.Duration(*hrtoMs * float64(time.Millisecond)),
		EnableMigration:  *migrate,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	proxy, err := netem.NewUDPProxy(netem.ProxyConfig{
		Target: srv.LocalAddr().String(), ToServer: imp, ToClient: imp, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	defer proxy.Close()
	cli, err := endpoint.Listen("127.0.0.1:0", endpoint.Config{
		Transport:        transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: cliReg},
		HandshakeTimeout: 30 * time.Second,
		HandshakeRTO:     time.Duration(*hrtoMs * float64(time.Millisecond)),
		EnableMigration:  *migrate,
	})
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	go func() {
		for {
			c, err := srv.Accept()
			if err != nil {
				return
			}
			go c.Wait(*timeout)
		}
	}()
	start := time.Now()
	// Pre/post-rebind delivery accounting: the shared server registry's
	// data-packet counter is cumulative and survives connection teardown,
	// so sampling it at the rebind instant splits delivery into before and
	// after — the recovery gate in scripts/bench_smoke.sh compares the two
	// rates.
	var rebindMu sync.Mutex
	var rebindAt time.Time
	var pktsAtRebind int64
	if *rebind > 0 {
		time.AfterFunc(*rebind, func() {
			rebindMu.Lock()
			rebindAt = time.Now()
			pktsAtRebind = srvReg.Counter("rcv.data_packets").Value()
			rebindMu.Unlock()
			proxy.Rebind()
		})
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, failed := 0, 0
	errs := map[string]int{}
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := cli.Dial(proxy.Addr().String())
			if err == nil {
				err = c.Wait(*timeout)
			}
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				ok++
			} else {
				failed++
				errs[err.Error()]++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	up, down := proxy.Stats()
	goodput := float64(ok) * float64(size) * 8 / elapsed.Seconds() / 1e6

	// Delivery rates either side of the rebind (packets/s; zero when the
	// rebind never fired or the transfers finished before it).
	var preRate, postRate float64
	rebindMu.Lock()
	if !rebindAt.IsZero() {
		endPkts := srvReg.Counter("rcv.data_packets").Value()
		if d := rebindAt.Sub(start).Seconds(); d > 0 {
			preRate = float64(pktsAtRebind) / d
		}
		if d := elapsed - rebindAt.Sub(start); d > 0 {
			postRate = float64(endPkts-pktsAtRebind) / d.Seconds()
		}
	}
	rebindMu.Unlock()

	if *jsonOut {
		doc := map[string]any{
			"conns": *conns, "bytes": size, "seed": *seed,
			"ok": ok, "failed": failed, "errors": errs,
			"elapsed_s": elapsed.Seconds(), "agg_goodput_mbps": goodput,
			"rebinds":   proxy.Rebinds(),
			"migration": *migrate,
			"pre_rebind_pkts_per_s":  preRate,
			"post_rebind_pkts_per_s": postRate,
			"to_server":              up, "to_client": down,
			"server": map[string]int64{
				"rx_corrupt":          srvReg.Counter("ep.rx_corrupt").Value(),
				"rx_garbage":          srvReg.Counter("ep.rx_garbage").Value(),
				"migration_rejected":  srvReg.Counter("ep.migration_rejected").Value(),
				"migration_probes":    srvReg.Counter("ep.migration.probes").Value(),
				"migration_completed": srvReg.Counter("ep.migration.completed").Value(),
				"migration_failed":    srvReg.Counter("ep.migration.failed").Value(),
				"bad_feedback":        srvReg.Counter("ep.bad_feedback").Value(),
				"synack_retransmits":  srvReg.Counter("ep.synack_retransmits").Value(),
			},
			"client": map[string]int64{
				"syn_retransmits": cliReg.Counter("snd.syn_retransmits").Value(),
				"rx_corrupt":      cliReg.Counter("ep.rx_corrupt").Value(),
				"rx_garbage":      cliReg.Counter("ep.rx_garbage").Value(),
			},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
		return
	}
	fmt.Printf("chaos seed=%d conns=%d bytes=%d: %d/%d ok in %v, agg goodput %.2f Mbit/s\n",
		*seed, *conns, size, ok, *conns, elapsed.Round(time.Millisecond), goodput)
	for e, n := range errs {
		fmt.Printf("  %d× %s\n", n, e)
	}
	fmt.Printf("  proxy to-server: %+v\n", up)
	fmt.Printf("  proxy to-client: %+v (rebinds %d)\n", down, proxy.Rebinds())
	fmt.Printf("  server: rx_corrupt=%d rx_garbage=%d migration_rejected=%d bad_feedback=%d synack_retx=%d\n",
		srvReg.Counter("ep.rx_corrupt").Value(), srvReg.Counter("ep.rx_garbage").Value(),
		srvReg.Counter("ep.migration_rejected").Value(), srvReg.Counter("ep.bad_feedback").Value(),
		srvReg.Counter("ep.synack_retransmits").Value())
	fmt.Printf("  client: syn_retx=%d rx_corrupt=%d rx_garbage=%d\n",
		cliReg.Counter("snd.syn_retransmits").Value(), cliReg.Counter("ep.rx_corrupt").Value(),
		cliReg.Counter("ep.rx_garbage").Value())
	if proxy.Rebinds() > 0 {
		fmt.Printf("  migration: probes=%d completed=%d failed=%d pre-rebind %.0f pkt/s post-rebind %.0f pkt/s\n",
			srvReg.Counter("ep.migration.probes").Value(),
			srvReg.Counter("ep.migration.completed").Value(),
			srvReg.Counter("ep.migration.failed").Value(), preRate, postRate)
	}
	// With migration on, a rebind is no longer a license to fail: the
	// connections are expected to validate the new path and finish.
	if failed > 0 && (*rebind == 0 || *migrate) {
		os.Exit(1)
	}
}
