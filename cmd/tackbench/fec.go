package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/tacktp/tack/internal/fec"
	"github.com/tacktp/tack/internal/fecbench"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/sim"
)

// fecCmd runs the forward-error-correction A/B benchmark behind
// BENCH_fec.json: the Figure-11 projection workload (constant-frame-rate
// video on one multiplexed stream, ~100 ms render deadline) over
// Gilbert–Elliott burst loss, once ARQ-only and once with the FEC stream
// class enabled. The RTT is chosen so a retransmission cannot make the
// render deadline while an in-flight repair symbol can, so the
// deadline-miss event delta isolates exactly what the repair path buys.
//
//	tackbench fec -seeds 5 -duration 30 -json
func fecCmd(args []string) {
	fs := flag.NewFlagSet("fec", flag.ExitOnError)
	seeds := fs.Int("seeds", 5, "independent seeded runs pooled per arm")
	durS := fs.Float64("duration", 30, "session length per run (simulated seconds)")
	bitrate := fs.Float64("bitrate", 8e6, "video average bit rate (bits/s)")
	deadline := fs.Int("deadline-frames", 6, "render budget in frame periods")
	burstEnter := fs.Float64("burst-enter", 0.03, "Gilbert-Elliott good->bad probability per packet")
	burstExit := fs.Float64("burst-exit", 0.5, "Gilbert-Elliott bad->good probability (1/mean burst length)")
	groupLen := fs.Int("group", 12, "FEC group length (source symbols)")
	overheadCap := fs.Float64("overhead-cap", 0.18, "FEC redundancy cap (repair/source ratio)")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)

	type armResult struct {
		Frames        int     `json:"frames"`
		LateFrames    int     `json:"late_frames"`
		Stalls        int     `json:"stalls"`
		Events        int     `json:"events"`
		Retransmits   int     `json:"retransmits"`
		LinkDropped   int     `json:"link_dropped"`
		Recovered     int     `json:"recovered"`
		RepairsSent   int     `json:"repairs_sent"`
		DataBytes     int64   `json:"data_bytes"`
		RepairBytes   int64   `json:"repair_bytes"`
		RebufferRatio float64 `json:"rebuffer_ratio"`
	}
	burst := netem.GilbertElliott{PEnterBad: *burstEnter, PExitBad: *burstExit}
	run := func(opts *fec.Options) armResult {
		var arm armResult
		for s := 0; s < *seeds; s++ {
			res, err := fecbench.Run(fecbench.Config{
				BitrateBps:     *bitrate,
				DeadlineFrames: *deadline,
				Burst:          burst,
				FEC:            opts,
				Duration:       sim.Time(*durS * float64(sim.Second)),
				Seed:           int64(s + 1),
			})
			if err != nil {
				fatal(fmt.Errorf("fec bench seed %d: %w", s+1, err))
			}
			arm.Frames += res.Frames
			arm.LateFrames += res.LateFrames
			arm.Stalls += res.Stalls
			arm.Events += res.Events
			arm.Retransmits += res.Retransmits
			arm.LinkDropped += res.LinkDropped
			arm.Recovered += res.Recovered
			arm.RepairsSent += res.RepairsSent
			arm.DataBytes += res.DataBytes
			arm.RepairBytes += res.RepairBytes
			arm.RebufferRatio += res.RebufferRatio / float64(*seeds)
		}
		return arm
	}

	arq := run(nil)
	fecArm := run(&fec.Options{
		Scheme: fec.SchemeRS, GroupLen: *groupLen,
		MaxOverhead: *overheadCap, Adaptive: true,
	})
	reduction := 0.0
	if arq.Events > 0 {
		reduction = 1 - float64(fecArm.Events)/float64(arq.Events)
	}
	overhead := 0.0
	if sum := fecArm.DataBytes + fecArm.RepairBytes; sum > 0 {
		overhead = float64(fecArm.RepairBytes) / float64(sum)
	}

	if *jsonOut {
		doc := struct {
			Seeds          int       `json:"seeds"`
			DurationS      float64   `json:"duration_s"`
			BitrateBps     float64   `json:"bitrate_bps"`
			DeadlineFrames int       `json:"deadline_frames"`
			BurstEnter     float64   `json:"burst_enter"`
			BurstExit      float64   `json:"burst_exit"`
			MeanLoss       float64   `json:"mean_loss"`
			GroupLen       int       `json:"group_len"`
			OverheadCap    float64   `json:"overhead_cap"`
			ARQ            armResult `json:"arq"`
			FEC            armResult `json:"fec"`
			EventReduction float64   `json:"event_reduction"`
			ByteOverhead   float64   `json:"byte_overhead"`
		}{
			Seeds: *seeds, DurationS: *durS, BitrateBps: *bitrate,
			DeadlineFrames: *deadline, BurstEnter: *burstEnter,
			BurstExit: *burstExit, MeanLoss: burst.MeanLoss(),
			GroupLen: *groupLen, OverheadCap: *overheadCap,
			ARQ: arq, FEC: fecArm,
			EventReduction: reduction, ByteOverhead: overhead,
		}
		if err := json.NewEncoder(os.Stdout).Encode(doc); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("fec: %d seeds × %.0fs video @ %.0f Mbit/s, burst enter=%.3f exit=%.2f (mean loss %.1f%%)\n",
		*seeds, *durS, *bitrate/1e6, *burstEnter, *burstExit, burst.MeanLoss()*100)
	fmt.Printf("  arq-only: %5d/%d late frames, %d stalls, %5d retransmits\n",
		arq.LateFrames, arq.Frames, arq.Stalls, arq.Retransmits)
	fmt.Printf("  fec     : %5d/%d late frames, %d stalls, %5d retransmits, %d recovered of %d dropped\n",
		fecArm.LateFrames, fecArm.Frames, fecArm.Stalls, fecArm.Retransmits,
		fecArm.Recovered, fecArm.LinkDropped)
	fmt.Printf("  deadline-miss event reduction: %.1f%%  byte overhead: %.1f%%\n",
		reduction*100, overhead*100)
}
