package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/tacktp/tack/internal/holbench"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/transport"
)

// rackCmd runs the loss-detector A/B benchmark behind BENCH_rack.json:
// many short objects over the hybrid path with Gilbert–Elliott burst loss,
// once with RACK-TLP and once with the duplicate-threshold baseline.
// Bursts routinely take out object tails, where the receiver's gap-based
// reporting is blind (nothing is sent after the hole), so the baseline
// strands those objects on a full RTO while RACK's tail probe recovers
// them in ~2×SRTT — the gap shows up directly in the pooled p99
// per-object completion time.
//
// The defaults encode the differentiating regime: objects short enough
// that a burst plausibly clips the tail, bursts sharp enough (mean two
// packets) that the channel has recovered by the time the probe fires,
// and enough seeds that several tails get clipped per pool.
//
//	tackbench rack -objects 4 -bytes 16K -seeds 30 -json
func rackCmd(args []string) {
	fs := flag.NewFlagSet("rack", flag.ExitOnError)
	objects := fs.Int("objects", 4, "short objects fetched per run")
	bytesStr := fs.String("bytes", "16K", "object size (K/M/G)")
	seeds := fs.Int("seeds", 30, "independent seeded runs pooled per arm")
	burstEnter := fs.Float64("burst-enter", 0.05, "Gilbert-Elliott good->bad probability per packet")
	burstExit := fs.Float64("burst-exit", 0.5, "Gilbert-Elliott bad->good probability (1/mean burst length)")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)

	size, err := parseBytes(*bytesStr)
	if err != nil {
		fatal(fmt.Errorf("bad -bytes: %w", err))
	}

	type armResult struct {
		P50Ms       float64 `json:"p50_ms"`
		P95Ms       float64 `json:"p95_ms"`
		P99Ms       float64 `json:"p99_ms"`
		MaxMs       float64 `json:"max_ms"`
		Retransmits int     `json:"retransmits"`
		Timeouts    int     `json:"timeouts"`
		TLPProbes   int     `json:"tlp_probes"`
		RackMarked  int     `json:"rack_marked"`
	}
	run := func(det transport.LossDetector) armResult {
		var pooled []sim.Time
		var arm armResult
		for s := 0; s < *seeds; s++ {
			res, err := holbench.Run(holbench.Config{
				Objects: *objects, ObjectBytes: int(size),
				Loss:     -1, // burst loss only: the tail-recovery delta, not Bernoulli luck
				Detector: det,
				BurstLoss: netem.GilbertElliott{
					PEnterBad: *burstEnter, PExitBad: *burstExit,
				},
				Seed: int64(s + 1),
			})
			if err != nil {
				fatal(fmt.Errorf("detector %v seed %d: %w", det, s+1, err))
			}
			pooled = append(pooled, res.Completions...)
			arm.Retransmits += res.Retransmits
			arm.Timeouts += res.Timeouts
			arm.TLPProbes += res.TLPProbes
			arm.RackMarked += res.RackMarked
		}
		sort.Slice(pooled, func(i, j int) bool { return pooled[i] < pooled[j] })
		arm.P50Ms = ms(pooledPercentile(pooled, 0.50))
		arm.P95Ms = ms(pooledPercentile(pooled, 0.95))
		arm.P99Ms = ms(pooledPercentile(pooled, 0.99))
		arm.MaxMs = ms(pooled[len(pooled)-1])
		return arm
	}

	rack := run(transport.DetectorRACK)
	dup := run(transport.DetectorDupThresh)
	improvement := 0.0
	if dup.P99Ms > 0 {
		improvement = 1 - rack.P99Ms/dup.P99Ms
	}

	if *jsonOut {
		doc := struct {
			Objects        int       `json:"objects"`
			ObjectBytes    int64     `json:"object_bytes"`
			Seeds          int       `json:"seeds"`
			BurstEnter     float64   `json:"burst_enter"`
			BurstExit      float64   `json:"burst_exit"`
			RACK           armResult `json:"rack"`
			DupThresh      armResult `json:"dupthresh"`
			P99Improvement float64   `json:"p99_improvement"`
		}{
			Objects: *objects, ObjectBytes: size, Seeds: *seeds,
			BurstEnter: *burstEnter, BurstExit: *burstExit,
			RACK: rack, DupThresh: dup, P99Improvement: improvement,
		}
		if err := json.NewEncoder(os.Stdout).Encode(doc); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("rack: %d × %s objects × %d seeds, burst enter=%.3f exit=%.2f\n",
		*objects, *bytesStr, *seeds, *burstEnter, *burstExit)
	fmt.Printf("  rack     : p50 %6.1fms  p95 %6.1fms  p99 %6.1fms  max %6.1fms  retx %-4d rto %-3d tlp %-3d marked %d\n",
		rack.P50Ms, rack.P95Ms, rack.P99Ms, rack.MaxMs,
		rack.Retransmits, rack.Timeouts, rack.TLPProbes, rack.RackMarked)
	fmt.Printf("  dupthresh: p50 %6.1fms  p95 %6.1fms  p99 %6.1fms  max %6.1fms  retx %-4d rto %d\n",
		dup.P50Ms, dup.P95Ms, dup.P99Ms, dup.MaxMs, dup.Retransmits, dup.Timeouts)
	fmt.Printf("  p99 per-object completion improvement: %.1f%%\n", improvement*100)
}

// pooledPercentile returns the nearest-rank p-th percentile of sorted d.
func pooledPercentile(d []sim.Time, p float64) sim.Time {
	if len(d) == 0 {
		return 0
	}
	idx := int(float64(len(d))*p+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d) {
		idx = len(d) - 1
	}
	return d[idx]
}
