package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

// runCmd drives one instrumented flow over a simulated path and reports its
// outcome — the quickest way to produce a trace for cmd/tacktrace:
//
//	tackbench run -path wlan -std n -dur 10 -trace out.jsonl
//	tacktrace out.jsonl
func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	pathKind := fs.String("path", "wlan", "path shape: wlan, wan, or hybrid")
	std := fs.String("std", "n", "802.11 standard for wlan/hybrid: b, g, n, ac")
	mode := fs.String("mode", "tack", "protocol mode: tack or legacy")
	ccName := fs.String("cc", "bbr", "congestion controller")
	durSec := fs.Float64("dur", 10, "simulated duration in seconds")
	bytesStr := fs.String("bytes", "", "bounded transfer size (K/M/G); empty = run for -dur")
	rateMbps := fs.Float64("rate", 100, "WAN bottleneck rate (Mbit/s, wan/hybrid)")
	owdMs := fs.Float64("owd", 20, "WAN one-way delay (ms, wan/hybrid)")
	loss := fs.Float64("loss", 0, "WAN data-direction random loss rate")
	per := fs.Float64("per", 0, "WLAN per-MPDU error rate")
	seed := fs.Int64("seed", 1, "simulation seed")
	tracePath := fs.String("trace", "", "write a JSONL event trace to this file")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)

	var tr *telemetry.Tracer
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		traceBuf = bufio.NewWriterSize(f, 1<<16)
		tr = telemetry.NewStreaming(traceBuf)
		// Simulated runs are deterministic; wall-clock stamps would break
		// that and mean nothing, so events carry only the virtual clock.
		tr.SetWallClock(nil)
	}
	reg := telemetry.NewRegistry()

	cfg := transport.Config{
		Mode: parseMode(*mode), CC: *ccName, RichTACK: true,
		Tracer: tr, Metrics: reg,
	}
	if *bytesStr != "" {
		n, err := parseBytes(*bytesStr)
		if err != nil {
			fatal(fmt.Errorf("bad -bytes: %w", err))
		}
		cfg.TransferBytes = n
	}

	loop := sim.NewLoop(*seed)
	wlanCfg := topo.WLANConfig{Standard: parseStd(*std), PER: *per, Tracer: tr}
	wanCfg := topo.WANConfig{
		RateBps: *rateMbps * 1e6, OWD: sim.Time(*owdMs * 1e6),
		QueueBytes: 256 << 10, DataLoss: *loss,
	}
	var path *topo.Path
	switch *pathKind {
	case "wlan":
		path, _ = topo.WLANPath(loop, wlanCfg)
	case "wan":
		path, _, _ = topo.WANPath(loop, wanCfg)
	case "hybrid":
		path, _, _, _ = topo.HybridPath(loop, wlanCfg, wanCfg)
	default:
		fatal(fmt.Errorf("unknown -path %q (wlan, wan, hybrid)", *pathKind))
	}

	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		fatal(err)
	}
	flow.Start()
	dur := sim.Time(*durSec * float64(sim.Second))
	if cfg.TransferBytes > 0 {
		// A bounded transfer usually finishes before -dur; stop shortly after
		// it does so goodput reflects transfer time, not the idle tail.
		for loop.Now() < dur && !flow.Sender.Done() {
			next := loop.Now() + sim.Millisecond
			if next > dur {
				next = dur
			}
			loop.RunUntil(next)
		}
	} else {
		loop.RunUntil(dur)
	}
	elapsed := loop.Now()

	if traceBuf != nil {
		if err := tr.Err(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := traceBuf.Flush(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}

	delivered := flow.Receiver.Delivered()
	goodput := float64(delivered) * 8 / elapsed.Seconds()
	snd, rcv := flow.Sender.Stats, flow.Receiver.Stats
	if *jsonOut {
		doc := struct {
			Path       string                  `json:"path"`
			Mode       string                  `json:"mode"`
			CC         string                  `json:"cc"`
			SimSec     float64                 `json:"sim_sec"`
			Delivered  int64                   `json:"delivered_bytes"`
			GoodputBps float64                 `json:"goodput_bps"`
			Done       bool                    `json:"done"`
			Sender     transport.SenderStats   `json:"sender"`
			Receiver   transport.ReceiverStats `json:"receiver"`
			Metrics    telemetry.Snapshot      `json:"metrics"`
		}{
			Path: *pathKind, Mode: *mode, CC: *ccName, SimSec: elapsed.Seconds(),
			Delivered: delivered, GoodputBps: goodput, Done: flow.Sender.Done(),
			Sender: snd, Receiver: rcv, Metrics: reg.Snapshot(),
		}
		if err := json.NewEncoder(os.Stdout).Encode(doc); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s %s/%s: %.2f Mbit/s over %.1fs sim (%d bytes delivered)\n",
		*pathKind, *mode, *ccName, goodput/1e6, elapsed.Seconds(), delivered)
	fmt.Printf("data packets: %d (retx %d), TACKs: %d, IACKs: %d (loss %d), data:ack %.1f\n",
		snd.DataPackets, snd.Retransmits, rcv.TACKsSent, rcv.IACKsSent, rcv.LossIACKs,
		float64(snd.DataPackets)/float64(max(1, rcv.AcksSent())))
	if *tracePath != "" {
		fmt.Fprintf(os.Stderr, "trace written to %s (analyze with: tacktrace %s)\n", *tracePath, *tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tackbench:", err)
	os.Exit(1)
}

func parseMode(s string) transport.Mode {
	if strings.EqualFold(s, "legacy") {
		return transport.ModeLegacy
	}
	return transport.ModeTACK
}

// parseBytes accepts 1048576, 64K, 100M, 2G.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func parseStd(s string) phy.Standard {
	switch s {
	case "b":
		return phy.Std80211b
	case "g":
		return phy.Std80211g
	case "ac":
		return phy.Std80211ac
	default:
		return phy.Std80211n
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
