package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/tacktp/tack/internal/holbench"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
)

// muxCmd runs the multi-object fetch comparison: N objects multiplexed on
// N streams versus the same objects serialized on one stream, over the
// lossy 802.11n hybrid path. This is the head-of-line-blocking benchmark
// behind BENCH_stream.json:
//
//	tackbench mux -objects 8 -bytes 256K -loss 0.02 -json
func muxCmd(args []string) {
	fs := flag.NewFlagSet("mux", flag.ExitOnError)
	objects := fs.Int("objects", 8, "number of concurrent objects")
	bytesStr := fs.String("bytes", "256K", "object size (K/M/G)")
	loss := fs.Float64("loss", 0.02, "WAN data-direction loss rate (0 disables)")
	sched := fs.String("sched", "rr", "stream scheduler for the multiplexed arm: rr, priority, weighted")
	windowStr := fs.String("window", "64K", "per-stream receive window (K/M/G)")
	seed := fs.Int64("seed", 1, "simulation seed")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)

	size, err := parseBytes(*bytesStr)
	if err != nil {
		fatal(fmt.Errorf("bad -bytes: %w", err))
	}
	window, err := parseBytes(*windowStr)
	if err != nil {
		fatal(fmt.Errorf("bad -window: %w", err))
	}
	lossCfg := *loss
	if lossCfg == 0 {
		lossCfg = -1 // holbench convention: negative selects lossless
	}
	base := holbench.Config{
		Objects: *objects, ObjectBytes: int(size), Loss: lossCfg,
		Scheduler: *sched, StreamWindow: int(window), Seed: *seed,
	}

	serial := base
	serial.Serialize = true
	sres, err := holbench.Run(serial)
	if err != nil {
		fatal(fmt.Errorf("serialized arm: %w", err))
	}
	mres, err := holbench.Run(base)
	if err != nil {
		fatal(fmt.Errorf("multiplexed arm: %w", err))
	}
	improvement := 0.0
	if sres.P95 > 0 {
		improvement = 1 - mres.P95.Seconds()/sres.P95.Seconds()
	}

	// Scheduler fairness profile on the same workload (lossless, so the
	// index reflects scheduling policy, not loss luck).
	type schedResult struct {
		Fairness   float64 `json:"fairness"`
		GoodputBps float64 `json:"goodput_bps"`
	}
	schedProfiles := map[string]schedResult{}
	for _, name := range []string{
		stream.SchedulerRoundRobin, stream.SchedulerPriority, stream.SchedulerWeighted,
	} {
		cfg := base
		cfg.Loss = -1
		cfg.Scheduler = name
		r, err := holbench.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("scheduler %s: %w", name, err))
		}
		schedProfiles[name] = schedResult{Fairness: r.Fairness, GoodputBps: r.GoodputBps}
	}

	type armResult struct {
		P50Ms       float64 `json:"p50_ms"`
		P95Ms       float64 `json:"p95_ms"`
		MaxMs       float64 `json:"max_ms"`
		GoodputBps  float64 `json:"goodput_bps"`
		Retransmits int     `json:"retransmits"`
		Fairness    float64 `json:"fairness"`
	}
	arm := func(r holbench.Result) armResult {
		return armResult{
			P50Ms: ms(r.P50), P95Ms: ms(r.P95), MaxMs: ms(r.Max),
			GoodputBps: r.GoodputBps, Retransmits: r.Retransmits, Fairness: r.Fairness,
		}
	}
	if *jsonOut {
		doc := struct {
			Objects        int                    `json:"objects"`
			ObjectBytes    int64                  `json:"object_bytes"`
			Loss           float64                `json:"loss"`
			Scheduler      string                 `json:"scheduler"`
			Serialized     armResult              `json:"serialized"`
			Multiplexed    armResult              `json:"multiplexed"`
			P95Improvement float64                `json:"p95_improvement"`
			Schedulers     map[string]schedResult `json:"schedulers"`
		}{
			Objects: *objects, ObjectBytes: size, Loss: *loss, Scheduler: *sched,
			Serialized: arm(sres), Multiplexed: arm(mres),
			P95Improvement: improvement, Schedulers: schedProfiles,
		}
		if err := json.NewEncoder(os.Stdout).Encode(doc); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("mux: %d × %s objects, loss %.1f%%, scheduler %s\n",
		*objects, *bytesStr, *loss*100, *sched)
	fmt.Printf("  serialized : p50 %v  p95 %v  goodput %.1f Mbit/s  retx %d\n",
		sres.P50, sres.P95, sres.GoodputBps/1e6, sres.Retransmits)
	fmt.Printf("  multiplexed: p50 %v  p95 %v  goodput %.1f Mbit/s  retx %d  fairness %.3f\n",
		mres.P50, mres.P95, mres.GoodputBps/1e6, mres.Retransmits, mres.Fairness)
	fmt.Printf("  p95 per-object completion improvement: %.1f%%\n", improvement*100)
	for _, name := range []string{
		stream.SchedulerRoundRobin, stream.SchedulerPriority, stream.SchedulerWeighted,
	} {
		p := schedProfiles[name]
		fmt.Printf("  scheduler %-8s fairness %.3f  goodput %.1f Mbit/s\n",
			name, p.Fairness, p.GoodputBps/1e6)
	}
}

// ms converts a simulated duration to milliseconds for JSON output.
func ms(t sim.Time) float64 { return t.Seconds() * 1e3 }
