package main

import (
	"testing"

	"github.com/tacktp/tack/internal/transport"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"1048576", 1 << 20, false},
		{"64K", 64 << 10, false},
		{"64k", 64 << 10, false},
		{"100M", 100 << 20, false},
		{"2G", 2 << 30, false},
		{"2g", 2 << 30, false},
		{"", 0, true},
		{"12X", 0, true},
		{"abc", 0, true},
	}
	for _, c := range cases {
		got, err := parseBytes(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseBytes(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseMode(t *testing.T) {
	if parseMode("legacy") != transport.ModeLegacy {
		t.Fatal("legacy not parsed")
	}
	if parseMode("LEGACY") != transport.ModeLegacy {
		t.Fatal("case-insensitive parse broken")
	}
	if parseMode("tack") != transport.ModeTACK {
		t.Fatal("tack not parsed")
	}
	if parseMode("anything-else") != transport.ModeTACK {
		t.Fatal("default should be TACK")
	}
}
