// Command tackd is an iperf-like TCP-TACK transfer tool over real UDP
// sockets, exercising the same sans-IO protocol engine the simulator runs.
//
// Usage:
//
//	tackd serve  -listen :4500                         # receiving side
//	tackd send   -to host:4500 -bytes 100M [-cc bbr]   # sending side
//
// The sender reports goodput and acknowledgment statistics on completion —
// on a loopback run, compare -mode tack against -mode legacy to see the
// acknowledgment reduction first-hand.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/tacktp/tack/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "send":
		send(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tackd serve -listen :4500 [-mode tack|legacy]
  tackd send  -to host:4500 -bytes 100M [-mode tack|legacy] [-cc bbr|cubic|...]`)
	os.Exit(2)
}

func parseMode(s string) transport.Mode {
	if strings.EqualFold(s, "legacy") {
		return transport.ModeLegacy
	}
	return transport.ModeTACK
}

// parseBytes accepts 1048576, 64K, 100M, 2G.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":4500", "UDP listen address")
	mode := fs.String("mode", "tack", "protocol mode: tack or legacy")
	fs.Parse(args)

	cfg := transport.Config{Mode: parseMode(*mode)}
	r, err := transport.NewUDPReceiverRunner(cfg, *listen, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer r.Close()
	fmt.Printf("tackd: listening on %s (mode=%s)\n", r.LocalAddr(), *mode)
	start := time.Now()
	if err := r.Run(0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	el := time.Since(start)
	st := r.Receiver.Stats
	fmt.Printf("received %d bytes in %v (%.2f Mbit/s)\n",
		r.Receiver.Delivered(), el.Round(time.Millisecond),
		float64(r.Receiver.Delivered())*8/el.Seconds()/1e6)
	fmt.Printf("data packets: %d, TACKs sent: %d, IACKs sent: %d (loss %d, window %d)\n",
		st.DataPackets, st.TACKsSent, st.IACKsSent, st.LossIACKs, st.WindowIACKs)
}

func send(args []string) {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	to := fs.String("to", "", "server address host:port")
	bytesStr := fs.String("bytes", "64M", "transfer size (K/M/G suffixes)")
	mode := fs.String("mode", "tack", "protocol mode: tack or legacy")
	ccName := fs.String("cc", "bbr", "congestion controller")
	timeout := fs.Duration("timeout", 10*time.Minute, "abort deadline")
	fs.Parse(args)
	if *to == "" {
		usage()
	}
	size, err := parseBytes(*bytesStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -bytes: %v\n", err)
		os.Exit(2)
	}

	cfg := transport.Config{Mode: parseMode(*mode), CC: *ccName, TransferBytes: size, RichTACK: true}
	s, err := transport.NewUDPSenderRunner(cfg, ":0", *to)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer s.Close()
	fmt.Printf("tackd: sending %d bytes to %s (mode=%s, cc=%s)\n", size, *to, *mode, *ccName)
	start := time.Now()
	if err := s.Run(*timeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	el := time.Since(start)
	st := s.Sender.Stats
	fmt.Printf("done in %v: %.2f Mbit/s goodput\n", el.Round(time.Millisecond),
		float64(size)*8/el.Seconds()/1e6)
	fmt.Printf("data packets: %d (retx %d), acks received: %d (%.1f data:ack), timeouts: %d\n",
		st.DataPackets, st.Retransmits, st.AcksReceived,
		float64(st.DataPackets)/float64(max(1, st.AcksReceived)), st.Timeouts)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
