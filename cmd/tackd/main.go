// Command tackd is an iperf-like TCP-TACK transfer tool over real UDP
// sockets, exercising the same sans-IO protocol engine the simulator runs.
//
// Usage:
//
//	tackd serve -listen :4500 [-flows 4]               # receiving side
//	tackd send  -to host:4500 -bytes 100M [-flows 4]   # sending side
//
// One UDP socket carries every connection on each side: the server
// accepts -flows connections (0 = serve forever) and the sender dials
// -flows concurrent transfers, all demultiplexed by connection id.
//
// Both subcommands accept -trace out.jsonl (structured event trace for
// cmd/tacktrace) and -json (machine-readable result on stdout). Progress
// diagnostics always go to stderr so stdout stays clean for results.
//
// The sender reports goodput and acknowledgment statistics on completion —
// on a loopback run, compare -mode tack against -mode legacy to see the
// acknowledgment reduction first-hand.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/tacktp/tack"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "send":
		send(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tackd serve -listen :4500 [-flows 1] [-sockets 4] [-mode tack|legacy] [-trace out.jsonl] [-json] [-debug-addr 127.0.0.1:9090] [-postmortem dir]
  tackd send  -to host:4500 -bytes 100M [-flows 1] [-sockets 4] [-mode tack|legacy] [-cc bbr|cubic|...] [-trace out.jsonl] [-json] [-debug-addr 127.0.0.1:9091] [-postmortem dir]`)
	os.Exit(2)
}

func parseMode(s string) tack.Mode {
	if strings.EqualFold(s, "legacy") {
		return tack.ModeLegacy
	}
	return tack.ModeTACK
}

// parseBytes accepts 1048576, 64K, 100M, 2G.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// traceSink wraps the optional -trace output file.
type traceSink struct {
	f  *os.File
	bw *bufio.Writer
	tr *telemetry.Tracer
}

// openTrace builds a streaming tracer writing JSONL to path ("" → no trace).
func openTrace(path string) (*traceSink, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	return &traceSink{f: f, bw: bw, tr: telemetry.NewStreaming(bw)}, nil
}

// tracer returns the sink's tracer (nil on a nil sink).
func (t *traceSink) tracer() *telemetry.Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// close flushes and closes the trace file, reporting any sink error.
func (t *traceSink) close() error {
	if t == nil {
		return nil
	}
	if err := t.tr.Err(); err != nil {
		t.f.Close()
		return err
	}
	if err := t.bw.Flush(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}

// flowResult is one connection's outcome inside a -json document.
type flowResult struct {
	ConnID     uint32  `json:"conn_id"`
	Bytes      int64   `json:"bytes"`
	ElapsedSec float64 `json:"elapsed_sec"`
	GoodputBps float64 `json:"goodput_bps"`
}

// result is the -json output document (one per run, on stdout).
type result struct {
	Role       string `json:"role"`
	Mode       string `json:"mode"`
	CC         string `json:"cc,omitempty"`
	Flows      int    `json:"flows"`
	Bytes      int64  `json:"bytes"`
	ElapsedSec float64
	GoodputBps float64
	PerFlow    []flowResult
	Sender     *transport.SenderStats
	Receiver   *transport.ReceiverStats
	Metrics    telemetry.Snapshot `json:"metrics"`
}

// MarshalJSON flattens the optional halves under stable keys.
func (r result) MarshalJSON() ([]byte, error) {
	type alias struct {
		Role       string                   `json:"role"`
		Mode       string                   `json:"mode"`
		CC         string                   `json:"cc,omitempty"`
		Flows      int                      `json:"flows"`
		Bytes      int64                    `json:"bytes"`
		ElapsedSec float64                  `json:"elapsed_sec"`
		GoodputBps float64                  `json:"goodput_bps"`
		PerFlow    []flowResult             `json:"per_flow,omitempty"`
		Sender     *transport.SenderStats   `json:"sender,omitempty"`
		Receiver   *transport.ReceiverStats `json:"receiver,omitempty"`
		Metrics    telemetry.Snapshot       `json:"metrics"`
	}
	return json.Marshal(alias(r))
}

// emit writes the run result: JSON on stdout when jsonOut, else the human
// lines produced by human().
func emit(jsonOut bool, r result, human func()) {
	if !jsonOut {
		human()
		return
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, "tackd: encode result:", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tackd:", err)
	os.Exit(1)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":4500", "UDP listen address")
	sockets := fs.Int("sockets", 1, "SO_REUSEPORT socket-group size (Linux; >1 scales inbound demux)")
	flows := fs.Int("flows", 1, "connections to serve before exiting (0 = forever)")
	mode := fs.String("mode", "tack", "protocol mode: tack or legacy")
	tracePath := fs.String("trace", "", "write a JSONL event trace to this file")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/pprof/, /debug/tack/conns on this address")
	postmortem := fs.String("postmortem", "", "directory for anomaly post-mortem flight-recorder dumps")
	fs.Parse(args)

	sink, err := openTrace(*tracePath)
	if err != nil {
		fatal(err)
	}
	reg := tack.NewMetrics()
	if tr := sink.tracer(); tr != nil {
		tr.CountDrops(reg.Counter("telemetry.dropped_events"))
	}
	cfg := tack.Config{Mode: parseMode(*mode), Tracer: sink.tracer(), Metrics: reg}
	ep, err := tack.Listen(*listen, tack.EndpointConfig{
		Transport: cfg, Sockets: *sockets, DebugAddr: *debugAddr, PostMortemDir: *postmortem,
	})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()
	fmt.Fprintf(os.Stderr, "tackd: listening on %s (mode=%s, flows=%d, sockets=%d)\n",
		ep.LocalAddr(), *mode, *flows, ep.SocketCount())
	if *debugAddr != "" {
		fmt.Fprintf(os.Stderr, "tackd: debug endpoint on http://%s/\n", *debugAddr)
	}

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		perFlow []flowResult
		agg     transport.ReceiverStats
		total   int64
		end     time.Time // latest per-flow completion
	)
	start := time.Now()
	for i := 0; *flows == 0 || i < *flows; i++ {
		c, err := ep.Accept()
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			start = time.Now() // goodput clock runs from the first accept
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			if err := c.Wait(0); err != nil {
				fmt.Fprintf(os.Stderr, "tackd: conn %d: %v\n", c.ConnID(), err)
				return
			}
			// Wait returns after the completion linger; goodput is measured
			// to the moment the last byte was delivered.
			el := time.Since(t0)
			done := c.CompletedAt()
			if !done.IsZero() {
				el = done.Sub(t0)
			}
			rcv := c.Receiver()
			fmt.Fprintf(os.Stderr, "tackd: conn %d: received %d bytes in %v\n",
				c.ConnID(), rcv.Delivered(), el.Round(time.Millisecond))
			mu.Lock()
			defer mu.Unlock()
			if done.After(end) {
				end = done
			}
			perFlow = append(perFlow, flowResult{
				ConnID: c.ConnID(), Bytes: rcv.Delivered(), ElapsedSec: el.Seconds(),
				GoodputBps: float64(rcv.Delivered()) * 8 / el.Seconds(),
			})
			total += rcv.Delivered()
			s := rcv.Stats
			agg.DataPackets += s.DataPackets
			agg.TACKsSent += s.TACKsSent
			agg.IACKsSent += s.IACKsSent
			agg.LossIACKs += s.LossIACKs
			agg.WindowIACKs += s.WindowIACKs
		}()
	}
	wg.Wait()
	el := time.Since(start)
	if !end.IsZero() {
		el = end.Sub(start)
	}
	if err := sink.close(); err != nil {
		fatal(fmt.Errorf("trace: %w", err))
	}
	res := result{
		Role: "serve", Mode: *mode, Flows: len(perFlow),
		Bytes: total, ElapsedSec: el.Seconds(),
		GoodputBps: float64(total) * 8 / el.Seconds(),
		PerFlow:    perFlow, Receiver: &agg, Metrics: reg.Snapshot(),
	}
	emit(*jsonOut, res, func() {
		fmt.Printf("received %d bytes over %d flow(s) in %v (%.2f Mbit/s aggregate)\n",
			total, len(perFlow), el.Round(time.Millisecond), res.GoodputBps/1e6)
		fmt.Printf("data packets: %d, TACKs sent: %d, IACKs sent: %d (loss %d, window %d)\n",
			agg.DataPackets, agg.TACKsSent, agg.IACKsSent, agg.LossIACKs, agg.WindowIACKs)
		printBatchStats(res.Metrics)
	})
}

// printBatchStats summarizes the batched-datapath telemetry for the human
// output (the JSON document carries the full snapshot): syscall batch
// sizes and datapath freelist hit rates. Max batch > 1 is the visible
// proof that recvmmsg/sendmmsg coalescing is engaged.
func printBatchStats(s telemetry.Snapshot) {
	rd, wr := s.Histograms["ep.batch.read_size"], s.Histograms["ep.batch.write_size"]
	if rd.Count == 0 && wr.Count == 0 {
		return
	}
	hit := func(gets, misses int64) float64 {
		if gets == 0 {
			return 0
		}
		return 100 * (1 - float64(misses)/float64(gets))
	}
	fmt.Printf("io batches: read mean %.1f max %.0f, write mean %.1f max %.0f; pool hit rate: pkt %.1f%%, buf %.1f%%\n",
		rd.Mean, rd.Max, wr.Mean, wr.Max,
		hit(s.Counters["ep.batch.pkt_pool_gets"], s.Counters["ep.batch.pkt_pool_misses"]),
		hit(s.Counters["ep.batch.buf_pool_gets"], s.Counters["ep.batch.buf_pool_misses"]))
}

func send(args []string) {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	to := fs.String("to", "", "server address host:port")
	sockets := fs.Int("sockets", 1, "SO_REUSEPORT socket-group size (Linux; >1 scales inbound demux)")
	bytesStr := fs.String("bytes", "64M", "transfer size per flow (K/M/G suffixes)")
	flows := fs.Int("flows", 1, "concurrent connections")
	mode := fs.String("mode", "tack", "protocol mode: tack or legacy")
	ccName := fs.String("cc", "bbr", "congestion controller")
	timeout := fs.Duration("timeout", 10*time.Minute, "abort deadline per flow")
	tracePath := fs.String("trace", "", "write a JSONL event trace to this file")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/pprof/, /debug/tack/conns on this address")
	postmortem := fs.String("postmortem", "", "directory for anomaly post-mortem flight-recorder dumps")
	fs.Parse(args)
	if *to == "" {
		usage()
	}
	if *flows < 1 {
		fmt.Fprintln(os.Stderr, "bad -flows: need at least 1")
		os.Exit(2)
	}
	size, err := parseBytes(*bytesStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -bytes: %v\n", err)
		os.Exit(2)
	}

	sink, err := openTrace(*tracePath)
	if err != nil {
		fatal(err)
	}
	reg := tack.NewMetrics()
	if tr := sink.tracer(); tr != nil {
		tr.CountDrops(reg.Counter("telemetry.dropped_events"))
	}
	cfg := tack.Config{
		Mode: parseMode(*mode), CC: *ccName, TransferBytes: size, RichTACK: true,
		Tracer: sink.tracer(), Metrics: reg,
	}
	ep, err := tack.Listen(":0", tack.EndpointConfig{
		Transport: cfg, Sockets: *sockets, DebugAddr: *debugAddr, PostMortemDir: *postmortem,
	})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()
	fmt.Fprintf(os.Stderr, "tackd: sending %d flow(s) x %d bytes to %s (mode=%s, cc=%s)\n",
		*flows, size, *to, *mode, *ccName)

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		perFlow []flowResult
		agg     transport.SenderStats
	)
	start := time.Now()
	for i := 0; i < *flows; i++ {
		c, err := ep.Dial(*to)
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			if err := c.Wait(*timeout); err != nil {
				fmt.Fprintf(os.Stderr, "tackd: conn %d: %v\n", c.ConnID(), err)
				return
			}
			el := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			perFlow = append(perFlow, flowResult{
				ConnID: c.ConnID(), Bytes: size, ElapsedSec: el.Seconds(),
				GoodputBps: float64(size) * 8 / el.Seconds(),
			})
			s := c.Sender().Stats
			agg.DataPackets += s.DataPackets
			agg.Retransmits += s.Retransmits
			agg.Timeouts += s.Timeouts
			agg.AcksReceived += s.AcksReceived
		}()
	}
	wg.Wait()
	el := time.Since(start)
	if err := sink.close(); err != nil {
		fatal(fmt.Errorf("trace: %w", err))
	}
	if len(perFlow) != *flows {
		fatal(fmt.Errorf("%d of %d flows failed", *flows-len(perFlow), *flows))
	}
	total := size * int64(*flows)
	res := result{
		Role: "send", Mode: *mode, CC: *ccName, Flows: *flows,
		Bytes: total, ElapsedSec: el.Seconds(),
		GoodputBps: float64(total) * 8 / el.Seconds(),
		PerFlow:    perFlow, Sender: &agg, Metrics: reg.Snapshot(),
	}
	emit(*jsonOut, res, func() {
		fmt.Printf("done in %v: %.2f Mbit/s aggregate goodput over %d flow(s)\n",
			el.Round(time.Millisecond), res.GoodputBps/1e6, *flows)
		fmt.Printf("data packets: %d (retx %d), acks received: %d (%.1f data:ack), timeouts: %d\n",
			agg.DataPackets, agg.Retransmits, agg.AcksReceived,
			float64(agg.DataPackets)/float64(max(1, agg.AcksReceived)), agg.Timeouts)
		printBatchStats(res.Metrics)
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
