// Command tackd is an iperf-like TCP-TACK transfer tool over real UDP
// sockets, exercising the same sans-IO protocol engine the simulator runs.
//
// Usage:
//
//	tackd serve  -listen :4500                         # receiving side
//	tackd send   -to host:4500 -bytes 100M [-cc bbr]   # sending side
//
// Both subcommands accept -trace out.jsonl (structured event trace for
// cmd/tacktrace) and -json (machine-readable result on stdout). Progress
// diagnostics always go to stderr so stdout stays clean for results.
//
// The sender reports goodput and acknowledgment statistics on completion —
// on a loopback run, compare -mode tack against -mode legacy to see the
// acknowledgment reduction first-hand.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "send":
		send(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tackd serve -listen :4500 [-mode tack|legacy] [-trace out.jsonl] [-json]
  tackd send  -to host:4500 -bytes 100M [-mode tack|legacy] [-cc bbr|cubic|...] [-trace out.jsonl] [-json]`)
	os.Exit(2)
}

func parseMode(s string) transport.Mode {
	if strings.EqualFold(s, "legacy") {
		return transport.ModeLegacy
	}
	return transport.ModeTACK
}

// parseBytes accepts 1048576, 64K, 100M, 2G.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// traceSink wraps the optional -trace output file.
type traceSink struct {
	f  *os.File
	bw *bufio.Writer
	tr *telemetry.Tracer
}

// openTrace builds a streaming tracer writing JSONL to path ("" → no trace).
func openTrace(path string) (*traceSink, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	return &traceSink{f: f, bw: bw, tr: telemetry.NewStreaming(bw)}, nil
}

// tracer returns the sink's tracer (nil on a nil sink).
func (t *traceSink) tracer() *telemetry.Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// close flushes and closes the trace file, reporting any sink error.
func (t *traceSink) close() error {
	if t == nil {
		return nil
	}
	if err := t.tr.Err(); err != nil {
		t.f.Close()
		return err
	}
	if err := t.bw.Flush(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}

// result is the -json output document (one per run, on stdout).
type result struct {
	Role       string             `json:"role"`
	Mode       string             `json:"mode"`
	CC         string             `json:"cc,omitempty"`
	Bytes      int64              `json:"bytes"`
	ElapsedSec float64            `json:"elapsed_sec"`
	GoodputBps float64            `json:"goodput_bps"`
	Sender     *transport.SenderStats
	Receiver   *transport.ReceiverStats
	Metrics    telemetry.Snapshot `json:"metrics"`
}

// MarshalJSON flattens the optional halves under stable keys.
func (r result) MarshalJSON() ([]byte, error) {
	type alias struct {
		Role       string                   `json:"role"`
		Mode       string                   `json:"mode"`
		CC         string                   `json:"cc,omitempty"`
		Bytes      int64                    `json:"bytes"`
		ElapsedSec float64                  `json:"elapsed_sec"`
		GoodputBps float64                  `json:"goodput_bps"`
		Sender     *transport.SenderStats   `json:"sender,omitempty"`
		Receiver   *transport.ReceiverStats `json:"receiver,omitempty"`
		Metrics    telemetry.Snapshot       `json:"metrics"`
	}
	return json.Marshal(alias(r))
}

// emit writes the run result: JSON on stdout when jsonOut, else the human
// lines produced by human().
func emit(jsonOut bool, r result, human func()) {
	if !jsonOut {
		human()
		return
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, "tackd: encode result:", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tackd:", err)
	os.Exit(1)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":4500", "UDP listen address")
	mode := fs.String("mode", "tack", "protocol mode: tack or legacy")
	tracePath := fs.String("trace", "", "write a JSONL event trace to this file")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)

	sink, err := openTrace(*tracePath)
	if err != nil {
		fatal(err)
	}
	reg := telemetry.NewRegistry()
	cfg := transport.Config{Mode: parseMode(*mode), Tracer: sink.tracer(), Metrics: reg}
	r, err := transport.NewUDPReceiverRunner(cfg, *listen, "")
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	fmt.Fprintf(os.Stderr, "tackd: listening on %s (mode=%s)\n", r.LocalAddr(), *mode)
	start := time.Now()
	if err := r.Run(0); err != nil {
		fatal(err)
	}
	el := time.Since(start)
	if err := sink.close(); err != nil {
		fatal(fmt.Errorf("trace: %w", err))
	}
	st := r.Receiver.Stats
	res := result{
		Role: "serve", Mode: *mode,
		Bytes: r.Receiver.Delivered(), ElapsedSec: el.Seconds(),
		GoodputBps: float64(r.Receiver.Delivered()) * 8 / el.Seconds(),
		Receiver:   &st, Metrics: reg.Snapshot(),
	}
	emit(*jsonOut, res, func() {
		fmt.Printf("received %d bytes in %v (%.2f Mbit/s)\n",
			r.Receiver.Delivered(), el.Round(time.Millisecond), res.GoodputBps/1e6)
		fmt.Printf("data packets: %d, TACKs sent: %d, IACKs sent: %d (loss %d, window %d)\n",
			st.DataPackets, st.TACKsSent, st.IACKsSent, st.LossIACKs, st.WindowIACKs)
	})
}

func send(args []string) {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	to := fs.String("to", "", "server address host:port")
	bytesStr := fs.String("bytes", "64M", "transfer size (K/M/G suffixes)")
	mode := fs.String("mode", "tack", "protocol mode: tack or legacy")
	ccName := fs.String("cc", "bbr", "congestion controller")
	timeout := fs.Duration("timeout", 10*time.Minute, "abort deadline")
	tracePath := fs.String("trace", "", "write a JSONL event trace to this file")
	jsonOut := fs.Bool("json", false, "emit a JSON result document on stdout")
	fs.Parse(args)
	if *to == "" {
		usage()
	}
	size, err := parseBytes(*bytesStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -bytes: %v\n", err)
		os.Exit(2)
	}

	sink, err := openTrace(*tracePath)
	if err != nil {
		fatal(err)
	}
	reg := telemetry.NewRegistry()
	cfg := transport.Config{
		Mode: parseMode(*mode), CC: *ccName, TransferBytes: size, RichTACK: true,
		Tracer: sink.tracer(), Metrics: reg,
	}
	s, err := transport.NewUDPSenderRunner(cfg, ":0", *to)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	fmt.Fprintf(os.Stderr, "tackd: sending %d bytes to %s (mode=%s, cc=%s)\n", size, *to, *mode, *ccName)
	start := time.Now()
	if err := s.Run(*timeout); err != nil {
		fatal(err)
	}
	el := time.Since(start)
	if err := sink.close(); err != nil {
		fatal(fmt.Errorf("trace: %w", err))
	}
	st := s.Sender.Stats
	res := result{
		Role: "send", Mode: *mode, CC: *ccName,
		Bytes: size, ElapsedSec: el.Seconds(),
		GoodputBps: float64(size) * 8 / el.Seconds(),
		Sender:     &st, Metrics: reg.Snapshot(),
	}
	emit(*jsonOut, res, func() {
		fmt.Printf("done in %v: %.2f Mbit/s goodput\n", el.Round(time.Millisecond), res.GoodputBps/1e6)
		fmt.Printf("data packets: %d (retx %d), acks received: %d (%.1f data:ack), timeouts: %d\n",
			st.DataPackets, st.Retransmits, st.AcksReceived,
			float64(st.DataPackets)/float64(max(1, st.AcksReceived)), st.Timeouts)
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
