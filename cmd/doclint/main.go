// Command doclint enforces the repository's documentation floor: every
// package (public and internal alike) must carry a package comment, and
// every exported top-level symbol — functions, methods on exported types,
// types, constants and variables — must carry a doc comment. CI runs it on
// the clean tree, so any regression fails the build:
//
//	go run ./cmd/doclint ./...
//
// With -metrics README.md it additionally cross-checks the telemetry
// surface: every metric name registered in the source with a string
// literal (reg.Counter("..."), .Gauge, .Histogram) must appear verbatim
// in the named document, so the README's metrics table can never fall
// behind the code.
//
// Arguments are directories (or the literal ./... to walk the whole
// module); _test.go files and testdata directories are skipped. Exit
// status is 1 when any symbol is missing documentation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	metricsDoc := flag.String("metrics", "", "document that must mention every registered metric name")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "...") {
			root := strings.TrimSuffix(strings.TrimSuffix(a, "..."), string(filepath.Separator))
			if root == "" {
				root = "."
			}
			sub, err := walkDirs(root)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(2)
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, a)
	}
	sort.Strings(dirs)

	failed := false
	for _, dir := range dirs {
		for _, problem := range lintDir(dir) {
			fmt.Println(problem)
			failed = true
		}
	}
	if *metricsDoc != "" {
		for _, problem := range lintMetrics(dirs, *metricsDoc) {
			fmt.Println(problem)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lintMetrics collects every metric name registered with a string
// literal — a call of the form x.Counter("name"), x.Gauge("name"), or
// x.Histogram("name") in any non-test file under dirs — and reports the
// ones the documentation file never mentions.
func lintMetrics(dirs []string, docPath string) []string {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		return []string{fmt.Sprintf("doclint: -metrics: %v", err)}
	}
	text := string(doc)
	type site struct {
		pos  token.Position
		name string
	}
	var sites []site
	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return []string{fmt.Sprintf("%s: %v", dir, err)}
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch sel.Sel.Name {
					case "Counter", "Gauge", "Histogram":
					default:
						return true
					}
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						return true
					}
					name, err := strconv.Unquote(lit.Value)
					if err != nil || name == "" {
						return true
					}
					sites = append(sites, site{fset.Position(lit.Pos()), name})
					return true
				})
			}
		}
	}
	seen := map[string]bool{}
	var problems []string
	for _, s := range sites {
		if seen[s.name] {
			continue
		}
		seen[s.name] = true
		if !strings.Contains(text, s.name) {
			problems = append(problems, fmt.Sprintf("%s: metric %q is registered but not documented in %s",
				s.pos, s.name, docPath))
		}
	}
	sort.Strings(problems)
	return problems
}

// walkDirs returns every directory under root that contains non-test Go
// files, skipping hidden and testdata directories.
func walkDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	var dirs []string
	for d := range seen {
		dirs = append(dirs, d)
	}
	return dirs, err
}

// lintDir parses one package directory and returns its problems.
func lintDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		// Deterministic file order for stable output.
		var names []string
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			problems = append(problems, lintFile(fset, pkg.Files[name])...)
		}
	}
	return problems
}

// lintFile reports exported top-level symbols missing doc comments.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	missing := func(pos token.Pos, what, name string) {
		problems = append(problems, fmt.Sprintf("%s: %s %s is exported but has no doc comment",
			fset.Position(pos), what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what := "function"
			name := d.Name.Name
			if d.Recv != nil {
				recv := receiverTypeName(d.Recv)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type: internal API
				}
				what = "method"
				name = recv + "." + name
			}
			missing(d.Pos(), what, name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil && ts.Comment == nil {
						missing(ts.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A doc comment on the grouped declaration covers every
				// spec inside it; otherwise each exported spec needs its
				// own (a trailing line comment also counts).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							kind := "constant"
							if d.Tok == token.VAR {
								kind = "variable"
							}
							missing(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
