// Command tackstat is a top-like live view of a running tack endpoint,
// built on the debug HTTP plane: it polls /debug/tack/conns on a tackd
// (or any tack.Listen with EndpointConfig.DebugAddr set) and renders a
// per-connection table of rate, RTT, flight, loss, acknowledgment
// frequency, and stream occupancy, with rates computed from deltas
// between polls.
//
// Usage:
//
//	tackstat -addr 127.0.0.1:9090 [-interval 1s] [-count 0] [-no-clear]
//
// -count bounds the number of polls (0 = until interrupted); -count 1
// -no-clear prints a single table, which is what scripts and CI use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/tacktp/tack/internal/endpoint"
	"github.com/tacktp/tack/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "debug endpoint address (host:port)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	count := flag.Int("count", 0, "number of polls before exiting (0 = forever)")
	noClear := flag.Bool("no-clear", false, "do not clear the screen between polls")
	flag.Parse()

	url := "http://" + *addr + "/debug/tack/conns"
	metricsURL := "http://" + *addr + "/debug/tack/metrics"
	client := &http.Client{Timeout: 5 * time.Second}

	prev := map[uint32]endpoint.ConnState{}
	var prevSnap telemetry.Snapshot
	prevAt := time.Now()
	for n := 0; *count == 0 || n < *count; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		states, err := poll(client, url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tackstat:", err)
			os.Exit(1)
		}
		snap, err := pollMetrics(client, metricsURL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tackstat:", err)
			os.Exit(1)
		}
		now := time.Now()
		if !*noClear {
			fmt.Print("\033[2J\033[H")
		}
		renderSockets(snap, prevSnap, now.Sub(prevAt))
		render(states, prev, now.Sub(prevAt))
		prevAt = now
		prevSnap = snap
		prev = map[uint32]endpoint.ConnState{}
		for _, s := range states {
			prev[s.ConnID] = s
		}
	}
}

func poll(client *http.Client, url string) ([]endpoint.ConnState, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var states []endpoint.ConnState
	if err := json.NewDecoder(resp.Body).Decode(&states); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return states, nil
}

// pollMetrics fetches the endpoint's full telemetry snapshot (the JSON
// twin of /metrics), the source of the per-socket counters.
func pollMetrics(client *http.Client, url string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode %s: %w", url, err)
	}
	return snap, nil
}

// renderSockets prints the socket-group table: per-member rx/tx packet
// rates (counter deltas against the previous poll; the first poll shows
// lifetime totals as the rate over the process's warm-up interval is
// unknown) plus cumulative drops. A single-socket endpoint still gets
// its one row — the same counters exist at every group size.
func renderSockets(snap, prev telemetry.Snapshot, dt time.Duration) {
	n := int(snap.Gauges["ep.sock.count"])
	if n <= 0 {
		return
	}
	fmt.Printf("%-8s %10s %10s %12s %12s %8s\n",
		"SOCKET", "RX/s", "TX/s", "RX-PKTS", "TX-PKTS", "DROPS")
	for i := 0; i < n; i++ {
		rx := snap.Counters[fmt.Sprintf("ep.sock.%d.rx_packets", i)]
		tx := snap.Counters[fmt.Sprintf("ep.sock.%d.tx_packets", i)]
		drops := snap.Counters[fmt.Sprintf("ep.sock.%d.rx_drops", i)]
		var rxRate, txRate float64
		if prev.Counters != nil && dt > 0 {
			rxRate = float64(rx-prev.Counters[fmt.Sprintf("ep.sock.%d.rx_packets", i)]) / dt.Seconds()
			txRate = float64(tx-prev.Counters[fmt.Sprintf("ep.sock.%d.tx_packets", i)]) / dt.Seconds()
		}
		fmt.Printf("%-8d %10.0f %10.0f %12d %12d %8d\n", i, rxRate, txRate, rx, tx, drops)
	}
	fmt.Println()
}

// render prints the connection table. Rates come from byte-counter
// deltas against the previous poll; connections seen for the first time
// show the lifetime average the endpoint computed instead.
func render(states []endpoint.ConnState, prev map[uint32]endpoint.ConnState, dt time.Duration) {
	fmt.Printf("tackstat  %s  conns=%d\n\n", time.Now().Format("15:04:05"), len(states))
	fmt.Printf("%-10s %-8s %-11s %9s %8s %8s %9s %7s %13s %9s %7s %5s %s\n",
		"CONN", "ROLE", "STATE", "RATE", "SRTT", "RTTMIN", "INFLIGHT", "RETX",
		"ACK-HZ (TGT)", "OVHD/MB", "STREAMS", "MIG", "ANOMALIES")
	for _, s := range states {
		rate := s.DeliveryBps
		if p, ok := prev[s.ConnID]; ok && dt > 0 {
			db := (s.BytesAcked - p.BytesAcked) + (s.BytesDelivered - p.BytesDelivered)
			rate = float64(db) * 8 / dt.Seconds()
		}
		retx := s.Retransmits
		if s.Role == "receiver" {
			retx = s.LossesDetected
		}
		target := "-"
		if s.TargetAckHz > 0 {
			target = fmt.Sprintf("%.0f", s.TargetAckHz)
		}
		anoms := strings.Join(s.Anomalies, ",")
		if anoms == "" {
			anoms = "-"
		}
		// MIG: the migration state machine — validated-migration count,
		// "prob" while a candidate address is under challenge, "rej"
		// after one failed validation.
		mig := fmt.Sprintf("%d", s.Migrations)
		switch s.PathState {
		case "probing":
			mig = "prob"
		case "rejected":
			mig = "rej"
		}
		fmt.Printf("%-10s %-8s %-11s %9s %8s %8s %9s %7d %7.1f (%3s) %9.0f %7d %5s %s\n",
			fmt.Sprintf("%08x", s.ConnID), s.Role, s.State,
			rateStr(rate),
			fmt.Sprintf("%.1fms", s.SRTTMs), fmt.Sprintf("%.1fms", s.RTTMinMs),
			sizeStr(int64(s.InflightBytes)), retx,
			s.AchievedAckHz, target,
			s.AckOverheadBytesPerMB, s.Streams, mig, anoms)
	}
}

func rateStr(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2fGb/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.1fMb/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.0fKb/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0fb/s", bps)
	}
}

func sizeStr(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
