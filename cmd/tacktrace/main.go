// Command tacktrace analyzes JSONL event traces produced by the telemetry
// layer (tackd -trace, tackbench run -trace).
//
// Usage:
//
//	tacktrace trace.jsonl              # human report
//	tacktrace -json trace.jsonl        # machine-readable summary
//	tacktrace -timeline trace.jsonl    # add a per-second per-flow timeline
//	tacktrace -                        # read the trace from stdin
//
// The report answers the questions the TACK paper asks of a flow: what
// acknowledgment frequency the receiver achieved versus the Eq. 3 target
// f_tack = min(bw/(L·MSS), β/RTTmin) and which bound was binding, why each
// IACK fired, how long loss detection took (gap observed → declared), and
// how the MAC spent its airtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
)

func main() {
	flowID := flag.Int("flow", -1, "restrict the report to one flow id")
	jsonOut := flag.Bool("json", false, "emit a JSON summary on stdout")
	timeline := flag.Bool("timeline", false, "append a per-second per-flow timeline")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tacktrace [-flow N] [-json] [-timeline] <trace.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	events, err := telemetry.DecodeJSONL(in)
	if err != nil {
		fatal(err)
	}
	if *flowID >= 0 {
		events = filterFlow(events, uint32(*flowID))
	}
	summary := telemetry.Analyze(events)

	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(jsonDoc(summary)); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(summary.String())
	if *timeline {
		printTimeline(os.Stdout, events)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tacktrace:", err)
	os.Exit(1)
}

// filterFlow keeps transport events of the given flow (MAC events are
// medium-wide and station-indexed, so they are dropped when filtering).
func filterFlow(events []telemetry.Event, id uint32) []telemetry.Event {
	out := events[:0]
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindMACTx, telemetry.KindMACCollision, telemetry.KindMACDrop:
			continue
		}
		if e.Flow == id {
			out = append(out, e)
		}
	}
	return out
}

// jsonFlow is the machine-readable per-flow digest.
type jsonFlow struct {
	Flow             uint32             `json:"flow"`
	Mode             string             `json:"mode"`
	Beta             int                `json:"beta,omitempty"`
	L                int                `json:"l,omitempty"`
	StartSec         float64            `json:"start_sec"`
	EndSec           float64            `json:"end_sec"`
	DataPackets      int                `json:"data_packets"`
	Retransmits      int                `json:"retransmits"`
	BytesSent        int64              `json:"bytes_sent"`
	BytesAcked       int64              `json:"bytes_acked"`
	TACKs            int                `json:"tacks"`
	IACKs            int                `json:"iacks"`
	AcksReceived     int                `json:"acks_received,omitempty"`
	AckTriggers      map[string]int     `json:"ack_triggers,omitempty"`
	IACKTriggers     map[string]int     `json:"iack_triggers,omitempty"`
	RTTMinSec        float64            `json:"rttmin_sec,omitempty"`
	DeliveryBps      float64            `json:"delivery_bps,omitempty"`
	AchievedAckHz    float64            `json:"achieved_ack_hz,omitempty"`
	TargetAckHz      float64            `json:"target_ack_hz,omitempty"`
	TargetByteHz     float64            `json:"target_byte_hz,omitempty"`
	TargetPeriodicHz float64            `json:"target_periodic_hz,omitempty"`
	Regime           string             `json:"regime,omitempty"`
	AckFreqError     float64            `json:"ack_freq_error,omitempty"`
	LossRanges       int                `json:"loss_ranges"`
	LossPackets      int                `json:"loss_packets"`
	LossLatencyP50   float64            `json:"loss_latency_p50_sec,omitempty"`
	LossLatencyP95   float64            `json:"loss_latency_p95_sec,omitempty"`
	LossLatencyP99   float64            `json:"loss_latency_p99_sec,omitempty"`
	LossMarks        map[string]int     `json:"loss_marks,omitempty"`
	MarkLatencyP50   map[string]float64 `json:"mark_latency_p50_sec,omitempty"`
	MarkLatencyP95   map[string]float64 `json:"mark_latency_p95_sec,omitempty"`
	TLPProbes        int                `json:"tlp_probes,omitempty"`
	LossEpisodes     int                `json:"loss_episodes"`
	RTOs             int                `json:"rtos"`
	FinalCwnd        int64              `json:"final_cwnd_bytes,omitempty"`
	FinalPacingBps   float64            `json:"final_pacing_bps,omitempty"`
	Migrations       int                `json:"migrations,omitempty"`
	PathChallenges   int                `json:"path_challenges,omitempty"`
	MigrationRejects int                `json:"migration_rejects,omitempty"`
	Anomalies        map[string]int     `json:"anomalies,omitempty"`
}

type jsonMAC struct {
	Stations         int     `json:"stations"`
	Acquisitions     int     `json:"acquisitions"`
	FramesTx         uint64  `json:"frames_tx"`
	BytesTx          int64   `json:"bytes_tx"`
	AirtimeSec       float64 `json:"airtime_sec"`
	Collisions       int     `json:"collisions"`
	CollisionTimeSec float64 `json:"collision_time_sec"`
	Drops            int     `json:"drops"`
	MeanBackoffSlots float64 `json:"mean_backoff_slots"`
}

type jsonSummary struct {
	Events  int        `json:"events"`
	SpanSec float64    `json:"span_sec"`
	Flows   []jsonFlow `json:"flows"`
	MAC     *jsonMAC   `json:"mac,omitempty"`
}

func jsonDoc(s *telemetry.TraceSummary) jsonSummary {
	doc := jsonSummary{Events: s.Events, SpanSec: s.Span.Seconds()}
	for _, f := range s.Flows {
		jf := jsonFlow{
			Flow: f.Flow, Mode: f.Mode, Beta: f.Beta, L: f.L,
			StartSec: f.Start.Seconds(), EndSec: f.End.Seconds(),
			DataPackets: f.DataPackets, Retransmits: f.Retransmits,
			BytesSent: f.BytesSent, BytesAcked: f.BytesAcked,
			TACKs: f.TACKs, IACKs: f.IACKs, AcksReceived: f.AcksReceived,
			AckTriggers: f.AckTriggers, IACKTriggers: f.IACKTriggers,
			RTTMinSec: f.RTTMin.Seconds(), DeliveryBps: f.DeliveryBps,
			AchievedAckHz: f.AchievedAckHz, TargetAckHz: f.TargetAckHz,
			TargetByteHz: f.TargetByteHz, TargetPeriodicHz: f.TargetPeriodicHz,
			Regime:     f.Regime,
			LossRanges: f.LossRanges, LossPackets: f.LossPackets,
			LossEpisodes: f.LossEpisodes, RTOs: f.RTOs,
			FinalCwnd: f.LastCwnd, FinalPacingBps: f.LastPacing,
			Migrations: f.Migrations, PathChallenges: f.PathChallenges,
			MigrationRejects: f.MigrationRejects,
		}
		if len(f.Anomalies) > 0 {
			jf.Anomalies = f.Anomalies
		}
		if e := f.AckFrequencyError(); e >= 0 {
			jf.AckFreqError = e
		}
		if f.LossLatency.Count() > 0 {
			jf.LossLatencyP50 = f.LossLatency.Percentile(50)
			jf.LossLatencyP95 = f.LossLatency.Percentile(95)
			jf.LossLatencyP99 = f.LossLatency.Percentile(99)
		}
		if len(f.LossMarks) > 0 {
			jf.LossMarks = f.LossMarks
			jf.TLPProbes = f.TLPProbes
			jf.MarkLatencyP50 = map[string]float64{}
			jf.MarkLatencyP95 = map[string]float64{}
			for det, sm := range f.MarkLatency {
				if sm.Count() > 0 {
					jf.MarkLatencyP50[det] = sm.Percentile(50)
					jf.MarkLatencyP95[det] = sm.Percentile(95)
				}
			}
		} else if f.TLPProbes > 0 {
			jf.TLPProbes = f.TLPProbes
		}
		doc.Flows = append(doc.Flows, jf)
	}
	if s.MAC != nil {
		doc.MAC = &jsonMAC{
			Stations: s.MAC.Stations, Acquisitions: s.MAC.Acquisitions,
			FramesTx: s.MAC.FramesTx, BytesTx: s.MAC.BytesTx,
			AirtimeSec: s.MAC.Airtime.Seconds(),
			Collisions: s.MAC.Collisions, CollisionTimeSec: s.MAC.CollisionTime.Seconds(),
			Drops: s.MAC.Drops, MeanBackoffSlots: s.MAC.BackoffSlots.Mean(),
		}
	}
	return doc
}

// bucket is one per-flow per-second timeline cell.
type bucket struct {
	data, retx, tacks, iacks, losses int
	marked, tlp                      int
	bytes                            int64
}

// printTimeline renders second-by-second per-flow activity — the quick "what
// happened when" view for eyeballing stalls and loss bursts.
func printTimeline(w io.Writer, events []telemetry.Event) {
	type key struct {
		flow uint32
		sec  int64
	}
	cells := map[key]*bucket{}
	flows := map[uint32]bool{}
	var maxSec int64
	cell := func(flow uint32, t sim.Time) *bucket {
		k := key{flow, int64(t / sim.Second)}
		b := cells[k]
		if b == nil {
			b = &bucket{}
			cells[k] = b
		}
		flows[flow] = true
		if k.sec > maxSec {
			maxSec = k.sec
		}
		return b
	}
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindDataSent:
			b := cell(e.Flow, e.Sim)
			b.data++
			b.bytes += e.Len
			if e.Trigger == telemetry.TrigRetrans {
				b.retx++
			}
		case telemetry.KindAckSent:
			b := cell(e.Flow, e.Sim)
			switch e.Trigger {
			case telemetry.TrigLoss, telemetry.TrigWindow, telemetry.TrigRTTSync,
				telemetry.TrigHandshake, telemetry.TrigKeepalive:
				b.iacks++
			default:
				b.tacks++
			}
		case telemetry.KindLossDeclared:
			cell(e.Flow, e.Sim).losses += int(e.Len)
		case telemetry.KindLossMarked:
			cell(e.Flow, e.Sim).marked++
		case telemetry.KindTLPProbe:
			cell(e.Flow, e.Sim).tlp++
		}
	}
	if len(flows) == 0 {
		return
	}
	ids := make([]uint32, 0, len(flows))
	for id := range flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(w, "\ntimeline (per second):\n")
	for _, id := range ids {
		fmt.Fprintf(w, "flow %d:\n", id)
		for sec := int64(0); sec <= maxSec; sec++ {
			b := cells[key{id, sec}]
			if b == nil {
				continue
			}
			fmt.Fprintf(w, "  [%3ds] data=%-6d (%7.2f Mbit) retx=%-4d tacks=%-5d iacks=%-3d lost=%-4d marked=%-4d tlp=%d\n",
				sec, b.data, float64(b.bytes)*8/1e6, b.retx, b.tacks, b.iacks, b.losses, b.marked, b.tlp)
		}
	}
}
