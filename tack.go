// Package tack is the public API of the TACK transport: TCP-TACK (Li et
// al., SIGCOMM 2020) as a user-space protocol over UDP, plus the
// deterministic simulators that reproduce the paper's evaluation.
//
// The facade re-exports the stable surface of the internal packages so
// applications depend only on this root package:
//
//	srv, _ := tack.Listen(":7000", tack.EndpointConfig{
//		Transport: tack.Config{Mode: tack.ModeTACK},
//	})
//	for {
//		conn, err := srv.Accept()
//		...
//	}
//
// and on the client side:
//
//	conn, _ := tack.Dial("server:7000", tack.Config{
//		Mode: tack.ModeTACK, TransferBytes: 16 << 20,
//	})
//	err := conn.Wait(0)
//
// Everything else — congestion controllers, the 802.11 MAC model, the
// experiment harness — stays internal; reach it through cmd/tackd,
// cmd/tackbench, or the examples.
package tack

import (
	"io"

	"github.com/tacktp/tack/internal/core"
	"github.com/tacktp/tack/internal/debugserver"
	"github.com/tacktp/tack/internal/endpoint"
	"github.com/tacktp/tack/internal/fec"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// Core transport surface.
type (
	// Mode selects the acknowledgment regime (TACK or legacy TCP-style).
	Mode = transport.Mode
	// Config parameterizes one connection: mode, congestion control,
	// payload sizing, transfer bounds, TACK parameters.
	Config = transport.Config
	// Params are the TACK acknowledgment-frequency parameters
	// (β, L, q, settle fraction) carried in Config.Params.
	Params = core.Params
	// LossDetection groups the sender's loss-detection knobs carried in
	// Config.Loss: the detector choice, the adaptive reorder-window
	// bounds, and the tail-loss-probe timeout.
	LossDetection = transport.LossDetection
	// LossDetector names a loss-detection machinery (DetectorRACK or
	// DetectorDupThresh) in LossDetection.Detector.
	LossDetector = transport.LossDetector
	// SenderStats / ReceiverStats are per-connection counters.
	SenderStats = transport.SenderStats
	// ReceiverStats mirrors SenderStats for the receiving half.
	ReceiverStats = transport.ReceiverStats
	// Sender is the sans-IO sending state machine of a connection.
	Sender = transport.Sender
	// Receiver is the sans-IO receiving state machine of a connection.
	Receiver = transport.Receiver
)

const (
	// ModeTACK is the paper's TCP-TACK.
	ModeTACK = transport.ModeTACK
	// ModeLegacy emulates a legacy TCP acknowledgment regime.
	ModeLegacy = transport.ModeLegacy
)

// Loss detectors accepted by LossDetection.Detector.
const (
	// DetectorRACK is RFC 8985 time-based loss detection with tail loss
	// probes (the default).
	DetectorRACK = transport.DetectorRACK
	// DetectorDupThresh is the duplicate-threshold baseline used for A/B
	// comparison against RACK.
	DetectorDupThresh = transport.DetectorDupThresh
)

// Endpoint surface (multi-connection UDP).
type (
	// Endpoint is a multi-connection UDP endpoint: one socket, many
	// connections demultiplexed by connection id across sharded loops.
	Endpoint = endpoint.Endpoint
	// EndpointConfig parameterizes an Endpoint (transport template,
	// shard count, accept backlog, lifecycle timeouts, and the opt-in
	// EnableMigration knob for QUIC-style path validation of peers whose
	// address changes mid-flow).
	EndpointConfig = endpoint.Config
	// Conn is one connection multiplexed on an Endpoint.
	Conn = endpoint.Conn
)

// Sentinel errors surfaced by endpoint operations.
var (
	ErrClosed           = endpoint.ErrClosed
	ErrHandshakeTimeout = endpoint.ErrHandshakeTimeout
	ErrIdleTimeout      = endpoint.ErrIdleTimeout
	ErrDeadline         = endpoint.ErrDeadline
)

// Stream multiplexing surface. Set Config.Streams to a StreamConfig to
// multiplex many ordered byte streams over one connection, then use
// Conn.OpenStream / Conn.AcceptStream.
type (
	// StreamConfig parameterizes the stream layer of a connection:
	// per-stream receive window, stream-count limit, aggregate send
	// buffer, and scheduler.
	StreamConfig = stream.Config
	// StreamOptions are per-stream scheduling knobs (priority, weight)
	// and the forward-error-correction opt-in, passed to
	// Conn.OpenStreamOptions.
	StreamOptions = stream.Options
	// SendStream is the writable half of one multiplexed stream.
	SendStream = stream.SendStream
	// RecvStream is the readable half of one multiplexed stream.
	RecvStream = stream.RecvStream
	// FECOptions opts a stream into forward error correction
	// (StreamOptions.FEC): scheme, group length, overhead cap, and the
	// adaptive-redundancy switch. Validate() bounds-checks it.
	FECOptions = fec.Options
	// FECScheme names a repair code (FECSchemeXOR or FECSchemeRS).
	FECScheme = fec.Scheme
)

// Scheduler names accepted by StreamConfig.Scheduler.
const (
	// SchedulerRoundRobin cycles writable streams fairly (default).
	SchedulerRoundRobin = stream.SchedulerRoundRobin
	// SchedulerPriority always serves the highest-priority writable stream.
	SchedulerPriority = stream.SchedulerPriority
	// SchedulerWeighted shares bandwidth by per-stream weight (DRR).
	SchedulerWeighted = stream.SchedulerWeighted
)

// FEC schemes accepted by FECOptions.Scheme.
const (
	// FECSchemeXOR is the single-repair parity code: one XOR repair per
	// group recovers any one lost packet. Cheapest; right for low,
	// non-bursty loss.
	FECSchemeXOR = fec.SchemeXOR
	// FECSchemeRS is the Reed-Solomon-style GF(2^8) code: r repairs per
	// group recover any r lost packets. Right for bursty loss.
	FECSchemeRS = fec.SchemeRS
)

// Sentinel errors surfaced by stream operations.
var (
	// ErrStreamsDisabled reports OpenStream/AcceptStream on a connection
	// whose Config.Streams was nil.
	ErrStreamsDisabled = stream.ErrStreamsDisabled
	// ErrTooManyStreams reports OpenStream beyond StreamConfig.MaxStreams.
	ErrTooManyStreams = stream.ErrTooManyStreams
	// ErrStreamTimeout reports an AcceptStream that timed out.
	ErrStreamTimeout = stream.ErrTimeout
)

// DefaultStreamConfig returns the stream layer defaults (round-robin
// scheduler, 256 KiB windows, 256 streams).
func DefaultStreamConfig() StreamConfig { return stream.Default() }

// Telemetry surface.
type (
	// Metrics is a registry of counters, gauges, and histograms populated
	// by the transport, endpoint, and MAC layers.
	Metrics = telemetry.Registry
	// Tracer records qlog-style protocol events.
	Tracer = telemetry.Tracer
)

// NewMetrics builds an empty metrics registry; assign it to
// Config.Metrics (and/or EndpointConfig.Metrics) before use.
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// NewTracer builds an in-memory event tracer; assign it to Config.Tracer.
func NewTracer() *Tracer { return telemetry.New() }

// NewStreamingTracer builds a tracer that writes each event to w as JSON
// lines instead of buffering.
func NewStreamingTracer(w io.Writer) *Tracer { return telemetry.NewStreaming(w) }

// Listen binds a UDP socket and starts a multi-connection endpoint that
// can both Accept inbound connections and Dial outbound ones.
//
// When cfg.DebugAddr is non-empty a debug HTTP server is started on that
// address alongside the endpoint, exposing /metrics (Prometheus),
// /debug/pprof/, and /debug/tack/conns; it is torn down with the
// endpoint. A metrics registry is created automatically if none was
// configured so the debug routes are never empty.
func Listen(laddr string, cfg EndpointConfig) (*Endpoint, error) {
	if cfg.DebugAddr != "" && cfg.Metrics == nil && cfg.Transport.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	ep, err := endpoint.Listen(laddr, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DebugAddr != "" {
		srv, err := debugserver.New(cfg.DebugAddr, debugserver.Options{
			Registry: ep.Metrics(),
			// StateSnapshots also refreshes the aggregate ack-overhead
			// gauge, so /metrics scrapes it fresh too.
			Conns:    ep.StateSnapshots,
			OnScrape: func() { ep.StateSnapshots() },
		})
		if err != nil {
			ep.Close()
			return nil, err
		}
		ep.OnClose(func() { srv.Close() })
	}
	return ep, nil
}

// Dial opens a standalone sending connection to raddr over a private
// ephemeral endpoint (closed automatically when the connection ends).
// Use Endpoint.Dial to multiplex many connections over one socket.
func Dial(raddr string, cfg Config) (*Conn, error) {
	return endpoint.DialAddr(raddr, cfg)
}
