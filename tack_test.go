package tack_test

import (
	"testing"
	"time"

	"github.com/tacktp/tack"
)

// TestFacadeTransfer runs a small transfer entirely through the public
// API: Listen + Accept on the server, Dial on the client, Wait on both
// halves, stats and metrics read back through the facade types.
func TestFacadeTransfer(t *testing.T) {
	const size = 256 << 10

	reg := tack.NewMetrics()
	cfg := tack.Config{
		Mode:          tack.ModeTACK,
		TransferBytes: size,
		RichTACK:      true,
		Metrics:       reg,
	}
	srv, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := tack.Dial(srv.LocalAddr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	served, err := srv.AcceptTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Wait(30 * time.Second); err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := served.Wait(30 * time.Second); err != nil {
		t.Fatalf("server: %v", err)
	}

	if got := served.Receiver().Delivered(); got != size {
		t.Fatalf("delivered %d bytes, want %d", got, size)
	}
	if !conn.Sender().Done() {
		t.Fatal("sender not done after successful Wait")
	}
	if rcv := served.Receiver().Stats; rcv.AcksSent() == 0 {
		t.Fatal("receiver sent no acknowledgments")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 {
		t.Fatal("metrics registry recorded nothing")
	}
}

// TestFacadeValidate checks that misconfiguration surfaces as an error
// from the public constructors rather than a stall.
func TestFacadeValidate(t *testing.T) {
	bad := tack.Config{Mode: tack.ModeTACK, CC: "no-such-cc"}
	if _, err := tack.Listen("127.0.0.1:0", tack.EndpointConfig{Transport: bad}); err == nil {
		t.Fatal("Listen accepted an unknown congestion controller")
	}
	if _, err := tack.Dial("127.0.0.1:1", bad); err == nil {
		t.Fatal("Dial accepted an unknown congestion controller")
	}
}
