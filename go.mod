module github.com/tacktp/tack

go 1.22
