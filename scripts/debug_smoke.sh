#!/usr/bin/env bash
# debug_smoke.sh — live observability-plane smoke test.
#
# Starts a tackd server with the debug endpoint enabled, runs a transfer
# against it, and — while the transfer is in flight — scrapes /metrics
# (validating every line against the Prometheus text exposition grammar),
# reads /debug/tack/conns (validating the per-connection JSON), and runs
# tackstat once against the live endpoint. Fails on any malformed output
# or unreachable route.
#
# Usage: scripts/debug_smoke.sh
set -euo pipefail

PORT="${TACK_DEBUG_SMOKE_PORT:-4770}"
DEBUG="127.0.0.1:${TACK_DEBUG_SMOKE_DEBUG_PORT:-9770}"
workdir="$(mktemp -d)"
server_pid=""
send_pid=""
cleanup() {
    [ -n "$send_pid" ] && kill "$send_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/tackd" ./cmd/tackd
go build -o "$workdir/tackstat" ./cmd/tackstat

# -sockets 2: the socket group's per-member counters must show up in
# every scrape below (on non-reuseport platforms this clamps to 1 and
# the assertions still hold for socket 0).
"$workdir/tackd" serve -listen "127.0.0.1:$PORT" -flows 1 -sockets 2 \
    -debug-addr "$DEBUG" -postmortem "$workdir" 2> "$workdir/serve.log" &
server_pid=$!

# Wait for the debug endpoint to come up.
for i in $(seq 1 50); do
    if curl -sf "http://$DEBUG/" > /dev/null 2>&1; then break; fi
    [ "$i" = 50 ] && { echo "debug endpoint never came up" >&2; cat "$workdir/serve.log" >&2; exit 1; }
    sleep 0.1
done

# A transfer big enough to still be in flight when we scrape.
"$workdir/tackd" send -to "127.0.0.1:$PORT" -bytes 256M -json \
    > "$workdir/send.json" 2> "$workdir/send.log" &
send_pid=$!
sleep 1

# 1. /metrics must be valid Prometheus text exposition format.
curl -sf "http://$DEBUG/metrics" > "$workdir/metrics.txt"
awk '
!/^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / &&
!/^[a-zA-Z_:][a-zA-Z0-9_:]*({le="[^"]+"})? -?[0-9.eE+-]+$/ {
    printf "malformed exposition line %d: %s\n", NR, $0 > "/dev/stderr"; bad = 1
}
END { exit bad }
' "$workdir/metrics.txt"
grep -q '^tack_ep_rx_packets ' "$workdir/metrics.txt" || {
    echo "/metrics missing tack_ep_rx_packets:" >&2
    head -20 "$workdir/metrics.txt" >&2
    exit 1
}
echo "debug smoke: /metrics OK ($(wc -l < "$workdir/metrics.txt") lines)"

# 2. /debug/tack/conns must list the in-flight receiver connection.
curl -sf "http://$DEBUG/debug/tack/conns" > "$workdir/conns.json"
grep -q '"conn_id"' "$workdir/conns.json" || {
    echo "/debug/tack/conns listed no connections mid-transfer:" >&2
    cat "$workdir/conns.json" >&2
    exit 1
}
grep -q '"role": "receiver"' "$workdir/conns.json" || {
    echo "/debug/tack/conns missing the receiver half" >&2
    exit 1
}
echo "debug smoke: /debug/tack/conns OK"

# 3. pprof must answer.
curl -sf "http://$DEBUG/debug/pprof/goroutine?debug=1" | grep -q goroutine || {
    echo "/debug/pprof/goroutine unreachable or empty" >&2
    exit 1
}
echo "debug smoke: /debug/pprof OK"

# 4. tackstat must render the socket-group and connection tables.
"$workdir/tackstat" -addr "$DEBUG" -count 1 -no-clear > "$workdir/tackstat.txt"
grep -q "CONN" "$workdir/tackstat.txt" && grep -qi "receiver" "$workdir/tackstat.txt" || {
    echo "tackstat output missing the connection table:" >&2
    cat "$workdir/tackstat.txt" >&2
    exit 1
}
grep -q "SOCKET" "$workdir/tackstat.txt" || {
    echo "tackstat output missing the per-socket table:" >&2
    cat "$workdir/tackstat.txt" >&2
    exit 1
}
# The migration column must render (count, or prob/rej while a path
# validation is in flight) — it is how an operator sees a roaming peer.
grep -q "MIG" "$workdir/tackstat.txt" || {
    echo "tackstat output missing the MIG column:" >&2
    cat "$workdir/tackstat.txt" >&2
    exit 1
}
echo "debug smoke: tackstat OK"
sed 's/^/  /' "$workdir/tackstat.txt"

# Let the transfer finish so both processes exit cleanly.
wait "$send_pid" || { echo "send failed:" >&2; cat "$workdir/send.log" >&2; exit 1; }
send_pid=""
wait "$server_pid" || { echo "serve failed:" >&2; cat "$workdir/serve.log" >&2; exit 1; }
server_pid=""
echo "debug smoke OK"
