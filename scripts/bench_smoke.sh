#!/usr/bin/env bash
# bench_smoke.sh — datapath microbenchmark smoke run.
#
# Runs the wire-codec and endpoint datapath benchmarks with -benchmem,
# writes the parsed results to BENCH_datapath.json, and fails if any
# codec benchmark (BenchmarkMarshal*/BenchmarkUnmarshal*, including the
# stream-frame shapes) reports a nonzero allocs/op — the zero-allocation
# codec is a hard invariant, not a trend to watch.
#
# Also emits BENCH_stream.json: the stream-multiplexing head-of-line
# benchmark (multi-stream vs serialized per-object completion, goodput,
# and scheduler fairness) from `tackbench mux -json`.
#
# Also emits BENCH_observability.json: flight-recorder-on vs -off
# endpoint throughput. The recorder is always on by default, so its cost
# is gated: recorder-on goodput must stay within 5% of recorder-off.
#
# Also emits BENCH_rack.json: the loss-detector A/B (RACK-TLP vs the
# duplicate-threshold baseline) over short objects under Gilbert–Elliott
# burst loss from `tackbench rack -json`. Burst loss strands object
# tails, so RACK's tail probe must beat the baseline's RTO wait at the
# pooled p99 per-object completion; a run where it doesn't fails.
#
# Also emits BENCH_migration.json: the chaos harness with a mid-transfer
# proxy Rebind and path migration enabled. Gates the recovery invariant:
# every transfer completes (no idle-timeout starvation after the address
# change) and post-rebind delivery rate recovers to at least 50% of the
# pre-rebind rate.
#
# Also emits BENCH_fec.json: the forward-error-correction A/B
# (`tackbench fec`) — the Figure-11 deadline-driven video workload over
# Gilbert–Elliott burst loss, ARQ-only vs the FEC stream class. Gates
# the feature's reason to exist: the FEC arm must cut deadline-miss
# events by at least 30% while spending under 20% of its bytes on
# repair symbols.
#
# Also emits BENCH_swarm.json: the connection-scale swarm harness
# (`tackbench swarm`) run twice — single-socket vs an SO_REUSEPORT
# socket group — gating the multi-socket speedup on connection-setup
# rate and steady-state goodput. The stage needs real parallelism to
# mean anything, so it auto-skips (writing {"skipped": true}) below 4
# cores; override the detected core count with TACK_BENCH_CORES.
#
# Usage: scripts/bench_smoke.sh [output.json] [stream-output.json] [obs-output.json] [rack-output.json] [swarm-output.json] [migration-output.json] [fec-output.json]
set -euo pipefail

out="${1:-BENCH_datapath.json}"
stream_out="${2:-BENCH_stream.json}"
obs_out="${3:-BENCH_observability.json}"
rack_out="${4:-BENCH_rack.json}"
swarm_out="${5:-BENCH_swarm.json}"
migration_out="${6:-BENCH_migration.json}"
fec_out="${7:-BENCH_fec.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# BenchmarkMarshal/* and BenchmarkUnmarshal/* are the zero-alloc
# AppendMarshal/DecodeInto paths; the legacy convenience benchmarks
# (BenchmarkMarshalData etc.) allocate by design and are not gated.
go test -run '^$' -bench 'BenchmarkMarshal/|BenchmarkUnmarshal/' -benchmem \
    ./internal/packet/ | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkEndpointEcho|BenchmarkEndpointThroughput$' \
    -benchmem -benchtime 1s ./internal/endpoint/ | tee -a "$raw"

# Parse `BenchmarkName-N  iters  ns/op  [MB/s]  B/op  allocs/op` lines into
# JSON and enforce the codec zero-alloc gate.
awk '
BEGIN { printf "{\n  \"benchmarks\": [\n"; first = 1; bad = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""; mbs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "MB/s") mbs = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") aop = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s",
        name, (ns == "" ? "null" : ns), (bop == "" ? "null" : bop), (aop == "" ? "null" : aop)
    if (mbs != "") printf ", \"mb_per_s\": %s", mbs
    printf "}"
    if ((name ~ /^BenchmarkMarshal\// || name ~ /^BenchmarkUnmarshal\//) && aop + 0 > 0) {
        printf "codec benchmark %s allocates: %s allocs/op (want 0)\n", name, aop > "/dev/stderr"
        bad = 1
    }
}
END { printf "\n  ]\n}\n"; exit bad }
' "$raw" > "$out" || { echo "bench smoke FAILED (see $out)" >&2; exit 1; }

echo "bench smoke OK: $out"

# Stream-multiplexing benchmark: deterministic in-sim run, so the JSON is
# stable for a given toolchain. The p95 improvement over the serialized
# baseline is the PR's headline number; regressions below 30% fail.
go run ./cmd/tackbench mux -json > "$stream_out"
improvement="$(sed -n 's/.*"p95_improvement":\([0-9.eE+-]*\).*/\1/p' "$stream_out")"
echo "stream bench: p95 improvement $improvement (multi-stream vs serialized)"
awk -v imp="$improvement" 'BEGIN { exit !(imp + 0 >= 0.30) }' || {
    echo "stream bench FAILED: p95 improvement $improvement < 0.30 (see $stream_out)" >&2
    exit 1
}
echo "stream bench OK: $stream_out"

# Flight-recorder overhead gate: run recorder-on (the default datapath)
# and recorder-off back to back in one process and compare MB/s. The
# recorder is a struct copy into a preallocated ring, so parity is the
# expectation; a >5% gap is a regression in the always-on path. The
# codec zero-alloc gate above already pins allocs/op with the recorder
# on (BenchmarkEndpointThroughput runs with the default config).
obs_raw="$(mktemp)"
go test -run '^$' -bench 'BenchmarkEndpointThroughput$|BenchmarkEndpointThroughputNoRecorder$' \
    -benchmem -benchtime 2s -count 3 ./internal/endpoint/ | tee "$obs_raw"
awk '
$1 ~ /^BenchmarkEndpointThroughput(-[0-9]+)?$/           { for (i=2;i<NF;i++) if ($(i+1)=="MB/s") { on += $i; n_on++ } }
$1 ~ /^BenchmarkEndpointThroughputNoRecorder(-[0-9]+)?$/ { for (i=2;i<NF;i++) if ($(i+1)=="MB/s") { off += $i; n_off++ } }
END {
    if (n_on == 0 || n_off == 0) { print "missing benchmark output" > "/dev/stderr"; exit 1 }
    on /= n_on; off /= n_off
    ratio = on / off
    printf "{\n  \"recorder_on_mb_per_s\": %.2f,\n  \"recorder_off_mb_per_s\": %.2f,\n  \"ratio\": %.4f\n}\n", on, off, ratio
    printf "flight recorder: on %.2f MB/s, off %.2f MB/s (ratio %.3f)\n", on, off, ratio > "/dev/stderr"
    exit !(ratio >= 0.95)
}
' "$obs_raw" > "$obs_out" || {
    echo "observability bench FAILED: recorder-on goodput < 95% of recorder-off (see $obs_out)" >&2
    rm -f "$obs_raw"
    exit 1
}
rm -f "$obs_raw"
echo "observability bench OK: $obs_out"

# Loss-detector A/B: deterministic in-sim run pooling many seeded
# burst-loss fetches per arm. RACK-TLP recovers stranded tails with a
# ~2×SRTT probe where the dup-thresh baseline waits out a full RTO, so
# its pooled p99 completion must be strictly better; equal-or-worse is a
# loss-detection regression.
go run ./cmd/tackbench rack -json > "$rack_out"
rack_p99="$(sed -n 's/.*"rack":{[^}]*"p99_ms":\([0-9.eE+-]*\).*/\1/p' "$rack_out")"
dup_p99="$(sed -n 's/.*"dupthresh":{[^}]*"p99_ms":\([0-9.eE+-]*\).*/\1/p' "$rack_out")"
echo "rack bench: p99 completion RACK ${rack_p99}ms vs dup-thresh ${dup_p99}ms"
awk -v r="$rack_p99" -v d="$dup_p99" 'BEGIN { exit !(r + 0 > 0 && d + 0 > 0 && r + 0 < d + 0) }' || {
    echo "rack bench FAILED: RACK p99 ${rack_p99}ms not better than dup-thresh ${dup_p99}ms (see $rack_out)" >&2
    exit 1
}
echo "rack bench OK: $rack_out"

# Post-rebind recovery gate: a mid-transfer address change (netem proxy
# Rebind) with migration enabled must not strand a single connection,
# and the delivery rate on the migrated path must come back to at least
# half the pre-rebind rate — a validated migration that limps is a
# congestion-reset or pacing regression even when it "works".
go run ./cmd/tackbench chaos -conns 2 -bytes 16M -rebind 200ms -timeout 120s -json \
    > "$migration_out"
if ! python3 - "$migration_out" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
pre, post = d["pre_rebind_pkts_per_s"], d["post_rebind_pkts_per_s"]
ratio = post / max(pre, 1e-9)
srv = d["server"]
print(f"migration bench: {d['ok']}/{d['conns']} ok, probes={srv['migration_probes']} "
      f"completed={srv['migration_completed']} failed={srv['migration_failed']}, "
      f"pre {pre:.0f} pkt/s -> post {post:.0f} pkt/s ({ratio:.2f}x)", file=sys.stderr)
ok = (d["failed"] == 0 and d["rebinds"] >= 1
      and srv["migration_completed"] >= 1 and ratio >= 0.5)
sys.exit(0 if ok else 1)
EOF
then
    echo "migration bench FAILED: rebind not survived or post-rebind rate < 50% of pre (see $migration_out)" >&2
    exit 1
fi
echo "migration bench OK: $migration_out"

# FEC A/B gate: deterministic in-sim run pooling seeded video sessions
# per arm. With a ~50 ms RTT and a ~100 ms render deadline a
# retransmission cannot save a frame but an in-flight repair can, so
# the deadline-miss event count isolates the repair path's value. The
# FEC arm must cut events >= 30% at < 20% repair-byte overhead; less
# means the encoder, the adaptive controller, or the recovery path
# regressed.
go run ./cmd/tackbench fec -json > "$fec_out"
if ! python3 - "$fec_out" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
red, ovh = d["event_reduction"], d["byte_overhead"]
print(f"fec bench: events {d['arq']['events']} (arq) -> {d['fec']['events']} (fec), "
      f"reduction {red:.2f}, overhead {ovh:.3f}, "
      f"recovered {d['fec']['recovered']}/{d['fec']['link_dropped']} dropped", file=sys.stderr)
sys.exit(0 if (red >= 0.30 and ovh < 0.20 and d["fec"]["recovered"] > 0) else 1)
EOF
then
    echo "fec bench FAILED: event reduction < 30% or overhead >= 20% (see $fec_out)" >&2
    exit 1
fi
echo "fec bench OK: $fec_out"

# Socket-group swarm gate: 2k connections with churn, single socket vs a
# reuseport group, compared on setup rate and goodput. Speedup from the
# socket group requires cores to spread across; below 4 the comparison
# measures scheduler noise, so skip (the artifact still records why).
cores="${TACK_BENCH_CORES:-$(nproc 2>/dev/null || echo 1)}"
if [ "$cores" -lt 4 ]; then
    printf '{\n  "skipped": true,\n  "reason": "need >= 4 cores for a meaningful socket-group comparison, have %s"\n}\n' \
        "$cores" > "$swarm_out"
    echo "swarm bench SKIPPED ($cores cores < 4): $swarm_out"
    exit 0
fi
swarm_sockets=4
single_json="$(mktemp)"
multi_json="$(mktemp)"
trap 'rm -f "$raw" "$single_json" "$multi_json"' EXIT
swarm_args="-conns 2000 -duration 5s -clients 32 -short 16 -long 4 -long-bytes 16M -json"
go run ./cmd/tackbench swarm -sockets 1 $swarm_args > "$single_json"
go run ./cmd/tackbench swarm -sockets "$swarm_sockets" $swarm_args > "$multi_json"
# The platform may clamp the group (non-Linux): no comparison to gate.
eff="$(sed -n 's/.*"sockets": \([0-9]*\).*/\1/p' "$multi_json" | head -1)"
if [ "${eff:-1}" -le 1 ]; then
    printf '{\n  "skipped": true,\n  "reason": "platform clamped the socket group to %s"\n}\n' \
        "${eff:-1}" > "$swarm_out"
    echo "swarm bench SKIPPED (no reuseport group): $swarm_out"
    exit 0
fi
if ! python3 - "$single_json" "$multi_json" "$swarm_out" <<'EOF'
import json, sys
single = json.load(open(sys.argv[1]))
multi = json.load(open(sys.argv[2]))
setup_ratio = multi["setup_rate_per_s"] / max(single["setup_rate_per_s"], 1e-9)
goodput_ratio = multi["goodput_mb_s"] / max(single["goodput_mb_s"], 1e-9)
doc = {
    "skipped": False,
    "sockets": multi["sockets"],
    "single": single,
    "multi": multi,
    "setup_rate_ratio": setup_ratio,
    "goodput_ratio": goodput_ratio,
}
json.dump(doc, open(sys.argv[3], "w"), indent=2)
print(f"swarm bench: setup {single['setup_rate_per_s']:.0f} -> {multi['setup_rate_per_s']:.0f}/s "
      f"({setup_ratio:.2f}x), goodput {single['goodput_mb_s']:.1f} -> {multi['goodput_mb_s']:.1f} MB/s "
      f"({goodput_ratio:.2f}x)", file=sys.stderr)
ok = setup_ratio >= 1.2 and goodput_ratio >= 1.2
sys.exit(0 if ok else 1)
EOF
then
    echo "swarm bench FAILED: socket group < 1.2x single socket (see $swarm_out)" >&2
    exit 1
fi
echo "swarm bench OK: $swarm_out"
