package pacing

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func TestBucketStartsFull(t *testing.T) {
	p := New(10e6, 3000)
	if !p.CanSend(0, 3000) {
		t.Fatal("fresh pacer should allow a full burst")
	}
	if p.CanSend(0, 3001) {
		t.Fatal("burst bound not enforced")
	}
}

func TestRefillAtRate(t *testing.T) {
	p := New(10e6, 1500) // 10 Mbit/s = 1250 B/ms
	p.OnSend(0, 1500)
	if p.CanSend(0, 1500) {
		t.Fatal("tokens not debited")
	}
	// After 1.21 ms, 1500 bytes accrued (with float rounding margin).
	if !p.CanSend(sim.Time(1.21*float64(sim.Millisecond)), 1500) {
		t.Fatal("refill too slow")
	}
}

func TestNextSendTime(t *testing.T) {
	p := New(12e6, 1500) // 12 Mbit/s = 1 ms per 1500 B
	p.OnSend(0, 1500)    // empty the bucket
	next := p.NextSendTime(0, 1500)
	if next < sim.Millisecond || next > sim.Millisecond+sim.Microsecond {
		t.Fatalf("NextSendTime = %v, want ~1ms", next)
	}
	// With credit available it must return now.
	if got := p.NextSendTime(10*sim.Millisecond, 1500); got != 10*sim.Millisecond {
		t.Fatalf("NextSendTime with credit = %v, want now", got)
	}
}

func TestNegativeBalanceDelaysNext(t *testing.T) {
	p := New(12e6, 1500)
	p.OnSend(0, 1500)
	p.OnSend(0, 1500) // balance now -1500
	next := p.NextSendTime(0, 1500)
	if next < 2*sim.Millisecond {
		t.Fatalf("NextSendTime = %v, want >= 2ms after double debit", next)
	}
}

func TestSetRateBanksCredit(t *testing.T) {
	p := New(8e6, 1500) // 1000 B/ms
	p.OnSend(0, 1500)
	p.SetRate(sim.Millisecond, 80e6) // credit so far: 1000 B
	// From 1ms at 10000 B/ms: need 2000 more bytes for a 1500B send?
	// tokens = -1500+1000 = -500... wait: bucket was 0 after OnSend? bucket
	// starts full(1500), OnSend leaves 0. After 1 ms at 8 Mbit/s => +1000.
	// Needs 500 more at 10000 B/ms = 50 µs.
	next := p.NextSendTime(sim.Millisecond, 1500)
	want := sim.Millisecond + 50*sim.Microsecond
	if next < want || next > want+sim.Microsecond {
		t.Fatalf("NextSendTime = %v, want ~%v", next, want)
	}
}

func TestZeroRateBlocks(t *testing.T) {
	p := New(0, 1500)
	p.OnSend(0, 1500)
	if p.CanSend(sim.Second, 1) {
		t.Fatal("zero-rate pacer should never refill")
	}
	if next := p.NextSendTime(sim.Second, 1500); next <= sim.Second {
		t.Fatal("zero-rate NextSendTime should back off")
	}
}

func TestSetBurstClampsTokens(t *testing.T) {
	p := New(10e6, 10000)
	p.SetBurst(1500)
	if p.CanSend(0, 1501) {
		t.Fatal("tokens not clamped after shrinking burst")
	}
}

func TestLongRunRateAccuracy(t *testing.T) {
	// Send as fast as the pacer allows for one second; goodput must match
	// the configured rate within 1%.
	p := New(100e6, 1500)
	now := sim.Time(0)
	var sent int64
	for now < sim.Second {
		if p.CanSend(now, 1500) {
			p.OnSend(now, 1500)
			sent += 1500
		} else {
			now = p.NextSendTime(now, 1500)
		}
	}
	mbps := float64(sent) * 8 / 1e6
	if mbps < 99 || mbps > 101.1 {
		t.Fatalf("paced %v Mbit in 1s at 100 Mbit/s", mbps)
	}
}
