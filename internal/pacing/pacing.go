// Package pacing implements a token-bucket packet pacer.
//
// TACK-based senders replace ACK-clocked bursts with evenly spaced
// transmissions at a pacing rate derived from the congestion controller
// (paper §5.3): without pacing, one delayed TACK would release a whole
// window at once, inflating queues and loss.
package pacing

import "github.com/tacktp/tack/internal/sim"

// Pacer meters out transmission credit at a configurable rate with a
// bounded burst allowance.
type Pacer struct {
	rateBps    float64
	burstBytes float64 // bucket capacity
	tokens     float64 // current credit in bytes
	lastRefill sim.Time
}

// New returns a pacer at rateBps whose bucket holds burstBytes of credit
// (minimum one typical packet, 1500 bytes). The bucket starts full.
func New(rateBps float64, burstBytes int) *Pacer {
	if burstBytes < 1500 {
		burstBytes = 1500
	}
	return &Pacer{rateBps: rateBps, burstBytes: float64(burstBytes), tokens: float64(burstBytes)}
}

// SetRate updates the pacing rate, first banking credit accrued at the old
// rate.
func (p *Pacer) SetRate(now sim.Time, rateBps float64) {
	p.refill(now)
	p.rateBps = rateBps
}

// Rate returns the current pacing rate in bits/s.
func (p *Pacer) Rate() float64 { return p.rateBps }

// SetBurst updates the bucket capacity in bytes.
func (p *Pacer) SetBurst(bytes int) {
	p.burstBytes = float64(bytes)
	if p.tokens > p.burstBytes {
		p.tokens = p.burstBytes
	}
}

func (p *Pacer) refill(now sim.Time) {
	if now <= p.lastRefill {
		return
	}
	elapsed := (now - p.lastRefill).Seconds()
	p.tokens += elapsed * p.rateBps / 8
	if p.tokens > p.burstBytes {
		p.tokens = p.burstBytes
	}
	p.lastRefill = now
}

// CanSend reports whether a packet of size bytes may be sent at time now.
func (p *Pacer) CanSend(now sim.Time, size int) bool {
	p.refill(now)
	return p.tokens >= float64(size)
}

// OnSend debits credit for a transmitted packet. The balance may go
// negative (a packet is never split), delaying the next send.
func (p *Pacer) OnSend(now sim.Time, size int) {
	p.refill(now)
	p.tokens -= float64(size)
}

// NextSendTime returns the earliest time a packet of size bytes may be
// sent. If credit is already available it returns now.
func (p *Pacer) NextSendTime(now sim.Time, size int) sim.Time {
	p.refill(now)
	deficit := float64(size) - p.tokens
	if deficit <= 0 {
		return now
	}
	if p.rateBps <= 0 {
		// Rate zero: effectively blocked; poll again in a while.
		return now + sim.Second
	}
	wait := deficit * 8 / p.rateBps
	return now + sim.Time(wait*1e9) + sim.Nanosecond
}
