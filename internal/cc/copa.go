package cc

import "github.com/tacktp/tack/internal/sim"

func init() {
	Register("copa", func(cfg Config) Controller { return NewCopa(cfg) })
}

// copaDelta is Copa's delay-sensitivity parameter: the target rate is
// 1/(delta·dq) packets/s where dq is the standing queueing delay.
const copaDelta = 0.5

// Copa is a simplified Copa-style delay controller (Arun & Balakrishnan,
// NSDI'18): it steers the window toward target = cwnd_bdp + 1/(delta·dq)
// packets, increasing velocity when consistently on one side of the target.
type Copa struct {
	cfg      Config
	cwnd     int
	srtt     sim.Time
	minRTT   sim.Time
	velocity float64
	lastDir  int
	dirCount int
	lastAdj  sim.Time
	slow     bool
}

// NewCopa constructs a Copa-style controller.
func NewCopa(cfg Config) *Copa {
	return &Copa{cfg: cfg, cwnd: cfg.initialCWND(), velocity: 1, slow: true}
}

// Name implements Controller.
func (c *Copa) Name() string { return "copa" }

// OnAck implements Controller.
func (c *Copa) OnAck(a Ack) {
	if a.SRTT > 0 {
		c.srtt = a.SRTT
	}
	if a.MinRTT > 0 && (c.minRTT == 0 || a.MinRTT < c.minRTT) {
		c.minRTT = a.MinRTT
	}
	if a.AppLimited || c.srtt <= 0 || c.minRTT <= 0 {
		return
	}
	dq := c.srtt - c.minRTT
	if c.slow {
		if dq < c.minRTT/10 {
			c.cwnd += a.Bytes
			c.clamp()
			return
		}
		c.slow = false
	}
	if a.Now-c.lastAdj < c.srtt/2 {
		return
	}
	c.lastAdj = a.Now
	// Target window in packets: rate 1/(delta·dq) times RTT, i.e.
	// srtt/(delta·dq) packets.
	var targetPkts float64
	if dq <= 0 {
		targetPkts = float64(c.cfg.maxCWND()) / MSS
	} else {
		targetPkts = float64(c.srtt) / (copaDelta * float64(dq))
	}
	curPkts := float64(c.cwnd) / MSS
	dir := 1
	if curPkts > targetPkts {
		dir = -1
	}
	if dir == c.lastDir {
		c.dirCount++
		if c.dirCount >= 3 {
			c.velocity *= 2
			if c.velocity > 32 {
				c.velocity = 32
			}
			c.dirCount = 0
		}
	} else {
		c.velocity = 1
		c.dirCount = 0
		c.lastDir = dir
	}
	c.cwnd += dir * int(c.velocity/(copaDelta)*MSS/2)
	c.clamp()
}

// OnLoss implements Controller. Copa treats loss mildly (delay is the main
// signal) but collapses on timeout.
func (c *Copa) OnLoss(l Loss) {
	c.slow = false
	if l.Timeout {
		c.cwnd = 2 * MSS
		return
	}
	c.cwnd = max(c.cwnd/2, 2*MSS)
	c.velocity = 1
}

func (c *Copa) clamp() {
	if c.cwnd > c.cfg.maxCWND() {
		c.cwnd = c.cfg.maxCWND()
	}
	if c.cwnd < 2*MSS {
		c.cwnd = 2 * MSS
	}
}

// CWND implements Controller.
func (c *Copa) CWND() int { return c.cwnd }

// PacingRate implements Controller.
func (c *Copa) PacingRate() float64 { return pacingFromWindow(c.cwnd, c.srtt) }
