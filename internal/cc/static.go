package cc

func init() {
	Register("static", func(cfg Config) Controller { return NewStatic(100e6, cfg) })
}

// Static is a fixed-rate controller used by the UDP-style measurement tool
// (paper §3.2) and in tests: it paces at a constant rate with an
// effectively unbounded window.
type Static struct {
	cfg  Config
	rate float64
}

// NewStatic constructs a fixed-rate controller at rateBps.
func NewStatic(rateBps float64, cfg Config) *Static {
	return &Static{cfg: cfg, rate: rateBps}
}

// Name implements Controller.
func (s *Static) Name() string { return "static" }

// OnAck implements Controller (no-op).
func (s *Static) OnAck(Ack) {}

// OnLoss implements Controller (no-op).
func (s *Static) OnLoss(Loss) {}

// CWND implements Controller.
func (s *Static) CWND() int { return s.cfg.maxCWND() }

// PacingRate implements Controller.
func (s *Static) PacingRate() float64 { return s.rate }

// SetRate changes the fixed rate.
func (s *Static) SetRate(rateBps float64) { s.rate = rateBps }
