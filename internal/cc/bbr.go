package cc

import (
	"github.com/tacktp/tack/internal/rate"
	"github.com/tacktp/tack/internal/sim"
)

func init() {
	Register("bbr", func(cfg Config) Controller { return NewBBR(cfg) })
}

// BBR state machine phases.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// BBR gain constants (from the BBR v1 design).
const (
	bbrHighGain  = 2.885 // 2/ln(2): startup pacing gain
	bbrDrainGain = 1 / bbrHighGain
	bbrCwndGain  = 2.0
)

// bbrCycle is the ProbeBW pacing-gain cycle: probe up 1.25, drain 0.75,
// then cruise six intervals at 1.0.
var bbrCycle = []float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// BBR models bottleneck bandwidth and round-trip propagation delay
// (BBR v1): a windowed-max bandwidth filter and windowed-min RTT drive a
// paced rate of gain·BtlBw with a 2·BDP window cap.
//
// Because every input arrives through the Ack event, the same
// implementation serves both legacy mode (sender-computed delivery rate
// per ACK) and the TACK receiver-based mode (delivery rate computed at the
// receiver and synced inside TACKs, paper §5.3). Since one pacing-rate
// update per TACK interval suffices — BBR's own gain-cycle steps are RTT
// granular — BBR tolerates the excessively delayed ACK clock.
type BBR struct {
	cfg    Config
	bwFilt *rate.MaxFilter // bottleneck bandwidth, bits/s
	minRTT sim.Time
	srtt   sim.Time

	state      bbrState
	cycleIdx   int
	cycleStamp sim.Time

	// Startup plateau detection (evaluated once per round trip).
	fullBW      float64
	fullBWCount int
	lastPlateau sim.Time

	// ProbeRTT bookkeeping.
	probeRTTDone  sim.Time
	minRTTStamp   sim.Time
	priorCwnd     int
	inflightLatch int

	pacingGain float64
	cwnd       int
	lastNow    sim.Time

	// ACK-aggregation compensation (the paper's §6.1 notes both stacks
	// integrate BBR's aggregation improvements; links with A-MPDU deliver
	// ACK credit in bursts, so cwnd must provision bdp + max extra acked,
	// mirroring Linux bbr_update_ack_aggregation).
	extraFilt     *rate.MaxFilter
	ackEpochStart sim.Time
	ackEpochAcked int64
	haveAckEpoch  bool
}

// NewBBR constructs a BBR controller.
func NewBBR(cfg Config) *BBR {
	return &BBR{
		cfg:        cfg,
		bwFilt:     rate.NewMaxFilter(10 * sim.Second),
		extraFilt:  rate.NewMaxFilter(10 * sim.Second),
		state:      bbrStartup,
		pacingGain: bbrHighGain,
		cwnd:       cfg.initialCWND(),
	}
}

// Name implements Controller.
func (b *BBR) Name() string { return "bbr" }

// bdpBytes returns gain·BDP in bytes, with a floor of 4 MSS.
func (b *BBR) bdpBytes(gain float64) int {
	bw := b.bwFilt.Get(b.lastNow)
	if bw <= 0 || b.minRTT <= 0 {
		return b.cfg.initialCWND()
	}
	bdp := bw / 8 * b.minRTT.Seconds() * gain
	if bdp < 4*MSS {
		bdp = 4 * MSS
	}
	return int(bdp)
}

// OnAck implements Controller.
func (b *BBR) OnAck(a Ack) {
	now := a.Now
	if now > b.lastNow {
		b.lastNow = now
	}
	if a.SRTT > 0 {
		b.srtt = a.SRTT
	}
	if a.RTT > 0 && (b.minRTT == 0 || a.RTT <= b.minRTT || now-b.minRTTStamp > 10*sim.Second) {
		b.minRTT = a.RTT
		b.minRTTStamp = now
	}
	if a.MinRTT > 0 && (b.minRTT == 0 || a.MinRTT < b.minRTT) {
		b.minRTT = a.MinRTT
		b.minRTTStamp = now
	}
	if a.DeliveryRate > 0 && !a.AppLimited {
		b.bwFilt.Update(now, a.DeliveryRate)
	}
	b.updateAckAggregation(now, a)
	// The bottleneck-bandwidth filter spans ~10 round trips (BBR v1), so
	// transient startup spikes age out promptly on long-RTT paths.
	if b.minRTT > 0 {
		w := 10 * b.minRTT
		if w < 2*sim.Second {
			w = 2 * sim.Second
		}
		if w > 10*sim.Second {
			w = 10 * sim.Second
		}
		b.bwFilt.SetWindow(w)
	}

	switch b.state {
	case bbrStartup:
		// Evaluate the plateau once per round trip: per-ack evaluation
		// would see three unchanged samples within one RTT and exit
		// startup long before the pipe fills.
		round := b.minRTT
		if round <= 0 {
			round = 100 * sim.Millisecond
		}
		if now-b.lastPlateau >= round {
			b.lastPlateau = now
			b.checkFullPipe()
		}
		if b.state == bbrDrain {
			b.pacingGain = bbrDrainGain
		}
	case bbrDrain:
		if a.Inflight <= b.bdpBytes(1.0) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		b.advanceCycle(now, a.Inflight)
	case bbrProbeRTT:
		if now >= b.probeRTTDone {
			b.minRTTStamp = now
			b.enterProbeBW(now)
		}
	}
	// Periodically dip to measure RTT when the min estimate is stale.
	if b.state != bbrProbeRTT && b.minRTT > 0 && now-b.minRTTStamp > 10*sim.Second {
		b.enterProbeRTT(now)
	}
	b.updateCwnd()
}

func (b *BBR) checkFullPipe() {
	bw := b.bwFilt.Get(b.lastNow)
	if bw > b.fullBW*1.25 {
		b.fullBW = bw
		b.fullBWCount = 0
		return
	}
	b.fullBWCount++
	if b.fullBWCount >= 3 {
		b.state = bbrDrain
	}
}

func (b *BBR) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cycleIdx = 0
	b.cycleStamp = now
	b.pacingGain = bbrCycle[0]
}

func (b *BBR) enterProbeRTT(now sim.Time) {
	b.state = bbrProbeRTT
	b.priorCwnd = b.cwnd
	b.probeRTTDone = now + 200*sim.Millisecond
	b.pacingGain = 1.0
}

func (b *BBR) advanceCycle(now sim.Time, inflight int) {
	interval := b.minRTT
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	advance := now-b.cycleStamp > interval
	// Leave the 0.75 drain phase early once inflight is at the target.
	if bbrCycle[b.cycleIdx] == 0.75 && inflight <= b.bdpBytes(1.0) {
		advance = true
	}
	if advance {
		b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycle)
		b.cycleStamp = now
		b.pacingGain = bbrCycle[b.cycleIdx]
	}
}

// updateAckAggregation measures how far ACK credit runs ahead of the
// bandwidth estimate within an aggregation epoch; the windowed maximum is
// provisioned on top of the BDP-based window.
func (b *BBR) updateAckAggregation(now sim.Time, a Ack) {
	if a.Bytes <= 0 || a.AppLimited {
		return
	}
	bw := b.bwFilt.Get(b.lastNow)
	if bw <= 0 {
		return
	}
	if !b.haveAckEpoch {
		b.haveAckEpoch = true
		b.ackEpochStart = now
		b.ackEpochAcked = 0
	}
	expected := bw / 8 * (now - b.ackEpochStart).Seconds()
	b.ackEpochAcked += int64(a.Bytes)
	extra := float64(b.ackEpochAcked) - expected
	if extra < 0 {
		// Credit fell behind the estimate: start a fresh epoch.
		b.ackEpochStart = now
		b.ackEpochAcked = int64(a.Bytes)
		extra = float64(a.Bytes)
	}
	// Cap the compensation at one initial window per epoch step to keep a
	// single burst from inflating the window unboundedly.
	if max := float64(64 * MSS); extra > max {
		extra = max
	}
	b.extraFilt.Update(now, extra)
}

// extraAcked returns the aggregation allowance in bytes.
func (b *BBR) extraAcked() int { return int(b.extraFilt.Get(b.lastNow)) }

func (b *BBR) updateCwnd() {
	switch b.state {
	case bbrProbeRTT:
		b.cwnd = 4 * MSS
	case bbrStartup:
		target := b.bdpBytes(bbrHighGain) + b.extraAcked()
		if target > b.cwnd {
			b.cwnd = target
		}
	default:
		b.cwnd = b.bdpBytes(bbrCwndGain) + b.extraAcked()
	}
	if b.state != bbrProbeRTT && b.priorCwnd > 0 && b.cwnd < b.priorCwnd && b.state == bbrProbeBW {
		// Restore window promptly after ProbeRTT.
		if b.bdpBytes(bbrCwndGain) >= b.priorCwnd {
			b.priorCwnd = 0
		}
	}
	if b.cwnd > b.cfg.maxCWND() {
		b.cwnd = b.cfg.maxCWND()
	}
}

// OnLoss implements Controller. BBR v1 reacts to timeouts only (loss is
// not a primary congestion signal).
func (b *BBR) OnLoss(l Loss) {
	if l.Timeout {
		b.cwnd = 4 * MSS
	}
}

// CWND implements Controller.
func (b *BBR) CWND() int { return b.cwnd }

// PacingRate implements Controller.
func (b *BBR) PacingRate() float64 {
	bw := b.bwFilt.Get(b.lastNow)
	if bw <= 0 {
		// Pre-measurement: pace the initial window over a guessed RTT.
		return pacingFromWindow(b.cwnd, b.srtt)
	}
	return bw * b.pacingGain
}

// State exposes the phase name for diagnostics and tests.
func (b *BBR) State() string {
	switch b.state {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probebw"
	case bbrProbeRTT:
		return "probertt"
	}
	return "?"
}

// BtlBw returns the filtered bottleneck bandwidth estimate in bits/s.
func (b *BBR) BtlBw() float64 { return b.bwFilt.Get(b.lastNow) }
