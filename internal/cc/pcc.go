package cc

import "github.com/tacktp/tack/internal/sim"

func init() {
	Register("pcc", func(cfg Config) Controller { return NewPCC(cfg) })
}

// PCC is a simplified PCC-Allegro-style online rate prober: it runs
// monitor intervals at rate·(1±epsilon), scores each with a
// throughput-minus-loss-penalty utility, and moves the base rate toward
// the better-scoring direction with adaptive step size.
type PCC struct {
	cfg    Config
	srtt   sim.Time
	minRTT sim.Time

	rate    float64 // base sending rate, bits/s
	epsilon float64
	step    float64 // multiplicative step per decision

	// Monitor-interval accounting: alternate +epsilon / -epsilon trials.
	phase      int // 0 probing up, 1 probing down
	trialStart sim.Time
	trialAcked int64
	trialLost  int64
	utilUp     float64
	haveUp     bool
	lastDir    int
	streak     int
}

// NewPCC constructs a PCC-style controller starting at 1 Mbit/s.
func NewPCC(cfg Config) *PCC {
	return &PCC{cfg: cfg, rate: 1e6, epsilon: 0.05, step: 1.05}
}

// Name implements Controller.
func (p *PCC) Name() string { return "pcc" }

// utility scores a monitor interval: throughput penalized by loss
// (Allegro-style sigmoid approximated with a steep linear penalty).
func (p *PCC) utility(acked, lost int64) float64 {
	total := acked + lost
	if total == 0 {
		return 0
	}
	lossRate := float64(lost) / float64(total)
	tput := float64(acked)
	return tput * (1 - 10*lossRate)
}

// OnAck implements Controller.
func (p *PCC) OnAck(a Ack) {
	if a.SRTT > 0 {
		p.srtt = a.SRTT
	}
	if a.MinRTT > 0 && (p.minRTT == 0 || a.MinRTT < p.minRTT) {
		p.minRTT = a.MinRTT
	}
	p.trialAcked += int64(a.Bytes)
	interval := p.srtt
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	if p.trialStart == 0 {
		p.trialStart = a.Now
		return
	}
	if a.Now-p.trialStart < interval {
		return
	}
	// Close the monitor interval.
	u := p.utility(p.trialAcked, p.trialLost)
	p.trialAcked, p.trialLost = 0, 0
	p.trialStart = a.Now
	if p.phase == 0 {
		p.utilUp = u
		p.haveUp = true
		p.phase = 1
		return
	}
	p.phase = 0
	if !p.haveUp {
		return
	}
	dir := 1
	if u > p.utilUp { // down-probe scored better
		dir = -1
	}
	if u < 0 && p.utilUp < 0 {
		// Both trials unprofitable (heavy loss): always retreat.
		dir = -1
	}
	if dir == p.lastDir {
		p.streak++
		if p.streak >= 2 && p.step < 1.25 {
			p.step *= 1.03
		}
	} else {
		p.streak = 0
		p.step = 1.05
		p.lastDir = dir
	}
	if dir > 0 {
		p.rate *= p.step
	} else {
		p.rate /= p.step
	}
	if p.rate < 64e3 {
		p.rate = 64e3
	}
	if maxR := float64(p.cfg.maxCWND()) * 8; p.rate > maxR {
		p.rate = maxR
	}
}

// OnLoss implements Controller.
func (p *PCC) OnLoss(l Loss) {
	p.trialLost += int64(l.Bytes)
	if l.Timeout {
		p.rate /= 2
		if p.rate < 64e3 {
			p.rate = 64e3
		}
	}
}

// CWND implements Controller: PCC is rate-based; expose 2x the rate·RTT
// product so the window is never the limiter.
func (p *PCC) CWND() int {
	rtt := p.srtt
	if rtt <= 0 {
		rtt = 100 * sim.Millisecond
	}
	w := int(p.rate / 8 * rtt.Seconds() * 2)
	if w < 4*MSS {
		w = 4 * MSS
	}
	if w > p.cfg.maxCWND() {
		w = p.cfg.maxCWND()
	}
	return w
}

// PacingRate implements Controller, applying the probe perturbation.
func (p *PCC) PacingRate() float64 {
	if p.phase == 0 {
		return p.rate * (1 + p.epsilon)
	}
	return p.rate * (1 - p.epsilon)
}
