package cc

import "github.com/tacktp/tack/internal/sim"

func init() {
	Register("vegas", func(cfg Config) Controller { return NewVegas(cfg) })
}

// Vegas parameters: keep between alpha and beta packets queued at the
// bottleneck.
const (
	vegasAlpha = 2 // packets
	vegasBeta  = 4
)

// Vegas is the classic delay-based controller: it estimates the backlog
// diff = cwnd·(1 − baseRTT/RTT) in packets and nudges the window to keep
// the backlog between alpha and beta.
type Vegas struct {
	cfg     Config
	cwnd    int
	srtt    sim.Time
	baseRTT sim.Time
	// Adjust once per RTT.
	lastAdjust sim.Time
	slowStart  bool
}

// NewVegas constructs a Vegas controller.
func NewVegas(cfg Config) *Vegas {
	return &Vegas{cfg: cfg, cwnd: cfg.initialCWND(), slowStart: true}
}

// Name implements Controller.
func (v *Vegas) Name() string { return "vegas" }

// OnAck implements Controller.
func (v *Vegas) OnAck(a Ack) {
	if a.SRTT > 0 {
		v.srtt = a.SRTT
	}
	if a.MinRTT > 0 && (v.baseRTT == 0 || a.MinRTT < v.baseRTT) {
		v.baseRTT = a.MinRTT
	}
	if a.AppLimited || v.baseRTT == 0 || v.srtt <= 0 {
		return
	}
	diffPkts := float64(v.cwnd) / MSS * (1 - float64(v.baseRTT)/float64(v.srtt))
	if v.slowStart {
		// Vegas slow start: double every other RTT while backlog < alpha... we
		// approximate with byte-counted growth until the backlog appears.
		if diffPkts < vegasAlpha {
			v.cwnd += a.Bytes
		} else {
			v.slowStart = false
		}
		v.clamp()
		return
	}
	if a.Now-v.lastAdjust < v.srtt {
		return
	}
	v.lastAdjust = a.Now
	switch {
	case diffPkts < vegasAlpha:
		v.cwnd += MSS
	case diffPkts > vegasBeta:
		v.cwnd -= MSS
	}
	v.clamp()
}

// OnLoss implements Controller.
func (v *Vegas) OnLoss(l Loss) {
	v.slowStart = false
	if l.Timeout {
		v.cwnd = 2 * MSS
		return
	}
	v.cwnd = max(v.cwnd*3/4, 2*MSS)
}

func (v *Vegas) clamp() {
	if v.cwnd > v.cfg.maxCWND() {
		v.cwnd = v.cfg.maxCWND()
	}
	if v.cwnd < 2*MSS {
		v.cwnd = 2 * MSS
	}
}

// CWND implements Controller.
func (v *Vegas) CWND() int { return v.cwnd }

// PacingRate implements Controller.
func (v *Vegas) PacingRate() float64 { return pacingFromWindow(v.cwnd, v.srtt) }
