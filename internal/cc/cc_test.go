package cc

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestRegistryLists(t *testing.T) {
	names := Names()
	want := map[string]bool{"reno": true, "cubic": true, "vegas": true, "bbr": true, "copa": true, "pcc": true, "static": true}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for n := range want {
		if !got[n] {
			t.Errorf("controller %q not registered", n)
		}
	}
	if _, err := New("bbr", Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := New("nope", Config{}); err == nil {
		t.Fatal("unknown controller should error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register("reno", func(Config) Controller { return nil })
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno(Config{})
	start := r.CWND()
	// Ack a full window: slow start should double it.
	r.OnAck(Ack{Now: ms(10), Bytes: start, SRTT: ms(50)})
	if r.CWND() != 2*start {
		t.Fatalf("cwnd = %d, want %d", r.CWND(), 2*start)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno(Config{})
	r.OnLoss(Loss{Now: 0}) // forces ssthresh = cwnd/2, cwnd = ssthresh
	w := r.CWND()
	// One full window of acks → exactly one MSS growth.
	r.OnAck(Ack{Now: ms(10), Bytes: w, SRTT: ms(50)})
	if r.CWND() != w+MSS {
		t.Fatalf("cwnd = %d, want %d", r.CWND(), w+MSS)
	}
}

func TestRenoLossHalves(t *testing.T) {
	r := NewReno(Config{})
	r.OnAck(Ack{Now: ms(1), Bytes: 100 * MSS})
	w := r.CWND()
	r.OnLoss(Loss{Now: ms(2)})
	if r.CWND() != w/2 {
		t.Fatalf("cwnd after loss = %d, want %d", r.CWND(), w/2)
	}
	r.OnLoss(Loss{Now: ms(3), Timeout: true})
	if r.CWND() != 2*MSS {
		t.Fatalf("cwnd after timeout = %d, want 2 MSS", r.CWND())
	}
}

func TestRenoAppLimitedNoGrowth(t *testing.T) {
	r := NewReno(Config{})
	w := r.CWND()
	r.OnAck(Ack{Now: ms(1), Bytes: 10 * MSS, AppLimited: true})
	if r.CWND() != w {
		t.Fatal("app-limited ack should not grow cwnd")
	}
}

func TestCubicRecoversTowardWmax(t *testing.T) {
	c := NewCubic(Config{})
	// Grow to ~100 MSS then lose.
	c.OnAck(Ack{Now: ms(1), Bytes: 100 * MSS, SRTT: ms(50)})
	wBefore := c.CWND()
	c.OnLoss(Loss{Now: ms(2)})
	if got := c.CWND(); got >= wBefore || got < int(float64(wBefore)*0.65) {
		t.Fatalf("cubic loss response: %d from %d, want ~0.7x", got, wBefore)
	}
	// Ack steadily for several seconds: window should approach/exceed Wmax.
	now := ms(10)
	for i := 0; i < 2000 && c.CWND() < wBefore; i++ {
		c.OnAck(Ack{Now: now, Bytes: 10 * MSS, SRTT: ms(50)})
		now += ms(10)
	}
	if c.CWND() < wBefore {
		t.Fatalf("cubic never recovered: %d < %d after %v", c.CWND(), wBefore, now)
	}
}

func TestCubicTimeoutCollapses(t *testing.T) {
	c := NewCubic(Config{})
	c.OnAck(Ack{Now: ms(1), Bytes: 100 * MSS, SRTT: ms(50)})
	c.OnLoss(Loss{Now: ms(2), Timeout: true})
	if c.CWND() != 2*MSS {
		t.Fatalf("cwnd = %d, want 2 MSS", c.CWND())
	}
}

func TestVegasBacksOffOnQueueing(t *testing.T) {
	v := NewVegas(Config{})
	// Slow start with no queueing.
	for i := int64(0); i < 20; i++ {
		v.OnAck(Ack{Now: ms(i * 50), Bytes: v.CWND(), SRTT: ms(50), MinRTT: ms(50)})
	}
	grown := v.CWND()
	if grown <= InitialWindow {
		t.Fatalf("vegas did not grow in slow start: %d", grown)
	}
	// Heavy queueing: srtt 100ms vs base 50ms → backlog >> beta → shrink.
	now := ms(2000)
	for i := 0; i < 10; i++ {
		v.OnAck(Ack{Now: now, Bytes: v.CWND(), SRTT: ms(100), MinRTT: ms(50)})
		now += ms(100)
	}
	if v.CWND() >= grown {
		t.Fatalf("vegas did not back off: %d >= %d", v.CWND(), grown)
	}
}

func TestVegasStableInBand(t *testing.T) {
	v := NewVegas(Config{})
	v.slowStart = false
	v.cwnd = 20 * MSS
	// backlog = cwnd*(1-base/srtt)/MSS: choose srtt so backlog ∈ (2,4):
	// 20*(1-50/58.5) ≈ 2.9.
	w := v.CWND()
	now := ms(0)
	for i := 0; i < 10; i++ {
		srtt := sim.Time(58.5 * float64(sim.Millisecond))
		v.OnAck(Ack{Now: now, Bytes: w, SRTT: srtt, MinRTT: ms(50)})
		now += ms(60)
	}
	if v.CWND() != w {
		t.Fatalf("vegas moved inside the [alpha,beta] band: %d -> %d", w, v.CWND())
	}
}

func TestBBRStartupToProbeBW(t *testing.T) {
	b := NewBBR(Config{})
	if b.State() != "startup" {
		t.Fatalf("initial state %s", b.State())
	}
	now := ms(0)
	// Deliver a plateaued 100 Mbit/s signal: BBR must exit startup, drain,
	// and settle in probebw.
	for i := 0; i < 100; i++ {
		now += ms(20)
		b.OnAck(Ack{Now: now, Bytes: 30 * MSS, RTT: ms(20), SRTT: ms(20), MinRTT: ms(20),
			DeliveryRate: 100e6, Inflight: 10 * MSS})
	}
	if b.State() != "probebw" {
		t.Fatalf("state = %s, want probebw", b.State())
	}
	// cwnd ≈ 2*BDP = 2 * 100e6/8*0.02 = 500 KB.
	wantBDP := int(100e6 / 8 * 0.02)
	if b.CWND() < wantBDP*3/2 || b.CWND() > wantBDP*5/2 {
		t.Fatalf("cwnd = %d, want ~2*BDP (%d)", b.CWND(), 2*wantBDP)
	}
	// Pacing rate must track the bandwidth estimate within the gain cycle.
	pr := b.PacingRate()
	if pr < 70e6 || pr > 130e6 {
		t.Fatalf("pacing rate = %.1f Mbit/s, want ~100", pr/1e6)
	}
}

func TestBBRGainCycleProbes(t *testing.T) {
	b := NewBBR(Config{})
	now := ms(0)
	seen := map[float64]bool{}
	for i := 0; i < 400; i++ {
		now += ms(20)
		b.OnAck(Ack{Now: now, Bytes: 30 * MSS, RTT: ms(20), SRTT: ms(20), MinRTT: ms(20),
			DeliveryRate: 100e6, Inflight: 20 * MSS})
		seen[b.pacingGain] = true
	}
	if !seen[1.25] || !seen[0.75] || !seen[1.0] {
		t.Fatalf("gain cycle incomplete: %v", seen)
	}
}

func TestBBRIgnoresAppLimitedSamples(t *testing.T) {
	b := NewBBR(Config{})
	b.OnAck(Ack{Now: ms(10), Bytes: MSS, RTT: ms(20), DeliveryRate: 500e6, AppLimited: true})
	if b.BtlBw() != 0 {
		t.Fatal("app-limited delivery sample polluted the bw filter")
	}
}

func TestBBRTimeoutCollapse(t *testing.T) {
	b := NewBBR(Config{})
	b.OnAck(Ack{Now: ms(10), Bytes: 30 * MSS, RTT: ms(20), DeliveryRate: 100e6})
	b.OnLoss(Loss{Now: ms(20), Timeout: true})
	if b.CWND() != 4*MSS {
		t.Fatalf("cwnd = %d, want 4 MSS", b.CWND())
	}
}

func TestCopaShrinksOnStandingQueue(t *testing.T) {
	c := NewCopa(Config{})
	// Exit slow start with queueing, then hold a big standing queue.
	now := ms(0)
	for i := 0; i < 50; i++ {
		now += ms(50)
		c.OnAck(Ack{Now: now, Bytes: c.CWND(), SRTT: ms(200), MinRTT: ms(50)})
	}
	shrunk := c.CWND()
	// target = 200/(0.5*150) ≈ 2.7 pkts → window should be small.
	if shrunk > 20*MSS {
		t.Fatalf("copa kept a big window (%d) despite standing queue", shrunk)
	}
}

func TestCopaGrowsWhenQueueEmpty(t *testing.T) {
	c := NewCopa(Config{})
	c.slow = false
	start := c.CWND()
	now := ms(0)
	for i := 0; i < 20; i++ {
		now += ms(50)
		c.OnAck(Ack{Now: now, Bytes: c.CWND(), SRTT: ms(51), MinRTT: ms(50)})
	}
	if c.CWND() <= start {
		t.Fatalf("copa did not grow with empty queue: %d", c.CWND())
	}
}

func TestPCCMovesRateUpWhenClean(t *testing.T) {
	p := NewPCC(Config{})
	r0 := p.rate
	now := ms(0)
	for i := 0; i < 200; i++ {
		now += ms(20)
		p.OnAck(Ack{Now: now, Bytes: 20 * MSS, SRTT: ms(100)})
	}
	if p.rate <= r0 {
		t.Fatalf("pcc rate did not increase without loss: %.0f -> %.0f", r0, p.rate)
	}
}

func TestPCCBacksOffOnLoss(t *testing.T) {
	p := NewPCC(Config{})
	p.rate = 50e6
	now := ms(0)
	for i := 0; i < 200; i++ {
		now += ms(20)
		p.OnAck(Ack{Now: now, Bytes: 5 * MSS, SRTT: ms(100)})
		p.OnLoss(Loss{Now: now, Bytes: 3 * MSS})
	}
	if p.rate >= 50e6 {
		t.Fatalf("pcc rate did not decrease under heavy loss: %.0f", p.rate)
	}
	p.OnLoss(Loss{Now: now, Timeout: true})
	if p.rate >= 25e6+1 {
		t.Fatalf("pcc timeout did not halve rate: %.0f", p.rate)
	}
}

func TestStaticFixedRate(t *testing.T) {
	s := NewStatic(42e6, Config{})
	s.OnAck(Ack{Bytes: 100 * MSS})
	s.OnLoss(Loss{Bytes: 100 * MSS, Timeout: true})
	if s.PacingRate() != 42e6 {
		t.Fatalf("rate = %v", s.PacingRate())
	}
	s.SetRate(7e6)
	if s.PacingRate() != 7e6 {
		t.Fatal("SetRate failed")
	}
	if s.CWND() < 1<<20 {
		t.Fatal("static window should be effectively unbounded")
	}
}

func TestAllControllersSurviveArbitraryFeedback(t *testing.T) {
	// Smoke: no controller may panic, return nonpositive cwnd, or a negative
	// pacing rate under adversarial event streams.
	for _, name := range Names() {
		ctrl, err := New(name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		now := sim.Time(0)
		for i := 0; i < 500; i++ {
			now += ms(int64(i%17 + 1))
			switch i % 5 {
			case 0:
				ctrl.OnAck(Ack{Now: now, Bytes: MSS, RTT: ms(int64(i%300 + 1)), SRTT: ms(100), MinRTT: ms(10), DeliveryRate: float64(i) * 1e5, Inflight: i * 100})
			case 1:
				ctrl.OnAck(Ack{Now: now, Bytes: 100 * MSS, AppLimited: true})
			case 2:
				ctrl.OnLoss(Loss{Now: now, Bytes: MSS})
			case 3:
				ctrl.OnAck(Ack{Now: now})
			case 4:
				if i%55 == 4 {
					ctrl.OnLoss(Loss{Now: now, Bytes: 10 * MSS, Timeout: true})
				}
			}
			if ctrl.CWND() <= 0 {
				t.Fatalf("%s: nonpositive cwnd %d at step %d", name, ctrl.CWND(), i)
			}
			if ctrl.PacingRate() < 0 {
				t.Fatalf("%s: negative pacing rate at step %d", name, i)
			}
		}
	}
}
