package cc

import "github.com/tacktp/tack/internal/sim"

func init() {
	Register("reno", func(cfg Config) Controller { return NewReno(cfg) })
}

// Reno is classic NewReno-style AIMD: slow start to ssthresh, then one MSS
// of growth per RTT, halving on loss.
type Reno struct {
	cfg      Config
	cwnd     int
	ssthresh int
	srtt     sim.Time
	// acked accumulates bytes for congestion-avoidance growth.
	acked int
}

// NewReno constructs a Reno controller.
func NewReno(cfg Config) *Reno {
	return &Reno{cfg: cfg, cwnd: cfg.initialCWND(), ssthresh: cfg.maxCWND()}
}

// Name implements Controller.
func (r *Reno) Name() string { return "reno" }

// OnAck implements Controller.
func (r *Reno) OnAck(a Ack) {
	if a.SRTT > 0 {
		r.srtt = a.SRTT
	}
	if a.AppLimited {
		return
	}
	if r.cwnd < r.ssthresh {
		// Slow start: grow by bytes acked (ABC, one MSS per MSS acked).
		r.cwnd += a.Bytes
	} else {
		// Congestion avoidance: one MSS per cwnd of acked bytes.
		r.acked += a.Bytes
		if r.acked >= r.cwnd {
			r.acked -= r.cwnd
			r.cwnd += MSS
		}
	}
	if r.cwnd > r.cfg.maxCWND() {
		r.cwnd = r.cfg.maxCWND()
	}
}

// OnLoss implements Controller.
func (r *Reno) OnLoss(l Loss) {
	if l.Timeout {
		r.ssthresh = max(r.cwnd/2, 2*MSS)
		r.cwnd = 2 * MSS
		return
	}
	r.ssthresh = max(r.cwnd/2, 2*MSS)
	r.cwnd = r.ssthresh
	r.acked = 0
}

// CWND implements Controller.
func (r *Reno) CWND() int { return r.cwnd }

// PacingRate implements Controller.
func (r *Reno) PacingRate() float64 { return pacingFromWindow(r.cwnd, r.srtt) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
