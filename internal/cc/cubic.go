package cc

import (
	"math"

	"github.com/tacktp/tack/internal/sim"
)

func init() {
	Register("cubic", func(cfg Config) Controller { return NewCubic(cfg) })
}

// CUBIC constants (RFC 8312): scaling constant C and multiplicative
// decrease factor beta.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Cubic implements the CUBIC window growth function: after a loss at window
// Wmax, the window follows W(t) = C·(t−K)³ + Wmax with K = ∛(Wmax·(1−β)/C),
// giving fast recovery toward Wmax and aggressive probing beyond it.
type Cubic struct {
	cfg      Config
	cwnd     int
	ssthresh int
	srtt     sim.Time

	wMax       float64  // window at last reduction, in MSS units
	k          float64  // time to reach wMax, seconds
	epochStart sim.Time // start of the current growth epoch
	inEpoch    bool
	acked      int // byte accumulator for Reno-friendly region
}

// NewCubic constructs a CUBIC controller.
func NewCubic(cfg Config) *Cubic {
	return &Cubic{cfg: cfg, cwnd: cfg.initialCWND(), ssthresh: cfg.maxCWND()}
}

// Name implements Controller.
func (c *Cubic) Name() string { return "cubic" }

// OnAck implements Controller.
func (c *Cubic) OnAck(a Ack) {
	if a.SRTT > 0 {
		c.srtt = a.SRTT
	}
	if a.AppLimited {
		return
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += a.Bytes
		if c.cwnd > c.cfg.maxCWND() {
			c.cwnd = c.cfg.maxCWND()
		}
		return
	}
	if !c.inEpoch {
		c.inEpoch = true
		c.epochStart = a.Now
		cur := float64(c.cwnd) / MSS
		if cur < c.wMax {
			c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
		} else {
			c.k = 0
			c.wMax = cur
		}
	}
	t := (a.Now - c.epochStart).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax // in MSS
	cur := float64(c.cwnd) / MSS
	if target > cur {
		// Approach the cubic target over roughly one RTT.
		c.acked += a.Bytes
		inc := (target - cur) / cur // MSS per MSS acked
		grow := int(inc * float64(c.acked))
		if grow > 0 {
			c.cwnd += grow
			c.acked = 0
		}
	} else {
		// Reno-friendly floor: one MSS per window.
		c.acked += a.Bytes
		if c.acked >= c.cwnd {
			c.acked -= c.cwnd
			c.cwnd += MSS
		}
	}
	if c.cwnd > c.cfg.maxCWND() {
		c.cwnd = c.cfg.maxCWND()
	}
}

// OnLoss implements Controller.
func (c *Cubic) OnLoss(l Loss) {
	c.wMax = float64(c.cwnd) / MSS
	c.inEpoch = false
	if l.Timeout {
		c.ssthresh = max(int(float64(c.cwnd)*cubicBeta), 2*MSS)
		c.cwnd = 2 * MSS
		return
	}
	c.cwnd = max(int(float64(c.cwnd)*cubicBeta), 2*MSS)
	c.ssthresh = c.cwnd
	c.acked = 0
}

// CWND implements Controller.
func (c *Cubic) CWND() int { return c.cwnd }

// PacingRate implements Controller.
func (c *Cubic) PacingRate() float64 { return pacingFromWindow(c.cwnd, c.srtt) }
