// Package cc implements congestion controllers behind a single interface.
//
// The TACK paper argues (§5.3, §7) that most controllers work with TACK
// once their feedback inputs — RTT samples, delivery-rate samples, loss
// indications — are decoupled from per-packet ACK arrival. This package
// therefore expresses every controller against abstract feedback events; the
// transport layer decides whether those events come from legacy per-packet
// ACKs (sender-computed delivery rate) or from TACKs (receiver-computed,
// synced in the ACK — the receiver-based paradigm).
//
// Implemented families: Reno, CUBIC, Vegas (window-based); BBR (rate-based,
// the paper's co-designed controller), a Copa-style delay controller and a
// PCC-style online rate prober (for the Figure 14 scheme population); and a
// fixed-rate controller for tooling.
package cc

import (
	"fmt"
	"sort"

	"github.com/tacktp/tack/internal/sim"
)

// MSS is the maximum segment size assumed for window arithmetic, matching
// the paper's full-sized 1500-byte packets.
const MSS = 1500

// Ack carries the feedback delivered to a controller when new data is
// acknowledged.
type Ack struct {
	Now sim.Time
	// Bytes newly acknowledged by this event.
	Bytes int
	// RTT is the sample associated with this feedback (0 when absent).
	RTT sim.Time
	// SRTT and MinRTT are the transport's current smoothed/minimum
	// estimates (0 when unknown).
	SRTT   sim.Time
	MinRTT sim.Time
	// DeliveryRate is the latest delivery-rate sample in bits/s (0 when
	// unknown). In TACK mode it is receiver-computed and synced via TACK.
	DeliveryRate float64
	// Inflight is the number of unacknowledged bytes after this event.
	Inflight int
	// AppLimited marks samples taken while the sender had no data to send.
	AppLimited bool
}

// Loss carries the feedback delivered once per loss episode.
type Loss struct {
	Now      sim.Time
	Bytes    int // bytes declared lost
	Inflight int
	// Timeout marks an RTO-driven episode (full window collapse).
	Timeout bool
}

// Controller adapts the send rate to network feedback.
type Controller interface {
	// Name identifies the controller (e.g. "bbr", "cubic").
	Name() string
	// OnAck processes an acknowledgment event.
	OnAck(a Ack)
	// OnLoss processes a loss episode.
	OnLoss(l Loss)
	// CWND returns the congestion window in bytes.
	CWND() int
	// PacingRate returns the pacing rate in bits/s (paper §5.3: window-based
	// controllers convert CWND/sRTT to a rate; rate-based ones publish the
	// estimated bandwidth with a cycle gain).
	PacingRate() float64
}

// InitialWindow is the conventional initial congestion window (10 MSS).
const InitialWindow = 10 * MSS

// Config parameterizes controller construction.
type Config struct {
	// InitialCWND in bytes (0 selects InitialWindow).
	InitialCWND int
	// MaxCWND bounds window growth in bytes (0 = 64 MiB).
	MaxCWND int
}

func (c Config) initialCWND() int {
	if c.InitialCWND > 0 {
		return c.InitialCWND
	}
	return InitialWindow
}

func (c Config) maxCWND() int {
	if c.MaxCWND > 0 {
		return c.MaxCWND
	}
	return 64 << 20
}

// Factory builds a controller instance.
type Factory func(cfg Config) Controller

var registry = map[string]Factory{}

// Register adds a named controller factory; duplicate names panic.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cc: duplicate controller %q", name))
	}
	registry[name] = f
}

// New builds a registered controller by name.
func New(name string, cfg Config) (Controller, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown controller %q", name)
	}
	return f(cfg), nil
}

// Names lists registered controllers, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// pacingFromWindow converts a congestion window to a pacing rate using the
// smoothed RTT, with a modest 1.2x gain so pacing is not the throughput
// bottleneck (mirroring Linux's pacing behaviour).
func pacingFromWindow(cwnd int, srtt sim.Time) float64 {
	if srtt <= 0 {
		srtt = 100 * sim.Millisecond // conservative pre-handshake guess
	}
	return float64(cwnd) * 8 / srtt.Seconds() * 1.2
}
