package cc

import (
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
)

// traced decorates a Controller with telemetry: it emits a cc_update event
// whenever the controller's outputs (CWND, pacing rate) change in response
// to feedback, and keeps registry gauges current. The wrapper is how the
// whole controller family gains observability without each algorithm
// carrying instrumentation code.
type traced struct {
	Controller
	tracer *telemetry.Tracer
	flow   uint32

	cwndGauge   *telemetry.Gauge
	pacingGauge *telemetry.Gauge
	lossCount   *telemetry.Counter

	lastCwnd   int
	lastPacing float64
}

// Traced wraps inner with event tracing and metrics. Either tr or reg may
// be nil; when both are nil the controller is returned unwrapped so the
// un-instrumented hot path stays untouched.
func Traced(inner Controller, tr *telemetry.Tracer, flow uint32, reg *telemetry.Registry) Controller {
	if tr == nil && reg == nil {
		return inner
	}
	return &traced{
		Controller:  inner,
		tracer:      tr,
		flow:        flow,
		cwndGauge:   reg.Gauge("cc.cwnd_bytes"),
		pacingGauge: reg.Gauge("cc.pacing_bps"),
		lossCount:   reg.Counter("cc.loss_events"),
	}
}

// OnAck forwards the event and records any output change.
func (t *traced) OnAck(a Ack) {
	t.Controller.OnAck(a)
	t.publish(a.Now, false)
}

// OnLoss forwards the episode and records the reaction.
func (t *traced) OnLoss(l Loss) {
	t.lossCount.Inc()
	t.Controller.OnLoss(l)
	t.publish(l.Now, true)
}

func (t *traced) publish(now sim.Time, onLoss bool) {
	cwnd := t.Controller.CWND()
	pacing := t.Controller.PacingRate()
	if cwnd == t.lastCwnd && pacing == t.lastPacing && !onLoss {
		return
	}
	t.lastCwnd = cwnd
	t.lastPacing = pacing
	t.cwndGauge.Set(float64(cwnd))
	t.pacingGauge.Set(pacing)
	t.tracer.CCUpdate(now, t.flow, cwnd, pacing, onLoss)
}

// Unwrap exposes the inner controller (diagnostics and tests).
func (t *traced) Unwrap() Controller { return t.Controller }

// Unwrap returns the controller beneath a telemetry wrapper, or c itself.
func Unwrap(c Controller) Controller {
	if t, ok := c.(interface{ Unwrap() Controller }); ok {
		return t.Unwrap()
	}
	return c
}
