// Package stats provides the light statistical toolkit used across the
// experiment harness: streaming summaries, percentiles, CDFs, EWMAs and
// fixed-width table rendering for paper-style result output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 observations and answers
// count/mean/min/max/percentile queries. Min, max, and sum are maintained
// incrementally so frequent extremum queries (metrics snapshots poll them)
// never force a sort; percentile queries still sort lazily.
type Summary struct {
	vals     []float64
	sorted   bool
	sum      float64
	min, max float64
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{} }

// Add records one observation.
func (s *Summary) Add(v float64) {
	if len(s.vals) == 0 || v < s.min {
		s.min = v
	}
	if len(s.vals) == 0 || v > s.max {
		s.max = v
	}
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
}

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.vals) }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Min returns the smallest observation, or +Inf when empty.
func (s *Summary) Min() float64 {
	if len(s.vals) == 0 {
		return math.Inf(1)
	}
	return s.min
}

// Max returns the largest observation, or -Inf when empty.
func (s *Summary) Max() float64 {
	if len(s.vals) == 0 {
		return math.Inf(-1)
	}
	return s.max
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Empty summaries return 0.
func (s *Summary) Percentile(p float64) float64 {
	s.ensureSorted()
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median is Percentile(50).
func (s *Summary) Median() float64 { return s.Percentile(50) }

// Values returns a copy of the observations in sorted order.
func (s *Summary) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// CDFPoint is one (value, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of the summary sampled at every observation.
func (s *Summary) CDF() []CDFPoint {
	s.ensureSorted()
	n := len(s.vals)
	out := make([]CDFPoint, n)
	for i, v := range s.vals {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(n)}
	}
	return out
}

// CDFAt returns the fraction of observations <= v.
func (s *Summary) CDFAt(v float64) float64 {
	s.ensureSorted()
	if len(s.vals) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(s.vals, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(s.vals))
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0,1]: next = alpha*sample + (1-alpha)*prev. The first sample
// initializes the average.
type EWMA struct {
	alpha float64
	val   float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha outside
// (0,1] panics: it is a construction-time programming error.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds one sample in and returns the new average.
func (e *EWMA) Update(v float64) float64 {
	if !e.init {
		e.val = v
		e.init = true
		return v
	}
	e.val = e.alpha*v + (1-e.alpha)*e.val
	return e.val
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.val }

// Initialized reports whether at least one sample was folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Table renders fixed-width ASCII tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprint(c)
	}
	t.AddRow(s...)
}

// String renders the table.
func (t *Table) String() string {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, x := range w {
		total += x
	}
	b.WriteString(strings.Repeat("-", total+2*(len(w)-1)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Mbps formats a bits-per-second value in Mbit/s with two decimals.
func Mbps(bps float64) string { return fmt.Sprintf("%.2f", bps/1e6) }

// Pct formats a fraction in [0,1] as a percentage with one decimal.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
