package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	if s.Sum() != 15 {
		t.Fatalf("Sum = %v, want 15", s.Sum())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v, want 3", s.Median())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary should return zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
	if s.CDFAt(1) != 0 {
		t.Fatal("empty CDFAt should be 0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= 4; i++ {
		s.Add(float64(i)) // 1,2,3,4
	}
	if got := s.Percentile(50); got != 2.5 {
		t.Fatalf("P50 = %v, want 2.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 4 {
		t.Fatalf("P100 = %v, want 4", got)
	}
	if got := s.Percentile(95); math.Abs(got-3.85) > 1e-9 {
		t.Fatalf("P95 = %v, want 3.85", got)
	}
}

func TestAddAfterPercentileQuery(t *testing.T) {
	s := NewSummary()
	s.Add(10)
	_ = s.Median() // forces sort
	s.Add(0)
	if got := s.Min(); got != 0 {
		t.Fatalf("Min after re-add = %v, want 0", got)
	}
}

func TestStddev(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestCDF(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	cdf := s.CDF()
	if len(cdf) != 4 {
		t.Fatalf("CDF has %d points, want 4", len(cdf))
	}
	if cdf[3].Fraction != 1 {
		t.Fatalf("last CDF fraction = %v, want 1", cdf[3].Fraction)
	}
	if got := s.CDFAt(2); got != 0.5 {
		t.Fatalf("CDFAt(2) = %v, want 0.5", got)
	}
	if got := s.CDFAt(0); got != 0 {
		t.Fatalf("CDFAt(0) = %v, want 0", got)
	}
	if got := s.CDFAt(10); got != 1 {
		t.Fatalf("CDFAt(10) = %v, want 1", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA should be uninitialized")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first Update = %v, want 10 (initialization)", got)
	}
	if got := e.Update(20); got != 15 {
		t.Fatalf("second Update = %v, want 15", got)
	}
	if e.Value() != 15 {
		t.Fatalf("Value = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v should panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Link", "Goodput")
	tb.AddRow("802.11n", "198")
	tb.AddRowf("802.11ac", 556)
	out := tb.String()
	if !strings.Contains(out, "802.11ac") || !strings.Contains(out, "556") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Mbps(54e6); got != "54.00" {
		t.Fatalf("Mbps = %q", got)
	}
	if got := Pct(0.905); got != "90.5%" {
		t.Fatalf("Pct = %q", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSummary()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDFAt is a nondecreasing function matching sorted rank.
func TestQuickCDFMatchesRank(t *testing.T) {
	f := func(vals []float64, probe float64) bool {
		s := NewSummary()
		clean := vals[:0]
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 || math.IsNaN(probe) {
			return true
		}
		sort.Float64s(clean)
		n := 0
		for _, v := range clean {
			if v <= probe {
				n++
			}
		}
		want := float64(n) / float64(len(clean))
		return math.Abs(s.CDFAt(probe)-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
