package phy

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func TestAllStandardsHaveSaneParams(t *testing.T) {
	for _, s := range All() {
		p := Get(s)
		if p.DIFS != p.SIFS+2*p.Slot {
			t.Errorf("%v: DIFS = %v, want SIFS+2*Slot", s, p.DIFS)
		}
		if p.DataRate <= 0 || p.BasicRate <= 0 {
			t.Errorf("%v: nonpositive rates", s)
		}
		if p.CWMin <= 0 || p.CWMax < p.CWMin {
			t.Errorf("%v: bad CW bounds %d/%d", s, p.CWMin, p.CWMax)
		}
		if p.RetryLimit <= 0 {
			t.Errorf("%v: bad retry limit", s)
		}
	}
}

func TestStandardString(t *testing.T) {
	if Std80211n.String() != "802.11n" || Std80211ac.String() != "802.11ac" {
		t.Fatal("Standard.String broken")
	}
	if Standard(42).String() == "" {
		t.Fatal("unknown standard must format")
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(unknown) should panic")
		}
	}()
	Get(Standard(42))
}

func TestRatesAscend(t *testing.T) {
	prev := 0.0
	for _, s := range All() {
		p := Get(s)
		if p.DataRate <= prev {
			t.Fatalf("PHY rates not ascending at %v", s)
		}
		prev = p.DataRate
	}
}

func TestDataAirtime80211b(t *testing.T) {
	p := Get(Std80211b)
	// 1500 B payload: preamble 192 µs + (28+1500)*8 bits / 11 Mbit/s ≈ 1111 µs.
	got := p.DataAirtime(1500)
	bits := float64((28 + 1500) * 8)
	want := 192*sim.Microsecond + sim.Time(bits/11e6*1e9)
	if got != want {
		t.Fatalf("airtime = %v, want %v", got, want)
	}
}

func TestAirtimeSymbolRounding(t *testing.T) {
	p := Get(Std80211g)
	a1 := p.DataAirtime(1)
	a2 := p.DataAirtime(2)
	if a1 != a2 {
		// 1 extra byte within one symbol must not change duration.
		t.Fatalf("symbol rounding broken: %v vs %v", a1, a2)
	}
	if (a1-p.PreambleData)%p.Symbol != 0 {
		t.Fatalf("payload airtime %v not whole symbols", a1-p.PreambleData)
	}
}

func TestAckShorterThanData(t *testing.T) {
	for _, s := range All() {
		p := Get(s)
		if p.AckAirtime() >= p.DataAirtime(1500) {
			t.Errorf("%v: ACK airtime %v not shorter than data %v", s, p.AckAirtime(), p.DataAirtime(1500))
		}
		if p.BlockAckAirtime() <= p.AckAirtime()/4 {
			t.Errorf("%v: BlockAck airtime %v implausible", s, p.BlockAckAirtime())
		}
	}
}

func TestAggregation(t *testing.T) {
	if Get(Std80211b).Aggregates() || Get(Std80211g).Aggregates() {
		t.Fatal("b/g should not aggregate")
	}
	if !Get(Std80211n).Aggregates() || !Get(Std80211ac).Aggregates() {
		t.Fatal("n/ac should aggregate")
	}
}

func TestAggregateAirtimeBeatsSerial(t *testing.T) {
	p := Get(Std80211n)
	payloads := make([]int, 16)
	for i := range payloads {
		payloads[i] = 1500
	}
	agg := p.AggregateAirtime(payloads)
	serial := sim.Time(0)
	for range payloads {
		serial += p.DataAirtime(1500) + p.SIFS + p.AckAirtime() + p.DIFS
	}
	if agg >= serial/2 {
		t.Fatalf("aggregation saves too little: agg %v vs serial %v", agg, serial)
	}
}

func TestCWDoubling(t *testing.T) {
	p := Get(Std80211g) // CWMin 15, CWMax 1023
	want := []int{15, 31, 63, 127, 255, 511, 1023, 1023}
	for retries, w := range want {
		if got := p.CW(retries); got != w {
			t.Fatalf("CW(%d) = %d, want %d", retries, got, w)
		}
	}
}

// TestSaturationCeilings sanity-checks the airtime model against the
// paper's Figure 7 UDP baselines: a single saturated sender (no contention)
// should achieve roughly 7 / 26 / 210 / 590 Mbit/s of UDP goodput.
func TestSaturationCeilings(t *testing.T) {
	cases := []struct {
		std     Standard
		wantMin float64 // Mbit/s
		wantMax float64
	}{
		{Std80211b, 5.5, 8.5},
		{Std80211g, 22, 32},
		{Std80211n, 180, 240},
		{Std80211ac, 520, 660},
	}
	const frame = 1518 // paper's UDP tool frame size
	for _, c := range cases {
		p := Get(c.std)
		var cycle sim.Time
		var payloadBits float64
		avgBackoff := sim.Time(p.CWMin/2) * p.Slot
		if p.Aggregates() {
			n := p.MaxAMPDUFrames
			if lim := p.MaxAMPDU / (frame + MACHeaderLen + MPDUDelimiterLen); lim < n {
				n = lim
			}
			payloads := make([]int, n)
			for i := range payloads {
				payloads[i] = frame
			}
			cycle = p.DIFS + avgBackoff + p.AggregateAirtime(payloads) + p.SIFS + p.BlockAckAirtime()
			payloadBits = float64(n * frame * 8)
		} else {
			cycle = p.DIFS + avgBackoff + p.DataAirtime(frame) + p.SIFS + p.AckAirtime()
			payloadBits = float64(frame * 8)
		}
		mbps := payloadBits / cycle.Seconds() / 1e6
		if mbps < c.wantMin || mbps > c.wantMax {
			t.Errorf("%v: saturation ceiling %.1f Mbit/s outside [%v, %v]", c.std, mbps, c.wantMin, c.wantMax)
		}
	}
}

func TestSubframeEnds(t *testing.T) {
	p := Get(Std80211n)
	payloads := []int{1500, 1500, 700}
	ends := SubframeEndsOf(p, payloads)
	if len(ends) != 3 {
		t.Fatalf("got %d offsets", len(ends))
	}
	// Strictly increasing and starting after the preamble.
	if ends[0] <= p.PreambleData {
		t.Fatalf("first subframe ends at %v, before preamble end", ends[0])
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("offsets not increasing: %v", ends)
		}
	}
	// The final offset equals the aggregate's data airtime.
	if got, want := ends[2], p.AggregateAirtime(payloads); got != want {
		t.Fatalf("last subframe end %v != aggregate airtime %v", got, want)
	}
}

// SubframeEndsOf avoids shadowing in the test.
func SubframeEndsOf(p Params, payloads []int) []sim.Time { return p.SubframeEnds(payloads) }

func TestPHYRateMbps(t *testing.T) {
	if got := Get(Std80211n).PHYRateMbps(); got != 300 {
		t.Fatalf("PHYRateMbps = %v", got)
	}
}
