// Package phy models IEEE 802.11 physical layers: per-standard timing
// constants (slot, SIFS, DIFS, contention windows), preamble durations,
// PHY data rates and frame-airtime computation, including A-MPDU
// aggregation limits for 802.11n/ac.
//
// The parameter sets mirror the links evaluated in the TACK paper (its
// Figure 7): 802.11b at 11 Mbit/s, 802.11g at 54 Mbit/s, 802.11n at
// 300 Mbit/s (2x2, 40 MHz, short GI) and 802.11ac at 866.7 Mbit/s (2x2,
// 80 MHz, 256-QAM 5/6, short GI). Aggregation limits are calibrated so the
// simulated UDP baselines land near the paper's measured ceilings
// (7 / 26 / 210 / 590 Mbit/s).
package phy

import (
	"fmt"

	"github.com/tacktp/tack/internal/sim"
)

// Standard enumerates the modelled 802.11 amendments.
type Standard int

// Supported standards.
const (
	Std80211b Standard = iota
	Std80211g
	Std80211n
	Std80211ac
)

// String returns the conventional name, e.g. "802.11n".
func (s Standard) String() string {
	switch s {
	case Std80211b:
		return "802.11b"
	case Std80211g:
		return "802.11g"
	case Std80211n:
		return "802.11n"
	case Std80211ac:
		return "802.11ac"
	default:
		return fmt.Sprintf("Standard(%d)", int(s))
	}
}

// All lists the modelled standards in ascending PHY-rate order.
func All() []Standard {
	return []Standard{Std80211b, Std80211g, Std80211n, Std80211ac}
}

// Params captures the MAC/PHY constants of one standard.
type Params struct {
	Standard Standard
	// Timing.
	Slot sim.Time // backoff slot time
	SIFS sim.Time // short interframe space
	// DIFS = SIFS + 2*Slot, precomputed for convenience.
	DIFS sim.Time
	// Contention window bounds (in slots); CW starts at CWMin and doubles
	// per retry up to CWMax.
	CWMin int
	CWMax int
	// PreambleData is the PLCP preamble+header duration prefixed to data
	// frames; PreambleCtl the one prefixed to control (ACK) frames.
	PreambleData sim.Time
	PreambleCtl  sim.Time
	// DataRate is the PHY payload rate in bit/s; BasicRate carries control
	// responses (ACK / BlockAck).
	DataRate  float64
	BasicRate float64
	// Symbol is the OFDM symbol duration used to round airtime up
	// (zero for DSSS/CCK).
	Symbol sim.Time
	// MaxAMPDU is the maximum A-MPDU aggregate size in bytes; zero disables
	// aggregation (802.11b/g).
	MaxAMPDU int
	// MaxAMPDUFrames bounds the number of subframes in one aggregate.
	MaxAMPDUFrames int
	// RetryLimit is the MAC retransmission limit per frame.
	RetryLimit int
}

// MAC-layer framing constants (bytes).
const (
	MACHeaderLen     = 28 // QoS data header + FCS
	AckFrameLen      = 14
	BlockAckFrameLen = 32
	// MPDUDelimiterLen is the per-subframe A-MPDU delimiter; subframes are
	// additionally padded to 4-byte boundaries.
	MPDUDelimiterLen = 4
)

// Get returns the parameter set of a standard. The values follow the
// IEEE 802.11-2016 tables for the configurations in the paper's Figure 7.
func Get(s Standard) Params {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	switch s {
	case Std80211b:
		p := Params{
			Standard: s,
			Slot:     us(20), SIFS: us(10),
			CWMin: 31, CWMax: 1023,
			// Long PLCP preamble + header: 144 + 48 µs.
			PreambleData: us(192), PreambleCtl: us(192),
			DataRate: 11e6, BasicRate: 2e6,
			RetryLimit: 7,
		}
		p.DIFS = p.SIFS + 2*p.Slot
		return p
	case Std80211g:
		p := Params{
			Standard: s,
			Slot:     us(9), SIFS: us(10),
			CWMin: 15, CWMax: 1023,
			// OFDM preamble 16 µs + SIGNAL 4 µs; +6 µs signal extension
			// folded into the preamble figure.
			PreambleData: us(26), PreambleCtl: us(26),
			DataRate: 54e6, BasicRate: 24e6,
			Symbol:     us(4),
			RetryLimit: 7,
		}
		p.DIFS = p.SIFS + 2*p.Slot
		return p
	case Std80211n:
		p := Params{
			Standard: s,
			Slot:     us(9), SIFS: us(16),
			CWMin: 15, CWMax: 1023,
			// HT-mixed preamble: L-STF+L-LTF+L-SIG + HT-SIG + HT-STF +
			// 2x HT-LTF ≈ 40 µs.
			PreambleData: us(40), PreambleCtl: us(26),
			DataRate: 300e6, BasicRate: 24e6,
			Symbol: sim.Time(3600), // 3.6 µs short-GI symbol
			// Calibrated so the saturated UDP ceiling lands near the
			// paper's measured 210 Mbit/s baseline.
			MaxAMPDU: 24 * 1024, MaxAMPDUFrames: 16,
			RetryLimit: 7,
		}
		p.DIFS = p.SIFS + 2*p.Slot
		return p
	case Std80211ac:
		p := Params{
			Standard: s,
			Slot:     us(9), SIFS: us(16),
			CWMin: 15, CWMax: 1023,
			PreambleData: us(44), PreambleCtl: us(26),
			DataRate: 866.7e6, BasicRate: 24e6,
			Symbol: sim.Time(3600),
			// Calibrated toward the paper's 590 Mbit/s UDP ceiling.
			MaxAMPDU: 50 * 1024, MaxAMPDUFrames: 32,
			RetryLimit: 7,
		}
		p.DIFS = p.SIFS + 2*p.Slot
		return p
	default:
		panic(fmt.Sprintf("phy: unknown standard %d", int(s)))
	}
}

// payloadAirtime returns the duration of n bytes at rate bps rounded up to
// whole symbols when the PHY is OFDM-based.
func (p Params) payloadAirtime(n int, bps float64) sim.Time {
	d := sim.Time(float64(n*8) / bps * 1e9)
	if p.Symbol > 0 && d%p.Symbol != 0 {
		d = (d/p.Symbol + 1) * p.Symbol
	}
	return d
}

// DataAirtime returns the on-air duration of a single (non-aggregated) data
// frame carrying payload bytes of layer-3+ payload.
func (p Params) DataAirtime(payload int) sim.Time {
	return p.PreambleData + p.payloadAirtime(MACHeaderLen+payload, p.DataRate)
}

// AggregateAirtime returns the on-air duration of an A-MPDU carrying the
// given subframe payload sizes, including per-MPDU delimiters and padding.
func (p Params) AggregateAirtime(payloads []int) sim.Time {
	total := 0
	for _, n := range payloads {
		sub := MPDUDelimiterLen + MACHeaderLen + n
		if rem := sub % 4; rem != 0 {
			sub += 4 - rem
		}
		total += sub
	}
	return p.PreambleData + p.payloadAirtime(total, p.DataRate)
}

// SubframeEnds returns, for an A-MPDU with the given subframe payloads,
// each subframe's completion offset from the start of the transmission
// (preamble included). The receiver hands MPDUs up as they decode, so
// delivery timestamps follow these offsets rather than the aggregate end.
func (p Params) SubframeEnds(payloads []int) []sim.Time {
	out := make([]sim.Time, len(payloads))
	total := 0
	for i, n := range payloads {
		sub := MPDUDelimiterLen + MACHeaderLen + n
		if rem := sub % 4; rem != 0 {
			sub += 4 - rem
		}
		total += sub
		out[i] = p.PreambleData + p.payloadAirtime(total, p.DataRate)
	}
	return out
}

// AckAirtime returns the duration of a MAC-layer ACK control frame.
func (p Params) AckAirtime() sim.Time {
	return p.PreambleCtl + p.payloadAirtime(AckFrameLen, p.BasicRate)
}

// BlockAckAirtime returns the duration of a BlockAck control frame.
func (p Params) BlockAckAirtime() sim.Time {
	return p.PreambleCtl + p.payloadAirtime(BlockAckFrameLen, p.BasicRate)
}

// Aggregates reports whether the standard uses A-MPDU aggregation.
func (p Params) Aggregates() bool { return p.MaxAMPDU > 0 }

// CW returns the contention window (in slots) after retries collisions,
// doubling from CWMin and saturating at CWMax.
func (p Params) CW(retries int) int {
	cw := p.CWMin
	for i := 0; i < retries && cw < p.CWMax; i++ {
		cw = cw*2 + 1
	}
	if cw > p.CWMax {
		cw = p.CWMax
	}
	return cw
}

// PHYRateMbps returns the nominal PHY rate in Mbit/s (for reporting).
func (p Params) PHYRateMbps() float64 { return p.DataRate / 1e6 }
