package rtt

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestEstimateFirstSample(t *testing.T) {
	e := NewEstimate(0)
	e.Update(ms(100), ms(50))
	if e.Smoothed() != ms(50) {
		t.Fatalf("srtt = %v, want 50ms", e.Smoothed())
	}
	if e.Var() != ms(25) {
		t.Fatalf("rttvar = %v, want 25ms", e.Var())
	}
	if m, ok := e.Min(ms(100)); !ok || m != ms(50) {
		t.Fatalf("min = %v,%v", m, ok)
	}
}

func TestEstimateSmoothing(t *testing.T) {
	e := NewEstimate(0)
	e.Update(0, ms(100))
	e.Update(ms(10), ms(200))
	// srtt = 7/8*100 + 1/8*200 = 112.5ms
	want := sim.Time(112.5 * float64(sim.Millisecond))
	if e.Smoothed() != want {
		t.Fatalf("srtt = %v, want %v", e.Smoothed(), want)
	}
	if e.Samples() != 2 {
		t.Fatalf("Samples = %d", e.Samples())
	}
}

func TestEstimateIgnoresNonPositive(t *testing.T) {
	e := NewEstimate(0)
	e.Update(0, 0)
	e.Update(0, -ms(5))
	if e.Samples() != 0 {
		t.Fatal("non-positive samples must be ignored")
	}
}

func TestMinWindowExpiry(t *testing.T) {
	e := NewEstimate(sim.Second)
	e.Update(0, ms(10))
	e.Update(ms(500), ms(40))
	if m, _ := e.Min(ms(600)); m != ms(10) {
		t.Fatalf("min = %v, want 10ms", m)
	}
	// After 1.2s the 10ms sample expired.
	if m, _ := e.Min(ms(1200)); m != ms(40) {
		t.Fatalf("min after expiry = %v, want 40ms", m)
	}
	if _, ok := e.Min(ms(5000)); ok {
		t.Fatal("empty window should report !ok")
	}
}

func TestRTO(t *testing.T) {
	e := NewEstimate(0)
	if got := e.RTO(ms(200), ms(60000), ms(1000)); got != ms(1000) {
		t.Fatalf("fallback RTO = %v", got)
	}
	e.Update(0, ms(100))
	// srtt=100, var=50 → 300ms
	if got := e.RTO(ms(200), ms(60000), ms(1000)); got != ms(300) {
		t.Fatalf("RTO = %v, want 300ms", got)
	}
	if got := e.RTO(ms(400), ms(60000), 0); got != ms(400) {
		t.Fatalf("clamped RTO = %v, want 400ms", got)
	}
	if got := e.RTO(0, ms(250), 0); got != ms(250) {
		t.Fatalf("max-clamped RTO = %v, want 250ms", got)
	}
}

func TestLegacySamplerBiasUnderAckDelay(t *testing.T) {
	// True RTT is 100ms but ACKs are delayed 20ms at the receiver: the
	// legacy sampler over-estimates RTTmin by the ACK delay.
	s := NewSampler(0)
	for i := int64(0); i < 10; i++ {
		sent := ms(i * 50)
		ackArrival := sent + ms(100) + ms(20)
		s.OnAck(ackArrival, sent)
	}
	m, _ := s.Min(ms(1000))
	if m != ms(120) {
		t.Fatalf("legacy min = %v, want 120ms (biased)", m)
	}
}

func TestAdvancedTimingCorrectsAckDelay(t *testing.T) {
	// Same scenario through the advanced path: receiver echoes departure
	// and Δt, sender recovers the true 100ms RTT.
	rt := NewReceiverTiming(0)
	st := NewSenderTiming(0)
	owd := ms(50)
	for i := int64(0); i < 10; i++ {
		sent := ms(i * 50)
		rt.OnData(sent+owd, sent)
		tackAt := sent + owd + ms(20) // TACK delayed 20ms
		echo := rt.OnAckSent(tackAt)
		if !echo.Valid {
			t.Fatal("echo should be valid after data")
		}
		st.OnAck(tackAt+owd, echo)
	}
	m, _ := st.Min(ms(1000))
	if m != ms(100) {
		t.Fatalf("advanced min = %v, want exactly 100ms", m)
	}
}

func TestReceiverTimingPicksMinOWDPacket(t *testing.T) {
	rt := NewReceiverTiming(1.0) // alpha=1: no smoothing, raw OWD
	// Three packets with OWDs 60, 40, 70ms.
	rt.OnData(ms(60), ms(0))
	rt.OnData(ms(140), ms(100))
	rt.OnData(ms(270), ms(200))
	echo := rt.OnAckSent(ms(300))
	if echo.Departure != ms(100) {
		t.Fatalf("echoed departure = %v, want 100ms (the min-OWD packet)", echo.Departure)
	}
	if echo.AckDelay != ms(160) { // 300 - 140
		t.Fatalf("ack delay = %v, want 160ms", echo.AckDelay)
	}
}

func TestReceiverTimingIntervalReset(t *testing.T) {
	rt := NewReceiverTiming(1.0)
	rt.OnData(ms(60), 0)
	_ = rt.OnAckSent(ms(70))
	echo := rt.OnAckSent(ms(80))
	if echo.Valid {
		t.Fatal("second TACK without new data must carry no echo")
	}
}

func TestReceiverSmoothedAndMinOWD(t *testing.T) {
	rt := NewReceiverTiming(0.5)
	if _, ok := rt.SmoothedOWD(); ok {
		t.Fatal("no samples yet")
	}
	rt.OnData(ms(100), ms(0))   // owd 100
	rt.OnData(ms(250), ms(200)) // owd 50 → smoothed 75
	sm, ok := rt.SmoothedOWD()
	if !ok || sm != ms(75) {
		t.Fatalf("smoothed OWD = %v,%v want 75ms", sm, ok)
	}
	min, ok := rt.MinOWD(ms(250))
	if !ok || min != ms(75) {
		t.Fatalf("min OWD = %v,%v want 75ms (min of smoothed series)", min, ok)
	}
}

func TestSenderTimingIgnoresInvalidEcho(t *testing.T) {
	st := NewSenderTiming(0)
	st.OnAck(ms(100), Echo{})
	if st.Samples() != 0 {
		t.Fatal("invalid echo must not produce a sample")
	}
}

// TestBiasGapMatchesPaperShape reproduces the §5.2 microbenchmark shape:
// with a true 100ms floor and jittered queueing plus TACK delays, the legacy
// estimate should exceed the advanced estimate by a clear margin.
func TestBiasGapMatchesPaperShape(t *testing.T) {
	legacy := NewSampler(0)
	rt := NewReceiverTiming(0)
	st := NewSenderTiming(0)
	base := ms(50) // one-way
	for i := int64(0); i < 200; i++ {
		sent := ms(i * 10)
		jitter := sim.Time((i*7)%13) * sim.Millisecond // deterministic queue wobble
		arr := sent + base + jitter
		rt.OnData(arr, sent)
		if i%5 == 4 { // TACK every 5 packets → up to 40ms ack delay
			tackAt := arr + ms(8)
			echo := rt.OnAckSent(tackAt)
			st.OnAck(tackAt+base, echo)
			legacy.OnAck(tackAt+base, sent)
		}
	}
	now := ms(3000)
	lm, _ := legacy.Min(now)
	am, _ := st.Min(now)
	if am >= lm {
		t.Fatalf("advanced %v should be below legacy %v", am, lm)
	}
	gap := float64(lm-am) / float64(am)
	if gap < 0.02 {
		t.Fatalf("bias gap %.1f%% implausibly small", gap*100)
	}
}

func TestSlidingMinTracksWindowedMinimum(t *testing.T) {
	m := NewSlidingMin(3)
	if _, ok := m.Min(); ok {
		t.Fatal("empty window must report no minimum")
	}
	m.Update(ms(40))
	m.Update(ms(30))
	m.Update(ms(50))
	if got, _ := m.Min(); got != ms(30) {
		t.Fatalf("Min = %v, want 30ms", got)
	}
	// Two more samples push the 30ms sample out of the 3-wide window.
	m.Update(ms(45))
	m.Update(ms(60))
	if got, _ := m.Min(); got != ms(45) {
		t.Fatalf("Min after eviction = %v, want 45ms", got)
	}
	// Non-positive samples are ignored, not folded in as zeros.
	m.Update(0)
	m.Update(-ms(5))
	if got, _ := m.Min(); got != ms(45) {
		t.Fatalf("Min after bogus samples = %v, want 45ms", got)
	}
}
