// Package rtt implements round-trip timing for TACK-based transports.
//
// Two estimators are provided, mirroring the paper's §5.2 comparison:
//
//   - Sampler: the legacy sender-side approach — one RTT sample per ACK,
//     computed as ack-arrival minus data-departure. When ACKs are delayed
//     (which TACK does aggressively) samples inherit the ACK delay, biasing
//     RTTmin estimates upward by 8–18% in the paper's microbenchmark.
//
//   - ReceiverTiming + SenderTiming: the "advanced" TACK scheme. The
//     receiver computes per-packet relative one-way delays (no clock sync
//     needed — only variation matters), smooths them with an EWMA, picks
//     the packet achieving the minimum smoothed OWD in each TACK interval,
//     and echoes that packet's departure timestamp together with the TACK
//     delay Δt⋆. The sender reconstructs RTT = t1 − t0⋆ − Δt⋆ and feeds a
//     windowed min-filter (τ ≤ 10 s, handling route changes); a second
//     min-filter at the receiver side is implicit in per-interval minimum
//     selection.
package rtt

import (
	"github.com/tacktp/tack/internal/rate"
	"github.com/tacktp/tack/internal/sim"
)

// MinWindow is the default min-filter horizon τ (paper §5.2: τ ≤ 10 s,
// the 10-second part handling route changes).
const MinWindow = 10 * sim.Second

// Estimate is the smoothed state shared by both estimator flavours,
// following the RFC 6298 smoothing discipline.
type Estimate struct {
	srtt   sim.Time
	rttvar sim.Time
	min    *rate.MinFilter
	init   bool
	count  int
}

// NewEstimate returns an estimator with the given min-filter window
// (0 selects MinWindow).
func NewEstimate(window sim.Time) *Estimate {
	if window <= 0 {
		window = MinWindow
	}
	return &Estimate{min: rate.NewMinFilter(window)}
}

// Update folds in one RTT sample taken at time now.
func (e *Estimate) Update(now sim.Time, sample sim.Time) {
	if sample <= 0 {
		return
	}
	e.count++
	e.min.Update(now, float64(sample))
	if !e.init {
		e.srtt = sample
		e.rttvar = sample / 2
		e.init = true
		return
	}
	// RFC 6298: alpha = 1/8, beta = 1/4.
	diff := e.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.srtt = (7*e.srtt + sample) / 8
}

// Smoothed returns the smoothed RTT (0 before the first sample).
func (e *Estimate) Smoothed() sim.Time { return e.srtt }

// Var returns the RTT variance estimate.
func (e *Estimate) Var() sim.Time { return e.rttvar }

// Min returns the windowed minimum RTT at time now; ok is false before the
// first sample (or after the window empties).
func (e *Estimate) Min(now sim.Time) (sim.Time, bool) {
	if e.min.Empty(now) {
		return 0, false
	}
	return sim.Time(e.min.Get(now)), true
}

// Samples returns how many samples were folded in.
func (e *Estimate) Samples() int { return e.count }

// RTO returns the retransmission timeout: srtt + 4·rttvar, clamped to
// [minRTO, maxRTO]; before any sample it returns fallback.
func (e *Estimate) RTO(minRTO, maxRTO, fallback sim.Time) sim.Time {
	if !e.init {
		return fallback
	}
	rto := e.srtt + 4*e.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// DefaultSlidingMinSize is the default sample count of a SlidingMin window
// (matching VPP's tcp_rack minrtt_window_size default).
const DefaultSlidingMinSize = 8

// SlidingMin tracks the minimum RTT over the last N samples — the RACK
// reorder-window base (RFC 8985 §6.1.1). Unlike the time-windowed
// Estimate.Min it forgets by sample count, so a route change flushes the
// stale minimum after N acknowledgments regardless of elapsed time; RACK
// wants "min of the last few RTTs, not a global minimum" (VPP tcp_rack.c
// rack_get_minrtt_from_window).
type SlidingMin struct {
	window []sim.Time
	next   int
	filled int
}

// NewSlidingMin returns a sliding minimum over the last size samples
// (size <= 0 selects DefaultSlidingMinSize).
func NewSlidingMin(size int) *SlidingMin {
	if size <= 0 {
		size = DefaultSlidingMinSize
	}
	return &SlidingMin{window: make([]sim.Time, size)}
}

// Update folds in one RTT sample, evicting the oldest once the window is
// full.
func (m *SlidingMin) Update(sample sim.Time) {
	if sample <= 0 {
		return
	}
	m.window[m.next] = sample
	m.next = (m.next + 1) % len(m.window)
	if m.filled < len(m.window) {
		m.filled++
	}
}

// Min returns the smallest sample currently in the window; ok is false
// before the first sample.
func (m *SlidingMin) Min() (sim.Time, bool) {
	if m.filled == 0 {
		return 0, false
	}
	// Slots [0, filled) are exactly the populated ones: the window fills
	// sequentially from 0 and wraps only once full.
	min := m.window[0]
	for i := 1; i < m.filled; i++ {
		if m.window[i] < min {
			min = m.window[i]
		}
	}
	return min, true
}

// Samples returns how many samples currently populate the window.
func (m *SlidingMin) Samples() int { return m.filled }

// Sampler is the legacy sender-side estimator: RTT = ackArrival − dataSent,
// with no correction for receiver-side ACK delay.
type Sampler struct {
	Estimate
}

// NewSampler returns a legacy estimator with the given min window.
func NewSampler(window sim.Time) *Sampler {
	return &Sampler{Estimate: *NewEstimate(window)}
}

// OnAck folds in a sample for a packet sent at sentAt and acknowledged now.
func (s *Sampler) OnAck(now, sentAt sim.Time) {
	s.Update(now, now-sentAt)
}

// ReceiverTiming is the receiver half of the advanced scheme.
type ReceiverTiming struct {
	owd *rate.MinFilter // per-interval relative OWD tracking (reset per TACK)
	// EWMA of raw per-packet OWD samples; the per-interval minimum is taken
	// over the smoothed series to suppress single-packet jitter.
	smooth *sim.Time
	alpha  float64

	// Best packet (by smoothed OWD) within the current TACK interval.
	haveBest      bool
	bestOWD       sim.Time
	bestDeparture sim.Time
	bestArrival   sim.Time
}

// NewReceiverTiming returns receiver timing state. alpha is the OWD EWMA
// smoothing factor; the paper's scheme uses an EWMA over per-packet OWD
// samples (we default to 1/8 when alpha <= 0).
func NewReceiverTiming(alpha float64) *ReceiverTiming {
	if alpha <= 0 {
		alpha = 0.125
	}
	return &ReceiverTiming{alpha: alpha, owd: rate.NewMinFilter(MinWindow)}
}

// OnData records the arrival of a packet carrying departure timestamp
// sentAt (sender clock). Relative OWD = arrival − departure; absolute clock
// offset cancels out of all comparisons.
func (r *ReceiverTiming) OnData(now, sentAt sim.Time) {
	sample := now - sentAt
	var smoothed sim.Time
	if r.smooth == nil {
		v := sample
		r.smooth = &v
		smoothed = sample
	} else {
		v := sim.Time(r.alpha*float64(sample) + (1-r.alpha)*float64(*r.smooth))
		*r.smooth = v
		smoothed = v
	}
	r.owd.Update(now, float64(smoothed))
	if !r.haveBest || smoothed <= r.bestOWD {
		r.haveBest = true
		r.bestOWD = smoothed
		r.bestDeparture = sentAt
		r.bestArrival = now
	}
}

// Echo is the timing payload the receiver attaches to a TACK.
type Echo struct {
	// Departure is t0⋆: the departure timestamp of the packet achieving the
	// minimum smoothed OWD this interval.
	Departure sim.Time
	// AckDelay is Δt⋆: TACK send time minus that packet's arrival.
	AckDelay sim.Time
	// Valid is false when no data arrived this interval.
	Valid bool
}

// OnAckSent closes the interval at TACK transmission time and returns the
// echo fields to embed in the TACK.
func (r *ReceiverTiming) OnAckSent(now sim.Time) Echo {
	if !r.haveBest {
		return Echo{}
	}
	e := Echo{Departure: r.bestDeparture, AckDelay: now - r.bestArrival, Valid: true}
	r.haveBest = false
	return e
}

// SmoothedOWD returns the current smoothed relative OWD and whether any
// sample exists.
func (r *ReceiverTiming) SmoothedOWD() (sim.Time, bool) {
	if r.smooth == nil {
		return 0, false
	}
	return *r.smooth, true
}

// MinOWD returns the windowed minimum smoothed OWD observed at time now.
func (r *ReceiverTiming) MinOWD(now sim.Time) (sim.Time, bool) {
	if r.owd.Empty(now) {
		return 0, false
	}
	return sim.Time(r.owd.Get(now)), true
}

// SenderTiming is the sender half of the advanced scheme: it converts TACK
// echoes into corrected RTT samples.
type SenderTiming struct {
	Estimate
}

// NewSenderTiming returns sender timing state with the given min window.
func NewSenderTiming(window sim.Time) *SenderTiming {
	return &SenderTiming{Estimate: *NewEstimate(window)}
}

// OnAck folds in the echo from a TACK arriving at time now:
// RTT = now − t0⋆ − Δt⋆ (paper Figure 4).
func (s *SenderTiming) OnAck(now sim.Time, e Echo) {
	if !e.Valid {
		return
	}
	s.Update(now, now-e.Departure-e.AckDelay)
}
