package batchio

// Build-tag-neutral coverage of the portable (non-Linux) Reader/Writer
// code paths. CI runs on Linux, where the batch syscalls are available
// and the fallback is otherwise unreachable; DisableBatching forces it so
// regressions in readSingle/writeSingle surface on every platform.

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// fallbackPair returns a reader-side and writer-side conn with batching
// forced off, so every call below runs the portable path regardless of
// platform.
func fallbackPair(t *testing.T) (*Conn, *Conn, *net.UDPConn, *net.UDPConn) {
	t.Helper()
	a, b := pair(t, "udp4", "127.0.0.1:0")
	ca, cb := New(a), New(b)
	ca.DisableBatching()
	cb.DisableBatching()
	if ca.Batched() || cb.Batched() {
		t.Fatal("DisableBatching did not stick")
	}
	return ca, cb, a, b
}

// TestFallbackWriterChunks sends more messages than the writer's batch
// size through the fallback path: writeSingle must deliver all of them
// (the batch parameter only sizes syscall scratch, never a cap).
func TestFallbackWriterChunks(t *testing.T) {
	ca, cb, a, _ := fallbackPair(t)
	w := cb.NewWriter(4)
	r := ca.NewReader(8, 2048)

	const count = 11 // deliberately not a multiple of the writer batch
	ms := make([]Message, count)
	for i := range ms {
		ms[i].Buf = []byte(fmt.Sprintf("chunk-%02d", i))
		ms[i].Addr = a.LocalAddr().(*net.UDPAddr)
	}
	sent, err := w.WriteBatch(ms)
	if err != nil || sent != count {
		t.Fatalf("WriteBatch = (%d, %v), want (%d, nil)", sent, err, count)
	}

	got := map[string]bool{}
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < count && time.Now().Before(deadline) {
		a.SetReadDeadline(deadline)
		batch, err := r.ReadBatch()
		if err != nil {
			t.Fatal(err)
		}
		// The fallback reader returns exactly one datagram per call.
		if len(batch) != 1 {
			t.Fatalf("fallback ReadBatch returned %d messages, want 1", len(batch))
		}
		got[string(batch[0].Buf[:batch[0].N])] = true
	}
	for i := 0; i < count; i++ {
		if !got[fmt.Sprintf("chunk-%02d", i)] {
			t.Fatalf("datagram %d never arrived (%d/%d)", i, len(got), count)
		}
	}
}

// TestFallbackWriteErrorIndex checks WriteBatch's error contract on the
// portable path: on failure it reports how many datagrams were sent, and
// the message at that index is the one that failed.
func TestFallbackWriteErrorIndex(t *testing.T) {
	_, cb, a, b := fallbackPair(t)
	w := cb.NewWriter(4)
	ms := make([]Message, 3)
	for i := range ms {
		ms[i].Buf = []byte{byte(i)}
		ms[i].Addr = a.LocalAddr().(*net.UDPAddr)
	}
	b.Close() // writing through a closed socket fails at index 0
	sent, err := w.WriteBatch(ms)
	if err == nil {
		t.Fatal("WriteBatch on a closed socket did not fail")
	}
	if sent != 0 {
		t.Fatalf("WriteBatch reported %d sent before the failure, want 0", sent)
	}
}

// TestFallbackReaderSourceAddr checks the portable read path reports the
// sender's address (the batch path decodes sockaddrs by hand; the
// fallback relies on net.UDPConn, and both must agree).
func TestFallbackReaderSourceAddr(t *testing.T) {
	ca, _, a, b := fallbackPair(t)
	r := ca.NewReader(4, 2048)
	if _, err := b.WriteToUDP([]byte("hello"), a.LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	a.SetReadDeadline(time.Now().Add(5 * time.Second))
	ms, err := r.ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || string(ms[0].Buf[:ms[0].N]) != "hello" {
		t.Fatalf("unexpected batch %+v", ms)
	}
	want := b.LocalAddr().(*net.UDPAddr)
	if ms[0].Addr == nil || ms[0].Addr.Port != want.Port || !ms[0].Addr.IP.Equal(want.IP) {
		t.Fatalf("source addr %v, want %v", ms[0].Addr, want)
	}
}
