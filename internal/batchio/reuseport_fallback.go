//go:build !linux

package batchio

import "net"

// reusePortSupported disables socket groups where SO_REUSEPORT semantics
// (kernel flow-hash spreading across equal binds) are not guaranteed;
// ListenReusePortGroup returns a single ordinarily-bound socket instead.
const reusePortSupported = false

// listenReusePort is unreachable when reusePortSupported is false; it
// defers to the portable single-socket path for safety.
func listenReusePort(network, laddr string, n int) ([]*net.UDPConn, error) {
	return listenSingle(network, laddr)
}
