package batchio

import (
	"fmt"
	"net"
)

// ReusePortSupported reports whether this platform can bind several UDP
// sockets to one local address via SO_REUSEPORT (the socket-group fast
// path). When false, ListenReusePortGroup degrades to a single socket.
func ReusePortSupported() bool { return reusePortSupported }

// ListenReusePortGroup binds n UDP sockets to the same local address with
// SO_REUSEPORT set on each, so the kernel spreads inbound datagrams
// across the group by flow hash (a given remote address:port always lands
// on the same member socket). The first socket resolves a wildcard port
// (":0"); the rest bind the concrete address it got.
//
// When n <= 1, or the platform lacks SO_REUSEPORT, the portable fallback
// returns a single ordinarily-bound socket — callers size their loops off
// len(result), never off n. On error no sockets are leaked.
func ListenReusePortGroup(network, laddr string, n int) ([]*net.UDPConn, error) {
	if n <= 1 || !reusePortSupported {
		return listenSingle(network, laddr)
	}
	return listenReusePort(network, laddr, n)
}

// listenSingle is the portable one-socket path (no SO_REUSEPORT): the
// behavior every platform had before socket groups existed.
func listenSingle(network, laddr string) ([]*net.UDPConn, error) {
	la, err := net.ResolveUDPAddr(network, laddr)
	if err != nil {
		return nil, fmt.Errorf("batchio: resolve %q: %w", laddr, err)
	}
	uc, err := net.ListenUDP(network, la)
	if err != nil {
		return nil, err
	}
	return []*net.UDPConn{uc}, nil
}

// closeAll releases a partially built group after a bind failure.
func closeAll(socks []*net.UDPConn) {
	for _, uc := range socks {
		uc.Close()
	}
}
