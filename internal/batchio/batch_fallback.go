//go:build !(linux && (amd64 || arm64))

package batchio

// batchSupported disables the multi-message fast path on platforms where
// recvmmsg/sendmmsg (or the struct layouts this package assumes) are not
// available; Reader/Writer fall back to one datagram per syscall.
const batchSupported = false

// mmsgReaderState and mmsgWriterState carry no platform scratch in the
// fallback build.
type (
	mmsgReaderState struct{}
	mmsgWriterState struct{}
)

func (r *Reader) initMmsg()          {}
func (w *Writer) initMmsg(batch int) {}

// readMmsg and writeMmsg are unreachable when batchSupported is false;
// they defer to the portable paths for safety.
func (r *Reader) readMmsg() ([]Message, error)       { return r.readSingle() }
func (w *Writer) writeMmsg(ms []Message) (int, error) { return w.writeSingle(ms) }
