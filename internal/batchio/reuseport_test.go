package batchio

import (
	"net"
	"testing"
	"time"
)

// TestListenReusePortGroup binds a 4-socket group and checks the
// structural invariants: every member shares one local port, and
// datagrams sent from many distinct source ports all arrive somewhere in
// the group (the kernel steers each source to exactly one member). On
// platforms without SO_REUSEPORT the same call must degrade to a single
// socket rather than fail.
func TestListenReusePortGroup(t *testing.T) {
	socks, err := ListenReusePortGroup("udp4", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(socks)
	if !ReusePortSupported() {
		if len(socks) != 1 {
			t.Fatalf("fallback returned %d sockets, want 1", len(socks))
		}
		return
	}
	if len(socks) != 4 {
		t.Fatalf("got %d sockets, want 4", len(socks))
	}
	port := socks[0].LocalAddr().(*net.UDPAddr).Port
	for i, uc := range socks {
		if p := uc.LocalAddr().(*net.UDPAddr).Port; p != port {
			t.Fatalf("socket %d bound port %d, want %d (one group, one port)", i, p, port)
		}
	}

	// 32 senders on distinct ephemeral ports, one datagram each. Every
	// datagram must surface on exactly one group member.
	const senders = 32
	dst := socks[0].LocalAddr().(*net.UDPAddr)
	for i := 0; i < senders; i++ {
		c, err := net.DialUDP("udp4", nil, dst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	got := 0
	buf := make([]byte, 64)
	deadline := time.Now().Add(5 * time.Second)
	for got < senders && time.Now().Before(deadline) {
		for _, uc := range socks {
			uc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			for {
				if _, _, err := uc.ReadFromUDP(buf); err != nil {
					break
				}
				got++
			}
		}
	}
	if got != senders {
		t.Fatalf("group received %d/%d datagrams", got, senders)
	}
}

// TestListenReusePortGroupSingle checks that n=1 never takes the
// reuseport path (it is the default, behavior-preserving shape).
func TestListenReusePortGroupSingle(t *testing.T) {
	socks, err := ListenReusePortGroup("udp4", "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(socks)
	if len(socks) != 1 {
		t.Fatalf("got %d sockets, want 1", len(socks))
	}
	// A second plain bind of the same address must fail: the single
	// socket was bound without SO_REUSEPORT.
	if dup, err := net.ListenUDP("udp4", socks[0].LocalAddr().(*net.UDPAddr)); err == nil {
		dup.Close()
		t.Fatal("re-binding a non-reuseport socket's address unexpectedly succeeded")
	}
}

// TestListenReusePortGroupBadAddr checks the error path leaks nothing and
// reports the resolve failure.
func TestListenReusePortGroupBadAddr(t *testing.T) {
	if _, err := ListenReusePortGroup("udp4", "not-an-address:99999999", 2); err == nil {
		t.Fatal("expected an error for an unresolvable address")
	}
}
