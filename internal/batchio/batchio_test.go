package batchio

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

func pair(t *testing.T, network, laddr string) (*net.UDPConn, *net.UDPConn) {
	t.Helper()
	la, err := net.ResolveUDPAddr(network, laddr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.ListenUDP(network, la)
	if err != nil {
		t.Skipf("listen %s %s: %v", network, laddr, err)
	}
	b, err := net.ListenUDP(network, la)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// roundTrip sends `count` distinct datagrams from b to a via WriteBatch
// and reads them back via ReadBatch, checking payloads and source
// addresses.
func roundTrip(t *testing.T, a, b *net.UDPConn, forceSingle bool, count int) {
	t.Helper()
	ca, cb := New(a), New(b)
	if forceSingle {
		ca.DisableBatching()
		cb.DisableBatching()
	}
	r := ca.NewReader(8, 2048)
	w := cb.NewWriter(8)

	out := make([]Message, count)
	for i := range out {
		out[i].Buf = []byte(fmt.Sprintf("datagram-%03d", i))
		out[i].Addr = a.LocalAddr().(*net.UDPAddr)
	}
	sent, err := w.WriteBatch(out)
	if err != nil || sent != count {
		t.Fatalf("WriteBatch: sent %d/%d, err %v", sent, count, err)
	}

	got := map[string]bool{}
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < count && time.Now().Before(deadline) {
		a.SetReadDeadline(deadline)
		ms, err := r.ReadBatch()
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d: %v", len(got), count, err)
		}
		for _, m := range ms {
			got[string(m.Buf[:m.N])] = true
			if m.Addr == nil || m.Addr.Port != b.LocalAddr().(*net.UDPAddr).Port {
				t.Fatalf("wrong source addr %v, want port %d", m.Addr, b.LocalAddr().(*net.UDPAddr).Port)
			}
		}
	}
	for i := 0; i < count; i++ {
		if !got[fmt.Sprintf("datagram-%03d", i)] {
			t.Fatalf("datagram %d never arrived (got %d/%d)", i, len(got), count)
		}
	}
}

func TestRoundTripBatched(t *testing.T) {
	for _, tc := range []struct {
		name, network, laddr string
	}{
		{"udp4", "udp4", "127.0.0.1:0"},
		{"udp6", "udp6", "[::1]:0"},
		{"dual", "udp", ":0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := pair(t, tc.network, tc.laddr)
			ca := New(a)
			if runtime.GOOS == "linux" && !ca.Batched() {
				t.Fatal("expected batch support on linux")
			}
			roundTrip(t, a, b, false, 20)
		})
	}
}

// TestRoundTripSingleFallback exercises the portable path (what non-Linux
// platforms run) by forcing batching off.
func TestRoundTripSingleFallback(t *testing.T) {
	a, b := pair(t, "udp4", "127.0.0.1:0")
	roundTrip(t, a, b, true, 20)
}

// TestReadBatchCoalesces asserts that on a batch-capable platform several
// queued datagrams come back from a single ReadBatch call.
func TestReadBatchCoalesces(t *testing.T) {
	a, b := pair(t, "udp4", "127.0.0.1:0")
	ca := New(a)
	if !ca.Batched() {
		t.Skip("platform lacks batch syscalls")
	}
	r := ca.NewReader(8, 2048)
	dst := a.LocalAddr().(*net.UDPAddr)
	for i := 0; i < 8; i++ {
		if _, err := b.WriteToUDP([]byte{byte(i)}, dst); err != nil {
			t.Fatal(err)
		}
	}
	// Give the kernel a moment to queue all eight.
	time.Sleep(50 * time.Millisecond)
	a.SetReadDeadline(time.Now().Add(2 * time.Second))
	ms, err := r.ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 2 {
		t.Fatalf("ReadBatch returned %d datagrams, want a coalesced batch > 1", len(ms))
	}
}

// TestWriterReuseNoAlloc checks the steady-state write path allocates
// nothing once constructed.
func TestWriterReuseNoAlloc(t *testing.T) {
	a, b := pair(t, "udp4", "127.0.0.1:0")
	cb := New(b)
	if !cb.Batched() {
		t.Skip("fallback WriteToUDP path allocates inside net")
	}
	w := cb.NewWriter(4)
	ms := make([]Message, 4)
	for i := range ms {
		ms[i].Buf = []byte("x")
		ms[i].Addr = a.LocalAddr().(*net.UDPAddr)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := w.WriteBatch(ms); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("WriteBatch allocates %v per call, want 0", allocs)
	}
}
