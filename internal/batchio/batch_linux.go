//go:build linux && (amd64 || arm64)

package batchio

import (
	"net"
	"syscall"
	"unsafe"
)

// batchSupported gates the recvmmsg/sendmmsg fast path. The syscall
// numbers and 64-bit Msghdr layout below are validated for amd64 and
// arm64; other architectures use the portable fallback.
const batchSupported = true

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// per-message transferred-byte count filled in by the kernel.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgReaderState preallocates the recvmmsg header/iovec/sockaddr arrays
// (one slot per message) plus the poller callback and its result slots,
// so the steady-state read performs zero heap allocations.
type mmsgReaderState struct {
	hs    []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
	fn    func(fd uintptr) bool
	n     int
	errno syscall.Errno
}

func (r *Reader) initMmsg() {
	n := len(r.ms)
	r.mm.hs = make([]mmsghdr, n)
	r.mm.iovs = make([]syscall.Iovec, n)
	r.mm.names = make([]syscall.RawSockaddrInet6, n)
	for i := range r.mm.hs {
		r.mm.iovs[i].Base = &r.ms[i].Buf[0]
		r.mm.iovs[i].SetLen(len(r.ms[i].Buf))
		r.mm.hs[i].hdr.Iov = &r.mm.iovs[i]
		r.mm.hs[i].hdr.Iovlen = 1
		r.mm.hs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.mm.names[i]))
	}
	r.mm.fn = func(fd uintptr) bool {
		for {
			rn, _, e := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.mm.hs[0])), uintptr(len(r.mm.hs)), 0, 0, 0)
			switch e {
			case 0:
				r.mm.n = int(rn)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				r.mm.errno = e
				return true
			}
		}
	}
}

// readMmsg drains up to len(r.ms) datagrams with one recvmmsg, blocking
// via the runtime poller until at least one arrives.
func (r *Reader) readMmsg() ([]Message, error) {
	// msg_namelen is value-result: the kernel overwrites it with the
	// actual sockaddr size, so it must be re-armed every call.
	for i := range r.mm.hs {
		r.mm.hs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
		r.mm.hs[i].n = 0
	}
	r.mm.n, r.mm.errno = 0, 0
	if err := r.c.rc.Read(r.mm.fn); err != nil {
		return nil, err
	}
	if r.mm.errno != 0 {
		return nil, r.mm.errno
	}
	n := r.mm.n
	for i := 0; i < n; i++ {
		r.ms[i].N = int(r.mm.hs[i].n)
		decodeSockaddr(&r.mm.names[i], r.ms[i].Addr)
	}
	return r.ms[:n], nil
}

// decodeSockaddr parses a raw source address into the reader-owned
// *net.UDPAddr slot without allocating. IPv6 zone names are not resolved
// (a name lookup allocates; the transport never compares zones).
func decodeSockaddr(rsa *syscall.RawSockaddrInet6, addr *net.UDPAddr) {
	switch rsa.Family {
	case syscall.AF_INET:
		rsa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		addr.IP = addr.IP[:4]
		copy(addr.IP, rsa4.Addr[:])
		p := (*[2]byte)(unsafe.Pointer(&rsa4.Port))
		addr.Port = int(p[0])<<8 | int(p[1])
	case syscall.AF_INET6:
		addr.IP = addr.IP[:16]
		copy(addr.IP, rsa.Addr[:])
		p := (*[2]byte)(unsafe.Pointer(&rsa.Port))
		addr.Port = int(p[0])<<8 | int(p[1])
	default:
		addr.IP = addr.IP[:0]
		addr.Port = 0
	}
	addr.Zone = ""
}

// mmsgWriterState preallocates the sendmmsg header/iovec/sockaddr arrays
// plus the poller callback and its result slots; the steady-state write
// performs zero heap allocations.
type mmsgWriterState struct {
	hs    []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
	fn    func(fd uintptr) bool
	batch int // messages prepared for the pending syscall
	n     int
	errno syscall.Errno
}

func (w *Writer) initMmsg(batch int) {
	w.mm.hs = make([]mmsghdr, batch)
	w.mm.iovs = make([]syscall.Iovec, batch)
	w.mm.names = make([]syscall.RawSockaddrInet6, batch)
	for i := range w.mm.hs {
		w.mm.hs[i].hdr.Iov = &w.mm.iovs[i]
		w.mm.hs[i].hdr.Iovlen = 1
		w.mm.hs[i].hdr.Name = (*byte)(unsafe.Pointer(&w.mm.names[i]))
	}
	w.mm.fn = func(fd uintptr) bool {
		for {
			rn, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&w.mm.hs[0])), uintptr(w.mm.batch), 0, 0, 0)
			switch e {
			case 0:
				w.mm.n = int(rn)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				w.mm.errno = e
				return true
			}
		}
	}
}

// writeMmsg sends ms in sendmmsg chunks of the writer's batch size,
// retrying partial sends; the return contract matches WriteBatch.
func (w *Writer) writeMmsg(ms []Message) (int, error) {
	sent := 0
	for sent < len(ms) {
		batch := ms[sent:]
		if len(batch) > len(w.mm.hs) {
			batch = batch[:len(w.mm.hs)]
		}
		for i := range batch {
			w.mm.iovs[i].Base = &batch[i].Buf[0]
			w.mm.iovs[i].SetLen(len(batch[i].Buf))
			w.mm.hs[i].hdr.Namelen = w.encodeSockaddr(&w.mm.names[i], batch[i].Addr)
			w.mm.hs[i].n = 0
		}
		w.mm.batch, w.mm.n, w.mm.errno = len(batch), 0, 0
		if err := w.c.rc.Write(w.mm.fn); err != nil {
			return sent, err
		}
		if w.mm.errno != 0 {
			return sent, w.mm.errno
		}
		if w.mm.n <= 0 {
			// A zero-progress success should be impossible; bail rather
			// than spin.
			return sent, syscall.EIO
		}
		sent += w.mm.n
	}
	return sent, nil
}

// encodeSockaddr renders dst into the socket's own address family and
// returns the sockaddr length. v4 destinations on a v6 (dual-stack)
// socket become v4-mapped v6 addresses.
func (w *Writer) encodeSockaddr(rsa *syscall.RawSockaddrInet6, dst *net.UDPAddr) uint32 {
	port := uint16(dst.Port)
	if !w.c.v6 {
		rsa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		*rsa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&rsa4.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		if ip4 := dst.IP.To4(); ip4 != nil {
			copy(rsa4.Addr[:], ip4)
		}
		return syscall.SizeofSockaddrInet4
	}
	*rsa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	p := (*[2]byte)(unsafe.Pointer(&rsa.Port))
	p[0], p[1] = byte(port>>8), byte(port)
	if ip4 := dst.IP.To4(); ip4 != nil {
		// v4-mapped: ::ffff:a.b.c.d
		rsa.Addr[10], rsa.Addr[11] = 0xff, 0xff
		copy(rsa.Addr[12:], ip4)
	} else {
		copy(rsa.Addr[:], dst.IP.To16())
	}
	return syscall.SizeofSockaddrInet6
}
