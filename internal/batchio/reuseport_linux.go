//go:build linux

package batchio

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// reusePortSupported enables the socket-group fast path: Linux spreads
// inbound datagrams across the SO_REUSEPORT group by 4-tuple hash.
const reusePortSupported = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package
// (same value on every Linux architecture).
const soReusePort = 0xf

// listenReusePort binds n sockets to one address, all with SO_REUSEPORT
// set before bind (the kernel requires every member of a group to carry
// the flag, including the first).
func listenReusePort(network, laddr string, n int) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(_, _ string, rc syscall.RawConn) error {
			var serr error
			if err := rc.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	socks := make([]*net.UDPConn, 0, n)
	addr := laddr
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			closeAll(socks)
			return nil, fmt.Errorf("batchio: reuseport socket %d/%d on %q: %w", i, n, addr, err)
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			pc.Close()
			closeAll(socks)
			return nil, fmt.Errorf("batchio: reuseport socket %d/%d: unexpected conn type %T", i, n, pc)
		}
		socks = append(socks, uc)
		if i == 0 {
			// Pin a wildcard port so the remaining members join the same
			// group instead of each grabbing a fresh ephemeral port.
			addr = uc.LocalAddr().String()
		}
	}
	return socks, nil
}
