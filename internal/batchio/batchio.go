// Package batchio provides batched datagram I/O over a *net.UDPConn:
// many datagrams per syscall via recvmmsg/sendmmsg on Linux, with a
// graceful single-message fallback on other platforms.
//
// The API mirrors golang.org/x/net's ipv4.PacketConn ReadBatch/WriteBatch
// shape (which QUIC stacks use for the same purpose) without taking the
// dependency: the Linux fast path drives the raw syscalls directly
// through the runtime's network poller (syscall.RawConn), so blocking
// semantics, deadlines, and Close-unblocking all keep working.
//
// Readers and Writers preallocate every buffer, iovec, msghdr, and
// sockaddr slot they need at construction; the steady-state hot path
// performs zero heap allocations. A Reader is single-goroutine; each
// goroutine that writes concurrently must own its own Writer (the
// underlying socket itself is safe for concurrent syscalls).
//
// Buffer ownership is strictly batch-scoped in both directions: a
// Reader's Message buffers are valid only until the next ReadBatch, and a
// Writer may not touch caller buffers after WriteBatch returns. DESIGN.md
// ("Datapath performance") documents how internal/endpoint layers its
// pool-based ownership handoffs on top of these rules.
package batchio

import (
	"net"
	"syscall"
)

// Message is one datagram plus its peer address.
//
// After ReadBatch, Buf[:N] holds the received datagram and Addr its
// source; both point into Reader-owned storage that is overwritten by the
// next ReadBatch — copy anything that must outlive the batch. For
// WriteBatch the caller fills Buf (the full slice is sent) and Addr (the
// destination).
type Message struct {
	Buf  []byte
	N    int
	Addr *net.UDPAddr
}

// Conn wraps a UDP socket for batched I/O.
type Conn struct {
	uc *net.UDPConn
	rc syscall.RawConn
	// v6 records the socket family: sendmmsg destinations must be encoded
	// in the socket's own family (v4 targets become v4-mapped v6 on a
	// dual-stack socket).
	v6      bool
	batched bool
}

// New wraps uc. It never fails to produce a usable Conn: when the raw
// descriptor or the platform's batch syscalls are unavailable the Conn
// silently degrades to single-message I/O.
func New(uc *net.UDPConn) *Conn {
	c := &Conn{uc: uc}
	if la, ok := uc.LocalAddr().(*net.UDPAddr); ok {
		c.v6 = la.IP.To4() == nil
	}
	if rc, err := uc.SyscallConn(); err == nil {
		c.rc = rc
		c.batched = batchSupported
	}
	return c
}

// Batched reports whether ReadBatch/WriteBatch use multi-message syscalls
// (true on Linux) rather than the one-datagram fallback.
func (c *Conn) Batched() bool { return c.batched }

// DisableBatching forces the single-message fallback even where the
// platform supports batch syscalls. Call before creating Readers/Writers
// (tests and diagnostics; the fallback path is otherwise unreachable on
// Linux).
func (c *Conn) DisableBatching() { c.batched = false }

// Reader reads datagram batches from the socket. A Reader is owned by one
// goroutine; its Messages are overwritten by each ReadBatch.
type Reader struct {
	c  *Conn
	ms []Message
	mm mmsgReaderState
}

// NewReader builds a reader holding `batch` message slots of `size` bytes
// each. Datagrams longer than size are truncated (and will fail to decode
// upstream); size should be the protocol's maximum datagram length.
func (c *Conn) NewReader(batch, size int) *Reader {
	if batch < 1 || !c.batched {
		batch = 1
	}
	r := &Reader{c: c, ms: make([]Message, batch)}
	for i := range r.ms {
		r.ms[i].Buf = make([]byte, size)
		r.ms[i].Addr = &net.UDPAddr{IP: make(net.IP, 16)}
	}
	r.initMmsg()
	return r
}

// ReadBatch blocks until at least one datagram arrives and returns the
// filled message slots (valid until the next call). On Linux a single
// recvmmsg drains up to the reader's batch size; elsewhere one datagram
// is read per call.
func (r *Reader) ReadBatch() ([]Message, error) {
	if r.c.batched {
		return r.readMmsg()
	}
	return r.readSingle()
}

// readSingle is the portable one-datagram path.
func (r *Reader) readSingle() ([]Message, error) {
	n, from, err := r.c.uc.ReadFromUDP(r.ms[0].Buf)
	if err != nil {
		return nil, err
	}
	r.ms[0].N = n
	r.ms[0].Addr = from
	return r.ms[:1], nil
}

// Writer sends datagram batches. Each concurrently writing goroutine must
// own its own Writer; the socket itself tolerates concurrent syscalls.
type Writer struct {
	c  *Conn
	mm mmsgWriterState
}

// NewWriter builds a writer with scratch space for batches up to `batch`
// messages per syscall (larger WriteBatch calls are chunked).
func (c *Conn) NewWriter(batch int) *Writer {
	if batch < 1 {
		batch = 1
	}
	w := &Writer{c: c}
	w.initMmsg(batch)
	return w
}

// WriteBatch sends every message (chunking and retrying partial batches)
// and returns the number sent. On error it reports how many datagrams
// were handed to the kernel before the failure; the message at index
// `sent` is the one that failed.
func (w *Writer) WriteBatch(ms []Message) (int, error) {
	if w.c.batched {
		return w.writeMmsg(ms)
	}
	return w.writeSingle(ms)
}

// writeSingle is the portable per-datagram path.
func (w *Writer) writeSingle(ms []Message) (int, error) {
	for i := range ms {
		if _, err := w.c.uc.WriteToUDP(ms[i].Buf, ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
