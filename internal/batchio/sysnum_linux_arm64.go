//go:build linux && arm64

package batchio

// Multi-message syscall numbers (linux/arm64).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
