//go:build linux && amd64

package batchio

// Multi-message syscall numbers (linux/amd64). The stdlib's frozen
// syscall table predates sendmmsg, so both are spelled out here.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
