package topo

import (
	"testing"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/transport"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestWLANPathDelivers(t *testing.T) {
	loop := sim.NewLoop(1)
	path, medium := WLANPath(loop, WLANConfig{Standard: phy.Std80211n})
	flow, err := NewFlow(loop, transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 20}, path)
	if err != nil {
		t.Fatal(err)
	}
	flow.Start()
	loop.RunUntil(5 * sim.Second)
	if !flow.Sender.Done() {
		t.Fatalf("WLAN transfer incomplete: %d acked", flow.Sender.CumAcked())
	}
	if medium.BusyTime() == 0 {
		t.Fatal("medium never used")
	}
}

func TestWANPathDelivers(t *testing.T) {
	loop := sim.NewLoop(2)
	path, fwd, rev := WANPath(loop, WANConfig{RateBps: 50e6, OWD: ms(10)})
	flow, err := NewFlow(loop, transport.Config{Mode: transport.ModeLegacy, TransferBytes: 1 << 20}, path)
	if err != nil {
		t.Fatal(err)
	}
	flow.Start()
	loop.RunUntil(10 * sim.Second)
	if !flow.Sender.Done() {
		t.Fatal("WAN transfer incomplete")
	}
	if fwd.Delivered == 0 || rev.Delivered == 0 {
		t.Fatal("links unused")
	}
}

func TestHybridPathDelivers(t *testing.T) {
	loop := sim.NewLoop(3)
	path, medium, apToSrv, _ := HybridPath(loop,
		WLANConfig{Standard: phy.Std80211g},
		WANConfig{RateBps: 100e6, OWD: ms(50)})
	flow, err := NewFlow(loop, transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 20}, path)
	if err != nil {
		t.Fatal(err)
	}
	flow.Start()
	// RTT floor is the WAN's 100 ms plus WLAN airtime; sample mid-flow
	// (the min filter is windowed, so post-completion queries go stale).
	loop.RunUntil(2 * sim.Second)
	if min, ok := flow.Sender.RTTMin(); !ok || min < ms(100) {
		t.Fatalf("RTTmin = %v,%v, want >= 100ms", min, ok)
	}
	loop.RunUntil(20 * sim.Second)
	if !flow.Sender.Done() {
		t.Fatalf("hybrid transfer incomplete: %d acked", flow.Sender.CumAcked())
	}
	// Data must traverse BOTH hops.
	if medium.BusyTime() == 0 || apToSrv.Delivered == 0 {
		t.Fatal("one of the hops was bypassed")
	}
}

func TestTwoFlowsShareOnePath(t *testing.T) {
	loop := sim.NewLoop(4)
	path, _, _ := WANPath(loop, WANConfig{RateBps: 50e6, OWD: ms(10)})
	c1 := transport.Config{Mode: transport.ModeTACK, ConnID: 1}
	c2 := transport.Config{Mode: transport.ModeLegacy, CC: "cubic", ConnID: 2}
	f1, err := NewFlow(loop, c1, path)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFlow(loop, c2, path)
	if err != nil {
		t.Fatal(err)
	}
	f1.Start()
	f2.Start()
	loop.RunUntil(5 * sim.Second)
	d1, d2 := f1.Receiver.Delivered(), f2.Receiver.Delivered()
	if d1 == 0 || d2 == 0 {
		t.Fatalf("flows starved: %d / %d", d1, d2)
	}
	// Both flows share a 50 Mbit/s link: combined goodput must respect it.
	total := float64(d1+d2) * 8 / 5
	if total > 52e6 {
		t.Fatalf("combined goodput %.1f Mbit/s exceeds the link", total/1e6)
	}
}

func TestReversedFlow(t *testing.T) {
	loop := sim.NewLoop(5)
	path, _, _ := WANPath(loop, WANConfig{RateBps: 50e6, OWD: ms(10)})
	flow, err := ReversedFlow(loop, transport.Config{Mode: transport.ModeTACK, TransferBytes: 256 << 10}, path)
	if err != nil {
		t.Fatal(err)
	}
	flow.Start()
	loop.RunUntil(5 * sim.Second)
	if !flow.Sender.Done() {
		t.Fatal("reversed transfer incomplete")
	}
}

func TestQueueFramesDefault(t *testing.T) {
	if (WLANConfig{}).queueFrames() != 1<<18 {
		t.Fatal("default queue depth changed unexpectedly")
	}
	if (WLANConfig{QueueFrames: 7}).queueFrames() != 7 {
		t.Fatal("explicit queue depth ignored")
	}
}
