package topo

import (
	"github.com/tacktp/tack/internal/mac"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/transport"
)

// mediumFor builds an 802.11 medium from a WLANConfig.
func mediumFor(loop *sim.Loop, cfg WLANConfig) *mac.Medium {
	m := mac.NewMedium(loop, phy.Get(cfg.Standard))
	m.PER = cfg.PER
	return m
}

// SplitFlow implements the TCP-splitting deployment the paper's §7
// discusses: a proxy at the access point terminates the client's WLAN-side
// connection and relays the bytestream over an independent WAN-side
// connection. The last-mile WLAN loop converges fast (small RTT), and the
// WAN connection runs its own control loop — at the cost of the proxy
// holding unacknowledged application data (the end-to-end reliability
// caveat the paper raises).
type SplitFlow struct {
	// Client is the sending endpoint on the WLAN side.
	Client *transport.Sender
	// ProxyRecv terminates the WLAN connection at the AP.
	ProxyRecv *transport.Receiver
	// ProxySend originates the WAN connection at the AP.
	ProxySend *transport.Sender
	// Server is the final receiving endpoint.
	Server *transport.Receiver

	relayed int64
}

// NewSplitFlow builds client → (802.11) → proxy → (WAN) → server with a
// split transport connection per segment. cfgWLAN drives the client↔proxy
// leg, cfgWAN the proxy↔server leg; the WAN leg runs app-paced, fed by the
// bytes the proxy receiver delivers.
func NewSplitFlow(loop *sim.Loop, cfgWLAN, cfgWAN transport.Config, wlan WLANConfig, wan WANConfig) (*SplitFlow, error) {
	sf := &SplitFlow{}

	// WLAN leg between two stations.
	m := mediumFor(loop, wlan)
	sta := m.AddStation("client", wlan.queueFrames())
	ap := m.AddStation("proxy", wlan.queueFrames())
	client, err := transport.NewSender(loop, cfgWLAN, func(p *packet.Packet) {
		sta.Send(ap, p.WireSize(), p)
	})
	if err != nil {
		return nil, err
	}
	proxyRecv := transport.NewReceiver(loop, cfgWLAN, func(p *packet.Packet) {
		ap.Send(sta, p.WireSize(), p)
	})

	// WAN leg between the proxy and the server.
	cfgWAN.AppPaced = true
	fwd, rev := wan.links()
	var proxySend *transport.Sender
	var server *transport.Receiver
	wanFwd := netem.NewLink(loop, fwd, func(pl any, n int) { server.OnPacket(pl.(*packet.Packet)) })
	wanRev := netem.NewLink(loop, rev, func(pl any, n int) { proxySend.OnPacket(pl.(*packet.Packet)) })
	proxySend, err = transport.NewSender(loop, cfgWAN, func(p *packet.Packet) { wanFwd.Send(p, p.WireSize()) })
	if err != nil {
		return nil, err
	}
	server = transport.NewReceiver(loop, cfgWAN, func(p *packet.Packet) { wanRev.Send(p, p.WireSize()) })

	// Wire WLAN deliveries.
	ap.Receive = func(f *mac.Frame) {
		proxyRecv.OnPacket(f.Payload.(*packet.Packet))
		// Relay every newly delivered byte onto the WAN leg.
		if d := proxyRecv.Delivered() - sf.relayed; d > 0 {
			sf.relayed += d
			proxySend.AddBytes(d)
		}
	}
	sta.Receive = func(f *mac.Frame) {
		client.OnPacket(f.Payload.(*packet.Packet))
	}

	sf.Client = client
	sf.ProxyRecv = proxyRecv
	sf.ProxySend = proxySend
	sf.Server = server
	return sf, nil
}

// Start launches both legs.
func (sf *SplitFlow) Start() {
	sf.Client.Start()
	sf.ProxySend.Start()
}

// Relayed returns the bytes the proxy has forwarded to the WAN leg.
func (sf *SplitFlow) Relayed() int64 { return sf.relayed }

// ProxyBacklog returns bytes received from the client but not yet
// acknowledged end-to-end by the server — the data at risk if the proxy
// fails (§7's reliability caveat).
func (sf *SplitFlow) ProxyBacklog() int64 {
	return sf.relayed - int64(sf.ProxySend.CumAcked())
}
