// Package topo composes network topologies and wires transport endpoints
// over them. It provides the three path shapes of the paper's evaluation:
//
//   - WLAN: two stations contending on one 802.11 medium (§6.3) — the
//     forward data path and the reverse ACK path share the channel, which
//     is precisely where TACK's ACK reduction pays off.
//   - WAN: a duplex wired emulated link (§6.6) with rate/delay/loss knobs.
//   - Hybrid: STA ↔ AP over 802.11 plus AP ↔ server over the emulated WAN
//     (§6.5, Figure 12).
package topo

import (
	"github.com/tacktp/tack/internal/mac"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// Path is a duplex packet conduit between a client side (A) and a server
// side (B).
type Path struct {
	// SendA injects a packet at the A (client/sender) side toward B.
	SendA func(*packet.Packet)
	// SendB injects a packet at the B side toward A.
	SendB func(*packet.Packet)
	// DeliverA is invoked for packets arriving at A. Set before traffic.
	DeliverA func(*packet.Packet)
	// DeliverB is invoked for packets arriving at B.
	DeliverB func(*packet.Packet)
}

// WLANConfig parameterizes a WLAN path.
type WLANConfig struct {
	Standard phy.Standard
	// PER is an optional per-MPDU error rate.
	PER float64
	// QueueFrames bounds each station's MAC queue. Zero selects a deep
	// default (256k frames): for a transport endpoint the MAC queue models
	// the local driver/qdisc, which backpressures the stack rather than
	// dropping — congestion control, not tail drop, bounds its depth.
	QueueFrames int
	// Tracer records MAC-level telemetry from the medium (nil disables).
	Tracer *telemetry.Tracer
}

func (c WLANConfig) queueFrames() int {
	if c.QueueFrames > 0 {
		return c.QueueFrames
	}
	return 1 << 18
}

// WLANPath builds a two-station 802.11 path. Returns the path and the
// medium for MAC-level statistics.
func WLANPath(loop *sim.Loop, cfg WLANConfig) (*Path, *mac.Medium) {
	m := mac.NewMedium(loop, phy.Get(cfg.Standard))
	m.PER = cfg.PER
	m.Tracer = cfg.Tracer
	sta := m.AddStation("sta", cfg.queueFrames())
	ap := m.AddStation("ap", cfg.queueFrames())
	p := &Path{}
	sta.Receive = func(f *mac.Frame) {
		if p.DeliverA != nil {
			p.DeliverA(f.Payload.(*packet.Packet))
		}
	}
	ap.Receive = func(f *mac.Frame) {
		if p.DeliverB != nil {
			p.DeliverB(f.Payload.(*packet.Packet))
		}
	}
	p.SendA = func(pkt *packet.Packet) { sta.Send(ap, pkt.WireSize(), pkt) }
	p.SendB = func(pkt *packet.Packet) { ap.Send(sta, pkt.WireSize(), pkt) }
	return p, m
}

// WANConfig parameterizes a wired duplex path: data direction (A→B) and
// ACK direction (B→A).
type WANConfig struct {
	RateBps    float64
	OWD        sim.Time // one-way propagation delay
	QueueBytes int
	DataLoss   float64 // ρ, applied A→B
	AckLoss    float64 // ρ′, applied B→A
	// ReorderRate / ReorderDelay inject reordering on the data direction
	// (paper §7 "handling reordering").
	ReorderRate  float64
	ReorderDelay sim.Time
	// Impair layers the adversarial impairment models (Gilbert–Elliott
	// burst loss, duplication, corruption, jitter) on the data direction;
	// the zero value changes nothing.
	Impair netem.Impairments
}

// links returns the per-direction netem configs for the WAN.
func (c WANConfig) links() (fwd, rev netem.Config) {
	fwd, rev = netem.Symmetric(c.RateBps, c.OWD, c.QueueBytes, c.DataLoss, c.AckLoss)
	fwd.ReorderRate = c.ReorderRate
	fwd.ReorderDelay = c.ReorderDelay
	fwd.Impair = c.Impair
	return fwd, rev
}

// WANPath builds a duplex emulated wired path. Returns the path plus both
// directional links for statistics.
func WANPath(loop *sim.Loop, cfg WANConfig) (*Path, *netem.Link, *netem.Link) {
	p := &Path{}
	fwd, rev := cfg.links()
	aToB := netem.NewLink(loop, fwd, func(pl any, n int) {
		if p.DeliverB != nil {
			p.DeliverB(pl.(*packet.Packet))
		}
	})
	bToA := netem.NewLink(loop, rev, func(pl any, n int) {
		if p.DeliverA != nil {
			p.DeliverA(pl.(*packet.Packet))
		}
	})
	p.SendA = func(pkt *packet.Packet) { aToB.Send(pkt, pkt.WireSize()) }
	p.SendB = func(pkt *packet.Packet) { bToA.Send(pkt, pkt.WireSize()) }
	return p, aToB, bToA
}

// HybridPath chains a WLAN hop (client ↔ AP) and a WAN hop (AP ↔ server),
// mirroring the paper's Figure 12. Packets traverse both in each direction.
func HybridPath(loop *sim.Loop, wlan WLANConfig, wan WANConfig) (*Path, *mac.Medium, *netem.Link, *netem.Link) {
	p := &Path{}
	m := mac.NewMedium(loop, phy.Get(wlan.Standard))
	m.PER = wlan.PER
	m.Tracer = wlan.Tracer
	sta := m.AddStation("sta", wlan.queueFrames())
	ap := m.AddStation("ap", wlan.queueFrames())

	fwd, rev := wan.links()
	apToSrv := netem.NewLink(loop, fwd, func(pl any, n int) {
		if p.DeliverB != nil {
			p.DeliverB(pl.(*packet.Packet))
		}
	})
	srvToAp := netem.NewLink(loop, rev, func(pl any, n int) {
		// WAN → AP → WLAN → client.
		pkt := pl.(*packet.Packet)
		ap.Send(sta, pkt.WireSize(), pkt)
	})

	// Client → WLAN → AP → WAN → server.
	ap.Receive = func(f *mac.Frame) {
		pkt := f.Payload.(*packet.Packet)
		apToSrv.Send(pkt, pkt.WireSize())
	}
	sta.Receive = func(f *mac.Frame) {
		if p.DeliverA != nil {
			p.DeliverA(f.Payload.(*packet.Packet))
		}
	}
	p.SendA = func(pkt *packet.Packet) { sta.Send(ap, pkt.WireSize(), pkt) }
	p.SendB = func(pkt *packet.Packet) { srvToAp.Send(pkt, pkt.WireSize()) }
	return p, m, apToSrv, srvToAp
}

// Flow couples a transport Sender and Receiver over a Path (sender at A).
type Flow struct {
	Sender   *transport.Sender
	Receiver *transport.Receiver
}

// NewFlow attaches a sender (A side) and receiver (B side) built from cfg
// to the path. Call Start to begin.
func NewFlow(loop *sim.Loop, cfg transport.Config, p *Path) (*Flow, error) {
	snd, err := transport.NewSender(loop, cfg, func(pkt *packet.Packet) { p.SendA(pkt) })
	if err != nil {
		return nil, err
	}
	rcv := transport.NewReceiver(loop, cfg, func(pkt *packet.Packet) { p.SendB(pkt) })
	prevA, prevB := p.DeliverA, p.DeliverB
	p.DeliverA = func(pkt *packet.Packet) {
		if pkt.ConnID == cfg.ConnID {
			snd.OnPacket(pkt)
		} else if prevA != nil {
			prevA(pkt)
		}
	}
	p.DeliverB = func(pkt *packet.Packet) {
		if pkt.ConnID == cfg.ConnID {
			rcv.OnPacket(pkt)
		} else if prevB != nil {
			prevB(pkt)
		}
	}
	return &Flow{Sender: snd, Receiver: rcv}, nil
}

// Start begins the flow's handshake.
func (f *Flow) Start() { f.Sender.Start() }

// ReversedFlow attaches a sender at the B side and receiver at the A side
// (for bidirectional workloads and reverse cross traffic).
func ReversedFlow(loop *sim.Loop, cfg transport.Config, p *Path) (*Flow, error) {
	snd, err := transport.NewSender(loop, cfg, func(pkt *packet.Packet) { p.SendB(pkt) })
	if err != nil {
		return nil, err
	}
	rcv := transport.NewReceiver(loop, cfg, func(pkt *packet.Packet) { p.SendA(pkt) })
	prevA, prevB := p.DeliverA, p.DeliverB
	p.DeliverB = func(pkt *packet.Packet) {
		if pkt.ConnID == cfg.ConnID {
			snd.OnPacket(pkt)
		} else if prevB != nil {
			prevB(pkt)
		}
	}
	p.DeliverA = func(pkt *packet.Packet) {
		if pkt.ConnID == cfg.ConnID {
			rcv.OnPacket(pkt)
		} else if prevA != nil {
			prevA(pkt)
		}
	}
	return &Flow{Sender: snd, Receiver: rcv}, nil
}
