package topo

import (
	"testing"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/transport"
)

func TestSplitFlowRelays(t *testing.T) {
	loop := sim.NewLoop(9)
	cfgWLAN := transport.Config{Mode: transport.ModeTACK, TransferBytes: 2 << 20}
	cfgWAN := transport.Config{Mode: transport.ModeTACK}
	sf, err := NewSplitFlow(loop, cfgWLAN, cfgWAN,
		WLANConfig{Standard: phy.Std80211n},
		WANConfig{RateBps: 200e6, OWD: ms(100)})
	if err != nil {
		t.Fatal(err)
	}
	sf.Start()
	loop.RunUntil(20 * sim.Second)
	if !sf.Client.Done() {
		t.Fatalf("WLAN leg incomplete: %d acked", sf.Client.CumAcked())
	}
	if sf.Relayed() != 2<<20 {
		t.Fatalf("proxy relayed %d bytes, want all", sf.Relayed())
	}
	if got := sf.Server.Delivered(); got != 2<<20 {
		t.Fatalf("server delivered %d, want all", got)
	}
	if sf.ProxyBacklog() != 0 {
		t.Fatalf("proxy still holds %d unacknowledged bytes", sf.ProxyBacklog())
	}
}

func TestSplitFlowWLANRTTIsLocal(t *testing.T) {
	// The client's RTT estimate must reflect only the WLAN leg, not the
	// 200 ms WAN (that's the point of splitting).
	loop := sim.NewLoop(10)
	cfgWLAN := transport.Config{Mode: transport.ModeTACK}
	cfgWAN := transport.Config{Mode: transport.ModeTACK}
	sf, err := NewSplitFlow(loop, cfgWLAN, cfgWAN,
		WLANConfig{Standard: phy.Std80211n},
		WANConfig{RateBps: 200e6, OWD: ms(100)})
	if err != nil {
		t.Fatal(err)
	}
	sf.Start()
	loop.RunUntil(2 * sim.Second)
	min, ok := sf.Client.RTTMin()
	if !ok {
		t.Fatal("no client RTT estimate")
	}
	if min > ms(20) {
		t.Fatalf("client RTTmin = %v, want local (WLAN-only) scale", min)
	}
}
