// Package ackpolicy implements acknowledgment scheduling disciplines.
//
// A Policy decides *when* the receiver emits an acknowledgment; the
// transport layer decides what the ACK contains. The disciplines map to
// the paper's §4.1 taxonomy:
//
//   - PerPacket:  legacy TCP with TCP_QUICKACK — ACK every packet (Eq. 4).
//   - Delayed:    RFC 1122/5681 delayed ACK — every L=2 full-sized packets
//     or after a timer γ (Eq. 5).
//   - ByteCount:  ACK every L ≥ 2 full-sized packets, unbounded frequency
//     under bandwidth growth (Eq. 1).
//   - Periodic:   ACK every fixed interval α, unadaptable at low rate
//     (Eq. 2).
//   - TACK:       f = min(bw/(L·MSS), β/RTTmin) (Eq. 3): ACK when at least
//     L·MSS bytes have arrived AND at least RTTmin/β has elapsed — the
//     conjunction yields exactly the minimum of the two frequencies. It
//     degrades to byte-counting at small bdp and to periodic at large bdp.
package ackpolicy

import (
	"fmt"

	"github.com/tacktp/tack/internal/sim"
)

// MSS is the full-sized packet assumption used in frequency arithmetic.
const MSS = 1500

// DefaultBeta and DefaultL are the paper's recommended defaults (§4.1,
// Appendix B.3): β = 4 ACKs per RTTmin for buffer robustness, L = 2 for
// latency-sensitive low-rate flows.
const (
	DefaultBeta = 4
	DefaultL    = 2
)

// TailDelay bounds how long a sub-threshold tail of data may wait for an
// acknowledgment (mirrors the delayed-ACK ceiling; RFC 1122's "no more than
// 500 ms", Linux-like 200 ms here).
const TailDelay = 200 * sim.Millisecond

// Policy decides acknowledgment timing.
type Policy interface {
	// Name identifies the policy for reporting.
	Name() string
	// OnData is invoked per arriving data packet; it returns true when an
	// acknowledgment should be sent immediately.
	OnData(now sim.Time, bytes int) bool
	// Deadline returns the next timer-driven ACK time, or 0 when no timer
	// is needed. The transport re-queries after every event.
	Deadline(now sim.Time) sim.Time
	// OnAckSent informs the policy that an acknowledgment (of any kind,
	// including IACKs that carry cumulative state) left at time now.
	OnAckSent(now sim.Time)
	// Update feeds the policy fresh transport estimates: the receiver-side
	// maximum delivery rate (bits/s) and the synced RTTmin. Policies that
	// do not adapt ignore it.
	Update(bwBps float64, rttMin sim.Time)
}

// Trigger identifies which condition of a discipline most recently
// warranted (or will next warrant) an acknowledgment — the per-event
// answer to "why did this TACK fire" that the telemetry layer records.
type Trigger uint8

// Trigger values.
const (
	// TriggerNone: no acknowledgment condition is pending.
	TriggerNone Trigger = iota
	// TriggerBytes: the byte-counting threshold (L·MSS pending) fired.
	TriggerBytes
	// TriggerTimer: the periodic spacing (α = RTTmin/β, or a fixed
	// interval) fired with the byte condition already satisfied.
	TriggerTimer
	// TriggerTail: the bounded tail delay fired for a sub-threshold tail.
	TriggerTail
)

// String names the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerBytes:
		return "bytes"
	case TriggerTimer:
		return "timer"
	case TriggerTail:
		return "tail"
	default:
		return "none"
	}
}

// Explainer is implemented by policies that can report the trigger behind
// their most recent acknowledgment decision. After OnData returns true the
// value explains that immediate ack; after OnData returns false it
// explains what a subsequent Deadline-driven ack would mean.
type Explainer interface {
	LastTrigger() Trigger
}

// ExplainTrigger returns p's last trigger when p explains itself, and
// TriggerNone otherwise.
func ExplainTrigger(p Policy) Trigger {
	if e, ok := p.(Explainer); ok {
		return e.LastTrigger()
	}
	return TriggerNone
}

// base carries the bookkeeping shared by all disciplines.
type base struct {
	bytesPending int
	firstPending sim.Time
	lastAck      sim.Time
	havePending  bool
	lastTrigger  Trigger
}

func (b *base) onData(now sim.Time, bytes int) {
	if !b.havePending {
		b.havePending = true
		b.firstPending = now
	}
	b.bytesPending += bytes
}

// LastTrigger implements Explainer for every discipline embedding base.
func (b *base) LastTrigger() Trigger { return b.lastTrigger }

func (b *base) onAckSent(now sim.Time) {
	b.bytesPending = 0
	b.havePending = false
	b.lastAck = now
}

// PerPacket acknowledges every packet.
type PerPacket struct{ base }

// NewPerPacket returns the L=1 discipline.
func NewPerPacket() *PerPacket { return &PerPacket{} }

// Name implements Policy.
func (p *PerPacket) Name() string { return "perpacket" }

// OnData implements Policy.
func (p *PerPacket) OnData(now sim.Time, bytes int) bool {
	p.onData(now, bytes)
	p.lastTrigger = TriggerBytes
	return true
}

// Deadline implements Policy.
func (p *PerPacket) Deadline(sim.Time) sim.Time { return 0 }

// OnAckSent implements Policy.
func (p *PerPacket) OnAckSent(now sim.Time) { p.onAckSent(now) }

// Update implements Policy.
func (p *PerPacket) Update(float64, sim.Time) {}

// ByteCount acknowledges every L full-sized packets with an optional timer
// bound; with timer == 0 the tail relies on TailDelay.
type ByteCount struct {
	base
	l     int
	timer sim.Time
	name  string
}

// NewByteCount returns the every-L-packets discipline. Its tail timer is
// half the TailDelay ceiling so a starving sender's retransmission timeout
// (≥200 ms) never races the acknowledgment of a sub-threshold tail.
func NewByteCount(l int) *ByteCount {
	if l < 1 {
		l = 1
	}
	return &ByteCount{l: l, timer: TailDelay / 2, name: fmt.Sprintf("bytecount(L=%d)", l)}
}

// NewDelayed returns the RFC-style delayed-ACK discipline: L=2 with ACK
// timer gamma.
func NewDelayed(gamma sim.Time) *ByteCount {
	if gamma <= 0 {
		gamma = 40 * sim.Millisecond
	}
	return &ByteCount{l: 2, timer: gamma, name: "delayed"}
}

// Name implements Policy.
func (b *ByteCount) Name() string { return b.name }

// OnData implements Policy.
func (b *ByteCount) OnData(now sim.Time, bytes int) bool {
	b.onData(now, bytes)
	fire := b.bytesPending >= b.l*MSS
	if fire {
		b.lastTrigger = TriggerBytes
	} else {
		b.lastTrigger = TriggerTail
	}
	return fire
}

// Deadline implements Policy.
func (b *ByteCount) Deadline(sim.Time) sim.Time {
	if !b.havePending {
		return 0
	}
	return b.firstPending + b.timer
}

// OnAckSent implements Policy.
func (b *ByteCount) OnAckSent(now sim.Time) { b.onAckSent(now) }

// Update implements Policy.
func (b *ByteCount) Update(float64, sim.Time) {}

// Periodic acknowledges on a fixed interval alpha regardless of arrivals.
type Periodic struct {
	base
	alpha sim.Time
}

// NewPeriodic returns the fixed-interval discipline.
func NewPeriodic(alpha sim.Time) *Periodic {
	if alpha <= 0 {
		alpha = 25 * sim.Millisecond
	}
	return &Periodic{alpha: alpha}
}

// Name implements Policy.
func (p *Periodic) Name() string { return "periodic" }

// OnData implements Policy.
func (p *Periodic) OnData(now sim.Time, bytes int) bool {
	p.onData(now, bytes)
	p.lastTrigger = TriggerTimer
	return now-p.lastAck >= p.alpha
}

// Deadline implements Policy.
func (p *Periodic) Deadline(sim.Time) sim.Time {
	if !p.havePending {
		return 0
	}
	return p.lastAck + p.alpha
}

// OnAckSent implements Policy.
func (p *Periodic) OnAckSent(now sim.Time) { p.onAckSent(now) }

// Update implements Policy.
func (p *Periodic) Update(float64, sim.Time) {}

// TACK is the paper's discipline: acknowledgments fire when both the
// byte-counting threshold (L·MSS bytes) and the periodic spacing
// (α = RTTmin/β) are satisfied, realizing f = min(f_b, f_pack) (Eq. 3).
type TACK struct {
	base
	beta int
	l    int

	rttMin sim.Time
	alpha  sim.Time
}

// NewTACK returns the TACK discipline with the given β and L
// (non-positive values select the defaults 4 and 2).
func NewTACK(beta, l int) *TACK {
	if beta <= 0 {
		beta = DefaultBeta
	}
	if l <= 0 {
		l = DefaultL
	}
	t := &TACK{beta: beta, l: l}
	t.Update(0, 0)
	return t
}

// Name implements Policy.
func (t *TACK) Name() string { return fmt.Sprintf("tack(beta=%d,L=%d)", t.beta, t.l) }

// Update recomputes α from the synced RTTmin; before the first estimate a
// conservative 25 ms spacing applies.
func (t *TACK) Update(_ float64, rttMin sim.Time) {
	t.rttMin = rttMin
	if rttMin <= 0 {
		t.alpha = 25 * sim.Millisecond
		return
	}
	t.alpha = rttMin / sim.Time(t.beta)
	if t.alpha < sim.Millisecond {
		// Spacing floor: at sub-millisecond RTTs the periodic bound would
		// exceed practical timer resolution.
		t.alpha = sim.Millisecond
	}
}

// Alpha exposes the current TACK interval (for tests and diagnostics).
func (t *TACK) Alpha() sim.Time { return t.alpha }

// OnData implements Policy: both conditions must hold.
func (t *TACK) OnData(now sim.Time, bytes int) bool {
	prevPending := t.bytesPending
	t.onData(now, bytes)
	bytesOK := t.bytesPending >= t.l*MSS
	timeOK := now-t.lastAck >= t.alpha
	switch {
	case bytesOK && timeOK:
		// Both hold: the binding (last-satisfied) condition is the byte
		// threshold when this packet crossed it, the periodic boundary when
		// the threshold was already met and only time was lacking.
		if prevPending >= t.l*MSS {
			t.lastTrigger = TriggerTimer
		} else {
			t.lastTrigger = TriggerBytes
		}
	case bytesOK:
		// Waiting out the α spacing: a timer-driven ack is periodic-bound.
		t.lastTrigger = TriggerTimer
	default:
		// Sub-threshold tail: a timer-driven ack is the bounded tail delay.
		t.lastTrigger = TriggerTail
	}
	return bytesOK && timeOK
}

// Deadline implements Policy.
func (t *TACK) Deadline(sim.Time) sim.Time {
	if !t.havePending {
		return 0
	}
	if t.bytesPending >= t.l*MSS {
		// Byte condition met; fire exactly at the periodic boundary.
		return t.lastAck + t.alpha
	}
	// Sub-threshold tail: bounded delay so the stream's last bytes are
	// acknowledged even when f_b → 0.
	d := t.firstPending + TailDelay
	if min := t.lastAck + t.alpha; d < min {
		d = min
	}
	return d
}

// OnAckSent implements Policy.
func (t *TACK) OnAckSent(now sim.Time) { t.onAckSent(now) }
