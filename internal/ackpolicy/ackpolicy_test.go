package ackpolicy

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

// drive feeds a constant-bitrate stream of full-sized packets through a
// policy for dur and returns the number of ACKs emitted (data-driven and
// timer-driven).
func drive(p Policy, bwBps float64, dur sim.Time) int {
	interval := sim.Time(float64(MSS*8) / bwBps * 1e9)
	acks := 0
	now := sim.Time(0)
	for now < dur {
		fire := p.OnData(now, MSS)
		if fire {
			p.OnAckSent(now)
			acks++
		} else if d := p.Deadline(now); d > 0 && d <= now+interval {
			// Timer would fire before the next packet arrives.
			p.OnAckSent(d)
			acks++
		}
		now += interval
	}
	return acks
}

func TestPerPacketAcksEverything(t *testing.T) {
	p := NewPerPacket()
	if got := drive(p, 12e6, sim.Second); got != 1000 {
		t.Fatalf("acks = %d, want 1000 (one per packet at 12 Mbit/s)", got)
	}
}

func TestByteCountHalvesAcks(t *testing.T) {
	p := NewByteCount(2)
	if got := drive(p, 12e6, sim.Second); got != 500 {
		t.Fatalf("acks = %d, want 500", got)
	}
	p8 := NewByteCount(8)
	if got := drive(p8, 12e6, sim.Second); got != 125 {
		t.Fatalf("acks = %d, want 125", got)
	}
}

func TestByteCountFrequencyScalesWithBandwidth(t *testing.T) {
	// Eq. 1: f_b = bw/(L·MSS) — unbounded growth with bw.
	lo := drive(NewByteCount(2), 12e6, sim.Second)
	hi := drive(NewByteCount(2), 120e6, sim.Second)
	if hi < lo*9 {
		t.Fatalf("byte-counting frequency did not scale: %d vs %d", lo, hi)
	}
}

func TestDelayedAckTimerBoundsTail(t *testing.T) {
	p := NewDelayed(40 * sim.Millisecond)
	// A single packet (below L·MSS): no immediate ack, timer at +40ms.
	if p.OnData(ms(10), MSS) {
		t.Fatal("single packet should not trigger delayed ack")
	}
	if d := p.Deadline(ms(10)); d != ms(50) {
		t.Fatalf("deadline = %v, want 50ms", d)
	}
	// Second full packet fires immediately.
	if !p.OnData(ms(20), MSS) {
		t.Fatal("second packet should trigger")
	}
	p.OnAckSent(ms(20))
	if d := p.Deadline(ms(20)); d != 0 {
		t.Fatalf("deadline after ack = %v, want none", d)
	}
}

func TestPeriodicFrequencyIndependentOfBandwidth(t *testing.T) {
	// Eq. 2: f = 1/α regardless of rate.
	a1 := drive(NewPeriodic(ms(25)), 12e6, sim.Second)
	a2 := drive(NewPeriodic(ms(25)), 120e6, sim.Second)
	if a1 < 38 || a1 > 42 {
		t.Fatalf("periodic acks = %d, want ~40", a1)
	}
	diff := a1 - a2
	if diff < -3 || diff > 3 {
		t.Fatalf("periodic frequency varied with bandwidth: %d vs %d", a1, a2)
	}
}

func TestTACKAlphaFromRTTMin(t *testing.T) {
	p := NewTACK(4, 2)
	p.Update(0, ms(80))
	if p.Alpha() != ms(20) {
		t.Fatalf("alpha = %v, want RTTmin/beta = 20ms", p.Alpha())
	}
	p.Update(0, 0)
	if p.Alpha() != ms(25) {
		t.Fatalf("fallback alpha = %v, want 25ms", p.Alpha())
	}
	p.Update(0, sim.Microsecond)
	if p.Alpha() != sim.Millisecond {
		t.Fatalf("alpha floor = %v, want 1ms", p.Alpha())
	}
}

func TestTACKPeriodicAtHighBDP(t *testing.T) {
	// bdp large: f_tack = β/RTTmin. RTTmin=80ms, β=4 → 50 Hz.
	p := NewTACK(4, 2)
	p.Update(0, ms(80))
	got := drive(p, 200e6, sim.Second)
	if got < 45 || got > 55 {
		t.Fatalf("tack acks = %d, want ~50 (periodic regime)", got)
	}
}

func TestTACKByteCountingAtLowBDP(t *testing.T) {
	// bw low: f_tack = bw/(L·MSS). bw=1.2 Mbit/s, L=2 → 50 Hz; the
	// periodic bound at RTTmin=10ms would allow 400 Hz.
	p := NewTACK(4, 2)
	p.Update(0, ms(10))
	got := drive(p, 1.2e6, sim.Second)
	if got < 45 || got > 55 {
		t.Fatalf("tack acks = %d, want ~50 (byte-counting regime)", got)
	}
}

func TestTACKMatchesEquation3AcrossRegimes(t *testing.T) {
	// Sweep bandwidths; measured frequency must track
	// min(bw/(L·MSS), β/RTTmin) within 20%.
	rttMin := ms(100)
	for _, bwMbps := range []float64{1, 5, 20, 100, 500} {
		p := NewTACK(4, 2)
		p.Update(0, rttMin)
		got := float64(drive(p, bwMbps*1e6, 2*sim.Second)) / 2
		fb := bwMbps * 1e6 / (2 * MSS * 8)
		fp := 4.0 / rttMin.Seconds()
		want := fb
		if fp < fb {
			want = fp
		}
		if got < want*0.8 || got > want*1.25 {
			t.Errorf("bw=%v Mbit/s: f=%.0f, want ~%.0f", bwMbps, got, want)
		}
	}
}

func TestTACKFrequencyNeverExceedsLegacy(t *testing.T) {
	// Paper insight 1: f_tack ≤ f_tcp for the same L, at every bandwidth.
	for _, bwMbps := range []float64{0.5, 2, 10, 50, 300} {
		for _, rtt := range []sim.Time{ms(10), ms(80), ms(200)} {
			tack := NewTACK(4, 2)
			tack.Update(0, rtt)
			legacy := NewByteCount(2)
			ft := drive(tack, bwMbps*1e6, sim.Second)
			fl := drive(legacy, bwMbps*1e6, sim.Second)
			if ft > fl+1 {
				t.Errorf("bw=%v rtt=%v: tack %d > legacy %d", bwMbps, rtt, ft, fl)
			}
		}
	}
}

func TestTACKTailIsBounded(t *testing.T) {
	p := NewTACK(4, 2)
	p.Update(0, ms(40))
	// One lonely sub-threshold packet must still get acknowledged within
	// TailDelay.
	if p.OnData(ms(5), 300) {
		t.Fatal("sub-threshold data must not ack immediately")
	}
	d := p.Deadline(ms(5))
	if d == 0 || d > ms(5)+TailDelay {
		t.Fatalf("tail deadline = %v, want <= %v", d, ms(5)+TailDelay)
	}
}

func TestTACKDeadlineAfterByteThreshold(t *testing.T) {
	p := NewTACK(4, 2)
	p.Update(0, ms(100)) // alpha = 25ms
	p.OnAckSent(ms(0))
	if p.OnData(ms(1), 2*MSS) {
		t.Fatal("byte threshold met but periodic spacing not elapsed")
	}
	if d := p.Deadline(ms(1)); d != ms(25) {
		t.Fatalf("deadline = %v, want lastAck+alpha = 25ms", d)
	}
}

func TestNames(t *testing.T) {
	for _, c := range []struct {
		p    Policy
		want string
	}{
		{NewPerPacket(), "perpacket"},
		{NewByteCount(4), "bytecount(L=4)"},
		{NewDelayed(0), "delayed"},
		{NewPeriodic(0), "periodic"},
		{NewTACK(0, 0), "tack(beta=4,L=2)"},
	} {
		if c.p.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.p.Name(), c.want)
		}
	}
}
