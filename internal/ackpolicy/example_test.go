package ackpolicy_test

import (
	"fmt"

	"github.com/tacktp/tack/internal/ackpolicy"
	"github.com/tacktp/tack/internal/sim"
)

// ExampleTACK shows the two regimes of the Eq. 3 discipline: at high
// bandwidth the periodic spacing gates acknowledgments; at low bandwidth
// the byte-counting threshold does.
func ExampleTACK() {
	p := ackpolicy.NewTACK(4, 2)
	p.Update(0, 80*sim.Millisecond) // synced RTTmin: alpha = 20 ms

	// High rate: the byte threshold is met long before the spacing.
	fire := p.OnData(sim.Millisecond, 2*ackpolicy.MSS)
	fmt.Printf("high rate, 1ms after last ack: fire=%v deadline=%v\n",
		fire, p.Deadline(sim.Millisecond))

	// Once the periodic spacing has elapsed too, the next packet fires.
	fire = p.OnData(21*sim.Millisecond, 2*ackpolicy.MSS)
	fmt.Printf("after alpha elapsed: fire=%v\n", fire)
	// Output:
	// high rate, 1ms after last ack: fire=false deadline=20ms
	// after alpha elapsed: fire=true
}
