// Package transport implements the reliable transport engine that carries
// the paper's protocols: TCP-TACK (TACK mode) and a legacy-TCP emulation
// (legacy mode) used as the baseline.
//
// The engine is sans-IO: a Sender and a Receiver are pure event-driven
// state machines attached to a sim.Loop for timers; packets leave through
// an injected output function and arrive through OnPacket. The same state
// machines run over the in-process 802.11/netem simulators (deterministic)
// and over real UDP sockets (transport/udprunner).
//
// Mode differences (paper §5):
//
//	              legacy                      TACK
//	ACK timing    per-packet / delayed /      Eq. 3 balance of byte-counting
//	              byte-counting(L)            and periodic (ackpolicy.TACK)
//	loss          sender-based: SACK blocks   receiver-based: PKT.SEQ gaps
//	detection     + FACK threshold + RTO      with settle delay → loss IACK,
//	                                          repeated in TACK unacked lists
//	round-trip    ACK echo without delay      receiver min-OWD echo + Δt⋆
//	timing        correction (biased)         correction (paper Fig. 4)
//	rate inputs   sender-computed delivery    receiver-computed delivery
//	              rate from cumack growth     rate + ρ synced inside TACKs
//	send pattern  optional ACK-clocked        paced (token bucket at the
//	              bursts                      controller's pacing rate)
package transport

import (
	"fmt"

	"github.com/tacktp/tack/internal/ackpolicy"
	"github.com/tacktp/tack/internal/cc"
	"github.com/tacktp/tack/internal/core"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/rtt"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
)

// Mode selects the protocol personality.
type Mode int

// Protocol modes.
const (
	// ModeTACK is the paper's TCP-TACK.
	ModeTACK Mode = iota
	// ModeLegacy emulates a legacy TCP: ACK-policy-driven acking with
	// sender-based loss detection and timing.
	ModeLegacy
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeTACK {
		return "tack"
	}
	return "legacy"
}

// DefaultPayload is the data payload size per packet, chosen so a DATA
// frame occupies 1518 bytes on the wire like the paper's traffic.
const DefaultPayload = 1439

// LossDetector selects the sender-side loss detection machinery.
type LossDetector int

// Loss detectors.
const (
	// DetectorRACK is RFC 8985 time-based detection with Tail Loss Probes
	// (the default): a segment is lost once a later-sent segment has been
	// acknowledged and the segment's age exceeds the RACK RTT plus an
	// adaptive reorder window.
	DetectorRACK LossDetector = iota
	// DetectorDupThresh is the duplicate-threshold baseline: in legacy mode
	// the FACK-style 3×MSS sacked-above scan; in TACK mode the receiver's
	// gap reports alone. No sender-side timers, no tail probes.
	DetectorDupThresh
)

// String names the detector.
func (d LossDetector) String() string {
	if d == DetectorRACK {
		return "rack"
	}
	return "dupthresh"
}

// Default reorder-window bounds (RFC 8985 §6.1.1 shape; the initial value
// covers the pre-RTT-sample window where no adaptive base exists yet).
const (
	DefaultReorderWindowMin  = sim.Millisecond
	DefaultReorderWindowMax  = 200 * sim.Millisecond
	DefaultReorderWindowInit = 10 * sim.Millisecond
)

// DefaultProbeTimeoutMult is the default TLP probe timeout as a multiple of
// the smoothed RTT (RFC 8985 §7.2: PTO ≈ 2×SRTT).
const DefaultProbeTimeoutMult = 2.0

// LossDetection groups the sender's loss-detection knobs, replacing the
// scattered per-detector flags that would otherwise accrete on Config. The
// zero value selects RACK-TLP with the RFC 8985 defaults.
type LossDetection struct {
	// Detector picks the machinery: DetectorRACK (default) or
	// DetectorDupThresh for A/B comparison against the baseline.
	Detector LossDetector
	// ReorderWindowInit is the reorder window used before the first RTT
	// sample exists (default 10 ms). Must lie within [Min, Max].
	ReorderWindowInit sim.Time
	// ReorderWindowMin / ReorderWindowMax clamp the adaptive reorder window
	// (defaults 1 ms and 200 ms). The window starts at min-RTT/4 and widens
	// multiplicatively when reordering is actually observed.
	ReorderWindowMin, ReorderWindowMax sim.Time
	// DisableTLP suppresses Tail Loss Probes, leaving RACK marking alone
	// (ablation; tail losses then wait for the RTO).
	DisableTLP bool
	// ProbeTimeoutMult scales the TLP probe timeout in units of SRTT
	// (default 2.0; values below 1 are rejected as they would probe inside
	// one round trip).
	ProbeTimeoutMult float64
	// MinRTTWindow is the sliding min-RTT window size in samples (default
	// rtt.DefaultSlidingMinSize): RACK's window base forgets by sample
	// count so a route change flushes a stale minimum.
	MinRTTWindow int
	// DupThresh is the legacy detector's threshold in packets: a segment is
	// lost once DupThresh×Payload bytes above it were sacked (default 3).
	DupThresh int
}

func (l LossDetection) withDefaults() LossDetection {
	if l.ReorderWindowMin <= 0 {
		l.ReorderWindowMin = DefaultReorderWindowMin
	}
	if l.ReorderWindowMax <= 0 {
		l.ReorderWindowMax = DefaultReorderWindowMax
	}
	if l.ReorderWindowInit <= 0 {
		l.ReorderWindowInit = DefaultReorderWindowInit
		// Keep the default init inside caller-narrowed bounds.
		if l.ReorderWindowInit > l.ReorderWindowMax {
			l.ReorderWindowInit = l.ReorderWindowMax
		}
		if l.ReorderWindowInit < l.ReorderWindowMin {
			l.ReorderWindowInit = l.ReorderWindowMin
		}
	}
	if l.ProbeTimeoutMult <= 0 {
		l.ProbeTimeoutMult = DefaultProbeTimeoutMult
	}
	if l.MinRTTWindow <= 0 {
		l.MinRTTWindow = rtt.DefaultSlidingMinSize
	}
	if l.DupThresh <= 0 {
		l.DupThresh = 3
	}
	return l
}

// Validate rejects nonsense loss-detection bounds.
func (l LossDetection) Validate() error {
	if l.Detector != DetectorRACK && l.Detector != DetectorDupThresh {
		return fmt.Errorf("transport: unknown loss detector %d", int(l.Detector))
	}
	if l.ReorderWindowMin < 0 || l.ReorderWindowMax < 0 || l.ReorderWindowInit < 0 {
		return fmt.Errorf("transport: negative reorder window bound (min=%v max=%v init=%v)",
			l.ReorderWindowMin, l.ReorderWindowMax, l.ReorderWindowInit)
	}
	if l.ReorderWindowMin > 0 && l.ReorderWindowMax > 0 && l.ReorderWindowMin > l.ReorderWindowMax {
		return fmt.Errorf("transport: reorder window min %v above max %v",
			l.ReorderWindowMin, l.ReorderWindowMax)
	}
	if l.ReorderWindowInit > 0 {
		if l.ReorderWindowMin > 0 && l.ReorderWindowInit < l.ReorderWindowMin {
			return fmt.Errorf("transport: initial reorder window %v below min %v",
				l.ReorderWindowInit, l.ReorderWindowMin)
		}
		if l.ReorderWindowMax > 0 && l.ReorderWindowInit > l.ReorderWindowMax {
			return fmt.Errorf("transport: initial reorder window %v above max %v",
				l.ReorderWindowInit, l.ReorderWindowMax)
		}
	}
	if l.ProbeTimeoutMult != 0 && l.ProbeTimeoutMult < 1 {
		return fmt.Errorf("transport: probe timeout multiplier %v below 1 (would probe inside one RTT)",
			l.ProbeTimeoutMult)
	}
	if l.MinRTTWindow < 0 {
		return fmt.Errorf("transport: negative min-RTT window %d", l.MinRTTWindow)
	}
	if l.DupThresh < 0 {
		return fmt.Errorf("transport: negative dup threshold %d", l.DupThresh)
	}
	return nil
}

// Config parameterizes a connection pair.
type Config struct {
	// Mode selects TACK or legacy behaviour.
	Mode Mode
	// CC names the congestion controller (default "bbr").
	CC string
	// CCConfig tunes the controller.
	CCConfig cc.Config
	// Payload is the data bytes per packet (default DefaultPayload).
	Payload int
	// Params are the TACK mechanism constants (β, L, Q, settle fraction).
	Params core.Params
	// RichTACK lets TACKs carry as many blocks as fit in the MSS
	// ("TACK-rich"); when false the block budget follows Appendix A from
	// the primary Q ("TACK-poor" when Q==1 and loss is low).
	RichTACK bool
	// AckPolicy overrides the receiver's acknowledgment discipline. Nil
	// selects ackpolicy.NewTACK(β, L) in TACK mode and
	// ackpolicy.NewDelayed(40 ms) in legacy mode.
	AckPolicy ackpolicy.Policy
	// LegacySACKBlocks bounds the SACK blocks carried by legacy ACKs
	// (default 3, like a timestamp-bearing TCP SACK option).
	LegacySACKBlocks int
	// RecvBuf is the receive buffer capacity in bytes (default 32 MiB,
	// emulating an autotuned receive window).
	RecvBuf int
	// ManualDrain stops the receiver from consuming in-order bytes
	// immediately; the application must call Receiver.Read, which is how
	// flow-control experiments exercise the receive window. The zero value
	// keeps the default auto-draining behaviour.
	//
	// (This replaces the former AutoDrain/NoAutoDrain double-boolean pair.)
	ManualDrain bool
	// TransferBytes ends the stream after this many bytes (0 = unbounded).
	TransferBytes int64
	// AppPaced makes the sender transmit only bytes made available via
	// Sender.AddBytes (a streaming application source, e.g. a video
	// encoder) instead of an always-backlogged stream.
	AppPaced bool
	// DisablePacing reverts to ACK-clocked bursts (ablation).
	DisablePacing bool
	// DisableIACK suppresses loss-event IACKs (Figure 5(a) ablation).
	DisableIACK bool
	// LegacyTiming makes a TACK-mode sender drive control from the
	// uncorrected legacy RTT estimator (Figure 6 ablation: "sampling"
	// timing without the Δt correction).
	LegacyTiming bool
	// Loss groups the sender-side loss-detection knobs: which detector
	// runs (RACK-TLP by default, dup-thresh for A/B baselines), the
	// adaptive reorder-window bounds, and the TLP probe timeout.
	Loss LossDetection
	// AdaptiveSettle enables dynamic adjustment of the IACK reordering
	// settle delay (the paper's §7 future work): the delay grows when
	// spurious retransmissions appear (duplicates at the receiver, i.e.
	// reordering was mistaken for loss) and decays toward the configured
	// RTTmin/SettleFraction baseline when they stop.
	AdaptiveSettle bool
	// MinRTO / MaxRTO clamp the retransmission timeout.
	MinRTO, MaxRTO sim.Time
	// HandshakeRTO is the initial SYN retransmission timeout, before any
	// RTT sample exists. It doubles on every retry (clamped to MaxRTO) and
	// defaults to 250 ms — aggressive relative to the steady-state MinRTO
	// because a lost SYN stalls the whole connection and there is nothing
	// in flight to protect from spurious retransmission.
	HandshakeRTO sim.Time
	// MaxSYNRetries caps SYN retransmissions (not counting the original).
	// When the budget is exhausted without a SYNACK the sender reports
	// HandshakeFailed. Default 8; negative disables retransmission
	// entirely (a single SYN is sent).
	MaxSYNRetries int
	// Streams enables stream multiplexing: the sender transmits STREAM
	// frames pulled from a stream.SendMux scheduler instead of one flat
	// bytestream, and the receiver demultiplexes into per-stream reassembly
	// buffers (see internal/stream). Requires ModeTACK and is mutually
	// exclusive with TransferBytes, AppPaced, and ManualDrain: stream
	// lifetimes replace the connection-level termination/drain knobs. Nil
	// (the default) keeps the single-bytestream behaviour.
	Streams *stream.Config
	// ConnID tags packets (useful when multiplexing flows over one path).
	ConnID uint32
	// Tracer records structured per-event telemetry for this connection
	// half (nil — the default — disables tracing at near-zero cost; see
	// internal/telemetry).
	Tracer *telemetry.Tracer
	// Metrics registers hot-path counters, gauges, and histograms for this
	// connection half (nil disables).
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.CC == "" {
		c.CC = "bbr"
	}
	if c.Payload <= 0 {
		c.Payload = DefaultPayload
	}
	d := core.DefaultParams()
	if c.Params.Beta <= 0 {
		c.Params.Beta = d.Beta
	}
	if c.Params.L <= 0 {
		c.Params.L = d.L
	}
	if c.Params.Q <= 0 {
		c.Params.Q = d.Q
	}
	if c.Params.SettleFraction <= 0 {
		c.Params.SettleFraction = d.SettleFraction
	}
	if c.RecvBuf <= 0 {
		// Default sized for the highest-BDP evaluation point (≈560 Mbit/s
		// at 200 ms RTT needs ~14 MB; give 2 BDP like an autotuned stack).
		c.RecvBuf = 32 << 20
	}
	if c.LegacySACKBlocks <= 0 {
		c.LegacySACKBlocks = 3
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.HandshakeRTO <= 0 {
		c.HandshakeRTO = 250 * sim.Millisecond
	}
	if c.MaxSYNRetries == 0 {
		c.MaxSYNRetries = 8
	} else if c.MaxSYNRetries < 0 {
		c.MaxSYNRetries = 0
	}
	c.Loss = c.Loss.withDefaults()
	return c
}

// Validate reports whether the configuration is self-consistent. The zero
// Config is valid (every unset knob has a documented default); Validate
// rejects values that withDefaults would otherwise paper over silently and
// combinations whose semantics contradict each other:
//
//   - negative sizes (Payload, TransferBytes, RecvBuf, LegacySACKBlocks)
//   - Payload beyond the wire format's 16-bit length field (65535)
//   - negative mechanism constants (β, L, Q, settle fraction)
//   - negative RTO bounds, or MinRTO above MaxRTO when both are set
//   - inconsistent LossDetection bounds (see LossDetection.Validate):
//     negative or inverted reorder-window limits, an initial window outside
//     them, a probe timeout multiplier below one SRTT, an unknown detector
//   - an unknown protocol Mode or congestion-controller name
//   - AppPaced combined with TransferBytes: a stream has exactly one
//     termination authority — the application feed (AppPaced) or the byte
//     bound — and configuring both leaves completion undefined when the
//     feed stops short of the bound.
//   - Streams outside TACK mode, or combined with TransferBytes, AppPaced,
//     or ManualDrain (stream lifetimes replace those connection-level
//     knobs), or carrying an invalid stream.Config (zero or negative
//     windows and stream limits are rejected, not defaulted).
//
// NewSender validates implicitly; endpoint constructors validate before
// binding sockets so misconfiguration surfaces as an error, not a stall.
func (c Config) Validate() error {
	if c.Mode != ModeTACK && c.Mode != ModeLegacy {
		return fmt.Errorf("transport: unknown mode %d", int(c.Mode))
	}
	if c.Payload < 0 || c.Payload > 65535 {
		return fmt.Errorf("transport: payload %d outside [0, 65535] (16-bit wire length)", c.Payload)
	}
	if c.TransferBytes < 0 {
		return fmt.Errorf("transport: negative TransferBytes %d", c.TransferBytes)
	}
	if c.RecvBuf < 0 {
		return fmt.Errorf("transport: negative RecvBuf %d", c.RecvBuf)
	}
	if c.LegacySACKBlocks < 0 {
		return fmt.Errorf("transport: negative LegacySACKBlocks %d", c.LegacySACKBlocks)
	}
	p := c.Params
	if p.Beta < 0 || p.L < 0 || p.Q < 0 || p.SettleFraction < 0 {
		return fmt.Errorf("transport: negative TACK params (beta=%v L=%d Q=%d settle=%v)",
			p.Beta, p.L, p.Q, p.SettleFraction)
	}
	if c.MinRTO < 0 || c.MaxRTO < 0 {
		return fmt.Errorf("transport: negative RTO bound (min=%v max=%v)", c.MinRTO, c.MaxRTO)
	}
	if c.MinRTO > 0 && c.MaxRTO > 0 && c.MinRTO > c.MaxRTO {
		return fmt.Errorf("transport: MinRTO %v above MaxRTO %v", c.MinRTO, c.MaxRTO)
	}
	if c.HandshakeRTO < 0 {
		return fmt.Errorf("transport: negative HandshakeRTO %v", c.HandshakeRTO)
	}
	if err := c.Loss.Validate(); err != nil {
		return err
	}
	if c.AppPaced && c.TransferBytes > 0 {
		return fmt.Errorf("transport: AppPaced and TransferBytes=%d both set; a stream has one termination authority", c.TransferBytes)
	}
	if c.Streams != nil {
		if c.Mode != ModeTACK {
			return fmt.Errorf("transport: stream multiplexing requires TACK mode, got %s", c.Mode)
		}
		if c.TransferBytes > 0 {
			return fmt.Errorf("transport: Streams and TransferBytes=%d both set; stream FINs own termination", c.TransferBytes)
		}
		if c.AppPaced {
			return fmt.Errorf("transport: Streams and AppPaced both set; stream writes pace the source")
		}
		if c.ManualDrain {
			return fmt.Errorf("transport: Streams and ManualDrain both set; stream reads drain per-stream buffers")
		}
		if err := c.Streams.Validate(); err != nil {
			return fmt.Errorf("transport: %w", err)
		}
	}
	if c.CC != "" {
		if _, err := cc.New(c.CC, c.CCConfig); err != nil {
			return fmt.Errorf("transport: %w", err)
		}
	}
	return nil
}

// SenderStats aggregates sender-side counters.
type SenderStats struct {
	DataPackets    int   // DATA transmissions, including retransmissions
	DataBytes      int64 // payload bytes transmitted (incl. retransmissions)
	Retransmits    int
	AcksReceived   int
	IACKsReceived  int
	Timeouts       int
	LossEpisodes   int
	BytesAcked     int64
	RTTSyncsSent   int
	SYNRetransmits int // SYNs re-sent under the handshake backoff schedule
	RackMarked     int // segments marked lost by RACK time-based detection
	TLPProbes      int // tail loss probes transmitted
	// FEC accounting: repair groups opened, REPAIR packets and bytes
	// actually transmitted, and repairs evicted from the fill queue
	// before the pacer could flush them.
	FECGroups      int
	FECRepairsSent int
	FECRepairBytes int64
	FECQueueDrops  int
	// AckBytesReceived is the wire size of every ack-bearing packet
	// absorbed (SYNACK/TACK/IACK/FINACK): the sender-side half of the
	// ACK-overhead-per-delivered-MB accounting.
	AckBytesReceived int64
}

// ReceiverStats aggregates receiver-side counters.
type ReceiverStats struct {
	DataPackets    int   // DATA packets received
	DupPackets     int   // packets carrying no new bytes
	BytesDelivered int64 // in-order bytes handed to the application
	TACKsSent      int
	IACKsSent      int
	LossIACKs      int
	WindowIACKs    int
	LossesDetected int
	Overflows      int
	// SYNACKRetransmits counts SYNACKs re-emitted for an embryo whose
	// previous SYNACK (or the client's follow-up) apparently got lost.
	SYNACKRetransmits int
	// FEC accounting: repairs received, lost packets reconstructed (and
	// their payload bytes), repairs consumed by a reconstruction, repairs
	// that bought nothing (group complete or duplicate), and malformed or
	// hostile FEC input dropped by the decoder.
	FECRepairsReceived int
	FECRecovered       int
	FECRecoveredBytes  int64
	FECRepairsUsed     int
	FECRepairsWasted   int
	FECDropped         int
	// AckBytesSent is the wire size of every acknowledgment emitted
	// (SYNACK/TACK/IACK/FINACK): the receiver-side half of the
	// ACK-overhead-per-delivered-MB accounting.
	AckBytesSent int64
}

// AcksSent returns the total acknowledgments the receiver emitted.
func (r ReceiverStats) AcksSent() int { return r.TACKsSent + r.IACKsSent }

// Output is the packet egress function a connection half writes to.
type Output func(*packet.Packet)

// newController builds the configured congestion controller, wrapped with
// telemetry when the connection is instrumented.
func newController(cfg Config) (cc.Controller, error) {
	ctrl, err := cc.New(cfg.CC, cfg.CCConfig)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return cc.Traced(ctrl, cfg.Tracer, cfg.ConnID, cfg.Metrics), nil
}

// iackTrigger maps a wire IACK kind onto the telemetry trigger namespace
// (TrigNone for plain TACKs).
func iackTrigger(k packet.IACKKind) uint8 {
	switch k {
	case packet.IACKLoss:
		return telemetry.TrigLoss
	case packet.IACKWindow:
		return telemetry.TrigWindow
	case packet.IACKRTTSync:
		return telemetry.TrigRTTSync
	case packet.IACKHandshake:
		return telemetry.TrigHandshake
	case packet.IACKKeepalive:
		return telemetry.TrigKeepalive
	default:
		return telemetry.TrigNone
	}
}

// policyTrigger maps an ackpolicy trigger onto the telemetry namespace.
func policyTrigger(t ackpolicy.Trigger) uint8 {
	switch t {
	case ackpolicy.TriggerBytes:
		return telemetry.TrigBytes
	case ackpolicy.TriggerTimer:
		return telemetry.TrigTimer
	case ackpolicy.TriggerTail:
		return telemetry.TrigTail
	default:
		return telemetry.TrigNone
	}
}
