package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

// benchTransfer measures the simulator throughput of a full 8 MiB transfer
// (events per wall-second is the interesting number; b.N scales repeats).
func benchTransfer(b *testing.B, cfg Config, loss float64) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop(int64(i + 1))
		var snd *Sender
		var rcv *Receiver
		fwdCfg, revCfg := netem.Symmetric(100e6, 20*sim.Millisecond, 0, loss, 0)
		fwd := netem.NewLink(loop, fwdCfg, func(pl any, n int) { rcv.OnPacket(pl.(*packet.Packet)) })
		rev := netem.NewLink(loop, revCfg, func(pl any, n int) { snd.OnPacket(pl.(*packet.Packet)) })
		var err error
		cfg.TransferBytes = 8 << 20
		snd, err = NewSender(loop, cfg, func(p *packet.Packet) { fwd.Send(p, p.WireSize()) })
		if err != nil {
			b.Fatal(err)
		}
		rcv = NewReceiver(loop, cfg, func(p *packet.Packet) { rev.Send(p, p.WireSize()) })
		snd.Start()
		loop.RunUntil(60 * sim.Second)
		if !snd.Done() {
			b.Fatalf("transfer incomplete: %d bytes acked", snd.CumAcked())
		}
		b.SetBytes(8 << 20)
	}
}

// BenchmarkTransferTACKClean measures a clean-path TCP-TACK transfer.
func BenchmarkTransferTACKClean(b *testing.B) {
	benchTransfer(b, Config{Mode: ModeTACK, RichTACK: true}, 0)
}

// BenchmarkTransferTACKLossy measures a 1%-loss TCP-TACK transfer
// (exercises IACK recovery and rich TACK repetition).
func BenchmarkTransferTACKLossy(b *testing.B) {
	benchTransfer(b, Config{Mode: ModeTACK, RichTACK: true}, 0.01)
}

// BenchmarkTransferLegacyClean measures the legacy-TCP baseline.
func BenchmarkTransferLegacyClean(b *testing.B) {
	benchTransfer(b, Config{Mode: ModeLegacy}, 0)
}

// BenchmarkTransferLegacyLossy measures legacy SACK/FACK recovery.
func BenchmarkTransferLegacyLossy(b *testing.B) {
	benchTransfer(b, Config{Mode: ModeLegacy}, 0.01)
}
