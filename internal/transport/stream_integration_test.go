package transport

import (
	"bytes"
	"testing"

	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
)

// streamPattern fills b with a deterministic per-stream byte pattern so
// cross-stream payload mixups are detectable, not just length errors.
func streamPattern(sid uint32, off uint64, b []byte) {
	for i := range b {
		x := off + uint64(i)
		b[i] = byte(uint64(sid)*131 + x*7 + (x >> 8))
	}
}

// streamSink drains every accepted receive stream from inside the sim loop
// (single-goroutine, so blocking Read/Accept would deadlock — it polls with
// TryAccept/ReadAvailable on a timer).
type streamSink struct {
	t       *testing.T
	mux     *stream.RecvMux
	timer   *sim.Timer
	open    []*stream.RecvStream
	got     map[uint32]*bytes.Buffer
	eof     map[uint32]bool
	scratch []byte
}

func newStreamSink(t *testing.T, loop *sim.Loop, mux *stream.RecvMux) *streamSink {
	k := &streamSink{
		t: t, mux: mux,
		got: make(map[uint32]*bytes.Buffer), eof: make(map[uint32]bool),
		scratch: make([]byte, 32<<10),
	}
	k.timer = sim.NewTimer(loop, k.poll)
	k.timer.ResetAfter(sim.Millisecond)
	return k
}

func (k *streamSink) poll() {
	for {
		s := k.mux.TryAccept()
		if s == nil {
			break
		}
		k.open = append(k.open, s)
		k.got[s.ID()] = &bytes.Buffer{}
	}
	live := k.open[:0]
	for _, s := range k.open {
		done := false
		for {
			n, eof, err := s.ReadAvailable(k.scratch)
			if err != nil {
				k.t.Errorf("stream %d: ReadAvailable: %v", s.ID(), err)
				done = true
				break
			}
			if n > 0 {
				k.got[s.ID()].Write(k.scratch[:n])
			}
			if eof {
				k.eof[s.ID()] = true
				done = true
				break
			}
			if n == 0 {
				break
			}
		}
		if !done {
			live = append(live, s)
		}
	}
	k.open = live
	k.timer.ResetAfter(2 * sim.Millisecond)
}

// verify checks every stream's bytes against the deterministic pattern.
func (k *streamSink) verify(sizes map[uint32]int) {
	k.t.Helper()
	for sid, size := range sizes {
		buf, ok := k.got[sid]
		if !ok {
			k.t.Errorf("stream %d: never accepted", sid)
			continue
		}
		if !k.eof[sid] {
			k.t.Errorf("stream %d: no EOF (got %d/%d bytes)", sid, buf.Len(), size)
			continue
		}
		b := buf.Bytes()
		if len(b) != size {
			k.t.Errorf("stream %d: got %d bytes, want %d", sid, len(b), size)
			continue
		}
		want := make([]byte, size)
		streamPattern(sid, 0, want)
		if !bytes.Equal(b, want) {
			k.t.Errorf("stream %d: payload corrupted", sid)
		}
	}
}

// openAndSend opens nStreams on the harness sender, writes size patterned
// bytes to each (buffered entirely up front: SendBuffer must cover size),
// and closes them.
func openAndSend(t *testing.T, h *harness, nStreams, size int) map[uint32]int {
	t.Helper()
	sizes := make(map[uint32]int, nStreams)
	for i := 0; i < nStreams; i++ {
		s, err := h.snd.Streams().Open(stream.Options{})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, size)
		streamPattern(s.ID(), 0, data)
		if _, err := s.Write(data); err != nil {
			t.Fatalf("stream %d write: %v", s.ID(), err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("stream %d close: %v", s.ID(), err)
		}
		sizes[s.ID()] = size
	}
	return sizes
}

func streamCfg(c stream.Config) Config {
	return Config{Mode: ModeTACK, Streams: &c}
}

func TestStreamMultiplexedTransfer(t *testing.T) {
	cfg := streamCfg(stream.Config{
		RecvWindow: 256 << 10, MaxStreams: 16, SendBuffer: 1 << 20,
	})
	h := newHarness(t, 11, cfg, 50e6, ms(10), 0, 0)
	sizes := openAndSend(t, h, 8, 100<<10)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	h.run(10 * sim.Second)
	sink.verify(sizes)
	if n := h.snd.Streams().ActiveStreams(); n != 0 {
		t.Errorf("sender still has %d active streams", n)
	}
	if n := h.rcv.Streams().ActiveStreams(); n != 0 {
		t.Errorf("receiver still has %d active streams", n)
	}
}

func TestStreamTransferSurvivesLoss(t *testing.T) {
	cfg := streamCfg(stream.Config{
		RecvWindow: 256 << 10, MaxStreams: 16, SendBuffer: 1 << 20,
	})
	h := newHarness(t, 12, cfg, 50e6, ms(20), 0.02, 0)
	sizes := openAndSend(t, h, 8, 100<<10)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	h.run(30 * sim.Second)
	sink.verify(sizes)
	if h.snd.Stats.Retransmits == 0 {
		t.Error("2% loss but no retransmissions")
	}
}

func TestStreamSchedulers(t *testing.T) {
	for _, sched := range []string{
		stream.SchedulerRoundRobin, stream.SchedulerPriority, stream.SchedulerWeighted,
	} {
		t.Run(sched, func(t *testing.T) {
			cfg := streamCfg(stream.Config{
				RecvWindow: 256 << 10, MaxStreams: 8,
				SendBuffer: 1 << 20, Scheduler: sched,
			})
			h := newHarness(t, 13, cfg, 20e6, ms(10), 0, 0)
			sizes := openAndSend(t, h, 4, 64<<10)
			sink := newStreamSink(t, h.loop, h.rcv.Streams())
			h.run(10 * sim.Second)
			sink.verify(sizes)
		})
	}
}

// TestStreamFlowControlStallAndResume exercises the per-stream window: a
// reader that consumes nothing fills the 16 KiB stream window and stalls
// the sender; a deferred bulk read must raise the limit via a window-update
// IACK and let the transfer finish.
func TestStreamFlowControlStallAndResume(t *testing.T) {
	const size = 64 << 10
	cfg := streamCfg(stream.Config{
		RecvWindow: 16 << 10, MaxStreams: 4, SendBuffer: 1 << 20,
	})
	h := newHarness(t, 14, cfg, 50e6, ms(10), 0, 0)
	sizes := openAndSend(t, h, 1, size)

	var sid uint32
	for id := range sizes {
		sid = id
	}
	var held *stream.RecvStream
	got := &bytes.Buffer{}
	eof := false
	scratch := make([]byte, 4096)
	drain := func() {
		if held == nil || eof {
			return
		}
		for {
			n, e, err := held.ReadAvailable(scratch)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n > 0 {
				got.Write(scratch[:n])
			}
			if e {
				eof = true
				return
			}
			if n == 0 {
				return
			}
		}
	}
	accept := sim.NewTimer(h.loop, func() { held = h.rcv.Streams().TryAccept() })
	accept.ResetAfter(50 * sim.Millisecond)

	// Phase check at 500 ms: the window must be exhausted (sender stalled at
	// exactly one stream window) with nothing consumed yet.
	var stalledAt int64
	check := sim.NewTimer(h.loop, func() { stalledAt = h.snd.ReleasedBytes() })
	check.Reset(500 * sim.Millisecond)

	// Resume: drain on a tight poll from 600 ms on.
	var poll *sim.Timer
	poll = sim.NewTimer(h.loop, func() {
		drain()
		if !eof {
			poll.ResetAfter(2 * sim.Millisecond)
		}
	})
	poll.Reset(600 * sim.Millisecond)

	h.run(10 * sim.Second)

	if stalledAt > 17<<10 {
		t.Errorf("sender pushed %d bytes past a 16 KiB stream window", stalledAt)
	}
	if !eof {
		t.Fatalf("stream never finished: got %d/%d bytes", got.Len(), size)
	}
	want := make([]byte, size)
	streamPattern(sid, 0, want)
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("payload corrupted")
	}
	if h.rcv.Stats.WindowIACKs == 0 {
		t.Error("bulk drain released half the stream window but no window-update IACK was sent")
	}
}

// TestStreamNoCrossStreamHoLB holds back one stream (never drained) while
// seven others transfer under loss: the stalled stream must not block the
// others' completion — the head-of-line-blocking win of the stream layer.
func TestStreamNoCrossStreamHoLB(t *testing.T) {
	cfg := streamCfg(stream.Config{
		RecvWindow: 32 << 10, MaxStreams: 16, SendBuffer: 1 << 20,
	})
	h := newHarness(t, 15, cfg, 20e6, ms(20), 0.02, 0)
	sizes := openAndSend(t, h, 8, 64<<10)

	// Sink that refuses to read stream 0 (its window fills and stays full).
	// Stream IDs are allocated sequentially from zero, so sid0 == 0.
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	const sid0 = uint32(0)
	// Replace the poll: accept everything, but only drain IDs != sid0.
	sink.timer.Stop()
	var poll *sim.Timer
	open := []*stream.RecvStream{}
	poll = sim.NewTimer(h.loop, func() {
		for {
			s := h.rcv.Streams().TryAccept()
			if s == nil {
				break
			}
			open = append(open, s)
			sink.got[s.ID()] = &bytes.Buffer{}
		}
		live := open[:0]
		for _, s := range open {
			if s.ID() == sid0 {
				live = append(live, s)
				continue
			}
			done := false
			for {
				n, eofd, err := s.ReadAvailable(sink.scratch)
				if err != nil {
					t.Errorf("stream %d: %v", s.ID(), err)
					done = true
					break
				}
				if n > 0 {
					sink.got[s.ID()].Write(sink.scratch[:n])
				}
				if eofd {
					sink.eof[s.ID()] = true
					done = true
					break
				}
				if n == 0 {
					break
				}
			}
			if !done {
				live = append(live, s)
			}
		}
		open = live
		poll.ResetAfter(2 * sim.Millisecond)
	})
	poll.ResetAfter(sim.Millisecond)

	h.run(30 * sim.Second)

	for sid, size := range sizes {
		if sid == sid0 {
			continue
		}
		buf := sink.got[sid]
		if buf == nil || !sink.eof[sid] {
			n := 0
			if buf != nil {
				n = buf.Len()
			}
			t.Errorf("stream %d blocked behind stalled stream %d: %d/%d bytes",
				sid, sid0, n, size)
			continue
		}
		want := make([]byte, size)
		streamPattern(sid, 0, want)
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("stream %d: payload corrupted", sid)
		}
	}
	// The stalled stream must be held to roughly its window, proving the
	// per-stream limit (not the shared connection window) did the gating.
	if sink.eof[sid0] {
		t.Errorf("undrained stream %d completed; its window never gated", sid0)
	}
}

// TestStreamMetricsFlow spot-checks that stream counters reach the
// registry through the transport wiring.
func TestStreamMetricsFlow(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := streamCfg(stream.Config{
		RecvWindow: 256 << 10, MaxStreams: 8, SendBuffer: 1 << 20,
	})
	cfg.Metrics = reg
	h := newHarness(t, 16, cfg, 50e6, ms(10), 0, 0)
	sizes := openAndSend(t, h, 3, 32<<10)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	h.run(5 * sim.Second)
	sink.verify(sizes)
	for _, name := range []string{
		"stream.opened", "stream.send_closed", "stream.frames_sent",
		"stream.bytes_sent", "stream.accepted", "stream.recv_closed",
		"stream.frames_rcvd", "stream.bytes_rcvd", "stream.window_updates",
	} {
		if v := reg.Counter(name).Value(); v == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	if got := reg.Counter("stream.bytes_rcvd").Value(); got != 3*32<<10 {
		t.Errorf("stream.bytes_rcvd = %d, want %d", got, 3*32<<10)
	}
}
