package transport

import (
	"github.com/tacktp/tack/internal/ackpolicy"
	"github.com/tacktp/tack/internal/buffer"
	"github.com/tacktp/tack/internal/core"
	"github.com/tacktp/tack/internal/fec"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/rate"
	"github.com/tacktp/tack/internal/rtt"
	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
)

// maxStreamAdverts bounds the per-stream window advertisements attached to
// one acknowledgment; dirtier streams stay pending for the next ack. Kept
// small so adverts never crowd the TACK's selective-ack block budget.
const maxStreamAdverts = 8

// Receiver is the receiving half of a connection.
type Receiver struct {
	loop *sim.Loop
	cfg  Config
	out  Output

	buf *buffer.ReceiveBuffer
	// mux demultiplexes STREAM frames into per-stream reassembly buffers
	// (nil on single-bytestream connections). The connection-level buf
	// keeps running in accounting-only mode underneath: it still derives
	// CumAck and loss state from connection sequence numbers, while the
	// payload bytes live in the mux's per-stream rings.
	mux    *stream.RecvMux
	policy ackpolicy.Policy
	loss   *core.LossTracker
	budget *core.BlockBudget
	window *core.WindowMonitor
	timing *rtt.ReceiverTiming
	deliv  *rate.DeliveryEstimator

	// PKT.SEQ → byte-range mapping so cumPktSeq can be derived and dup data
	// recognized.
	cumPktSeq uint64 // all packet numbers < this are accounted for

	// Synced state from the sender.
	rttMin   sim.Time
	rhoPrime float64 // ACK-path loss rate synced from sender

	ackSeq     uint64 // acknowledgment sequence numbers (for ρ′ at sender)
	nextPktSeq uint64

	// Handshake retransmission state.
	synSeen      bool     // a SYN has arrived (SYNACK state is valid)
	synDeparture sim.Time // SentAt of the most recent SYN, echoed on retransmits

	// Legacy-mode echo state: departure timestamp of the first packet that
	// triggered the pending (delayed) ack.
	legacyEchoDeparture sim.Time
	legacyEchoValid     bool

	lastRho      float64  // last interval loss rate
	lastLossIACK sim.Time // rate limit: one loss IACK per settle delay
	pktFloor     uint64   // sender's oldest outstanding packet number

	// Adaptive settle-delay state (§7 future work).
	settleScale float64
	lastAdaptAt sim.Time
	lastDupSeen int

	ackTimer    *sim.Timer
	settleTimer *sim.Timer
	streamTimer *sim.Timer // urgent stream-window IACK (default mux kick)

	// Forward error correction (see fec.go): the group decoder plus
	// watermarks for mirroring its monotonic counters into stats/metrics.
	fecDec         *fec.Decoder
	fecUsedSeen    uint64
	fecWastedSeen  uint64
	fecDroppedSeen uint64

	// Stats and instrumentation.
	Stats ReceiverStats

	// Telemetry (nil-safe no-ops when un-instrumented).
	tracer             *telemetry.Tracer
	mDataPackets       *telemetry.Counter
	mTACKs             *telemetry.Counter
	mIACKs             *telemetry.Counter
	mLosses            *telemetry.Counter
	mAckBytes          *telemetry.Counter
	mLossLatency       *telemetry.Histogram
	mFECRepairsRecv    *telemetry.Counter
	mFECRecovered      *telemetry.Counter
	mFECRecoveredBytes *telemetry.Counter
	mFECRepairsUsed    *telemetry.Counter
	mFECRepairsWasted  *telemetry.Counter
	mFECDropped        *telemetry.Counter
	// OWD collects per-packet one-way delays (sim clock is shared, so these
	// are true OWDs) for latency reporting.
	OWD *stats.Summary
	// BlockedSamples records receive-buffer HoLB volume at each ack
	// (Figure 5(a)'s metric).
	BlockedSamples *stats.Summary

	// OnComplete fires once when a bounded stream has fully arrived.
	OnComplete func()
	completed  bool
}

// NewReceiver builds the receiving half. Packets are emitted through out.
func NewReceiver(loop *sim.Loop, cfg Config, out Output) *Receiver {
	cfg = cfg.withDefaults()
	r := &Receiver{
		loop:           loop,
		cfg:            cfg,
		out:            out,
		buf:            buffer.NewReceiveBuffer(cfg.RecvBuf),
		loss:           core.NewLossTracker(),
		budget:         core.NewBlockBudget(cfg.Params),
		window:         core.NewWindowMonitor(cfg.RecvBuf),
		timing:         rtt.NewReceiverTiming(0),
		deliv:          rate.NewDeliveryEstimator(sim.Second),
		OWD:            stats.NewSummary(),
		BlockedSamples: stats.NewSummary(),

		tracer:       cfg.Tracer,
		mDataPackets: cfg.Metrics.Counter("rcv.data_packets"),
		mTACKs:       cfg.Metrics.Counter("rcv.tacks_sent"),
		mIACKs:       cfg.Metrics.Counter("rcv.iacks_sent"),
		mLosses:      cfg.Metrics.Counter("rcv.losses_detected"),
		mAckBytes:    cfg.Metrics.Counter("rcv.ack_bytes_sent"),
		mLossLatency: cfg.Metrics.Histogram("rcv.loss_latency_s"),

		mFECRepairsRecv:    cfg.Metrics.Counter("fec.repairs_received"),
		mFECRecovered:      cfg.Metrics.Counter("fec.recovered"),
		mFECRecoveredBytes: cfg.Metrics.Counter("fec.recovered_bytes"),
		mFECRepairsUsed:    cfg.Metrics.Counter("fec.repairs_used"),
		mFECRepairsWasted:  cfg.Metrics.Counter("fec.repairs_wasted"),
		mFECDropped:        cfg.Metrics.Counter("fec.dropped"),
	}
	r.tracer.FlowParams(loop.Now(), cfg.ConnID, cfg.Mode == ModeLegacy,
		cfg.Params.Beta, cfg.Params.L, cfg.Payload, cfg.Params.SettleFraction)
	if cfg.AckPolicy != nil {
		r.policy = cfg.AckPolicy
	} else if cfg.Mode == ModeTACK {
		p := cfg.Params
		r.policy = ackpolicy.NewTACK(p.Beta, p.L)
	} else {
		r.policy = ackpolicy.NewDelayed(40 * sim.Millisecond)
	}
	r.ackTimer = sim.NewTimer(loop, r.onAckTimer)
	r.settleTimer = sim.NewTimer(loop, r.onSettleTimer)
	if cfg.Streams != nil {
		r.mux = stream.NewRecvMux(*cfg.Streams, stream.RecvDeps{
			ConnID:  cfg.ConnID,
			Tracer:  cfg.Tracer,
			Metrics: cfg.Metrics,
		})
		// FEC recovery synthesizes STREAM frames, so the decoder only
		// exists on stream-multiplexed connections.
		r.fecDec = fec.NewDecoder(0, 0)
		r.streamTimer = sim.NewTimer(loop, r.FlushStreamWindows)
		// Default kick: route the urgent window update through the loop
		// (the kick fires under the mux lock, which FlushStreamWindows
		// re-acquires). Endpoint owners install a cross-goroutine kick via
		// Streams().SetKick.
		r.mux.SetKick(r.KickStreams)
	}
	return r
}

// Streams returns the stream demultiplexer, or nil when the connection is
// a single bytestream.
func (r *Receiver) Streams() *stream.RecvMux { return r.mux }

// KickStreams schedules an urgent stream-window IACK check without
// re-entering the stream mux: safe to call from the mux kick callback,
// which runs with the mux lock held. Loop-goroutine only.
func (r *Receiver) KickStreams() { r.streamTimer.Reset(r.loop.Now()) }

// FlushStreamWindows emits a window-update IACK when an urgent per-stream
// advertisement is pending (the application released at least half a
// stream window — the paper's §4.4 immediate-feedback case). It is the
// stream-layer analogue of maybeWindowIACK and a no-op otherwise.
func (r *Receiver) FlushStreamWindows() {
	if r.mux == nil || !r.mux.UrgentAdvert() {
		return
	}
	r.Stats.WindowIACKs++
	r.sendAck(packet.TypeIACK, packet.IACKWindow, telemetry.TrigWindow, nil)
}

// OnPathMigration resets path-derived measurement state after a validated
// path migration: the one-way-delay timing chain and the delivery-rate
// filter both describe the old path, and feeding their stale maxima into
// Eq. 3 would size the ack frequency (and the sender's model of the pipe)
// for a network that is gone. Reassembly, loss and acknowledgment state
// survive untouched — the byte stream is path-independent. rttMin is kept
// as a prior until the sender's next RTT-sync IACK overwrites it from its
// own reseeded estimator.
func (r *Receiver) OnPathMigration() {
	r.timing = rtt.NewReceiverTiming(0)
	r.deliv = rate.NewDeliveryEstimator(sim.Second)
}

// Policy returns the acknowledgment discipline in force.
func (r *Receiver) Policy() ackpolicy.Policy { return r.policy }

// Delivered returns the in-order bytes handed to the application.
func (r *Receiver) Delivered() int64 { return int64(r.buf.Delivered()) }

// Buffer exposes the reassembly buffer (experiments sample HoLB state).
func (r *Receiver) Buffer() *buffer.ReceiveBuffer { return r.buf }

// Read consumes up to n in-order bytes when Config.ManualDrain is set.
func (r *Receiver) Read(n int) int {
	got := r.buf.Read(n)
	if got > 0 {
		r.Stats.BytesDelivered += int64(got)
		r.maybeWindowIACK()
	}
	r.checkComplete()
	return got
}

// Complete reports whether a bounded stream fully arrived and drained.
func (r *Receiver) Complete() bool { return r.buf.Complete() }

// settleDelay returns the IACK reordering settle delay: the configured
// RTTmin/SettleFraction baseline, scaled up when AdaptiveSettle detects
// spurious retransmissions (duplicates imply reordering was declared loss).
func (r *Receiver) settleDelay() sim.Time {
	base := 5 * sim.Millisecond
	if r.rttMin > 0 {
		base = r.rttMin / sim.Time(r.cfg.Params.SettleFraction)
	}
	if !r.cfg.AdaptiveSettle {
		return base
	}
	if r.settleScale < 1 {
		r.settleScale = 1
	}
	return sim.Time(float64(base) * r.settleScale)
}

// adaptSettle reviews the duplicate count once per RTT-scale interval and
// steers the settle-delay scale: up 1.5x per dirty interval (clamped at 4x,
// one full RTTmin), down 10% per clean interval.
func (r *Receiver) adaptSettle(now sim.Time) {
	if !r.cfg.AdaptiveSettle {
		return
	}
	interval := r.rttMin
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	if now-r.lastAdaptAt < interval {
		return
	}
	r.lastAdaptAt = now
	dups := r.Stats.DupPackets - r.lastDupSeen
	r.lastDupSeen = r.Stats.DupPackets
	if r.settleScale < 1 {
		r.settleScale = 1
	}
	if dups > 0 {
		r.settleScale *= 1.5
		if r.settleScale > 4 {
			r.settleScale = 4
		}
	} else {
		r.settleScale *= 0.9
		if r.settleScale < 1 {
			r.settleScale = 1
		}
	}
}

// OnPacket dispatches an arriving packet to the receiver half.
func (r *Receiver) OnPacket(p *packet.Packet) {
	switch p.Type {
	case packet.TypeSYN:
		r.onSYN(p)
	case packet.TypeData:
		r.onData(p)
	case packet.TypeIACK:
		r.onSenderIACK(p)
	case packet.TypeFIN:
		r.buf.OnFIN(p.Seq)
		r.sendAck(packet.TypeFINACK, packet.IACKKind(0), telemetry.TrigFIN, nil)
	case packet.TypeRepair:
		r.onRepair(p)
	}
}

func (r *Receiver) onSYN(p *packet.Packet) {
	r.synSeen = true
	r.synDeparture = p.SentAt
	r.emitSYNACK(p.SentAt)
}

// RetransmitSYNACK re-emits the SYNACK for a connection whose handshake has
// not completed — the embryo's previous SYNACK was presumably lost. The
// echoed departure timestamp is the original SYN's, so the client's initial
// RTT sample stays honest (it measures SYN→SYNACK, inflated only by the
// genuine retransmission delay). It reports false, and emits nothing, if no
// SYN has arrived yet.
func (r *Receiver) RetransmitSYNACK() bool {
	if !r.synSeen {
		return false
	}
	r.Stats.SYNACKRetransmits++
	r.emitSYNACK(r.synDeparture)
	return true
}

// emitSYNACK sends one SYNACK echoing the given SYN departure time. On
// stream-multiplexed connections it carries the initial per-stream window
// grant (InitialWindowID sentinel) — the peer can frame nothing before it.
func (r *Receiver) emitSYNACK(echo sim.Time) {
	a := &packet.AckInfo{
		EchoDeparture: echo,
		Window:        r.buf.Window(),
		AckSeq:        r.ackSeq,
	}
	if r.mux != nil {
		a.StreamWindows = []packet.StreamWindow{
			{ID: packet.InitialWindowID, Limit: r.mux.InitialWindow()},
		}
	}
	pkt := &packet.Packet{
		Type: packet.TypeSYNACK, ConnID: r.cfg.ConnID, PktSeq: r.nextPktSeq,
		SentAt: r.loop.Now(), Ack: a,
	}
	n := int64(pkt.EncodedLen())
	r.Stats.AckBytesSent += n
	r.mAckBytes.Add(n)
	r.out(pkt)
	r.nextPktSeq++
	r.ackSeq++
}

// updateFloor advances the sender-advertised oldest-outstanding floor and
// compacts loss state below it.
func (r *Receiver) updateFloor(oldest uint64) {
	if oldest <= r.pktFloor {
		return
	}
	r.pktFloor = oldest
	r.loss.Compact(r.pktFloor)
	if r.cumPktSeq < r.pktFloor {
		r.cumPktSeq = r.pktFloor
	}
}

// onSenderIACK handles sender-originated IACKs (handshake completion and
// RTTmin / oldest-outstanding sync).
func (r *Receiver) onSenderIACK(p *packet.Packet) {
	if r.cfg.Mode == ModeTACK {
		r.updateFloor(p.AckOldestPktSeq)
	}
	switch p.IACK {
	case packet.IACKHandshake, packet.IACKRTTSync:
		if p.RTTMinNS > 0 {
			r.rttMin = sim.Time(p.RTTMinNS)
			r.policy.Update(r.deliv.MaxBps(r.loop.Now()), r.rttMin)
			// θ_filter for the delivery max filter: ~10 RTTs, floored.
			w := 10 * r.rttMin
			if w < 500*sim.Millisecond {
				w = 500 * sim.Millisecond
			}
			r.deliv.SetWindow(w)
		}
		if p.Ack != nil {
			r.rhoPrime = float64(p.Ack.LossRatePermille) / 1000
		}
	}
}

func (r *Receiver) onData(p *packet.Packet) {
	now := r.loop.Now()
	r.Stats.DataPackets++
	r.mDataPackets.Inc()
	r.OWD.Add((now - p.SentAt).Seconds())

	// Connection-sequence-space footprint: a StreamFIN frame occupies one
	// phantom byte beyond its payload (see internal/stream).
	wire := len(p.Payload)
	if p.HasStream && p.StreamFIN {
		wire++
	}
	accepted, overflow := r.buf.Offer(p.Seq, wire)
	if overflow {
		r.Stats.Overflows++
	}
	if accepted == 0 && !overflow {
		r.Stats.DupPackets++
	}
	if p.FIN {
		r.buf.OnFIN(p.Seq + uint64(len(p.Payload)))
	}
	if p.HasStream && r.mux != nil && !overflow {
		// Demultiplex the payload into its stream's reassembly ring. The
		// mux does its own duplicate/flow-control accounting; connection
		// sequence state above is untouched by a stream-level refusal.
		r.mux.OnFrame(now, p.StreamID, p.StreamOff, p.Payload, p.StreamFIN)
	}
	// Mirror FEC-tagged sources into the group decoder (may complete a
	// recovery if this group's repairs arrived first).
	r.fecOnData(p)
	r.deliv.OnDeliver(now, accepted)
	r.timing.OnData(now, p.SentAt)

	if r.cfg.Mode == ModeTACK {
		if !r.legacyEchoValid {
			// First pending packet of this ack interval — the legacy
			// timestamp echo used for the Figure 6(a) sampled-vs-advanced
			// comparison.
			r.legacyEchoDeparture = p.SentAt
			r.legacyEchoValid = true
		}
		_, gapped := r.loss.OnPacket(now, p.PktSeq)
		if gapped && !r.cfg.DisableIACK {
			r.armSettleTimer()
		}
		// Discard loss state below the sender's oldest outstanding packet
		// number: those holes can never fill (the sender repaired them
		// under fresh numbers) and must not clog the unacked lists.
		r.updateFloor(p.OldestPktSeq)
	} else if !r.legacyEchoValid {
		// Legacy timestamp echo: first packet of the pending-ack interval.
		r.legacyEchoDeparture = p.SentAt
		r.legacyEchoValid = true
	}

	if !r.cfg.ManualDrain {
		r.Stats.BytesDelivered += int64(r.buf.Read(r.buf.Readable()))
	}
	r.adaptSettle(now)

	// Ack-policy decision. FIN-bearing data is acknowledged immediately so
	// the sender learns of completion without waiting out the tail timer.
	if fire := r.policy.OnData(now, accepted); fire || p.FIN {
		trig := policyTrigger(ackpolicy.ExplainTrigger(r.policy))
		if !fire {
			trig = telemetry.TrigFIN
		}
		r.sendTACK(trig)
	} else {
		r.armAckTimer()
	}
	r.maybeWindowIACK()
	r.checkComplete()
}

func (r *Receiver) checkComplete() {
	if r.completed || !r.buf.Complete() {
		return
	}
	r.completed = true
	if r.OnComplete != nil {
		r.OnComplete()
	}
}

func (r *Receiver) armAckTimer() {
	if d := r.policy.Deadline(r.loop.Now()); d > 0 {
		r.ackTimer.Reset(d)
	}
}

func (r *Receiver) onAckTimer() {
	// After OnData declined, the policy's last trigger explains what a
	// timer-driven acknowledgment means (periodic boundary or tail delay).
	r.sendTACK(policyTrigger(ackpolicy.ExplainTrigger(r.policy)))
}

func (r *Receiver) armSettleTimer() {
	if d, ok := r.loss.NextDue(r.settleDelay()); ok {
		if !r.settleTimer.Armed() || r.settleTimer.Deadline() > d {
			r.settleTimer.Reset(d)
		}
	}
}

// onSettleTimer fires loss-event IACKs for gaps that outlived the
// reordering settle delay. Loss IACKs are rate-limited to one per settle
// delay: a single IACK already reports every due range, and TACKs repeat
// anything an IACK misses (§5.1).
func (r *Receiver) onSettleTimer() {
	now := r.loop.Now()
	if wait := r.lastLossIACK + r.settleDelay(); now < wait && r.lastLossIACK > 0 {
		r.settleTimer.Reset(wait)
		return
	}
	due := r.loss.DueLossDetails(now, r.settleDelay())
	r.Stats.LossesDetected += len(due)
	r.mLosses.Add(int64(len(due)))
	// Paper §5.1: the loss IACK reports the *most recent* loss event — the
	// freshly settled ranges — not the whole backlog. Robustness against a
	// lost IACK comes from the TACK's periodic unacked list (rich TACKs
	// repeat everything; poor TACKs process the oldest Q blocks per TACK).
	if len(due) > 0 {
		r.lastLossIACK = now
		ranges := make([]seqspace.Range, len(due))
		for i, d := range due {
			ranges[i] = d.Range
			// Detection latency: gap first observed → loss declared.
			r.tracer.LossDeclared(now, r.cfg.ConnID, d.Range.Lo, d.Range.Hi, now-d.Observed)
			r.mLossLatency.Observe((now - d.Observed).Seconds())
		}
		// A single IACK carries at most an MSS worth of blocks; large loss
		// bursts (e.g. a startup overshoot) are chunked across several
		// IACKs so no due range is silently dropped.
		budget := packet.MaxBlocks(1500) / 2
		if budget < 1 {
			budget = 1
		}
		for start := 0; start < len(ranges); start += budget {
			end := start + budget
			if end > len(ranges) {
				end = len(ranges)
			}
			r.Stats.LossIACKs++
			r.sendAck(packet.TypeIACK, packet.IACKLoss, telemetry.TrigLoss, ranges[start:end])
		}
	}
	r.armSettleTimer()
}

// maybeWindowIACK announces abrupt receive-window changes immediately.
func (r *Receiver) maybeWindowIACK() {
	if r.cfg.Mode != ModeTACK {
		return
	}
	if r.window.Check(r.buf.Window()) {
		r.Stats.WindowIACKs++
		r.sendAck(packet.TypeIACK, packet.IACKWindow, telemetry.TrigWindow, nil)
	}
}

// sendTACK emits a scheduled acknowledgment (closing the delivery-rate and
// loss-rate measurement intervals). trigger names the Eq. 3 condition that
// warranted it (telemetry only).
func (r *Receiver) sendTACK(trigger uint8) {
	r.sendAck(packet.TypeTACK, packet.IACKKind(0), trigger, nil)
}

// sendAck builds and emits an acknowledgment of the given type. lossRanges
// carries the freshly due loss ranges for a loss IACK; trigger is the
// telemetry cause discriminator.
func (r *Receiver) sendAck(typ packet.Type, kind packet.IACKKind, trigger uint8, lossRanges []seqspace.Range) {
	now := r.loop.Now()
	a := &packet.AckInfo{
		CumAck: r.buf.NextExpected(),
		Window: r.buf.Window(),
		AckSeq: r.ackSeq,
	}
	r.ackSeq++
	if r.mux != nil {
		// Connection window: the connection-level buffer runs in
		// accounting-only mode (it auto-drains), so the bytes actually
		// held live in the per-stream rings — advertise capacity minus
		// those, never more than the accounting buffer's own window.
		if held := int64(r.cfg.RecvBuf) - int64(r.mux.Buffered()); held < int64(a.Window) {
			if held < 0 {
				held = 0
			}
			a.Window = uint64(held)
		}
		// Per-stream limits that rose since last advertised, plus the
		// standing initial grant for streams the peer has yet to open
		// (repeated every ack so a lost SYNACK cannot wedge the sender).
		a.StreamWindows = append(
			r.mux.WindowAdverts(now, maxStreamAdverts),
			packet.StreamWindow{ID: packet.InitialWindowID, Limit: r.mux.InitialWindow()},
		)
	}

	if r.cfg.Mode == ModeTACK {
		largest, have := r.loss.Largest()
		if have {
			a.LargestPktSeq = largest
		}
		a.CumPktSeq = r.contiguousPktSeq()
		// §5.1: TACK only repeats missing packets already reported by
		// loss-event IACKs (the settle timer feeds that pool). With IACKs
		// disabled (Figure 5(a) ablation) nothing enters the pool and loss
		// recovery falls back to the sender's RTO, exactly as the paper's
		// "without IACK" arm degrades.
		// Delivery-rate / loss-rate sync (only TACKs close intervals, so
		// IACKs do not fragment the measurement).
		if typ == packet.TypeTACK {
			sample := r.deliv.EndInterval(now)
			if sample.Packets > 0 {
				r.tracer.RateSample(now, r.cfg.ConnID, sample.Bytes, sample.Elapsed, sample.IntervalBps())
			}
			r.lastRho = r.loss.CloseInterval()
			echo := r.timing.OnAckSent(now)
			if echo.Valid {
				a.EchoDeparture = echo.Departure
				a.AckDelay = echo.AckDelay
			}
			if r.legacyEchoValid {
				a.FirstEchoDeparture = r.legacyEchoDeparture
				r.legacyEchoValid = false
			}
		}
		a.DeliveryRate = uint64(r.deliv.MaxBps(now))
		a.LossRatePermille = uint16(r.lastRho * 1000)
		r.policy.Update(float64(a.DeliveryRate), r.rttMin)

		// Block lists.
		maxBlocks := packet.MaxBlocks(1500)
		acked := r.loss.AckedRanges()
		unacked := r.loss.ReportedMissing()
		if typ == packet.TypeIACK && kind == packet.IACKLoss {
			// Loss IACK: report the fresh ranges (plus cumulative state).
			unacked = lossRanges
		}
		ackedBudget, unackedBudget := maxBlocks/2, maxBlocks/2
		if !r.RichEnabled() && !(typ == packet.TypeIACK && kind == packet.IACKLoss) {
			// TACK-poor: the periodic TACK repeats only the Appendix A
			// budget. A loss IACK always reports every due range — that is
			// its entire purpose (§4.4).
			q := r.budget.Blocks(r.lastRho, r.rhoPrime, r.bdpBytes(now))
			if q < len(unacked) {
				unackedBudget = q
			}
			ackedBudget = 2 // cumulative prefix plus the freshest block
		}
		a.AckedBlocks, a.UnackedBlocks = core.AckBuilder{}.Build(acked, unacked, ackedBudget, unackedBudget)
		// ReportedThrough: the unacked list is authoritative below the
		// first pending (unsettled) suspect and below its own truncation
		// point — everything under it not listed as a gap was received.
		// A loss IACK carries only the newest gaps (not the full map), so
		// it must not claim completeness.
		if kind != packet.IACKLoss {
			rt := a.LargestPktSeq + 1
			if fr, ok := r.loss.SuspectFrontier(); ok && fr < rt {
				rt = fr
			}
			if len(a.UnackedBlocks) < len(unacked) {
				// Truncated: complete only below the first omitted gap.
				if cut := unacked[len(a.UnackedBlocks)].Lo; cut < rt {
					rt = cut
				}
			}
			a.ReportedThrough = rt
		}
	} else {
		// Legacy: SACK byte-range blocks above the cumulative point
		// (skipped entirely in the common in-order case).
		if r.buf.HasHoles() {
			next := r.buf.NextExpected()
			var sack []seqspace.Range
			for _, rr := range r.buf.RangesView() {
				if rr.Lo >= next {
					sack = append(sack, rr)
				}
			}
			if len(sack) > r.cfg.LegacySACKBlocks {
				// Prefer the newest (highest) blocks, like TCP SACK.
				sack = sack[len(sack)-r.cfg.LegacySACKBlocks:]
			}
			a.AckedBlocks = sack
		}
		if r.legacyEchoValid {
			a.EchoDeparture = r.legacyEchoDeparture
			r.legacyEchoValid = false
		}
	}

	r.BlockedSamples.Add(float64(r.buf.BlockedBytes()))
	if typ == packet.TypeTACK {
		r.Stats.TACKsSent++
		r.mTACKs.Inc()
	} else if typ == packet.TypeIACK {
		r.Stats.IACKsSent++
		r.mIACKs.Inc()
	}
	r.tracer.AckSent(now, r.cfg.ConnID, trigger, a.CumAck, a.LargestPktSeq,
		len(a.UnackedBlocks), r.rttMin, float64(a.DeliveryRate))
	r.policy.OnAckSent(now)
	r.window.OnAckSent(a.Window)
	r.ackTimer.Stop()
	r.armAckTimer()

	pkt := &packet.Packet{
		Type: typ, ConnID: r.cfg.ConnID, PktSeq: r.nextPktSeq, SentAt: now,
		IACK: kind, Ack: a,
	}
	// Feedback overhead accounting (ACK bytes per delivered MB): every
	// acknowledgment leaves at its wire encoding size.
	n := int64(pkt.EncodedLen())
	r.Stats.AckBytesSent += n
	r.mAckBytes.Add(n)
	r.out(pkt)
	r.nextPktSeq++
}

// RichEnabled reports whether this receiver sends rich TACKs.
func (r *Receiver) RichEnabled() bool { return r.cfg.RichTACK }

// bdpBytes estimates the flow's bandwidth-delay product for the block
// budget regime decision.
func (r *Receiver) bdpBytes(now sim.Time) float64 {
	return r.deliv.MaxBps(now) / 8 * r.rttMin.Seconds()
}

// contiguousPktSeq returns the packet number up to which everything
// arrived.
func (r *Receiver) contiguousPktSeq() uint64 {
	largest, ok := r.loss.Largest()
	if !ok {
		return 0
	}
	// Walk the received set from cumPktSeq.
	for r.cumPktSeq <= largest && r.loss.Received(r.cumPktSeq) {
		r.cumPktSeq++
	}
	return r.cumPktSeq
}

// DeliveryRateBps returns the receiver's windowed-max delivery-rate
// estimate in bit/s (0 until the first interval closes).
func (r *Receiver) DeliveryRateBps() float64 { return r.deliv.MaxBps(r.loop.Now()) }

// RTTMinSynced returns the sender-synced RTTmin (0 before the first
// RTT-sync IACK lands).
func (r *Receiver) RTTMinSynced() sim.Time { return r.rttMin }

// AckTargetHz returns Eq. 3's target acknowledgment frequency
// min(bw/(L·MSS), β/RTTmin) evaluated at the receiver's current
// delivery-rate and RTTmin state, with the same discretizations the
// live policy applies (the 1 ms α floor; byte-count threshold crossed
// only on whole-packet arrivals). 0 when neither bound is computable
// yet or in legacy mode.
func (r *Receiver) AckTargetHz() float64 {
	if r.cfg.Mode != ModeTACK {
		return 0
	}
	beta, l := r.cfg.Params.Beta, r.cfg.Params.L
	var periodicHz float64
	if r.rttMin > 0 && beta > 0 {
		alpha := r.rttMin / sim.Time(beta)
		if alpha < sim.Millisecond {
			alpha = sim.Millisecond
		}
		periodicHz = 1 / alpha.Seconds()
	}
	var byteHz float64
	if bw := r.deliv.MaxBps(r.loop.Now()); bw > 0 && l > 0 && r.cfg.Payload > 0 {
		pktsPerAck := (l*core.MSS + r.cfg.Payload - 1) / r.cfg.Payload
		byteHz = bw / 8 / float64(pktsPerAck*r.cfg.Payload)
	}
	switch {
	case periodicHz == 0:
		return byteHz
	case byteHz == 0 || periodicHz <= byteHz:
		return periodicHz
	default:
		return byteHz
	}
}

// LossTracker exposes the receiver's loss tracker (diagnostics only).
func (r *Receiver) LossTracker() *core.LossTracker { return r.loss }

// PktFloor returns the highest sender-advertised oldest-outstanding packet
// number seen (diagnostics only).
func (r *Receiver) PktFloor() uint64 { return r.pktFloor }
