package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/cc"
	"github.com/tacktp/tack/internal/core"
	"github.com/tacktp/tack/internal/sim"
)

// TestBetaSweepRobustness validates Appendix B.3 end-to-end: β values from
// 2 to 8 must all sustain high utilization on a clean large-bdp path; the
// ACK count must scale roughly linearly with β in the periodic regime.
func TestBetaSweepRobustness(t *testing.T) {
	const linkBps = 50e6
	dur := 10 * sim.Second
	run := func(beta int) (goodput float64, acks int) {
		cfg := Config{Mode: ModeTACK, Params: core.Params{Beta: beta, L: 2}}
		h := newHarness(t, 31, cfg, linkBps, ms(50), 0, 0)
		h.run(dur)
		return float64(h.rcv.Delivered()) * 8 / dur.Seconds(), h.rcv.Stats.AcksSent()
	}
	type res struct {
		beta    int
		goodput float64
		acks    int
	}
	var results []res
	for _, beta := range []int{2, 4, 8} {
		g, a := run(beta)
		results = append(results, res{beta, g, a})
		if g < 0.7*linkBps {
			t.Errorf("beta=%d: goodput %.1f Mbit/s below 70%% utilization", beta, g/1e6)
		}
	}
	// ACK counts ascend with beta (more periodic ACKs per RTT).
	if !(results[0].acks < results[1].acks && results[1].acks < results[2].acks) {
		t.Errorf("ack counts not ascending in beta: %+v", results)
	}
	// Rough linearity: beta=8 sends ~4x the acks of beta=2 (within 2x slack).
	ratio := float64(results[2].acks) / float64(results[0].acks)
	if ratio < 2 || ratio > 8 {
		t.Errorf("beta=8/beta=2 ack ratio %.1f outside [2,8]", ratio)
	}
}

// TestLSweepLowRate validates the L side of Appendix B.3: at low rate
// (byte-counting regime) the ACK count scales inversely with L while
// delivery stays intact.
func TestLSweepLowRate(t *testing.T) {
	dur := 20 * sim.Second
	run := func(l int) (acks int, delivered int64) {
		cfg := Config{Mode: ModeTACK, CC: "static", Params: core.Params{Beta: 4, L: l}}
		h := newHarness(t, 32, cfg, 10e6, ms(10), 0, 0)
		h.snd.Start()
		// 2 Mbit/s against a 10 Mbit/s link: deep in the byte-counting
		// regime (f_b = 2e6/(L·1500·8) << beta/RTTmin = 200 Hz).
		h.snd.Controller().(*cc.Static).SetRate(2e6)
		h.loop.RunUntil(dur)
		return h.rcv.Stats.AcksSent(), h.rcv.Delivered()
	}
	a2, d2 := run(2)
	a8, d8 := run(8)
	if d2 < 4<<20 || d8 < 4<<20 {
		t.Fatalf("low-rate flows under-delivered: %d / %d bytes", d2, d8)
	}
	// L=8 should send roughly a quarter of L=2's acks.
	ratio := float64(a2) / float64(a8)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("L=2/L=8 ack ratio %.1f outside [2.5,6] (a2=%d a8=%d)", ratio, a2, a8)
	}
}
