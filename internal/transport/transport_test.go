package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/ackpolicy"
	"github.com/tacktp/tack/internal/cc"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

// harness wires a Sender and Receiver over a duplex netem pipe.
type harness struct {
	loop *sim.Loop
	snd  *Sender
	rcv  *Receiver
	fwd  *netem.Link
	rev  *netem.Link
}

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

// newHarness builds a flow over rateBps / owd with loss rates (ρ, ρ′).
func newHarness(t *testing.T, seed int64, cfg Config, rateBps float64, owd sim.Time, dataLoss, ackLoss float64) *harness {
	t.Helper()
	loop := sim.NewLoop(seed)
	h := &harness{loop: loop}
	fwdCfg, revCfg := netem.Symmetric(rateBps, owd, 0, dataLoss, ackLoss)
	h.fwd = netem.NewLink(loop, fwdCfg, func(pl any, n int) { h.rcv.OnPacket(pl.(*packet.Packet)) })
	h.rev = netem.NewLink(loop, revCfg, func(pl any, n int) { h.snd.OnPacket(pl.(*packet.Packet)) })
	snd, err := NewSender(loop, cfg, func(p *packet.Packet) { h.fwd.Send(p, p.WireSize()) })
	if err != nil {
		t.Fatal(err)
	}
	h.snd = snd
	h.rcv = NewReceiver(loop, cfg, func(p *packet.Packet) { h.rev.Send(p, p.WireSize()) })
	return h
}

func (h *harness) run(d sim.Time) {
	h.snd.Start()
	h.loop.RunUntil(d)
}

func TestHandshakeEstablishes(t *testing.T) {
	h := newHarness(t, 1, Config{Mode: ModeTACK}, 100e6, ms(10), 0, 0)
	h.run(ms(100))
	if !h.snd.Established() {
		t.Fatal("handshake did not complete")
	}
}

func TestBoundedTransferCompletesTACK(t *testing.T) {
	const size = 1 << 20
	h := newHarness(t, 2, Config{Mode: ModeTACK, TransferBytes: size}, 50e6, ms(10), 0, 0)
	done := false
	h.snd.OnDone = func() { done = true }
	h.run(5 * sim.Second)
	if !done {
		t.Fatalf("transfer incomplete: acked %d/%d, delivered %d",
			h.snd.CumAcked(), size, h.rcv.Delivered())
	}
	if h.rcv.Delivered() != size {
		t.Fatalf("delivered %d, want %d", h.rcv.Delivered(), size)
	}
	if !h.rcv.Complete() {
		t.Fatal("receiver did not observe stream completion")
	}
}

func TestBoundedTransferCompletesLegacy(t *testing.T) {
	const size = 1 << 20
	h := newHarness(t, 3, Config{Mode: ModeLegacy, TransferBytes: size}, 50e6, ms(10), 0, 0)
	h.run(5 * sim.Second)
	if !h.snd.Done() {
		t.Fatalf("legacy transfer incomplete: acked %d/%d", h.snd.CumAcked(), size)
	}
}

func TestTransferSurvivesDataLossTACK(t *testing.T) {
	const size = 1 << 20
	h := newHarness(t, 4, Config{Mode: ModeTACK, TransferBytes: size}, 50e6, ms(20), 0.02, 0)
	h.run(20 * sim.Second)
	if !h.snd.Done() {
		t.Fatalf("lossy transfer incomplete: acked %d/%d, retx=%d timeouts=%d",
			h.snd.CumAcked(), size, h.snd.Stats.Retransmits, h.snd.Stats.Timeouts)
	}
	if h.snd.Stats.Retransmits == 0 {
		t.Fatal("2% loss but no retransmissions")
	}
	if h.rcv.Stats.LossIACKs == 0 {
		t.Fatal("losses occurred but no loss IACKs were sent")
	}
}

func TestTransferSurvivesDataLossLegacy(t *testing.T) {
	const size = 1 << 20
	h := newHarness(t, 5, Config{Mode: ModeLegacy, TransferBytes: size}, 50e6, ms(20), 0.02, 0)
	h.run(30 * sim.Second)
	if !h.snd.Done() {
		t.Fatalf("lossy legacy transfer incomplete: acked %d/%d, retx=%d timeouts=%d",
			h.snd.CumAcked(), size, h.snd.Stats.Retransmits, h.snd.Stats.Timeouts)
	}
}

func TestTransferSurvivesBidirectionalLoss(t *testing.T) {
	const size = 1 << 20
	h := newHarness(t, 6, Config{Mode: ModeTACK, TransferBytes: size, RichTACK: true},
		20e6, ms(50), 0.01, 0.05)
	h.run(60 * sim.Second)
	if !h.snd.Done() {
		t.Fatalf("bidirectionally lossy transfer incomplete: acked %d/%d",
			h.snd.CumAcked(), size)
	}
}

func TestTACKSendsFarFewerAcksThanLegacy(t *testing.T) {
	run := func(mode Mode, policy ackpolicy.Policy) (acks, dataPkts int) {
		cfg := Config{Mode: mode, AckPolicy: policy, TransferBytes: 8 << 20}
		h := newHarness(t, 7, cfg, 100e6, ms(40), 0, 0)
		h.run(30 * sim.Second)
		if !h.snd.Done() {
			t.Fatalf("mode %v transfer incomplete", mode)
		}
		return h.rcv.Stats.AcksSent(), h.rcv.Stats.DataPackets
	}
	tackAcks, dataPkts := run(ModeTACK, nil)
	legacyAcks, _ := run(ModeLegacy, ackpolicy.NewPerPacket())
	if tackAcks*10 > legacyAcks {
		t.Fatalf("TACK acks = %d not <10%% of legacy %d (data pkts %d)",
			tackAcks, legacyAcks, dataPkts)
	}
	// Paper Eq. 3 check: ~β/RTTmin * duration acks in the periodic regime.
	// RTTmin = 80ms → 50 Hz ceiling; the transfer runs a few seconds.
	if tackAcks > 50*30+100 {
		t.Fatalf("TACK acks = %d exceed the periodic bound", tackAcks)
	}
}

func TestReceiverComputesDeliveryRate(t *testing.T) {
	h := newHarness(t, 8, Config{Mode: ModeTACK, TransferBytes: 16 << 20, CC: "static"}, 50e6, ms(10), 0, 0)
	h.snd.Start()
	h.snd.Controller().(*cc.Static).SetRate(40e6)
	h.loop.RunUntil(2 * sim.Second)
	// A 40 Mbit/s paced flow over a 50 Mbit/s link: goodput tracks the rate.
	bps := float64(h.rcv.Delivered()) * 8 / 2
	if bps < 36e6 || bps > 42e6 {
		t.Fatalf("delivered %.1f Mbit/s, want ~40", bps/1e6)
	}
}

func TestRTTMinAccuracyTACK(t *testing.T) {
	// True RTT = 2*40 = 80ms; TACK's corrected timing should land within
	// a few percent despite 20ms-spaced ACKs.
	h := newHarness(t, 9, Config{Mode: ModeTACK, TransferBytes: 4 << 20}, 100e6, ms(40), 0, 0)
	h.run(10 * sim.Second)
	min, ok := h.snd.RTTMin()
	if !ok {
		t.Fatal("no RTT estimate")
	}
	// Serialization adds ~0.12ms per packet at 100 Mbit/s.
	if min < ms(80) || min > ms(84) {
		t.Fatalf("RTTmin = %v, want ~80ms", min)
	}
}

func TestLegacyRTTMinBiasedByDelayedAcks(t *testing.T) {
	// Legacy delayed acks (40ms timer) bias samples upward when the rate is
	// low: the echoed timestamp belongs to the first packet of the delayed
	// interval, so samples inherit the ACK delay. The unbiased handshake
	// sample ages out of the 10s min filter, after which the bias shows.
	run := func(seed int64, mode Mode) sim.Time {
		cfg := Config{Mode: mode, CC: "static", TransferBytes: 8 << 20}
		h := newHarness(t, seed, cfg, 10e6, ms(40), 0, 0)
		h.snd.Start()
		// Keep the flow slower than the link: no queueing delay.
		h.snd.Controller().(*cc.Static).SetRate(1e6)
		h.loop.RunUntil(25 * sim.Second)
		min, ok := h.snd.RTTMin()
		if !ok {
			t.Fatalf("mode %v: no RTT estimate", mode)
		}
		return min
	}
	legacyMin := run(10, ModeLegacy)
	tackMin := run(11, ModeTACK)
	if tackMin >= legacyMin {
		t.Fatalf("TACK RTTmin %v should be below legacy %v", tackMin, legacyMin)
	}
	// The paper's Figure 6(a) reports an 8-18% gap; accept anything clearly
	// above the noise floor.
	if gap := float64(legacyMin-tackMin) / float64(tackMin); gap < 0.02 {
		t.Fatalf("bias gap %.1f%% implausibly small", gap*100)
	}
}

func TestZeroWindowAndIACKRelease(t *testing.T) {
	cfg := Config{Mode: ModeTACK, ManualDrain: true, RecvBuf: 64 << 10, TransferBytes: 1 << 20}
	h := newHarness(t, 12, cfg, 100e6, ms(5), 0, 0)
	h.snd.Start()
	h.loop.RunUntil(sim.Second)
	// The receiver stalls at 64 KiB; sender must have stopped without loss.
	if h.rcv.Delivered() != 0 {
		t.Fatal("nothing should be delivered without reads")
	}
	if h.snd.Inflight() > 64<<10 {
		t.Fatalf("sender overran the advertised window: inflight=%d", h.snd.Inflight())
	}
	blockedAt := h.snd.CumAcked()
	if blockedAt == 0 {
		t.Fatal("no data transferred before stall")
	}
	// Drain the buffer: a window IACK should release the sender promptly.
	h.loop.After(0, func() { h.rcv.Read(64 << 10) })
	h.loop.RunUntil(1100 * sim.Millisecond)
	if h.snd.CumAcked() <= blockedAt {
		t.Fatalf("sender did not resume after window release (acked %d)", h.snd.CumAcked())
	}
	if h.rcv.Stats.WindowIACKs == 0 {
		t.Fatal("no window IACK was sent")
	}
}

func TestDisableIACKSlowsLossRecovery(t *testing.T) {
	// Paper Figure 5(a): a long-lived flow on a lossy data path; report the
	// head-of-line-blocked bytes at each acknowledgment. Without the
	// loss-event IACK, notification falls to the (poor) TACK's one-block
	// budget and blocked data accumulates for much longer.
	// A fixed send rate keeps the inflow identical in both arms, so the
	// blocked volume purely reflects how long holes linger.
	run := func(disable bool) float64 {
		// Pin the dup-thresh detector: the ablation isolates the IACK
		// notification path, and sender-side RACK marking would partially
		// mask the recovery gap it measures.
		cfg := Config{Mode: ModeTACK, DisableIACK: disable, CC: "static", RecvBuf: 64 << 20,
			Loss: LossDetection{Detector: DetectorDupThresh}}
		h := newHarness(t, 13, cfg, 20e6, ms(100), 0.01, 0)
		h.snd.Start()
		h.snd.Controller().(*cc.Static).SetRate(12e6)
		h.loop.RunUntil(30 * sim.Second)
		if h.rcv.Delivered() == 0 {
			t.Fatalf("flow (disable=%v) delivered nothing", disable)
		}
		return h.rcv.BlockedSamples.Percentile(90)
	}
	with := run(false)
	without := run(true)
	if with*2 > without {
		t.Fatalf("IACK did not clearly reduce HoLB blocking: with=%v without=%v", with, without)
	}
}

func TestRetransmissionAmbiguityHandledEndToEnd(t *testing.T) {
	// Heavy loss including retransmission losses: the stream must still
	// complete exactly (no corruption, no deadlock).
	const size = 256 << 10
	h := newHarness(t, 14, Config{Mode: ModeTACK, TransferBytes: size, RichTACK: true},
		10e6, ms(30), 0.10, 0.05)
	h.run(120 * sim.Second)
	if !h.snd.Done() {
		t.Fatalf("10%%-loss transfer incomplete: acked %d/%d", h.snd.CumAcked(), size)
	}
	if h.rcv.Delivered() != size {
		t.Fatalf("delivered %d, want %d", h.rcv.Delivered(), size)
	}
}

func TestPacingSmoothsBursts(t *testing.T) {
	// With pacing, packet departures should be spread; without, bursts
	// arrive back-to-back after each ack. Measure the max burst observed
	// inside a 1ms window at the link input.
	burst := func(disable bool) int {
		loop := sim.NewLoop(15)
		var h harness
		h.loop = loop
		cfg := Config{Mode: ModeTACK, TransferBytes: 4 << 20, DisablePacing: disable}
		fwdCfg, revCfg := netem.Symmetric(100e6, ms(25), 1<<20, 0, 0)
		maxBurst, cur := 0, 0
		var windowStart sim.Time
		h.fwd = netem.NewLink(loop, fwdCfg, func(pl any, n int) { h.rcv.OnPacket(pl.(*packet.Packet)) })
		h.rev = netem.NewLink(loop, revCfg, func(pl any, n int) { h.snd.OnPacket(pl.(*packet.Packet)) })
		snd, err := NewSender(loop, cfg, func(p *packet.Packet) {
			if loop.Now()-windowStart > sim.Millisecond {
				windowStart = loop.Now()
				cur = 0
			}
			cur++
			if cur > maxBurst {
				maxBurst = cur
			}
			h.fwd.Send(p, p.WireSize())
		})
		if err != nil {
			t.Fatal(err)
		}
		h.snd = snd
		h.rcv = NewReceiver(loop, cfg, func(p *packet.Packet) { h.rev.Send(p, p.WireSize()) })
		h.run(10 * sim.Second)
		return maxBurst
	}
	paced := burst(false)
	unpaced := burst(true)
	if paced >= unpaced {
		t.Fatalf("pacing did not reduce bursts: paced=%d unpaced=%d", paced, unpaced)
	}
}

func TestStatsConsistency(t *testing.T) {
	const size = 1 << 20
	h := newHarness(t, 16, Config{Mode: ModeTACK, TransferBytes: size}, 50e6, ms(10), 0.01, 0)
	h.run(30 * sim.Second)
	s, r := h.snd.Stats, h.rcv.Stats
	if !h.snd.Done() {
		t.Fatal("incomplete")
	}
	if s.DataBytes < size {
		t.Fatalf("sent bytes %d < stream size", s.DataBytes)
	}
	if got := h.rcv.Delivered(); got != size {
		t.Fatalf("delivered %d", got)
	}
	if r.BytesDelivered != size {
		t.Fatalf("Stats.BytesDelivered = %d, want %d", r.BytesDelivered, size)
	}
	if s.AcksReceived == 0 || r.AcksSent() == 0 {
		t.Fatal("no acks recorded")
	}
	if s.AcksReceived > r.AcksSent() {
		t.Fatalf("received %d acks but receiver sent only %d", s.AcksReceived, r.AcksSent())
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() (uint64, int, int) {
		h := newHarness(t, 17, Config{Mode: ModeTACK, TransferBytes: 1 << 20}, 30e6, ms(20), 0.02, 0.02)
		h.run(20 * sim.Second)
		return h.snd.CumAcked(), h.snd.Stats.Retransmits, h.rcv.Stats.AcksSent()
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestUnknownControllerErrors(t *testing.T) {
	loop := sim.NewLoop(1)
	if _, err := NewSender(loop, Config{CC: "bogus"}, func(*packet.Packet) {}); err == nil {
		t.Fatal("bogus controller should error")
	}
}
