package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/core"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero config", Config{}, true},
		{"full tack config", Config{
			Mode: ModeTACK, CC: "bbr", RichTACK: true,
			TransferBytes: 1 << 20, Payload: 1200,
		}, true},
		{"legacy mode", Config{Mode: ModeLegacy, CC: "cubic"}, true},
		{"app paced", Config{Mode: ModeTACK, AppPaced: true}, true},
		{"unknown mode", Config{Mode: Mode(42)}, false},
		{"unknown cc", Config{CC: "no-such-cc"}, false},
		{"negative payload", Config{Payload: -1}, false},
		{"payload beyond wire length", Config{Payload: 70000}, false},
		{"negative transfer", Config{TransferBytes: -1}, false},
		{"negative recvbuf", Config{RecvBuf: -1}, false},
		{"negative sack blocks", Config{LegacySACKBlocks: -1}, false},
		{"negative beta", Config{Params: core.Params{Beta: -1}}, false},
		{"negative rto", Config{MinRTO: -sim.Second}, false},
		{"min rto above max", Config{MinRTO: 2 * sim.Second, MaxRTO: sim.Second}, false},
		{"app paced with byte bound", Config{AppPaced: true, TransferBytes: 1 << 20}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

// TestNewSenderRejectsInvalidConfig checks that the constructor surfaces
// Validate failures instead of silently defaulting.
func TestNewSenderRejectsInvalidConfig(t *testing.T) {
	loop := sim.NewLoop(1)
	_, err := NewSender(loop, Config{CC: "no-such-cc"}, func(*packet.Packet) {})
	if err == nil {
		t.Fatal("NewSender accepted an unknown congestion controller")
	}
}
