package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/core"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
)

func ptr[T any](v T) *T { return &v }

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero config", Config{}, true},
		{"full tack config", Config{
			Mode: ModeTACK, CC: "bbr", RichTACK: true,
			TransferBytes: 1 << 20, Payload: 1200,
		}, true},
		{"legacy mode", Config{Mode: ModeLegacy, CC: "cubic"}, true},
		{"app paced", Config{Mode: ModeTACK, AppPaced: true}, true},
		{"unknown mode", Config{Mode: Mode(42)}, false},
		{"unknown cc", Config{CC: "no-such-cc"}, false},
		{"negative payload", Config{Payload: -1}, false},
		{"payload beyond wire length", Config{Payload: 70000}, false},
		{"negative transfer", Config{TransferBytes: -1}, false},
		{"negative recvbuf", Config{RecvBuf: -1}, false},
		{"negative sack blocks", Config{LegacySACKBlocks: -1}, false},
		{"negative beta", Config{Params: core.Params{Beta: -1}}, false},
		{"negative rto", Config{MinRTO: -sim.Second}, false},
		{"min rto above max", Config{MinRTO: 2 * sim.Second, MaxRTO: sim.Second}, false},
		{"app paced with byte bound", Config{AppPaced: true, TransferBytes: 1 << 20}, false},
		{"streams default", Config{Mode: ModeTACK, Streams: ptr(stream.Default())}, true},
		{"streams custom scheduler", Config{Mode: ModeTACK, Streams: &stream.Config{
			RecvWindow: 64 << 10, MaxStreams: 16, Scheduler: stream.SchedulerWeighted,
		}}, true},
		{"streams legacy mode", Config{Mode: ModeLegacy, Streams: ptr(stream.Default())}, false},
		{"streams with transfer bytes", Config{Mode: ModeTACK, TransferBytes: 1 << 20,
			Streams: ptr(stream.Default())}, false},
		{"streams with app pacing", Config{Mode: ModeTACK, AppPaced: true,
			Streams: ptr(stream.Default())}, false},
		{"streams with manual drain", Config{Mode: ModeTACK, ManualDrain: true,
			Streams: ptr(stream.Default())}, false},
		{"streams zero recv window", Config{Mode: ModeTACK,
			Streams: &stream.Config{RecvWindow: 0, MaxStreams: 16}}, false},
		{"streams negative recv window", Config{Mode: ModeTACK,
			Streams: &stream.Config{RecvWindow: -1, MaxStreams: 16}}, false},
		{"streams zero max streams", Config{Mode: ModeTACK,
			Streams: &stream.Config{RecvWindow: 64 << 10, MaxStreams: 0}}, false},
		{"streams negative max streams", Config{Mode: ModeTACK,
			Streams: &stream.Config{RecvWindow: 64 << 10, MaxStreams: -4}}, false},
		{"streams negative send buffer", Config{Mode: ModeTACK,
			Streams: &stream.Config{RecvWindow: 64 << 10, MaxStreams: 16, SendBuffer: -1}}, false},
		{"streams unknown scheduler", Config{Mode: ModeTACK,
			Streams: &stream.Config{RecvWindow: 64 << 10, MaxStreams: 16, Scheduler: "fifo"}}, false},
		{"loss rack default", Config{Loss: LossDetection{Detector: DetectorRACK}}, true},
		{"loss dupthresh", Config{Loss: LossDetection{Detector: DetectorDupThresh}}, true},
		{"loss custom window bounds", Config{Loss: LossDetection{
			ReorderWindowMin: sim.Millisecond, ReorderWindowInit: 5 * sim.Millisecond,
			ReorderWindowMax: 100 * sim.Millisecond}}, true},
		{"loss unknown detector", Config{Loss: LossDetection{Detector: LossDetector(7)}}, false},
		{"loss negative window min", Config{Loss: LossDetection{ReorderWindowMin: -1}}, false},
		{"loss window min above max", Config{Loss: LossDetection{
			ReorderWindowMin: 10 * sim.Millisecond, ReorderWindowMax: 5 * sim.Millisecond}}, false},
		{"loss init below min", Config{Loss: LossDetection{
			ReorderWindowMin: 5 * sim.Millisecond, ReorderWindowInit: sim.Millisecond}}, false},
		{"loss init above max", Config{Loss: LossDetection{
			ReorderWindowMax: 5 * sim.Millisecond, ReorderWindowInit: 10 * sim.Millisecond}}, false},
		{"loss probe mult below one", Config{Loss: LossDetection{ProbeTimeoutMult: 0.5}}, false},
		{"loss negative minrtt window", Config{Loss: LossDetection{MinRTTWindow: -1}}, false},
		{"loss negative dupthresh", Config{Loss: LossDetection{DupThresh: -3}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

// TestNewSenderRejectsInvalidConfig checks that the constructor surfaces
// Validate failures instead of silently defaulting.
func TestNewSenderRejectsInvalidConfig(t *testing.T) {
	loop := sim.NewLoop(1)
	_, err := NewSender(loop, Config{CC: "no-such-cc"}, func(*packet.Packet) {})
	if err == nil {
		t.Fatal("NewSender accepted an unknown congestion controller")
	}
}
