package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/fec"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
)

// newFECHarness wires a stream-multiplexed flow over a forward link with
// arbitrary impairments (burst loss, reordering, duplication) and a clean
// reverse path.
func newFECHarness(t *testing.T, seed int64, cfg Config, rateBps float64, owd sim.Time, imp netem.Impairments) *harness {
	t.Helper()
	loop := sim.NewLoop(seed)
	h := &harness{loop: loop}
	// Deep queues so the only losses are the configured impairments
	// (slow-start bursts otherwise overflow the default queue and the
	// "lossless" assertions see real drops).
	fwdCfg := netem.Config{RateBps: rateBps, Delay: owd, QueueBytes: 4 << 20, Impair: imp}
	revCfg := netem.Config{RateBps: rateBps, Delay: owd, QueueBytes: 4 << 20}
	h.fwd = netem.NewLink(loop, fwdCfg, func(pl any, n int) { h.rcv.OnPacket(pl.(*packet.Packet)) })
	h.rev = netem.NewLink(loop, revCfg, func(pl any, n int) { h.snd.OnPacket(pl.(*packet.Packet)) })
	snd, err := NewSender(loop, cfg, func(p *packet.Packet) { h.fwd.Send(p, p.WireSize()) })
	if err != nil {
		t.Fatal(err)
	}
	h.snd = snd
	h.rcv = NewReceiver(loop, cfg, func(p *packet.Packet) { h.rev.Send(p, p.WireSize()) })
	return h
}

// openFECStream opens one FEC-protected stream, writes size patterned
// bytes, and closes it.
func openFECStream(t *testing.T, h *harness, opts fec.Options, size int) map[uint32]int {
	t.Helper()
	s, err := h.snd.Streams().Open(stream.Options{FEC: opts})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	streamPattern(s.ID(), 0, data)
	if _, err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return map[uint32]int{s.ID(): size}
}

// A FEC-protected stream over Gilbert–Elliott burst loss must deliver its
// bytes intact with the decoder doing real recoveries, and every recovered
// packet must be acknowledged as received — no loss report, no
// retransmission for it.
func TestFECStreamRecoversBurstLoss(t *testing.T) {
	cfg := streamCfg(stream.Config{
		RecvWindow: 512 << 10, MaxStreams: 4, SendBuffer: 1 << 20,
	})
	imp := netem.Impairments{GE: netem.GilbertElliott{PEnterBad: 0.02, PExitBad: 0.5}}
	h := newFECHarness(t, 21, cfg, 20e6, ms(20), imp)
	sizes := openFECStream(t, h, fec.Options{
		Scheme: fec.SchemeRS, GroupLen: 8, MaxOverhead: 0.25, Adaptive: true,
	}, 512<<10)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	h.run(30 * sim.Second)
	sink.verify(sizes)
	if h.snd.Stats.FECRepairsSent == 0 {
		t.Fatal("FEC stream sent no repairs")
	}
	if h.rcv.Stats.FECRecovered == 0 {
		t.Errorf("burst loss (%d packets dropped) but no FEC recoveries",
			h.fwd.Dropped)
	}
	if h.rcv.Stats.FECRecoveredBytes == 0 {
		t.Error("recoveries counted but no recovered bytes")
	}
	// Repairs ride outside the data packet-number space: the receiver's
	// largest seen PKT.SEQ can never exceed what DATA transmissions
	// consumed.
	if h.snd.Stats.FECRepairsSent > 0 && h.snd.Stats.DataPackets == 0 {
		t.Error("repairs without data")
	}
}

// Reordering and duplication around the repairs: repairs racing ahead of
// their source packets and duplicated repairs must neither panic nor
// corrupt the stream, and duplicate repairs for complete groups count as
// wasted rather than delivering twice.
func TestFECRecoveryUnderReorderAndDuplication(t *testing.T) {
	cfg := streamCfg(stream.Config{
		RecvWindow: 512 << 10, MaxStreams: 4, SendBuffer: 1 << 20,
	})
	imp := netem.Impairments{
		GE:            netem.GilbertElliott{PEnterBad: 0.015, PExitBad: 0.5},
		DuplicateRate: 0.05,
		ReorderRate:   0.10,
		ReorderDelay:  4 * sim.Millisecond,
	}
	h := newFECHarness(t, 22, cfg, 20e6, ms(15), imp)
	sizes := openFECStream(t, h, fec.Options{
		Scheme: fec.SchemeRS, GroupLen: 10, MaxOverhead: 0.3, Adaptive: true,
	}, 512<<10)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	h.run(30 * sim.Second)
	sink.verify(sizes)
	if h.fwd.Duplicated == 0 || h.fwd.Reordered == 0 {
		t.Fatalf("impairments not exercised: %+v", *h.fwd)
	}
	total := h.rcv.Stats.FECRepairsUsed + h.rcv.Stats.FECRepairsWasted +
		h.rcv.Stats.FECDropped
	if total == 0 {
		t.Error("no repair was accounted used, wasted, or dropped")
	}
}

// On a clean link every group arrives complete, so every repair is pure
// waste: counted as such, zero recoveries, and no duplicate delivery.
func TestFECCompleteGroupWastesRepairs(t *testing.T) {
	const size = 256 << 10
	cfg := streamCfg(stream.Config{
		RecvWindow: 512 << 10, MaxStreams: 4, SendBuffer: 1 << 20,
	})
	h := newFECHarness(t, 23, cfg, 20e6, ms(10), netem.Impairments{})
	sizes := openFECStream(t, h, fec.Options{
		Scheme: fec.SchemeXOR, GroupLen: 8, MaxOverhead: 0.2,
	}, size)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	h.run(10 * sim.Second)
	sink.verify(sizes) // exact size: recovery never double-delivered
	if h.snd.Stats.FECRepairsSent == 0 {
		t.Fatal("no repairs sent")
	}
	if h.rcv.Stats.FECRecovered != 0 {
		t.Errorf("clean link but %d recoveries", h.rcv.Stats.FECRecovered)
	}
	if h.rcv.Stats.FECRepairsWasted == 0 {
		t.Error("complete groups but no repairs counted wasted")
	}
	if h.rcv.Stats.FECRepairsWasted != h.rcv.Stats.FECRepairsReceived {
		t.Errorf("wasted %d != received %d on a lossless link",
			h.rcv.Stats.FECRepairsWasted, h.rcv.Stats.FECRepairsReceived)
	}
}

// Hostile REPAIR input — bogus group ids, conflicting geometry, oversize
// payloads, zero-byte bodies — must degrade to drop counters while the
// legitimate transfer underneath completes untouched.
func TestFECHostileRepairInjection(t *testing.T) {
	cfg := streamCfg(stream.Config{
		RecvWindow: 512 << 10, MaxStreams: 4, SendBuffer: 1 << 20,
	})
	h := newFECHarness(t, 24, cfg, 20e6, ms(10), netem.Impairments{})
	sizes := openFECStream(t, h, fec.Options{
		Scheme: fec.SchemeRS, GroupLen: 8, MaxOverhead: 0.25,
	}, 128<<10)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())

	hostile := []*packet.Packet{
		// Unknown scheme.
		{Type: packet.TypeRepair, ConnID: cfg.ConnID, FECGroup: 9999,
			FECGroupLen: 8, FECRepairCount: 2, FECIndex: 0, FECScheme: 99,
			Payload: make([]byte, 64)},
		// Oversize symbol (beyond the decoder's per-symbol cap).
		{Type: packet.TypeRepair, ConnID: cfg.ConnID, FECGroup: 9998,
			FECGroupLen: 8, FECRepairCount: 1, FECIndex: 0,
			FECScheme: uint8(fec.SchemeRS), Payload: make([]byte, 1<<20)},
		// Bogus group id with plausible geometry: parks harmlessly and ages
		// out of the bounded group window.
		{Type: packet.TypeRepair, ConnID: cfg.ConnID, FECGroup: 1 << 30,
			FECGroupLen: 4, FECRepairCount: 1, FECIndex: 0,
			FECScheme: uint8(fec.SchemeXOR), Payload: make([]byte, 40)},
	}
	h.loop.At(50*sim.Millisecond, func() {
		for _, p := range hostile {
			h.rcv.OnPacket(p)
		}
		// Conflicting geometry for a live group: first repair pins it, a
		// second with different k must be dropped, not believed.
		h.rcv.OnPacket(&packet.Packet{Type: packet.TypeRepair, ConnID: cfg.ConnID,
			FECGroup: 7777, FECGroupLen: 6, FECRepairCount: 2, FECIndex: 0,
			FECScheme: uint8(fec.SchemeRS), Payload: make([]byte, 48)})
		h.rcv.OnPacket(&packet.Packet{Type: packet.TypeRepair, ConnID: cfg.ConnID,
			FECGroup: 7777, FECGroupLen: 3, FECRepairCount: 2, FECIndex: 1,
			FECScheme: uint8(fec.SchemeRS), Payload: make([]byte, 48)})
	})
	h.run(10 * sim.Second)
	sink.verify(sizes)
	if h.rcv.Stats.FECDropped == 0 {
		t.Error("hostile repairs injected but none counted dropped")
	}
	if h.rcv.Stats.FECRecovered != 0 {
		t.Errorf("hostile input produced %d phantom recoveries", h.rcv.Stats.FECRecovered)
	}
}

// Repairs must never be acknowledged or retransmitted: a lossless FEC run
// raises no loss reports and the sender's retransmit counter stays zero
// even though repair packets flow continuously.
func TestFECRepairsAreFireAndForget(t *testing.T) {
	cfg := streamCfg(stream.Config{
		RecvWindow: 512 << 10, MaxStreams: 4, SendBuffer: 1 << 20,
	})
	h := newFECHarness(t, 25, cfg, 20e6, ms(10), netem.Impairments{})
	sizes := openFECStream(t, h, fec.Options{
		Scheme: fec.SchemeRS, GroupLen: 8, MaxOverhead: 0.25,
	}, 256<<10)
	sink := newStreamSink(t, h.loop, h.rcv.Streams())
	h.run(10 * sim.Second)
	sink.verify(sizes)
	if h.snd.Stats.FECRepairsSent == 0 {
		t.Fatal("no repairs sent")
	}
	// Tail loss probes are retransmissions by mechanism but not loss
	// recovery; only the excess would indicate repairs confusing the
	// loss machinery.
	if n := h.snd.Stats.Retransmits - h.snd.Stats.TLPProbes; n != 0 {
		t.Errorf("lossless run retransmitted %d segments beyond tail probes", n)
	}
	if h.rcv.Stats.LossIACKs != 0 {
		t.Errorf("repair traffic raised %d loss IACKs", h.rcv.Stats.LossIACKs)
	}
}
