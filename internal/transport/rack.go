package transport

// RACK-TLP (RFC 8985) sender-side loss detection.
//
// TACK thins acknowledgments to f_tack (paper §3, Eq. 3), so the last
// feedback before an idle tail arrives late: duplicate-threshold detection
// then strands short streams on a full RTO. RACK replaces the packet-count
// heuristic with time — a segment is lost once a segment sent *after* it
// has been acknowledged and the segment's age exceeds the most recent RTT
// plus a reorder window — and the Tail Loss Probe retransmits the newest
// unacked segment ~2×SRTT after the last transmission, converting tail
// recovery from ~RTO into ~2×SRTT.
//
// The reorder window starts at min-RTT/4 over a sliding sample window (the
// VPP tcp_rack shape: the minimum of the last few RTTs, not a global
// minimum), clamps to [ReorderWindowMin, ReorderWindowMax], and widens
// multiplicatively whenever the send buffer observes actual reordering
// evidence — an original transmission acknowledged out of send order, or a
// loss mark disproven by a late original arrival.

import (
	"github.com/tacktp/tack/internal/rtt"
	"github.com/tacktp/tack/internal/sim"
)

// rackMaxWndMult caps the multiplicative reorder-window widening; beyond it
// the [min, max] clamp dominates anyway and further doubling only risks
// overflow.
const rackMaxWndMult = 64

// rackState holds the per-connection RACK-TLP machinery: the reorder-window
// adaptation inputs and the tail-probe bookkeeping. The sender owns the
// timers; rackState is pure state.
type rackState struct {
	cfg LossDetection

	// minRTT is the sliding-window minimum the reorder window derives from.
	minRTT *rtt.SlidingMin
	// rtt is the most recent RTT sample (RFC 8985 RACK.rtt: the RTT of the
	// most recently delivered packet).
	rtt sim.Time

	// wndMult doubles on fresh reordering evidence and never decays: once a
	// path has reordered, trading detection latency for accuracy stays the
	// right call (VPP keeps the multiplier sticky the same way).
	wndMult int64
	// seenReorders mirrors the send buffer's cumulative reorder count so
	// each event widens the window exactly once.
	seenReorders int64

	// Tail Loss Probe state: at most one probe may be outstanding, and the
	// probe is considered answered once acknowledgments reach its packet
	// number.
	tlpOut     bool
	tlpHighPkt uint64
	// lastPTO is the probe timeout most recently armed, recorded for
	// telemetry when the probe fires.
	lastPTO sim.Time
}

func newRackState(cfg LossDetection) *rackState {
	return &rackState{
		cfg:     cfg,
		minRTT:  rtt.NewSlidingMin(cfg.MinRTTWindow),
		wndMult: 1,
	}
}

// onRTTSample folds one RTT sample into the window base and RACK.rtt.
func (r *rackState) onRTTSample(sample sim.Time) {
	if sample <= 0 {
		return
	}
	r.rtt = sample
	r.minRTT.Update(sample)
}

// reorderWindow returns the current adaptive reorder window: min-RTT/4
// scaled by the widening multiplier, clamped to the configured bounds;
// before any RTT sample it is the configured initial window.
func (r *rackState) reorderWindow() sim.Time {
	min, ok := r.minRTT.Min()
	if !ok {
		return r.clampWnd(r.cfg.ReorderWindowInit)
	}
	return r.clampWnd(sim.Time(int64(min) / 4 * r.wndMult))
}

func (r *rackState) clampWnd(w sim.Time) sim.Time {
	if w < r.cfg.ReorderWindowMin {
		w = r.cfg.ReorderWindowMin
	}
	if w > r.cfg.ReorderWindowMax {
		w = r.cfg.ReorderWindowMax
	}
	return w
}

// observeReorders diffs the send buffer's cumulative reorder-event count
// against what was already seen, widens the window once per fresh event,
// and returns the number of new events (for metrics).
func (r *rackState) observeReorders(total int64) int64 {
	fresh := total - r.seenReorders
	if fresh <= 0 {
		return 0
	}
	r.seenReorders = total
	for i := int64(0); i < fresh && r.wndMult < rackMaxWndMult; i++ {
		r.wndMult *= 2
	}
	return fresh
}

// rackRTT returns the RTT term of the loss deadline: the latest sample,
// falling back to srtt (then a conservative constant) before any sample.
func (r *rackState) rackRTT(srtt sim.Time) sim.Time {
	if r.rtt > 0 {
		return r.rtt
	}
	if srtt > 0 {
		return srtt
	}
	return 100 * sim.Millisecond
}

// probeTimeout returns the TLP timer duration: ProbeTimeoutMult×SRTT plus —
// mirroring the RTO's budget — half the minimum RTT for the receiver's
// maximum acknowledgment delay under TACK thinning (one TACK interval plus
// the IACK settle delay). Before any RTT estimate it falls back to a full
// second, like the RTO.
func (r *rackState) probeTimeout(srtt, minRTT sim.Time) sim.Time {
	if srtt <= 0 {
		return sim.Second
	}
	pto := sim.Time(r.cfg.ProbeTimeoutMult * float64(srtt))
	if minRTT > 0 {
		pto += minRTT / 2
	}
	if pto < sim.Millisecond {
		pto = sim.Millisecond
	}
	return pto
}
