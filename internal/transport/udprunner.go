package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
)

// UDPRunner drives one connection half over a real UDP socket by mapping
// wall-clock time onto a private sim.Loop: the sans-IO state machines run
// unmodified, with their virtual clock pinned to time.Since(start).
//
// This is the deployment shape of the paper's user-mode stack (§5.4): the
// protocol in user space over an unreliable datagram substrate.
type UDPRunner struct {
	loop  *sim.Loop
	conn  *net.UDPConn
	start time.Time

	mu     sync.Mutex
	peer   *net.UDPAddr
	wake   chan struct{}
	closed bool

	Sender   *Sender
	Receiver *Receiver

	// Socket-level metrics (nil-safe; populated from the endpoint Config).
	mRxPackets *telemetry.Counter
	mRxDropped *telemetry.Counter
	mRxGarbage *telemetry.Counter
	mTxErrors  *telemetry.Counter
}

// NewUDPSenderRunner builds a sending endpoint bound to laddr, transmitting
// to raddr.
func NewUDPSenderRunner(cfg Config, laddr, raddr string) (*UDPRunner, error) {
	r, err := newUDPRunner(laddr, raddr)
	if err != nil {
		return nil, err
	}
	s, err := NewSender(r.loop, cfg, r.output)
	if err != nil {
		r.conn.Close()
		return nil, err
	}
	r.Sender = s
	r.bindMetrics(cfg.Metrics)
	return r, nil
}

// NewUDPReceiverRunner builds a receiving endpoint bound to laddr. The peer
// address is learned from the first arriving packet when raddr is empty.
func NewUDPReceiverRunner(cfg Config, laddr, raddr string) (*UDPRunner, error) {
	r, err := newUDPRunner(laddr, raddr)
	if err != nil {
		return nil, err
	}
	r.Receiver = NewReceiver(r.loop, cfg, r.output)
	r.bindMetrics(cfg.Metrics)
	return r, nil
}

// bindMetrics registers the runner's socket-level counters.
func (r *UDPRunner) bindMetrics(reg *telemetry.Registry) {
	r.mRxPackets = reg.Counter("udp.rx_packets")
	r.mRxDropped = reg.Counter("udp.rx_dropped")
	r.mRxGarbage = reg.Counter("udp.rx_garbage")
	r.mTxErrors = reg.Counter("udp.tx_errors")
}

func newUDPRunner(laddr, raddr string) (*UDPRunner, error) {
	la, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve local %q: %w", laddr, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", laddr, err)
	}
	r := &UDPRunner{
		loop:  sim.NewLoop(time.Now().UnixNano()),
		conn:  conn,
		start: time.Now(),
		wake:  make(chan struct{}, 1),
	}
	if raddr != "" {
		ra, err := net.ResolveUDPAddr("udp", raddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: resolve remote %q: %w", raddr, err)
		}
		r.peer = ra
	}
	return r, nil
}

// LocalAddr returns the bound UDP address.
func (r *UDPRunner) LocalAddr() *net.UDPAddr { return r.conn.LocalAddr().(*net.UDPAddr) }

// now maps wall clock onto the virtual clock.
func (r *UDPRunner) now() sim.Time { return sim.Time(time.Since(r.start)) }

// output transmits a protocol packet to the peer.
func (r *UDPRunner) output(p *packet.Packet) {
	r.mu.Lock()
	peer := r.peer
	r.mu.Unlock()
	if peer == nil {
		return // no peer learned yet
	}
	if _, err := r.conn.WriteToUDP(p.Marshal(), peer); err != nil {
		// Transient socket errors surface as loss; the protocol recovers.
		r.mTxErrors.Inc()
		return
	}
}

// Run pumps the endpoint until the stream completes or the deadline
// elapses (deadline <= 0 means no limit). It owns the socket: reads run on
// an internal goroutine, but all protocol work happens on the caller's
// goroutine, preserving the engines' single-threaded discipline.
func (r *UDPRunner) Run(deadline time.Duration) error {
	type inbound struct {
		pkt  *packet.Packet
		from *net.UDPAddr
	}
	in := make(chan inbound, 1024)
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, from, err := r.conn.ReadFromUDP(buf)
			if err != nil {
				readErr <- err
				return
			}
			pkt, err := packet.Unmarshal(buf[:n])
			if err != nil {
				r.mRxGarbage.Inc()
				continue // garbage datagram
			}
			r.mRxPackets.Inc()
			select {
			case in <- inbound{pkt: pkt, from: from}:
			default: // backpressure: drop (loss-tolerant protocol)
				r.mRxDropped.Inc()
			}
		}
	}()

	if r.Sender != nil {
		r.loop.RunUntil(r.now())
		r.Sender.Start()
	}
	var deadlineC <-chan time.Time
	if deadline > 0 {
		tm := time.NewTimer(deadline)
		defer tm.Stop()
		deadlineC = tm.C
	}
	tick := time.NewTimer(time.Millisecond)
	defer tick.Stop()
	var completeAt time.Time
	for {
		if r.Sender != nil && r.Sender.Done() {
			return nil
		}
		if r.Receiver != nil && r.Receiver.Complete() {
			// Linger so tail retransmissions can still be re-acknowledged
			// (the sender may not have seen the final TACK yet).
			if completeAt.IsZero() {
				completeAt = time.Now()
			} else if time.Since(completeAt) > time.Second {
				return nil
			}
		}
		r.loop.RunUntil(r.now())
		// Sleep until the next virtual deadline or an inbound packet.
		wait := time.Millisecond
		tick.Reset(wait)
		select {
		case m := <-in:
			r.mu.Lock()
			if r.peer == nil {
				r.peer = m.from
			}
			r.mu.Unlock()
			r.loop.RunUntil(r.now())
			r.dispatch(m.pkt)
		case err := <-readErr:
			if r.isClosed() {
				return nil
			}
			return err
		case <-tick.C:
		case <-deadlineC:
			return errors.New("transport: deadline exceeded")
		}
	}
}

func (r *UDPRunner) dispatch(p *packet.Packet) {
	if r.Sender != nil {
		r.Sender.OnPacket(p)
	}
	if r.Receiver != nil {
		r.Receiver.OnPacket(p)
	}
}

func (r *UDPRunner) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Close releases the socket.
func (r *UDPRunner) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.conn.Close()
}
