package transport

import (
	"github.com/tacktp/tack/internal/ackpolicy"
	"github.com/tacktp/tack/internal/fec"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
)

// maxFECQueue bounds the sealed-repair backlog awaiting transmission.
// Repairs are lowest-priority fill: when the pacer starves them past this
// depth the oldest are stale (their group's loss window has passed) and
// newly sealed ones push them out rather than queueing behind them.
const maxFECQueue = 32

// fecSender is the per-stream encoding state: one open group accumulator
// plus the adaptive-geometry controller fed from the ack stream.
type fecSender struct {
	enc  fec.Encoder
	ctrl *fec.Controller
}

// fecState returns (lazily creating) the encoding state for a
// FEC-protected stream.
func (s *Sender) fecState(id uint32, opts fec.Options) *fecSender {
	st := s.fecStreams[id]
	if st == nil {
		if s.fecStreams == nil {
			s.fecStreams = make(map[uint32]*fecSender)
		}
		st = &fecSender{ctrl: fec.NewController(opts)}
		s.fecStreams[id] = st
	}
	return st
}

// fecCapture folds an outgoing stream-bearing DATA packet into its
// stream's open repair group, tagging the packet with the group id and
// symbol index the receiver's decoder keys on. A full group — or the
// stream's final frame — seals immediately so repairs chase their data
// onto the wire with no added latency.
func (s *Sender) fecCapture(now sim.Time, p *packet.Packet, fr *stream.Frame) {
	if !fr.FEC.Enabled() {
		return
	}
	st := s.fecState(fr.ID, fr.FEC)
	if st.enc.Len() == 0 {
		k, r := st.ctrl.Geometry()
		s.fecGroupSeq++
		st.enc.Begin(s.fecGroupSeq, fr.FEC.Scheme, k, r)
		s.Stats.FECGroups++
		s.mFECGroups.Inc()
		s.mFECRatio.Set(float64(r) / float64(k))
	}
	p.HasFEC = true
	p.FECGroup = st.enc.Group()
	p.FECIndex = uint8(st.enc.Add(p))
	if st.enc.Full() || fr.FIN {
		s.fecSeal(now, st)
	}
}

// fecSeal closes the stream's open group and queues its repair packets.
func (s *Sender) fecSeal(now sim.Time, st *fecSender) {
	st.enc.Seal(now, s.cfg.ConnID, func(rp *packet.Packet) {
		if len(s.fecQueue) >= maxFECQueue {
			// Evict the oldest queued repair: it has been pacer-starved for
			// a full queue's worth of groups and its loss window is gone.
			copy(s.fecQueue, s.fecQueue[1:])
			s.fecQueue = s.fecQueue[:len(s.fecQueue)-1]
			s.Stats.FECQueueDrops++
			s.mFECQueueDrops.Inc()
		}
		s.fecQueue = append(s.fecQueue, rp)
	})
}

// fecIdleSeal closes every open group when the stream scheduler has run
// dry: a bursty source (one video frame per tick) would otherwise leave
// its tail group open until the next burst, delaying the repairs that
// protect exactly the packets most recently at risk.
func (s *Sender) fecIdleSeal(now sim.Time) {
	if len(s.fecStreams) == 0 {
		return
	}
	if _, ok := s.mux.NextFrameLen(1); ok {
		return // more data imminent; let the group fill
	}
	for _, st := range s.fecStreams {
		if st.enc.Len() > 0 {
			s.fecSeal(now, st)
		}
	}
}

// fecFlush transmits queued repair packets as lowest-priority fill: after
// retransmissions and new data, charged to the pacer but outside the
// congestion window (repairs are never tracked, acknowledged, or
// retransmitted, and they consume no data packet numbers — PKT.SEQ gaps
// must keep meaning data loss).
func (s *Sender) fecFlush(now sim.Time) {
	for len(s.fecQueue) > 0 {
		rp := s.fecQueue[0]
		n := len(rp.Payload)
		if !s.cfg.DisablePacing && !s.pacer.CanSend(now, n) {
			return
		}
		copy(s.fecQueue, s.fecQueue[1:])
		s.fecQueue = s.fecQueue[:len(s.fecQueue)-1]
		rp.SentAt = now
		s.pacer.OnSend(now, n)
		s.Stats.FECRepairsSent++
		s.Stats.FECRepairBytes += int64(n)
		s.mFECRepairs.Inc()
		s.mFECRepairBytes.Add(int64(n))
		s.tracer.FECRepairSent(now, s.cfg.ConnID, rp.FECGroup, int(rp.FECIndex),
			n, int(rp.FECGroupLen), float64(rp.FECRepairCount)/float64(rp.FECGroupLen))
		s.out(rp)
	}
}

// fecOnAck feeds every stream controller the acknowledgment's
// receiver-side loss observations (rate and gap run lengths).
func (s *Sender) fecOnAck(a *packet.AckInfo) {
	for _, st := range s.fecStreams {
		st.ctrl.OnAck(a.LossRatePermille, a.UnackedBlocks)
	}
}

// fecReset clears the adaptive estimators after a path migration: the new
// path's loss regime is unknown, and geometry sized to the old one would
// over- or under-protect until the EWMAs caught up.
func (s *Sender) fecReset() {
	for _, st := range s.fecStreams {
		st.ctrl.Reset()
	}
}

// --- Receiver side. ---

// onRepair feeds an arriving REPAIR packet to the group decoder and
// delivers anything it unlocks. Repairs carry no sequence or
// acknowledgment state; a malformed or hostile one degrades to a counter.
func (r *Receiver) onRepair(p *packet.Packet) {
	if r.fecDec == nil {
		return // no stream layer: nothing to recover into
	}
	r.Stats.FECRepairsReceived++
	r.mFECRepairsRecv.Inc()
	recovered := r.fecDec.AddRepair(p)
	r.fecAccount(p)
	for _, rp := range recovered {
		r.injectRecovered(rp)
	}
}

// fecOnData mirrors a FEC-tagged source packet into the decoder so later
// repairs solve over it, delivering any recovery it completes.
func (r *Receiver) fecOnData(p *packet.Packet) {
	if r.fecDec == nil || !p.HasFEC {
		return
	}
	recovered := r.fecDec.AddSource(p)
	r.fecAccount(p)
	for _, rp := range recovered {
		r.injectRecovered(rp)
	}
}

// fecAccount mirrors the decoder's monotonic counters into stats, metrics
// and traces (the decoder is transport-agnostic and only counts).
func (r *Receiver) fecAccount(p *packet.Packet) {
	d := r.fecDec
	if n := d.RepairsUsed - r.fecUsedSeen; n > 0 {
		r.fecUsedSeen = d.RepairsUsed
		r.Stats.FECRepairsUsed += int(n)
		r.mFECRepairsUsed.Add(int64(n))
	}
	if n := d.RepairsWasted - r.fecWastedSeen; n > 0 {
		r.fecWastedSeen = d.RepairsWasted
		r.Stats.FECRepairsWasted += int(n)
		r.mFECRepairsWasted.Add(int64(n))
		r.tracer.FECRepairWasted(r.loop.Now(), r.cfg.ConnID, p.FECGroup, len(p.Payload))
	}
	if n := d.Dropped - r.fecDroppedSeen; n > 0 {
		r.fecDroppedSeen = d.Dropped
		r.Stats.FECDropped += int(n)
		r.mFECDropped.Add(int64(n))
	}
}

// injectRecovered delivers a FEC-reconstructed DATA packet as if it had
// arrived on the wire: connection reassembly, stream demultiplex, and —
// critically — marking its packet number received so the block is
// acknowledged like delivered data. The sender then never sees a gap for
// it: no loss IACK, no RACK mark, no retransmission. One-way-delay and
// timing samples are skipped (the packet never crossed the path; a
// synthetic timestamp would poison the Δt correction).
func (r *Receiver) injectRecovered(p *packet.Packet) {
	now := r.loop.Now()
	r.Stats.FECRecovered++
	r.Stats.FECRecoveredBytes += int64(len(p.Payload))
	r.mFECRecovered.Inc()
	r.mFECRecoveredBytes.Add(int64(len(p.Payload)))
	r.tracer.FECRecovered(now, r.cfg.ConnID, p.FECGroup, p.PktSeq, len(p.Payload), p.StreamID)

	wire := len(p.Payload)
	if p.HasStream && p.StreamFIN {
		wire++
	}
	accepted, overflow := r.buf.Offer(p.Seq, wire)
	if overflow {
		r.Stats.Overflows++
		return
	}
	if p.FIN {
		r.buf.OnFIN(p.Seq + uint64(len(p.Payload)))
	}
	if p.HasStream && r.mux != nil {
		r.mux.OnFrame(now, p.StreamID, p.StreamOff, p.Payload, p.StreamFIN)
	}
	r.deliv.OnDeliver(now, accepted)
	if r.cfg.Mode == ModeTACK {
		r.loss.OnPacket(now, p.PktSeq)
	}
	if !r.cfg.ManualDrain {
		r.Stats.BytesDelivered += int64(r.buf.Read(r.buf.Readable()))
	}
	if fire := r.policy.OnData(now, accepted); fire {
		r.sendTACK(policyTrigger(ackpolicy.ExplainTrigger(r.policy)))
	} else {
		r.armAckTimer()
	}
	r.maybeWindowIACK()
	r.checkComplete()
}
