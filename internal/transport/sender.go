package transport

import (
	"github.com/tacktp/tack/internal/buffer"
	"github.com/tacktp/tack/internal/cc"
	"github.com/tacktp/tack/internal/core"
	"github.com/tacktp/tack/internal/pacing"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/rtt"
	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
)

// Sender is the transmitting half of a connection.
type Sender struct {
	loop *sim.Loop
	cfg  Config
	out  Output

	ctrl  cc.Controller
	pacer *pacing.Pacer
	buf   *buffer.SendBuffer

	// mux is the stream multiplexer (nil on single-bytestream
	// connections). When set, new data comes from the scheduler as STREAM
	// frames and retransmissions re-materialize payloads from retained
	// stream data.
	mux *stream.SendMux

	// Stream state.
	nextSeq     uint64 // next byte offset to transmit
	nextPktSeq  uint64 // next packet number
	appAvail    int64  // app-paced mode: bytes made available so far
	cumAcked    uint64 // highest cumulatively acked byte
	finSent     bool
	done        bool
	established bool

	// Peer flow control.
	awnd      uint64
	awndKnown bool

	// Timing.
	timing    *rtt.SenderTiming // TACK-mode corrected estimator
	legacyRTT *rtt.Sampler      // legacy-mode biased estimator
	synSentAt sim.Time

	// Handshake retransmission state.
	synRetries int  // SYNs re-sent so far
	hsFailed   bool // retry budget exhausted without a SYNACK

	// Loss bookkeeping.
	recoverPkt      uint64 // loss episode ends when acks pass this PKT.SEQ (TACK)
	recoverSeq      uint64 // ... or this byte seq (legacy)
	inRecovery      bool
	sacked          seqspace.RangeSet // legacy: sacked byte ranges
	ackLoss         *core.AckLossEstimator
	largestAckedPkt uint64

	// Legacy sender-side delivery-rate sampling.
	lastDeliveredBytes int64
	lastDeliveredAt    sim.Time
	lastRateBytes      int64
	deliveredBytes     int64

	// RTTmin / oldest-outstanding sync (TACK mode).
	syncedRTTMin     sim.Time
	lastSyncAt       sim.Time
	advertisedOldest uint64
	lastOldestSync   sim.Time

	// RACK-TLP loss detection (nil when the dup-thresh baseline is
	// selected; see Config.Loss).
	rack         *rackState
	lastDataSend sim.Time // departure time of the most recent DATA emission

	// Forward error correction (see fec.go): per-stream group encoders,
	// the connection-level group counter, and the sealed-repair queue
	// flushed as lowest-priority fill.
	fecStreams  map[uint32]*fecSender
	fecGroupSeq uint32
	fecQueue    []*packet.Packet

	// Timers.
	sendTimer  *sim.Timer
	rtoTimer   *sim.Timer
	rackTimer  *sim.Timer // pending RACK reorder-window deadline re-check
	tlpTimer   *sim.Timer // tail loss probe
	rtoBackoff int

	// Stats and payload template.
	Stats   SenderStats
	payload []byte

	// Telemetry (nil-safe no-ops when un-instrumented).
	tracer          *telemetry.Tracer
	mDataPackets    *telemetry.Counter
	mRetransmits    *telemetry.Counter
	mTimeouts       *telemetry.Counter
	mAcksReceived   *telemetry.Counter
	mAckBytes       *telemetry.Counter
	mLossEpisodes   *telemetry.Counter
	mSYNRetrans     *telemetry.Counter
	mRTT            *telemetry.Histogram
	mRackMarked     *telemetry.Counter
	mRackReorder    *telemetry.Counter
	mReoWnd         *telemetry.Histogram
	mTLPProbes      *telemetry.Counter
	mFECGroups      *telemetry.Counter
	mFECRepairs     *telemetry.Counter
	mFECRepairBytes *telemetry.Counter
	mFECQueueDrops  *telemetry.Counter
	mFECRatio       *telemetry.Gauge

	// OnDone fires once when the transfer completes (all bytes acked).
	OnDone func()
}

// NewSender builds the sending half. Packets are emitted through out.
func NewSender(loop *sim.Loop, cfg Config, out Output) (*Sender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctrl, err := newController(cfg)
	if err != nil {
		return nil, err
	}
	s := &Sender{
		loop:      loop,
		cfg:       cfg,
		out:       out,
		ctrl:      ctrl,
		pacer:     pacing.New(ctrl.PacingRate(), 10*cfg.Payload),
		buf:       buffer.NewSendBuffer(),
		timing:    rtt.NewSenderTiming(0),
		legacyRTT: rtt.NewSampler(0),
		ackLoss:   core.NewAckLossEstimator(),
		payload:   make([]byte, cfg.Payload),

		tracer:        cfg.Tracer,
		mDataPackets:  cfg.Metrics.Counter("snd.data_packets"),
		mRetransmits:  cfg.Metrics.Counter("snd.retransmits"),
		mTimeouts:     cfg.Metrics.Counter("snd.timeouts"),
		mAcksReceived: cfg.Metrics.Counter("snd.acks_received"),
		mAckBytes:     cfg.Metrics.Counter("snd.ack_bytes_received"),
		mLossEpisodes: cfg.Metrics.Counter("snd.loss_episodes"),
		mSYNRetrans:   cfg.Metrics.Counter("snd.syn_retransmits"),
		mRTT:          cfg.Metrics.Histogram("snd.rtt_s"),
		mRackMarked:   cfg.Metrics.Counter("snd.rack.marked_lost"),
		mRackReorder:  cfg.Metrics.Counter("snd.rack.reorder_events"),
		mReoWnd:       cfg.Metrics.Histogram("snd.rack.reo_wnd_s"),
		mTLPProbes:    cfg.Metrics.Counter("snd.tlp.probes"),

		mFECGroups:      cfg.Metrics.Counter("fec.groups_sent"),
		mFECRepairs:     cfg.Metrics.Counter("fec.repairs_sent"),
		mFECRepairBytes: cfg.Metrics.Counter("fec.repair_bytes_sent"),
		mFECQueueDrops:  cfg.Metrics.Counter("fec.queue_drops"),
		mFECRatio:       cfg.Metrics.Gauge("fec.redundancy_ratio"),
	}
	if cfg.Loss.Detector == DetectorRACK {
		s.rack = newRackState(cfg.Loss)
	}
	s.sendTimer = sim.NewTimer(loop, s.trySend)
	s.rtoTimer = sim.NewTimer(loop, s.onRTO)
	s.rackTimer = sim.NewTimer(loop, s.onRackTimer)
	s.tlpTimer = sim.NewTimer(loop, s.onTLP)
	if cfg.Streams != nil {
		s.mux = stream.NewSendMux(*cfg.Streams, stream.SendDeps{
			ConnID:  cfg.ConnID,
			Tracer:  cfg.Tracer,
			Metrics: cfg.Metrics,
		})
		// Default kick: schedule a send attempt through the loop instead of
		// calling trySend directly — the kick fires under the mux lock, which
		// trySend re-acquires. Owners that drive the loop from a dedicated
		// goroutine (the endpoint) must install their own cross-goroutine
		// kick via Streams().SetKick.
		s.mux.SetKick(s.KickStreams)
		s.buf.OnRelease = func(seg *buffer.Segment) {
			if !seg.HasStream {
				return
			}
			n := seg.Len
			if seg.StreamFIN {
				n-- // the phantom byte is not stream data
			}
			s.mux.OnFrameAcked(s.loop.Now(), seg.StreamID, seg.StreamOff, n, seg.StreamFIN)
		}
	}
	return s, nil
}

// Streams returns the stream multiplexer, or nil when the connection is a
// single bytestream.
func (s *Sender) Streams() *stream.SendMux { return s.mux }

// KickStreams schedules an immediate send attempt without re-entering the
// stream mux: safe to call from the mux kick callback, which runs with the
// mux lock held. Loop-goroutine only (like every timer operation).
func (s *Sender) KickStreams() { s.sendTimer.Reset(s.loop.Now()) }

// Start initiates the handshake.
func (s *Sender) Start() {
	s.synSentAt = s.loop.Now()
	s.out(&packet.Packet{Type: packet.TypeSYN, ConnID: s.cfg.ConnID, SentAt: s.loop.Now()})
	s.rtoTimer.ResetAfter(s.handshakeRTO())
}

// Done reports whether the configured transfer completed.
func (s *Sender) Done() bool { return s.done }

// Established reports whether the handshake completed.
func (s *Sender) Established() bool { return s.established }

// HandshakeFailed reports whether the SYN retry budget (MaxSYNRetries) was
// exhausted without a SYNACK. The owner is expected to tear the connection
// down with a handshake-timeout error.
func (s *Sender) HandshakeFailed() bool { return s.hsFailed }

// handshakeRTO returns the SYN retransmission timeout for the current
// retry count: HandshakeRTO doubled per retry, clamped to MaxRTO.
func (s *Sender) handshakeRTO() sim.Time {
	rto := s.cfg.HandshakeRTO
	for i := 0; i < s.synRetries; i++ {
		rto *= 2
		if rto >= s.cfg.MaxRTO {
			return s.cfg.MaxRTO
		}
	}
	return rto
}

// Controller exposes the congestion controller (diagnostics). Telemetry
// wrappers are peeled off so callers see the algorithm itself.
func (s *Sender) Controller() cc.Controller { return cc.Unwrap(s.ctrl) }

// RTTMin returns the sender's current minimum-RTT estimate.
func (s *Sender) RTTMin() (sim.Time, bool) {
	return s.est().Min(s.loop.Now())
}

// SRTT returns the smoothed RTT estimate.
func (s *Sender) SRTT() sim.Time { return s.est().Smoothed() }

func (s *Sender) est() *rtt.Estimate {
	if s.cfg.Mode == ModeTACK && !s.cfg.LegacyTiming {
		return &s.timing.Estimate
	}
	return &s.legacyRTT.Estimate
}

// SampledRTTMin returns the legacy (uncorrected) estimator's minimum — the
// "RTT sampling" series of paper Figure 6(a).
func (s *Sender) SampledRTTMin() (sim.Time, bool) {
	return s.legacyRTT.Estimate.Min(s.loop.Now())
}

// AdvancedRTTMin returns the TACK corrected estimator's minimum — the
// "advanced" series of paper Figure 6(a).
func (s *Sender) AdvancedRTTMin() (sim.Time, bool) {
	if s.timing.Samples() == 0 {
		return 0, false
	}
	return s.timing.Estimate.Min(s.loop.Now())
}

func (s *Sender) rto() sim.Time {
	rto := s.est().RTO(s.cfg.MinRTO, s.cfg.MaxRTO, sim.Second)
	if s.cfg.Mode == ModeTACK {
		// Like QUIC's PTO, the timeout budgets the receiver's maximum
		// acknowledgment delay: one TACK interval plus the IACK settle
		// delay (each RTTmin/4 at the defaults).
		if min, ok := s.est().Min(s.loop.Now()); ok {
			rto += min / 2
		}
	}
	return rto << s.rtoBackoff
}

// BaseRTO returns the current retransmission timeout before exponential
// backoff — the stable per-connection timescale the endpoint's stall
// detector multiplies (backoff would make an N×RTO threshold chase its
// own tail during the very stalls it is meant to catch).
func (s *Sender) BaseRTO() sim.Time {
	rto := s.est().RTO(s.cfg.MinRTO, s.cfg.MaxRTO, sim.Second)
	if s.cfg.Mode == ModeTACK {
		if min, ok := s.est().Min(s.loop.Now()); ok {
			rto += min / 2
		}
	}
	return rto
}

// inflight returns unacknowledged payload bytes.
func (s *Sender) inflight() int { return s.buf.Bytes() }

// streamRemaining reports whether un-transmitted stream bytes remain.
func (s *Sender) streamRemaining() bool {
	if s.mux != nil {
		_, ok := s.mux.NextFrameLen(1)
		return ok
	}
	if s.cfg.AppPaced {
		return int64(s.nextSeq) < s.appAvail
	}
	if s.cfg.TransferBytes <= 0 {
		return true // unbounded source
	}
	return int64(s.nextSeq) < s.cfg.TransferBytes
}

// AddBytes makes n more application bytes available to an app-paced sender
// (e.g. one encoded video frame) and kicks transmission.
func (s *Sender) AddBytes(n int64) {
	if !s.cfg.AppPaced || n <= 0 {
		return
	}
	s.appAvail += n
	s.trySend()
}

// SentSeq returns the next byte offset to transmit (bytes handed to the
// network so far).
func (s *Sender) SentSeq() uint64 { return s.nextSeq }

// window returns the byte budget currently available for new data.
func (s *Sender) window() int {
	w := s.ctrl.CWND() - s.inflight()
	if s.awndKnown {
		if peer := int64(s.awnd) - int64(s.inflight()); int64(w) > peer {
			w = int(peer)
		}
	}
	return w
}

// WindowFree returns the byte budget currently available for new data
// (cwnd and peer-advertised window minus flight); ≤ 0 means the sender
// is window-blocked. Introspection for snapshots and the endpoint's
// window-exhaustion detector.
func (s *Sender) WindowFree() int { return s.window() }

// CWND returns the congestion controller's current window in bytes.
func (s *Sender) CWND() int { return s.ctrl.CWND() }

// PeerWindow returns the peer's last advertised receive window and
// whether one has been seen.
func (s *Sender) PeerWindow() (uint64, bool) { return s.awnd, s.awndKnown }

// StreamBacklog reports whether un-transmitted application bytes remain
// (stream frames queued, app-paced bytes pending, or a bounded transfer
// not yet fully handed to the network).
func (s *Sender) StreamBacklog() bool { return s.streamRemaining() }

// trySend transmits retransmissions first, then new data, subject to the
// congestion window, the peer window, and pacing.
func (s *Sender) trySend() {
	if !s.established || s.done {
		return
	}
	now := s.loop.Now()
	srtt := s.est().Smoothed()
	if srtt <= 0 {
		srtt = 100 * sim.Millisecond
	}
	// 1. Pending retransmissions (loss-marked segments), one pass in
	// stream order. Segments still in their once-per-RTT cooldown keep
	// their mark and are retried when eligible.
	paceBlocked := false
	s.buf.ForEachEligibleRetransmit(now, srtt, func(seg *buffer.Segment) bool {
		if !s.cfg.DisablePacing && !s.pacer.CanSend(now, seg.Len) {
			paceBlocked = true
			return false
		}
		s.retransmit(now, seg)
		return true
	})
	// 2. New data.
	if !paceBlocked {
		for budgetGuard := 0; budgetGuard < 4096; budgetGuard++ {
			next := s.nextChunk()
			if next <= 0 || s.window() < next {
				break
			}
			if !s.cfg.DisablePacing && !s.pacer.CanSend(now, next) {
				break
			}
			s.sendNewSegment(now)
		}
	}
	// 3. FEC repairs: seal tail groups of momentarily-dry streams, then
	// flush the repair queue as lowest-priority fill (pacer-charged,
	// cwnd-exempt) so redundancy never displaces fresh data.
	if s.mux != nil && len(s.fecStreams) > 0 {
		s.fecIdleSeal(now)
		s.fecFlush(now)
	}
	s.armSendTimer()
	s.armRTO()
	s.armTLP()
}

// nextChunk returns the size of the next new-data segment to send, or 0
// when no stream bytes are available. On stream-multiplexed connections it
// is the connection-sequence-space footprint of the scheduler's next frame
// (including the FIN phantom byte), so window and pacing gates see the
// exact cost NextFrame will commit.
func (s *Sender) nextChunk() int {
	if s.mux != nil {
		n, ok := s.mux.NextFrameLen(s.cfg.Payload)
		if !ok {
			return 0
		}
		return n
	}
	if !s.streamRemaining() {
		return 0
	}
	n := s.cfg.Payload
	if s.cfg.TransferBytes > 0 {
		if rem := s.cfg.TransferBytes - int64(s.nextSeq); int64(n) > rem {
			n = int(rem)
		}
	}
	if s.cfg.AppPaced {
		if rem := s.appAvail - int64(s.nextSeq); int64(n) > rem {
			n = int(rem)
		}
	}
	return n
}

// nextRetransmit returns the first loss-marked segment eligible under the
// once-per-RTT rule.
func (s *Sender) nextRetransmit(now sim.Time) *buffer.Segment {
	srtt := s.est().Smoothed()
	if srtt <= 0 {
		srtt = 100 * sim.Millisecond
	}
	// Segments retransmitted too recently (once-per-RTT rule) keep their
	// mark and are retried when the cooldown expires.
	return s.buf.FirstEligibleRetransmit(now, srtt)
}

func (s *Sender) sendNewSegment(now sim.Time) {
	if s.mux != nil {
		s.sendStreamFrame(now)
		return
	}
	n := s.cfg.Payload
	if s.cfg.TransferBytes > 0 {
		if rem := s.cfg.TransferBytes - int64(s.nextSeq); int64(n) > rem {
			n = int(rem)
		}
	}
	if s.cfg.AppPaced {
		if rem := s.appAvail - int64(s.nextSeq); int64(n) > rem {
			n = int(rem)
		}
	}
	if n <= 0 {
		return
	}
	fin := false
	if s.cfg.TransferBytes > 0 && int64(s.nextSeq)+int64(n) >= s.cfg.TransferBytes {
		fin = true
		s.finSent = true
	}
	p := &packet.Packet{
		Type:         packet.TypeData,
		ConnID:       s.cfg.ConnID,
		PktSeq:       s.nextPktSeq,
		SentAt:       now,
		Seq:          s.nextSeq,
		Payload:      s.payload[:n],
		FIN:          fin,
		OldestPktSeq: s.buf.OldestPktSeq(s.nextPktSeq),
	}
	if p.OldestPktSeq > s.advertisedOldest {
		s.advertisedOldest = p.OldestPktSeq
	}
	seg := &buffer.Segment{Seq: s.nextSeq, Len: n, PktSeq: s.nextPktSeq, SentAt: now, FIN: fin}
	s.buf.Insert(seg)
	s.nextSeq += uint64(n)
	s.nextPktSeq++
	s.emitData(p, n)
}

// sendStreamFrame commits the stream scheduler's next frame as a DATA
// packet. The frame's connection-sequence footprint (payload plus FIN
// phantom byte) advances nextSeq, so the TACK/IACK machinery below the
// stream layer is untouched.
func (s *Sender) sendStreamFrame(now sim.Time) {
	fr, ok := s.mux.NextFrame(now, s.cfg.Payload)
	if !ok {
		return
	}
	wire := fr.WireLen()
	p := &packet.Packet{
		Type:         packet.TypeData,
		ConnID:       s.cfg.ConnID,
		PktSeq:       s.nextPktSeq,
		SentAt:       now,
		Seq:          s.nextSeq,
		Payload:      fr.Data,
		HasStream:    true,
		StreamID:     fr.ID,
		StreamOff:    fr.Off,
		StreamFIN:    fr.FIN,
		OldestPktSeq: s.buf.OldestPktSeq(s.nextPktSeq),
	}
	if p.OldestPktSeq > s.advertisedOldest {
		s.advertisedOldest = p.OldestPktSeq
	}
	// Fold the packet into its stream's repair group (no-op for
	// unprotected streams); the tag must be on the wire packet so the
	// receiver's decoder can key it.
	s.fecCapture(now, p, &fr)
	seg := &buffer.Segment{
		Seq: s.nextSeq, Len: wire, PktSeq: s.nextPktSeq, SentAt: now,
		HasStream: true, StreamID: fr.ID, StreamOff: fr.Off, StreamFIN: fr.FIN,
	}
	s.buf.Insert(seg)
	s.nextSeq += uint64(wire)
	s.nextPktSeq++
	s.emitData(p, wire)
}

func (s *Sender) retransmit(now sim.Time, seg *buffer.Segment) {
	s.buf.Retransmitted(seg, s.nextPktSeq, now)
	var payload []byte
	if seg.HasStream {
		n := seg.Len
		if seg.StreamFIN {
			n-- // the phantom byte is not stream data
		}
		if n > 0 {
			payload = s.mux.FrameData(seg.StreamID, seg.StreamOff, n)
			if payload == nil {
				// Defensive: the stream released this range through another
				// path. Zero-fill so the connection sequence space still
				// repairs; the receiver drops it as a duplicate.
				payload = make([]byte, n)
			}
		}
	} else {
		payload = s.payload[:seg.Len]
	}
	p := &packet.Packet{
		Type:         packet.TypeData,
		ConnID:       s.cfg.ConnID,
		PktSeq:       s.nextPktSeq,
		SentAt:       now,
		Seq:          seg.Seq,
		Payload:      payload,
		Retrans:      true,
		FIN:          seg.FIN,
		HasStream:    seg.HasStream,
		StreamID:     seg.StreamID,
		StreamOff:    seg.StreamOff,
		StreamFIN:    seg.StreamFIN,
		OldestPktSeq: s.buf.OldestPktSeq(s.nextPktSeq),
	}
	if p.OldestPktSeq > s.advertisedOldest {
		s.advertisedOldest = p.OldestPktSeq
	}
	s.nextPktSeq++
	s.Stats.Retransmits++
	s.emitData(p, seg.Len)
}

func (s *Sender) emitData(p *packet.Packet, n int) {
	now := s.loop.Now()
	s.lastDataSend = now
	s.pacer.OnSend(now, n)
	s.Stats.DataPackets++
	s.Stats.DataBytes += int64(n)
	s.mDataPackets.Inc()
	if p.Retrans {
		s.mRetransmits.Inc()
	}
	s.tracer.DataSent(now, s.cfg.ConnID, p.Seq, p.PktSeq, n, p.Retrans, p.OldestPktSeq)
	s.out(p)
}

func (s *Sender) armSendTimer() {
	if s.done || !s.established {
		return
	}
	now := s.loop.Now()
	srtt := s.est().Smoothed()
	if srtt <= 0 {
		srtt = 100 * sim.Millisecond
	}
	pendingRetx := s.buf.HasMarked() || len(s.fecQueue) > 0
	next := s.nextChunk()
	canNew := next > 0 && s.window() >= next
	if !pendingRetx && !canNew {
		return // ack arrival will re-arm
	}
	// Earliest moment something becomes sendable: new data now, or —
	// when only cooled-down retransmissions remain (trySend just consumed
	// every eligible one) — a poll a fraction of an RTT out.
	at := now
	if !canNew {
		at = now + srtt/8
	}
	if s.cfg.DisablePacing {
		// ACK-clocked: bursts happen on ack arrival; poll at the
		// eligibility time (at least 1 ms out to avoid hot-looping).
		if at < now+sim.Millisecond {
			at = now + sim.Millisecond
		}
		s.sendTimer.Reset(at)
		return
	}
	paceAt := s.pacer.NextSendTime(now, s.cfg.Payload)
	if paceAt > at {
		at = paceAt
	}
	if at <= now {
		// Everything is ready now yet trySend stopped: the only legal cause
		// is the once-per-RTT rule with an eligible-at-now segment already
		// consumed this call. Defer a millisecond to guarantee progress.
		at = now + sim.Millisecond
	}
	s.sendTimer.Reset(at)
}

func (s *Sender) armRTO() {
	if s.done {
		s.rtoTimer.Stop()
		return
	}
	if s.buf.Len() == 0 && s.established {
		s.rtoTimer.Stop()
		return
	}
	// Arm only when idle: pushing the deadline back on every ACK would let
	// a stream of no-progress acknowledgments suppress the timeout forever.
	if !s.rtoTimer.Armed() {
		s.rtoTimer.ResetAfter(s.rto())
	}
}

// restartRTO re-arms the timeout after forward progress.
func (s *Sender) restartRTO() {
	if s.buf.Len() > 0 {
		s.rtoTimer.ResetAfter(s.rto())
	}
}

// onRTO handles a retransmission timeout: collapse, back off, retransmit
// the oldest segment (which doubles as a zero-window probe).
func (s *Sender) onRTO() {
	now := s.loop.Now()
	if !s.established {
		// Handshake retransmission: a dedicated schedule (HandshakeRTO
		// doubling, MaxSYNRetries budget) independent of the data-path
		// RTO, since no RTT estimate exists yet and a stalled handshake
		// must fail fast rather than back off for minutes.
		if s.synRetries >= s.cfg.MaxSYNRetries {
			s.hsFailed = true
			s.tracer.RTOFired(now, s.cfg.ConnID, 0, s.synRetries)
			return
		}
		s.synRetries++
		s.Stats.SYNRetransmits++
		s.mSYNRetrans.Inc()
		s.out(&packet.Packet{Type: packet.TypeSYN, ConnID: s.cfg.ConnID, SentAt: now})
		s.rtoTimer.ResetAfter(s.handshakeRTO())
		return
	}
	if s.buf.Len() == 0 {
		return
	}
	s.Stats.Timeouts++
	s.mTimeouts.Inc()
	s.tracer.RTOFired(now, s.cfg.ConnID, s.inflight(), s.rtoBackoff)
	s.rtoBackoff++
	if s.rtoBackoff > 6 {
		s.rtoBackoff = 6
	}
	s.tracer.LossEpisode(now, s.cfg.ConnID, s.inflight(), s.inflight(), true)
	s.ctrl.OnLoss(cc.Loss{Now: now, Bytes: s.inflight(), Inflight: s.inflight(), Timeout: true})
	s.pacer.SetRate(now, s.ctrl.PacingRate())
	if s.rack != nil {
		// The timeout supersedes any pending tail probe; a new flight will
		// re-arm it.
		s.tlpTimer.Stop()
		s.rack.tlpOut = false
	}
	if seg := s.buf.Oldest(); seg != nil {
		s.tracer.LossMarked(now, s.cfg.ConnID, telemetry.TrigDetRTO,
			seg.Seq, seg.PktSeq, seg.Len, 0, now-seg.SentAt)
		s.retransmit(now, seg)
	}
	s.inRecovery = false
	s.rtoTimer.ResetAfter(s.rto())
}

// OnPathMigration resets congestion state after a validated path
// migration. Everything the controller learned — cwnd, pacing rate, RTT
// estimate, RTO backoff — describes a path that no longer exists, so the
// controller is rebuilt at its initial (slow-start) state and both RTT
// estimators are reseeded from scratch: a few RTTs of conservative ramp
// on the new path instead of blasting it at the old path's rate. The send
// buffer and all acknowledgment state are untouched — migration moves the
// path, not the byte stream.
func (s *Sender) OnPathMigration() {
	now := s.loop.Now()
	if ctrl, err := newController(s.cfg); err == nil {
		s.ctrl = ctrl
	}
	s.timing = rtt.NewSenderTiming(0)
	s.legacyRTT = rtt.NewSampler(0)
	s.rtoBackoff = 0
	s.inRecovery = false
	s.pacer = pacing.New(s.ctrl.PacingRate(), 10*s.cfg.Payload)
	if s.rack != nil {
		// The reorder window was learned on the old path; the pending tail
		// probe was timed against the old SRTT.
		s.rack = newRackState(s.cfg.Loss)
		s.tlpTimer.Stop()
		s.rackTimer.Stop()
	}
	s.fecReset() // the new path's loss regime is unknown
	if s.buf.Len() > 0 {
		s.rtoTimer.ResetAfter(s.rto())
	}
	s.sendTimer.Reset(now) // resume sending on the new path immediately
}

// OnPacket dispatches an arriving packet to the sender half.
func (s *Sender) OnPacket(p *packet.Packet) {
	switch p.Type {
	case packet.TypeSYNACK:
		// Feedback overhead accounting (ACK bytes per delivered MB):
		// every ack-bearing packet the sender absorbs counts at its wire
		// encoding size.
		n := int64(p.EncodedLen())
		s.Stats.AckBytesReceived += n
		s.mAckBytes.Add(n)
		s.onSynAck(p)
	case packet.TypeTACK, packet.TypeIACK, packet.TypeFINACK:
		n := int64(p.EncodedLen())
		s.Stats.AckBytesReceived += n
		s.mAckBytes.Add(n)
		s.onAck(p)
	}
}

func (s *Sender) onSynAck(p *packet.Packet) {
	if s.established {
		return
	}
	now := s.loop.Now()
	s.established = true
	s.rtoBackoff = 0
	initialRTT := now - s.synSentAt
	s.est().Update(now, initialRTT)
	s.pacer.SetRate(now, s.ctrl.PacingRate())
	if s.mux != nil && p.Ack != nil {
		// The SYNACK carries the peer's initial per-stream window grant
		// (InitialWindowID sentinel); nothing is frameable before it lands.
		s.mux.OnWindowAdverts(now, p.Ack.StreamWindows)
	}
	// Complete the handshake and seed the receiver's RTTmin (TACK interval
	// α needs it).
	s.sendRTTSync(packet.IACKHandshake)
	s.trySend()
}

// sendRTTSync emits an IACK syncing RTTmin and the ACK-path loss estimate
// to the receiver (§5.4).
func (s *Sender) sendRTTSync(kind packet.IACKKind) {
	now := s.loop.Now()
	min, ok := s.est().Min(now)
	if !ok {
		return
	}
	s.syncedRTTMin = min
	s.lastSyncAt = now
	s.Stats.RTTSyncsSent++
	oldest := s.buf.OldestPktSeq(s.nextPktSeq)
	s.advertisedOldest = oldest
	s.lastOldestSync = now
	s.tracer.RTTSync(now, s.cfg.ConnID, iackTrigger(kind), oldest, min, s.ackLoss.Rate())
	// Control packets do not consume data packet numbers: PKT.SEQ gaps are
	// the receiver's loss signal, so only DATA may advance the counter.
	s.out(&packet.Packet{
		Type: packet.TypeIACK, ConnID: s.cfg.ConnID, SentAt: now,
		IACK: kind, RTTMinNS: int64(min), AckOldestPktSeq: oldest,
		Ack: &packet.AckInfo{LossRatePermille: uint16(s.ackLoss.Rate() * 1000)},
	})
}

// maybeSyncOldest keeps the receiver's loss-state floor fresh when the
// data path cannot (window-starved or idle): if the oldest outstanding
// packet number advanced past what data packets last advertised, sync it
// with a state IACK (§4.4), rate-limited to a fraction of the RTT.
func (s *Sender) maybeSyncOldest() {
	now := s.loop.Now()
	oldest := s.buf.OldestPktSeq(s.nextPktSeq)
	if oldest <= s.advertisedOldest {
		return
	}
	interval := s.est().Smoothed() / 4
	if interval < 5*sim.Millisecond {
		interval = 5 * sim.Millisecond
	}
	if now-s.lastOldestSync < interval {
		return
	}
	s.advertisedOldest = oldest
	s.lastOldestSync = now
	min, _ := s.est().Min(now)
	s.tracer.RTTSync(now, s.cfg.ConnID, telemetry.TrigRTTSync, oldest, min, s.ackLoss.Rate())
	s.out(&packet.Packet{
		Type: packet.TypeIACK, ConnID: s.cfg.ConnID, SentAt: now,
		IACK: packet.IACKRTTSync, RTTMinNS: int64(min), AckOldestPktSeq: oldest,
		Ack: &packet.AckInfo{LossRatePermille: uint16(s.ackLoss.Rate() * 1000)},
	})
}

// maybeSyncRTTMin re-syncs when the estimate moved by >10% (rate-limited
// to one per second).
func (s *Sender) maybeSyncRTTMin() {
	if s.cfg.Mode != ModeTACK {
		return
	}
	now := s.loop.Now()
	min, ok := s.est().Min(now)
	if !ok || now-s.lastSyncAt < sim.Second {
		return
	}
	if s.syncedRTTMin > 0 {
		diff := float64(min-s.syncedRTTMin) / float64(s.syncedRTTMin)
		if diff < 0 {
			diff = -diff
		}
		if diff < 0.1 {
			return
		}
	}
	s.sendRTTSync(packet.IACKRTTSync)
}

// onAck is the heart of the sender: cumulative/selective release, loss
// marking, timing, and congestion-controller feedback.
func (s *Sender) onAck(p *packet.Packet) {
	now := s.loop.Now()
	a := p.Ack
	if a == nil {
		return
	}
	if !s.established {
		// An ack implies the receiver saw our handshake.
		s.established = true
		s.pacer.SetRate(now, s.ctrl.PacingRate())
	}
	s.Stats.AcksReceived++
	if p.Type == packet.TypeIACK {
		s.Stats.IACKsReceived++
	}
	s.ackLoss.OnAck(a.AckSeq)

	prevInflight := s.inflight()
	_ = prevInflight

	// --- Release acknowledged data. ---
	var ackFloor sim.Time
	if s.rack != nil {
		if m, ok := s.rack.minRTT.Min(); ok {
			ackFloor = m
		}
	}
	s.buf.BeginRateSample(now, ackFloor)
	if a.CumAck > s.cumAcked {
		s.cumAcked = a.CumAck
		s.rtoBackoff = 0
		s.restartRTO()
	} else if s.cfg.Mode == ModeTACK && a.LargestPktSeq > s.largestAckedPkt {
		// QUIC-style: any acknowledgment of new data proves the pipe is
		// alive; hole repair is the loss-report machinery's job, so the
		// timeout only backstops total silence.
		s.rtoBackoff = 0
		s.restartRTO()
	}
	s.buf.AckBytes(a.CumAck)
	if s.cfg.Mode == ModeTACK {
		s.buf.AckPktRanges(a.AckedBlocks)
		// Everything below the cumulative packet number was received, even
		// if its selective-ack block was crowded out of the TACK's budget;
		// releasing it keeps the oldest-outstanding floor advancing (which
		// in turn lets the receiver drop dead holes).
		s.buf.ReleasePktBelow(a.CumPktSeq)
		// Below ReportedThrough the unacked list is complete, so the
		// complement of the listed gaps was received: release it too.
		if a.ReportedThrough > 0 {
			cur := a.CumPktSeq
			var recvd []seqspace.Range
			for _, gap := range a.UnackedBlocks {
				if gap.Lo >= a.ReportedThrough {
					break
				}
				if gap.Lo > cur {
					recvd = append(recvd, seqspace.Range{Lo: cur, Hi: gap.Lo})
				}
				if gap.Hi > cur {
					cur = gap.Hi
				}
			}
			if cur < a.ReportedThrough {
				recvd = append(recvd, seqspace.Range{Lo: cur, Hi: a.ReportedThrough})
			}
			if len(recvd) > 0 {
				s.buf.AckPktRanges(recvd)
			}
		}
		if a.LargestPktSeq > s.largestAckedPkt {
			s.largestAckedPkt = a.LargestPktSeq
		}
	} else {
		// Legacy: acked blocks are byte ranges (SACK).
		for _, r := range a.AckedBlocks {
			s.sacked.AddRange(r)
		}
		s.sacked.RemoveBelow(a.CumAck)
		s.releaseSackedSegments()
	}
	ackedBytes := s.buf.ReleasedBytes() - s.lastDeliveredBytes
	if ackedBytes < 0 {
		ackedBytes = 0
	}
	s.deliveredBytes = s.buf.ReleasedBytes()

	// --- Timing. ---
	var rttSample sim.Time
	if s.cfg.Mode == ModeTACK {
		if a.EchoDeparture > 0 {
			e := rtt.Echo{Departure: a.EchoDeparture, AckDelay: a.AckDelay, Valid: true}
			before := s.timing.Samples()
			s.timing.OnAck(now, e)
			if s.timing.Samples() > before {
				rttSample = now - a.EchoDeparture - a.AckDelay
			}
		}
		if a.FirstEchoDeparture > 0 {
			// The legacy estimator runs in parallel, echoing the first
			// pending packet with no Δt correction — exactly what legacy
			// RTT sampling under delayed ACKs measures (Figure 6). It only
			// drives control when LegacyTiming is set.
			s.legacyRTT.OnAck(now, a.FirstEchoDeparture)
			if s.cfg.LegacyTiming {
				rttSample = now - a.FirstEchoDeparture
			}
		}
	} else if a.EchoDeparture > 0 {
		// Legacy timestamp echo: no ACK-delay correction.
		s.legacyRTT.OnAck(now, a.EchoDeparture)
		rttSample = now - a.EchoDeparture
	}

	// --- Loss handling. ---
	if s.rack != nil {
		// RACK deadlines bound a segment's age at ack *arrival*, so its RTT
		// base keeps the receiver's ack hold (no Δt correction): under TACK
		// thinning an ack legitimately arrives a full TACK interval after
		// the corrected RTT, and a corrected base would age every segment
		// sitting behind a held acknowledgment into a spurious loss mark.
		rackSample := rttSample
		if s.cfg.Mode == ModeTACK && a.EchoDeparture > 0 {
			rackSample = now - a.EchoDeparture
		}
		if rackSample > 0 {
			s.rack.onRTTSample(rackSample)
		}
		if s.rack.tlpOut && (s.largestAckedPkt >= s.rack.tlpHighPkt ||
			s.buf.ByPktSeq(s.rack.tlpHighPkt) == nil) {
			// The probe (or anything beyond it) was acknowledged, or its
			// segment was released/superseded: the probe is answered.
			s.rack.tlpOut = false
		}
	}
	lostBytes := s.handleLossReports(now, a, p.IACK == packet.IACKLoss)
	if s.rack != nil {
		lostBytes += s.rackDetect(now)
	}

	// --- Delivery rate. ---
	var deliveryRate float64
	if s.cfg.Mode == ModeTACK {
		deliveryRate = float64(a.DeliveryRate)
	} else {
		deliveryRate = s.legacyDeliveryRate(now)
	}

	s.mAcksReceived.Inc()
	if rttSample > 0 {
		s.mRTT.Observe(rttSample.Seconds())
	}
	s.tracer.AckReceived(now, s.cfg.ConnID, iackTrigger(p.IACK), a.CumAck,
		a.LargestPktSeq, ackedBytes, rttSample, deliveryRate)

	// --- Feed the controller. ---
	min, _ := s.est().Min(now)
	s.ctrl.OnAck(cc.Ack{
		Now:          now,
		Bytes:        int(ackedBytes),
		RTT:          rttSample,
		SRTT:         s.est().Smoothed(),
		MinRTT:       min,
		DeliveryRate: deliveryRate,
		Inflight:     s.inflight(),
		AppLimited:   !s.streamRemaining() && s.buf.Len() == 0,
	})
	s.enterLossEpisode(now, lostBytes)
	if s.inRecovery {
		if (s.cfg.Mode == ModeTACK && s.largestAckedPkt >= s.recoverPkt) ||
			(s.cfg.Mode == ModeLegacy && a.CumAck >= s.recoverSeq) {
			s.inRecovery = false
		}
	}
	s.pacer.SetRate(now, s.ctrl.PacingRate())

	// --- Adaptive FEC redundancy. ---
	if len(s.fecStreams) > 0 {
		s.fecOnAck(a)
	}

	// --- Flow control. ---
	s.awnd = a.Window
	s.awndKnown = true
	if s.mux != nil && len(a.StreamWindows) > 0 {
		// Raised per-stream limits may unblock scheduler entries; the
		// trySend below picks them up.
		s.mux.OnWindowAdverts(now, a.StreamWindows)
	}

	s.maybeSyncRTTMin()
	if s.cfg.Mode == ModeTACK {
		s.maybeSyncOldest()
	}

	// --- Completion. ---
	s.Stats.BytesAcked = int64(s.cumAcked)
	if s.cfg.TransferBytes > 0 && !s.done &&
		s.finSent && int64(s.cumAcked) >= s.cfg.TransferBytes {
		s.done = true
		s.rtoTimer.Stop()
		s.sendTimer.Stop()
		s.rackTimer.Stop()
		s.tlpTimer.Stop()
		if s.OnDone != nil {
			s.OnDone()
		}
		return
	}
	s.lastDeliveredBytes = s.buf.ReleasedBytes()
	s.trySend()
}

// enterLossEpisode opens a recovery episode and cuts the controller once
// per flight of newly marked bytes (no-op while already in recovery).
func (s *Sender) enterLossEpisode(now sim.Time, lostBytes int) {
	if lostBytes <= 0 || s.inRecovery {
		return
	}
	s.inRecovery = true
	s.recoverPkt = s.nextPktSeq
	s.recoverSeq = s.nextSeq
	s.Stats.LossEpisodes++
	s.mLossEpisodes.Inc()
	s.tracer.LossEpisode(now, s.cfg.ConnID, lostBytes, s.inflight(), false)
	s.ctrl.OnLoss(cc.Loss{Now: now, Bytes: lostBytes, Inflight: s.inflight()})
}

// rackDetect runs the RFC 8985 scan: every unacked segment sent at or
// before the most recently delivered transmission whose age exceeds
// RACK.rtt plus the adaptive reorder window is marked lost. Returns newly
// marked bytes; when a candidate's deadline is still in the future the
// re-check timer is armed at that deadline.
func (s *Sender) rackDetect(now sim.Time) int {
	if ev := s.rack.observeReorders(s.buf.ReorderEvents()); ev > 0 {
		s.mRackReorder.Add(ev)
	}
	cutoff, cutoffPkt, ok := s.buf.RackState()
	if !ok {
		return 0
	}
	reoWnd := s.rack.reorderWindow()
	deadline := s.rack.rackRTT(s.est().Smoothed()) + reoWnd
	if s.cfg.Mode == ModeTACK {
		// TACK thinning can hold an acknowledgment up to one TACK interval
		// (~RTT/4) beyond the RTT the latest sample happened to observe;
		// budget for the worst case like the probe timeout does, or every
		// segment behind a fully-held ack ages into a spurious mark.
		if m, ok := s.rack.minRTT.Min(); ok {
			deadline += m / 4
		}
	}
	lost := 0
	sentAt, pending := s.buf.ScanRackLosses(cutoff, cutoffPkt, func(seg *buffer.Segment) bool {
		if now-seg.SentAt < deadline {
			return false
		}
		s.buf.MarkLoss(seg)
		lost += seg.Len
		s.Stats.RackMarked++
		s.mRackMarked.Inc()
		s.mReoWnd.Observe(reoWnd.Seconds())
		s.tracer.LossMarked(now, s.cfg.ConnID, telemetry.TrigDetRACK,
			seg.Seq, seg.PktSeq, seg.Len, reoWnd, now-seg.SentAt)
		return true
	})
	if pending {
		s.rackTimer.Reset(sentAt + deadline)
	} else {
		s.rackTimer.Stop()
	}
	return lost
}

// onRackTimer re-runs detection when a previously-too-young candidate's
// reorder-window deadline arrives without an acknowledgment.
func (s *Sender) onRackTimer() {
	if s.rack == nil || s.done || !s.established {
		return
	}
	now := s.loop.Now()
	if lost := s.rackDetect(now); lost > 0 {
		s.enterLossEpisode(now, lost)
		s.pacer.SetRate(now, s.ctrl.PacingRate())
		s.trySend()
	}
}

// armTLP schedules the tail loss probe at ProbeTimeoutMult×SRTT after the
// last transmission. The timer stays disarmed while nothing is in flight,
// while marked segments already drive recovery, or while a probe is
// outstanding (one-probe rule).
func (s *Sender) armTLP() {
	if s.rack == nil || s.cfg.Loss.DisableTLP {
		return
	}
	if s.done || !s.established || s.buf.Len() == 0 || s.buf.HasMarked() || s.rack.tlpOut {
		s.tlpTimer.Stop()
		return
	}
	now := s.loop.Now()
	min, _ := s.est().Min(now)
	pto := s.rack.probeTimeout(s.est().Smoothed(), min)
	s.rack.lastPTO = pto
	at := s.lastDataSend + pto
	if at <= now {
		at = now + sim.Millisecond
	}
	s.tlpTimer.Reset(at)
}

// onTLP fires the tail loss probe: retransmit the newest unacked segment
// (with a fresh packet number, so in TACK mode the receiver sees a PKT.SEQ
// beyond the potentially-lost tail and raises a loss report), then restart
// the RTO from the probe.
func (s *Sender) onTLP() {
	if s.rack == nil || s.done || !s.established || s.rack.tlpOut || s.buf.HasMarked() {
		return
	}
	now := s.loop.Now()
	seg := s.buf.Newest()
	if seg == nil {
		return // zero inflight: nothing to probe
	}
	s.retransmit(now, seg)
	s.rack.tlpOut = true
	s.rack.tlpHighPkt = seg.PktSeq // the fresh number retransmit assigned
	s.Stats.TLPProbes++
	s.mTLPProbes.Inc()
	s.tracer.TLPProbe(now, s.cfg.ConnID, seg.Seq, seg.PktSeq, seg.Len, s.rack.lastPTO)
	// RFC 8985 §7.3: the probe restarts the timeout so the RTO measures
	// from the most recent transmission.
	s.rtoTimer.ResetAfter(s.rto())
}

// handleLossReports marks segments lost per mode rules and returns the
// newly marked byte count.
func (s *Sender) handleLossReports(now sim.Time, a *packet.AckInfo, lossIACK bool) int {
	lost := 0
	if s.cfg.Mode == ModeTACK {
		var ranges []seqspace.Range
		ranges = append(ranges, a.UnackedBlocks...)
		if lossIACK && len(ranges) == 0 && a.LargestPktSeq > a.CumPktSeq {
			ranges = append(ranges, seqspace.Range{Lo: a.CumPktSeq, Hi: a.LargestPktSeq})
		}
		for _, seg := range s.buf.MarkLossByPktRanges(ranges) {
			lost += seg.Len
			s.tracer.LossMarked(now, s.cfg.ConnID, telemetry.TrigDetDupThresh,
				seg.Seq, seg.PktSeq, seg.Len, 0, now-seg.SentAt)
		}
		return lost
	}
	if s.cfg.Loss.Detector == DetectorRACK {
		// Legacy mode with RACK selected: the time-based scan replaces the
		// FACK byte threshold (sacked ranges still release segments above).
		return 0
	}
	// Legacy FACK-style: a segment is lost when >= DupThresh*MSS bytes
	// above it have been sacked. One pass over the sacked region with
	// precomputed suffix sums keeps per-ack cost
	// O(segments below maxSacked + ranges).
	maxSacked, ok := s.sacked.Max()
	if !ok {
		return 0
	}
	threshold := s.cfg.Loss.DupThresh * s.cfg.Payload
	ranges := s.sacked.View() // read-only within this call
	// suffix[i] = total sacked bytes in ranges[i:].
	suffix := make([]int, len(ranges)+1)
	for i := len(ranges) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + int(ranges[i].Len())
	}
	sackedAbove := func(end uint64) int {
		lo, hi := 0, len(ranges)
		for lo < hi {
			mid := (lo + hi) / 2
			if ranges[mid].Lo >= end {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		above := suffix[lo]
		// Partial overlap of the straddling range, if any.
		if lo > 0 && ranges[lo-1].Hi > end {
			above += int(ranges[lo-1].Hi - end)
		}
		return above
	}
	var marked []*buffer.Segment
	s.buf.Walk(func(seg *buffer.Segment) bool {
		if seg.Seq > maxSacked {
			return false // beyond the sacked region; nothing to learn
		}
		if seg.LossMarked {
			return true
		}
		if s.sacked.ContainsRange(seg.Seq, seg.End()) {
			return true // fully sacked; released separately
		}
		if sackedAbove(seg.End()) >= threshold {
			s.buf.MarkLoss(seg)
			marked = append(marked, seg)
		}
		return true
	})
	for _, seg := range marked {
		lost += seg.Len
		s.tracer.LossMarked(now, s.cfg.ConnID, telemetry.TrigDetDupThresh,
			seg.Seq, seg.PktSeq, seg.Len, 0, now-seg.SentAt)
	}
	return lost
}

// releaseSackedSegments drops fully sacked segments from the send buffer
// (legacy mode keeps byte-space state only).
func (s *Sender) releaseSackedSegments() {
	var done []seqspace.Range
	s.buf.Walk(func(seg *buffer.Segment) bool {
		if maxS, ok := s.sacked.Max(); !ok || seg.Seq > maxS {
			return false
		}
		if s.sacked.ContainsRange(seg.Seq, seg.End()) {
			done = append(done, seqspace.Range{Lo: seg.PktSeq, Hi: seg.PktSeq + 1})
		}
		return true
	})
	if len(done) > 0 {
		s.buf.AckPktRanges(done)
	}
}

// legacyDeliveryRate computes sender-side delivery-rate samples by
// measuring released (cumulatively or selectively acknowledged) bytes over
// windows of at least a quarter RTT. Selective releases spread hole-repair
// credit over time, and the srtt/4 floor averages out ack bursts, so the
// samples cannot sustain an overestimate of the true drain rate.
func (s *Sender) legacyDeliveryRate(now sim.Time) float64 {
	if s.lastDeliveredAt == 0 {
		s.lastDeliveredAt = now
		s.lastRateBytes = s.buf.ReleasedBytes()
		return 0
	}
	minElapsed := s.est().Smoothed() / 2
	if minElapsed < 20*sim.Millisecond {
		minElapsed = 20 * sim.Millisecond
	}
	elapsed := now - s.lastDeliveredAt
	if elapsed < minElapsed {
		return 0
	}
	bytes := s.buf.ReleasedBytes() - s.lastRateBytes
	s.lastDeliveredAt = now
	s.lastRateBytes = s.buf.ReleasedBytes()
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) * 8 / elapsed.Seconds()
}

// Kick schedules an immediate send attempt (used by harnesses after
// construction or when the source becomes ready).
func (s *Sender) Kick() { s.trySend() }

// Rate-limited observability helpers used by experiments.

// Inflight returns unacknowledged bytes.
func (s *Sender) Inflight() int { return s.inflight() }

// CumAcked returns the cumulative acknowledged byte offset.
func (s *Sender) CumAcked() uint64 { return s.cumAcked }

// AckPathLossRate returns the sender's ρ′ estimate.
func (s *Sender) AckPathLossRate() float64 { return s.ackLoss.Rate() }

// BufSegment exposes the send-buffer segment starting at byte seq
// (diagnostics and experiments only).
func (s *Sender) BufSegment(seq uint64) *buffer.Segment { return s.buf.BySeq(seq) }

// MarkedCount returns how many segments are currently loss-marked.
func (s *Sender) MarkedCount() int { return len(s.buf.LossMarked()) }

// OldestOutstanding returns the sender's oldest outstanding packet number
// (diagnostics only).
func (s *Sender) OldestOutstanding() uint64 { return s.buf.OldestPktSeq(s.nextPktSeq) }

// BufByPkt exposes the segment currently transmitted as pktSeq
// (diagnostics only).
func (s *Sender) BufByPkt(pktSeq uint64) *buffer.Segment { return s.buf.ByPktSeq(pktSeq) }

// ReleasedBytes exposes the cumulative acknowledged payload bytes
// (diagnostics only).
func (s *Sender) ReleasedBytes() int64 { return s.buf.ReleasedBytes() }
