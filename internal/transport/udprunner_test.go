package transport

import (
	"sync"
	"testing"
	"time"
)

// TestUDPRunnerLoopbackTransfer exercises the sans-IO engine over real UDP
// sockets on loopback: a bounded TACK-mode stream must complete and deliver
// every byte.
func TestUDPRunnerLoopbackTransfer(t *testing.T) {
	const size = 256 << 10
	cfgR := Config{Mode: ModeTACK, TransferBytes: size}
	rcv, err := NewUDPReceiverRunner(cfgR, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()

	cfgS := Config{Mode: ModeTACK, TransferBytes: size, CC: "cubic"}
	snd, err := NewUDPSenderRunner(cfgS, "127.0.0.1:0", rcv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var rcvErr error
	go func() {
		defer wg.Done()
		rcvErr = rcv.Run(20 * time.Second)
	}()
	if err := snd.Run(20 * time.Second); err != nil {
		t.Fatalf("sender: %v", err)
	}
	rcv.Close()
	wg.Wait()
	if rcvErr != nil {
		t.Logf("receiver exit: %v (ok after close)", rcvErr)
	}
	if got := rcv.Receiver.Delivered(); got != size {
		t.Fatalf("delivered %d, want %d", got, size)
	}
	if !snd.Sender.Done() {
		t.Fatal("sender did not finish")
	}
}

// TestUDPRunnerLegacyMode runs the same loopback transfer in legacy mode.
func TestUDPRunnerLegacyMode(t *testing.T) {
	const size = 128 << 10
	cfg := Config{Mode: ModeLegacy, TransferBytes: size}
	rcv, err := NewUDPReceiverRunner(cfg, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	snd, err := NewUDPSenderRunner(cfg, "127.0.0.1:0", rcv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	go rcv.Run(20 * time.Second)
	if err := snd.Run(20 * time.Second); err != nil {
		t.Fatalf("sender: %v", err)
	}
	if !snd.Sender.Done() {
		t.Fatal("sender did not finish")
	}
}

func TestUDPRunnerBadAddrs(t *testing.T) {
	if _, err := NewUDPReceiverRunner(Config{}, "not-an-addr", ""); err == nil {
		t.Fatal("bad local addr should error")
	}
	if _, err := NewUDPSenderRunner(Config{}, "127.0.0.1:0", "also-bad"); err == nil {
		t.Fatal("bad remote addr should error")
	}
}
