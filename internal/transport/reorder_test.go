package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

// reorderHarness wires a flow over a reordering (but loss-free) path.
func reorderHarness(t *testing.T, seed int64, cfg Config, reorderRate float64, reorderDelay sim.Time) *harness {
	t.Helper()
	loop := sim.NewLoop(seed)
	h := &harness{loop: loop}
	fwdCfg := netem.Config{RateBps: 50e6, Delay: ms(10), QueueBytes: 4 << 20, ReorderRate: reorderRate, ReorderDelay: reorderDelay}
	revCfg := netem.Config{RateBps: 50e6, Delay: ms(10)}
	h.fwd = netem.NewLink(loop, fwdCfg, func(pl any, n int) { h.rcv.OnPacket(pl.(*packet.Packet)) })
	h.rev = netem.NewLink(loop, revCfg, func(pl any, n int) { h.snd.OnPacket(pl.(*packet.Packet)) })
	snd, err := NewSender(loop, cfg, func(p *packet.Packet) { h.fwd.Send(p, p.WireSize()) })
	if err != nil {
		t.Fatal(err)
	}
	h.snd = snd
	h.rcv = NewReceiver(loop, cfg, func(p *packet.Packet) { h.rev.Send(p, p.WireSize()) })
	return h
}

func TestReorderingToleratedBySettleDelay(t *testing.T) {
	// 5% of packets delayed 2 ms: well inside the settle delay (RTTmin/4 =
	// 5 ms), so no spurious retransmissions should occur.
	cfg := Config{Mode: ModeTACK, TransferBytes: 4 << 20}
	h := reorderHarness(t, 41, cfg, 0.05, 2*sim.Millisecond)
	h.run(20 * sim.Second)
	if !h.snd.Done() {
		t.Fatal("transfer incomplete under mild reordering")
	}
	if h.snd.Stats.Retransmits > 3 {
		t.Fatalf("mild reordering caused %d spurious retransmissions", h.snd.Stats.Retransmits)
	}
}

func TestHeavyReorderingCausesSpuriousRetx(t *testing.T) {
	// Delays beyond the settle delay get declared lost: spurious
	// retransmissions appear (the failure mode §7's adaptation targets).
	cfg := Config{Mode: ModeTACK, TransferBytes: 4 << 20}
	h := reorderHarness(t, 42, cfg, 0.05, 15*sim.Millisecond)
	h.run(20 * sim.Second)
	if !h.snd.Done() {
		t.Fatal("transfer incomplete under heavy reordering")
	}
	if h.snd.Stats.Retransmits < 10 {
		t.Fatalf("expected spurious retransmissions, got %d", h.snd.Stats.Retransmits)
	}
}

func TestAdaptiveSettleSuppressesSpuriousRetx(t *testing.T) {
	run := func(adaptive bool) int {
		cfg := Config{Mode: ModeTACK, TransferBytes: 8 << 20, AdaptiveSettle: adaptive}
		h := reorderHarness(t, 43, cfg, 0.05, 15*sim.Millisecond)
		h.run(30 * sim.Second)
		if !h.snd.Done() {
			t.Fatalf("transfer (adaptive=%v) incomplete", adaptive)
		}
		return h.snd.Stats.Retransmits
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive*2 > fixed {
		t.Fatalf("adaptive settle did not clearly reduce spurious retx: fixed=%d adaptive=%d", fixed, adaptive)
	}
}

func TestNetemReorderingStats(t *testing.T) {
	loop := sim.NewLoop(1)
	got := 0
	l := netem.NewLink(loop, netem.Config{Delay: ms(1), ReorderRate: 0.5}, func(pl any, n int) { got++ })
	for i := 0; i < 1000; i++ {
		l.Send(i, 100)
	}
	loop.Run()
	if got != 1000 {
		t.Fatalf("delivered %d/1000", got)
	}
	if l.Reordered < 400 || l.Reordered > 600 {
		t.Fatalf("reordered %d, want ~500", l.Reordered)
	}
}
