package transport

import (
	"testing"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

func defaultRack() *rackState { return newRackState(LossDetection{}.withDefaults()) }

func TestReorderWindowStartsAtQuarterRTT(t *testing.T) {
	r := defaultRack()
	if got := r.reorderWindow(); got != DefaultReorderWindowInit {
		t.Fatalf("window before any sample = %v, want init %v", got, DefaultReorderWindowInit)
	}
	r.onRTTSample(ms(40))
	if got := r.reorderWindow(); got != ms(10) {
		t.Fatalf("window after 40ms RTT = %v, want RTT/4 = 10ms", got)
	}
	// The base is the sliding *minimum*: a larger later sample must not
	// raise the window.
	r.onRTTSample(ms(80))
	if got := r.reorderWindow(); got != ms(10) {
		t.Fatalf("window after 80ms sample = %v, want min-RTT/4 = 10ms", got)
	}
}

func TestReorderWindowClampsToBounds(t *testing.T) {
	r := defaultRack()
	r.onRTTSample(2 * sim.Millisecond) // RTT/4 = 0.5ms, below the 1ms floor
	if got := r.reorderWindow(); got != DefaultReorderWindowMin {
		t.Fatalf("window for 2ms RTT = %v, want floor %v", got, DefaultReorderWindowMin)
	}

	r = defaultRack()
	r.onRTTSample(2 * sim.Second) // RTT/4 = 500ms, above the 200ms ceiling
	if got := r.reorderWindow(); got != DefaultReorderWindowMax {
		t.Fatalf("window for 2s RTT = %v, want ceiling %v", got, DefaultReorderWindowMax)
	}
}

func TestReorderWindowWidensOnReordering(t *testing.T) {
	r := defaultRack()
	r.onRTTSample(ms(40)) // base window 10ms

	if fresh := r.observeReorders(1); fresh != 1 {
		t.Fatalf("observeReorders(1) = %d fresh, want 1", fresh)
	}
	if got := r.reorderWindow(); got != ms(20) {
		t.Fatalf("window after one reorder event = %v, want doubled 20ms", got)
	}

	// Re-reporting the same cumulative total must not widen again.
	if fresh := r.observeReorders(1); fresh != 0 {
		t.Fatalf("repeated observeReorders(1) = %d fresh, want 0", fresh)
	}
	if got := r.reorderWindow(); got != ms(20) {
		t.Fatalf("window after stale report = %v, want unchanged 20ms", got)
	}

	// Two more events double twice; pushing far beyond the cap saturates at
	// the configured ceiling rather than overflowing.
	r.observeReorders(3)
	if got := r.reorderWindow(); got != ms(80) {
		t.Fatalf("window after three events = %v, want 80ms", got)
	}
	r.observeReorders(1000)
	if got := r.reorderWindow(); got != DefaultReorderWindowMax {
		t.Fatalf("window after many events = %v, want ceiling %v", got, DefaultReorderWindowMax)
	}
}

func TestProbeTimeout(t *testing.T) {
	r := defaultRack()
	if got := r.probeTimeout(0, 0); got != sim.Second {
		t.Fatalf("PTO before any RTT estimate = %v, want 1s", got)
	}
	// 2×SRTT plus half the min RTT for the receiver's ack delay.
	if got := r.probeTimeout(ms(50), ms(40)); got != ms(120) {
		t.Fatalf("PTO(srtt=50ms, min=40ms) = %v, want 120ms", got)
	}
}

// tailLossHarness wires a short bounded transfer whose final segment's
// original transmission is dropped: the classic tail loss that no
// receiver-side gap detection can see (nothing is sent after the hole).
func tailLossHarness(t *testing.T, seed int64, cfg Config) *harness {
	t.Helper()
	loop := sim.NewLoop(seed)
	h := &harness{loop: loop}
	fwdCfg, revCfg := netem.Symmetric(50e6, ms(10), 0, 0, 0)
	h.fwd = netem.NewLink(loop, fwdCfg, func(pl any, n int) { h.rcv.OnPacket(pl.(*packet.Packet)) })
	h.rev = netem.NewLink(loop, revCfg, func(pl any, n int) { h.snd.OnPacket(pl.(*packet.Packet)) })
	snd, err := NewSender(loop, cfg, func(p *packet.Packet) {
		if p.FIN && !p.Retrans {
			return // drop the tail's first transmission
		}
		h.fwd.Send(p, p.WireSize())
	})
	if err != nil {
		t.Fatal(err)
	}
	h.snd = snd
	h.rcv = NewReceiver(loop, cfg, func(p *packet.Packet) { h.rev.Send(p, p.WireSize()) })
	return h
}

func TestTLPRecoversTailLossBeforeRTO(t *testing.T) {
	cfg := Config{Mode: ModeTACK, TransferBytes: 32 << 10}
	h := tailLossHarness(t, 51, cfg)
	h.run(5 * sim.Second)
	if !h.snd.Done() {
		t.Fatalf("tail-loss transfer incomplete: acked %d", h.snd.CumAcked())
	}
	if h.snd.Stats.TLPProbes != 1 {
		t.Fatalf("TLP probes = %d, want exactly 1 (one-outstanding-probe rule)", h.snd.Stats.TLPProbes)
	}
	if h.snd.Stats.Timeouts != 0 {
		t.Fatalf("RTO fired %d times; the tail probe should recover before it", h.snd.Stats.Timeouts)
	}
}

func TestDisableTLPFallsBackToRTO(t *testing.T) {
	cfg := Config{Mode: ModeTACK, TransferBytes: 32 << 10,
		Loss: LossDetection{DisableTLP: true}}
	h := tailLossHarness(t, 52, cfg)
	h.run(5 * sim.Second)
	if !h.snd.Done() {
		t.Fatalf("tail-loss transfer incomplete: acked %d", h.snd.CumAcked())
	}
	if h.snd.Stats.TLPProbes != 0 {
		t.Fatalf("TLP disabled but %d probes fired", h.snd.Stats.TLPProbes)
	}
	if h.snd.Stats.Timeouts == 0 {
		t.Fatal("without TLP the tail loss should have required an RTO")
	}
}

func TestTLPRestartsRTO(t *testing.T) {
	// The probe's RTO restart (RFC 8985 §7.3) gives the probe's ack a full
	// window to arrive: with TLP on, the tail loss recovers with zero
	// timeouts (asserted above) and well under the 200ms MinRTO — the
	// completion time itself witnesses that the RTO never preempted.
	cfg := Config{Mode: ModeTACK, TransferBytes: 32 << 10}
	h := tailLossHarness(t, 53, cfg)
	done := sim.Time(0)
	h.snd.OnDone = func() { done = h.loop.Now() }
	h.run(5 * sim.Second)
	if done == 0 {
		t.Fatal("tail-loss transfer incomplete")
	}
	if done > ms(200) {
		t.Fatalf("completion at %v; TLP should beat the 200ms MinRTO path", done)
	}
}

func TestTLPNeverFiresWithZeroInflight(t *testing.T) {
	// An app-paced sender with nothing to send keeps an empty send buffer:
	// the tail probe must stay disarmed across an idle established
	// connection.
	cfg := Config{Mode: ModeTACK, AppPaced: true}
	h := newHarness(t, 54, cfg, 50e6, ms(10), 0, 0)
	h.run(5 * sim.Second)
	if !h.snd.Established() {
		t.Fatal("handshake did not complete")
	}
	if h.snd.Stats.TLPProbes != 0 {
		t.Fatalf("idle connection fired %d TLP probes", h.snd.Stats.TLPProbes)
	}
}

func TestRACKNoSpuriousMarksUnderMildReordering(t *testing.T) {
	// 5% of packets displaced ~2ms — about a 3-packet displacement plus
	// queueing at 50 Mbps — stays well inside the reorder window (min-RTT/4
	// = 5ms), so RACK must not mark anything lost on this loss-free path.
	cfg := Config{Mode: ModeTACK, TransferBytes: 4 << 20}
	h := reorderHarness(t, 55, cfg, 0.05, 2*sim.Millisecond)
	h.run(20 * sim.Second)
	if !h.snd.Done() {
		t.Fatal("transfer incomplete under mild reordering")
	}
	if h.snd.Stats.RackMarked != 0 {
		t.Fatalf("RACK spuriously marked %d segments under 3-packet reordering", h.snd.Stats.RackMarked)
	}
}

func TestRACKDetectsLossFasterThanDupThreshLegacy(t *testing.T) {
	// In legacy mode (no receiver loss reports) RACK's time-based scan is
	// the only fast path; both arms must finish, and the RACK arm must not
	// be slower.
	run := func(d LossDetector) sim.Time {
		cfg := Config{Mode: ModeLegacy, TransferBytes: 1 << 20,
			Loss: LossDetection{Detector: d}}
		h := newHarness(t, 56, cfg, 50e6, ms(20), 0.02, 0)
		done := sim.Time(0)
		h.snd.OnDone = func() { done = h.loop.Now() }
		h.run(30 * sim.Second)
		if done == 0 {
			t.Fatalf("lossy legacy transfer (detector=%v) incomplete", d)
		}
		return done
	}
	rack := run(DetectorRACK)
	dup := run(DetectorDupThresh)
	if rack > dup*3/2 {
		t.Fatalf("RACK completion %v much slower than dup-thresh %v", rack, dup)
	}
}
