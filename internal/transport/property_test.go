package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

// pathConditions is a randomized network environment for the end-to-end
// property test.
type pathConditions struct {
	RateMbps    uint8 // 5..60 Mbit/s
	OwdMs       uint8 // 1..80 ms
	DataLossPct uint8 // 0..8%
	AckLossPct  uint8 // 0..8%
	ReorderPct  uint8 // 0..5%
	QueueKB     uint8 // 64..512 KiB
	LegacyMode  bool
	RichTACK    bool
	Adaptive    bool
	Seed        int64
}

func (c pathConditions) normalize() pathConditions {
	c.RateMbps = 5 + c.RateMbps%56
	c.OwdMs = 1 + c.OwdMs%80
	c.DataLossPct = c.DataLossPct % 9
	c.AckLossPct = c.AckLossPct % 9
	c.ReorderPct = c.ReorderPct % 6
	c.QueueKB = 64 + c.QueueKB%192
	return c
}

// TestQuickEndToEndDelivery is the repository's failure-injection property
// test: under arbitrary (bounded) loss, reordering, rate, delay and
// protocol-mode combinations, a bounded stream must be delivered exactly
// and completely within a generous deadline.
func TestQuickEndToEndDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	const size = 256 << 10
	f := func(raw pathConditions) bool {
		c := raw.normalize()
		loop := sim.NewLoop(c.Seed)
		cfg := Config{TransferBytes: size, RichTACK: c.RichTACK, AdaptiveSettle: c.Adaptive}
		if c.LegacyMode {
			cfg.Mode = ModeLegacy
		} else {
			cfg.Mode = ModeTACK
		}
		var snd *Sender
		var rcv *Receiver
		fwdCfg := netem.Config{
			RateBps:     float64(c.RateMbps) * 1e6,
			Delay:       sim.Time(c.OwdMs) * sim.Millisecond,
			LossRate:    float64(c.DataLossPct) / 100,
			ReorderRate: float64(c.ReorderPct) / 100,
			QueueBytes:  int(c.QueueKB) << 10,
		}
		revCfg := netem.Config{
			RateBps:  float64(c.RateMbps) * 1e6,
			Delay:    sim.Time(c.OwdMs) * sim.Millisecond,
			LossRate: float64(c.AckLossPct) / 100,
		}
		fwd := netem.NewLink(loop, fwdCfg, func(pl any, n int) { rcv.OnPacket(pl.(*packet.Packet)) })
		rev := netem.NewLink(loop, revCfg, func(pl any, n int) { snd.OnPacket(pl.(*packet.Packet)) })
		var err error
		snd, err = NewSender(loop, cfg, func(p *packet.Packet) { fwd.Send(p, p.WireSize()) })
		if err != nil {
			return false
		}
		rcv = NewReceiver(loop, cfg, func(p *packet.Packet) { rev.Send(p, p.WireSize()) })
		snd.Start()
		loop.RunUntil(180 * sim.Second)
		if !snd.Done() {
			t.Logf("stall: %+v acked=%d retx=%d to=%d", c, snd.CumAcked(), snd.Stats.Retransmits, snd.Stats.Timeouts)
			return false
		}
		if rcv.Delivered() != size {
			t.Logf("delivery mismatch: %+v delivered=%d", c, rcv.Delivered())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
