package endpoint

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/transport"
)

// TestEndpointConcurrentDialClose hammers the lifecycle under the race
// detector: 32 connections dialed concurrently against one server
// endpoint, half of them closed mid-transfer from a different goroutine,
// every connection and both endpoints closed twice. It then asserts that
// no goroutines leaked and that no double-close panicked.
func TestEndpointConcurrentDialClose(t *testing.T) {
	before := runtime.NumGoroutine()

	const (
		nConns = 32
		size   = 2 << 20 // big enough that half the conns die mid-transfer
	)
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: size}
	// A generous handshake timeout: 32 concurrent initial windows through
	// one loopback socket pair under the race detector can push first
	// deliveries behind several RTO retransmissions.
	srv, err := Listen("127.0.0.1:0", Config{Transport: tcfg, HandshakeTimeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", Config{Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}

	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for i := 0; i < nConns; i++ {
			c, err := srv.AcceptTimeout(20 * time.Second)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			// Server halves are abandoned to the endpoint's lifecycle
			// machinery: completion linger, FIN handling, or idle reaping
			// must clean every one of them up without user help.
			_ = c
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < nConns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := cli.Dial(srv.LocalAddr().String())
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			if i%2 == 0 {
				// Close mid-transfer from this goroutine while the shard
				// is actively pumping the connection.
				time.Sleep(time.Duration(1+i%5) * 10 * time.Millisecond)
				c.Close()
				c.Close() // double close must be a no-op
				if err := c.Wait(10 * time.Second); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("conn %d after close: %v", i, err)
				}
				return
			}
			if err := c.Wait(60 * time.Second); err != nil {
				t.Errorf("conn %d: %v", i, err)
				return
			}
			c.Close()
			c.Close()
		}(i)
	}
	wg.Wait()
	acceptWG.Wait()

	// Double-close of both endpoints must be safe too.
	if err := cli.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}
	cli.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	srv.Close()

	// Every runner goroutine (read loops, shards) must have exited. The
	// stack-dump buffer is allocated once, up front — not per poll
	// iteration — and only filled on failure.
	buf := make([]byte, 1<<20)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
