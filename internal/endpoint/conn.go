package endpoint

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

const (
	// completeLinger keeps a completed receiver connection registered so
	// tail retransmissions still get re-acknowledged (the sender may not
	// have seen the final TACK yet).
	completeLinger = time.Second
	// closeLinger bounds how long a FIN-closed connection waits for the
	// peer's FINACK before being torn down anyway.
	closeLinger = 500 * time.Millisecond
)

// Conn is one connection half multiplexed on an Endpoint: a sans-IO
// Sender (dialed connections) or Receiver (accepted connections) running
// on a private sim.Loop whose virtual clock is pinned to wall time.
//
// All protocol state — including the Sender/Receiver state machines and
// their Stats — is driven by the connection's owning shard goroutine.
// Reading them is safe only after Wait (or Done) signals completion,
// which happens-before the shard stops touching the connection.
type Conn struct {
	ep   *Endpoint
	sh   *shard
	id   uint32
	peer *net.UDPAddr

	loop    *sim.Loop
	start   time.Time // wall anchor of the virtual clock
	created time.Time

	snd *transport.Sender
	rcv *transport.Receiver

	// Shard-owned lifecycle state: only the owning shard goroutine touches
	// these after registration.
	established   bool
	closing       bool
	closeDeadline time.Time
	completeAt    time.Time
	lastRecv      time.Time
	lastSent      time.Time
	// Embryo SYNACK retransmission schedule (receiver side only).
	hsRetries int
	nextHS    time.Time

	// Path-migration state machine (shard-owned; see migration.go).
	// migAddr is the candidate peer address under (or failed) validation;
	// migRx/migTx are the anti-amplification byte counters of the current
	// probing episode; migNext/migDeadline drive the challenge retransmit
	// schedule on the lifecycle tick.
	migState      pathState
	migAddr       *net.UDPAddr
	migToken      uint64
	migRx         int64
	migTx         int64
	migRetries    int
	migChallenges int
	migNext       time.Time
	migDeadline   time.Time
	migStarted    time.Time
	migCompleted  int64 // validated migrations over the connection's life

	// kickQueued dedups pending stream kicks; guarded by sh.kickMu.
	kickQueued bool

	// Flight recorder: ring is the always-on per-connection event
	// buffer; tracer is the ring tracer installed in front of the
	// template tracer (or the template tracer itself when the recorder
	// is disabled). anom is the shard-owned anomaly-detector state.
	ring   *telemetry.Ring
	tracer *telemetry.Tracer
	anom   anomalyState

	// snap is the latest shard-published observability snapshot; readers
	// (StateSnapshot, the debug endpoint) only load the pointer.
	snap atomic.Pointer[ConnState]

	estOnce   sync.Once
	estCh     chan struct{}
	doneOnce  sync.Once
	doneCh    chan struct{}
	closeOnce sync.Once
	err       error // set before doneCh closes; read only after <-doneCh

	// ownsEndpoint marks connections created by the package-level Dial,
	// whose private endpoint is closed when the connection finishes.
	ownsEndpoint bool
}

// newConn builds the shared connection scaffolding; the caller assigns
// id + shard and attaches the protocol half.
func (ep *Endpoint) newConn(peer *net.UDPAddr) *Conn {
	now := time.Now()
	return &Conn{
		ep:       ep,
		peer:     peer,
		loop:     sim.NewLoop(now.UnixNano()),
		start:    now,
		created:  now,
		lastRecv: now,
		lastSent: now,
		estCh:    make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
}

// attachRecorder installs the per-connection flight recorder in front
// of the template tracer (unless Config.FlightRecorder is negative) and
// leaves the effective tracer in c.tracer for endpoint-level events.
func (c *Conn) attachRecorder(tcfg *transport.Config) {
	c.tracer = tcfg.Tracer
	if c.ep.cfg.FlightRecorder >= 0 {
		c.ring = telemetry.NewRing(c.ep.cfg.FlightRecorder)
		c.tracer = telemetry.WithRing(c.ring, tcfg.Tracer)
		tcfg.Tracer = c.tracer
	}
}

// trc returns the tracer endpoint-level events about this connection
// (migration rejects, anomalies) are recorded through, so they land in
// the flight recorder alongside the transport's own events.
func (c *Conn) trc() *telemetry.Tracer {
	if c.tracer != nil {
		return c.tracer
	}
	return c.ep.cfg.Transport.Tracer
}

// FlightRecorder returns the connection's flight-recorder ring (nil
// when Config.FlightRecorder is negative).
func (c *Conn) FlightRecorder() *telemetry.Ring { return c.ring }

// StateSnapshot returns the most recent observability snapshot the
// owning shard published for this connection, or nil before the first
// lifecycle tick. The returned struct is a private copy; the call reads
// one atomic pointer and takes no locks shared with the datapath.
func (c *Conn) StateSnapshot() *ConnState {
	s := c.snap.Load()
	if s == nil {
		return nil
	}
	cp := *s
	return &cp
}

// vnow maps wall clock onto the connection's virtual clock.
func (c *Conn) vnow() sim.Time { return sim.Time(time.Since(c.start)) }

// advance runs the connection's timers up to the current wall time.
func (c *Conn) advance() { c.loop.RunUntil(c.vnow()) }

// output transmits a protocol packet to the peer. Runs on the shard
// goroutine (loop callbacks execute there), which owns the egress queue:
// the packet is encoded into a pooled buffer and coalesced with the rest
// of the burst into one batched write.
func (c *Conn) output(p *packet.Packet) {
	c.lastSent = c.sh.now
	c.sh.enqueue(p, c.peer)
}

// finish closes doneCh exactly once with the given terminal error.
func (c *Conn) finish(err error) {
	c.doneOnce.Do(func() {
		c.err = err
		if c.snd != nil {
			if m := c.snd.Streams(); m != nil {
				m.Close(err)
			}
		}
		if c.rcv != nil {
			if m := c.rcv.Streams(); m != nil {
				m.Close(err)
			}
		}
		close(c.doneCh)
		if c.ownsEndpoint {
			// Close must not run on the shard goroutine (it waits for it).
			go c.ep.Close()
		}
	})
}

// waitErr returns the terminal error; call only after doneCh is closed.
func (c *Conn) waitErr() error { return c.err }

// ConnID returns the connection id carried by every packet of this
// connection.
func (c *Conn) ConnID() uint32 { return c.id }

// RemoteAddr returns the peer's UDP address.
func (c *Conn) RemoteAddr() *net.UDPAddr { return c.peer }

// LocalAddr returns the endpoint's bound UDP address.
func (c *Conn) LocalAddr() *net.UDPAddr { return c.ep.LocalAddr() }

// Sender returns the sending half (nil on accepted connections). Safe to
// read concurrently only after Wait/Done reports completion.
func (c *Conn) Sender() *transport.Sender { return c.snd }

// Receiver returns the receiving half (nil on dialed connections). Safe
// to read concurrently only after Wait/Done reports completion.
func (c *Conn) Receiver() *transport.Receiver { return c.rcv }

// OpenStream opens a new outgoing multiplexed stream with default
// scheduling options. It returns stream.ErrStreamsDisabled unless the
// connection was dialed with Config.Transport.Streams set.
func (c *Conn) OpenStream() (*stream.SendStream, error) {
	return c.OpenStreamOptions(stream.Options{})
}

// OpenStreamOptions opens a new outgoing multiplexed stream with explicit
// scheduling options (priority / weight, honored by the configured
// scheduler). Safe from any goroutine.
func (c *Conn) OpenStreamOptions(opts stream.Options) (*stream.SendStream, error) {
	if c.snd == nil {
		return nil, stream.ErrStreamsDisabled
	}
	m := c.snd.Streams()
	if m == nil {
		return nil, stream.ErrStreamsDisabled
	}
	return m.Open(opts)
}

// AcceptStream waits up to timeout for the peer to open a stream and
// returns its receiving half. A non-positive timeout polls. It returns
// stream.ErrStreamsDisabled unless the connection was accepted with
// Config.Transport.Streams set, and stream.ErrTimeout when nothing
// arrives in time. Safe from any goroutine.
func (c *Conn) AcceptStream(timeout time.Duration) (*stream.RecvStream, error) {
	if c.rcv == nil {
		return nil, stream.ErrStreamsDisabled
	}
	m := c.rcv.Streams()
	if m == nil {
		return nil, stream.ErrStreamsDisabled
	}
	return m.Accept(timeout)
}

// CompletedAt returns the wall time the receiving half finished its
// transfer — before the completion linger that keeps the connection
// re-acknowledging tail retransmissions — or the zero time if the
// connection never completed (sender half, failure, or still running).
// Valid once Done is closed.
func (c *Conn) CompletedAt() time.Time { return c.completeAt }

// Done returns a channel closed when the connection terminates (transfer
// complete, closed, reaped, or endpoint shutdown).
func (c *Conn) Done() <-chan struct{} { return c.doneCh }

// Err returns the terminal error (nil for a clean completion or graceful
// close). Valid once Done is closed.
func (c *Conn) Err() error {
	select {
	case <-c.doneCh:
		return c.err
	default:
		return nil
	}
}

// Wait blocks until the connection terminates or d elapses (d <= 0 waits
// without bound). It returns the terminal error: nil for a completed
// transfer or graceful close, ErrDeadline when d elapsed first.
func (c *Conn) Wait(d time.Duration) error {
	var deadline <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-c.doneCh:
		return c.err
	case <-deadline:
		return ErrDeadline
	}
}

// Close tears the connection down. A mid-transfer sending connection
// closes gracefully: a FIN is emitted and the connection lingers briefly
// for the peer's FINACK. Close is idempotent and safe from any goroutine.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		select {
		case c.sh.in <- shardMsg{op: opClose, conn: c}:
		case <-c.ep.stop:
			c.finish(ErrClosed)
		}
	})
	return nil
}

// DialAddr opens a standalone sending connection to raddr: a private
// single-shard endpoint is bound to an ephemeral port and closed
// automatically when the connection finishes. Use Endpoint.Dial to
// multiplex many connections over one socket.
func DialAddr(raddr string, tcfg transport.Config) (*Conn, error) {
	ep, err := Listen(":0", Config{Transport: tcfg, Shards: 1})
	if err != nil {
		return nil, err
	}
	c, err := ep.dial(raddr, true)
	if err != nil {
		ep.Close()
		return nil, err
	}
	return c, nil
}
