package endpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/tacktp/tack/internal/telemetry"
)

// ConnState is a point-in-time, JSON-friendly snapshot of one
// connection, built by the owning shard goroutine (which may touch the
// protocol engines freely) and published through an atomic pointer so
// readers — the debug endpoint, tackstat — never contend with the
// datapath. Fields that belong to the absent half (sender fields on an
// accepted connection and vice versa) are zero.
type ConnState struct {
	ConnID uint32 `json:"conn_id"`
	// Role is "sender" (dialed) or "receiver" (accepted).
	Role string `json:"role"`
	// State is "handshake", "established", "closing", or "complete".
	State  string  `json:"state"`
	Peer   string  `json:"peer"`
	AgeSec float64 `json:"age_sec"`

	// RTT and rate.
	SRTTMs      float64 `json:"srtt_ms"`
	RTTMinMs    float64 `json:"rtt_min_ms"`
	DeliveryBps float64 `json:"delivery_bps"`

	// Windows and flight (sender half).
	InflightBytes   int    `json:"inflight_bytes"`
	CwndBytes       int    `json:"cwnd_bytes"`
	WindowFreeBytes int    `json:"window_free_bytes"`
	PeerWindowBytes uint64 `json:"peer_window_bytes"`
	// RecvWindowBytes is the receiver half's advertised window.
	RecvWindowBytes uint64 `json:"recv_window_bytes"`

	// Progress and loss.
	BytesAcked     int64 `json:"bytes_acked"`
	BytesDelivered int64 `json:"bytes_delivered"`
	Retransmits    int   `json:"retransmits"`
	Timeouts       int   `json:"timeouts"`
	LossEpisodes   int   `json:"loss_episodes"`
	LossesDetected int   `json:"losses_detected"`

	// Acknowledgment clock: achieved frequency vs the Eq. 3 target, and
	// the ACK-overhead accounting (feedback wire bytes per delivered MB).
	AcksReceived          int     `json:"acks_received"`
	AcksSent              int     `json:"acks_sent"`
	AchievedAckHz         float64 `json:"achieved_ack_hz"`
	TargetAckHz           float64 `json:"target_ack_hz"`
	AckBytes              int64   `json:"ack_bytes"`
	AckOverheadBytesPerMB float64 `json:"ack_overhead_bytes_per_mb"`

	// Stream multiplexing.
	Streams             int `json:"streams"`
	StreamBufferedBytes int `json:"stream_buffered_bytes"`

	// Robustness signals. PathState is the migration state machine's
	// position ("idle", "probing", "rejected"); Migrations counts
	// validated path migrations over the connection's life.
	PathState        string   `json:"path_state"`
	Migrations       int64    `json:"migrations"`
	MigrationRejects int64    `json:"migration_rejects"`
	Anomalies        []string `json:"anomalies,omitempty"`
	// FlightRecorded is the total number of events the connection's
	// flight-recorder ring has seen (0 when the recorder is disabled).
	FlightRecorded uint64 `json:"flight_recorded"`
}

// Anomaly-detector thresholds that are not per-deployment knobs: the
// rolling windows are coarse by design (detectors run on the 1 ms
// lifecycle tick and must stay cheap), and each class latches once per
// connection so a wedged flow produces one post-mortem, not a stream.
const (
	// snapshotRefresh is how often a shard rebuilds every connection's
	// published ConnState (anomalies additionally refresh immediately).
	snapshotRefresh = 100 * time.Millisecond
	// retxStormWindow is the rolling window the retransmission-storm
	// threshold (Config.RetxStormThreshold) applies to.
	retxStormWindow = time.Second
	// wndExhaustTimeout is how long the send window must stay exhausted
	// with data queued before the window-exhaustion anomaly fires.
	wndExhaustTimeout = time.Second
	// migStormWindow / migStormThreshold: this many migration rejects
	// within the window fire the migration-storm anomaly (a NAT rebind
	// turns every arriving packet into a reject, so a real rebind
	// crosses this in a few RTTs).
	migStormWindow    = 5 * time.Second
	migStormThreshold = 10
)

// anomalyClasses maps the latch indexes to telemetry trigger values.
var anomalyClasses = [...]uint8{
	telemetry.TrigStall,
	telemetry.TrigRetxStorm,
	telemetry.TrigWndExhaust,
	telemetry.TrigMigStorm,
}

// anomalyState is the shard-owned detector bookkeeping embedded in each
// Conn. Only the owning shard goroutine touches it.
type anomalyState struct {
	// No-progress stall tracking.
	lastProgress time.Time
	lastCum      uint64
	lastDeliv    int64

	// Retransmission-storm rolling window.
	retxWindowAt time.Time
	retxAtWindow int

	// Window-exhaustion persistence.
	wndBlockedSince time.Time

	// Migration-reject rolling window (migRejects is bumped on the
	// demux path, same goroutine).
	migRejects  int64
	migWindowAt time.Time
	migAtWindow int64

	fired   [len(anomalyClasses)]bool
	classes []string // TriggerNames of fired classes, for snapshots
}

func anomalyIndex(class uint8) int {
	for i, c := range anomalyClasses {
		if c == class {
			return i
		}
	}
	return 0
}

// buildState assembles a fresh ConnState. Shard goroutine only.
func (sh *shard) buildState(c *Conn) *ConnState {
	now := sh.now
	s := &ConnState{
		ConnID: c.id,
		Peer:   c.peer.String(),
		AgeSec: now.Sub(c.created).Seconds(),
	}
	switch {
	case c.closing:
		s.State = "closing"
	case !c.established:
		s.State = "handshake"
	case c.rcv != nil && c.rcv.Complete():
		s.State = "complete"
	default:
		s.State = "established"
	}
	span := now.Sub(c.created).Seconds()
	if snd := c.snd; snd != nil {
		s.Role = "sender"
		s.SRTTMs = snd.SRTT().Seconds() * 1e3
		if min, ok := snd.RTTMin(); ok {
			s.RTTMinMs = min.Seconds() * 1e3
		}
		s.InflightBytes = snd.Inflight()
		s.CwndBytes = snd.CWND()
		s.WindowFreeBytes = snd.WindowFree()
		if w, ok := snd.PeerWindow(); ok {
			s.PeerWindowBytes = w
		}
		s.BytesAcked = int64(snd.CumAcked())
		s.Retransmits = snd.Stats.Retransmits
		s.Timeouts = snd.Stats.Timeouts
		s.LossEpisodes = snd.Stats.LossEpisodes
		s.AcksReceived = snd.Stats.AcksReceived
		s.AckBytes = snd.Stats.AckBytesReceived
		if span > 0 {
			s.AchievedAckHz = float64(snd.Stats.AcksReceived) / span
			s.DeliveryBps = float64(s.BytesAcked) * 8 / span
		}
		if mb := float64(s.BytesAcked) / 1e6; mb > 0 {
			s.AckOverheadBytesPerMB = float64(s.AckBytes) / mb
		}
		if m := snd.Streams(); m != nil {
			s.Streams = m.ActiveStreams()
		}
	}
	if rcv := c.rcv; rcv != nil {
		s.Role = "receiver"
		s.RTTMinMs = rcv.RTTMinSynced().Seconds() * 1e3
		s.DeliveryBps = rcv.DeliveryRateBps()
		s.RecvWindowBytes = rcv.Buffer().Window()
		s.BytesDelivered = rcv.Delivered()
		s.LossesDetected = rcv.Stats.LossesDetected
		s.AcksSent = rcv.Stats.AcksSent()
		s.AckBytes = rcv.Stats.AckBytesSent
		s.TargetAckHz = rcv.AckTargetHz()
		if span > 0 {
			s.AchievedAckHz = float64(rcv.Stats.AcksSent()) / span
		}
		if mb := float64(s.BytesDelivered) / 1e6; mb > 0 {
			s.AckOverheadBytesPerMB = float64(s.AckBytes) / mb
		}
		if m := rcv.Streams(); m != nil {
			s.Streams = m.ActiveStreams()
			s.StreamBufferedBytes = m.Buffered()
		}
	}
	s.PathState = c.migState.String()
	s.Migrations = c.migCompleted
	s.MigrationRejects = c.anom.migRejects
	if len(c.anom.classes) > 0 {
		s.Anomalies = append([]string(nil), c.anom.classes...)
	}
	s.FlightRecorded = c.ring.Total()
	return s
}

// refreshSnapshot rebuilds and publishes the connection's ConnState.
func (sh *shard) refreshSnapshot(c *Conn) { c.snap.Store(sh.buildState(c)) }

// detectAnomalies runs the per-tick anomaly checks for one connection.
// Each class fires at most once per connection: the first detection
// emits a telemetry event into the flight recorder, bumps the class
// counter, dumps the ring as a post-mortem, and republishes the
// snapshot.
func (sh *shard) detectAnomalies(c *Conn, now time.Time) {
	if !c.established {
		return
	}
	a := &c.anom
	if a.lastProgress.IsZero() {
		a.lastProgress = now
		a.retxWindowAt = now
		a.migWindowAt = now
	}

	// No-progress stall: data in flight (sender) or a transfer underway
	// (receiver) with nothing moving for > StallRTOs × RTO.
	stallAfter := sh.stallTimeout(c)
	if snd := c.snd; snd != nil && !snd.Done() {
		if cum := snd.CumAcked(); cum != a.lastCum {
			a.lastCum = cum
			a.lastProgress = now
		} else if snd.Inflight() > 0 && now.Sub(a.lastProgress) > stallAfter {
			sh.fireAnomaly(c, telemetry.TrigStall, uint64(now.Sub(a.lastProgress)))
		}
	} else if rcv := c.rcv; rcv != nil && !rcv.Complete() {
		if d := rcv.Delivered(); d != a.lastDeliv || rcv.Stats.DataPackets == 0 {
			a.lastDeliv = d
			a.lastProgress = now
		} else if now.Sub(c.lastRecv) > stallAfter {
			sh.fireAnomaly(c, telemetry.TrigStall, uint64(now.Sub(c.lastRecv)))
		}
	}

	if snd := c.snd; snd != nil {
		// Retransmission storm: too many retransmissions inside one
		// rolling window.
		if now.Sub(a.retxWindowAt) >= retxStormWindow {
			if d := snd.Stats.Retransmits - a.retxAtWindow; d >= sh.ep.cfg.RetxStormThreshold {
				sh.fireAnomaly(c, telemetry.TrigRetxStorm, uint64(d))
			}
			a.retxWindowAt = now
			a.retxAtWindow = snd.Stats.Retransmits
		}

		// Persistent window exhaustion: data queued but no budget to
		// send it, continuously, for longer than wndExhaustTimeout.
		if !snd.Done() && snd.WindowFree() <= 0 && snd.StreamBacklog() {
			if a.wndBlockedSince.IsZero() {
				a.wndBlockedSince = now
			} else if blocked := now.Sub(a.wndBlockedSince); blocked > wndExhaustTimeout {
				sh.fireAnomaly(c, telemetry.TrigWndExhaust, uint64(blocked))
			}
		} else {
			a.wndBlockedSince = time.Time{}
		}
	}

	// Migration-reject storm (both halves; rejects are counted on the
	// demux path).
	if now.Sub(a.migWindowAt) >= migStormWindow {
		a.migWindowAt = now
		a.migAtWindow = a.migRejects
	}
	if d := a.migRejects - a.migAtWindow; d >= migStormThreshold {
		sh.fireAnomaly(c, telemetry.TrigMigStorm, uint64(d))
	}
}

// stallTimeout returns the no-progress threshold for c: StallRTOs times
// the sender's backoff-free RTO, or — for the receiver half, which has
// no RTO estimator — the transport's configured minimum RTO.
func (sh *shard) stallTimeout(c *Conn) time.Duration {
	n := sh.ep.cfg.StallRTOs
	if c.snd != nil {
		return time.Duration(c.snd.BaseRTO()) * time.Duration(n)
	}
	rto := time.Duration(sh.ep.cfg.Transport.MinRTO)
	if rto <= 0 {
		rto = 200 * time.Millisecond
	}
	return rto * time.Duration(n)
}

// fireAnomaly latches one anomaly class on a connection: telemetry
// event (into the flight recorder and any forward tracer), per-class
// counter, post-mortem dump, immediate snapshot refresh.
func (sh *shard) fireAnomaly(c *Conn, class uint8, detail uint64) {
	idx := anomalyIndex(class)
	if c.anom.fired[idx] {
		return
	}
	c.anom.fired[idx] = true
	name := telemetry.TriggerName(class)
	c.anom.classes = append(c.anom.classes, name)
	sh.ep.mAnomaly[idx].Inc()
	inflight := 0
	if c.snd != nil {
		inflight = c.snd.Inflight()
	}
	c.trc().Anomaly(c.vnow(), c.id, class, inflight, detail)
	sh.dumpPostMortem(c, name)
	sh.refreshSnapshot(c)
}

// dumpPostMortem snapshots the connection's flight-recorder ring on the
// shard goroutine (the copy decouples the dump from later Emits) and
// writes it to PostMortemDir as JSONL on a background goroutine — disk
// latency must not stall the datapath. The dump's final event is the
// KindAnomaly record that triggered it; tacktrace reads the file like
// any other trace. One file per (connection, class):
// postmortem-conn<id>-<class>.jsonl.
func (sh *shard) dumpPostMortem(c *Conn, class string) {
	dir := sh.ep.cfg.PostMortemDir
	if dir == "" || c.ring == nil {
		return
	}
	events := c.ring.Snapshot(nil)
	path := filepath.Join(dir, fmt.Sprintf("postmortem-conn%08x-%s.jsonl", c.id, class))
	ep := sh.ep
	go func() {
		f, err := os.Create(path)
		if err != nil {
			ep.mAnomalyDumpErrs.Inc()
			return
		}
		buf := make([]byte, 0, 256)
		for i := range events {
			buf = telemetry.AppendEvent(buf[:0], &events[i])
			if _, err := f.Write(buf); err != nil {
				f.Close()
				ep.mAnomalyDumpErrs.Inc()
				return
			}
		}
		if err := f.Close(); err != nil {
			ep.mAnomalyDumpErrs.Inc()
			return
		}
		ep.mAnomalyDumps.Inc()
	}()
}

// StateSnapshots returns the latest published snapshot of every live
// connection, sorted by connection id. It reads only atomic pointers
// published by the shards — no shard, loop, or engine locks — so it is
// safe and cheap to call from the debug endpoint at any rate. As a side
// effect it refreshes the endpoint-wide ep.ack_overhead_bytes_per_mb
// gauge from the aggregated per-connection accounting.
func (ep *Endpoint) StateSnapshots() []ConnState {
	ep.mu.Lock()
	conns := make([]*Conn, 0, len(ep.used))
	for _, c := range ep.used {
		conns = append(conns, c)
	}
	ep.mu.Unlock()
	out := make([]ConnState, 0, len(conns))
	var ackBytes, dataBytes int64
	for _, c := range conns {
		s := c.snap.Load()
		if s == nil {
			continue // first tick hasn't published yet
		}
		out = append(out, *s)
		ackBytes += s.AckBytes
		dataBytes += s.BytesAcked + s.BytesDelivered
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ConnID < out[j].ConnID })
	if mb := float64(dataBytes) / 1e6; mb > 0 {
		ep.mAckOverhead.Set(float64(ackBytes) / mb)
	}
	return out
}
