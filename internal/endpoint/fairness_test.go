package endpoint

import (
	"fmt"
	"testing"

	"github.com/tacktp/tack/internal/mac"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/transport"
)

// multiflowGoodput runs `flows` unbounded TACK flows spread across
// `stas` client stations toward a demuxing AP-side SimServer on a shared
// 802.11n medium (multiple connections per station mirror the
// multi-connection endpoint). It returns each flow's delivered bytes
// during the measurement window (after warmup).
func multiflowGoodput(t *testing.T, flows, stas int, warmup, measure sim.Time) []int64 {
	t.Helper()
	loop := sim.NewLoop(1)
	m := mac.NewMedium(loop, phy.Get(phy.Std80211n))
	ap := m.AddStation("ap", 4096)

	srv := NewSimServer(loop, transport.Config{Mode: transport.ModeTACK})
	staFor := map[uint32]*mac.Station{}
	snds := map[uint32]*transport.Sender{}
	// The MAC delivers frames without a source handle, so both directions
	// route by ConnID.
	reply := func(p *packet.Packet) { ap.Send(staFor[p.ConnID], p.WireSize(), p) }
	ap.Receive = func(f *mac.Frame) { srv.OnPacket(f.Payload.(*packet.Packet), reply) }

	stations := make([]*mac.Station, stas)
	for i := range stations {
		sta := m.AddStation(fmt.Sprintf("sta%d", i), 2048)
		sta.Receive = func(f *mac.Frame) {
			p := f.Payload.(*packet.Packet)
			if s := snds[p.ConnID]; s != nil {
				s.OnPacket(p)
			}
		}
		stations[i] = sta
	}
	for i := 0; i < flows; i++ {
		id := uint32(i + 1)
		sta := stations[i%stas]
		staFor[id] = sta
		cfg := transport.Config{Mode: transport.ModeTACK, ConnID: id}
		snd, err := transport.NewSender(loop, cfg, func(p *packet.Packet) {
			sta.Send(ap, p.WireSize(), p)
		})
		if err != nil {
			t.Fatal(err)
		}
		snds[id] = snd
		snd.Start()
	}

	loop.RunUntil(warmup)
	base := make([]int64, flows)
	for i := range base {
		if r := srv.Receiver(uint32(i + 1)); r != nil {
			base[i] = r.Delivered()
		} else {
			t.Fatalf("flow %d never established", i+1)
		}
	}
	loop.RunUntil(warmup + measure)
	out := make([]int64, flows)
	for i := range out {
		out[i] = srv.Receiver(uint32(i+1)).Delivered() - base[i]
	}
	return out
}

// jain computes Jain's fairness index (Σx)² / (n·Σx²) ∈ (0, 1].
func jain(xs []int64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += float64(x)
		sumSq += float64(x) * float64(x)
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// TestMultiFlowFairness80211n verifies that 8 concurrent TACK flows
// sharing a contended 802.11n medium (4 client stations, 2 connections
// each, all contending with the AP's ACK traffic) divide the channel
// fairly (Jain ≥ 0.9) and that their aggregate goodput stays within 15%
// of the single-flow ceiling — DCF collisions plus the shared reverse
// ACK path must not collapse throughput.
func TestMultiFlowFairness80211n(t *testing.T) {
	const (
		nFlows  = 8
		nStas   = 4
		warmup  = 4 * sim.Second
		measure = 40 * sim.Second
	)
	per := multiflowGoodput(t, nFlows, nStas, warmup, measure)
	single := multiflowGoodput(t, 1, 1, warmup, measure)[0]

	secs := float64(measure / sim.Second)
	var agg int64
	for i, b := range per {
		agg += b
		t.Logf("flow %d: %.2f Mbps", i+1, float64(b)*8/secs/1e6)
	}
	j := jain(per)
	aggMbps := float64(agg) * 8 / secs / 1e6
	singleMbps := float64(single) * 8 / secs / 1e6
	t.Logf("jain=%.4f aggregate=%.2f Mbps single-flow=%.2f Mbps", j, aggMbps, singleMbps)

	if j < 0.9 {
		t.Errorf("Jain fairness %.4f < 0.9 across %d flows", j, nFlows)
	}
	if float64(agg) < 0.85*float64(single) {
		t.Errorf("aggregate %.2f Mbps below 85%% of single-flow ceiling %.2f Mbps",
			aggMbps, singleMbps)
	}
}
