package endpoint

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/tacktp/tack/internal/transport"
)

// Role selects which connection half a UDPRunner drives.
type Role int

const (
	// RoleSender dials the peer and transmits the stream.
	RoleSender Role = iota
	// RoleReceiver accepts one inbound connection and receives the stream.
	RoleReceiver
)

// String returns the role name for logs and error messages.
func (r Role) String() string {
	switch r {
	case RoleSender:
		return "sender"
	case RoleReceiver:
		return "receiver"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// RunnerOption configures NewUDPRunner.
type RunnerOption func(*runnerOpts)

type runnerOpts struct {
	laddr string
	peer  string
}

// WithLocalAddr binds the runner's socket to laddr (default ":0").
func WithLocalAddr(laddr string) RunnerOption {
	return func(o *runnerOpts) { o.laddr = laddr }
}

// WithPeer sets the remote address a sending runner dials. Required for
// RoleSender; ignored for RoleReceiver (the peer is learned from the
// inbound handshake).
func WithPeer(raddr string) RunnerOption {
	return func(o *runnerOpts) { o.peer = raddr }
}

// UDPRunner drives one connection half over a real UDP socket. It is a
// thin single-connection convenience over Endpoint: the socket binds at
// construction, and Run performs the dial (RoleSender) or accept
// (RoleReceiver) plus the transfer.
//
// The Sender/Receiver fields expose the connection's protocol half once
// Run has established it; read their stats only after Run returns.
type UDPRunner struct {
	ep   *Endpoint
	role Role
	peer string

	conn *Conn

	Sender   *transport.Sender
	Receiver *transport.Receiver
}

// NewUDPRunner builds a single-connection runner for the given role.
// RoleSender requires WithPeer; both roles accept WithLocalAddr.
func NewUDPRunner(cfg transport.Config, role Role, opts ...RunnerOption) (*UDPRunner, error) {
	var o runnerOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.laddr == "" {
		o.laddr = ":0"
	}
	if role == RoleSender {
		if o.peer == "" {
			return nil, errors.New("endpoint: sender runner needs WithPeer")
		}
		if _, err := net.ResolveUDPAddr("udp", o.peer); err != nil {
			return nil, fmt.Errorf("endpoint: resolve remote %q: %w", o.peer, err)
		}
	}
	ep, err := Listen(o.laddr, Config{Transport: cfg, Shards: 1})
	if err != nil {
		return nil, err
	}
	return &UDPRunner{ep: ep, role: role, peer: o.peer}, nil
}

// LocalAddr returns the bound UDP address.
func (r *UDPRunner) LocalAddr() *net.UDPAddr { return r.ep.LocalAddr() }

// Endpoint exposes the underlying multi-connection endpoint.
func (r *UDPRunner) Endpoint() *Endpoint { return r.ep }

// Conn returns the established connection (nil until Run establishes it).
func (r *UDPRunner) Conn() *Conn { return r.conn }

// Run establishes the connection (dial or accept) and pumps it until the
// stream completes or the deadline elapses (deadline <= 0 means no
// limit). Close during Run makes it return nil, matching a deliberate
// local shutdown.
func (r *UDPRunner) Run(deadline time.Duration) error {
	var until time.Time
	if deadline > 0 {
		until = time.Now().Add(deadline)
	}
	remaining := func() time.Duration {
		if until.IsZero() {
			return 0
		}
		d := time.Until(until)
		if d <= 0 {
			return time.Nanosecond // elapsed: force immediate ErrDeadline
		}
		return d
	}

	var c *Conn
	var err error
	switch r.role {
	case RoleSender:
		c, err = r.ep.Dial(r.peer)
	case RoleReceiver:
		c, err = r.ep.AcceptTimeout(remaining())
	default:
		return fmt.Errorf("endpoint: unknown role %v", r.role)
	}
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil
		}
		return err
	}
	r.conn = c
	r.Sender = c.Sender()
	r.Receiver = c.Receiver()
	err = c.Wait(remaining())
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}

// Close releases the socket and tears down the connection.
func (r *UDPRunner) Close() error { return r.ep.Close() }
