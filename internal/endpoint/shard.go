package endpoint

import (
	"net"
	"sync"
	"time"

	"github.com/tacktp/tack/internal/batchio"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/transport"
)

// opKind discriminates shard control messages.
type opKind uint8

const (
	opPacket   opKind = iota // inbound datagram for this shard's conns
	opRegister               // attach a freshly dialed connection
	opClose                  // user-initiated connection close
)

// shardMsg is one unit of work on a shard's channel.
type shardMsg struct {
	op   opKind
	ipk  *inPacket
	conn *Conn
}

// shard owns a partition of the endpoint's connections. The conns map and
// every connection's protocol state are touched exclusively by the
// shard's goroutine — the dispatch path is lock-free by ownership, and so
// is the egress queue: every output a connection emits lands here and is
// coalesced into one batched write per work burst.
type shard struct {
	ep *Endpoint
	// sock is the socket-group member this shard's egress is bound to:
	// every connection the shard owns replies through it
	// (reply-from-owner), regardless of which socket its inbound packets
	// arrive on.
	sock  *epSocket
	in    chan shardMsg
	conns map[uint32]*Conn

	// now is the shard's coarse wall clock, refreshed once per work burst
	// and lifecycle tick instead of per packet (time.Now in the dispatch
	// hot path costs a vDSO call per datagram; connection liveness
	// bookkeeping only needs millisecond granularity).
	now time.Time

	// lastSnap is when this shard last republished every connection's
	// observability snapshot (see snapshotRefresh).
	lastSnap time.Time

	// Egress queue: encoded datagrams awaiting one WriteBatch. egress and
	// egressBufs are parallel (egressBufs keeps the pool pointers so the
	// buffers can be recycled after the flush).
	wr         *batchio.Writer
	egress     []batchio.Message
	egressBufs []*[]byte

	// Stream-kick queue: application goroutines (stream Write/Read fired
	// from inside the mux lock) nudge the shard here. The tiny mutex plus a
	// non-blocking channel send keep the kick safe to call under any mux
	// lock: it can never block on the shard, and the shard never takes a
	// mux lock while holding kickMu.
	kickMu sync.Mutex
	kicked []*Conn
	kickCh chan struct{}
}

func newShard(ep *Endpoint, sock *epSocket) *shard {
	return &shard{
		ep:         ep,
		sock:       sock,
		in:         make(chan shardMsg, 1024),
		conns:      map[uint32]*Conn{},
		now:        time.Now(),
		wr:         sock.bconn.NewWriter(egressBatchSize),
		egress:     make([]batchio.Message, 0, egressBatchSize),
		egressBufs: make([]*[]byte, 0, egressBatchSize),
		kickCh:     make(chan struct{}, 1),
	}
}

// kick enqueues a connection for a stream-layer service pass on the shard
// goroutine. Callable from any goroutine, including under stream-mux locks:
// it never blocks and never re-enters connection state.
func (sh *shard) kick(c *Conn) {
	sh.kickMu.Lock()
	if !c.kickQueued {
		c.kickQueued = true
		sh.kicked = append(sh.kicked, c)
	}
	sh.kickMu.Unlock()
	select {
	case sh.kickCh <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// processKicks services queued stream kicks: wake the sender's scheduler
// (new writable frames) and flush any urgent receive-window advertisement.
func (sh *shard) processKicks() {
	sh.kickMu.Lock()
	ks := sh.kicked
	sh.kicked = nil
	for _, c := range ks {
		c.kickQueued = false
	}
	sh.kickMu.Unlock()
	for _, c := range ks {
		if sh.conns[c.id] != c {
			continue // torn down since the kick was queued
		}
		c.advance()
		if c.snd != nil {
			c.snd.Kick()
		}
		if c.rcv != nil {
			c.rcv.FlushStreamWindows()
		}
	}
}

// run is the shard worker: it serializes inbound packets, control
// messages, and a 1 ms lifecycle tick (the same granularity the
// single-connection runner used for its virtual clock). Each wakeup
// drains a bounded burst of queued work before flushing the egress
// queue, so packets arriving together (and the acks they trigger) leave
// in one batched write.
func (sh *shard) run() {
	defer sh.ep.wg.Done()
	defer sh.shutdown()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-sh.ep.stop:
			return
		case m := <-sh.in:
			sh.now = time.Now()
			sh.handle(m)
		drain:
			// Bounded opportunistic drain: batch the rest of the burst
			// without starving the tick or spinning forever.
			for i := 0; i < 2*readBatchSize; i++ {
				select {
				case m := <-sh.in:
					sh.handle(m)
				default:
					break drain
				}
			}
			sh.flush()
		case <-sh.kickCh:
			sh.now = time.Now()
			sh.processKicks()
			sh.flush()
		case <-tick.C:
			sh.now = time.Now()
			sh.tick()
			sh.flush()
		}
	}
}

func (sh *shard) handle(m shardMsg) {
	switch m.op {
	case opPacket:
		sh.onPacket(&m.ipk.pkt, &m.ipk.from)
		sh.ep.putPacket(m.ipk)
	case opRegister:
		c := m.conn
		sh.conns[c.id] = c
		sh.ep.connAdded()
		c.advance()
		c.snd.Start()
	case opClose:
		sh.closeConn(m.conn)
	}
}

// enqueue appends one encoded datagram to the shard's egress queue,
// flushing when the batch is full. Runs only on the shard goroutine.
func (sh *shard) enqueue(p *packet.Packet, addr *net.UDPAddr) {
	bp := sh.ep.getBuf()
	*bp = appendFrameCRC(p.AppendMarshal((*bp)[:0]))
	sh.egress = append(sh.egress, batchio.Message{Buf: *bp, Addr: addr})
	sh.egressBufs = append(sh.egressBufs, bp)
	if len(sh.egress) >= egressBatchSize {
		sh.flush()
	}
}

// flush writes the egress queue with as few syscalls as the platform
// allows and recycles the datagram buffers. A datagram that errors is
// counted and skipped; the rest of the batch still goes out.
func (sh *shard) flush() {
	if len(sh.egress) == 0 {
		return
	}
	ms := sh.egress
	sh.ep.mBatchWrite.Observe(float64(len(ms)))
	sh.sock.mBatchWrite.Observe(float64(len(ms)))
	var txErrs int64
	for sent := 0; sent < len(ms); {
		n, err := sh.wr.WriteBatch(ms[sent:])
		sent += n
		if err != nil {
			sh.ep.mTxErrors.Inc()
			txErrs++
			sent++
		}
	}
	sh.sock.mTx.Add(int64(len(ms)) - txErrs)
	for _, bp := range sh.egressBufs {
		sh.ep.putBuf(bp)
	}
	sh.egress = sh.egress[:0]
	sh.egressBufs = sh.egressBufs[:0]
}

// onPacket is the demux hot path: route by ConnID, validate the source,
// dispatch into the sans-IO engine.
func (sh *shard) onPacket(p *packet.Packet, from *net.UDPAddr) {
	c := sh.conns[p.ConnID]
	if c == nil {
		sh.acceptSYN(p, from)
		return
	}
	if !addrEqual(from, c.peer) {
		// The connection is bound to its handshake-time source address; a
		// known ConnID arriving from elsewhere — a NAT rebind, a
		// Wi-Fi→cellular roam, or spoofing — must not be trusted as-is.
		// With migration enabled the new address is challenged to prove
		// it hosts the peer (see migration.go); otherwise, or after a
		// failed challenge, it is rejected. Observably: the counter, the
		// per-conn tally (the migration-storm anomaly detector's input),
		// and the trace event — recorded through the connection's flight
		// recorder — let an operator distinguish "peer's address changed"
		// from silent loss.
		sh.onForeignPacket(c, p, from)
		return
	}
	c.lastRecv = sh.now
	switch p.Type {
	case packet.TypePathChallenge:
		// The peer is validating this path (its view of our address
		// changed): echo the token back. Path frames never reach the
		// engines — they carry no sequence or acknowledgment state.
		sh.onPathChallenge(c, p)
		return
	case packet.TypePathResponse:
		// On-path response with no probe outstanding toward this address
		// (we only probe *foreign* addresses): stale or duplicated. Drop.
		return
	}
	c.advance()
	if c.snd != nil {
		if a := p.Ack; a != nil && a.CumAck > c.snd.SentSeq() {
			// Misbehaving-receiver guard: an optimistic acknowledgment
			// claims bytes never sent; acting on it would inflate the
			// congestion controller (receiver-driven DoS).
			sh.ep.mBadFeedback.Inc()
			return
		}
		c.snd.OnPacket(p)
	}
	if c.rcv != nil {
		c.rcv.OnPacket(p)
	}
	if c.closing && p.Type == packet.TypeFINACK {
		sh.remove(c, nil) // graceful close confirmed
		return
	}
	sh.postDispatch(c, p)
}

// acceptSYN creates an embryonic server connection for an unknown ConnID.
// Non-SYN packets for unknown connections are demux drops.
func (sh *shard) acceptSYN(p *packet.Packet, from *net.UDPAddr) {
	if p.Type != packet.TypeSYN {
		sh.ep.mDemuxDrops.Inc()
		return
	}
	// from aliases pooled reader storage that is recycled after dispatch;
	// the connection outlives it, so it keeps its own copy.
	c := sh.ep.newConn(cloneAddr(from))
	c.id = p.ConnID
	c.sh = sh
	if !sh.ep.reserveID(c.id, c) {
		// A live local connection already owns this id (e.g. a dialed conn
		// not yet registered); treat the SYN as unroutable.
		sh.ep.mDemuxDrops.Inc()
		return
	}
	tcfg := sh.ep.cfg.Transport
	tcfg.ConnID = c.id
	c.attachRecorder(&tcfg)
	c.rcv = transport.NewReceiver(c.loop, tcfg, c.output)
	if m := c.rcv.Streams(); m != nil {
		// Stream reads drain per-stream windows on application
		// goroutines; route window-update wakeups through the shard.
		m.SetKick(func() { c.sh.kick(c) })
	}
	sh.conns[c.id] = c
	sh.ep.connAdded()
	c.advance()
	c.rcv.OnPacket(p) // emits the SYNACK
	c.nextHS = sh.now.Add(sh.ep.cfg.handshakeRetryRTO(0))
}

// postDispatch advances connection lifecycle after a packet was handled:
// handshake completion (gating Accept), then transfer completion.
func (sh *shard) postDispatch(c *Conn, p *packet.Packet) {
	if !c.established {
		if c.snd != nil && c.snd.Established() {
			sh.establish(c)
		} else if c.rcv != nil && p.Type != packet.TypeSYN {
			// Server side: the first post-SYN packet (handshake IACK or
			// data) proves the peer saw our SYNACK — handshake complete.
			sh.establish(c)
			select {
			case sh.ep.accept <- c:
				sh.ep.mAccepts.Inc()
			default:
				// Accept backlog full: shed the connection rather than
				// hold state nobody will claim.
				sh.ep.mAcceptDrops.Inc()
				sh.remove(c, ErrClosed)
				return
			}
		}
	}
	sh.checkDone(c)
}

func (sh *shard) establish(c *Conn) {
	c.established = true
	sh.ep.mHandshake.Observe(time.Since(c.created).Seconds())
	c.estOnce.Do(func() { close(c.estCh) })
}

// checkDone detects transfer completion. Sender connections are removed
// as soon as every byte is acknowledged; receiver connections linger for
// completeLinger so tail retransmissions still get re-acknowledged.
func (sh *shard) checkDone(c *Conn) {
	if c.closing {
		return
	}
	if c.snd != nil && c.snd.Done() {
		sh.remove(c, nil)
		return
	}
	if c.rcv != nil && c.rcv.Complete() && c.completeAt.IsZero() {
		c.completeAt = time.Now()
	}
}

// tick drives every connection's virtual clock forward and applies the
// lifecycle policies: linger expiry, embryo reaping, idle timeout,
// keepalive. It also runs the anomaly detectors and republishes each
// connection's observability snapshot on the snapshotRefresh cadence.
func (sh *shard) tick() {
	now := sh.now
	ep := sh.ep
	refresh := now.Sub(sh.lastSnap) >= snapshotRefresh
	if refresh {
		sh.lastSnap = now
	}
	for _, c := range sh.conns {
		c.advance()
		sh.checkDone(c)
		if sh.conns[c.id] != c {
			continue // removed by checkDone
		}
		switch {
		case c.closing && now.After(c.closeDeadline):
			sh.remove(c, nil) // FINACK never came; tear down anyway
		case !c.completeAt.IsZero() && now.Sub(c.completeAt) > completeLinger:
			sh.remove(c, nil)
		case !c.established && c.snd != nil && c.snd.HandshakeFailed():
			// The SYN retry budget is exhausted: fail the dial now
			// instead of letting it idle out the full HandshakeTimeout.
			ep.mReaped.Inc()
			sh.remove(c, ErrHandshakeTimeout)
		case !c.established && c.rcv != nil && now.Sub(c.created) > ep.cfg.HandshakeTimeout:
			// Stale embryo: the SYN's sender never completed the
			// handshake. (Dialed connections are governed by Dial's own
			// handshake timer and SYN retry budget.)
			ep.mReaped.Inc()
			sh.remove(c, ErrHandshakeTimeout)
		case !c.established && c.rcv != nil && c.hsRetries < ep.cfg.handshakeRetryBudget() && now.After(c.nextHS):
			// The embryo's SYNACK (or the client's follow-up) appears
			// lost; re-emit on the same doubling schedule the client's
			// SYN retransmission uses, within the same retry budget.
			c.hsRetries++
			if c.rcv.RetransmitSYNACK() {
				ep.mSynackRetrans.Inc()
			}
			c.nextHS = now.Add(ep.cfg.handshakeRetryRTO(c.hsRetries))
		case ep.cfg.IdleTimeout > 0 && c.established && now.Sub(c.lastRecv) > ep.cfg.IdleTimeout:
			ep.mReaped.Inc()
			sh.remove(c, ErrIdleTimeout)
		default:
			sh.maybeKeepalive(c, now)
		}
		if sh.conns[c.id] != c {
			continue // removed by a lifecycle arm above
		}
		if c.migState == pathProbing {
			sh.migrationTick(c, now)
		}
		sh.detectAnomalies(c, now)
		if refresh || c.snap.Load() == nil {
			sh.refreshSnapshot(c)
		}
	}
}

// maybeKeepalive emits a liveness-probe IACK on dialed connections that
// have been transmit-idle for a keepalive interval.
func (sh *shard) maybeKeepalive(c *Conn, now time.Time) {
	ka := sh.ep.cfg.KeepaliveInterval
	if ka <= 0 || c.snd == nil || !c.established || now.Sub(c.lastSent) < ka {
		return
	}
	c.output(&packet.Packet{
		Type: packet.TypeIACK, ConnID: c.id, SentAt: c.vnow(),
		IACK: packet.IACKKeepalive, AckOldestPktSeq: c.snd.OldestOutstanding(),
	})
}

// closeConn implements a user-initiated Close on the owning shard. A
// mid-transfer sender closes gracefully (FIN, linger for FINACK); all
// other shapes tear down immediately.
func (sh *shard) closeConn(c *Conn) {
	if sh.conns[c.id] != c {
		c.finish(nil) // already removed (or never registered)
		return
	}
	if c.snd != nil && c.established && !c.snd.Done() && !c.closing {
		c.advance()
		c.output(&packet.Packet{
			Type: packet.TypeFIN, ConnID: c.id, SentAt: c.vnow(),
			Seq: c.snd.SentSeq(),
		})
		c.closing = true
		c.closeDeadline = time.Now().Add(closeLinger)
		c.finish(nil)
		return
	}
	sh.remove(c, nil)
}

// remove deletes the connection from the shard table (idempotent) and
// signals its terminal state.
func (sh *shard) remove(c *Conn, err error) {
	if sh.conns[c.id] == c {
		delete(sh.conns, c.id)
		sh.ep.connRemoved()
	}
	sh.ep.releaseID(c.id)
	c.finish(err)
}

// shutdown finishes every connection when the endpoint closes, then
// drains queued control messages so pending Dial/Close callers unblock.
func (sh *shard) shutdown() {
	for id, c := range sh.conns {
		delete(sh.conns, id)
		sh.ep.connRemoved()
		sh.ep.releaseID(id)
		c.finish(ErrClosed)
	}
	for {
		select {
		case m := <-sh.in:
			if m.ipk != nil {
				sh.ep.putPacket(m.ipk)
			}
			if m.conn != nil {
				sh.ep.releaseID(m.conn.id)
				m.conn.finish(ErrClosed)
			}
		default:
			return
		}
	}
}

// addrEqual compares UDP source addresses (IP + port; IPv4 and its
// v6-mapped form compare equal).
func addrEqual(a, b *net.UDPAddr) bool {
	return a != nil && b != nil && a.Port == b.Port && a.IP.Equal(b.IP)
}

// cloneAddr deep-copies a UDP address so it can outlive pooled reader
// storage.
func cloneAddr(a *net.UDPAddr) *net.UDPAddr {
	ip := make(net.IP, len(a.IP))
	copy(ip, a.IP)
	return &net.UDPAddr{IP: ip, Port: a.Port, Zone: a.Zone}
}
