package endpoint

import (
	"fmt"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/transport"
)

// benchPair binds a server and client endpoint on loopback and returns
// them with a cleanup. The server drains accepted connections so their
// lifecycle machinery (linger, reaping) never blocks the accept queue.
func benchPair(b *testing.B, tcfg transport.Config) (*Endpoint, *Endpoint) {
	return benchPairCfg(b, Config{Transport: tcfg})
}

// benchPairCfg is benchPair with full endpoint-level configuration (used
// to toggle the flight recorder).
func benchPairCfg(b *testing.B, cfg Config) (*Endpoint, *Endpoint) {
	b.Helper()
	scfg := cfg
	scfg.HandshakeTimeout = 15 * time.Second
	srv, err := Listen("127.0.0.1:0", scfg)
	if err != nil {
		b.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			if _, err := srv.AcceptTimeout(time.Second); err != nil {
				select {
				case <-stop:
					return
				default:
				}
				if err == ErrClosed {
					return
				}
			}
		}
	}()
	b.Cleanup(func() {
		close(stop)
		cli.Close()
		srv.Close()
	})
	return srv, cli
}

// transfer dials one connection and waits for its bounded stream to
// complete.
func transfer(b *testing.B, srv, cli *Endpoint) {
	b.Helper()
	c, err := cli.Dial(srv.LocalAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Wait(60 * time.Second); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEndpointEcho measures the full datapath cost of a small
// transfer (handshake, 64 KiB of data, acknowledgments, FIN teardown)
// over real loopback UDP. allocs/op is the figure of merit: it counts
// every per-packet allocation in the read loop, codec, shard dispatch,
// and write path.
func BenchmarkEndpointEcho(b *testing.B) {
	const size = 64 << 10
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: size}
	srv, cli := benchPair(b, tcfg)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transfer(b, srv, cli)
	}
}

// BenchmarkEndpointThroughput measures sustained loopback goodput with a
// multi-megabyte bounded stream per iteration; bytes/s is the figure of
// merit.
func BenchmarkEndpointThroughput(b *testing.B) {
	const size = 4 << 20
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: size}
	srv, cli := benchPair(b, tcfg)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transfer(b, srv, cli)
	}
}

// BenchmarkEndpointThroughputNoRecorder is BenchmarkEndpointThroughput
// with the per-connection flight recorder disabled. The default run
// (recorder on) must stay within a few percent of this baseline —
// scripts/bench_smoke.sh gates the ratio — so always-on recording stays
// effectively free.
func BenchmarkEndpointThroughputNoRecorder(b *testing.B) {
	const size = 4 << 20
	srv, cli := benchPairCfg(b, Config{
		Transport:      transport.Config{Mode: transport.ModeTACK, TransferBytes: size},
		FlightRecorder: -1,
	})
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transfer(b, srv, cli)
	}
}

// BenchmarkEndpointThroughputFlows measures aggregate loopback goodput
// with N concurrent bounded streams per iteration — the shape `tackd
// -flows N` exercises, and the case batched socket I/O helps most (many
// connections' sends coalesce into one syscall).
func BenchmarkEndpointThroughputFlows(b *testing.B) {
	for _, flows := range []int{4, 8} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			const size = 1 << 20
			tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: size}
			srv, cli := benchPair(b, tcfg)
			b.SetBytes(int64(size * flows))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan error, flows)
				for f := 0; f < flows; f++ {
					go func() {
						c, err := cli.Dial(srv.LocalAddr().String())
						if err != nil {
							done <- err
							return
						}
						done <- c.Wait(60 * time.Second)
					}()
				}
				for f := 0; f < flows; f++ {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
