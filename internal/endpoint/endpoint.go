// Package endpoint implements a concurrent multi-connection UDP endpoint:
// one socket serving many TACK connections, demultiplexed by the wire
// format's connection id (packet.ConnID).
//
// This is the deployment shape of the paper's user-mode stack (§5.4) grown
// from "one socket, one flow" to a server: QUIC-style endpoints show the
// pattern — a handshake-gated accept queue and per-connection state behind
// a single UDP socket.
//
// Architecture:
//
//	          ┌──────────────┐    hash(ConnID) % N     ┌─────────────┐
//	UDP ───▶  │ read goroutine│ ───────────────────▶   │  shard 0..N │
//	socket    │ (unmarshal)  │     bounded channel     │  goroutine  │
//	          └──────────────┘  (overflow == drop: the └─────────────┘
//	                             protocol is loss-       │ owns conns
//	                             tolerant)               │ map + loops
//	                                                     ▼
//	                                        per-conn sans-IO Sender /
//	                                        Receiver on a private
//	                                        sim.Loop pinned to wall time
//
// Each connection's protocol engine runs on exactly one shard goroutine —
// the engines keep their single-threaded discipline, and the dispatch hot
// path needs no lock at all: routing is a pure hash of the connection id
// and every shard owns its connection table exclusively. Cross-goroutine
// operations (Dial registration, user Close) travel through the shard's
// channel as control messages.
//
// Lifecycle: inbound SYNs create embryonic connections that reach Accept
// only once the handshake completes (first non-SYN packet); Dial blocks
// until the SYN/SYNACK exchange finishes; Close performs a graceful
// FIN/FINACK teardown; idle connections and stale embryos are reaped by a
// per-shard timer. A shared endpoint must also sanity-check receiver
// feedback before acting on it (cf. misbehaving-receiver / optimistic-ACK
// attacks): acknowledgments claiming bytes that were never sent are
// dropped and counted instead of inflating the congestion controller.
package endpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tacktp/tack/internal/batchio"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// Datapath batching parameters.
const (
	// readBatchSize bounds how many datagrams one recvmmsg drains; under
	// load a single syscall amortizes across the whole batch.
	readBatchSize = 32
	// maxDatagram is the largest decodable datagram (a payload length is
	// 16 bits, so the wire format tops out just past 64 KiB).
	maxDatagram = 64 << 10
	// egressBatchSize bounds a shard's send queue: a connection's
	// pacing-tick burst coalesces into one sendmmsg up to this size.
	egressBatchSize = 32
)

// inPacket is a pooled inbound unit: a decoded packet plus a stable copy
// of its source address (the batch reader's own sockaddr slots are
// overwritten by the next batch, so the address must travel with the
// packet into the shard). The packet's payload/ack storage is recycled
// through the pool, making the steady-state ingress path allocation-free.
type inPacket struct {
	pkt  packet.Packet
	from net.UDPAddr
	ip   [16]byte // backing array for from.IP
}

// setFrom copies addr into the pooled address slot.
func (ip *inPacket) setFrom(addr *net.UDPAddr) {
	n := copy(ip.ip[:], addr.IP)
	ip.from.IP = ip.ip[:n]
	ip.from.Port = addr.Port
	ip.from.Zone = ""
}

// Sentinel errors returned by endpoint operations.
var (
	// ErrClosed reports that the endpoint (or the connection's endpoint)
	// was closed.
	ErrClosed = errors.New("endpoint: closed")
	// ErrHandshakeTimeout reports that a dialed connection saw no SYNACK
	// within Config.HandshakeTimeout.
	ErrHandshakeTimeout = errors.New("endpoint: handshake timeout")
	// ErrIdleTimeout reports that a connection was reaped after
	// Config.IdleTimeout without inbound traffic.
	ErrIdleTimeout = errors.New("endpoint: idle timeout")
	// ErrDeadline reports that a wait's deadline elapsed.
	ErrDeadline = errors.New("endpoint: deadline exceeded")
)

// Config parameterizes an Endpoint.
type Config struct {
	// Transport is the per-connection template; ConnID is overwritten per
	// connection. Accepted connections run the Receiver half, dialed
	// connections the Sender half, both built from this template.
	Transport transport.Config
	// Shards is the number of worker goroutines connections are pinned to
	// (by ConnID hash). Default min(GOMAXPROCS, 8) rounded down to a
	// power of two (a power-of-two count keeps the demux hot path on a
	// mask instead of a modulo), and never below Sockets so every group
	// member owns at least one shard's egress.
	Shards int
	// Sockets is the size of the endpoint's SO_REUSEPORT socket group: N
	// UDP sockets bound to the same address, each with its own batched
	// read loop, so inbound demux scales past one goroutine. Default 1
	// (single socket, today's behavior). Values > 1 require platform
	// support (Linux); elsewhere the endpoint silently falls back to one
	// socket — read the effective size back with SocketCount. Connections
	// are steered by ConnID to a shard wherever their packets arrive, and
	// reply from the owning shard's socket (see DESIGN.md "Socket
	// groups").
	Sockets int
	// AcceptBacklog bounds the handshake-gated accept queue (default 128).
	// Connections completing their handshake while the queue is full are
	// dropped and counted (ep.accept_drops).
	AcceptBacklog int
	// IdleTimeout reaps established connections after this long without
	// inbound traffic. Default 30s; negative disables.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds both Dial's wait for a SYNACK and the
	// lifetime of embryonic (accepted-but-unestablished) server state.
	// Default 5s.
	HandshakeTimeout time.Duration
	// KeepaliveInterval, when positive, makes dialed (sender) connections
	// emit a keepalive IACK after this long without transmitting, keeping
	// the peer's idle reaper at bay during app-paced silences.
	KeepaliveInterval time.Duration
	// HandshakeRTO, when positive, overrides the transport's initial
	// handshake retransmission timeout (Transport.HandshakeRTO, default
	// 250ms) for both dialed SYNs and embryo SYNACK re-emission. The
	// timeout doubles per retry.
	HandshakeRTO time.Duration
	// MaxHandshakeRetries, when non-zero, overrides the handshake
	// retransmission budget (Transport.MaxSYNRetries, default 8) for both
	// sides: a dialed connection whose budget is exhausted fails with
	// ErrHandshakeTimeout without waiting out HandshakeTimeout, and an
	// embryo stops re-emitting SYNACKs. Negative disables retransmission.
	MaxHandshakeRetries int
	// EnableMigration turns on QUIC-style path validation for established
	// connections: a known ConnID arriving from a new address starts a
	// PATH_CHALLENGE probe of that address instead of being rejected
	// outright, and a matching PATH_RESPONSE migrates the connection (see
	// migration.go and DESIGN.md "Path migration"). Off by default: the
	// connection stays bound to its handshake-time source address and
	// foreign packets are rejected (ep.migration_rejected). Answering
	// on-path challenges from the peer is always on — the knob gates only
	// whether this endpoint initiates probes.
	EnableMigration bool
	// Metrics registers endpoint-level instruments (nil falls back to
	// Transport.Metrics; both nil disables).
	Metrics *telemetry.Registry
	// FlightRecorder sizes the per-connection flight-recorder ring
	// (telemetry events, overwrite-oldest). 0 selects
	// telemetry.DefaultRingSize; negative disables the recorder. The
	// recorder is always on otherwise — even with no Tracer configured —
	// so anomaly post-mortems capture the events leading up to a wedge.
	FlightRecorder int
	// PostMortemDir, when non-empty, is where anomaly detectors dump a
	// connection's flight-recorder ring as a JSONL post-mortem file
	// (postmortem-conn<id>-<class>.jsonl, readable by cmd/tacktrace).
	// Empty disables dumps; detection still counts and traces.
	PostMortemDir string
	// DebugAddr, when non-empty, is the address the tack facade serves
	// the debug HTTP endpoint on (/metrics, /debug/pprof/,
	// /debug/tack/conns). The endpoint package itself does not open the
	// listener — package tack wires it to avoid a dependency cycle.
	DebugAddr string
	// StallRTOs is the no-progress stall detector's threshold in
	// multiples of the (backoff-free) RTO. Default 4.
	StallRTOs int
	// RetxStormThreshold is how many retransmissions within one rolling
	// second fire the retransmission-storm anomaly. Default 50.
	RetxStormThreshold int
}

func (c Config) withDefaults() Config {
	if c.Sockets < 1 {
		c.Sockets = 1
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
		c.Shards = floorPow2(c.Shards)
		if c.Shards < c.Sockets {
			// Every socket should own at least one shard's egress.
			c.Shards = c.Sockets
		}
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 128
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = c.Transport.Metrics
	}
	if c.StallRTOs <= 0 {
		c.StallRTOs = 4
	}
	if c.RetxStormThreshold <= 0 {
		c.RetxStormThreshold = 50
	}
	// Fold the endpoint-level handshake overrides into the transport
	// template once, so every per-connection copy inherits them.
	if c.HandshakeRTO > 0 {
		c.Transport.HandshakeRTO = sim.Time(c.HandshakeRTO)
	}
	if c.MaxHandshakeRetries != 0 {
		c.Transport.MaxSYNRetries = c.MaxHandshakeRetries
	}
	return c
}

// handshakeRetryRTO returns the embryo SYNACK retransmission timeout for
// the given retry count: the handshake RTO doubled per retry, clamped to
// HandshakeTimeout (beyond which the embryo reaper wins anyway).
func (c Config) handshakeRetryRTO(retries int) time.Duration {
	rto := time.Duration(c.Transport.HandshakeRTO)
	if rto <= 0 {
		rto = 250 * time.Millisecond
	}
	for i := 0; i < retries; i++ {
		rto *= 2
		if rto >= c.HandshakeTimeout {
			return c.HandshakeTimeout
		}
	}
	return rto
}

// handshakeRetryBudget returns the SYNACK retransmission cap for embryos.
func (c Config) handshakeRetryBudget() int {
	switch n := c.Transport.MaxSYNRetries; {
	case n < 0:
		return 0
	case n == 0:
		return 8
	default:
		return n
	}
}

// floorPow2 rounds n down to the nearest power of two (minimum 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// Endpoint is a multi-connection UDP endpoint: a socket group (one
// socket by default), many connections demultiplexed by ConnID across
// sharded worker loops.
type Endpoint struct {
	cfg   Config
	socks []*epSocket

	shards []*shard
	// shardMask is len(shards)-1 when the count is a power of two (the
	// mask fast path of shardFor); shardPow2 gates it.
	shardMask uint32
	shardPow2 bool
	accept    chan *Conn

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// ConnID allocation (cold path).
	mu   sync.Mutex
	rng  *rand.Rand
	used map[uint32]*Conn

	nConns atomic.Int64

	// Datapath freelists: decoded inbound packets (reader → shard → back)
	// and encoded egress datagrams (shard → kernel → back).
	pktPool sync.Pool
	bufPool sync.Pool

	// Shutdown hooks (facade-attached debug server, etc.); run once
	// after the workers drain.
	hookMu    sync.Mutex
	onClose   []func()
	hooksOnce sync.Once

	// Endpoint telemetry (nil-safe).
	mConns             *telemetry.Gauge
	mSockets           *telemetry.Gauge
	mRxPackets         *telemetry.Counter
	mRxGarbage         *telemetry.Counter
	mRxErrors          *telemetry.Counter
	mRxCorrupt         *telemetry.Counter
	mTxErrors          *telemetry.Counter
	mDemuxDrops        *telemetry.Counter
	mMigrationRejected *telemetry.Counter
	mMigProbes         *telemetry.Counter
	mMigCompleted      *telemetry.Counter
	mMigFailed         *telemetry.Counter
	mSynackRetrans     *telemetry.Counter
	mAcceptDrops       *telemetry.Counter
	mBadFeedback       *telemetry.Counter
	mReaped            *telemetry.Counter
	mDials             *telemetry.Counter
	mAccepts           *telemetry.Counter
	mHandshake         *telemetry.Histogram
	// Anomaly counters, indexed like anomalyClasses, plus post-mortem
	// dump accounting and the aggregated ACK-overhead gauge.
	mAnomaly         [len(anomalyClasses)]*telemetry.Counter
	mAnomalyDumps    *telemetry.Counter
	mAnomalyDumpErrs *telemetry.Counter
	mAckOverhead     *telemetry.Gauge

	// Batched-datapath telemetry: syscall batch sizes and freelist hit
	// rates (hit rate = 1 - misses/gets).
	mBatchRead     *telemetry.Histogram
	mBatchWrite    *telemetry.Histogram
	mPktPoolGets   *telemetry.Counter
	mPktPoolMisses *telemetry.Counter
	mBufPoolGets   *telemetry.Counter
	mBufPoolMisses *telemetry.Counter
}

// getPacket takes a decoded-packet slot from the freelist.
func (ep *Endpoint) getPacket() *inPacket {
	ep.mPktPoolGets.Inc()
	return ep.pktPool.Get().(*inPacket)
}

// putPacket recycles a slot (its payload/ack storage rides along).
func (ep *Endpoint) putPacket(p *inPacket) { ep.pktPool.Put(p) }

// getBuf takes an egress datagram buffer from the freelist.
func (ep *Endpoint) getBuf() *[]byte {
	ep.mBufPoolGets.Inc()
	return ep.bufPool.Get().(*[]byte)
}

// putBuf recycles an egress buffer (retaining any grown capacity).
func (ep *Endpoint) putBuf(b *[]byte) { ep.bufPool.Put(b) }

// Listen binds the endpoint's socket group on laddr (Config.Sockets
// SO_REUSEPORT members; one plain socket by default) and starts a read
// loop per socket plus the shard workers. The endpoint both accepts
// inbound connections (Accept) and originates outbound ones (Dial) over
// the same group.
func Listen(laddr string, cfg Config) (*Endpoint, error) {
	if err := cfg.Transport.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.EnableMigration && cfg.IdleTimeout > 0 && cfg.IdleTimeout <= migrationTimeout {
		// A probing episode starves the connection of dispatched packets
		// for up to migrationTimeout; an idle reaper tighter than that
		// would tear the connection down mid-validation.
		return nil, fmt.Errorf("endpoint: IdleTimeout %v must exceed the %v path-validation window when EnableMigration is set",
			cfg.IdleTimeout, migrationTimeout)
	}
	socks, err := batchio.ListenReusePortGroup("udp", laddr, cfg.Sockets)
	if err != nil {
		return nil, fmt.Errorf("endpoint: listen %q: %w", laddr, err)
	}
	// The platform fallback may have clamped the group; everything below
	// sizes off the effective count.
	cfg.Sockets = len(socks)
	ep := &Endpoint{
		cfg:    cfg,
		accept: make(chan *Conn, cfg.AcceptBacklog),
		stop:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		used:   map[uint32]*Conn{},
	}
	reg := cfg.Metrics
	ep.socks = make([]*epSocket, len(socks))
	for i, uc := range socks {
		// The socket carries many connections: newEpSocket grows the
		// kernel buffers so concurrent initial windows don't silently
		// vanish before its read loop drains them (best-effort; the OS
		// may clamp).
		ep.socks[i] = newEpSocket(i, uc, reg)
	}
	ep.mConns = reg.Gauge("ep.conns")
	ep.mSockets = reg.Gauge("ep.sock.count")
	ep.mSockets.Set(float64(len(ep.socks)))
	ep.mRxPackets = reg.Counter("ep.rx_packets")
	ep.mRxGarbage = reg.Counter("ep.rx_garbage")
	ep.mRxErrors = reg.Counter("ep.rx_err")
	ep.mRxCorrupt = reg.Counter("ep.rx_corrupt")
	ep.mTxErrors = reg.Counter("ep.tx_errors")
	ep.mDemuxDrops = reg.Counter("ep.demux_drops")
	ep.mMigrationRejected = reg.Counter("ep.migration_rejected")
	ep.mMigProbes = reg.Counter("ep.migration.probes")
	ep.mMigCompleted = reg.Counter("ep.migration.completed")
	ep.mMigFailed = reg.Counter("ep.migration.failed")
	ep.mSynackRetrans = reg.Counter("ep.synack_retransmits")
	ep.mAcceptDrops = reg.Counter("ep.accept_drops")
	ep.mBadFeedback = reg.Counter("ep.bad_feedback")
	ep.mReaped = reg.Counter("ep.reaped")
	ep.mDials = reg.Counter("ep.dials")
	ep.mAccepts = reg.Counter("ep.accepts")
	ep.mHandshake = reg.Histogram("ep.handshake_s")
	ep.mAnomaly[anomalyIndex(telemetry.TrigStall)] = reg.Counter("ep.anomaly.stall")
	ep.mAnomaly[anomalyIndex(telemetry.TrigRetxStorm)] = reg.Counter("ep.anomaly.retx_storm")
	ep.mAnomaly[anomalyIndex(telemetry.TrigWndExhaust)] = reg.Counter("ep.anomaly.wnd_exhaust")
	ep.mAnomaly[anomalyIndex(telemetry.TrigMigStorm)] = reg.Counter("ep.anomaly.mig_storm")
	ep.mAnomalyDumps = reg.Counter("ep.anomaly.dumps")
	ep.mAnomalyDumpErrs = reg.Counter("ep.anomaly.dump_errors")
	ep.mAckOverhead = reg.Gauge("ep.ack_overhead_bytes_per_mb")
	ep.mBatchRead = reg.Histogram("ep.batch.read_size")
	ep.mBatchWrite = reg.Histogram("ep.batch.write_size")
	ep.mPktPoolGets = reg.Counter("ep.batch.pkt_pool_gets")
	ep.mPktPoolMisses = reg.Counter("ep.batch.pkt_pool_misses")
	ep.mBufPoolGets = reg.Counter("ep.batch.buf_pool_gets")
	ep.mBufPoolMisses = reg.Counter("ep.batch.buf_pool_misses")
	ep.pktPool.New = func() any {
		ep.mPktPoolMisses.Inc()
		return &inPacket{}
	}
	ep.bufPool.New = func() any {
		ep.mBufPoolMisses.Inc()
		b := make([]byte, 0, 2048)
		return &b
	}

	// Shard→socket egress binding: shard i replies through socket
	// i % Sockets, so a connection pinned to a shard always transmits
	// from the same group member (reply-from-owner). Socket counts are
	// powers of two in the defaulted path, but modulo is fine here —
	// this runs once at setup, not per packet.
	ep.shards = make([]*shard, cfg.Shards)
	for i := range ep.shards {
		ep.shards[i] = newShard(ep, ep.socks[i%len(ep.socks)])
	}
	if n := uint32(len(ep.shards)); n&(n-1) == 0 {
		ep.shardMask, ep.shardPow2 = n-1, true
	}
	for _, sh := range ep.shards {
		ep.wg.Add(1)
		go sh.run()
	}
	for _, s := range ep.socks {
		ep.wg.Add(1)
		go ep.readLoop(s)
	}
	return ep, nil
}

// LocalAddr returns the bound UDP address (every socket-group member
// shares it).
func (ep *Endpoint) LocalAddr() *net.UDPAddr { return ep.socks[0].uc.LocalAddr().(*net.UDPAddr) }

// ConnCount returns the number of live connections (including embryonic
// and draining ones).
func (ep *Endpoint) ConnCount() int { return int(ep.nConns.Load()) }

// shardFor routes a connection id to its shard (Knuth multiplicative
// hash; pure function, no lock — this is the demux hot path, run by
// every socket's read loop). Power-of-two shard counts — the defaulted
// configuration — take the mask path; the xor-fold spreads the hash's
// well-mixed high bits into the low bits the mask keeps.
func (ep *Endpoint) shardFor(id uint32) *shard {
	h := id * 2654435761
	h ^= h >> 16
	if ep.shardPow2 {
		return ep.shards[h&ep.shardMask]
	}
	return ep.shards[h%uint32(len(ep.shards))]
}

// readLoop pulls datagram batches off one socket-group member (one
// recvmmsg per batch on Linux), decodes each into a pooled packet, and
// routes them to the owning shard — which may be bound to a different
// socket: accept-anywhere, reply-from-owner. Overflowing a shard's
// channel drops the packet (backpressure surfaces as loss; the protocol
// recovers). The pooled packet travels into the shard, which returns it
// to the freelist after dispatch — the reader itself never allocates in
// steady state.
func (ep *Endpoint) readLoop(sock *epSocket) {
	defer ep.wg.Done()
	rd := sock.bconn.NewReader(readBatchSize, maxDatagram)
	var backoff time.Duration
	for {
		ms, err := rd.ReadBatch()
		if err != nil {
			if ep.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient socket error: count it and retry with exponential
			// backoff so a persistent failure (a wedged deadline, a bad
			// fd) degrades to a throttled retry loop instead of spinning
			// a core.
			ep.mRxErrors.Inc()
			backoff = nextReadBackoff(backoff)
			select {
			case <-ep.stop:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		ep.mBatchRead.Observe(float64(len(ms)))
		sock.mBatchRead.Observe(float64(len(ms)))
		for i := range ms {
			// The CRC32-C frame trailer (see frame.go) catches any
			// userspace corruption of the datagram content; a mismatch
			// is dropped here, before the decoder runs, and recovered by
			// the loss machinery like any other dropped packet.
			if ms[i].N < frameTrailerLen {
				ep.mRxGarbage.Inc()
				sock.mDrops.Inc()
				continue
			}
			body, ok := checkFrameCRC(ms[i].Buf[:ms[i].N])
			if !ok {
				ep.mRxCorrupt.Inc()
				sock.mDrops.Inc()
				continue
			}
			ipk := ep.getPacket()
			if err := packet.DecodeInto(&ipk.pkt, body); err != nil {
				ep.mRxGarbage.Inc()
				sock.mDrops.Inc()
				ep.putPacket(ipk)
				continue
			}
			// Defense in depth behind the CRC: reject internally
			// inconsistent packets (a hostile sender passes the CRC, the
			// trailer only proves the bytes arrived as sent) before their
			// fields reach protocol state (see packet.Sane).
			if err := ipk.pkt.Sane(); err != nil {
				ep.mRxCorrupt.Inc()
				sock.mDrops.Inc()
				ep.putPacket(ipk)
				continue
			}
			ipk.setFrom(ms[i].Addr)
			ep.mRxPackets.Inc()
			sock.mRx.Inc()
			sh := ep.shardFor(ipk.pkt.ConnID)
			select {
			case sh.in <- shardMsg{op: opPacket, ipk: ipk}:
			default:
				ep.mDemuxDrops.Inc()
				sock.mDrops.Inc()
				ep.putPacket(ipk)
			}
		}
	}
}

// Accept blocks until an inbound connection completes its handshake, the
// endpoint closes (ErrClosed), or — when deadline > 0 — the deadline
// elapses (ErrDeadline).
func (ep *Endpoint) Accept() (*Conn, error) { return ep.AcceptTimeout(0) }

// AcceptTimeout is Accept with a bound on the wait (0 = no bound).
func (ep *Endpoint) AcceptTimeout(d time.Duration) (*Conn, error) {
	var deadline <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case c := <-ep.accept:
		return c, nil
	case <-ep.stop:
		return nil, ErrClosed
	case <-deadline:
		return nil, ErrDeadline
	}
}

// Dial opens a sending connection to raddr using the endpoint's transport
// template and blocks until the handshake completes (or
// Config.HandshakeTimeout / endpoint close aborts it). The transfer
// itself — bounded by Transport.TransferBytes or app-paced — starts
// immediately after establishment; wait for completion with Conn.Wait.
func (ep *Endpoint) Dial(raddr string) (*Conn, error) { return ep.dial(raddr, false) }

func (ep *Endpoint) dial(raddr string, owns bool) (*Conn, error) {
	c, err := ep.newSenderConn(raddr, ep.cfg.Transport)
	if err != nil {
		return nil, err
	}
	c.ownsEndpoint = owns
	if err := ep.register(c); err != nil {
		ep.releaseID(c.id)
		return nil, err
	}
	ep.mDials.Inc()
	t := time.NewTimer(ep.cfg.HandshakeTimeout)
	defer t.Stop()
	select {
	case <-c.estCh:
		return c, nil
	case <-c.doneCh:
		return nil, c.waitErr()
	case <-t.C:
		c.Close()
		<-c.doneCh // teardown is complete before reporting failure
		return nil, ErrHandshakeTimeout
	case <-ep.stop:
		return nil, ErrClosed
	}
}

// newSenderConn builds (without registering) a sending connection toward
// raddr with a freshly allocated connection id.
func (ep *Endpoint) newSenderConn(raddr string, tcfg transport.Config) (*Conn, error) {
	ra, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("endpoint: resolve %q: %w", raddr, err)
	}
	c := ep.newConn(ra)
	c.id = ep.allocID(c)
	c.sh = ep.shardFor(c.id)
	tcfg.ConnID = c.id
	c.attachRecorder(&tcfg)
	snd, err := transport.NewSender(c.loop, tcfg, c.output)
	if err != nil {
		ep.releaseID(c.id)
		return nil, err
	}
	c.snd = snd
	if m := snd.Streams(); m != nil {
		// Stream writes land on application goroutines; route their
		// wakeups through the shard instead of the conn's private loop.
		m.SetKick(func() { c.sh.kick(c) })
	}
	return c, nil
}

// allocID reserves a locally unique non-zero connection id for c.
func (ep *Endpoint) allocID(c *Conn) uint32 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		id := ep.rng.Uint32()
		if id == 0 {
			continue
		}
		if _, taken := ep.used[id]; taken {
			continue
		}
		ep.used[id] = c
		return id
	}
}

// reserveID claims an inbound (peer-chosen) id; reports false when a live
// connection already owns it.
func (ep *Endpoint) reserveID(id uint32, c *Conn) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if _, taken := ep.used[id]; taken {
		return false
	}
	ep.used[id] = c
	return true
}

func (ep *Endpoint) releaseID(id uint32) {
	ep.mu.Lock()
	delete(ep.used, id)
	ep.mu.Unlock()
}

// register hands a dialed connection to its owning shard, which starts
// the handshake on its loop.
func (ep *Endpoint) register(c *Conn) error {
	select {
	case c.sh.in <- shardMsg{op: opRegister, conn: c}:
		return nil
	case <-ep.stop:
		return ErrClosed
	}
}

// connAdded / connRemoved maintain the live-connection count and gauge.
// Called only from shard goroutines; the gauge tolerates the benign race
// between shards (last write wins on a monotonic-enough signal).
func (ep *Endpoint) connAdded()   { ep.mConns.Set(float64(ep.nConns.Add(1))) }
func (ep *Endpoint) connRemoved() { ep.mConns.Set(float64(ep.nConns.Add(-1))) }

func (ep *Endpoint) isClosed() bool {
	select {
	case <-ep.stop:
		return true
	default:
		return false
	}
}

// OnClose registers fn to run once after the endpoint has fully shut
// down (workers drained). The tack facade uses it to stop the debug
// HTTP server with the endpoint. Hooks registered after Close may run
// immediately on the caller's goroutine.
func (ep *Endpoint) OnClose(fn func()) {
	ep.hookMu.Lock()
	ep.onClose = append(ep.onClose, fn)
	ep.hookMu.Unlock()
}

// Close shuts the endpoint down: every group socket closes, shard
// workers finish every connection (their Wait unblocks with ErrClosed),
// and Accept/Dial return ErrClosed. Safe to call multiple times.
func (ep *Endpoint) Close() error {
	ep.closeOnce.Do(func() {
		close(ep.stop)
		for _, s := range ep.socks {
			s.uc.Close()
		}
	})
	ep.wg.Wait()
	ep.hooksOnce.Do(func() {
		ep.hookMu.Lock()
		hooks := ep.onClose
		ep.hookMu.Unlock()
		for _, fn := range hooks {
			fn()
		}
	})
	return nil
}

// Metrics returns the endpoint's metrics registry (possibly nil).
func (ep *Endpoint) Metrics() *telemetry.Registry { return ep.cfg.Metrics }
