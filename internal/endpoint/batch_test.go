package endpoint

import (
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// TestBatchTelemetry drives concurrent flows through one socket pair and
// asserts the batched datapath is observably working: batch-size
// histograms populated (with multi-datagram batches on platforms that
// support recvmmsg/sendmmsg), and the packet/buffer freelists getting
// reused rather than allocating fresh (hit rate = 1 - misses/gets).
func TestBatchTelemetry(t *testing.T) {
	const (
		flows = 4
		size  = 256 << 10
	)
	mkReg := func() (*telemetry.Registry, transport.Config) {
		reg := telemetry.NewRegistry()
		return reg, transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: reg}
	}
	srvReg, srvCfg := mkReg()
	cliReg, cliCfg := mkReg()

	srv, err := Listen("127.0.0.1:0", Config{Transport: srvCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Listen("127.0.0.1:0", Config{Transport: cliCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for i := 0; i < flows; i++ {
			if _, err := srv.AcceptTimeout(10 * time.Second); err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := cli.Dial(srv.LocalAddr().String())
			if err != nil {
				t.Error(err)
				return
			}
			if err := c.Wait(30 * time.Second); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	acceptWG.Wait()

	for _, side := range []struct {
		name string
		reg  *telemetry.Registry
	}{{"server", srvReg}, {"client", cliReg}} {
		s := side.reg.Snapshot()
		rd, wr := s.Histograms["ep.batch.read_size"], s.Histograms["ep.batch.write_size"]
		if rd.Count == 0 {
			t.Errorf("%s: ep.batch.read_size never observed", side.name)
		}
		if wr.Count == 0 {
			t.Errorf("%s: ep.batch.write_size never observed", side.name)
		}
		gets, misses := s.Counters["ep.batch.pkt_pool_gets"], s.Counters["ep.batch.pkt_pool_misses"]
		if gets == 0 {
			t.Errorf("%s: packet pool never used", side.name)
		} else if misses >= gets {
			t.Errorf("%s: packet pool never hit (gets=%d misses=%d)", side.name, gets, misses)
		}
		bgets, bmisses := s.Counters["ep.batch.buf_pool_gets"], s.Counters["ep.batch.buf_pool_misses"]
		if bgets == 0 {
			t.Errorf("%s: egress buffer pool never used", side.name)
		} else if bmisses >= bgets {
			t.Errorf("%s: egress buffer pool never hit (gets=%d misses=%d)", side.name, bgets, bmisses)
		}
		if srv.socks[0].bconn.Batched() {
			// recvmmsg/sendmmsg platform: concurrent flows through one
			// socket must produce at least one multi-datagram batch.
			if rd.Max <= 1 && wr.Max <= 1 {
				t.Errorf("%s: no batch larger than 1 datagram (read max %.0f, write max %.0f)",
					side.name, rd.Max, wr.Max)
			}
		}
	}
}
