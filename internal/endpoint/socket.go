package endpoint

import (
	"fmt"
	"net"
	"time"

	"github.com/tacktp/tack/internal/batchio"
	"github.com/tacktp/tack/internal/telemetry"
)

// epSocket is one member of the endpoint's socket group: a UDP socket
// with its own batched-I/O wrapper, read-loop goroutine, and per-socket
// telemetry. With Config.Sockets == 1 (the default) the group has a
// single member and the datapath is exactly the pre-group shape.
//
// Steering invariant (see DESIGN.md "Socket groups"): the kernel's
// SO_REUSEPORT flow hash may deliver a connection's packets to any
// member (accept-anywhere; a fixed 4-tuple always lands on the same
// one), but the connection is pinned to the shard its ConnID hashes to,
// and every reply leaves through that shard's bound socket
// (reply-from-owner). All members share one local port, so the peer
// observes a single stable address either way.
type epSocket struct {
	idx   int
	uc    *net.UDPConn
	bconn *batchio.Conn

	// Per-socket telemetry (ep.sock.<idx>.*): receive/transmit packet
	// counts, datagrams dropped before dispatch (garbage, corrupt, or
	// shard-queue overflow), and syscall batch-size histograms — the
	// inputs tackstat's socket table and any imbalance diagnosis need.
	mRx         *telemetry.Counter
	mTx         *telemetry.Counter
	mDrops      *telemetry.Counter
	mBatchRead  *telemetry.Histogram
	mBatchWrite *telemetry.Histogram
}

// newEpSocket wraps one bound UDP socket for the group, growing its
// kernel buffers (many connections share it) and registering the
// per-socket instruments.
func newEpSocket(idx int, uc *net.UDPConn, reg *telemetry.Registry) *epSocket {
	uc.SetReadBuffer(4 << 20)
	uc.SetWriteBuffer(4 << 20)
	return &epSocket{
		idx:         idx,
		uc:          uc,
		bconn:       batchio.New(uc),
		mRx:         reg.Counter(socketCounterName(idx, "rx_packets")),
		mTx:         reg.Counter(socketCounterName(idx, "tx_packets")),
		mDrops:      reg.Counter(socketCounterName(idx, "rx_drops")),
		mBatchRead:  reg.Histogram(socketCounterName(idx, "batch.read_size")),
		mBatchWrite: reg.Histogram(socketCounterName(idx, "batch.write_size")),
	}
}

// socketCounterName is the registered name of a per-socket instrument:
// ep.sock.<idx>.<name>. Consumers (tackstat's socket table, tests)
// reconstruct the group's names from ep.sock.count.
func socketCounterName(idx int, name string) string {
	return fmt.Sprintf("ep.sock.%d.%s", idx, name)
}

// SocketCount returns the effective socket-group size: Config.Sockets
// after platform clamping (1 wherever SO_REUSEPORT is unavailable).
func (ep *Endpoint) SocketCount() int { return len(ep.socks) }

// Read-loop error backoff bounds. A persistent non-ErrClosed socket
// error (e.g. a stuck deadline, an EBADF from fd mishandling) must not
// busy-loop the reader at 100% CPU; retries back off exponentially from
// readBackoffMin to readBackoffMax and reset on the first success.
const (
	readBackoffMin = time.Millisecond
	readBackoffMax = 100 * time.Millisecond
)

// nextReadBackoff returns the delay to wait after a read error given the
// previous delay (0 = first error since a successful read).
func nextReadBackoff(prev time.Duration) time.Duration {
	if prev < readBackoffMin {
		return readBackoffMin
	}
	if prev >= readBackoffMax/2 {
		return readBackoffMax
	}
	return prev * 2
}
