package endpoint

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// TestSwarmLifecycleChurn is the -race miniature of `tackbench swarm`:
// a 4-socket server group under connection churn from a pool of client
// endpoints — some connections run their bounded transfer to
// completion, every third one is torn down mid-flight. The invariants
// are lifecycle-structural: no goroutine leaks once everything closes,
// every connection drains (ConnCount returns to zero on both sides),
// and completed transfers still complete exactly despite the churn
// around them.
func TestSwarmLifecycleChurn(t *testing.T) {
	const (
		clients = 4
		rounds  = 6
		perCli  = 4 // conns dialed per client per round
		size    = 4 << 10
	)
	before := runtime.NumGoroutine()

	reg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", Config{
		Transport:     transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: reg},
		Sockets:       4,
		AcceptBacklog: 256,
		IdleTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := srv.Accept(); err != nil {
				return
			}
		}
	}()

	clis := make([]*Endpoint, clients)
	for i := range clis {
		clis[i], err = Listen("127.0.0.1:0", Config{
			Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: size},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*perCli)
	for _, cli := range clis {
		wg.Add(1)
		go func(cli *Endpoint) {
			defer wg.Done()
			n := 0
			for r := 0; r < rounds; r++ {
				for i := 0; i < perCli; i++ {
					c, err := cli.Dial(srv.LocalAddr().String())
					if err != nil {
						errs <- err
						return
					}
					n++
					if n%3 == 0 {
						// Churn: abandon this transfer mid-flight. Teardown
						// must be clean on both sides.
						c.Close()
						continue
					}
					if err := c.Wait(30 * time.Second); err != nil {
						errs <- err
						return
					}
				}
			}
		}(cli)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every connection must drain from both endpoints' tables — closed
	// ones via FIN teardown, the rest after transfer completion (the
	// server side may briefly linger; poll with a deadline).
	drained := func(ep *Endpoint) bool { return ep.ConnCount() == 0 }
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ok := drained(srv)
		for _, cli := range clis {
			ok = ok && drained(cli)
		}
		if ok {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, cli := range clis {
		if n := cli.ConnCount(); n != 0 {
			t.Errorf("client ConnCount = %d after churn, want 0", n)
		}
		cli.Close()
	}
	if n := srv.ConnCount(); n != 0 {
		t.Errorf("server ConnCount = %d after churn, want 0", n)
	}
	srv.Close()
	leakCheck(t, before)

	// Churn must not have corrupted steering: the per-socket receive
	// counters still sum exactly to the endpoint-wide count.
	s := reg.Snapshot()
	var perSock int64
	for i := 0; i < srv.SocketCount(); i++ {
		perSock += s.Counters[socketCounterName(i, "rx_packets")]
	}
	if total := s.Counters["ep.rx_packets"]; perSock != total {
		t.Errorf("per-socket rx sum %d != ep.rx_packets %d", perSock, total)
	}
}
