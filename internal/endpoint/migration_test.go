package endpoint

// Path-migration tests: the validated-migration state machine end to end
// (a proxy Rebind mid-transfer must be survived, not starved out), plus
// the adversarial properties the challenge protocol exists for — an
// off-path attacker must not extract a PATH_RESPONSE, a guessed token
// must not move the connection, and an unvalidated address must never
// receive more than 3× the bytes it sent (anti-amplification).

import (
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// migConfig is the endpoint configuration the migration tests share:
// TACK mode with validation probing enabled. IdleTimeout must exceed the
// 3 s validation window (Listen enforces it), and stays generous so the
// only way a test passes is the migration machinery actually working.
func migConfig(tcfg transport.Config) Config {
	return Config{
		Transport:        tcfg,
		HandshakeTimeout: 15 * time.Second,
		HandshakeRTO:     50 * time.Millisecond,
		IdleTimeout:      20 * time.Second,
		EnableMigration:  true,
	}
}

// dialEstablished spins up an accept loop and dials target, returning
// both halves of one established connection.
func dialEstablished(t *testing.T, srv, cli *Endpoint, target string) (srvConn, cliConn *Conn) {
	t.Helper()
	acceptedCh := make(chan *Conn, 1)
	go func() {
		c, err := srv.AcceptTimeout(30 * time.Second)
		if err != nil {
			t.Errorf("accept: %v", err)
			close(acceptedCh)
			return
		}
		acceptedCh <- c
	}()
	c, err := cli.Dial(target)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	sc, ok := <-acceptedCh
	if !ok {
		t.FailNow()
	}
	return sc, c
}

// frame encodes a packet exactly as the endpoint's socket layer would:
// codec bytes plus the CRC32-C trailer. This is what an attacker who
// knows the wire format (it is public) can synthesize.
func frame(p *packet.Packet) []byte {
	return appendFrameCRC(p.AppendMarshal(nil))
}

// attackerSocket binds a raw UDP socket on a fresh ephemeral port — an
// address the server has never seen.
func attackerSocket(t *testing.T) *net.UDPConn {
	t.Helper()
	uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return uc
}

// waitCounter polls a registry counter until it reaches want or the
// deadline passes, returning the final value.
func waitCounter(reg *telemetry.Registry, name string, want int64, deadline time.Duration) int64 {
	end := time.Now().Add(deadline)
	for {
		if v := reg.Counter(name).Value(); v >= want || time.Now().After(end) {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndpointMigrationRecovery is the headline invariant of this
// feature: the scenario that used to be TestEndpointMigrationRejected's
// guaranteed double ErrIdleTimeout — a proxy Rebind yanking the peer
// address mid-transfer, under the full chaos impairment profile — now
// completes, with zero idle timeouts, because the server validates the
// new address and follows it.
func TestEndpointMigrationRecovery(t *testing.T) {
	before := runtime.NumGoroutine()
	size := int64(4 << 20)
	tr := telemetry.New()
	srvReg, cliReg := telemetry.NewRegistry(), telemetry.NewRegistry()

	srv, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, TransferBytes: size, Tracer: tr, Metrics: srvReg,
	}))
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netem.NewUDPProxy(netem.ProxyConfig{
		Target:   srv.LocalAddr().String(),
		ToServer: chaosImp(),
		ToClient: chaosImp(),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, TransferBytes: size, Metrics: cliReg,
	}))
	if err != nil {
		t.Fatal(err)
	}

	srvConn, cliConn := dialEstablished(t, srv, cli, proxy.Addr().String())

	// Rebind once the transfer is demonstrably in flight but nowhere near
	// done: gate on the server's live data-packet counter rather than a
	// timer so the test is robust to machine speed (4 MiB is ~2900
	// payloads; 200 in means ≳93% of the transfer still crosses the
	// migrated path).
	if got := waitCounter(srvReg, "rcv.data_packets", 200, 10*time.Second); got < 200 {
		t.Fatalf("transfer never got going: %d data packets at the server", got)
	}
	if err := proxy.Rebind(); err != nil {
		t.Fatalf("rebind: %v", err)
	}

	// Both halves must complete exactly — no ErrIdleTimeout, no stall.
	if err := cliConn.Wait(60 * time.Second); err != nil {
		t.Fatalf("client conn after rebind: %v", err)
	}
	if err := srvConn.Wait(60 * time.Second); err != nil {
		t.Fatalf("server conn after rebind: %v", err)
	}
	if got := srvConn.Receiver().Delivered(); got != size {
		t.Errorf("server delivered %d bytes, want exactly %d", got, size)
	}

	if probes := srvReg.Counter("ep.migration.probes").Value(); probes == 0 {
		t.Error("ep.migration.probes = 0: the rebind never triggered a challenge")
	}
	if done := srvReg.Counter("ep.migration.completed").Value(); done == 0 {
		t.Error("ep.migration.completed = 0: transfer finished without a validated migration?")
	}
	found := false
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindMigrationCompleted && e.Flow == cliConn.ConnID() {
			found = true
			break
		}
	}
	if !found {
		t.Error("no migration_completed trace event recorded for the connection")
	}

	cli.Close()
	srv.Close()
	proxy.Close()
	leakCheck(t, before)
}

// TestEndpointMigrationSpoofedChallenge: an off-path attacker who knows
// the ConnID injects a PATH_CHALLENGE from its own address. The endpoint
// answers challenges only toward the bound peer — echoing tokens to
// arbitrary sources would make it a path-validation oracle — so the
// attacker must never see a PATH_RESPONSE (probing its address with our
// own challenge is fine; that reveals nothing).
func TestEndpointMigrationSpoofedChallenge(t *testing.T) {
	before := runtime.NumGoroutine()
	srvReg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, Metrics: srvReg,
	}))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, TransferBytes: 1 << 40,
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, cliConn := dialEstablished(t, srv, cli, srv.LocalAddr().String())

	atk := attackerSocket(t)
	defer atk.Close()
	spoofed := frame(&packet.Packet{
		Type: packet.TypePathChallenge, ConnID: cliConn.ConnID(),
		SentAt: 1, Token: 0xdeadbeefcafef00d,
	})
	if _, err := atk.WriteToUDP(spoofed, srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// Drain everything the server says to the attacker for a while: the
	// retransmit schedule fires several challenges in this window, so a
	// response bug would be caught, not raced past.
	atk.SetReadDeadline(time.Now().Add(1500 * time.Millisecond))
	buf := make([]byte, 2048)
	for {
		n, _, err := atk.ReadFromUDP(buf)
		if err != nil {
			break // deadline
		}
		enc, ok := checkFrameCRC(buf[:n])
		if !ok {
			t.Errorf("server sent a datagram failing its own frame CRC")
			continue
		}
		p, err := packet.Unmarshal(enc)
		if err != nil {
			t.Errorf("server sent undecodable datagram: %v", err)
			continue
		}
		if p.Type == packet.TypePathResponse {
			t.Fatalf("server echoed PATH_RESPONSE (token %#x) to an off-path address", p.Token)
		}
	}
	// The spoofed challenge should have opened a (doomed) probe, proving
	// the packet reached the migration machinery and not some drop path.
	if probes := srvReg.Counter("ep.migration.probes").Value(); probes == 0 {
		t.Error("spoofed challenge never reached the path-validation machinery")
	}

	cli.Close()
	srv.Close()
	leakCheck(t, before)
}

// TestEndpointMigrationWrongToken: the attacker triggers a probe, reads
// the real PATH_CHALLENGE off the wire, and answers with a corrupted
// token — the one thing it cannot forge. The connection must not move:
// the episode times out into the rejected latch and the legitimate
// transfer keeps running.
func TestEndpointMigrationWrongToken(t *testing.T) {
	before := runtime.NumGoroutine()
	srvReg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, Metrics: srvReg,
	}))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, TransferBytes: 1 << 40,
	}))
	if err != nil {
		t.Fatal(err)
	}
	srvConn, cliConn := dialEstablished(t, srv, cli, srv.LocalAddr().String())

	atk := attackerSocket(t)
	defer atk.Close()
	// A plausible on-path-looking frame from a new address: a keepalive
	// IACK with the right ConnID. This opens the probing episode.
	bait := frame(&packet.Packet{
		Type: packet.TypeIACK, ConnID: cliConn.ConnID(),
		SentAt: 1, IACK: packet.IACKKeepalive,
	})
	if _, err := atk.WriteToUDP(bait, srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// Capture the challenge and answer it with a flipped token.
	atk.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	answered := false
	for !answered {
		n, _, err := atk.ReadFromUDP(buf)
		if err != nil {
			t.Fatal("never received a PATH_CHALLENGE to answer")
		}
		enc, ok := checkFrameCRC(buf[:n])
		if !ok {
			continue
		}
		p, err := packet.Unmarshal(enc)
		if err != nil || p.Type != packet.TypePathChallenge {
			continue
		}
		forged := frame(&packet.Packet{
			Type: packet.TypePathResponse, ConnID: cliConn.ConnID(),
			SentAt: 1, Token: p.Token ^ 1,
		})
		if _, err := atk.WriteToUDP(forged, srv.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		answered = true
	}

	// The episode must die at its deadline, never validating.
	if got := waitCounter(srvReg, "ep.migration.failed", 1, 6*time.Second); got == 0 {
		t.Error("probing episode never failed after a wrong-token response")
	}
	if done := srvReg.Counter("ep.migration.completed").Value(); done != 0 {
		t.Fatalf("connection migrated on a forged token (completed=%d)", done)
	}
	// And the real path was never disturbed: the server's view of the
	// connection still shows zero migrations and a latched-rejected
	// candidate, while the transfer is still alive.
	if s := srvConn.StateSnapshot(); s != nil {
		if s.Migrations != 0 {
			t.Errorf("snapshot shows %d migrations, want 0", s.Migrations)
		}
		if s.PathState != "rejected" {
			t.Errorf("snapshot path_state = %q, want rejected", s.PathState)
		}
	}
	if srvConn.Err() != nil {
		t.Errorf("server conn died during the attack: %v", srvConn.Err())
	}

	cli.Close()
	srv.Close()
	leakCheck(t, before)
}

// TestEndpointMigrationReplayedResponse: a PATH_RESPONSE arriving from a
// new address when no challenge is outstanding (a replay from an old
// episode, or a blind guess) proves nothing and must take the reject
// path — it must not even open a probe.
func TestEndpointMigrationReplayedResponse(t *testing.T) {
	before := runtime.NumGoroutine()
	srvReg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, Metrics: srvReg,
	}))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, TransferBytes: 1 << 40,
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, cliConn := dialEstablished(t, srv, cli, srv.LocalAddr().String())

	atk := attackerSocket(t)
	defer atk.Close()
	replay := frame(&packet.Packet{
		Type: packet.TypePathResponse, ConnID: cliConn.ConnID(),
		SentAt: 1, Token: 0x1122334455667788,
	})
	if _, err := atk.WriteToUDP(replay, srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	if got := waitCounter(srvReg, "ep.migration_rejected", 1, 5*time.Second); got == 0 {
		t.Fatal("replayed PATH_RESPONSE was not rejected")
	}
	if probes := srvReg.Counter("ep.migration.probes").Value(); probes != 0 {
		t.Errorf("replayed PATH_RESPONSE opened a probe (probes=%d), want reject only", probes)
	}

	cli.Close()
	srv.Close()
	leakCheck(t, before)
}

// TestEndpointMigrationAmplificationBudget: a single small spoofed frame
// from an address that then goes silent must never extract more than 3×
// its own bytes from the server (RFC 9000 §8.1) — the retransmit
// schedule would otherwise happily keep firing challenges at a victim
// who never asked for them.
func TestEndpointMigrationAmplificationBudget(t *testing.T) {
	before := runtime.NumGoroutine()
	srvReg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, Metrics: srvReg,
	}))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", migConfig(transport.Config{
		Mode: transport.ModeTACK, TransferBytes: 1 << 40,
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, cliConn := dialEstablished(t, srv, cli, srv.LocalAddr().String())

	atk := attackerSocket(t)
	defer atk.Close()
	bait := frame(&packet.Packet{
		Type: packet.TypeIACK, ConnID: cliConn.ConnID(),
		SentAt: 1, IACK: packet.IACKKeepalive,
	})
	if _, err := atk.WriteToUDP(bait, srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	sent := len(bait)

	// Count every byte the server sends back across the whole probing
	// episode (3 s deadline) plus slack for the failure latch.
	atk.SetReadDeadline(time.Now().Add(4 * time.Second))
	buf := make([]byte, 2048)
	recvd := 0
	for {
		n, _, err := atk.ReadFromUDP(buf)
		if err != nil {
			break // deadline
		}
		recvd += n
	}
	if recvd > 3*sent {
		t.Fatalf("amplification: attacker sent %d bytes, server answered with %d (> 3× budget %d)",
			sent, recvd, 3*sent)
	}
	if recvd == 0 {
		t.Error("no challenge reached the attacker: the budget test exercised nothing")
	}
	if got := waitCounter(srvReg, "ep.migration.failed", 1, 3*time.Second); got == 0 {
		t.Error("silent candidate was never rejected after the validation window")
	}

	cli.Close()
	srv.Close()
	leakCheck(t, before)
}
