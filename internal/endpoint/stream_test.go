package endpoint

// Endpoint-level stream multiplexing tests: many concurrent application
// goroutines writing and reading multiplexed streams over a real loopback
// socket, including a chaos soak through the netem.UDPProxy impairment
// stack (satellite of the stream-multiplexing PR).
//
// The invariants are structural:
//
//   - every stream delivers its exact byte pattern and then EOF — loss,
//     reordering and duplication must never corrupt or cross streams;
//   - no stream stalls while its siblings finish (each one completes
//     within the global deadline even under burst loss);
//   - endpoints shut down without leaking goroutines or connections.

import (
	"errors"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// streamTestPattern fills b with the deterministic per-stream byte pattern
// starting at absolute offset off (mirrors the transport-level tests).
func streamTestPattern(sid uint32, off int, b []byte) {
	for i := range b {
		x := off + i
		b[i] = byte(int(sid)*131 + x*7 + (x >> 8))
	}
}

// streamEndpointPair builds a listening server and client endpoint with
// stream multiplexing enabled and registers cleanup.
func streamEndpointPair(t *testing.T, scfg stream.Config, srvReg, cliReg *telemetry.Registry) (srv, cli *Endpoint) {
	t.Helper()
	mk := func(reg *telemetry.Registry) Config {
		return Config{
			Transport: transport.Config{
				Mode:    transport.ModeTACK,
				Streams: &scfg,
				Metrics: reg,
			},
			HandshakeTimeout: 15 * time.Second,
			HandshakeRTO:     50 * time.Millisecond,
		}
	}
	srv, err := Listen("127.0.0.1:0", mk(srvReg))
	if err != nil {
		t.Fatal(err)
	}
	cli, err = Listen("127.0.0.1:0", mk(cliReg))
	if err != nil {
		t.Fatalf("client listen: %v", err)
	}
	return srv, cli
}

// runStreamExchange pushes nStreams patterned objects of the given size
// from cli to target and verifies byte-exact delivery plus EOF on every
// stream at the server. It returns the client connection (still open) and
// the accepted server connection.
func runStreamExchange(t *testing.T, srv, cli *Endpoint, target string, nStreams, size int, deadline time.Duration) (*Conn, *Conn) {
	t.Helper()

	acceptedCh := make(chan *Conn, 1)
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		sc, err := srv.AcceptTimeout(deadline)
		if err != nil {
			t.Errorf("accept conn: %v", err)
			close(acceptedCh)
			return
		}
		acceptedCh <- sc
		for i := 0; i < nStreams; i++ {
			rs, err := sc.AcceptStream(deadline)
			if err != nil {
				t.Errorf("accept stream %d: %v", i, err)
				return
			}
			readWG.Add(1)
			go func(rs *stream.RecvStream) {
				defer readWG.Done()
				got, err := io.ReadAll(rs)
				if err != nil {
					t.Errorf("stream %d read: %v", rs.ID(), err)
					return
				}
				if len(got) != size {
					t.Errorf("stream %d delivered %d bytes, want %d", rs.ID(), len(got), size)
					return
				}
				want := make([]byte, size)
				streamTestPattern(rs.ID(), 0, want)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("stream %d corrupt at offset %d: got %#x want %#x", rs.ID(), i, got[i], want[i])
						return
					}
				}
			}(rs)
		}
	}()

	c, err := cli.Dial(target)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var writeWG sync.WaitGroup
	opened := make([]*stream.SendStream, nStreams)
	for i := 0; i < nStreams; i++ {
		ss, err := c.OpenStream()
		if err != nil {
			t.Fatalf("open stream %d: %v", i, err)
		}
		opened[i] = ss
		writeWG.Add(1)
		go func(ss *stream.SendStream) {
			defer writeWG.Done()
			buf := make([]byte, 4<<10)
			for off := 0; off < size; off += len(buf) {
				n := len(buf)
				if size-off < n {
					n = size - off
				}
				streamTestPattern(ss.ID(), off, buf[:n])
				if _, err := ss.Write(buf[:n]); err != nil {
					t.Errorf("stream %d write at %d: %v", ss.ID(), off, err)
					return
				}
			}
			ss.Close()
		}(ss)
	}
	writeWG.Wait()
	readWG.Wait()

	// Every FIN must eventually be acknowledged back to the sender so the
	// streams retire (the reader already saw EOF, so only the ack leg and
	// any tail retransmissions remain in flight).
	waitUntil := time.Now().Add(deadline)
	for _, ss := range opened {
		for !ss.Done() {
			if time.Now().After(waitUntil) {
				t.Fatalf("stream %d never fully acknowledged", ss.ID())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	sc, ok := <-acceptedCh
	if !ok {
		t.FailNow()
	}
	return c, sc
}

// TestEndpointStreamRoundTrip moves 8 concurrent streams over a clean
// loopback path and checks delivery, retirement, and teardown.
func TestEndpointStreamRoundTrip(t *testing.T) {
	before := runtime.NumGoroutine()
	srvReg, cliReg := telemetry.NewRegistry(), telemetry.NewRegistry()
	srv, cli := streamEndpointPair(t, stream.Default(), srvReg, cliReg)

	c, _ := runStreamExchange(t, srv, cli, srv.LocalAddr().String(), 8, 128<<10, 30*time.Second)

	if n := cliReg.Counter("stream.bytes_sent").Value(); n != 8*128<<10 {
		t.Errorf("stream.bytes_sent = %d, want %d", n, 8*128<<10)
	}
	if n := srvReg.Counter("stream.bytes_rcvd").Value(); n != 8*128<<10 {
		t.Errorf("stream.bytes_rcvd = %d, want %d", n, 8*128<<10)
	}

	c.Close()
	cli.Close()
	srv.Close()
	leakCheck(t, before)
}

// TestEndpointStreamOnPlainConnRejected checks the stream API degrades to
// a typed error on connections dialed without stream multiplexing.
func TestEndpointStreamOnPlainConnRejected(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := Listen("127.0.0.1:0", Config{
		Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: 4 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", Config{
		Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: 4 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if c, err := srv.AcceptTimeout(30 * time.Second); err == nil {
			c.Wait(30 * time.Second)
		}
	}()
	c, err := cli.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenStream(); !errors.Is(err, stream.ErrStreamsDisabled) {
		t.Errorf("OpenStream on plain conn: err = %v, want ErrStreamsDisabled", err)
	}
	if _, err := c.AcceptStream(0); !errors.Is(err, stream.ErrStreamsDisabled) {
		t.Errorf("AcceptStream on plain conn: err = %v, want ErrStreamsDisabled", err)
	}
	c.Wait(30 * time.Second)
	cli.Close()
	srv.Close()
	leakCheck(t, before)
}

// TestEndpointStreamChaosSoak is the multiplexing chaos soak: 64
// concurrent streams through Gilbert–Elliott burst loss (~10% average)
// in both directions. Every stream must deliver its exact pattern, no
// stream may stall behind its siblings' losses, and the endpoints must
// shut down leak-free. Runs in the regular -race CI job; set
// TACK_CHAOS_SOAK=1 for a heavier soak.
func TestEndpointStreamChaosSoak(t *testing.T) {
	nStreams, size := 64, 16<<10
	if os.Getenv("TACK_CHAOS_SOAK") != "" {
		size = 128 << 10
	}
	before := runtime.NumGoroutine()

	burst := netem.Impairments{
		LossRate: 0.02,
		GE:       netem.GilbertElliott{PEnterBad: 0.05, PExitBad: 0.25, LossBad: 0.5},
	}
	srvReg, cliReg := telemetry.NewRegistry(), telemetry.NewRegistry()
	scfg := stream.Default()
	scfg.MaxStreams = nStreams
	scfg.RecvWindow = 64 << 10
	srv, cli := streamEndpointPair(t, scfg, srvReg, cliReg)
	proxy, err := netem.NewUDPProxy(netem.ProxyConfig{
		Target:   srv.LocalAddr().String(),
		ToServer: burst,
		ToClient: burst,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}

	c, _ := runStreamExchange(t, srv, cli, proxy.Addr().String(), nStreams, size, 120*time.Second)

	up, down := proxy.Stats()
	if up.Dropped == 0 || down.Dropped == 0 {
		t.Errorf("soak under-exercised: to-server dropped %d, to-client dropped %d", up.Dropped, down.Dropped)
	}
	if n := cliReg.Counter("snd.retransmits").Value(); n == 0 {
		t.Error("no retransmissions under burst loss — impairments not reaching the transport")
	}
	if n := srvReg.Counter("stream.bytes_rcvd").Value(); n != int64(nStreams*size) {
		t.Errorf("stream.bytes_rcvd = %d, want %d", n, nStreams*size)
	}

	c.Close()
	cli.Close()
	srv.Close()
	proxy.Close()
	if n := cli.ConnCount(); n != 0 {
		t.Errorf("client conn count %d after close, want 0", n)
	}
	if n := srv.ConnCount(); n != 0 {
		t.Errorf("server conn count %d after close, want 0", n)
	}
	t.Logf("stream soak done: %d streams × %d B; to-server %+v; to-client %+v", nStreams, size, up, down)
	leakCheck(t, before)
}
