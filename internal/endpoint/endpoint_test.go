package endpoint

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// TestUDPRunnerLoopbackTransfer exercises the sans-IO engine over real UDP
// sockets on loopback: a bounded TACK-mode stream must complete and deliver
// every byte. (Migrated from the old transport.UDPRunner to the
// options-based constructor.)
func TestUDPRunnerLoopbackTransfer(t *testing.T) {
	const size = 256 << 10
	cfgR := transport.Config{Mode: transport.ModeTACK, TransferBytes: size}
	rcv, err := NewUDPRunner(cfgR, RoleReceiver, WithLocalAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()

	cfgS := transport.Config{Mode: transport.ModeTACK, TransferBytes: size, CC: "cubic"}
	snd, err := NewUDPRunner(cfgS, RoleSender, WithLocalAddr("127.0.0.1:0"), WithPeer(rcv.LocalAddr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var rcvErr error
	go func() {
		defer wg.Done()
		rcvErr = rcv.Run(20 * time.Second)
	}()
	if err := snd.Run(20 * time.Second); err != nil {
		t.Fatalf("sender: %v", err)
	}
	wg.Wait()
	if rcvErr != nil {
		t.Fatalf("receiver: %v", rcvErr)
	}
	if got := rcv.Receiver.Delivered(); got != size {
		t.Fatalf("delivered %d, want %d", got, size)
	}
	if !snd.Sender.Done() {
		t.Fatal("sender did not finish")
	}
}

// TestUDPRunnerLegacyMode runs the same loopback transfer in legacy mode,
// through the options-based constructor.
func TestUDPRunnerLegacyMode(t *testing.T) {
	const size = 128 << 10
	cfg := transport.Config{Mode: transport.ModeLegacy, TransferBytes: size}
	rcv, err := NewUDPRunner(cfg, RoleReceiver, WithLocalAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	snd, err := NewUDPRunner(cfg, RoleSender,
		WithLocalAddr("127.0.0.1:0"), WithPeer(rcv.LocalAddr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	go rcv.Run(20 * time.Second)
	if err := snd.Run(20 * time.Second); err != nil {
		t.Fatalf("sender: %v", err)
	}
	if !snd.Sender.Done() {
		t.Fatal("sender did not finish")
	}
}

func TestUDPRunnerBadAddrs(t *testing.T) {
	if _, err := NewUDPRunner(transport.Config{}, RoleReceiver, WithLocalAddr("not-an-addr")); err == nil {
		t.Fatal("bad local addr should error")
	}
	if _, err := NewUDPRunner(transport.Config{}, RoleSender,
		WithLocalAddr("127.0.0.1:0"), WithPeer("also-bad")); err == nil {
		t.Fatal("bad remote addr should error")
	}
	if _, err := NewUDPRunner(transport.Config{}, RoleSender); err == nil {
		t.Fatal("sender without peer should error")
	}
}

// TestEndpointMultiTransfer drives several concurrent bounded transfers
// between two endpoints over one UDP socket pair, demultiplexed by
// ConnID, and verifies every stream delivers in full.
func TestEndpointMultiTransfer(t *testing.T) {
	const (
		nConns = 6
		size   = 128 << 10
	)
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: size}
	srv, err := Listen("127.0.0.1:0", Config{Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Listen("127.0.0.1:0", Config{Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	accepted := make(chan *Conn, nConns)
	go func() {
		defer wg.Done()
		for i := 0; i < nConns; i++ {
			c, err := srv.AcceptTimeout(10 * time.Second)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			accepted <- c
		}
	}()

	conns := make([]*Conn, nConns)
	for i := range conns {
		c, err := cli.Dial(srv.LocalAddr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns[i] = c
	}
	seen := map[uint32]bool{}
	for _, c := range conns {
		if seen[c.ConnID()] {
			t.Fatalf("duplicate ConnID %d", c.ConnID())
		}
		seen[c.ConnID()] = true
		if err := c.Wait(20 * time.Second); err != nil {
			t.Fatalf("conn %d: %v", c.ConnID(), err)
		}
		if !c.Sender().Done() {
			t.Fatalf("conn %d: sender not done", c.ConnID())
		}
	}
	wg.Wait()
	close(accepted)
	for c := range accepted {
		if err := c.Wait(20 * time.Second); err != nil {
			t.Fatalf("server conn %d: %v", c.ConnID(), err)
		}
		if got := c.Receiver().Delivered(); got != size {
			t.Fatalf("server conn %d delivered %d, want %d", c.ConnID(), got, size)
		}
	}
}

// TestEndpointHandshakeTimeout dials a socket that never answers. The SYN
// is retransmitted on the handshake backoff schedule, but with no SYNACK
// ever arriving the dial must still fail with ErrHandshakeTimeout —
// whichever of the deadline or the retry budget trips first.
func TestEndpointHandshakeTimeout(t *testing.T) {
	// A bound but never-read socket: SYNs vanish into its receive queue.
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()

	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 10}
	ep, err := Listen("127.0.0.1:0", Config{Transport: tcfg, HandshakeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	start := time.Now()
	if _, err := ep.Dial(hole.LocalAddr().String()); !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("err = %v, want ErrHandshakeTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("handshake timeout took %v", d)
	}
	if ep.ConnCount() != 0 {
		t.Fatalf("conn count %d after failed dial, want 0", ep.ConnCount())
	}
}

// TestEndpointHandshakeRetryBudget makes the retry budget, not the
// deadline, the terminating authority: with a tiny HandshakeRTO and a
// 3-retry budget the dial must fail in well under the generous
// HandshakeTimeout, and must actually have retransmitted.
func TestEndpointHandshakeRetryBudget(t *testing.T) {
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()

	reg := telemetry.NewRegistry()
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 10, Metrics: reg}
	ep, err := Listen("127.0.0.1:0", Config{
		Transport:           tcfg,
		HandshakeTimeout:    30 * time.Second, // deliberately not the limiter
		HandshakeRTO:        20 * time.Millisecond,
		MaxHandshakeRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	start := time.Now()
	if _, err := ep.Dial(hole.LocalAddr().String()); !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("err = %v, want ErrHandshakeTimeout", err)
	}
	// Budget: 20+40+80 ms of backoff plus scheduling slack — nowhere near
	// the 30 s deadline.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("budget-exhausted dial took %v, deadline must not be the limiter", d)
	}
	if got := reg.Counter("snd.syn_retransmits").Value(); got != 3 {
		t.Fatalf("snd.syn_retransmits = %d, want 3", got)
	}
	if ep.ConnCount() != 0 {
		t.Fatalf("conn count %d after failed dial, want 0", ep.ConnCount())
	}
}

// TestEndpointIdleReap establishes an app-paced connection that then goes
// silent: the dialing side must reap it with ErrIdleTimeout.
func TestEndpointIdleReap(t *testing.T) {
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 10}
	srv, err := Listen("127.0.0.1:0", Config{Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The client sends nothing after the handshake (app-paced source with
	// no bytes), so no acknowledgments ever flow back.
	cliT := transport.Config{Mode: transport.ModeTACK, AppPaced: true}
	cli, err := Listen("127.0.0.1:0", Config{Transport: cliT, IdleTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	c, err := cli.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(5 * time.Second); !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("err = %v, want ErrIdleTimeout", err)
	}
}

// TestEndpointKeepalive verifies that KeepaliveInterval defeats the
// peer-side silence: the dialed connection keeps transmitting liveness
// probes, so its own idle reaper (keyed on inbound traffic) still fires —
// but the server has seen recent packets and holds its half open.
func TestEndpointKeepalive(t *testing.T) {
	reg := telemetry.NewRegistry()
	srvT := transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 10}
	srv, err := Listen("127.0.0.1:0", Config{Transport: srvT, IdleTimeout: 400 * time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cliT := transport.Config{Mode: transport.ModeTACK, AppPaced: true}
	cli, err := Listen("127.0.0.1:0", Config{Transport: cliT, KeepaliveInterval: 50 * time.Millisecond, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	c, err := cli.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := srv.AcceptTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Outlive the server's idle timeout: keepalives must hold it open.
	time.Sleep(time.Second)
	select {
	case <-sc.Done():
		t.Fatalf("server conn reaped despite keepalives: %v", sc.Err())
	default:
	}
	if reaped := reg.Counter("ep.reaped").Value(); reaped != 0 {
		t.Fatalf("server reaped %d conns, want 0", reaped)
	}
	c.Close()
}

// TestEndpointDemuxDrops sends a datagram for an unknown connection (and
// one garbage datagram) and checks the counters.
func TestEndpointDemuxDrops(t *testing.T) {
	reg := telemetry.NewRegistry()
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 10}
	ep, err := Listen("127.0.0.1:0", Config{Transport: tcfg, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	sock, err := net.DialUDP("udp", nil, ep.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	// A DATA packet for a connection that was never opened: droppable.
	// (The datagram must carry a valid frame CRC to get past the read
	// loop's corruption check and reach demux.)
	stray := &packet.Packet{Type: packet.TypeData, ConnID: 4242, Payload: []byte("x")}
	sock.Write(appendFrameCRC(stray.Marshal()))
	sock.Write([]byte{0xFF, 0xFF, 0xFF}) // not a packet at all
	sock.Write(append(stray.Marshal(), 0xDE, 0xAD, 0xBE, 0xEF)) // bad frame CRC

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("ep.demux_drops").Value() >= 1 &&
			reg.Counter("ep.rx_garbage").Value() >= 1 &&
			reg.Counter("ep.rx_corrupt").Value() >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("demux_drops=%d rx_garbage=%d rx_corrupt=%d, want >= 1 each",
		reg.Counter("ep.demux_drops").Value(), reg.Counter("ep.rx_garbage").Value(),
		reg.Counter("ep.rx_corrupt").Value())
}

// TestEndpointAcceptTimeout covers the accept deadline and closed-endpoint
// paths.
func TestEndpointAcceptTimeout(t *testing.T) {
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 10}
	ep, err := Listen("127.0.0.1:0", Config{Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.AcceptTimeout(30 * time.Millisecond); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	ep.Close()
	if _, err := ep.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := ep.Dial("127.0.0.1:9"); !errors.Is(err, ErrClosed) {
		t.Fatalf("dial err = %v, want ErrClosed", err)
	}
}

// TestEndpointRejectsBadConfig verifies transport config validation runs
// at Listen time.
func TestEndpointRejectsBadConfig(t *testing.T) {
	bad := transport.Config{Mode: transport.ModeTACK, CC: "no-such-cc"}
	if _, err := Listen("127.0.0.1:0", Config{Transport: bad}); err == nil {
		t.Fatal("Listen accepted an invalid transport config")
	}
}

// TestDialAddr covers the standalone single-connection helper: the private
// endpoint must be torn down when the connection finishes.
func TestDialAddr(t *testing.T) {
	const size = 64 << 10
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: size}
	srv, err := Listen("127.0.0.1:0", Config{Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialAddr(srv.LocalAddr().String(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Sender().Done() {
		t.Fatal("sender not done")
	}
}

func ExampleListen() {
	tcfg := transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 16}
	srv, _ := Listen("127.0.0.1:0", Config{Transport: tcfg})
	defer srv.Close()
	go func() {
		for {
			c, err := srv.Accept()
			if err != nil {
				return
			}
			go func() { c.Wait(0) }()
		}
	}()
	c, _ := DialAddr(srv.LocalAddr().String(), tcfg)
	if err := c.Wait(0); err == nil {
		fmt.Println("transfer complete")
	}
	// Output: transfer complete
}
