package endpoint

import (
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/transport"
)

// SimServer is the in-simulation analogue of Endpoint's demux: a sans-IO
// multi-connection server for deterministic experiments. Packets are
// routed by ConnID to per-connection Receivers; unknown connection ids
// are accepted on SYN (the reply callback passed with the SYN becomes
// the connection's transmit path) and dropped otherwise.
//
// It runs entirely on the caller's sim.Loop and goroutine — no sockets,
// no shards — so multi-flow topologies (e.g. many STAs contending for
// one AP) can share a virtual clock.
type SimServer struct {
	loop  *sim.Loop
	cfg   transport.Config
	conns map[uint32]*transport.Receiver
	drops int
}

// NewSimServer builds a demuxing server; cfg is the per-connection
// template (ConnID is overwritten per connection).
func NewSimServer(loop *sim.Loop, cfg transport.Config) *SimServer {
	return &SimServer{loop: loop, cfg: cfg, conns: map[uint32]*transport.Receiver{}}
}

// OnPacket dispatches one inbound packet. reply is the transmit path
// back toward this packet's sender; it is captured when a SYN creates
// the connection and must therefore route by ConnID if the underlying
// medium has multiple peers.
func (s *SimServer) OnPacket(p *packet.Packet, reply func(*packet.Packet)) {
	r := s.conns[p.ConnID]
	if r == nil {
		if p.Type != packet.TypeSYN {
			s.drops++
			return
		}
		tcfg := s.cfg
		tcfg.ConnID = p.ConnID
		r = transport.NewReceiver(s.loop, tcfg, reply)
		s.conns[p.ConnID] = r
	}
	r.OnPacket(p)
}

// Receiver returns the per-connection receiver (nil if the connection
// was never accepted).
func (s *SimServer) Receiver(id uint32) *transport.Receiver { return s.conns[id] }

// ConnCount returns the number of accepted connections.
func (s *SimServer) ConnCount() int { return len(s.conns) }

// Drops returns the count of non-SYN packets for unknown connections.
func (s *SimServer) Drops() int { return s.drops }
