package endpoint

import (
	"encoding/binary"
	"hash/crc32"
)

// Endpoint datagram framing: every datagram the endpoint sends carries a
// CRC32-C (Castagnoli) trailer over the encoded packet, and the read loop
// verifies it before the bytes reach the decoder. UDP's own 16-bit
// checksum only protects the kernel-to-kernel hop; anything that rewrites
// datagrams in userspace (a relay, a buggy middlebox, the chaos proxy)
// re-sends corrupted content under a fresh valid UDP checksum. Without
// the trailer, a single bit flip in a structurally-valid field — a byte
// sequence number, an ack block bound — passes packet.Sane and poisons
// engine state in ways that can stall a transfer permanently (a flipped
// SEQ places payload at the wrong offset while its PKT.SEQ still gets
// acked, so the real range is never retransmitted). The trailer turns
// that whole failure class into a counted drop, and dropped packets are
// what the protocol's loss machinery is built to recover.

// frameTrailerLen is the size of the CRC32-C trailer on every datagram.
const frameTrailerLen = 4

var frameCRCTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrameCRC appends the integrity trailer to an encoded datagram.
func appendFrameCRC(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, frameCRCTable))
}

// checkFrameCRC verifies and strips the trailer, returning the encoded
// packet bytes. ok is false when the datagram is too short to carry a
// trailer or the checksum does not match its content.
func checkFrameCRC(b []byte) (payload []byte, ok bool) {
	if len(b) < frameTrailerLen {
		return nil, false
	}
	n := len(b) - frameTrailerLen
	if binary.BigEndian.Uint32(b[n:]) != crc32.Checksum(b[:n], frameCRCTable) {
		return nil, false
	}
	return b[:n], true
}
