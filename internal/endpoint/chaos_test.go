package endpoint

// Chaos soak harness: endpoints driven through a netem.UDPProxy that
// injects Gilbert–Elliott burst loss, independent loss, duplication, bit
// corruption, reordering and jitter into live datagrams. The invariants
// are structural, not statistical:
//
//   - every transfer completes exactly (sender fully acked, receiver
//     delivered exactly TransferBytes — corrupted packets must never
//     inflate or hole the stream accounting; the frame CRC rejects them
//     at the read loop, so corruption degrades to loss);
//   - no connection or goroutine leaks once the endpoints close;
//   - failure modes terminate (ErrHandshakeTimeout / ErrIdleTimeout /
//     ErrClosed) rather than hang.
//
// The quick variant below runs in the regular -race CI job. Set
// TACK_CHAOS_SOAK=1 for a longer, heavier soak.

import (
	"errors"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// chaosImp is the default adversarial profile: ~6% average loss (bursty),
// plus duplication, corruption, reordering and jitter in both directions.
func chaosImp() netem.Impairments {
	return netem.Impairments{
		LossRate:      0.02,
		DuplicateRate: 0.03,
		CorruptRate:   0.02,
		ReorderRate:   0.05,
		ReorderDelay:  2 * sim.Millisecond,
		JitterMax:     3 * sim.Millisecond,
		GE:            netem.GilbertElliott{PEnterBad: 0.02, PExitBad: 0.3, LossBad: 0.7},
	}
}

// leakCheck asserts the goroutine count returns to its pre-test baseline.
func leakCheck(t *testing.T, before int) {
	t.Helper()
	buf := make([]byte, 1<<20)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestEndpointChaosSoak pushes N concurrent transfers through the full
// impairment stack and checks every structural invariant.
func TestEndpointChaosSoak(t *testing.T) {
	nConns, size := 8, int64(64<<10)
	if os.Getenv("TACK_CHAOS_SOAK") != "" {
		nConns, size = 24, int64(512<<10)
	}
	before := runtime.NumGoroutine()

	srvReg, cliReg := telemetry.NewRegistry(), telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", Config{
		Transport:        transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: srvReg},
		HandshakeTimeout: 15 * time.Second,
		HandshakeRTO:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netem.NewUDPProxy(netem.ProxyConfig{
		Target:   srv.LocalAddr().String(),
		ToServer: chaosImp(),
		ToClient: chaosImp(),
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", Config{
		Transport:        transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: cliReg},
		HandshakeTimeout: 15 * time.Second,
		HandshakeRTO:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Collect accepted server conns and verify exact delivery once each
	// finishes. Corrupted SYNs can spawn spurious embryos with flipped
	// ConnIDs — those never complete a handshake and never reach Accept,
	// so counting accepted conns up to nConns is still deterministic.
	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for i := 0; i < nConns; i++ {
			c, err := srv.AcceptTimeout(60 * time.Second)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			acceptWG.Add(1)
			go func(c *Conn) {
				defer acceptWG.Done()
				if err := c.Wait(120 * time.Second); err != nil {
					t.Errorf("server conn %d: %v", c.ConnID(), err)
					return
				}
				if got := c.Receiver().Delivered(); got != size {
					t.Errorf("server conn %d delivered %d bytes, want exactly %d", c.ConnID(), got, size)
				}
			}(c)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < nConns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := cli.Dial(proxy.Addr().String())
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			if err := c.Wait(120 * time.Second); err != nil {
				t.Errorf("client conn %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	acceptWG.Wait()

	// The harness must actually have been adversarial.
	up, down := proxy.Stats()
	for _, dir := range []struct {
		name string
		s    netem.ProxyDirStats
	}{{"to-server", up}, {"to-client", down}} {
		if dir.s.Dropped == 0 || dir.s.Duplicated == 0 || dir.s.Corrupted == 0 || dir.s.Reordered == 0 {
			t.Errorf("%s direction under-exercised: %+v", dir.name, dir.s)
		}
	}
	// And the frame CRC must have been what kept the corruption out of
	// the engines: every forwarded-corrupted datagram fails it.
	if rc := srvReg.Counter("ep.rx_corrupt").Value() + cliReg.Counter("ep.rx_corrupt").Value(); rc == 0 {
		t.Errorf("rx_corrupt = 0 with %d corrupted datagrams forwarded", up.Corrupted+down.Corrupted)
	}

	cli.Close()
	srv.Close()
	proxy.Close()
	if n := cli.ConnCount(); n != 0 {
		t.Errorf("client conn count %d after close, want 0", n)
	}
	if n := srv.ConnCount(); n != 0 {
		t.Errorf("server conn count %d after close, want 0", n)
	}
	t.Logf("soak done: %d conns × %d B; to-server %+v; to-client %+v", nConns, size, up, down)
	t.Logf("server: rx_corrupt=%d rx_garbage=%d demux_drops=%d bad_feedback=%d synack_retx=%d",
		srvReg.Counter("ep.rx_corrupt").Value(), srvReg.Counter("ep.rx_garbage").Value(),
		srvReg.Counter("ep.demux_drops").Value(), srvReg.Counter("ep.bad_feedback").Value(),
		srvReg.Counter("ep.synack_retransmits").Value())
	t.Logf("client: syn_retx=%d rx_corrupt=%d rx_garbage=%d",
		cliReg.Counter("snd.syn_retransmits").Value(), cliReg.Counter("ep.rx_corrupt").Value(),
		cliReg.Counter("ep.rx_garbage").Value())
	leakCheck(t, before)
}

// TestEndpointHandshakeUnder30PctLoss drives the handshake through 30%
// symmetric loss — each SYN↔SYNACK round trip survives with p≈0.49 — and
// requires the retry/backoff schedule to land it anyway, then the transfer
// to complete.
func TestEndpointHandshakeUnder30PctLoss(t *testing.T) {
	before := runtime.NumGoroutine()
	size := int64(16 << 10)
	reg := telemetry.NewRegistry()

	srv, err := Listen("127.0.0.1:0", Config{
		Transport:        transport.Config{Mode: transport.ModeTACK, TransferBytes: size},
		HandshakeTimeout: 30 * time.Second,
		HandshakeRTO:     30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netem.NewUDPProxy(netem.ProxyConfig{
		Target:   srv.LocalAddr().String(),
		ToServer: netem.Impairments{LossRate: 0.3},
		ToClient: netem.Impairments{LossRate: 0.3},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Listen("127.0.0.1:0", Config{
		Transport: transport.Config{
			Mode: transport.ModeTACK, TransferBytes: size, Metrics: reg,
			// Cap the doubling at 500ms so the 30s deadline buys ~60
			// attempts; the chance 30% symmetric loss defeats them all is
			// negligible (0.51^60).
			MaxRTO: 500 * sim.Millisecond,
		},
		HandshakeTimeout:    30 * time.Second,
		HandshakeRTO:        30 * time.Millisecond,
		MaxHandshakeRetries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		if c, err := srv.AcceptTimeout(60 * time.Second); err == nil {
			c.Wait(120 * time.Second)
		}
	}()

	start := time.Now()
	c, err := cli.Dial(proxy.Addr().String())
	if err != nil {
		t.Fatalf("dial under 30%% loss: %v (after %v, %d SYN retransmits)",
			err, time.Since(start), reg.Counter("snd.syn_retransmits").Value())
	}
	if err := c.Wait(120 * time.Second); err != nil {
		t.Fatalf("transfer under 30%% loss: %v", err)
	}
	t.Logf("handshake+transfer under 30%% symmetric loss in %v (%d SYN retransmits)",
		time.Since(start), reg.Counter("snd.syn_retransmits").Value())

	cli.Close()
	srv.Close()
	proxy.Close()
	leakCheck(t, before)
}

// TestEndpointMigrationRejected rebinds the proxy's server-facing socket
// mid-transfer: the server must observably reject the migrated traffic
// (ep.migration_rejected + trace event), and both sides must terminate
// with an error rather than hang.
func TestEndpointMigrationRejected(t *testing.T) {
	before := runtime.NumGoroutine()
	tr := telemetry.New()
	reg := telemetry.NewRegistry()

	srv, err := Listen("127.0.0.1:0", Config{
		Transport:   transport.Config{Mode: transport.ModeTACK, Tracer: tr, Metrics: reg},
		IdleTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netem.NewUDPProxy(netem.ProxyConfig{Target: srv.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	// An effectively unbounded transfer (the rebind interrupts it long
	// before completion).
	cli, err := Listen("127.0.0.1:0", Config{
		Transport:   transport.Config{Mode: transport.ModeTACK, TransferBytes: 1 << 40},
		IdleTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	acceptedCh := make(chan *Conn, 1)
	go func() {
		c, err := srv.AcceptTimeout(30 * time.Second)
		if err != nil {
			t.Errorf("accept: %v", err)
			close(acceptedCh)
			return
		}
		acceptedCh <- c
	}()

	c, err := cli.Dial(proxy.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	srvConn, ok := <-acceptedCh
	if !ok {
		t.FailNow()
	}
	// Let the transfer run, then yank the path out from under it.
	time.Sleep(200 * time.Millisecond)
	if err := proxy.Rebind(); err != nil {
		t.Fatalf("rebind: %v", err)
	}

	// The server keeps receiving the client's data — from the new source
	// address — and must reject every packet, observably.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("ep.migration_rejected").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := reg.Counter("ep.migration_rejected").Value(); n == 0 {
		t.Fatal("ep.migration_rejected never incremented after rebind")
	}

	// Both sides must fail terminally (idle timeout: no valid traffic
	// flows in either direction anymore) — never hang.
	if err := c.Wait(30 * time.Second); !errors.Is(err, ErrIdleTimeout) {
		t.Errorf("client conn err = %v, want ErrIdleTimeout", err)
	}
	if err := srvConn.Wait(30 * time.Second); !errors.Is(err, ErrIdleTimeout) {
		t.Errorf("server conn err = %v, want ErrIdleTimeout", err)
	}

	found := false
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindMigrationRejected && e.Flow == c.ConnID() {
			found = true
			break
		}
	}
	if !found {
		t.Error("no migration_rejected trace event recorded for the connection")
	}

	cli.Close()
	srv.Close()
	proxy.Close()
	leakCheck(t, before)
}
