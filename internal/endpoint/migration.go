package endpoint

import (
	crand "crypto/rand"
	"encoding/binary"
	"net"
	"time"

	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

// Path migration (QUIC-style address validation, cf. RFC 9000 §8.2/§9).
//
// A connection is bound to its handshake-time peer address. When a packet
// for a known ConnID arrives from somewhere else — a NAT rebind, a
// Wi-Fi→cellular roam, or an attacker spoofing the id — the new address
// must prove it actually hosts the peer before the connection follows it:
//
//	idle ──foreign packet──▶ probing ──matching PATH_RESPONSE──▶ validated
//	                            │                                (→ idle,
//	                            └──timeout / budget exhausted──▶ rejected
//
// While probing, the shard sends PATH_CHALLENGE frames carrying a
// crypto-random 64-bit token to the candidate address on the handshake
// retransmission schedule (250 ms doubling), and holds every other frame
// from that address back from the engines. Only a PATH_RESPONSE echoing
// the exact token *from the challenged address* validates it — an
// off-path attacker who triggered the probe never sees the token, and a
// replayed response from an earlier episode carries a stale one.
//
// Anti-amplification: until the address validates, bytes sent to it are
// capped at 3× the bytes received from it, so a spoofed source cannot
// turn the endpoint into a traffic amplifier (the cap is QUIC's).
//
// On validation the connection atomically (shard-owned state) repoints
// its peer address and resets the transport's path-derived state — the
// congestion controller restarts in slow start with fresh RTT estimators,
// because everything learned about the old path's capacity is stale (see
// transport.Sender.OnPathMigration). Failed or timed-out probes latch the
// candidate address into the rejected state: its packets take the
// pre-migration reject path (ep.migration_rejected + trace event), while
// a different new address may still open a fresh probe.
const (
	// migrationTimeout bounds one probing episode: a candidate address
	// that has not echoed the token within this window is rejected. Sized
	// like a handshake: several retransmit doublings beyond any sane RTT.
	migrationTimeout = 3 * time.Second
	// migAmplificationFactor caps bytes sent to an unvalidated address as
	// a multiple of bytes received from it (RFC 9000 §8.1's 3×).
	migAmplificationFactor = 3
)

// pathState is the migration state of a connection's candidate path.
type pathState uint8

const (
	pathIdle     pathState = iota // no candidate address
	pathProbing                   // challenge outstanding to migAddr
	pathRejected                  // migAddr failed validation; latched
)

func (s pathState) String() string {
	switch s {
	case pathProbing:
		return "probing"
	case pathRejected:
		return "rejected"
	default:
		return "idle"
	}
}

// randToken draws the 64-bit challenge token from crypto/rand: the token
// is the only thing standing between an off-path attacker and a
// connection hijack, so it must be unguessable.
func randToken() (uint64, error) {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

// wireSize is the bytes the packet occupies on the wire (encoding plus
// the CRC frame trailer) — the unit the amplification budget counts.
func wireSize(p *packet.Packet) int64 {
	return int64(p.EncodedLen() + frameTrailerLen)
}

// onForeignPacket handles a packet for an established connection arriving
// from an address other than the bound peer. Shard goroutine only.
func (sh *shard) onForeignPacket(c *Conn, p *packet.Packet, from *net.UDPAddr) {
	if !sh.ep.cfg.EnableMigration || !c.established {
		sh.rejectForeign(c, p)
		return
	}
	switch c.migState {
	case pathProbing:
		if addrEqual(from, c.migAddr) {
			c.migRx += wireSize(p)
			if p.Type == packet.TypePathResponse && p.Token == c.migToken {
				sh.completeMigration(c, p)
				return
			}
			// Non-response traffic from the candidate is held back until
			// the path validates (~1 RTT); the loss machinery repairs the
			// gap afterwards. Its bytes still widen the send budget.
			return
		}
		// The peer moved again mid-probe: chase the newest address with a
		// fresh token (the old episode's token dies with it).
		sh.startProbing(c, p, from)
	case pathRejected:
		if addrEqual(from, c.migAddr) {
			// The latched failed candidate: today's reject path.
			sh.rejectForeign(c, p)
			return
		}
		sh.startProbing(c, p, from)
	default: // pathIdle
		if p.Type == packet.TypePathResponse {
			// A response with no challenge outstanding proves nothing
			// (replay, or an attacker guessing): reject, don't probe.
			sh.rejectForeign(c, p)
			return
		}
		sh.startProbing(c, p, from)
	}
}

// rejectForeign is the pre-migration behavior, kept for disabled /
// unestablished / failed-candidate cases: count, tally for the
// migration-storm anomaly detector, trace through the flight recorder.
func (sh *shard) rejectForeign(c *Conn, p *packet.Packet) {
	sh.ep.mMigrationRejected.Inc()
	c.anom.migRejects++
	c.trc().MigrationRejected(c.vnow(), c.id, p.PktSeq, p.EncodedLen())
}

// startProbing opens a probing episode toward a new candidate address,
// seeded by the foreign packet p that announced it.
func (sh *shard) startProbing(c *Conn, p *packet.Packet, from *net.UDPAddr) {
	tok, err := randToken()
	if err != nil {
		// No entropy, no safe challenge: fall back to rejecting.
		sh.rejectForeign(c, p)
		return
	}
	c.migState = pathProbing
	c.migAddr = cloneAddr(from)
	c.migToken = tok
	c.migRx = wireSize(p)
	c.migTx = 0
	c.migRetries = 0
	c.migChallenges = 0
	c.migStarted = sh.now
	c.migDeadline = sh.now.Add(migrationTimeout)
	sh.sendChallenge(c)
}

// sendChallenge emits one PATH_CHALLENGE to the candidate address, unless
// the anti-amplification budget is exhausted — then it backs off to the
// next lifecycle tick, waiting for the candidate to send more bytes.
func (sh *shard) sendChallenge(c *Conn) {
	c.advance()
	chp := &packet.Packet{
		Type: packet.TypePathChallenge, ConnID: c.id,
		SentAt: c.vnow(), Token: c.migToken,
	}
	size := wireSize(chp)
	if c.migTx+size > migAmplificationFactor*c.migRx {
		// Budget-blocked: re-check every tick; the episode deadline still
		// bounds how long a silent candidate is tolerated.
		c.migNext = sh.now
		return
	}
	c.migTx += size
	c.migChallenges++
	c.migNext = sh.now.Add(sh.ep.cfg.handshakeRetryRTO(c.migRetries))
	c.migRetries++
	sh.ep.mMigProbes.Inc()
	c.trc().PathChallenge(c.vnow(), c.id, c.migChallenges, int(size))
	sh.enqueue(chp, c.migAddr)
}

// migrationTick drives the probing episode's retransmit schedule and
// deadline from the shard's 1 ms lifecycle tick.
func (sh *shard) migrationTick(c *Conn, now time.Time) {
	if now.After(c.migDeadline) {
		sh.failMigration(c)
		return
	}
	if now.After(c.migNext) {
		sh.sendChallenge(c)
	}
}

// failMigration latches a candidate that never proved itself: subsequent
// packets from it take the reject path, a different address may still
// open a fresh probe.
func (sh *shard) failMigration(c *Conn) {
	c.migState = pathRejected
	sh.ep.mMigFailed.Inc()
	sh.refreshSnapshot(c)
}

// completeMigration repoints the connection at the validated address and
// resets the transport's path-derived state (slow-start restart, fresh
// RTT estimators) — everything learned about the old path is stale.
func (sh *shard) completeMigration(c *Conn, p *packet.Packet) {
	elapsed := sh.now.Sub(c.migStarted)
	c.peer = c.migAddr
	c.migState = pathIdle
	c.migAddr = nil
	c.migCompleted++
	c.lastRecv = sh.now
	c.advance()
	c.trc().PathResponse(c.vnow(), c.id, p.EncodedLen())
	if c.snd != nil {
		c.snd.OnPathMigration()
	}
	if c.rcv != nil {
		c.rcv.OnPathMigration()
	}
	sh.ep.mMigCompleted.Inc()
	c.trc().MigrationCompleted(c.vnow(), c.id, c.migChallenges, sim.Time(elapsed))
	sh.refreshSnapshot(c)
}

// onPathChallenge answers an on-path PATH_CHALLENGE from the bound peer:
// echo the token so the peer (whose view of *our* address changed — e.g.
// its NAT mapping for us expired) can validate this path. Answering is
// unconditional — it proves nothing beyond "we are here" — but only to
// the bound peer: echoing tokens for arbitrary third parties would make
// the endpoint a validation oracle. Shard goroutine only.
func (sh *shard) onPathChallenge(c *Conn, p *packet.Packet) {
	c.advance()
	c.output(&packet.Packet{
		Type: packet.TypePathResponse, ConnID: c.id,
		SentAt: c.vnow(), Token: p.Token,
	})
}
