package endpoint

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/batchio"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// TestSocketGroupEndToEnd binds a 4-socket server group and drives it
// from many client endpoints — each client is its own UDP socket, so
// each contributes a distinct 4-tuple and the kernel's SO_REUSEPORT
// flow hash can spread them across the group. Asserts the steering
// invariant end to end: every transfer completes regardless of which
// member its packets land on, the per-socket rx counters sum exactly to
// the endpoint-wide count, and (on reuseport platforms) more than one
// member actually saw traffic.
func TestSocketGroupEndToEnd(t *testing.T) {
	const (
		clients = 16
		size    = 32 << 10
	)
	reg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", Config{
		Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: reg},
		Sockets:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := 4
	if !batchio.ReusePortSupported() {
		want = 1
	}
	if got := srv.SocketCount(); got != want {
		t.Fatalf("SocketCount = %d, want %d", got, want)
	}
	if g := reg.Snapshot().Gauges["ep.sock.count"]; g != float64(want) {
		t.Fatalf("ep.sock.count gauge = %v, want %d", g, want)
	}

	go func() {
		for {
			if _, err := srv.Accept(); err != nil {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Listen("127.0.0.1:0", Config{
				Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: size},
			})
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			c, err := cli.Dial(srv.LocalAddr().String())
			if err != nil {
				errs <- err
				return
			}
			errs <- c.Wait(30 * time.Second)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	s := reg.Snapshot()
	var perSock int64
	busy := 0
	for i := 0; i < srv.SocketCount(); i++ {
		rx := s.Counters[fmt.Sprintf("ep.sock.%d.rx_packets", i)]
		perSock += rx
		if rx > 0 {
			busy++
		}
	}
	if total := s.Counters["ep.rx_packets"]; perSock != total {
		t.Fatalf("per-socket rx sum %d != ep.rx_packets %d", perSock, total)
	}
	if srv.SocketCount() > 1 && busy < 2 {
		t.Fatalf("only %d of %d group sockets saw traffic from %d distinct clients",
			busy, srv.SocketCount(), clients)
	}
	// No stray per-socket registrations beyond the group size.
	for name := range s.Counters {
		if strings.HasPrefix(name, fmt.Sprintf("ep.sock.%d.", srv.SocketCount())) {
			t.Fatalf("unexpected metric %q beyond socket group", name)
		}
	}
}

// TestSocketCountDefault checks the zero-value config keeps today's
// single-socket shape, and that the effective count is readable back.
func TestSocketCountDefault(t *testing.T) {
	reg := telemetry.NewRegistry()
	ep, err := Listen("127.0.0.1:0", Config{
		Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: 1, Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if got := ep.SocketCount(); got != 1 {
		t.Fatalf("default SocketCount = %d, want 1", got)
	}
	if g := reg.Snapshot().Gauges["ep.sock.count"]; g != 1 {
		t.Fatalf("ep.sock.count gauge = %v, want 1", g)
	}
}

// TestShardForConsistency checks the demux hash is stable (the steering
// invariant depends on every read loop routing a ConnID to the same
// shard), agrees between the mask and modulo paths when both apply, and
// spreads ids evenly enough that no shard sits idle.
func TestShardForConsistency(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8, 3, 6} {
		ep := &Endpoint{shards: make([]*shard, shards)}
		for i := range ep.shards {
			ep.shards[i] = &shard{}
		}
		if n := uint32(shards); n&(n-1) == 0 {
			ep.shardMask, ep.shardPow2 = n-1, true
		}
		counts := map[*shard]int{}
		const ids = 1 << 14
		for id := uint32(1); id <= ids; id++ {
			sh := ep.shardFor(id)
			if sh != ep.shardFor(id) {
				t.Fatalf("shards=%d: shardFor(%d) not stable", shards, id)
			}
			// The mask path must pick the same shard modulo would: both
			// reduce the same mixed hash, so pow2 counts agree by
			// construction — verify rather than trust.
			h := id * 2654435761
			h ^= h >> 16
			if want := ep.shards[h%uint32(shards)]; sh != want {
				t.Fatalf("shards=%d: mask and modulo disagree for id %d", shards, id)
			}
			counts[sh]++
		}
		for i, sh := range ep.shards {
			got := counts[sh]
			mean := ids / shards
			if got < mean/2 || got > mean*2 {
				t.Fatalf("shards=%d: shard %d got %d of %d ids (mean %d)", shards, i, got, ids, mean)
			}
		}
	}
}

// TestFloorPow2 pins the rounding used for the default shard count.
func TestFloorPow2(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 4}, {7, 4}, {8, 8}, {9, 8}, {16, 16},
	} {
		if got := floorPow2(tc.in); got != tc.want {
			t.Errorf("floorPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestNextReadBackoff pins the read-loop retry schedule: exponential
// from readBackoffMin, capped at readBackoffMax.
func TestNextReadBackoff(t *testing.T) {
	var d time.Duration
	seen := []time.Duration{}
	for i := 0; i < 12; i++ {
		d = nextReadBackoff(d)
		seen = append(seen, d)
	}
	if seen[0] != readBackoffMin {
		t.Fatalf("first backoff %v, want %v", seen[0], readBackoffMin)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("backoff not monotonic: %v", seen)
		}
		if seen[i] > readBackoffMax {
			t.Fatalf("backoff %v exceeds cap %v", seen[i], readBackoffMax)
		}
	}
	if seen[len(seen)-1] != readBackoffMax {
		t.Fatalf("backoff never reached cap: %v", seen)
	}
}

// TestReadLoopErrorBackoff wedges the endpoint's socket with a read
// deadline in the past — every ReadBatch fails with a timeout — and
// checks the read loop (a) counts the failures on ep.rx_err, not
// ep.rx_garbage, and (b) backs off instead of spinning: in half a
// second of a persistently failing socket the retry schedule allows
// only a handful of attempts, where the old spin loop burned millions.
// Clearing the deadline must return the endpoint to full service.
func TestReadLoopErrorBackoff(t *testing.T) {
	const size = 4 << 10
	reg := telemetry.NewRegistry()
	srv, err := Listen("127.0.0.1:0", Config{
		Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: size, Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		for {
			if _, err := srv.Accept(); err != nil {
				return
			}
		}
	}()

	srv.socks[0].uc.SetReadDeadline(time.Unix(1, 0))
	time.Sleep(500 * time.Millisecond)
	s := reg.Snapshot()
	if got := s.Counters["ep.rx_err"]; got < 2 || got > 100 {
		t.Fatalf("ep.rx_err = %d after 500ms of failing reads, want a backed-off handful (2..100)", got)
	}
	if got := s.Counters["ep.rx_garbage"]; got != 0 {
		t.Fatalf("socket errors leaked into ep.rx_garbage (= %d)", got)
	}

	srv.socks[0].uc.SetReadDeadline(time.Time{})
	cli, err := Listen("127.0.0.1:0", Config{
		Transport: transport.Config{Mode: transport.ModeTACK, TransferBytes: size},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	c, err := cli.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial after clearing the wedged deadline: %v", err)
	}
	if err := c.Wait(30 * time.Second); err != nil {
		t.Fatalf("transfer after recovery: %v", err)
	}
}

// BenchmarkShardFor measures the demux hot path: the power-of-two mask
// variant (the defaulted configuration) must be no slower than the
// modulo fallback it replaced.
func BenchmarkShardFor(b *testing.B) {
	mk := func(n int) *Endpoint {
		ep := &Endpoint{shards: make([]*shard, n)}
		for i := range ep.shards {
			ep.shards[i] = &shard{}
		}
		if u := uint32(n); u&(u-1) == 0 {
			ep.shardMask, ep.shardPow2 = u-1, true
		}
		return ep
	}
	for _, tc := range []struct {
		name string
		ep   *Endpoint
	}{
		{"mask8", mk(8)},
		{"mod6", mk(6)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var sink *shard
			for i := 0; i < b.N; i++ {
				sink = tc.ep.shardFor(uint32(i) * 2246822519)
			}
			_ = sink
		})
	}
}
