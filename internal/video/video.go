// Package video models the Miracast-style screen-projection workload of the
// paper's §6.4 deployment study: a constant-frame-rate encoder feeding a
// transport, and a playout model charging rebuffering (reliable transports
// that fall behind) and macroblocking artifacts (unreliable transports that
// lose frame fragments).
//
// The metrics mirror Figure 11: rebuffering ratio (fraction of wall-clock
// time the playout buffer is empty) and macroblocking events per 30 minutes
// (frames rendered with missing fragments).
package video

import "github.com/tacktp/tack/internal/sim"

// Source generates encoded video frames at a constant frame rate and
// average bit rate with a configurable peak factor (I-frames).
type Source struct {
	FPS        int
	AvgBitrate float64 // bits/s
	// PeakFactor scales every GOPSize-th frame (I-frame); the paper notes
	// UHD video needs ~2x peak over average.
	PeakFactor float64
	GOPSize    int

	frame int
}

// NewSource returns a 60 fps source at the given average bit rate with 2x
// I-frames every 30 frames (a typical Miracast configuration).
func NewSource(avgBitrate float64) *Source {
	return &Source{FPS: 60, AvgBitrate: avgBitrate, PeakFactor: 2, GOPSize: 30}
}

// Interval returns the frame period.
func (s *Source) Interval() sim.Time { return sim.Second / sim.Time(s.FPS) }

// NextFrameBytes returns the size of the next frame in bytes.
func (s *Source) NextFrameBytes() int {
	base := s.AvgBitrate / float64(s.FPS) / 8
	s.frame++
	gop := s.GOPSize
	if gop <= 0 {
		gop = 30
	}
	if s.frame%gop == 1 && s.PeakFactor > 1 {
		// Redistribute: I-frame takes PeakFactor×, P-frames shrink so the
		// average holds.
		return int(base * s.PeakFactor)
	}
	shrink := (float64(gop) - s.PeakFactor) / float64(gop-1)
	return int(base * shrink)
}

// Playout consumes frames at the source frame rate and accounts stalls and
// artifacts.
type Playout struct {
	fps        int
	frameDur   sim.Time
	buffered   int // frames ready to render
	target     int // startup/rebuffer threshold in frames
	buffering  bool
	bufferFrom sim.Time

	// Metrics.
	Played       int
	Macroblocked int
	Stalls       int
	StallTime    sim.Time
	started      bool
	startAt      sim.Time
	lastTick     sim.Time
}

// NewPlayout returns a playout buffer targeting the given startup depth in
// frames (e.g. 5 frames ≈ 83 ms at 60 fps).
func NewPlayout(fps, targetFrames int) *Playout {
	if targetFrames < 1 {
		targetFrames = 1
	}
	return &Playout{fps: fps, frameDur: sim.Second / sim.Time(fps), target: targetFrames, buffering: true}
}

// OnFrame delivers a decoded frame at time now; corrupted marks a frame
// rendered with missing data (macroblocking) rather than discarded.
func (p *Playout) OnFrame(now sim.Time, corrupted bool) {
	if !p.started {
		p.started = true
		p.startAt = now
		p.bufferFrom = now
		p.lastTick = now
	}
	if corrupted {
		p.Macroblocked++
	}
	p.buffered++
	if p.buffering && p.buffered >= p.target {
		p.buffering = false
		p.StallTime += now - p.bufferFrom
	}
}

// Tick advances playout to time now, consuming frames at the frame rate.
// Call at frame-interval granularity or coarser.
func (p *Playout) Tick(now sim.Time) {
	if !p.started {
		return
	}
	for p.lastTick+p.frameDur <= now {
		p.lastTick += p.frameDur
		if p.buffering {
			continue
		}
		if p.buffered == 0 {
			p.buffering = true
			p.bufferFrom = p.lastTick
			p.Stalls++
			continue
		}
		p.buffered--
		p.Played++
	}
}

// Finish closes accounting at time now.
func (p *Playout) Finish(now sim.Time) {
	p.Tick(now)
	if p.buffering && p.started {
		p.StallTime += now - p.bufferFrom
	}
}

// RebufferRatio returns stalled time over total session time.
func (p *Playout) RebufferRatio(now sim.Time) float64 {
	if !p.started || now <= p.startAt {
		return 0
	}
	total := now - p.startAt
	r := float64(p.StallTime) / float64(total)
	if r > 1 {
		r = 1
	}
	return r
}

// MacroblockPer30Min scales the artifact count to the paper's
// times-per-30-minutes unit.
func (p *Playout) MacroblockPer30Min(sessionDur sim.Time) float64 {
	if sessionDur <= 0 {
		return 0
	}
	return float64(p.Macroblocked) * (30 * 60) / sessionDur.Seconds()
}
