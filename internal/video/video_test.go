package video

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func TestSourceAverageBitrate(t *testing.T) {
	s := NewSource(16e6) // 16 Mbit/s UHD stream
	total := 0
	for i := 0; i < 600; i++ { // 10 seconds at 60 fps
		total += s.NextFrameBytes()
	}
	gotBps := float64(total) * 8 / 10
	if gotBps < 15e6 || gotBps > 17e6 {
		t.Fatalf("average bit rate %.1f Mbit/s, want ~16", gotBps/1e6)
	}
}

func TestSourceIFramePeaks(t *testing.T) {
	s := NewSource(16e6)
	first := s.NextFrameBytes() // I-frame
	second := s.NextFrameBytes()
	if first <= second {
		t.Fatalf("I-frame (%d) should exceed P-frame (%d)", first, second)
	}
}

func TestPlayoutSmoothSession(t *testing.T) {
	p := NewPlayout(60, 3)
	dur := 10 * sim.Second
	frame := sim.Second / 60
	// Frames arrive on time.
	for at := sim.Time(0); at < dur; at += frame {
		p.OnFrame(at, false)
		p.Tick(at)
	}
	p.Finish(dur)
	if p.Stalls != 0 {
		t.Fatalf("smooth session stalled %d times", p.Stalls)
	}
	if ratio := p.RebufferRatio(dur); ratio > 0.02 {
		t.Fatalf("rebuffer ratio %.3f on a smooth session", ratio)
	}
	if p.Played < 500 {
		t.Fatalf("played only %d frames", p.Played)
	}
}

func TestPlayoutStallsOnStarvation(t *testing.T) {
	p := NewPlayout(60, 3)
	frame := sim.Second / 60
	// 2 seconds of frames, then a 3-second gap, then more frames.
	at := sim.Time(0)
	for ; at < 2*sim.Second; at += frame {
		p.OnFrame(at, false)
		p.Tick(at)
	}
	at += 3 * sim.Second
	for ; at < 7*sim.Second; at += frame {
		p.OnFrame(at, false)
		p.Tick(at)
	}
	p.Finish(at)
	if p.Stalls == 0 {
		t.Fatal("starved playout did not stall")
	}
	ratio := p.RebufferRatio(at)
	if ratio < 0.2 || ratio > 0.7 {
		t.Fatalf("rebuffer ratio %.2f, want ~3s/7s", ratio)
	}
}

func TestMacroblockAccounting(t *testing.T) {
	p := NewPlayout(60, 3)
	frame := sim.Second / 60
	at := sim.Time(0)
	for i := 0; i < 600; i++ {
		p.OnFrame(at, i%100 == 0) // 6 corrupted frames
		p.Tick(at)
		at += frame
	}
	p.Finish(at)
	if p.Macroblocked != 6 {
		t.Fatalf("macroblocked = %d, want 6", p.Macroblocked)
	}
	// 6 events in 10 s → 1080 per 30 min.
	per30 := p.MacroblockPer30Min(at)
	if per30 < 1000 || per30 > 1200 {
		t.Fatalf("per-30min = %.0f, want ~1080", per30)
	}
}

func TestRebufferRatioBeforeStart(t *testing.T) {
	p := NewPlayout(60, 3)
	if p.RebufferRatio(sim.Second) != 0 {
		t.Fatal("unstarted playout should report 0")
	}
}
