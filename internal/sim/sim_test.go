package sim

import (
	"testing"
	"testing/quick"
)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop(1)
	var order []int
	l.At(30*Microsecond, func() { order = append(order, 3) })
	l.At(10*Microsecond, func() { order = append(order, 1) })
	l.At(20*Microsecond, func() { order = append(order, 2) })
	l.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if l.Now() != 30*Microsecond {
		t.Fatalf("clock = %v, want 30µs", l.Now())
	}
}

func TestLoopFIFOTieBreak(t *testing.T) {
	l := NewLoop(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5*Millisecond, func() { order = append(order, i) })
	}
	l.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestLoopCancel(t *testing.T) {
	l := NewLoop(1)
	fired := false
	e := l.At(Millisecond, func() { fired = true })
	e.Cancel()
	l.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestLoopRunUntil(t *testing.T) {
	l := NewLoop(1)
	var fired []Time
	for _, at := range []Time{Millisecond, 2 * Millisecond, 3 * Millisecond} {
		at := at
		l.At(at, func() { fired = append(fired, at) })
	}
	l.RunUntil(2 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if l.Now() != 2*Millisecond {
		t.Fatalf("clock = %v, want 2ms", l.Now())
	}
	l.RunUntil(10 * Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if l.Now() != 10*Millisecond {
		t.Fatalf("clock = %v, want 10ms (deadline)", l.Now())
	}
}

func TestLoopSchedulingInsideEvent(t *testing.T) {
	l := NewLoop(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			l.After(Millisecond, tick)
		}
	}
	l.After(0, tick)
	l.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if l.Now() != 4*Millisecond {
		t.Fatalf("clock = %v, want 4ms", l.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	l := NewLoop(1)
	l.At(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		l.At(0, func() {})
	})
	l.Run()
}

func TestTimerResetStop(t *testing.T) {
	l := NewLoop(1)
	fires := 0
	tm := NewTimer(l, func() { fires++ })
	tm.ResetAfter(Millisecond)
	tm.ResetAfter(2 * Millisecond) // supersedes the first arm
	l.Run()
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
	if l.Now() != 2*Millisecond {
		t.Fatalf("timer fired at %v, want 2ms", l.Now())
	}

	tm.ResetAfter(Millisecond)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer should be disarmed")
	}
	l.Run()
	if fires != 1 {
		t.Fatalf("stopped timer fired; fires = %d", fires)
	}
}

func TestTimerDeadline(t *testing.T) {
	l := NewLoop(1)
	tm := NewTimer(l, func() {})
	tm.Reset(7 * Millisecond)
	if got := tm.Deadline(); got != 7*Millisecond {
		t.Fatalf("Deadline = %v, want 7ms", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		l := NewLoop(42)
		var vals []int64
		var step func()
		step = func() {
			vals = append(vals, l.Rand().Int63n(1000))
			if len(vals) < 100 {
				l.After(Time(l.Rand().Int63n(int64(Millisecond))), step)
			}
		}
		l.After(0, step)
		l.Run()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of scheduled offsets, events fire in nondecreasing
// time order and the loop terminates with the clock at the max offset.
func TestQuickEventOrdering(t *testing.T) {
	f := func(offsets []uint32) bool {
		l := NewLoop(7)
		var fired []Time
		var max Time
		for _, o := range offsets {
			at := Time(o)
			if at > max {
				max = at
			}
			l.At(at, func() { fired = append(fired, l.Now()) })
		}
		l.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(offsets) == 0 || l.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	ts := 1500 * Millisecond
	if ts.Duration().Milliseconds() != 1500 {
		t.Fatalf("Duration = %v", ts.Duration())
	}
	if ts.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", ts.Seconds())
	}
	if ts.String() != "1.5s" {
		t.Fatalf("String = %q", ts.String())
	}
}

func TestEventIntrospection(t *testing.T) {
	l := NewLoop(1)
	e := l.At(5*Millisecond, func() {})
	if e.Time() != 5*Millisecond {
		t.Fatalf("Time = %v", e.Time())
	}
	if e.Cancelled() {
		t.Fatal("fresh event reported cancelled")
	}
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancel not observed")
	}
	var nilEvent *Event
	nilEvent.Cancel() // must not panic
	if nilEvent.Cancelled() {
		t.Fatal("nil event reported cancelled")
	}
}

func TestLoopCounters(t *testing.T) {
	l := NewLoop(1)
	if l.Pending() != 0 || l.Fired() != 0 {
		t.Fatal("fresh loop has activity")
	}
	l.At(Millisecond, func() {})
	l.At(2*Millisecond, func() {})
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d", l.Pending())
	}
	l.Run()
	if l.Fired() != 2 || l.Pending() != 0 {
		t.Fatalf("Fired/Pending = %d/%d", l.Fired(), l.Pending())
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	l := NewLoop(1)
	fired := false
	l.After(-Millisecond, func() { fired = true })
	l.Run()
	if !fired {
		t.Fatal("negative After should fire immediately")
	}
	if l.Now() != 0 {
		t.Fatalf("clock = %v", l.Now())
	}
}
