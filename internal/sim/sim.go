// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (the 802.11 MAC, the wired link emulator, the
// transport endpoints) schedule callbacks on a single Loop. The loop owns a
// virtual clock with nanosecond resolution; events fire in strict timestamp
// order, with insertion order breaking ties so a run is fully reproducible
// for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured as a duration since the start of the
// simulation. It is deliberately distinct from time.Time so that simulated
// code cannot accidentally consult the wall clock.
type Time time.Duration

// Common virtual-time constants mirroring the time package.
const (
	Nanosecond  Time = Time(time.Nanosecond)
	Microsecond Time = Time(time.Microsecond)
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
)

// Duration converts t to a time.Duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the timestamp expressed in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats the timestamp like a time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among equal timestamps
	fn     func()
	index  int // heap index, -1 when popped or cancelled
	cancel bool
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop. It is not safe for
// concurrent use; simulated components must only touch it from event
// callbacks (which the loop serializes by construction).
type Loop struct {
	now    Time
	queue  eventQueue
	nextID uint64
	rng    *rand.Rand
	fired  uint64
}

// NewLoop returns a loop whose random source is seeded with seed.
// Identical seeds yield identical runs.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand exposes the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Fired returns the number of events executed so far (useful in tests and
// as a runaway guard).
func (l *Loop) Fired() uint64 { return l.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been popped).
func (l *Loop) Pending() int { return len(l.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (l *Loop) At(at Time, fn func()) *Event {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
	}
	e := &Event{at: at, seq: l.nextID, fn: fn}
	l.nextID++
	heap.Push(&l.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (l *Loop) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports false when the queue is empty.
func (l *Loop) Step() bool {
	for len(l.queue) > 0 {
		e := heap.Pop(&l.queue).(*Event)
		if e.cancel {
			continue
		}
		l.now = e.at
		l.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (l *Loop) RunUntil(deadline Time) {
	for len(l.queue) > 0 {
		// Peek cheapest event without popping cancelled ones eagerly.
		e := l.queue[0]
		if e.cancel {
			heap.Pop(&l.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// Timer is a resettable one-shot timer on a Loop, the building block for
// protocol retransmission and ack-delay timers.
type Timer struct {
	loop *Loop
	ev   *Event
	fn   func()
}

// NewTimer returns an unarmed timer invoking fn when it fires.
func NewTimer(loop *Loop, fn func()) *Timer {
	return &Timer{loop: loop, fn: fn}
}

// Reset (re)arms the timer to fire at absolute time at; deadlines already
// in the past fire as soon as possible.
func (t *Timer) Reset(at Time) {
	t.Stop()
	if at < t.loop.Now() {
		at = t.loop.Now()
	}
	t.ev = t.loop.At(at, func() {
		t.ev = nil
		t.fn()
	})
}

// ResetAfter (re)arms the timer to fire d from now.
func (t *Timer) ResetAfter(d Time) { t.Reset(t.loop.Now() + d) }

// Stop disarms the timer if pending.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending fire time; valid only when Armed.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.at
}
