package buffer

import (
	"testing"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

func sentSeg(seq uint64, n int, pkt uint64, at sim.Time) *Segment {
	s := seg(seq, n, pkt)
	s.SentAt = at
	return s
}

func TestScanRackLossesEqualTimestampTiebreak(t *testing.T) {
	// A paced burst emits several segments at one instant. When one of
	// them is delivered, its same-timestamp siblings with *higher* packet
	// numbers were sent after it and must not be loss candidates — only
	// strictly-earlier (sentAt, PktSeq) entries are.
	b := NewSendBuffer()
	at := 10 * sim.Millisecond
	for pkt := uint64(1); pkt <= 4; pkt++ {
		b.Insert(sentSeg((pkt-1)*100, 100, pkt, at))
	}
	b.BeginRateSample(30*sim.Millisecond, 0)
	b.AckPktRanges([]seqspace.Range{{Lo: 2, Hi: 3}}) // deliver pkt 2 only

	cutoff, cutoffPkt, ok := b.RackState()
	if !ok || cutoff != at || cutoffPkt != 2 {
		t.Fatalf("RackState = (%v, %d, %v), want (%v, 2, true)", cutoff, cutoffPkt, ok, at)
	}
	var cand []uint64
	b.ScanRackLosses(cutoff, cutoffPkt, func(s *Segment) bool {
		cand = append(cand, s.PktSeq)
		return true
	})
	if len(cand) != 1 || cand[0] != 1 {
		t.Fatalf("candidates = %v, want [1]: same-instant later packets must be excluded", cand)
	}
}

func TestScanRackLossesStopsAtPendingEntry(t *testing.T) {
	// The callback refusing a segment (deadline not yet reached) halts the
	// scan and reports the entry's send time so the caller can re-arm a
	// timer for it.
	b := NewSendBuffer()
	b.Insert(sentSeg(0, 100, 1, 5*sim.Millisecond))
	b.Insert(sentSeg(100, 100, 2, 6*sim.Millisecond))
	b.Insert(sentSeg(200, 100, 3, 20*sim.Millisecond))
	b.BeginRateSample(45*sim.Millisecond, 0)
	b.AckPktRanges([]seqspace.Range{{Lo: 3, Hi: 4}})

	marked := 0
	sentAt, pending := b.ScanRackLosses(20*sim.Millisecond, 3, func(s *Segment) bool {
		if s.PktSeq == 2 {
			return false // pretend pkt 2 is inside its reorder window
		}
		b.MarkLoss(s)
		marked++
		return true
	})
	if marked != 1 {
		t.Fatalf("marked %d segments, want 1", marked)
	}
	if !pending || sentAt != 6*sim.Millisecond {
		t.Fatalf("pending = (%v, %v), want (6ms, true)", sentAt, pending)
	}
}

func TestAmbiguousRetransmitAckDoesNotAdvanceRackClock(t *testing.T) {
	// Segment pkt 1 is retransmitted as pkt 3 at t=100ms; an ack releasing
	// it arrives at t=105ms. With a 20ms RTT floor the delivery can only
	// have been the *original* transmission, so the RACK clock must not
	// jump to the retransmit timestamp (which would spuriously age every
	// other in-flight segment).
	b := NewSendBuffer()
	s1 := sentSeg(0, 100, 1, 10*sim.Millisecond)
	b.Insert(s1)
	b.Insert(sentSeg(100, 100, 2, 11*sim.Millisecond))
	b.Retransmitted(s1, 3, 100*sim.Millisecond)

	b.BeginRateSample(105*sim.Millisecond, 20*sim.Millisecond)
	b.AckPktRanges([]seqspace.Range{{Lo: 3, Hi: 4}})
	if _, _, ok := b.RackState(); ok {
		t.Fatal("ambiguous retransmit ack advanced the RACK clock")
	}

	// The same release pattern with a plausible RTT (ack at 125ms) is a
	// genuine delivery of the retransmission and does advance it.
	b2 := NewSendBuffer()
	s := sentSeg(0, 100, 1, 10*sim.Millisecond)
	b2.Insert(s)
	b2.Retransmitted(s, 3, 100*sim.Millisecond)
	b2.BeginRateSample(125*sim.Millisecond, 20*sim.Millisecond)
	b2.AckPktRanges([]seqspace.Range{{Lo: 3, Hi: 4}})
	if xmit, pkt, ok := b2.RackState(); !ok || xmit != 100*sim.Millisecond || pkt != 3 {
		t.Fatalf("RackState = (%v, %d, %v), want (100ms, 3, true)", xmit, pkt, ok)
	}
}

func TestNewestReturnsHighestUnreleased(t *testing.T) {
	b := NewSendBuffer()
	if b.Newest() != nil {
		t.Fatal("empty buffer should have no newest segment")
	}
	b.Insert(sentSeg(0, 100, 1, 1*sim.Millisecond))
	b.Insert(sentSeg(100, 100, 2, 2*sim.Millisecond))
	b.Insert(sentSeg(200, 100, 3, 3*sim.Millisecond))
	b.BeginRateSample(10*sim.Millisecond, 0)
	b.AckPktRanges([]seqspace.Range{{Lo: 3, Hi: 4}}) // tail released selectively
	got := b.Newest()
	if got == nil || got.Seq != 100 {
		t.Fatalf("Newest = %+v, want seq 100", got)
	}
}
