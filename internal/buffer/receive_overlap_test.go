package buffer

// Receive-side overlap handling: retransmitted ranges that partially
// overlap data already delivered to the application, already buffered, or
// both. The invariants: Offer accepts each byte at most once (accounting
// must never double-count), already-consumed bytes are silently clipped,
// and window/blocked accounting stays exact through arbitrary overlap.

import "testing"

// TestOfferStraddlesConsumedFrontier retransmits a range that begins
// before the application's read frontier and extends past everything
// buffered: only the genuinely new tail may be accepted.
func TestOfferStraddlesConsumedFrontier(t *testing.T) {
	b := NewReceiveBuffer(1 << 16)
	if acc, _ := b.Offer(0, 1000); acc != 1000 {
		t.Fatalf("initial offer accepted %d, want 1000", acc)
	}
	if got := b.Read(600); got != 600 {
		t.Fatalf("read %d, want 600", got)
	}
	// Retransmission [400,1400): [400,600) is consumed, [600,1000) is
	// buffered, [1000,1400) is new.
	acc, overflow := b.Offer(400, 1000)
	if overflow {
		t.Fatal("overlapping retransmission reported overflow")
	}
	if acc != 400 {
		t.Errorf("accepted %d bytes, want 400 (only the new tail)", acc)
	}
	if got := b.Readable(); got != 800 {
		t.Errorf("readable %d, want 800 ([600,1400) contiguous)", got)
	}
	if ne := b.NextExpected(); ne != 1400 {
		t.Errorf("NextExpected %d, want 1400", ne)
	}
}

// TestOfferOverlapsBufferedBlock retransmits across the front edge of an
// out-of-order block: only the hole bytes count, and the stream stays
// blocked until the rest of the hole fills.
func TestOfferOverlapsBufferedBlock(t *testing.T) {
	b := NewReceiveBuffer(1 << 16)
	b.Offer(0, 1000)    // in-order prefix
	b.Offer(2000, 1000) // out-of-order block, hole at [1000,2000)
	if got := b.BlockedBytes(); got != 1000 {
		t.Fatalf("blocked %d, want 1000", got)
	}
	acc, _ := b.Offer(1500, 1000) // [1500,2500): half hole, half duplicate
	if acc != 500 {
		t.Errorf("accepted %d, want 500 (the [1500,2000) hole bytes)", acc)
	}
	if ne := b.NextExpected(); ne != 1000 {
		t.Errorf("NextExpected %d, want 1000 (hole [1000,1500) remains)", ne)
	}
	if got := b.BlockedBytes(); got != 1500 {
		t.Errorf("blocked %d, want 1500 ([1500,3000))", got)
	}
	// Fill the remaining hole with another overlapping retransmission.
	if acc, _ := b.Offer(900, 700); acc != 500 {
		t.Errorf("hole fill accepted %d, want 500", acc)
	}
	if ne := b.NextExpected(); ne != 3000 {
		t.Errorf("NextExpected %d, want 3000 after hole fill", ne)
	}
	if got := b.BlockedBytes(); got != 0 {
		t.Errorf("blocked %d, want 0", got)
	}
}

// TestOfferEntirelyConsumed replays data the application has fully read:
// zero acceptance, no overflow, and delivery accounting untouched.
func TestOfferEntirelyConsumed(t *testing.T) {
	b := NewReceiveBuffer(1 << 12)
	b.Offer(0, 2048)
	b.Read(2048)
	for _, tc := range []struct{ seq, n uint64 }{
		{0, 2048},    // full replay
		{1024, 1024}, // tail replay ending exactly at the frontier
		{2047, 1},    // final byte
	} {
		acc, overflow := b.Offer(tc.seq, int(tc.n))
		if acc != 0 || overflow {
			t.Errorf("Offer(%d,%d) = (%d,%v), want (0,false)", tc.seq, tc.n, acc, overflow)
		}
	}
	if d := b.Delivered(); d != 2048 {
		t.Errorf("delivered %d, want 2048", d)
	}
	if w := b.Window(); w != 1<<12 {
		t.Errorf("window %d after full drain, want %d", w, 1<<12)
	}
}

// TestOfferSpansMultipleIslands lands one retransmitted range across two
// buffered islands and the gaps around them: every gap byte is accepted
// exactly once.
func TestOfferSpansMultipleIslands(t *testing.T) {
	b := NewReceiveBuffer(1 << 16)
	b.Offer(100, 100) // [100,200)
	b.Offer(300, 100) // [300,400)
	acc, _ := b.Offer(50, 400)
	// [50,450) minus the 200 already-buffered bytes = 200 new.
	if acc != 200 {
		t.Errorf("accepted %d, want 200", acc)
	}
	if ne := b.NextExpected(); ne != 0 {
		t.Errorf("NextExpected %d, want 0 ([0,50) still missing)", ne)
	}
	if acc, _ := b.Offer(0, 50); acc != 50 {
		t.Error("prefix fill rejected")
	}
	if ne := b.NextExpected(); ne != 450 {
		t.Errorf("NextExpected %d, want 450", ne)
	}
	if got := b.Readable(); got != 450 {
		t.Errorf("readable %d, want 450", got)
	}
}

// TestOverlapBeyondCapacityRefused checks that a retransmission whose new
// tail would exceed the advertised buffer is refused outright even though
// its head overlaps valid delivered data — partial acceptance would ack
// bytes the receiver cannot hold.
func TestOverlapBeyondCapacityRefused(t *testing.T) {
	b := NewReceiveBuffer(1000)
	b.Offer(0, 500)
	b.Read(200) // frontier at 200, capacity covers [200,1200)
	acc, overflow := b.Offer(400, 900)
	if !overflow || acc != 0 {
		t.Errorf("Offer past capacity = (%d,%v), want (0,true)", acc, overflow)
	}
	// The same range trimmed to capacity is fine.
	if acc, overflow := b.Offer(400, 800); overflow || acc != 700 {
		t.Errorf("Offer at capacity edge = (%d,%v), want (700,false)", acc, overflow)
	}
}

// TestOverlapWindowAccounting drives a consume/overlap/refill cycle and
// checks the advertised window tracks exactly the buffered byte count.
func TestOverlapWindowAccounting(t *testing.T) {
	const capacity = 4096
	b := NewReceiveBuffer(capacity)
	b.Offer(0, 1024)
	b.Offer(2048, 1024) // hole at [1024,2048)
	if w := b.Window(); w != capacity-2048 {
		t.Fatalf("window %d, want %d", w, capacity-2048)
	}
	b.Read(512)
	// Retransmission covering consumed + buffered + the whole hole.
	if acc, _ := b.Offer(0, 3072); acc != 1024 {
		t.Fatalf("overlap refill accepted %d, want 1024 (the hole)", acc)
	}
	if w := b.Window(); w != capacity-2560 {
		t.Errorf("window %d, want %d (3072 buffered - 512 consumed)", w, capacity-2560)
	}
	// Drain and confirm the ledger balances.
	b.Read(1 << 20)
	if d := b.Delivered(); d != 3072 {
		t.Errorf("delivered %d, want 3072", d)
	}
	if w := b.Window(); w != capacity {
		t.Errorf("window %d after drain, want %d", w, capacity)
	}
}

// TestOverlapThroughFIN replays overlapping tail ranges around the FIN
// offset: completion must trigger exactly when the stream through FIN is
// consumed, replays after completion stay inert.
func TestOverlapThroughFIN(t *testing.T) {
	b := NewReceiveBuffer(1 << 12)
	b.Offer(0, 900)
	b.OnFIN(1000)
	if b.Complete() {
		t.Fatal("complete before final bytes arrived")
	}
	b.Offer(800, 200) // [800,1000): overlaps [800,900), fills [900,1000)
	b.Read(1 << 12)
	if !b.Complete() {
		t.Fatal("not complete after consuming through FIN")
	}
	if acc, overflow := b.Offer(900, 100); acc != 0 || overflow {
		t.Errorf("post-completion replay = (%d,%v), want (0,false)", acc, overflow)
	}
	if d := b.Delivered(); d != 1000 {
		t.Errorf("delivered %d, want 1000", d)
	}
}
