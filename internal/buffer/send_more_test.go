package buffer

import (
	"testing"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

func TestOldestPktSeq(t *testing.T) {
	b := NewSendBuffer()
	if got := b.OldestPktSeq(7); got != 7 {
		t.Fatalf("empty buffer oldest = %d, want next (7)", got)
	}
	b.Insert(seg(0, 10, 3))
	b.Insert(seg(10, 10, 4))
	b.Insert(seg(20, 10, 5))
	if got := b.OldestPktSeq(6); got != 3 {
		t.Fatalf("oldest = %d, want 3", got)
	}
	// Retransmit the oldest: its number is superseded.
	b.Retransmitted(b.ByPktSeq(3), 6, 0)
	if got := b.OldestPktSeq(7); got != 4 {
		t.Fatalf("oldest after retx = %d, want 4", got)
	}
	// Release the two originals: the retransmitted segment (now pkt 6)
	// remains until its bytes are acked.
	b.AckPktRanges([]seqspace.Range{{Lo: 4, Hi: 6}})
	if got := b.OldestPktSeq(7); got != 6 {
		t.Fatalf("oldest = %d, want retransmitted pkt 6", got)
	}
	// Cumulative byte ack covers the retransmitted bytes: drained.
	b.AckBytes(30)
	if got := b.OldestPktSeq(7); got != 7 {
		t.Fatalf("drained oldest = %d, want 7", got)
	}
}

func TestReleasePktBelow(t *testing.T) {
	b := NewSendBuffer()
	for i := uint64(0); i < 6; i++ {
		b.Insert(seg(i*10, 10, i))
	}
	if n := b.ReleasePktBelow(3); n != 3 {
		t.Fatalf("released %d, want 3", n)
	}
	if b.Len() != 3 || b.ByPktSeq(2) != nil || b.ByPktSeq(3) == nil {
		t.Fatalf("wrong segments released: len=%d", b.Len())
	}
	// Idempotent / monotone.
	if n := b.ReleasePktBelow(3); n != 0 {
		t.Fatalf("re-release freed %d", n)
	}
	if n := b.ReleasePktBelow(100); n != 3 {
		t.Fatalf("final release freed %d, want 3", n)
	}
	if b.ReleasedBytes() != 60 {
		t.Fatalf("ReleasedBytes = %d, want 60", b.ReleasedBytes())
	}
}

func TestReleaseClearsLossMark(t *testing.T) {
	b := NewSendBuffer()
	b.Insert(seg(0, 10, 1))
	b.MarkLoss(b.ByPktSeq(1))
	if !b.HasMarked() {
		t.Fatal("mark missing")
	}
	b.AckBytes(10)
	if b.HasMarked() {
		t.Fatal("released segment still counted as marked")
	}
	if got := b.LossMarked(); len(got) != 0 {
		t.Fatalf("LossMarked = %v", got)
	}
}

func TestMarkLossIgnoresReleased(t *testing.T) {
	b := NewSendBuffer()
	b.Insert(seg(0, 10, 1))
	s := b.ByPktSeq(1)
	b.AckBytes(10)
	b.MarkLoss(s)
	if b.HasMarked() {
		t.Fatal("released segment must not be markable")
	}
}

func TestForEachEligibleRetransmit(t *testing.T) {
	b := NewSendBuffer()
	rtt := 100 * sim.Millisecond
	for i := uint64(0); i < 4; i++ {
		b.Insert(seg(i*10, 10, i))
	}
	b.MarkLossByPktRanges([]seqspace.Range{{Lo: 0, Hi: 4}})
	var visited []uint64
	b.ForEachEligibleRetransmit(0, rtt, func(s *Segment) bool {
		visited = append(visited, s.Seq)
		return len(visited) < 3 // stop early
	})
	if len(visited) != 3 || visited[0] != 0 || visited[1] != 10 || visited[2] != 20 {
		t.Fatalf("visited %v, want first three in stream order", visited)
	}
	// Retransmit one mid-walk style: cooldown applies afterwards.
	s1 := b.BySeq(0)
	b.MarkLoss(s1) // still marked? Retransmitted clears; re-mark first
	b.Retransmitted(s1, 10, 50*sim.Millisecond)
	b.MarkLoss(s1)
	count := 0
	b.ForEachEligibleRetransmit(60*sim.Millisecond, rtt, func(s *Segment) bool {
		if s == s1 {
			t.Fatal("cooldown violated")
		}
		count++
		return true
	})
	if count == 0 {
		t.Fatal("other marked segments should still be eligible")
	}
}

func TestNextRetransmitTimeEdges(t *testing.T) {
	b := NewSendBuffer()
	rtt := 100 * sim.Millisecond
	if _, ok := b.NextRetransmitTime(rtt); ok {
		t.Fatal("empty buffer should have no retransmit time")
	}
	b.Insert(seg(0, 10, 1))
	b.MarkLoss(b.ByPktSeq(1))
	at, ok := b.NextRetransmitTime(rtt)
	if !ok || at != 0 {
		t.Fatalf("never-retransmitted mark should be eligible now: %v,%v", at, ok)
	}
	b.Retransmitted(b.ByPktSeq(1), 2, 30*sim.Millisecond)
	b.MarkLoss(b.ByPktSeq(2))
	at, ok = b.NextRetransmitTime(rtt)
	if !ok || at != 130*sim.Millisecond {
		t.Fatalf("cooldown end = %v,%v want 130ms", at, ok)
	}
}

func TestRateSample(t *testing.T) {
	b := NewSendBuffer()
	s1 := seg(0, 1000, 1)
	s1.SentAt = 10 * sim.Millisecond
	b.Insert(s1)
	s2 := seg(1000, 1000, 2)
	s2.SentAt = 20 * sim.Millisecond
	b.Insert(s2)

	b.BeginRateSample(0, 0)
	if _, ok := b.RateSample(30 * sim.Millisecond); ok {
		t.Fatal("no releases: no sample")
	}
	b.AckBytes(2000)
	bps, ok := b.RateSample(30 * sim.Millisecond)
	if !ok {
		t.Fatal("expected a sample")
	}
	// Anchor is s2 (latest SentAt=20ms, deliveredAtSend=0): 2000 B over
	// 10 ms = 1.6 Mbit/s.
	if bps < 1.59e6 || bps > 1.61e6 {
		t.Fatalf("rate = %v, want ~1.6e6", bps)
	}
	// Degenerate interval rejected.
	b.BeginRateSample(0, 0)
	s3 := seg(2000, 1000, 3)
	s3.SentAt = 40 * sim.Millisecond
	b.Insert(s3)
	b.AckBytes(3000)
	if _, ok := b.RateSample(40 * sim.Millisecond); ok {
		t.Fatal("zero-elapsed sample must be rejected")
	}
}

func TestMaybeCompactOrder(t *testing.T) {
	b := NewSendBuffer()
	for i := uint64(0); i < 3000; i++ {
		b.Insert(seg(i*10, 10, i))
	}
	b.AckBytes(3000 * 10)
	if b.Len() != 0 {
		t.Fatalf("Len = %d after full ack", b.Len())
	}
	// Order slice must have been compacted (head reset).
	if len(b.order) != 0 && b.head != 0 {
		t.Fatalf("order not compacted: len=%d head=%d", len(b.order), b.head)
	}
	// Buffer remains usable.
	b.Insert(seg(1<<20, 10, 9999))
	if b.Oldest() == nil {
		t.Fatal("buffer unusable after compaction")
	}
}
