// Package buffer implements the transport's sender retransmission buffer
// and receiver reassembly buffer.
//
// The sender buffer maintains the paper's (SEQ, PKT.SEQ) two-tuple per
// in-flight segment (§5.1): a byte range plus the packet number of its most
// recent transmission. Retransmitting replaces the tuple's packet number
// with the fresh one, so stale loss reports for superseded numbers are
// ignored without extra state.
//
// The receiver buffer reassembles the bytestream and accounts the bytes
// blocked behind the first hole (head-of-line blocking), which Figure 5(a)
// of the paper measures.
package buffer

import (
	"sort"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

// Segment is one in-flight unit of the bytestream at the sender.
type Segment struct {
	Seq    uint64 // byte offset
	Len    int    // payload length
	PktSeq uint64 // packet number of the most recent transmission
	FIN    bool   // segment carries the end-of-stream marker

	// Stream-frame identity (stream-multiplexed connections). Seq/Len still
	// describe the connection-level footprint — for a StreamFIN segment Len
	// includes the one phantom byte that carries the stream FIN through the
	// retransmission machinery.
	HasStream bool
	StreamID  uint32
	StreamOff uint64
	StreamFIN bool

	SentAt      sim.Time // departure time of the most recent transmission
	Retransmits int      // how many times this byte range was re-sent
	LossMarked  bool     // a loss report for the current PktSeq is pending service
	lastRetx    sim.Time // last retransmission time (for the once-per-RTT rule)
	hasRetx     bool
	released    bool // removed from the buffer (acknowledged)
	// deliveredAtSend snapshots the buffer's released-bytes counter at the
	// segment's (re)transmission, anchoring BBR-style delivery-rate
	// samples: rate = (released_now − deliveredAtSend) / (now − SentAt).
	deliveredAtSend int64
}

// End returns the byte offset one past the segment.
func (s *Segment) End() uint64 { return s.Seq + uint64(s.Len) }

// SendBuffer tracks unacknowledged segments, indexed both by byte sequence
// and by the packet number of their latest transmission.
type SendBuffer struct {
	bySeq map[uint64]*Segment // keyed by Seq
	byPkt map[uint64]*Segment // keyed by current PktSeq
	// order holds Seq values in insertion (stream) order; entries released
	// out of order (selective acks) go stale and are skipped on iteration.
	// head indexes the first potentially-live entry, advancing as the
	// cumulative ack moves, so per-ack processing is amortized O(released).
	order []uint64
	head  int
	bytes int // unacked payload bytes

	// oldestFloor is a monotone lower bound for OldestPktSeq: packet
	// numbers are never reused, so the scan resumes where it left off.
	oldestFloor uint64

	// releasedBytes counts payload bytes ever acknowledged (cumulatively or
	// selectively) — the sender-side delivered-data counter BBR-style rate
	// sampling needs (cumack jumps after hole repairs must not look like
	// delivery-rate spikes).
	releasedBytes int64

	// Delivery-rate sample anchor: the most recently *sent* segment
	// released in the current acknowledgment batch.
	rateValid           bool
	rateSentAt          sim.Time
	rateDeliveredAtSend int64

	// marked tracks loss-marked segments in ascending Seq order so hot
	// paths never scan or sort the whole buffer. Entries go stale when a
	// segment is retransmitted (mark cleared) or released; markedLive
	// counts the rest and compaction runs only when stale entries dominate.
	marked     []*Segment
	markedLive int

	// tsorted is the transmission-time-ordered scan list RACK loss
	// detection walks: one entry per (re)transmission, appended in send
	// order (send times are monotone within a connection), consumed as a
	// prefix. An entry goes stale when its segment was released, was
	// retransmitted since (SentAt moved), or is already loss-marked.
	tsorted []tsEntry
	tsHead  int

	// RACK delivery state: the most recently *transmitted* segment ever
	// acknowledged — RFC 8985's (RACK.xmit_ts, RACK.end_seq) pair, keyed
	// here by packet number since retransmissions get fresh PKT.SEQs.
	rackValid    bool
	rackXmitTime sim.Time
	rackPktSeq   uint64

	// Reordering evidence: a segment released on its original transmission
	// after a later transmission had already been acked by a *previous*
	// acknowledgment (batchRackPkt snapshots rackPktSeq per ack), or
	// released while loss-marked without ever being retransmitted (the mark
	// was provably premature). Cumulative count; the sender diffs it per
	// ack to widen the RACK reorder window.
	reorders     int64
	batchRackPkt uint64

	// Per-ack context set by BeginRateSample: the ack's arrival time and
	// the path's minimum RTT, used to reject ambiguous acks of
	// retransmitted segments from the RACK clock.
	ackNow      sim.Time
	ackRTTFloor sim.Time

	// OnRelease, when set, observes every segment release (each segment is
	// released exactly once, whichever acknowledgment path got there first).
	// The stream layer uses it to credit acknowledged frame bytes back to
	// the owning stream.
	OnRelease func(*Segment)
}

// tsEntry pins a segment at one transmission time in the time-ordered
// RACK scan list.
type tsEntry struct {
	seg    *Segment
	sentAt sim.Time
}

// live reports whether the entry still describes its segment's current,
// unacknowledged, unmarked transmission.
func (e tsEntry) live() bool {
	return !e.seg.released && !e.seg.LossMarked && e.seg.SentAt == e.sentAt
}

// NewSendBuffer returns an empty send buffer.
func NewSendBuffer() *SendBuffer {
	return &SendBuffer{
		bySeq: make(map[uint64]*Segment),
		byPkt: make(map[uint64]*Segment),
	}
}

// Insert registers a freshly transmitted segment.
func (b *SendBuffer) Insert(seg *Segment) {
	if _, dup := b.bySeq[seg.Seq]; dup {
		panic("buffer: duplicate segment insert")
	}
	seg.deliveredAtSend = b.releasedBytes
	b.bySeq[seg.Seq] = seg
	b.byPkt[seg.PktSeq] = seg
	b.order = append(b.order, seg.Seq)
	b.bytes += seg.Len
	b.tsorted = append(b.tsorted, tsEntry{seg: seg, sentAt: seg.SentAt})
}

// Retransmitted updates a segment's packet number after it was re-sent:
// the old PKT.SEQ mapping is dropped (paper §5.1: "the PKT.SEQ ... be
// always replaced and updated by the latest PKT.SEQ").
func (b *SendBuffer) Retransmitted(seg *Segment, newPktSeq uint64, now sim.Time) {
	delete(b.byPkt, seg.PktSeq)
	seg.PktSeq = newPktSeq
	seg.SentAt = now
	seg.Retransmits++
	if seg.LossMarked {
		seg.LossMarked = false
		b.markedLive--
	}
	seg.lastRetx = now
	seg.hasRetx = true
	seg.deliveredAtSend = b.releasedBytes
	b.byPkt[newPktSeq] = seg
	b.tsorted = append(b.tsorted, tsEntry{seg: seg, sentAt: now})
}

// MayRetransmit reports whether the once-per-RTT retransmission rule allows
// re-sending the segment at time now (paper §5.1: "the sender only
// retransmits a specific packet once per RTT").
func (b *SendBuffer) MayRetransmit(seg *Segment, now sim.Time, rtt sim.Time) bool {
	return !seg.hasRetx || now-seg.lastRetx >= rtt
}

// ByPktSeq returns the segment whose most recent transmission used pktSeq,
// or nil (e.g. the report refers to a superseded transmission).
func (b *SendBuffer) ByPktSeq(pktSeq uint64) *Segment { return b.byPkt[pktSeq] }

// BySeq returns the segment starting at byte offset seq, or nil.
func (b *SendBuffer) BySeq(seq uint64) *Segment { return b.bySeq[seq] }

// AckBytes removes every segment fully below cumAck (cumulative byte
// acknowledgment) and returns the number of segments released. Because
// order ascends in Seq, the release is a prefix: amortized O(released).
func (b *SendBuffer) AckBytes(cumAck uint64) int {
	released := 0
	for b.head < len(b.order) {
		seq := b.order[b.head]
		seg, ok := b.bySeq[seq]
		if !ok {
			b.head++ // released earlier via selective ack
			continue
		}
		if seg.End() > cumAck {
			break
		}
		b.release(seg)
		released++
		b.head++
	}
	b.maybeCompactOrder()
	return released
}

// maybeCompactOrder reclaims the consumed prefix once it dominates.
func (b *SendBuffer) maybeCompactOrder() {
	if b.head > 1024 && b.head*2 > len(b.order) {
		b.order = append(b.order[:0:0], b.order[b.head:]...)
		b.head = 0
	}
}

// AckPktRanges removes segments whose current packet number lies in any of
// the acked PKT.SEQ ranges. Returns the released count.
func (b *SendBuffer) AckPktRanges(ranges []seqspace.Range) int {
	released := 0
	for _, r := range ranges {
		// Iterate the smaller side: for narrow ranges walk the range,
		// otherwise scan the map.
		if r.Len() <= uint64(len(b.byPkt)) {
			for pkt := r.Lo; pkt < r.Hi; pkt++ {
				if seg, ok := b.byPkt[pkt]; ok {
					b.release(seg)
					released++
				}
			}
		} else {
			for pkt, seg := range b.byPkt {
				if r.Contains(pkt) {
					b.release(seg)
					released++
				}
			}
		}
	}
	// Released entries go stale in order and are skipped on iteration.
	return released
}

func (b *SendBuffer) release(seg *Segment) {
	delete(b.bySeq, seg.Seq)
	delete(b.byPkt, seg.PktSeq)
	b.bytes -= seg.Len
	b.releasedBytes += int64(seg.Len)
	if !b.rateValid || seg.SentAt >= b.rateSentAt {
		b.rateValid = true
		b.rateSentAt = seg.SentAt
		b.rateDeliveredAtSend = seg.deliveredAtSend
	}
	// Reordering evidence, judged before the mark is cleared below. Only
	// original transmissions count: a retransmission acked late proves
	// nothing about network ordering.
	if seg.Retransmits == 0 {
		if seg.LossMarked {
			// Marked lost, never retransmitted, yet the original arrived:
			// the reorder window was provably too narrow.
			b.reorders++
		} else if b.batchRackPkt > 0 && seg.PktSeq < b.batchRackPkt {
			// A later transmission was acked by an *earlier* ack (the
			// per-ack snapshot keeps same-ack batches, whose release order
			// is arbitrary, from counting).
			b.reorders++
		}
	}
	// Advance the RACK most-recently-sent-and-acked state — unless the
	// segment was retransmitted and the implied RTT is below the path
	// floor: that delivery was of an earlier transmission, and taking the
	// retransmit timestamp would spuriously age everything in flight.
	ambiguous := seg.Retransmits > 0 && b.ackRTTFloor > 0 &&
		b.ackNow-seg.SentAt < b.ackRTTFloor
	if !ambiguous && (!b.rackValid || seg.SentAt > b.rackXmitTime ||
		(seg.SentAt == b.rackXmitTime && seg.PktSeq > b.rackPktSeq)) {
		b.rackValid = true
		b.rackXmitTime = seg.SentAt
		b.rackPktSeq = seg.PktSeq
	}
	seg.released = true
	if seg.LossMarked {
		seg.LossMarked = false
		b.markedLive--
	}
	if b.OnRelease != nil {
		b.OnRelease(seg)
	}
}

// MarkLossByPktRanges flags segments in the reported lost PKT.SEQ ranges.
// Only segments whose *current* transmission is in a range are marked —
// reports about superseded packet numbers are stale and skipped. Returns the
// marked segments in stream order.
func (b *SendBuffer) MarkLossByPktRanges(ranges []seqspace.Range) []*Segment {
	var marked []*Segment
	for _, r := range ranges {
		for pkt := r.Lo; pkt < r.Hi; pkt++ {
			if seg, ok := b.byPkt[pkt]; ok && !seg.LossMarked {
				b.MarkLoss(seg)
				marked = append(marked, seg)
			}
		}
	}
	sort.Slice(marked, func(i, j int) bool { return marked[i].Seq < marked[j].Seq })
	return marked
}

// MarkLoss flags a single segment (used by sender-side detection paths),
// inserting it at its sorted position in the marked list.
func (b *SendBuffer) MarkLoss(seg *Segment) {
	if seg.LossMarked || seg.released {
		return
	}
	seg.LossMarked = true
	b.markedLive++
	n := len(b.marked)
	if n == 0 || b.marked[n-1].Seq <= seg.Seq {
		b.marked = append(b.marked, seg)
		return
	}
	i := sort.Search(n, func(i int) bool { return b.marked[i].Seq > seg.Seq })
	b.marked = append(b.marked, nil)
	copy(b.marked[i+1:], b.marked[i:])
	b.marked[i] = seg
}

// markedEntryLive reports whether a marked-list entry is still actionable.
func markedEntryLive(seg *Segment) bool { return seg.LossMarked && !seg.released }

// compactMarked drops stale entries once they dominate the list.
func (b *SendBuffer) compactMarked() {
	if len(b.marked)-b.markedLive <= len(b.marked)/2 || len(b.marked) < 64 {
		return
	}
	kept := b.marked[:0]
	for _, seg := range b.marked {
		if markedEntryLive(seg) {
			kept = append(kept, seg)
		}
	}
	b.marked = kept
}

// LossMarked returns all segments currently flagged lost, in stream order.
func (b *SendBuffer) LossMarked() []*Segment {
	out := make([]*Segment, 0, b.markedLive)
	for _, seg := range b.marked {
		if markedEntryLive(seg) {
			out = append(out, seg)
		}
	}
	return out
}

// HasMarked reports whether any segment is flagged lost.
func (b *SendBuffer) HasMarked() bool { return b.markedLive > 0 }

// FirstEligibleRetransmit returns the lowest-Seq loss-marked segment whose
// once-per-RTT cooldown has expired, or nil.
func (b *SendBuffer) FirstEligibleRetransmit(now, rtt sim.Time) *Segment {
	b.compactMarked()
	for _, seg := range b.marked {
		if markedEntryLive(seg) && b.MayRetransmit(seg, now, rtt) {
			return seg
		}
	}
	return nil
}

// ForEachEligibleRetransmit visits every loss-marked segment whose
// once-per-RTT cooldown has expired, in stream order, in one pass. The
// callback may retransmit the segment (clearing its mark); returning false
// stops the walk.
func (b *SendBuffer) ForEachEligibleRetransmit(now, rtt sim.Time, fn func(*Segment) bool) {
	if b.markedLive == 0 {
		return
	}
	b.compactMarked()
	for i := 0; i < len(b.marked); i++ {
		seg := b.marked[i]
		if markedEntryLive(seg) && b.MayRetransmit(seg, now, rtt) {
			if !fn(seg) {
				return
			}
		}
	}
}

// Oldest returns the unacked segment with the lowest byte offset, or nil.
func (b *SendBuffer) Oldest() *Segment {
	for b.head < len(b.order) {
		if seg, ok := b.bySeq[b.order[b.head]]; ok {
			return seg
		}
		b.head++
	}
	return nil
}

// Bytes returns the total unacknowledged payload bytes.
func (b *SendBuffer) Bytes() int { return b.bytes }

// ReleasedBytes returns the cumulative payload bytes acknowledged
// (cumulatively or selectively) since the buffer was created.
func (b *SendBuffer) ReleasedBytes() int64 { return b.releasedBytes }

// BeginRateSample resets the delivery-rate anchor and snapshots the RACK
// delivery state for reorder detection; call before processing one
// acknowledgment's releases. now is the ack's arrival time and rttFloor
// the path's minimum RTT (0 disables the check): together they
// disambiguate acks of retransmitted segments — a release whose implied
// RTT is below the floor was a delivery of an *earlier* transmission, so
// its retransmit timestamp must not advance the RACK clock (RFC 8985
// §6.2 step 2).
func (b *SendBuffer) BeginRateSample(now, rttFloor sim.Time) {
	b.rateValid = false
	b.ackNow, b.ackRTTFloor = now, rttFloor
	if b.rackValid {
		b.batchRackPkt = b.rackPktSeq
	}
}

// RackState returns the transmission time and packet number of the most
// recently sent segment ever acknowledged (RFC 8985 RACK.xmit_ts /
// RACK.end_seq); ok is false before the first release.
func (b *SendBuffer) RackState() (xmitTime sim.Time, pktSeq uint64, ok bool) {
	return b.rackXmitTime, b.rackPktSeq, b.rackValid
}

// ReorderEvents returns the cumulative count of observed packet
// reorderings (original transmissions acknowledged out of send order, or
// loss marks disproven by a late original arrival). Diff across acks to
// react to fresh evidence.
func (b *SendBuffer) ReorderEvents() int64 { return b.reorders }

// ScanRackLosses walks unacknowledged segments in transmission-time order,
// visiting only those sent before the RACK most-recently-delivered
// transmission (cutoff/cutoffPkt): strictly earlier send times qualify, and
// timestamp ties — a paced burst emits many segments at one instant — break
// by packet number like RFC 8985 breaks them by sequence, so the unacked
// tail of the very burst the delivered segment came from is not mistaken
// for "older than delivered". fn returns true when it marked the segment
// lost (the entry is consumed); returning false stops the walk — every
// later entry was sent even more recently, so its loss deadline is further
// out. The returned sentAt/pending report the first un-marked candidate's
// transmission time so the caller can arm a reorder-window re-check timer.
func (b *SendBuffer) ScanRackLosses(cutoff sim.Time, cutoffPkt uint64, fn func(*Segment) bool) (sentAt sim.Time, pending bool) {
	for b.tsHead < len(b.tsorted) {
		e := b.tsorted[b.tsHead]
		if !e.live() {
			b.tsorted[b.tsHead] = tsEntry{} // release the *Segment
			b.tsHead++
			continue
		}
		// Entries order by (sentAt, PktSeq), so the first non-candidate ends
		// the candidate prefix.
		if e.sentAt > cutoff || (e.sentAt == cutoff && e.seg.PktSeq >= cutoffPkt) {
			return 0, false
		}
		if !fn(e.seg) {
			return e.sentAt, true
		}
		// fn marked the segment: the entry is stale now (LossMarked), and
		// a future retransmission re-appends it with a fresh timestamp.
		b.tsorted[b.tsHead] = tsEntry{}
		b.tsHead++
	}
	b.maybeCompactTsorted()
	return 0, false
}

// maybeCompactTsorted reclaims the consumed prefix once it dominates.
func (b *SendBuffer) maybeCompactTsorted() {
	if b.tsHead > 1024 && b.tsHead*2 > len(b.tsorted) {
		b.tsorted = append(b.tsorted[:0:0], b.tsorted[b.tsHead:]...)
		b.tsHead = 0
	}
}

// Newest returns the unacked segment with the highest byte offset (the
// tail a TLP probe retransmits), or nil when nothing is outstanding.
func (b *SendBuffer) Newest() *Segment {
	for i := len(b.order) - 1; i >= b.head; i-- {
		if seg, ok := b.bySeq[b.order[i]]; ok {
			return seg
		}
	}
	return nil
}

// RateSample returns a BBR-style delivery-rate sample for the releases
// since BeginRateSample: delivered bytes over the send-anchored interval.
// ok is false when nothing was released or the interval is degenerate.
func (b *SendBuffer) RateSample(now sim.Time) (bps float64, ok bool) {
	if !b.rateValid || now <= b.rateSentAt {
		return 0, false
	}
	bytes := b.releasedBytes - b.rateDeliveredAtSend
	if bytes <= 0 {
		return 0, false
	}
	return float64(bytes) * 8 / (now - b.rateSentAt).Seconds(), true
}

// Len returns the number of unacknowledged segments.
func (b *SendBuffer) Len() int { return len(b.bySeq) }

// NextRetransmitTime returns the earliest time any loss-marked segment
// becomes eligible under the once-per-RTT rule; ok is false when nothing is
// marked.
func (b *SendBuffer) NextRetransmitTime(rtt sim.Time) (sim.Time, bool) {
	if b.markedLive == 0 {
		return 0, false
	}
	b.compactMarked()
	var best sim.Time
	found := false
	for _, seg := range b.marked {
		if !markedEntryLive(seg) {
			continue
		}
		at := sim.Time(0)
		if seg.hasRetx {
			at = seg.lastRetx + rtt
		}
		if !found || at < best {
			best = at
			found = true
		}
		if at == 0 {
			break // cannot beat "eligible now"
		}
	}
	return best, found
}

// ReleasePktBelow removes every segment whose current packet number is
// below cum: the receiver's cumulative packet number guarantees all of them
// were received (possibly crowded out of the selective-ack block budget).
// The scan is monotone from the oldest floor, so it is amortized O(1) per
// packet number ever used.
func (b *SendBuffer) ReleasePktBelow(cum uint64) int {
	released := 0
	for b.oldestFloor < cum {
		if seg, ok := b.byPkt[b.oldestFloor]; ok {
			b.release(seg)
			released++
		}
		b.oldestFloor++
	}
	return released
}

// OldestPktSeq returns the smallest packet number among the current
// transmissions of unacknowledged segments; when nothing is outstanding it
// returns next (the sender's next packet number). Every number below the
// result is dead: acknowledged or superseded by a retransmission.
func (b *SendBuffer) OldestPktSeq(next uint64) uint64 {
	if len(b.byPkt) == 0 {
		return next
	}
	for b.oldestFloor < next {
		if _, ok := b.byPkt[b.oldestFloor]; ok {
			return b.oldestFloor
		}
		b.oldestFloor++
	}
	return next
}

// Walk calls fn on every unacked segment in stream order; fn returning
// false stops the walk.
func (b *SendBuffer) Walk(fn func(*Segment) bool) {
	for _, seq := range b.order[b.head:] {
		if seg, ok := b.bySeq[seq]; ok {
			if !fn(seg) {
				return
			}
		}
	}
}
