package buffer

import "github.com/tacktp/tack/internal/seqspace"

// ReceiveBuffer reassembles the bytestream at the receiver and tracks
// head-of-line blocking: bytes that have arrived but cannot be delivered to
// the application because an earlier byte is missing.
type ReceiveBuffer struct {
	capacity  int               // receive-buffer size in bytes (AWND base)
	nextRead  uint64            // first byte the application has not consumed
	received  seqspace.RangeSet // byte ranges present at or above nextRead
	delivered uint64            // total bytes handed to the application
	finSeq    uint64            // end-of-stream byte offset
	finKnown  bool
}

// NewReceiveBuffer returns a reassembly buffer with the given capacity in
// bytes. Capacity bounds the advertised window.
func NewReceiveBuffer(capacity int) *ReceiveBuffer {
	return &ReceiveBuffer{capacity: capacity}
}

// Offer inserts the byte range [seq, seq+n). It returns the number of new
// (not previously received, not already consumed) bytes accepted. Data
// beyond the buffer capacity is refused (returns accepted=0, overflow=true)
// — a well-behaved sender respects AWND so overflow indicates misbehaviour.
func (b *ReceiveBuffer) Offer(seq uint64, n int) (accepted int, overflow bool) {
	if n == 0 {
		return 0, false
	}
	end := seq + uint64(n)
	if end <= b.nextRead {
		return 0, false // entirely old data (spurious retransmission)
	}
	if seq < b.nextRead {
		seq = b.nextRead
	}
	if end > b.nextRead+uint64(b.capacity) {
		return 0, true
	}
	before := b.received.Count()
	b.received.Add(seq, end)
	return int(b.received.Count() - before), false
}

// OnFIN records the end-of-stream offset.
func (b *ReceiveBuffer) OnFIN(finSeq uint64) {
	b.finSeq = finSeq
	b.finKnown = true
}

// NextExpected returns the lowest missing byte offset — the cumulative ACK
// point.
func (b *ReceiveBuffer) NextExpected() uint64 {
	return b.received.ContiguousFrom(b.nextRead)
}

// Readable returns the number of in-order bytes ready for the application.
func (b *ReceiveBuffer) Readable() int { return int(b.NextExpected() - b.nextRead) }

// Read consumes up to n in-order bytes, returning how many were consumed.
func (b *ReceiveBuffer) Read(n int) int {
	avail := b.Readable()
	if n > avail {
		n = avail
	}
	if n <= 0 {
		return 0
	}
	b.received.Remove(b.nextRead, b.nextRead+uint64(n))
	b.nextRead += uint64(n)
	b.delivered += uint64(n)
	return n
}

// BlockedBytes returns the bytes buffered above the first hole — the
// head-of-line-blocked volume that paper Figure 5(a) reports. In-order
// bytes awaiting application read are not blocked.
func (b *ReceiveBuffer) BlockedBytes() int {
	next := b.NextExpected()
	var blocked uint64
	for _, r := range b.received.Ranges() {
		if r.Lo >= next {
			blocked += r.Len()
		}
	}
	return int(blocked)
}

// Window returns the advertised window in bytes: capacity minus everything
// buffered (readable or blocked).
func (b *ReceiveBuffer) Window() uint64 {
	used := int(b.received.Count())
	if used >= b.capacity {
		return 0
	}
	return uint64(b.capacity - used)
}

// Delivered returns total bytes consumed by the application.
func (b *ReceiveBuffer) Delivered() uint64 { return b.delivered }

// Capacity returns the configured buffer size.
func (b *ReceiveBuffer) Capacity() int { return b.capacity }

// Complete reports whether the whole stream (through FIN) was consumed.
func (b *ReceiveBuffer) Complete() bool {
	return b.finKnown && b.nextRead >= b.finSeq
}

// FinSeq returns the end-of-stream offset and whether it is known.
func (b *ReceiveBuffer) FinSeq() (uint64, bool) { return b.finSeq, b.finKnown }

// Holes returns the missing byte ranges between the cumulative point and
// the highest received byte.
func (b *ReceiveBuffer) Holes() []seqspace.Range {
	max, ok := b.received.Max()
	if !ok {
		return nil
	}
	return b.received.Gaps(b.nextRead, max+1)
}

// Ranges returns the byte ranges currently buffered (unconsumed), in
// ascending order. Ranges above the first hole are the SACK blocks a
// legacy receiver advertises.
func (b *ReceiveBuffer) Ranges() []seqspace.Range { return b.received.Ranges() }

// RangesView returns the buffered ranges without copying (read-only,
// valid until the next mutation).
func (b *ReceiveBuffer) RangesView() []seqspace.Range { return b.received.View() }

// HasHoles reports whether any out-of-order data is buffered (i.e. a SACK
// block would be advertised). O(1).
func (b *ReceiveBuffer) HasHoles() bool {
	switch b.received.NumRanges() {
	case 0:
		return false
	case 1:
		min, _ := b.received.Min()
		return min != b.nextRead
	default:
		return true
	}
}
