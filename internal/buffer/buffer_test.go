package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

func seg(seq uint64, n int, pkt uint64) *Segment {
	return &Segment{Seq: seq, Len: n, PktSeq: pkt}
}

func TestSendBufferInsertAck(t *testing.T) {
	b := NewSendBuffer()
	b.Insert(seg(0, 100, 1))
	b.Insert(seg(100, 100, 2))
	b.Insert(seg(200, 100, 3))
	if b.Bytes() != 300 || b.Len() != 3 {
		t.Fatalf("Bytes/Len = %d/%d", b.Bytes(), b.Len())
	}
	if n := b.AckBytes(200); n != 2 {
		t.Fatalf("AckBytes released %d, want 2", n)
	}
	if b.Bytes() != 100 || b.Len() != 1 {
		t.Fatalf("after ack Bytes/Len = %d/%d", b.Bytes(), b.Len())
	}
	if b.Oldest().Seq != 200 {
		t.Fatalf("Oldest = %d, want 200", b.Oldest().Seq)
	}
	// Partial cover does not release.
	if n := b.AckBytes(250); n != 0 {
		t.Fatalf("partial AckBytes released %d, want 0", n)
	}
}

func TestSendBufferDuplicateInsertPanics(t *testing.T) {
	b := NewSendBuffer()
	b.Insert(seg(0, 10, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert should panic")
		}
	}()
	b.Insert(seg(0, 10, 2))
}

func TestRetransmissionAmbiguityResolved(t *testing.T) {
	// Paper §5.1 example: retransmission gets a new PKT.SEQ; loss reports
	// for the old number must no longer resolve.
	b := NewSendBuffer()
	b.Insert(seg(1500, 1500, 2))
	s := b.ByPktSeq(2)
	b.Retransmitted(s, 4, 10*sim.Millisecond)
	if b.ByPktSeq(2) != nil {
		t.Fatal("old PktSeq mapping should be dropped after retransmission")
	}
	if got := b.ByPktSeq(4); got != s {
		t.Fatal("new PktSeq mapping missing")
	}
	if s.Retransmits != 1 || s.PktSeq != 4 {
		t.Fatalf("segment state = %+v", s)
	}
}

func TestMarkLossSkipsStaleReports(t *testing.T) {
	b := NewSendBuffer()
	b.Insert(seg(0, 100, 5))
	s := b.ByPktSeq(5)
	b.Retransmitted(s, 9, 0)
	// Report loss of pkt 5 (stale) — nothing should be marked.
	if marked := b.MarkLossByPktRanges([]seqspace.Range{{Lo: 5, Hi: 6}}); len(marked) != 0 {
		t.Fatalf("stale loss report marked %d segments", len(marked))
	}
	// Report loss of pkt 9 (current) — should mark once, idempotently.
	if marked := b.MarkLossByPktRanges([]seqspace.Range{{Lo: 9, Hi: 10}}); len(marked) != 1 {
		t.Fatal("current loss report should mark the segment")
	}
	if marked := b.MarkLossByPktRanges([]seqspace.Range{{Lo: 9, Hi: 10}}); len(marked) != 0 {
		t.Fatal("re-marking should be idempotent")
	}
	if got := b.LossMarked(); len(got) != 1 || got[0] != s {
		t.Fatalf("LossMarked = %v", got)
	}
}

func TestMarkLossStreamOrder(t *testing.T) {
	b := NewSendBuffer()
	b.Insert(seg(300, 100, 4))
	b.Insert(seg(0, 100, 5))
	b.Insert(seg(100, 100, 6))
	marked := b.MarkLossByPktRanges([]seqspace.Range{{Lo: 4, Hi: 7}})
	if len(marked) != 3 || marked[0].Seq != 0 || marked[1].Seq != 100 || marked[2].Seq != 300 {
		t.Fatalf("marked order wrong: %v", marked)
	}
}

func TestOncePerRTTRetransmitRule(t *testing.T) {
	b := NewSendBuffer()
	b.Insert(seg(0, 100, 1))
	s := b.ByPktSeq(1)
	rtt := 50 * sim.Millisecond
	if !b.MayRetransmit(s, 0, rtt) {
		t.Fatal("never-retransmitted segment must be eligible")
	}
	b.Retransmitted(s, 2, 100*sim.Millisecond)
	if b.MayRetransmit(s, 120*sim.Millisecond, rtt) {
		t.Fatal("must not retransmit twice within an RTT")
	}
	if !b.MayRetransmit(s, 150*sim.Millisecond, rtt) {
		t.Fatal("after an RTT the segment is eligible again")
	}
}

func TestAckPktRanges(t *testing.T) {
	b := NewSendBuffer()
	for i := uint64(0); i < 10; i++ {
		b.Insert(seg(i*100, 100, i))
	}
	n := b.AckPktRanges([]seqspace.Range{{Lo: 0, Hi: 3}, {Lo: 7, Hi: 8}})
	if n != 4 {
		t.Fatalf("released %d, want 4", n)
	}
	if b.Len() != 6 {
		t.Fatalf("Len = %d, want 6", b.Len())
	}
	if b.ByPktSeq(7) != nil || b.ByPktSeq(2) != nil {
		t.Fatal("acked segments still resolvable")
	}
	if b.Oldest().Seq != 300 {
		t.Fatalf("Oldest = %d, want 300", b.Oldest().Seq)
	}
}

func TestWalkStopsEarly(t *testing.T) {
	b := NewSendBuffer()
	for i := uint64(0); i < 5; i++ {
		b.Insert(seg(i*10, 10, i))
	}
	count := 0
	b.Walk(func(*Segment) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("walk visited %d, want 3", count)
	}
}

func TestReceiveBufferInOrder(t *testing.T) {
	rb := NewReceiveBuffer(10000)
	acc, ov := rb.Offer(0, 1000)
	if acc != 1000 || ov {
		t.Fatalf("Offer = %d,%v", acc, ov)
	}
	if rb.Readable() != 1000 || rb.BlockedBytes() != 0 {
		t.Fatalf("Readable/Blocked = %d/%d", rb.Readable(), rb.BlockedBytes())
	}
	if got := rb.Read(400); got != 400 {
		t.Fatalf("Read = %d", got)
	}
	if rb.Delivered() != 400 || rb.Readable() != 600 {
		t.Fatalf("Delivered/Readable = %d/%d", rb.Delivered(), rb.Readable())
	}
}

func TestReceiveBufferHoLB(t *testing.T) {
	rb := NewReceiveBuffer(100000)
	rb.Offer(0, 1500)
	rb.Offer(3000, 1500) // hole at [1500,3000)
	rb.Offer(4500, 1500)
	if rb.NextExpected() != 1500 {
		t.Fatalf("NextExpected = %d, want 1500", rb.NextExpected())
	}
	if rb.BlockedBytes() != 3000 {
		t.Fatalf("BlockedBytes = %d, want 3000", rb.BlockedBytes())
	}
	holes := rb.Holes()
	if len(holes) != 1 || holes[0] != (seqspace.Range{Lo: 1500, Hi: 3000}) {
		t.Fatalf("Holes = %v", holes)
	}
	// Fill the hole: everything drains to readable.
	rb.Offer(1500, 1500)
	if rb.BlockedBytes() != 0 || rb.Readable() != 6000 {
		t.Fatalf("after fill Blocked/Readable = %d/%d", rb.BlockedBytes(), rb.Readable())
	}
}

func TestReceiveBufferDuplicatesAndOld(t *testing.T) {
	rb := NewReceiveBuffer(10000)
	rb.Offer(0, 1000)
	if acc, _ := rb.Offer(0, 1000); acc != 0 {
		t.Fatalf("duplicate accepted %d bytes", acc)
	}
	if acc, _ := rb.Offer(500, 1000); acc != 500 {
		t.Fatalf("overlap accepted %d bytes, want 500", acc)
	}
	rb.Read(1500)
	if acc, _ := rb.Offer(0, 1500); acc != 0 {
		t.Fatalf("fully consumed range re-accepted %d bytes", acc)
	}
	// Straddling the read point: only the unread part counts.
	if acc, _ := rb.Offer(1000, 1000); acc != 500 {
		t.Fatalf("straddling offer accepted %d, want 500", acc)
	}
}

func TestReceiveBufferWindowAndOverflow(t *testing.T) {
	rb := NewReceiveBuffer(3000)
	if rb.Window() != 3000 {
		t.Fatalf("initial Window = %d", rb.Window())
	}
	rb.Offer(0, 2000)
	if rb.Window() != 1000 {
		t.Fatalf("Window = %d, want 1000", rb.Window())
	}
	if _, ov := rb.Offer(2000, 2000); !ov {
		t.Fatal("overflow not reported")
	}
	rb.Offer(2000, 1000)
	if rb.Window() != 0 {
		t.Fatalf("full Window = %d, want 0", rb.Window())
	}
	rb.Read(3000)
	if rb.Window() != 3000 {
		t.Fatalf("after read Window = %d, want 3000", rb.Window())
	}
}

func TestReceiveBufferFIN(t *testing.T) {
	rb := NewReceiveBuffer(10000)
	rb.Offer(0, 500)
	rb.OnFIN(500)
	if rb.Complete() {
		t.Fatal("not complete until bytes consumed")
	}
	rb.Read(500)
	if !rb.Complete() {
		t.Fatal("should be complete")
	}
	if fin, ok := rb.FinSeq(); !ok || fin != 500 {
		t.Fatalf("FinSeq = %d,%v", fin, ok)
	}
}

// Property: receive buffer conservation — accepted bytes == delivered +
// buffered, and BlockedBytes + Readable == buffered.
func TestQuickReceiveConservation(t *testing.T) {
	type offer struct {
		Seq uint16
		Len uint8
	}
	f := func(offers []offer, reads []uint8) bool {
		rb := NewReceiveBuffer(1 << 16)
		var accepted, read int
		for i, o := range offers {
			acc, _ := rb.Offer(uint64(o.Seq), int(o.Len))
			accepted += acc
			if i < len(reads) {
				read += rb.Read(int(reads[i]))
			}
		}
		buffered := rb.Readable() + rb.BlockedBytes()
		return accepted == int(rb.Delivered())+buffered && read == int(rb.Delivered())
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: send buffer bytes always equals the sum of live segment lengths,
// across arbitrary ack/retransmit interleavings.
func TestQuickSendBufferAccounting(t *testing.T) {
	type action struct {
		Kind uint8 // 0 insert, 1 ackbytes, 2 retransmit, 3 ackpkt
		Arg  uint16
	}
	f := func(actions []action) bool {
		b := NewSendBuffer()
		nextSeq, nextPkt := uint64(0), uint64(0)
		for _, a := range actions {
			switch a.Kind % 4 {
			case 0:
				n := int(a.Arg%1400) + 1
				b.Insert(seg(nextSeq, n, nextPkt))
				nextSeq += uint64(n)
				nextPkt++
			case 1:
				b.AckBytes(uint64(a.Arg) * 16)
			case 2:
				if s := b.Oldest(); s != nil {
					b.Retransmitted(s, nextPkt, 0)
					nextPkt++
				}
			case 3:
				lo := uint64(a.Arg) % (nextPkt + 1)
				b.AckPktRanges([]seqspace.Range{{Lo: lo, Hi: lo + 3}})
			}
			sum := 0
			b.Walk(func(s *Segment) bool { sum += s.Len; return true })
			if sum != b.Bytes() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
