package mac

import (
	"testing"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
)

// BenchmarkSaturatedMedium measures simulator throughput for one saturated
// 802.11n sender (events per wall-clock second drive every WLAN experiment).
func BenchmarkSaturatedMedium(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop(int64(i + 1))
		m := NewMedium(loop, phy.Get(phy.Std80211n))
		a := m.AddStation("a", 0)
		dst := m.AddStation("b", 0)
		var bytes int64
		dst.Receive = func(f *Frame) { bytes += int64(f.Size) }
		saturate(loop, a, dst, 1518)
		loop.RunUntil(sim.Second)
		b.SetBytes(bytes)
	}
}

// BenchmarkContendedMedium measures the two-station contention case (data
// vs ACK streams), the configuration behind Figure 3.
func BenchmarkContendedMedium(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop(int64(i + 1))
		m := NewMedium(loop, phy.Get(phy.Std80211n))
		snd := m.AddStation("data", 0)
		rcv := m.AddStation("ack", 0)
		var bytes int64
		rcv.Receive = func(f *Frame) {
			bytes += int64(f.Size)
			rcv.Send(snd, 64, nil)
		}
		snd.Receive = func(f *Frame) {}
		saturate(loop, snd, rcv, 1518)
		loop.RunUntil(sim.Second)
		b.SetBytes(bytes)
	}
}
