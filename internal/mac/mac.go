// Package mac implements a discrete-event IEEE 802.11 DCF (CSMA/CA) medium
// simulator.
//
// The model is a round-based abstraction of the distributed coordination
// function: whenever the medium becomes idle, every station with pending
// frames holds a backoff counter (drawn uniformly from its current
// contention window); the station with the fewest remaining slots transmits
// after DIFS + slots, the others freeze their counters (decremented by the
// elapsed slots) for the next round. Two or more stations reaching zero in
// the same slot collide: the medium is wasted for the longest frame plus an
// ACK timeout, and each collider doubles its contention window and retries
// up to the retry limit.
//
// Stations on 802.11n/ac aggregate head-of-queue frames to the same
// destination into A-MPDUs bounded by the standard's aggregate limits, and
// the receiver responds with a single BlockAck. This captures exactly the
// effect the TACK paper builds on: every medium acquisition — no matter how
// small the frame — pays DIFS + backoff + preamble + SIFS + ACK, so frequent
// small transport ACKs steal a disproportionate share of airtime from the
// data path and collide with data frames.
package mac

import (
	"fmt"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
)

// Frame is one MAC service data unit queued at a station.
type Frame struct {
	// Size is the MSDU size in bytes (transport wire size incl. IP/UDP/Eth
	// framing; the MAC header is accounted separately by the PHY airtime
	// model).
	Size int
	// Dst is the receiving station.
	Dst *Station
	// Payload is an opaque handle delivered to the destination's handler.
	Payload any
	// enqueued records arrival time for queueing-delay stats.
	enqueued sim.Time
}

// Stats aggregates per-station MAC counters.
type Stats struct {
	Acquisitions int      // successful medium acquisitions
	Collisions   int      // acquisitions lost to collision
	Retries      int      // frame retransmissions
	Drops        int      // frames dropped at retry limit or full queue
	FramesTx     int      // MSDUs delivered
	BytesTx      int64    // MSDU bytes delivered
	Airtime      sim.Time // time spent transmitting (incl. preambles)
	QueueDelay   sim.Time // cumulative head-of-line waiting time
}

// Station is one 802.11 transmitter/receiver attached to a Medium.
type Station struct {
	Name string

	medium  *Medium
	index   uint32 // attach order; tags this station's telemetry events
	queue   []*Frame
	backoff int // remaining backoff slots; -1 means "draw fresh"
	retries int // collisions suffered by the head frame

	// Receive is invoked (in simulation time) for every MSDU delivered to
	// this station.
	Receive func(f *Frame)

	// Stats accumulates this station's MAC counters.
	Stats Stats

	maxQueue int
}

// QueueLen returns the number of frames waiting at the station.
func (s *Station) QueueLen() int { return len(s.queue) }

// Enqueue adds a frame to the station's transmit queue; it is dropped (and
// counted) when the queue is full.
func (s *Station) Enqueue(f *Frame) {
	if len(s.queue) >= s.maxQueue {
		s.Stats.Drops++
		s.medium.Tracer.MACDrop(s.medium.loop.Now(), s.index, telemetry.TrigQueueFull, f.Size)
		return
	}
	f.enqueued = s.medium.loop.Now()
	s.queue = append(s.queue, f)
	s.medium.maybeSchedule()
}

// Send is a convenience wrapper constructing and enqueueing a frame.
func (s *Station) Send(dst *Station, size int, payload any) {
	s.Enqueue(&Frame{Size: size, Dst: dst, Payload: payload})
}

// Medium is the shared wireless channel plus the DCF arbitration logic.
type Medium struct {
	loop     *sim.Loop
	params   phy.Params
	stations []*Station

	busy      bool
	scheduled *sim.Event

	// PER is an optional per-MPDU error probability modelling channel
	// noise; failed MPDUs miss their (Block)Ack and are retried.
	PER float64

	// Tracer records MAC-level telemetry events (acquisitions, collisions,
	// drops); nil — the default — disables tracing.
	Tracer *telemetry.Tracer

	// Busy time accounting for utilization reporting.
	busyTime    sim.Time
	collideTime sim.Time
}

// NewMedium creates a medium with the given 802.11 parameter set.
func NewMedium(loop *sim.Loop, params phy.Params) *Medium {
	return &Medium{loop: loop, params: params}
}

// Params returns the PHY/MAC parameter set in force.
func (m *Medium) Params() phy.Params { return m.params }

// AddStation attaches and returns a new station. maxQueue bounds its
// transmit queue (frames); values <= 0 select a default of 2048.
func (m *Medium) AddStation(name string, maxQueue int) *Station {
	if maxQueue <= 0 {
		maxQueue = 2048
	}
	st := &Station{Name: name, medium: m, index: uint32(len(m.stations)), backoff: -1, maxQueue: maxQueue}
	m.stations = append(m.stations, st)
	return st
}

// BusyTime returns cumulative medium-busy time (successful + collided).
func (m *Medium) BusyTime() sim.Time { return m.busyTime }

// CollisionTime returns cumulative airtime wasted in collisions.
func (m *Medium) CollisionTime() sim.Time { return m.collideTime }

// maybeSchedule arms contention resolution if the medium is idle and at
// least one station has pending frames.
func (m *Medium) maybeSchedule() {
	if m.busy || m.scheduled != nil {
		return
	}
	contenders := m.contenders()
	if len(contenders) == 0 {
		return
	}
	// Draw fresh backoff for stations without a frozen counter.
	minSlots := -1
	for _, st := range contenders {
		if st.backoff < 0 {
			st.backoff = m.loop.Rand().Intn(m.params.CW(st.retries) + 1)
		}
		if minSlots < 0 || st.backoff < minSlots {
			minSlots = st.backoff
		}
	}
	wait := m.params.DIFS + sim.Time(minSlots)*m.params.Slot
	m.scheduled = m.loop.After(wait, func() {
		m.scheduled = nil
		m.resolve()
	})
}

// contenders returns stations with at least one pending frame.
func (m *Medium) contenders() []*Station {
	var out []*Station
	for _, st := range m.stations {
		if len(st.queue) > 0 {
			out = append(out, st)
		}
	}
	return out
}

// resolve runs one contention round: the minimum-backoff stations transmit.
func (m *Medium) resolve() {
	contenders := m.contenders()
	if len(contenders) == 0 {
		return
	}
	minSlots := -1
	for _, st := range contenders {
		if st.backoff < 0 {
			// Frame arrived while the round was pending; it contends next
			// round but cannot win this one retroactively.
			continue
		}
		if minSlots < 0 || st.backoff < minSlots {
			minSlots = st.backoff
		}
	}
	if minSlots < 0 {
		m.maybeSchedule()
		return
	}
	var winners []*Station
	for _, st := range contenders {
		if st.backoff == minSlots {
			winners = append(winners, st)
		} else if st.backoff > 0 {
			// Others observed minSlots idle slots and freeze the rest.
			st.backoff -= minSlots
		}
	}
	if len(winners) == 1 {
		m.transmit(winners[0], minSlots)
		return
	}
	m.collide(winners, minSlots)
}

// aggregate pops the head-of-queue frames a winner may send in one
// acquisition: a single frame on non-aggregating PHYs, or an A-MPDU of
// same-destination frames bounded by the aggregate limits.
func (st *Station) aggregate() []*Frame {
	p := st.medium.params
	if !p.Aggregates() {
		return []*Frame{st.queue[0]}
	}
	dst := st.queue[0].Dst
	frames := []*Frame{st.queue[0]}
	bytes := st.queue[0].Size + phy.MACHeaderLen + phy.MPDUDelimiterLen
	for _, f := range st.queue[1:] {
		if f.Dst != dst || len(frames) >= p.MaxAMPDUFrames {
			break
		}
		sub := f.Size + phy.MACHeaderLen + phy.MPDUDelimiterLen
		if bytes+sub > p.MaxAMPDU {
			break
		}
		frames = append(frames, f)
		bytes += sub
	}
	return frames
}

// transmit performs a successful acquisition by station st after waiting
// slots backoff slots.
func (m *Medium) transmit(st *Station, slots int) {
	frames := st.aggregate()
	p := m.params
	var air sim.Time
	if p.Aggregates() && len(frames) >= 1 {
		payloads := make([]int, len(frames))
		for i, f := range frames {
			payloads[i] = f.Size
		}
		air = p.AggregateAirtime(payloads) + p.SIFS + p.BlockAckAirtime()
	} else {
		air = p.DataAirtime(frames[0].Size) + p.SIFS + p.AckAirtime()
	}
	m.busy = true
	m.busyTime += air
	st.Stats.Acquisitions++
	st.Stats.Airtime += air

	now := m.loop.Now()
	if m.Tracer != nil {
		msdu := 0
		for _, f := range frames {
			msdu += f.Size
		}
		m.Tracer.MACTx(now, st.index, len(frames), msdu, air, slots)
	}
	// Per-MPDU random errors are decided up front; failed subframes stay
	// queued for MAC retry, successful ones decode (and deliver)
	// progressively across the aggregate's airtime, so the receiver
	// observes the true PHY drain rate rather than an instantaneous burst.
	var subEnds []sim.Time
	if p.Aggregates() {
		payloads := make([]int, len(frames))
		for i, f := range frames {
			payloads[i] = f.Size
		}
		subEnds = p.SubframeEnds(payloads)
	}
	var delivered []*Frame
	failed := 0
	for i, f := range frames {
		if m.PER > 0 && m.loop.Rand().Float64() < m.PER {
			failed++
			continue
		}
		delivered = append(delivered, f)
		f := f
		at := now + air
		if subEnds != nil {
			at = now + subEnds[i]
		}
		m.loop.At(at, func() {
			st.Stats.FramesTx++
			st.Stats.BytesTx += int64(f.Size)
			st.Stats.QueueDelay += at - f.enqueued
			if f.Dst != nil && f.Dst.Receive != nil {
				f.Dst.Receive(f)
			}
		})
	}
	m.loop.After(air, func() {
		// Remove delivered frames from the queue (they are the head run,
		// minus failures which stay for retry).
		st.removeDelivered(delivered)
		if failed > 0 {
			st.Stats.Retries += failed
			st.retries++
			if st.retries > p.RetryLimit {
				// Drop the head frame after exhausting retries.
				if len(st.queue) > 0 {
					m.Tracer.MACDrop(m.loop.Now(), st.index, telemetry.TrigRetryLimit, st.queue[0].Size)
					st.queue = st.queue[1:]
				}
				st.Stats.Drops++
				st.retries = 0
			}
		} else {
			st.retries = 0
		}
		// Post-transmission backoff: winner re-draws next round.
		st.backoff = -1
		m.busy = false
		m.maybeSchedule()
	})
}

// removeDelivered deletes the given frames (a subset of the queue head run)
// from the queue, preserving order of the rest.
func (st *Station) removeDelivered(delivered []*Frame) {
	if len(delivered) == 0 {
		return
	}
	set := make(map[*Frame]bool, len(delivered))
	for _, f := range delivered {
		set[f] = true
	}
	kept := st.queue[:0]
	for _, f := range st.queue {
		if !set[f] {
			kept = append(kept, f)
		}
	}
	st.queue = kept
}

// collide wastes the medium for the duration of the longest colliding
// transmission plus an ACK timeout (EIFS-like), then retries everyone.
// slots is the backoff each collider had waited.
func (m *Medium) collide(winners []*Station, slots int) {
	p := m.params
	var longest sim.Time
	for _, st := range winners {
		frames := st.aggregate()
		var air sim.Time
		if p.Aggregates() {
			payloads := make([]int, len(frames))
			for i, f := range frames {
				payloads[i] = f.Size
			}
			air = p.AggregateAirtime(payloads)
		} else {
			air = p.DataAirtime(frames[0].Size)
		}
		if air > longest {
			longest = air
		}
	}
	waste := longest + p.SIFS + p.AckAirtime() // ack timeout
	m.busy = true
	m.busyTime += waste
	m.collideTime += waste
	m.Tracer.MACCollision(m.loop.Now(), winners[0].index, len(winners), waste, slots)
	for _, st := range winners {
		st.Stats.Collisions++
		st.Stats.Retries++
		st.retries++
		st.backoff = -1 // redraw from doubled CW
		if st.retries > p.RetryLimit {
			if len(st.queue) > 0 {
				m.Tracer.MACDrop(m.loop.Now(), st.index, telemetry.TrigRetryLimit, st.queue[0].Size)
				st.queue = st.queue[1:]
			}
			st.Stats.Drops++
			st.retries = 0
		}
	}
	m.loop.After(waste, func() {
		m.busy = false
		m.maybeSchedule()
	})
}

// String summarizes the stats for debugging.
func (s Stats) String() string {
	return fmt.Sprintf("acq=%d coll=%d retry=%d drop=%d tx=%d bytes=%d air=%v",
		s.Acquisitions, s.Collisions, s.Retries, s.Drops, s.FramesTx, s.BytesTx, s.Airtime)
}
