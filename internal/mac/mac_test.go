package mac

import (
	"testing"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
)

// saturate keeps a station's queue topped up with frames to dst.
func saturate(loop *sim.Loop, st, dst *Station, size int) {
	var refill func()
	refill = func() {
		for st.QueueLen() < 64 {
			st.Send(dst, size, nil)
		}
		loop.After(sim.Millisecond, refill)
	}
	loop.After(0, refill)
}

func TestSingleStationDelivers(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewMedium(loop, phy.Get(phy.Std80211g))
	a := m.AddStation("a", 0)
	b := m.AddStation("b", 0)
	got := 0
	b.Receive = func(f *Frame) { got += f.Size }
	for i := 0; i < 10; i++ {
		a.Send(b, 1518, nil)
	}
	loop.RunUntil(sim.Second)
	if got != 10*1518 {
		t.Fatalf("delivered %d bytes, want %d", got, 10*1518)
	}
	if a.Stats.FramesTx != 10 || a.Stats.Acquisitions != 10 {
		t.Fatalf("stats = %v", a.Stats)
	}
}

func TestPayloadHandleDelivered(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewMedium(loop, phy.Get(phy.Std80211g))
	a := m.AddStation("a", 0)
	b := m.AddStation("b", 0)
	var got any
	b.Receive = func(f *Frame) { got = f.Payload }
	a.Send(b, 100, "hello")
	loop.RunUntil(sim.Second)
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
}

func TestSaturationGoodputNearPaperBaseline(t *testing.T) {
	// One saturated UDP-like sender should land near the paper Fig. 7
	// baselines: b=7, g=26, n=210, ac=590 Mbit/s.
	cases := []struct {
		std      phy.Standard
		min, max float64
	}{
		{phy.Std80211b, 5, 8.5},
		{phy.Std80211g, 21, 31},
		{phy.Std80211n, 170, 250},
		{phy.Std80211ac, 500, 680},
	}
	for _, c := range cases {
		loop := sim.NewLoop(2)
		m := NewMedium(loop, phy.Get(c.std))
		a := m.AddStation("a", 0)
		b := m.AddStation("b", 0)
		var rcv int64
		b.Receive = func(f *Frame) { rcv += int64(f.Size) }
		saturate(loop, a, b, 1518)
		dur := 2 * sim.Second
		loop.RunUntil(dur)
		mbps := float64(rcv) * 8 / dur.Seconds() / 1e6
		if mbps < c.min || mbps > c.max {
			t.Errorf("%v: saturated goodput %.1f Mbit/s outside [%v,%v]", c.std, mbps, c.min, c.max)
		}
	}
}

func TestContentionReducesDataThroughput(t *testing.T) {
	// Paper Fig. 3: a reverse ACK stream (small frames, frequent) should
	// depress forward data throughput, and more ACKs depress it more.
	run := func(ackEvery int) float64 {
		loop := sim.NewLoop(3)
		m := NewMedium(loop, phy.Get(phy.Std80211n))
		snd := m.AddStation("data", 0)
		rcv := m.AddStation("ack", 0)
		var dataBytes int64
		pending := 0
		rcv.Receive = func(f *Frame) {
			dataBytes += int64(f.Size)
			pending++
			for pending >= ackEvery {
				pending -= ackEvery
				rcv.Send(snd, 64, nil)
			}
		}
		snd.Receive = func(f *Frame) {}
		saturate(loop, snd, rcv, 1518)
		dur := sim.Second
		loop.RunUntil(dur)
		return float64(dataBytes) * 8 / dur.Seconds() / 1e6
	}
	t1 := run(1)   // ACK every frame
	t16 := run(16) // ACK every 16 frames
	if t16 <= t1 {
		t.Fatalf("thinning ACKs did not help: 1:1=%.1f, 16:1=%.1f Mbit/s", t1, t16)
	}
	if (t16-t1)/t16 < 0.03 {
		t.Fatalf("contention effect implausibly small: 1:1=%.1f, 16:1=%.1f", t1, t16)
	}
}

func TestCollisionsHappenUnderContention(t *testing.T) {
	loop := sim.NewLoop(4)
	m := NewMedium(loop, phy.Get(phy.Std80211g))
	a := m.AddStation("a", 0)
	b := m.AddStation("b", 0)
	c := m.AddStation("c", 0)
	c.Receive = func(f *Frame) {}
	saturate(loop, a, c, 1518)
	saturate(loop, b, c, 1518)
	loop.RunUntil(2 * sim.Second)
	if a.Stats.Collisions+b.Stats.Collisions == 0 {
		t.Fatal("two saturated stations never collided")
	}
	if m.CollisionTime() == 0 {
		t.Fatal("collision time not accounted")
	}
	if m.BusyTime() < m.CollisionTime() {
		t.Fatal("busy time must include collision time")
	}
}

func TestFairnessBetweenTwoSaturatedStations(t *testing.T) {
	loop := sim.NewLoop(5)
	m := NewMedium(loop, phy.Get(phy.Std80211g))
	a := m.AddStation("a", 0)
	b := m.AddStation("b", 0)
	c := m.AddStation("c", 0)
	var fromA, fromB int64
	c.Receive = func(f *Frame) {
		if f.Payload == "a" {
			fromA += int64(f.Size)
		} else {
			fromB += int64(f.Size)
		}
	}
	refill := func(st *Station, tag string) {
		var fn func()
		fn = func() {
			for st.QueueLen() < 64 {
				st.Send(c, 1518, tag)
			}
			loop.After(sim.Millisecond, fn)
		}
		loop.After(0, fn)
	}
	refill(a, "a")
	refill(b, "b")
	loop.RunUntil(3 * sim.Second)
	ratio := float64(fromA) / float64(fromB)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("DCF fairness broken: a/b = %.2f", ratio)
	}
}

func TestPERCausesRetries(t *testing.T) {
	loop := sim.NewLoop(6)
	m := NewMedium(loop, phy.Get(phy.Std80211g))
	m.PER = 0.3
	a := m.AddStation("a", 0)
	b := m.AddStation("b", 0)
	got := 0
	b.Receive = func(f *Frame) { got++ }
	for i := 0; i < 50; i++ {
		a.Send(b, 1518, nil)
	}
	loop.RunUntil(5 * sim.Second)
	if got != 50 {
		t.Fatalf("delivered %d/50 frames despite MAC retries", got)
	}
	if a.Stats.Retries == 0 {
		t.Fatal("PER=0.3 produced no retries")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	loop := sim.NewLoop(7)
	m := NewMedium(loop, phy.Get(phy.Std80211b))
	a := m.AddStation("a", 10)
	b := m.AddStation("b", 0)
	b.Receive = func(f *Frame) {}
	for i := 0; i < 100; i++ {
		a.Send(b, 1518, nil)
	}
	if a.Stats.Drops == 0 {
		t.Fatal("overfilling a 10-frame queue did not drop")
	}
	loop.RunUntil(sim.Second)
}

func TestAggregationOnlyToSameDestination(t *testing.T) {
	loop := sim.NewLoop(8)
	m := NewMedium(loop, phy.Get(phy.Std80211n))
	a := m.AddStation("a", 0)
	b := m.AddStation("b", 0)
	c := m.AddStation("c", 0)
	gotB, gotC := 0, 0
	b.Receive = func(f *Frame) { gotB++ }
	c.Receive = func(f *Frame) { gotC++ }
	// Interleave destinations: aggregates must split at the boundary.
	for i := 0; i < 4; i++ {
		a.Send(b, 1500, nil)
	}
	for i := 0; i < 4; i++ {
		a.Send(c, 1500, nil)
	}
	loop.RunUntil(sim.Second)
	if gotB != 4 || gotC != 4 {
		t.Fatalf("delivered b=%d c=%d, want 4/4", gotB, gotC)
	}
	// 8 frames, same-destination aggregation => exactly 2 acquisitions.
	if a.Stats.Acquisitions != 2 {
		t.Fatalf("acquisitions = %d, want 2 (one per destination)", a.Stats.Acquisitions)
	}
}

func TestNoAggregationOn80211g(t *testing.T) {
	loop := sim.NewLoop(9)
	m := NewMedium(loop, phy.Get(phy.Std80211g))
	a := m.AddStation("a", 0)
	b := m.AddStation("b", 0)
	b.Receive = func(f *Frame) {}
	for i := 0; i < 5; i++ {
		a.Send(b, 1500, nil)
	}
	loop.RunUntil(sim.Second)
	if a.Stats.Acquisitions != 5 {
		t.Fatalf("acquisitions = %d, want 5 (no aggregation on g)", a.Stats.Acquisitions)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int) {
		loop := sim.NewLoop(99)
		m := NewMedium(loop, phy.Get(phy.Std80211n))
		a := m.AddStation("a", 0)
		b := m.AddStation("b", 0)
		var rcv int64
		b.Receive = func(f *Frame) {
			rcv += int64(f.Size)
			b.Send(a, 64, nil)
		}
		a.Receive = func(f *Frame) {}
		saturate(loop, a, b, 1518)
		loop.RunUntil(sim.Second)
		return rcv, a.Stats.Collisions
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", r1, c1, r2, c2)
	}
}
