package telemetry

import (
	"io"
	"strconv"
)

// WritePrometheus renders every instrument in r in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as real Prometheus histograms built from the
// fixed BucketBounds (cumulative `le` buckets, `_sum`, `_count`) plus
// quantile gauges for the p50/p95/p99 digest. Metric names are the
// registry names prefixed with "tack_" and sanitized (every character
// outside [a-zA-Z0-9_:] becomes '_'), so e.g. "ep.rx_packets" exports
// as tack_ep_rx_packets. Output order follows Registry.Each, so scrapes
// are deterministic for a fixed instrument set. Nil-safe.
func WritePrometheus(w io.Writer, r *Registry) error {
	var err error
	buf := make([]byte, 0, 256)
	flush := func() {
		if err == nil && len(buf) > 0 {
			_, err = w.Write(buf)
		}
		buf = buf[:0]
	}
	r.Each(func(name string, kind MetricKind, c *Counter, g *Gauge, h *Histogram) {
		if err != nil {
			return
		}
		pn := promName(name)
		switch kind {
		case MetricCounter:
			buf = append(buf, "# TYPE "...)
			buf = append(buf, pn...)
			buf = append(buf, " counter\n"...)
			buf = append(buf, pn...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, c.Value(), 10)
			buf = append(buf, '\n')
		case MetricGauge:
			buf = append(buf, "# TYPE "...)
			buf = append(buf, pn...)
			buf = append(buf, " gauge\n"...)
			buf = append(buf, pn...)
			buf = append(buf, ' ')
			buf = appendPromFloat(buf, g.Value())
			buf = append(buf, '\n')
		case MetricHistogram:
			buf = append(buf, "# TYPE "...)
			buf = append(buf, pn...)
			buf = append(buf, " histogram\n"...)
			count, sum := h.VisitBuckets(func(le float64, cum uint64) {
				buf = append(buf, pn...)
				buf = append(buf, `_bucket{le="`...)
				buf = appendPromFloat(buf, le)
				buf = append(buf, `"} `...)
				buf = strconv.AppendUint(buf, cum, 10)
				buf = append(buf, '\n')
			})
			buf = append(buf, pn...)
			buf = append(buf, `_bucket{le="+Inf"} `...)
			buf = strconv.AppendInt(buf, int64(count), 10)
			buf = append(buf, '\n')
			buf = append(buf, pn...)
			buf = append(buf, "_sum "...)
			buf = appendPromFloat(buf, sum)
			buf = append(buf, '\n')
			buf = append(buf, pn...)
			buf = append(buf, "_count "...)
			buf = strconv.AppendInt(buf, int64(count), 10)
			buf = append(buf, '\n')
			// The digest quantiles ride along as plain gauges (suffix
			// chosen to not collide with histogram sample suffixes).
			st := h.stat()
			for _, q := range [...]struct {
				suffix string
				v      float64
			}{{"_p50", st.P50}, {"_p95", st.P95}, {"_p99", st.P99}} {
				buf = append(buf, "# TYPE "...)
				buf = append(buf, pn...)
				buf = append(buf, q.suffix...)
				buf = append(buf, " gauge\n"...)
				buf = append(buf, pn...)
				buf = append(buf, q.suffix...)
				buf = append(buf, ' ')
				buf = appendPromFloat(buf, q.v)
				buf = append(buf, '\n')
			}
		}
		flush()
	})
	flush()
	return err
}

// promName converts a registry metric name ("ep.batch.read_size") into
// a valid Prometheus metric name ("tack_ep_batch_read_size").
func promName(name string) string {
	out := make([]byte, 0, len(name)+5)
	out = append(out, "tack_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// appendPromFloat renders a float sample value; integral values render
// without an exponent or trailing zeros, matching common exporters.
func appendPromFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
