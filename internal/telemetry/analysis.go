package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
)

// MSS mirrors the full-sized-packet assumption of the paper's Eq. 3
// (f_tack = min(bw/(L·MSS), β/RTTmin)).
const MSS = 1500

// FlowSummary aggregates one flow's trace into the quantities the paper
// reasons about: the achieved acknowledgment frequency against the Eq. 3
// target, the IACK trigger breakdown, and loss-detection latency.
type FlowSummary struct {
	Flow uint32
	// Mode is "tack" or "legacy" (from the flow_params event; "unknown"
	// when the trace lacks one).
	Mode string
	// Beta, L, Payload, SettleFraction echo the flow_params event.
	Beta, L, Payload, SettleFraction int

	// Start and End bound the flow's events on the virtual clock.
	Start, End sim.Time

	// Sender-side counts.
	DataPackets, Retransmits int
	BytesSent                int64
	RTOs, LossEpisodes       int
	RTTSyncs                 int

	// Receiver-side counts.
	TACKs, IACKs int
	// AcksReceived counts sender-side ack arrivals (a one-sided sender
	// trace has no ack_sent events; these stand in for them).
	AcksReceived int
	// AckTriggers histograms scheduled-ack triggers (bytes/timer/tail/fin);
	// IACKTriggers histograms instant-ack triggers (loss/window/...).
	AckTriggers, IACKTriggers map[string]int
	// BytesAcked is the highest cumulative ack observed.
	BytesAcked int64

	// Loss detection (receiver-based): ranges declared, packets covered,
	// and the latency distribution from gap observation to declaration.
	LossRanges, LossPackets int
	LossLatency             *stats.Summary

	// Sender-side loss-mark attribution: detector name (rack, dupthresh,
	// rto) → segments marked lost, with the per-detector distribution of
	// send-to-mark latency in seconds. Comparing the rack and dupthresh
	// rows of the same scenario quantifies the recovery-latency delta
	// between the detectors.
	LossMarks   map[string]int
	MarkLatency map[string]*stats.Summary
	// TLPProbes counts tail loss probes fired by the sender.
	TLPProbes int

	// RTTMin is the smallest nonzero RTTmin carried by acknowledgments.
	RTTMin sim.Time
	// DeliveryBps is the average delivery rate computed from cumulative-ack
	// growth across the acknowledgment span (not the synced max filter), the
	// bw term of Eq. 3.
	DeliveryBps float64

	// AchievedAckHz is the measured scheduled-acknowledgment (TACK)
	// frequency. TargetAckHz is the Eq. 3 prediction
	// min(TargetByteHz, TargetPeriodicHz); Regime names the binding bound.
	AchievedAckHz    float64
	TargetAckHz      float64
	TargetByteHz     float64
	TargetPeriodicHz float64
	Regime           string

	// Last congestion-controller outputs seen.
	LastCwnd   int64
	LastPacing float64

	// Anomalies counts flight-recorder anomaly events by class name
	// (stall, retx_storm, wnd_exhaust, mig_storm) — present when the
	// trace is a post-mortem dump or the endpoint detectors fired.
	Anomalies map[string]int

	// Path migration: foreign-address packets rejected, PATH_CHALLENGEs
	// sent while probing a candidate address, and validated migrations
	// (the migration_rejected / path_challenge / migration_completed
	// event kinds).
	MigrationRejects int
	PathChallenges   int
	Migrations       int

	started               bool
	firstAckAt, lastAckAt sim.Time
	firstCumAck           uint64
	haveAck               bool

	// Received-ack mirror of the above, for sender-only traces.
	rxTACKs                   int
	firstRxAckAt, lastRxAckAt sim.Time
	firstRxCumAck             uint64
	haveRxAck                 bool
	minRxRTT                  sim.Time
}

// MACSummary aggregates medium-level events.
type MACSummary struct {
	Stations      int
	Acquisitions  int
	FramesTx      uint64
	BytesTx       int64
	Airtime       sim.Time
	Collisions    int
	CollisionTime sim.Time
	Drops         int
	BackoffSlots  *stats.Summary
}

// TraceSummary is the full analysis of one trace.
type TraceSummary struct {
	Events int
	Span   sim.Time
	Flows  []*FlowSummary
	MAC    *MACSummary
}

// Flow returns the summary for the given flow id (nil when absent).
func (s *TraceSummary) Flow(id uint32) *FlowSummary {
	for _, f := range s.Flows {
		if f.Flow == id {
			return f
		}
	}
	return nil
}

// Analyze replays a trace into per-flow and MAC summaries.
func Analyze(events []Event) *TraceSummary {
	ts := &TraceSummary{Events: len(events)}
	flows := map[uint32]*FlowSummary{}
	flow := func(id uint32) *FlowSummary {
		f := flows[id]
		if f == nil {
			f = &FlowSummary{
				Flow: id, Mode: "unknown",
				AckTriggers:  map[string]int{},
				IACKTriggers: map[string]int{},
				Anomalies:    map[string]int{},
				LossLatency:  stats.NewSummary(),
				LossMarks:    map[string]int{},
				MarkLatency:  map[string]*stats.Summary{},
			}
			flows[id] = f
		}
		return f
	}
	mac := func() *MACSummary {
		if ts.MAC == nil {
			ts.MAC = &MACSummary{BackoffSlots: stats.NewSummary()}
		}
		return ts.MAC
	}
	for i := range events {
		e := &events[i]
		if e.Sim > ts.Span {
			ts.Span = e.Sim
		}
		switch e.Kind {
		case KindMACTx:
			m := mac()
			m.seeStation(e.Flow)
			m.Acquisitions++
			m.FramesTx += e.PktSeq
			m.BytesTx += e.Len
			m.Airtime += sim.Time(e.Aux)
			m.BackoffSlots.Add(e.Value)
			continue
		case KindMACCollision:
			m := mac()
			m.seeStation(e.Flow)
			m.Collisions++
			m.CollisionTime += sim.Time(e.Aux)
			m.BackoffSlots.Add(e.Value)
			continue
		case KindMACDrop:
			m := mac()
			m.seeStation(e.Flow)
			m.Drops++
			continue
		case KindUnknown:
			continue
		}

		f := flow(e.Flow)
		if !f.started {
			f.started = true
			f.Start = e.Sim
		}
		if e.Sim > f.End {
			f.End = e.Sim
		}
		switch e.Kind {
		case KindFlowParams:
			if e.Trigger == 1 {
				f.Mode = "legacy"
			} else {
				f.Mode = "tack"
			}
			f.Beta = int(e.Seq)
			f.L = int(e.PktSeq)
			f.Payload = int(e.Len)
			f.SettleFraction = int(e.Aux)
		case KindDataSent:
			f.DataPackets++
			f.BytesSent += e.Len
			if e.Trigger == TrigRetrans {
				f.Retransmits++
			}
		case KindAckSent:
			switch e.Trigger {
			case TrigLoss, TrigWindow, TrigRTTSync, TrigHandshake, TrigKeepalive:
				f.IACKs++
				f.IACKTriggers[TriggerName(e.Trigger)]++
			default:
				f.TACKs++
				f.AckTriggers[TriggerName(e.Trigger)]++
				if !f.haveAck {
					f.haveAck = true
					f.firstAckAt = e.Sim
					f.firstCumAck = e.Seq
				}
				f.lastAckAt = e.Sim
			}
			if int64(e.Seq) > f.BytesAcked {
				f.BytesAcked = int64(e.Seq)
			}
			if e.Aux > 0 && (f.RTTMin == 0 || sim.Time(e.Aux) < f.RTTMin) {
				f.RTTMin = sim.Time(e.Aux)
			}
		case KindAckReceived:
			f.AcksReceived++
			if e.Trigger == TrigNone {
				// A scheduled TACK as seen from the sender.
				f.rxTACKs++
				if !f.haveRxAck {
					f.haveRxAck = true
					f.firstRxAckAt = e.Sim
					f.firstRxCumAck = e.Seq
				}
				f.lastRxAckAt = e.Sim
			}
			if int64(e.Seq) > f.BytesAcked {
				f.BytesAcked = int64(e.Seq)
			}
			if e.Aux > 0 && (f.minRxRTT == 0 || sim.Time(e.Aux) < f.minRxRTT) {
				f.minRxRTT = sim.Time(e.Aux)
			}
		case KindLossDeclared:
			f.LossRanges++
			f.LossPackets += int(e.Len)
			f.LossLatency.Add(e.Value)
		case KindLossMarked:
			det := TriggerName(e.Trigger)
			f.LossMarks[det]++
			sm := f.MarkLatency[det]
			if sm == nil {
				sm = stats.NewSummary()
				f.MarkLatency[det] = sm
			}
			sm.Add(e.Value)
		case KindTLPProbe:
			f.TLPProbes++
		case KindLossEpisode:
			f.LossEpisodes++
		case KindRTOFired:
			f.RTOs++
		case KindCCUpdate:
			f.LastCwnd = e.Len
			f.LastPacing = e.Value
		case KindRTTSync:
			f.RTTSyncs++
			if e.Aux > 0 && (f.RTTMin == 0 || sim.Time(e.Aux) < f.RTTMin) {
				f.RTTMin = sim.Time(e.Aux)
			}
		case KindAnomaly:
			f.Anomalies[TriggerName(e.Trigger)]++
		case KindMigrationRejected:
			f.MigrationRejects++
		case KindPathChallenge:
			f.PathChallenges++
		case KindMigrationCompleted:
			f.Migrations++
		}
	}
	for _, f := range flows {
		f.finish()
		ts.Flows = append(ts.Flows, f)
	}
	sort.Slice(ts.Flows, func(i, j int) bool { return ts.Flows[i].Flow < ts.Flows[j].Flow })
	return ts
}

func (m *MACSummary) seeStation(idx uint32) {
	if int(idx)+1 > m.Stations {
		m.Stations = int(idx) + 1
	}
}

// finish derives the achieved-vs-target acknowledgment frequencies once
// all events are folded in.
func (f *FlowSummary) finish() {
	// Prefer the receiver's own ack_sent record; a one-sided sender trace
	// falls back to ack arrivals (an undercount when the ACK path loses).
	span, acks, firstCum := f.lastAckAt-f.firstAckAt, f.TACKs, f.firstCumAck
	if !f.haveAck && f.haveRxAck {
		span, acks, firstCum = f.lastRxAckAt-f.firstRxAckAt, f.rxTACKs, f.firstRxCumAck
	}
	if acks > 1 && span > 0 {
		f.AchievedAckHz = float64(acks-1) / span.Seconds()
		f.DeliveryBps = float64(f.BytesAcked-int64(firstCum)) * 8 / span.Seconds()
	}
	if f.RTTMin == 0 {
		f.RTTMin = f.minRxRTT
	}
	if f.Mode != "tack" {
		return
	}
	beta, l := f.Beta, f.L
	if beta <= 0 {
		beta = 4
	}
	if l <= 0 {
		l = 2
	}
	if f.RTTMin > 0 {
		alpha := f.RTTMin / sim.Time(beta)
		// The policy floors the TACK interval at 1 ms (timer resolution).
		if alpha < sim.Millisecond {
			alpha = sim.Millisecond
		}
		f.TargetPeriodicHz = 1 / alpha.Seconds()
	}
	if f.DeliveryBps > 0 {
		// Eq. 3's byte-counting bound bw/(L·MSS), discretized to the flow's
		// actual payload size: the receiver crosses the L·MSS pending-byte
		// threshold only on whole-packet arrivals, so an ack fires every
		// ceil(L·MSS/payload) packets.
		payload := f.Payload
		if payload <= 0 {
			payload = MSS
		}
		pktsPerAck := (l*MSS + payload - 1) / payload
		f.TargetByteHz = f.DeliveryBps / 8 / float64(pktsPerAck*payload)
	}
	switch {
	case f.TargetPeriodicHz == 0 && f.TargetByteHz == 0:
		return
	case f.TargetByteHz == 0 || (f.TargetPeriodicHz > 0 && f.TargetPeriodicHz <= f.TargetByteHz):
		f.TargetAckHz = f.TargetPeriodicHz
		f.Regime = "periodic (beta/RTTmin)"
	default:
		f.TargetAckHz = f.TargetByteHz
		f.Regime = "bytecount (bw/(L*MSS))"
	}
}

// AckFrequencyError returns |achieved−target|/target, or -1 when either
// side is unavailable.
func (f *FlowSummary) AckFrequencyError() float64 {
	if f.TargetAckHz <= 0 || f.AchievedAckHz <= 0 {
		return -1
	}
	err := (f.AchievedAckHz - f.TargetAckHz) / f.TargetAckHz
	if err < 0 {
		err = -err
	}
	return err
}

// String renders the analysis as a human-readable report.
func (s *TraceSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %v\n", s.Events, s.Span)
	for _, f := range s.Flows {
		fmt.Fprintf(&b, "\nflow %d (%s", f.Flow, f.Mode)
		if f.Mode == "tack" {
			fmt.Fprintf(&b, ", beta=%d L=%d", f.Beta, f.L)
		}
		fmt.Fprintf(&b, ") %v .. %v\n", f.Start, f.End)
		fmt.Fprintf(&b, "  data: %d packets (%d retx), %d bytes sent, %d acked\n",
			f.DataPackets, f.Retransmits, f.BytesSent, f.BytesAcked)
		fmt.Fprintf(&b, "  acks: %d TACKs + %d IACKs", f.TACKs, f.IACKs)
		if f.DataPackets > 0 && f.TACKs+f.IACKs > 0 {
			fmt.Fprintf(&b, " (%.1f data:ack)", float64(f.DataPackets)/float64(f.TACKs+f.IACKs))
		}
		if f.AcksReceived > 0 {
			fmt.Fprintf(&b, ", %d received", f.AcksReceived)
		}
		b.WriteByte('\n')
		if len(f.AckTriggers) > 0 {
			fmt.Fprintf(&b, "  tack triggers: %s\n", renderTriggers(f.AckTriggers))
		}
		if len(f.IACKTriggers) > 0 {
			fmt.Fprintf(&b, "  iack triggers: %s\n", renderTriggers(f.IACKTriggers))
		}
		if f.AchievedAckHz > 0 {
			fmt.Fprintf(&b, "  ack frequency: achieved %.1f/s", f.AchievedAckHz)
			if f.TargetAckHz > 0 {
				fmt.Fprintf(&b, ", Eq.3 target %.1f/s [%s] (err %.1f%%; bounds: periodic %.1f/s, bytecount %.1f/s)",
					f.TargetAckHz, f.Regime, f.AckFrequencyError()*100,
					f.TargetPeriodicHz, f.TargetByteHz)
			}
			b.WriteByte('\n')
		}
		if f.RTTMin > 0 || f.DeliveryBps > 0 {
			fmt.Fprintf(&b, "  rttmin %v, delivery %.2f Mbit/s, %d sender syncs\n",
				f.RTTMin, f.DeliveryBps/1e6, f.RTTSyncs)
		}
		if f.LossRanges > 0 {
			fmt.Fprintf(&b, "  loss: %d ranges / %d packets declared; detection latency ms p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
				f.LossRanges, f.LossPackets,
				f.LossLatency.Percentile(50)*1e3, f.LossLatency.Percentile(95)*1e3,
				f.LossLatency.Percentile(99)*1e3, f.LossLatency.Max()*1e3)
		}
		if len(f.LossMarks) > 0 {
			fmt.Fprintf(&b, "  loss marks by detector:\n")
			dets := make([]string, 0, len(f.LossMarks))
			for d := range f.LossMarks {
				dets = append(dets, d)
			}
			sort.Strings(dets)
			for _, d := range dets {
				fmt.Fprintf(&b, "    %s: %d marked", d, f.LossMarks[d])
				if sm := f.MarkLatency[d]; sm != nil && sm.Count() > 0 {
					fmt.Fprintf(&b, "; send-to-mark ms p50=%.2f p95=%.2f max=%.2f",
						sm.Percentile(50)*1e3, sm.Percentile(95)*1e3, sm.Max()*1e3)
				}
				b.WriteByte('\n')
			}
		}
		if f.RTOs > 0 || f.LossEpisodes > 0 || f.TLPProbes > 0 {
			fmt.Fprintf(&b, "  recovery: %d loss episodes, %d RTOs, %d TLP probes\n",
				f.LossEpisodes, f.RTOs, f.TLPProbes)
		}
		if f.LastCwnd > 0 || f.LastPacing > 0 {
			fmt.Fprintf(&b, "  cc: final cwnd %d bytes, pacing %.2f Mbit/s\n", f.LastCwnd, f.LastPacing/1e6)
		}
		if f.Migrations > 0 || f.PathChallenges > 0 || f.MigrationRejects > 0 {
			fmt.Fprintf(&b, "  migration: %d completed (%d challenges sent), %d foreign packets rejected\n",
				f.Migrations, f.PathChallenges, f.MigrationRejects)
		}
		if len(f.Anomalies) > 0 {
			fmt.Fprintf(&b, "  ANOMALIES: %s\n", renderTriggers(f.Anomalies))
		}
	}
	if s.MAC != nil {
		m := s.MAC
		fmt.Fprintf(&b, "\nmac: %d stations, %d acquisitions (%d frames, %d bytes, %v airtime)\n",
			m.Stations, m.Acquisitions, m.FramesTx, m.BytesTx, m.Airtime)
		fmt.Fprintf(&b, "  collisions: %d (%v wasted), drops: %d, mean backoff %.1f slots\n",
			m.Collisions, m.CollisionTime, m.Drops, m.BackoffSlots.Mean())
	}
	return b.String()
}

func renderTriggers(m map[string]int) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, m[n])
	}
	return strings.Join(parts, " ")
}
