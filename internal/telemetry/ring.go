package telemetry

import (
	"io"
	"sync"
)

// DefaultRingSize is the flight-recorder capacity used when a caller
// asks for a ring without choosing a size. 256 events cover several
// RTTs of ack/loss/cc activity at TACK ack frequencies while costing
// ~18 KiB per connection.
const DefaultRingSize = 256

// Ring is a fixed-capacity flight recorder for Events: writes overwrite
// the oldest entry once the buffer is full, and recording never
// allocates after construction. It is the always-on capture layer behind
// anomaly post-mortems — cheap enough to run on every connection even
// when full tracing is disabled.
//
// A Ring is safe for concurrent use; Put takes a mutex (not the
// per-packet hot path's atomics, but recording is a single struct copy
// under the lock, and dump/snapshot readers are rare).
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever recorded; buf index = total % len(buf)
}

// NewRing returns a ring holding the last size events (DefaultRingSize
// when size <= 0).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{buf: make([]Event, size)}
}

// Put records one event, overwriting the oldest when full. Nil-safe.
func (r *Ring) Put(e *Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = *e
	r.total++
	r.mu.Unlock()
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Len returns the number of events currently held (≤ capacity).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded, including ones
// already overwritten.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot appends the held events to dst in oldest-to-newest order and
// returns the extended slice. Pass a reused buffer to avoid allocation.
func (r *Ring) Snapshot(dst []Event) []Event {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.total < n {
		return append(dst, r.buf[:r.total]...)
	}
	head := r.total % n // index of the oldest event
	dst = append(dst, r.buf[head:]...)
	return append(dst, r.buf[:head]...)
}

// WriteJSONL encodes the held events to w as JSON Lines, oldest first.
// The encoding is the same one streaming tracers and post-mortem dumps
// use, so DecodeJSONL and cmd/tacktrace read it directly.
func (r *Ring) WriteJSONL(w io.Writer) error {
	events := r.Snapshot(nil)
	buf := make([]byte, 0, 256)
	for i := range events {
		buf = AppendEvent(buf[:0], &events[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
