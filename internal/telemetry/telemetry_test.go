package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

// TestKindNames checks the wire-name mapping is total and reversible.
func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if k != KindUnknown && KindByName(name) != k {
			t.Fatalf("KindByName(%q) = %v, want %v", name, KindByName(name), k)
		}
	}
	if KindByName("no-such-event") != KindUnknown {
		t.Fatal("unknown name should map to KindUnknown")
	}
	if TriggerName(TrigBytes) != "bytes" || TriggerName(200) != "unknown" {
		t.Fatal("trigger naming broken")
	}
}

// TestJSONLRoundtrip encodes a representative event set and decodes it back.
func TestJSONLRoundtrip(t *testing.T) {
	tr := New()
	tr.SetWallClock(func() int64 { return 42 })
	now := sim.Time(1500 * sim.Millisecond)
	tr.FlowParams(now, 7, false, 4, 2, 1439, 4)
	tr.DataSent(now+1, 7, 1000, 55, 1439, true, 12)
	tr.AckSent(now+2, 7, TrigTimer, 2000, 60, 3, 20*sim.Millisecond, 1.5e7)
	tr.AckReceived(now+3, 7, TrigLoss, 2000, 60, 2878, 21*sim.Millisecond, 1.4e7)
	tr.LossDeclared(now+4, 7, 40, 44, 5*sim.Millisecond)
	tr.LossEpisode(now+5, 7, 4317, 90000, false)
	tr.RTOFired(now+6, 7, 90000, 2)
	tr.CCUpdate(now+7, 7, 123456, 2.5e7, true)
	tr.RTTSync(now+8, 7, TrigHandshake, 50, 19*sim.Millisecond, 0.01)
	tr.RateSample(now+9, 7, 288000, 100*sim.Millisecond, 2.3e7)
	tr.MACTx(now+10, 1, 12, 17000, 2*sim.Millisecond, 9)
	tr.MACCollision(now+11, 0, 2, 3*sim.Millisecond, 4)
	tr.MACDrop(now+12, 1, TrigQueueFull, 1500)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Sim != g.Sim || w.Wall != g.Wall || w.Kind != g.Kind || w.Flow != g.Flow ||
			w.Trigger != g.Trigger || w.Seq != g.Seq || w.PktSeq != g.PktSeq ||
			w.Len != g.Len || w.Aux != g.Aux ||
			math.Abs(w.Value-g.Value) > 1e-9*math.Abs(w.Value) {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestStreamingMatchesInMemory checks both sinks produce identical JSONL.
func TestStreamingMatchesInMemory(t *testing.T) {
	var streamed bytes.Buffer
	st := NewStreaming(&streamed)
	st.SetWallClock(nil)
	mem := New()
	mem.SetWallClock(nil)
	for i := 0; i < 50; i++ {
		now := sim.Time(i) * sim.Millisecond
		st.DataSent(now, 1, uint64(i)*1439, uint64(i), 1439, i%7 == 0, uint64(i/2))
		mem.DataSent(now, 1, uint64(i)*1439, uint64(i), 1439, i%7 == 0, uint64(i/2))
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mem.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != buf.String() {
		t.Fatal("streaming and in-memory encodings differ")
	}
	if mem.Len() != 50 || st.Len() != 0 {
		t.Fatalf("retention: mem=%d (want 50), streaming=%d (want 0)", mem.Len(), st.Len())
	}
}

// TestDecodeTolerant checks unknown events and blank lines survive decoding.
func TestDecodeTolerant(t *testing.T) {
	in := strings.NewReader(`{"t":1,"ev":"data_sent","len":10}

{"t":2,"ev":"future_event","seq":9}
{"t":3,"ev":"ack_sent","trig":2}
`)
	evs, err := DecodeJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[1].Kind != KindUnknown || evs[1].Seq != 9 {
		t.Fatalf("unknown event mangled: %+v", evs[1])
	}
	if evs[2].Trigger != TrigTimer {
		t.Fatalf("trigger lost: %+v", evs[2])
	}
}

// TestRegistry exercises instruments and snapshots.
func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(4)
	if reg.Counter("c") != c {
		t.Fatal("counter identity not stable")
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("g")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	h := reg.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	snap := reg.Snapshot()
	if snap.Counters["c"] != 5 || snap.Gauges["g"] != 2.5 {
		t.Fatalf("snapshot scalars wrong: %+v", snap)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 100 || hs.Min != 1 || hs.Max != 100 || hs.P50 < 49 || hs.P50 > 52 {
		t.Fatalf("snapshot histogram wrong: %+v", hs)
	}
	if !strings.Contains(snap.String(), "c") {
		t.Fatal("snapshot text missing counter")
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestNilSafety checks every instrument and tracer entry point is a no-op
// on nil receivers — the un-instrumented default.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	tr.Emit(Event{})
	tr.DataSent(1, 0, 0, 0, 0, false, 0)
	tr.SetWallClock(nil)
	if tr.Events() != nil || tr.Len() != 0 || tr.Err() != nil {
		t.Fatal("nil tracer not inert")
	}
	if err := tr.WriteJSONL(nil); err != nil {
		t.Fatal(err)
	}
	c, g, h := reg.Counter("x"), reg.Gauge("x"), reg.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments not inert")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestNoopPathAllocations asserts the un-instrumented path allocates
// nothing: the whole point of the nil-safe design is that production code
// can call emission helpers unconditionally.
func TestNoopPathAllocations(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		tr.DataSent(1, 0, 10, 10, 1439, false, 0)
		tr.AckSent(2, 0, TrigBytes, 20, 20, 0, 0, 0)
		tr.CCUpdate(3, 0, 1, 1, false)
		c.Inc()
		g.Set(3.14)
		h.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("no-op telemetry path allocates %v per op, want 0", allocs)
	}
}

// BenchmarkNoopTracer measures the uninstrumented fast path (expect ~ns and
// 0 B/op with -benchmem).
func BenchmarkNoopTracer(b *testing.B) {
	var tr *Tracer
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.DataSent(sim.Time(i), 0, uint64(i), uint64(i), 1439, false, 0)
		c.Inc()
	}
}

// BenchmarkEmitStreaming measures the instrumented streaming encode path.
func BenchmarkEmitStreaming(b *testing.B) {
	tr := NewStreaming(discard{})
	tr.SetWallClock(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.DataSent(sim.Time(i), 0, uint64(i), uint64(i), 1439, false, 0)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
