package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/tacktp/tack/internal/stats"
)

// Registry is a process-wide (or per-run) metrics namespace: named
// counters, gauges, and streaming histograms. Instruments are resolved
// once at construction time of the instrumented component and then updated
// lock-free on the hot path (counters and gauges are single atomics).
//
// Like the Tracer, a nil *Registry is the un-instrumented default: it
// hands out nil instruments whose update methods are no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating on first use) the named counter. Nil-safe:
// a nil registry returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{s: stats.NewSummary()}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 point value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a streaming distribution built on stats.Summary. Observe
// takes a mutex (histogram observation points are chosen off the
// per-packet hot path: per-ack, per-loss, per-snapshot).
type Histogram struct {
	mu sync.Mutex
	s  *stats.Summary
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.s.Add(v)
	h.mu.Unlock()
}

// stat summarizes the histogram under its lock.
func (h *Histogram) stat() HistogramStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.s.Count() == 0 {
		return HistogramStat{}
	}
	return HistogramStat{
		Count: h.s.Count(), Mean: h.s.Mean(),
		Min: h.s.Min(), Max: h.s.Max(),
		P50: h.s.Percentile(50), P95: h.s.Percentile(95), P99: h.s.Percentile(99),
	}
}

// HistogramStat is a point-in-time histogram digest.
type HistogramStat struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values. Nil-safe (returns an
// empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStat, len(r.histograms))
		for n, h := range r.histograms {
			s.Histograms[n] = h.stat()
		}
	}
	return s
}

// MarshalJSON renders the snapshot with deterministic key order (Go maps
// already marshal sorted, so the default marshaller suffices; kept for
// documentation of the stable contract).
func (s Snapshot) JSON() ([]byte, error) { return json.Marshal(s) }

// String renders the snapshot as sorted "name value" lines for human
// output.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-32s n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
			n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}
