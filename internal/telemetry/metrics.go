package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/tacktp/tack/internal/stats"
)

// Registry is a process-wide (or per-run) metrics namespace: named
// counters, gauges, and streaming histograms. Instruments are resolved
// once at construction time of the instrumented component and then updated
// lock-free on the hot path (counters and gauges are single atomics).
//
// Like the Tracer, a nil *Registry is the un-instrumented default: it
// hands out nil instruments whose update methods are no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// seq is the cached deterministic visit order (counters, gauges,
	// histograms; each group sorted by name), rebuilt lazily after an
	// instrument is created. Exporters iterate it without allocating.
	seq      []seqEntry
	seqDirty bool
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// MetricKind discriminates instrument types for Visit/Each.
type MetricKind uint8

// Instrument kinds reported by Registry.Visit and Registry.Each.
const (
	// MetricCounter is a monotonically increasing count.
	MetricCounter MetricKind = iota
	// MetricGauge is a point-in-time value.
	MetricGauge
	// MetricHistogram is a bucketed distribution.
	MetricHistogram
)

type seqEntry struct {
	name string
	kind MetricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Counter returns (creating on first use) the named counter. Nil-safe:
// a nil registry returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.seqDirty = true
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.seqDirty = true
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{s: stats.NewSummary(), buckets: make([]uint64, len(BucketBounds))}
		r.histograms[name] = h
		r.seqDirty = true
	}
	return h
}

// sequence returns the deterministic instrument order, rebuilding the
// cache if instruments were created since the last call. The returned
// slice is immutable (rebuilds replace it), so callers iterate it
// without holding the registry lock.
func (r *Registry) sequence() []seqEntry {
	r.mu.RLock()
	if !r.seqDirty {
		s := r.seq
		r.mu.RUnlock()
		return s
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.seqDirty {
		return r.seq
	}
	seq := make([]seqEntry, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		seq = append(seq, seqEntry{name: n, kind: MetricCounter, c: r.counters[n]})
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		seq = append(seq, seqEntry{name: n, kind: MetricGauge, g: r.gauges[n]})
	}
	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		seq = append(seq, seqEntry{name: n, kind: MetricHistogram, h: r.histograms[n]})
	}
	r.seq, r.seqDirty = seq, false
	return seq
}

// Each calls fn for every instrument in deterministic order (counters,
// then gauges, then histograms; each group sorted by name). Exactly one
// of c/g/h is non-nil per call. fn runs without the registry lock held,
// so it may call back into the registry. Nil-safe.
func (r *Registry) Each(fn func(name string, kind MetricKind, c *Counter, g *Gauge, h *Histogram)) {
	if r == nil {
		return
	}
	for _, e := range r.sequence() {
		fn(e.name, e.kind, e.c, e.g, e.h)
	}
}

// Visit calls fn with every instrument's name, kind, and current value
// in the same deterministic order as Each, without allocating a
// Snapshot (the exporter hot path). Counters report their count as a
// float64; histograms report their sample count — use Each for bucket
// access. Nil-safe.
func (r *Registry) Visit(fn func(name string, kind MetricKind, value float64)) {
	r.Each(func(name string, kind MetricKind, c *Counter, g *Gauge, h *Histogram) {
		switch kind {
		case MetricCounter:
			fn(name, kind, float64(c.Value()))
		case MetricGauge:
			fn(name, kind, g.Value())
		case MetricHistogram:
			fn(name, kind, float64(h.Count()))
		}
	})
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 point value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// BucketBounds are the fixed log-spaced histogram bucket upper bounds
// shared by every Histogram: a 1-2-5 series per decade from 1e-6 to
// 1e6. One fixed layout keeps Observe branch-free of sizing decisions,
// makes every histogram exportable as a real Prometheus histogram, and
// spans the units the stack records (seconds from microsecond loss
// latencies to multi-second handshakes, batch sizes from 1 to 1024).
// Samples above the last bound land only in the implicit +Inf bucket.
var BucketBounds = makeBucketBounds()

func makeBucketBounds() []float64 {
	bounds := make([]float64, 0, 37)
	for d := -6; d <= 5; d++ {
		p := math.Pow(10, float64(d))
		bounds = append(bounds, 1*p, 2*p, 5*p)
	}
	return append(bounds, 1e6)
}

// Histogram is a streaming distribution built on stats.Summary plus
// fixed log-spaced buckets (BucketBounds) for Prometheus export.
// Observe takes a mutex (histogram observation points are chosen off
// the per-packet hot path: per-ack, per-loss, per-snapshot).
type Histogram struct {
	mu      sync.Mutex
	s       *stats.Summary
	buckets []uint64 // non-cumulative counts, parallel to BucketBounds
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.s.Add(v)
	if i := sort.SearchFloat64s(BucketBounds, v); i < len(h.buckets) {
		h.buckets[i]++
	}
	h.mu.Unlock()
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.s.Count()
}

// VisitBuckets calls fn for each finite bucket bound with the
// cumulative count of samples ≤ bound (Prometheus `le` semantics), in
// ascending bound order, then returns the total sample count and sum.
// Samples above the last bound are covered only by the caller's +Inf
// bucket (count). fn runs without the histogram lock held.
func (h *Histogram) VisitBuckets(fn func(le float64, cumulative uint64)) (count int, sum float64) {
	if h == nil {
		return 0, 0
	}
	var cum [64]uint64
	h.mu.Lock()
	n := len(h.buckets)
	var c uint64
	for i, b := range h.buckets {
		c += b
		cum[i] = c
	}
	count, sum = h.s.Count(), h.s.Sum()
	h.mu.Unlock()
	for i := 0; i < n; i++ {
		fn(BucketBounds[i], cum[i])
	}
	return count, sum
}

// stat summarizes the histogram under its lock.
func (h *Histogram) stat() HistogramStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.s.Count() == 0 {
		return HistogramStat{}
	}
	return HistogramStat{
		Count: h.s.Count(), Sum: h.s.Sum(), Mean: h.s.Mean(),
		Min: h.s.Min(), Max: h.s.Max(),
		P50: h.s.Percentile(50), P95: h.s.Percentile(95), P99: h.s.Percentile(99),
	}
}

// HistogramStat is a point-in-time histogram digest.
type HistogramStat struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values, reading instruments
// in the deterministic Each order so concurrent updates are observed in
// a stable sequence and exports diff cleanly run-to-run. Nil-safe
// (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.Each(func(name string, kind MetricKind, c *Counter, g *Gauge, h *Histogram) {
		switch kind {
		case MetricCounter:
			if s.Counters == nil {
				s.Counters = map[string]int64{}
			}
			s.Counters[name] = c.Value()
		case MetricGauge:
			if s.Gauges == nil {
				s.Gauges = map[string]float64{}
			}
			s.Gauges[name] = g.Value()
		case MetricHistogram:
			if s.Histograms == nil {
				s.Histograms = map[string]HistogramStat{}
			}
			s.Histograms[name] = h.stat()
		}
	})
	return s
}

// MarshalJSON renders the snapshot with deterministic key order (Go maps
// already marshal sorted, so the default marshaller suffices; kept for
// documentation of the stable contract).
func (s Snapshot) JSON() ([]byte, error) { return json.Marshal(s) }

// String renders the snapshot as sorted "name value" lines for human
// output.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-32s n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
			n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}
