package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/tacktp/tack/internal/sim"
)

// The JSONL schema: one object per line with short, stable keys.
//
//	{"t":80000000,"wall":1719160000000000000,"ev":"ack_sent","flow":1,
//	 "trig":2,"seq":1048576,"pkt":730,"len":0,"aux":80000000,"val":5.6e8}
//
// "t" is the virtual clock in nanoseconds and "ev" the Kind name; all
// other fields are kind-specific (see the Kind constants) and omitted when
// zero. Encoding is hand-rolled with strconv appends so a streaming tracer
// allocates nothing per event beyond its reusable scratch buffer.

// AppendEvent appends e as one JSONL line (including the trailing newline)
// to b and returns the extended slice.
func AppendEvent(b []byte, e *Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(e.Sim), 10)
	if e.Wall != 0 {
		b = append(b, `,"wall":`...)
		b = strconv.AppendInt(b, e.Wall, 10)
	}
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Flow != 0 {
		b = append(b, `,"flow":`...)
		b = strconv.AppendUint(b, uint64(e.Flow), 10)
	}
	if e.Trigger != 0 {
		b = append(b, `,"trig":`...)
		b = strconv.AppendUint(b, uint64(e.Trigger), 10)
	}
	if e.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, e.Seq, 10)
	}
	if e.PktSeq != 0 {
		b = append(b, `,"pkt":`...)
		b = strconv.AppendUint(b, e.PktSeq, 10)
	}
	if e.Len != 0 {
		b = append(b, `,"len":`...)
		b = strconv.AppendInt(b, e.Len, 10)
	}
	if e.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendUint(b, e.Aux, 10)
	}
	if e.Value != 0 {
		b = append(b, `,"val":`...)
		b = strconv.AppendFloat(b, e.Value, 'g', -1, 64)
	}
	b = append(b, '}', '\n')
	return b
}

// wireEvent mirrors the JSONL field names for decoding.
type wireEvent struct {
	T    int64   `json:"t"`
	Wall int64   `json:"wall"`
	Ev   string  `json:"ev"`
	Flow uint32  `json:"flow"`
	Trig uint8   `json:"trig"`
	Seq  uint64  `json:"seq"`
	Pkt  uint64  `json:"pkt"`
	Len  int64   `json:"len"`
	Aux  uint64  `json:"aux"`
	Val  float64 `json:"val"`
}

// DecodeJSONL reads a JSONL trace back into events. Blank lines are
// skipped; malformed lines abort with a positional error. Events with
// unrecognized names decode to KindUnknown rather than failing, so newer
// traces remain readable.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var w wireEvent
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, Event{
			Sim:  sim.Time(w.T),
			Wall: w.Wall, Kind: KindByName(w.Ev), Flow: w.Flow,
			Trigger: w.Trig, Seq: w.Seq, PktSeq: w.Pkt, Len: w.Len,
			Aux: w.Aux, Value: w.Val,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace: %w", err)
	}
	return out, nil
}
