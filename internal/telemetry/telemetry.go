// Package telemetry provides structured, allocation-conscious flow
// observability for the TACK stack: a qlog-style typed event log and a
// metrics registry with cheap atomic hot-path updates.
//
// The design follows the QUIC ecosystem's qlog practice: every
// behaviourally significant protocol event — a DATA transmission, a
// TACK/IACK emission with its trigger, a loss declaration with its
// detection latency, a congestion-controller update, a MAC-level collision
// — is recorded as one flat, fixed-size Event carrying both the simulation
// clock and (when available) the wall clock, and exported as JSON Lines
// for offline analysis (cmd/tacktrace).
//
// Instrumentation is opt-in and nil-safe: every Tracer method is a no-op
// on a nil receiver, and a nil Registry hands out nil Counters/Gauges
// whose update methods are likewise no-ops. Un-instrumented runs therefore
// pay a nil check per emission point and zero allocations (asserted by
// BenchmarkNoopTracer / TestNoopPathAllocations).
package telemetry

import (
	"io"
	"sync"
	"time"

	"github.com/tacktp/tack/internal/sim"
)

// Kind discriminates event types.
type Kind uint8

// Event kinds. The per-kind meaning of the generic Event fields is
// documented on each constant and summarized in DESIGN.md ("Observability").
const (
	// KindUnknown is the zero Kind; decoded events with unrecognized names
	// carry it.
	KindUnknown Kind = iota
	// KindFlowParams records the flow's TACK constants once per flow:
	// Trigger=mode (0 TACK, 1 legacy), Seq=β, PktSeq=L, Len=payload bytes,
	// Aux=settle fraction.
	KindFlowParams
	// KindDataSent records a DATA transmission: Trigger=1 for a
	// retransmission, Seq=byte offset, PktSeq=packet number, Len=payload
	// bytes, Aux=oldest outstanding packet number.
	KindDataSent
	// KindAckSent records a receiver acknowledgment emission:
	// Trigger=acknowledgment trigger (Trig*), Seq=cumulative ack byte,
	// PktSeq=largest packet number seen, Len=unacked blocks carried,
	// Aux=current RTTmin in ns, Value=synced delivery rate (bit/s).
	KindAckSent
	// KindAckReceived records sender-side acknowledgment processing:
	// Trigger=IACK trigger (TrigNone for a TACK), Seq=cumulative ack byte,
	// PktSeq=largest acknowledged packet number, Len=newly acked bytes,
	// Aux=RTT sample in ns (0 if none), Value=delivery-rate input (bit/s).
	KindAckReceived
	// KindLossDeclared records one settled loss range at the receiver:
	// PktSeq=range lo, Aux=range hi, Len=packets in the range,
	// Value=detection latency in seconds (gap observed → declared).
	KindLossDeclared
	// KindLossEpisode records the sender entering a loss episode:
	// Trigger=1 for RTO-driven, Len=bytes declared lost, Aux=inflight bytes.
	KindLossEpisode
	// KindRTOFired records a retransmission timeout: Len=inflight bytes,
	// Aux=backoff exponent.
	KindRTOFired
	// KindCCUpdate records a congestion-controller output change:
	// Trigger=1 when caused by a loss event, Len=cwnd bytes,
	// Value=pacing rate (bit/s).
	KindCCUpdate
	// KindRTTSync records a sender→receiver state sync IACK:
	// Trigger=IACK trigger, PktSeq=oldest outstanding packet number,
	// Aux=RTTmin in ns, Value=ACK-path loss rate ρ′.
	KindRTTSync
	// KindRateSample records a receiver delivery-rate interval closing:
	// Len=interval bytes, Aux=interval ns, Value=interval rate (bit/s).
	KindRateSample
	// KindMACTx records a successful medium acquisition: Flow=station
	// index, PktSeq=frames aggregated, Len=MSDU bytes, Aux=airtime ns,
	// Value=backoff slots waited.
	KindMACTx
	// KindMACCollision records a collision: Flow=station index of one
	// collider, PktSeq=number of colliding stations, Aux=wasted airtime ns,
	// Value=backoff slots waited.
	KindMACCollision
	// KindMACDrop records a frame drop: Flow=station index,
	// Trigger=TrigQueueFull or TrigRetryLimit, Len=frame bytes.
	KindMACDrop

	// KindMigrationRejected records the endpoint demux dropping a packet
	// whose source address differs from the connection's bound peer (NAT
	// rebinding / roam) when path migration is disabled, or after a
	// challenge for that address failed or timed out:
	// Flow=ConnID, PktSeq=arriving packet number, Len=datagram bytes.
	KindMigrationRejected

	// KindStreamOpened records a stream coming into existence at either
	// end of the multiplexing layer: Flow=ConnID, Seq=stream ID,
	// Trigger=0 for a locally opened stream, 1 for one created by a
	// remote frame (accept side).
	KindStreamOpened
	// KindStreamClosed records a stream finishing cleanly (FIN sent and
	// acknowledged at the sender; FIN consumed at the receiver):
	// Flow=ConnID, Seq=stream ID, Len=total stream bytes.
	KindStreamClosed
	// KindStreamWindow records a per-stream flow-control advertisement
	// leaving the receiver: Flow=ConnID, Seq=stream ID, Aux=advertised
	// absolute byte limit, Trigger=TrigWindow when the advert rode a
	// window-update IACK (urgent release), TrigNone when it piggybacked
	// on a regular acknowledgment.
	KindStreamWindow

	// KindLossMarked records the sender marking one segment lost, with the
	// detector attributed in Trigger (TrigDetRACK / TrigDetDupThresh /
	// TrigDetRTO): Seq=byte offset, PktSeq=the transmission the mark
	// applies to, Len=segment bytes, Aux=reorder window ns (RACK only),
	// Value=detection latency in seconds (mark time − last transmission).
	KindLossMarked
	// KindTLPProbe records a tail loss probe transmission: PktSeq=the
	// probe's fresh packet number, Seq=probed byte offset, Len=segment
	// bytes, Aux=the probe timeout that fired (ns).
	KindTLPProbe

	// KindAnomaly records an endpoint anomaly detector firing on a
	// connection (and is the last event written into a flight-recorder
	// post-mortem dump): Flow=ConnID, Trigger=anomaly class (TrigStall,
	// TrigRetxStorm, TrigWndExhaust, TrigMigStorm), Len=bytes in flight
	// at detection, Aux=class detail (stall: ns since last progress;
	// retx storm: retransmissions in the window; window exhaustion: ns
	// spent blocked; migration storm: rejects in the window).
	KindAnomaly

	// KindPathChallenge records the endpoint sending a PATH_CHALLENGE to
	// an unvalidated candidate peer address during path migration:
	// Flow=ConnID, Seq=challenge (re)send ordinal within the probing
	// episode, Len=challenge bytes on the wire.
	KindPathChallenge
	// KindPathResponse records a matching PATH_RESPONSE arriving from the
	// challenged address: Flow=ConnID, Len=datagram bytes.
	KindPathResponse
	// KindMigrationCompleted records a validated path migration — the
	// connection's peer address switched to the challenged address and the
	// congestion state was reset: Flow=ConnID, Seq=challenges sent during
	// the probing episode, Aux=probing duration ns.
	KindMigrationCompleted

	// KindFECRepairSent records a REPAIR symbol leaving the sender:
	// Flow=ConnID, Seq=FEC group id, PktSeq=repair index within the group,
	// Len=repair payload bytes, Aux=group length k, Value=current
	// redundancy ratio r/k.
	KindFECRepairSent
	// KindFECRecovered records the receiver reconstructing a lost DATA
	// packet from repair symbols: Flow=ConnID, Seq=FEC group id, PktSeq=the
	// recovered packet number, Len=recovered payload bytes, Aux=stream ID.
	KindFECRecovered
	// KindFECRepairWasted records a repair symbol that bought nothing — its
	// group was already fully received, or it duplicated an earlier repair:
	// Flow=ConnID, Seq=FEC group id, Len=repair payload bytes.
	KindFECRepairWasted

	numKinds
)

var kindNames = [numKinds]string{
	KindUnknown:      "unknown",
	KindFlowParams:   "flow_params",
	KindDataSent:     "data_sent",
	KindAckSent:      "ack_sent",
	KindAckReceived:  "ack_recv",
	KindLossDeclared: "loss_declared",
	KindLossEpisode:  "loss_episode",
	KindRTOFired:     "rto_fired",
	KindCCUpdate:     "cc_update",
	KindRTTSync:      "rtt_sync",
	KindRateSample:   "rate_sample",
	KindMACTx:        "mac_tx",
	KindMACCollision: "mac_collision",
	KindMACDrop:      "mac_drop",

	KindMigrationRejected: "migration_rejected",

	KindStreamOpened: "stream_opened",
	KindStreamClosed: "stream_closed",
	KindStreamWindow: "stream_window",

	KindLossMarked: "loss_marked",
	KindTLPProbe:   "tlp_probe",

	KindAnomaly: "anomaly",

	KindPathChallenge:      "path_challenge",
	KindPathResponse:       "path_response",
	KindMigrationCompleted: "migration_completed",

	KindFECRepairSent:   "fec_repair_sent",
	KindFECRecovered:    "fec_recovered",
	KindFECRepairWasted: "fec_repair_wasted",
}

// String returns the event name used on the wire (JSONL "ev" field).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a wire name back to its Kind (KindUnknown when the
// name is not recognized, so decoders tolerate forward-compatible traces).
func KindByName(name string) Kind {
	for k, n := range kindNames {
		if n == name {
			return Kind(k)
		}
	}
	return KindUnknown
}

// Trigger values. KindAckSent uses the acknowledgment triggers; KindMACDrop
// uses the MAC drop causes; KindAckReceived / KindRTTSync use the IACK
// triggers with TrigNone denoting a plain TACK.
const (
	// TrigNone marks an event with no specific trigger (e.g. a TACK).
	TrigNone uint8 = iota
	// TrigBytes: the byte-counting condition (L·MSS pending) fired the ack.
	TrigBytes
	// TrigTimer: the periodic boundary (α = RTTmin/β) fired the ack.
	TrigTimer
	// TrigTail: the bounded tail delay fired the ack for a sub-threshold
	// tail.
	TrigTail
	// TrigFIN: FIN-bearing data forced an immediate ack.
	TrigFIN
	// TrigLoss: a loss-event IACK.
	TrigLoss
	// TrigWindow: an abrupt receive-window change IACK.
	TrigWindow
	// TrigRTTSync: a sender RTTmin/oldest-outstanding sync IACK.
	TrigRTTSync
	// TrigHandshake: the handshake-completing IACK.
	TrigHandshake
	// TrigKeepalive: a liveness probe IACK.
	TrigKeepalive
	// TrigRetrans marks KindDataSent retransmissions.
	TrigRetrans
	// TrigQueueFull / TrigRetryLimit are the KindMACDrop causes.
	TrigQueueFull
	TrigRetryLimit

	// Anomaly classes (KindAnomaly triggers), fired by the endpoint's
	// shard-loop detectors.

	// TrigStall: data in flight but no cumulative-ack progress for more
	// than N×RTO (sender) or no datagrams at all on an incomplete
	// receiver for the equivalent span.
	TrigStall
	// TrigRetxStorm: retransmission rate over a rolling window crossed
	// the storm threshold.
	TrigRetxStorm
	// TrigWndExhaust: the usable send window (min of cwnd and the peer's
	// advertised window, minus flight) stayed exhausted with data queued
	// for longer than the persistence threshold.
	TrigWndExhaust
	// TrigMigStorm: repeated migration rejects (NAT rebind / roam) for
	// one connection within the detection window.
	TrigMigStorm

	// Loss-detector attribution (KindLossMarked triggers): which machinery
	// concluded the segment was lost.

	// TrigDetRACK: RFC 8985 time-based detection (a later-sent segment was
	// acked and the reorder window elapsed).
	TrigDetRACK
	// TrigDetDupThresh: duplicate-threshold detection — the legacy FACK
	// byte-threshold scan, or TACK-mode receiver-reported unacked ranges.
	TrigDetDupThresh
	// TrigDetRTO: the retransmission timeout declared the segment lost.
	TrigDetRTO
)

var triggerNames = [...]string{
	TrigNone:         "none",
	TrigBytes:        "bytes",
	TrigTimer:        "timer",
	TrigTail:         "tail",
	TrigFIN:          "fin",
	TrigLoss:         "loss",
	TrigWindow:       "window",
	TrigRTTSync:      "rttsync",
	TrigHandshake:    "handshake",
	TrigKeepalive:    "keepalive",
	TrigRetrans:      "retrans",
	TrigQueueFull:    "queuefull",
	TrigRetryLimit:   "retrylimit",
	TrigStall:        "stall",
	TrigRetxStorm:    "retx_storm",
	TrigWndExhaust:   "wnd_exhaust",
	TrigMigStorm:     "mig_storm",
	TrigDetRACK:      "rack",
	TrigDetDupThresh: "dupthresh",
	TrigDetRTO:       "rto",
}

// TriggerName renders a trigger value ("none" for the zero value).
func TriggerName(t uint8) string {
	if int(t) < len(triggerNames) {
		return triggerNames[t]
	}
	return "unknown"
}

// Event is one flat trace record. Field semantics depend on Kind (see the
// Kind constants); unused fields stay zero and are omitted from the JSONL
// encoding. The struct deliberately contains no pointers, strings, or
// slices so recording is a single copy.
type Event struct {
	// Sim is the virtual (simulation) timestamp.
	Sim sim.Time
	// Wall is the wall-clock timestamp in Unix nanoseconds (0 when the
	// tracer has no wall clock, e.g. deterministic test runs).
	Wall int64
	// Kind discriminates the event.
	Kind Kind
	// Flow identifies the connection (transport events) or station index
	// (MAC events).
	Flow uint32
	// Trigger is the kind-specific cause discriminator.
	Trigger uint8
	// Seq is a byte-space sequence field.
	Seq uint64
	// PktSeq is a packet-number-space field.
	PktSeq uint64
	// Len is a byte (or block) count.
	Len int64
	// Aux is a kind-specific auxiliary integer (often nanoseconds).
	Aux uint64
	// Value is a kind-specific float (often a rate in bit/s).
	Value float64
}

// Tracer records Events. All methods are safe on a nil *Tracer (no-ops),
// which is the un-instrumented default throughout the stack. A Tracer is
// safe for concurrent use (the UDP runner's reader goroutine and metrics
// snapshots may race protocol callbacks).
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	retain  bool // append to events (in-memory tracers only)
	wallNow func() int64

	// Streaming sink (optional): events are encoded and written as they
	// are recorded instead of being retained in memory. After the first
	// write error the sink is considered dead: later events are counted
	// as dropped without being encoded.
	w       io.Writer
	scratch []byte
	werr    error
	dropped int64
	dropCtr *Counter

	// Flight-recorder sink (optional): events are copied into ring, then
	// forwarded to fwd (which may be nil).
	ring *Ring
	fwd  *Tracer
}

// New returns an in-memory tracer. Recorded events are retained and
// available via Events / WriteJSONL. The wall clock defaults to time.Now;
// use SetWallClock(nil) for deterministic traces.
func New() *Tracer {
	return &Tracer{retain: true, wallNow: func() int64 { return time.Now().UnixNano() }}
}

// NewStreaming returns a tracer that encodes each event to w as a JSONL
// line at record time (constant memory; suited to long runs). Call Err
// after the run to check for sink write failures; events emitted after a
// write error are dropped (see DroppedEvents / CountDrops) rather than
// encoded into the dead writer.
func NewStreaming(w io.Writer) *Tracer {
	t := New()
	t.retain = false
	t.w = w
	t.scratch = make([]byte, 0, 256)
	return t
}

// WithRing returns a tracer that records every event into ring and then
// forwards it to next (which may be nil for ring-only capture). The ring
// tracer retains nothing itself, so steady-state recording allocates
// nothing; it is how the endpoint gives each connection an always-on
// flight recorder in front of whatever tracer the application supplied.
func WithRing(ring *Ring, next *Tracer) *Tracer {
	return &Tracer{ring: ring, fwd: next,
		wallNow: func() int64 { return time.Now().UnixNano() }}
}

// SetWallClock replaces the wall-clock source; nil disables wall-clock
// stamping (events carry Wall=0), which keeps simulated traces fully
// deterministic.
func (t *Tracer) SetWallClock(now func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.wallNow = now
	t.mu.Unlock()
}

// Emit records one event, stamping the wall clock. Nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.wallNow != nil {
		e.Wall = t.wallNow()
	}
	t.ring.Put(&e)
	switch {
	case t.w != nil:
		if t.werr != nil {
			// The sink already failed: do not encode into a dead
			// writer, just account for the loss.
			t.dropped++
			t.dropCtr.Inc()
		} else {
			t.scratch = AppendEvent(t.scratch[:0], &e)
			if _, err := t.w.Write(t.scratch); err != nil {
				t.werr = err
				t.dropped++
				t.dropCtr.Inc()
			}
		}
	case t.retain:
		t.events = append(t.events, e)
	}
	fwd := t.fwd
	t.mu.Unlock()
	fwd.Emit(e)
}

// Err returns the first streaming-sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.werr
}

// DroppedEvents returns how many events were discarded because the
// streaming sink had failed (including the event whose write surfaced
// the error).
func (t *Tracer) DroppedEvents() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// CountDrops mirrors dropped-event accounting into c (conventionally
// Registry.Counter("telemetry.dropped_events")), so a dead trace sink is
// visible on the metrics plane.
func (t *Tracer) CountDrops(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropCtr = c
	t.mu.Unlock()
}

// Ring returns the flight-recorder ring this tracer records into (nil
// for plain tracers).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Events returns a copy of the recorded events (empty for streaming
// tracers).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSONL encodes the retained events to w as JSON Lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := make([]byte, 0, 256)
	for i := range t.events {
		buf = AppendEvent(buf[:0], &t.events[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// --- Typed emission helpers (the instrumentation points call these). ---

// FlowParams records the flow's acknowledgment constants (once per flow).
func (t *Tracer) FlowParams(now sim.Time, flow uint32, legacy bool, beta, l, payload, settleFraction int) {
	if t == nil {
		return
	}
	var mode uint8
	if legacy {
		mode = 1
	}
	t.Emit(Event{Sim: now, Kind: KindFlowParams, Flow: flow, Trigger: mode,
		Seq: uint64(beta), PktSeq: uint64(l), Len: int64(payload), Aux: uint64(settleFraction)})
}

// DataSent records a DATA (re)transmission.
func (t *Tracer) DataSent(now sim.Time, flow uint32, seq, pktSeq uint64, n int, retrans bool, oldest uint64) {
	if t == nil {
		return
	}
	var trig uint8
	if retrans {
		trig = TrigRetrans
	}
	t.Emit(Event{Sim: now, Kind: KindDataSent, Flow: flow, Trigger: trig,
		Seq: seq, PktSeq: pktSeq, Len: int64(n), Aux: oldest})
}

// AckSent records a receiver acknowledgment emission.
func (t *Tracer) AckSent(now sim.Time, flow uint32, trigger uint8, cumAck, largestPkt uint64, unackedBlocks int, rttMin sim.Time, deliveryBps float64) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindAckSent, Flow: flow, Trigger: trigger,
		Seq: cumAck, PktSeq: largestPkt, Len: int64(unackedBlocks),
		Aux: uint64(rttMin), Value: deliveryBps})
}

// AckReceived records sender-side acknowledgment processing.
func (t *Tracer) AckReceived(now sim.Time, flow uint32, trigger uint8, cumAck, largestPkt uint64, ackedBytes int64, rtt sim.Time, deliveryBps float64) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindAckReceived, Flow: flow, Trigger: trigger,
		Seq: cumAck, PktSeq: largestPkt, Len: ackedBytes,
		Aux: uint64(rtt), Value: deliveryBps})
}

// LossDeclared records one settled loss range with its detection latency.
func (t *Tracer) LossDeclared(now sim.Time, flow uint32, lo, hi uint64, latency sim.Time) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindLossDeclared, Flow: flow,
		PktSeq: lo, Aux: hi, Len: int64(hi - lo), Value: latency.Seconds()})
}

// LossMarked records the sender marking one segment lost, attributed to a
// detector (TrigDetRACK / TrigDetDupThresh / TrigDetRTO). reoWnd is the
// RACK reorder window applied (0 for other detectors); latency is mark time
// minus the segment's last transmission.
func (t *Tracer) LossMarked(now sim.Time, flow uint32, detector uint8, seq, pktSeq uint64, n int, reoWnd, latency sim.Time) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindLossMarked, Flow: flow, Trigger: detector,
		Seq: seq, PktSeq: pktSeq, Len: int64(n), Aux: uint64(reoWnd), Value: latency.Seconds()})
}

// TLPProbe records a tail loss probe transmission: the highest-sequence
// unacked segment re-sent as pktSeq after probe timeout pto elapsed with no
// acknowledgment.
func (t *Tracer) TLPProbe(now sim.Time, flow uint32, seq, pktSeq uint64, n int, pto sim.Time) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindTLPProbe, Flow: flow,
		Seq: seq, PktSeq: pktSeq, Len: int64(n), Aux: uint64(pto)})
}

// LossEpisode records the sender entering a loss episode.
func (t *Tracer) LossEpisode(now sim.Time, flow uint32, lostBytes, inflight int, timeout bool) {
	if t == nil {
		return
	}
	var trig uint8
	if timeout {
		trig = 1
	}
	t.Emit(Event{Sim: now, Kind: KindLossEpisode, Flow: flow, Trigger: trig,
		Len: int64(lostBytes), Aux: uint64(inflight)})
}

// RTOFired records a retransmission timeout.
func (t *Tracer) RTOFired(now sim.Time, flow uint32, inflight, backoff int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindRTOFired, Flow: flow,
		Len: int64(inflight), Aux: uint64(backoff)})
}

// CCUpdate records a congestion-controller output change.
func (t *Tracer) CCUpdate(now sim.Time, flow uint32, cwnd int, pacingBps float64, onLoss bool) {
	if t == nil {
		return
	}
	var trig uint8
	if onLoss {
		trig = 1
	}
	t.Emit(Event{Sim: now, Kind: KindCCUpdate, Flow: flow, Trigger: trig,
		Len: int64(cwnd), Value: pacingBps})
}

// RTTSync records a sender→receiver state sync.
func (t *Tracer) RTTSync(now sim.Time, flow uint32, trigger uint8, oldestPkt uint64, rttMin sim.Time, ackLossRate float64) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindRTTSync, Flow: flow, Trigger: trigger,
		PktSeq: oldestPkt, Aux: uint64(rttMin), Value: ackLossRate})
}

// RateSample records a closed delivery-rate measurement interval.
func (t *Tracer) RateSample(now sim.Time, flow uint32, intervalBytes int64, interval sim.Time, bps float64) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindRateSample, Flow: flow,
		Len: intervalBytes, Aux: uint64(interval), Value: bps})
}

// MACTx records a successful medium acquisition.
func (t *Tracer) MACTx(now sim.Time, station uint32, frames, bytes int, airtime sim.Time, slots int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindMACTx, Flow: station,
		PktSeq: uint64(frames), Len: int64(bytes), Aux: uint64(airtime), Value: float64(slots)})
}

// MACCollision records a collision involving stations colliders.
func (t *Tracer) MACCollision(now sim.Time, station uint32, colliders int, waste sim.Time, slots int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindMACCollision, Flow: station,
		PktSeq: uint64(colliders), Aux: uint64(waste), Value: float64(slots)})
}

// MACDrop records a dropped frame.
func (t *Tracer) MACDrop(now sim.Time, station uint32, cause uint8, bytes int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindMACDrop, Flow: station, Trigger: cause,
		Len: int64(bytes)})
}

// MigrationRejected records the demux rejecting a packet that arrived for
// an established connection from the wrong source address.
func (t *Tracer) MigrationRejected(now sim.Time, flow uint32, pktSeq uint64, bytes int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindMigrationRejected, Flow: flow,
		PktSeq: pktSeq, Len: int64(bytes)})
}

// PathChallenge records a PATH_CHALLENGE (re)transmission to an
// unvalidated candidate address: attempt is the challenge ordinal within
// the probing episode (0 for the first send).
func (t *Tracer) PathChallenge(now sim.Time, flow uint32, attempt, bytes int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindPathChallenge, Flow: flow,
		Seq: uint64(attempt), Len: int64(bytes)})
}

// PathResponse records a PATH_RESPONSE with the correct token arriving
// from the challenged address.
func (t *Tracer) PathResponse(now sim.Time, flow uint32, bytes int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindPathResponse, Flow: flow, Len: int64(bytes)})
}

// MigrationCompleted records a validated path migration: challenges is how
// many PATH_CHALLENGEs the probing episode sent, elapsed how long
// validation took from the first foreign packet.
func (t *Tracer) MigrationCompleted(now sim.Time, flow uint32, challenges int, elapsed sim.Time) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindMigrationCompleted, Flow: flow,
		Seq: uint64(challenges), Aux: uint64(elapsed)})
}

// StreamOpened records a stream coming into existence (remote=true when a
// peer frame created it).
func (t *Tracer) StreamOpened(now sim.Time, flow uint32, streamID uint32, remote bool) {
	if t == nil {
		return
	}
	var trig uint8
	if remote {
		trig = 1
	}
	t.Emit(Event{Sim: now, Kind: KindStreamOpened, Flow: flow, Trigger: trig,
		Seq: uint64(streamID)})
}

// StreamClosed records a stream completing cleanly with its total byte
// count.
func (t *Tracer) StreamClosed(now sim.Time, flow uint32, streamID uint32, bytes uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindStreamClosed, Flow: flow,
		Seq: uint64(streamID), Len: int64(bytes)})
}

// StreamWindow records a per-stream flow-control advertisement (urgent=true
// when it rode a window-update IACK).
func (t *Tracer) StreamWindow(now sim.Time, flow uint32, streamID uint32, limit uint64, urgent bool) {
	if t == nil {
		return
	}
	trig := TrigNone
	if urgent {
		trig = TrigWindow
	}
	t.Emit(Event{Sim: now, Kind: KindStreamWindow, Flow: flow, Trigger: trig,
		Seq: uint64(streamID), Aux: limit})
}

// FECRepairSent records a repair symbol transmission for group with the
// given index and payload size; k is the group's data-symbol count and
// ratio the redundancy ratio in force.
func (t *Tracer) FECRepairSent(now sim.Time, flow uint32, group uint32, idx, bytes, k int, ratio float64) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindFECRepairSent, Flow: flow,
		Seq: uint64(group), PktSeq: uint64(idx), Len: int64(bytes), Aux: uint64(k), Value: ratio})
}

// FECRecovered records the receiver reconstructing packet pktSeq of the
// given group from repair symbols, carrying bytes payload bytes of stream
// streamID.
func (t *Tracer) FECRecovered(now sim.Time, flow uint32, group uint32, pktSeq uint64, bytes int, streamID uint32) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindFECRecovered, Flow: flow,
		Seq: uint64(group), PktSeq: pktSeq, Len: int64(bytes), Aux: uint64(streamID)})
}

// FECRepairWasted records a repair arriving for a group that needed no
// repair (fully received or duplicate).
func (t *Tracer) FECRepairWasted(now sim.Time, flow uint32, group uint32, bytes int) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindFECRepairWasted, Flow: flow,
		Seq: uint64(group), Len: int64(bytes)})
}

// Anomaly records an endpoint anomaly detector firing: class is one of
// the anomaly triggers (TrigStall, TrigRetxStorm, TrigWndExhaust,
// TrigMigStorm), inflight the bytes in flight at detection, and detail
// the class-specific magnitude (see KindAnomaly).
func (t *Tracer) Anomaly(now sim.Time, flow uint32, class uint8, inflight int, detail uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Sim: now, Kind: KindAnomaly, Flow: flow, Trigger: class,
		Len: int64(inflight), Aux: detail})
}
