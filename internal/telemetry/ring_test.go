package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func ringEvent(i int) Event {
	return Event{Sim: sim.Time(i), Kind: KindDataSent, Flow: 7, Seq: uint64(i)}
}

func TestRingWraparoundOrdering(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		e := ringEvent(i)
		r.Put(&e)
	}
	if got := r.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	events := r.Snapshot(nil)
	if len(events) != 8 {
		t.Fatalf("Snapshot returned %d events, want 8", len(events))
	}
	// Oldest surviving event is #12, newest #19, strictly in order.
	for i, e := range events {
		if want := uint64(12 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		e := ringEvent(i)
		r.Put(&e)
	}
	events := r.Snapshot(nil)
	if len(events) != 5 {
		t.Fatalf("Snapshot returned %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, i)
		}
	}
	// Snapshot appends into a reused buffer without reallocating.
	big := make([]Event, 0, 16)
	out := r.Snapshot(big)
	if len(out) != 5 || cap(out) != 16 {
		t.Fatalf("Snapshot(dst) returned len=%d cap=%d, want len=5 cap=16", len(out), cap(out))
	}
}

func TestRingDefaultsAndNilSafety(t *testing.T) {
	if n := NewRing(0).Cap(); n != DefaultRingSize {
		t.Fatalf("NewRing(0) cap = %d, want %d", n, DefaultRingSize)
	}
	var r *Ring
	e := ringEvent(1)
	r.Put(&e) // must not panic
	if r.Total() != 0 || r.Len() != 0 || r.Snapshot(nil) != nil {
		t.Fatal("nil ring should report empty")
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		e := ringEvent(i)
		r.Put(&e)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 || events[0].Seq != 2 || events[3].Seq != 5 {
		t.Fatalf("decoded %d events, first=%d last=%d; want 4 events 2..5",
			len(events), events[0].Seq, events[len(events)-1].Seq)
	}
}

// TestRingConcurrentEmitAndSnapshot drives WithRing emitters against
// concurrent Snapshot calls under -race: the dump path must be safe
// while the datapath keeps recording.
func TestRingConcurrentEmitAndSnapshot(t *testing.T) {
	r := NewRing(32)
	tr := WithRing(r, nil)
	const workers, emits = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < emits; i++ {
				tr.DataSent(sim.Time(i), uint32(w), uint64(i), uint64(i), 1200, false, 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; ; i++ {
		events := r.Snapshot(nil)
		for j := range events {
			if len(events) > 0 && events[j].Kind != KindDataSent {
				t.Errorf("snapshot %d: torn event kind %d", i, events[j].Kind)
			}
		}
		select {
		case <-done:
			if got := r.Total(); got != workers*emits {
				t.Fatalf("Total = %d, want %d", got, workers*emits)
			}
			return
		default:
		}
	}
}

// failAfterWriter errors every write after the first n.
type failAfterWriter struct {
	n      int
	writes int
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sink broke" }

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errSentinel{}
	}
	return len(p), nil
}

// TestStreamingTracerShortCircuitsAfterWriteError pins the streaming
// failure contract: the first write error latches, later events are
// dropped (counted, not re-attempted against the dead writer), and Err
// reports the original error.
func TestStreamingTracerShortCircuitsAfterWriteError(t *testing.T) {
	w := &failAfterWriter{n: 2}
	tr := NewStreaming(w)
	reg := NewRegistry()
	tr.CountDrops(reg.Counter("telemetry.dropped_events"))

	for i := 0; i < 10; i++ {
		tr.DataSent(sim.Time(i), 1, uint64(i), uint64(i), 1200, false, 0)
	}
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "sink broke") {
		t.Fatalf("Err = %v, want latched sink error", err)
	}
	// Writes 1..2 succeeded, write 3 errored, 4..10 must never reach the
	// writer again.
	if w.writes != 3 {
		t.Fatalf("writer saw %d writes, want 3 (short-circuit after first error)", w.writes)
	}
	// The errored event plus the 7 short-circuited ones are dropped.
	if got := tr.DroppedEvents(); got != 8 {
		t.Fatalf("DroppedEvents = %d, want 8", got)
	}
	if got := reg.Counter("telemetry.dropped_events").Value(); got != 8 {
		t.Fatalf("dropped_events counter = %d, want 8", got)
	}
}

// TestWithRingForwards checks the ring tracer tees into both the ring
// and the forward tracer.
func TestWithRingForwards(t *testing.T) {
	fwd := New()
	fwd.SetWallClock(nil)
	r := NewRing(4)
	tr := WithRing(r, fwd)
	tr.DataSent(1, 9, 100, 1, 1200, false, 0)
	if r.Total() != 1 {
		t.Fatalf("ring saw %d events, want 1", r.Total())
	}
	if got := len(fwd.Events()); got != 1 {
		t.Fatalf("forward tracer saw %d events, want 1", got)
	}
	if fwd.Events()[0].Flow != 9 {
		t.Fatalf("forwarded flow = %d, want 9", fwd.Events()[0].Flow)
	}
}
