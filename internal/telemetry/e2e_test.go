// End-to-end trace tests: run real flows over simulated paths with a
// streaming tracer attached, decode the JSONL back, and check the analyzer
// reproduces the paper's Eq. 3 target f_tack = min(bw/(L·MSS), β/RTTmin)
// from the trace alone — in both regimes.
package telemetry_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

// traceFlow runs one TACK flow for dur with a streaming tracer attached and
// returns the analyzed trace summary.
func traceFlow(t *testing.T, dur sim.Time, build func(loop *sim.Loop, tr *telemetry.Tracer) (*topo.Path, transport.Config)) *telemetry.TraceSummary {
	t.Helper()
	var buf bytes.Buffer
	tr := telemetry.NewStreaming(&buf)
	tr.SetWallClock(nil) // deterministic traces: sim time only

	loop := sim.NewLoop(1)
	path, cfg := build(loop, tr)
	cfg.Tracer = tr
	cfg.Metrics = telemetry.NewRegistry()
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	flow.Start()
	loop.RunUntil(dur)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := telemetry.DecodeJSONL(&buf)
	if err != nil {
		t.Fatalf("decoding written trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	return telemetry.Analyze(events)
}

// checkRegime asserts the single flow in the summary landed in the wanted
// Eq. 3 regime with achieved ACK frequency within 10% of the target.
func checkRegime(t *testing.T, s *telemetry.TraceSummary, regime string) *telemetry.FlowSummary {
	t.Helper()
	if len(s.Flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(s.Flows))
	}
	f := s.Flows[0]
	if !strings.Contains(f.Regime, regime) {
		t.Errorf("regime = %q, want %q binding (achieved %.1f/s, periodic %.1f/s, byte %.1f/s)",
			f.Regime, regime, f.AchievedAckHz, f.TargetPeriodicHz, f.TargetByteHz)
	}
	e := f.AckFrequencyError()
	if e < 0 {
		t.Fatalf("no ack-frequency estimate (tacks=%d, target=%.1f/s)", f.TACKs, f.TargetAckHz)
	}
	if e >= 0.10 {
		t.Errorf("ack frequency off target: achieved %.1f/s vs Eq.3 %.1f/s (err %.1f%%, want <10%%)",
			f.AchievedAckHz, f.TargetAckHz, e*100)
	}
	return f
}

// TestAckFrequencyPeriodicRegime runs a high-rate WLAN flow where RTTmin is
// small, so β/RTTmin < bw/(L·MSS): the periodic bound binds and the receiver
// should ack ~β times per RTTmin (clamped by the α ≥ 1 ms floor).
func TestAckFrequencyPeriodicRegime(t *testing.T) {
	s := traceFlow(t, 3*sim.Second, func(loop *sim.Loop, tr *telemetry.Tracer) (*topo.Path, transport.Config) {
		path, _ := topo.WLANPath(loop, topo.WLANConfig{Standard: phy.Std80211n, Tracer: tr})
		return path, transport.Config{Mode: transport.ModeTACK}
	})
	f := checkRegime(t, s, "periodic")
	if s.MAC == nil || s.MAC.FramesTx == 0 {
		t.Error("WLAN trace carries no MAC telemetry")
	}
	if f.TACKs < 100 || f.DataPackets < 1000 {
		t.Errorf("implausibly idle flow: %d tacks, %d data packets", f.TACKs, f.DataPackets)
	}
}

// TestAckFrequencyBytecountRegime runs a low-rate WAN flow (5 Mbit/s,
// 20 ms RTT) where bw/(L·MSS) < β/RTTmin: the byte-count bound binds and
// the receiver should ack about every L·MSS delivered bytes.
func TestAckFrequencyBytecountRegime(t *testing.T) {
	s := traceFlow(t, 8*sim.Second, func(loop *sim.Loop, tr *telemetry.Tracer) (*topo.Path, transport.Config) {
		path, _, _ := topo.WANPath(loop, topo.WANConfig{
			RateBps:    5e6,
			OWD:        10 * sim.Millisecond,
			QueueBytes: 256 << 10,
		})
		return path, transport.Config{Mode: transport.ModeTACK}
	})
	f := checkRegime(t, s, "bytecount")
	// Sanity: the periodic bound really was looser than the byte bound.
	if f.TargetByteHz >= f.TargetPeriodicHz {
		t.Errorf("regime setup wrong: byte bound %.1f/s not below periodic %.1f/s",
			f.TargetByteHz, f.TargetPeriodicHz)
	}
}

// TestTraceSummaryReport checks the human report contains the headline
// sections cmd/tacktrace prints.
func TestTraceSummaryReport(t *testing.T) {
	s := traceFlow(t, sim.Second, func(loop *sim.Loop, tr *telemetry.Tracer) (*topo.Path, transport.Config) {
		path, _ := topo.WLANPath(loop, topo.WLANConfig{Tracer: tr})
		return path, transport.Config{Mode: transport.ModeTACK}
	})
	out := s.String()
	for _, want := range []string{"ack frequency", "Eq.3 target", "mac:", "flow 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
