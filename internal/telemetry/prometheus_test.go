package telemetry

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expositionLine matches one valid Prometheus text-format line: a HELP/
// TYPE comment or a sample with an optional single le label.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9.eE+-]+(e[+-][0-9]+)?)$`)

func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("ep.rx_packets").Add(42)
	reg.Counter("snd.data_packets").Add(7)
	reg.Gauge("ep.conns").Set(3.5)
	h := reg.Histogram("snd.rtt_s")
	for _, v := range []float64{0.001, 0.002, 0.004, 0.05, 1.5} {
		h.Observe(v)
	}
	return reg
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := buildTestRegistry()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE tack_ep_rx_packets counter\ntack_ep_rx_packets 42\n",
		"# TYPE tack_ep_conns gauge\ntack_ep_conns 3.5\n",
		"# TYPE tack_snd_rtt_s histogram\n",
		`tack_snd_rtt_s_bucket{le="+Inf"} 5`,
		"tack_snd_rtt_s_count 5",
		"tack_snd_rtt_s_p95 ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x")
	h.Observe(0.001) // le="0.001" bucket (bounds include 1e-3)
	h.Observe(0.5)
	h.Observe(2)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	// Bucket counts must be cumulative and monotonically non-decreasing.
	re := regexp.MustCompile(`tack_x_bucket\{le="([^"]+)"\} (\d+)`)
	last := int64(-1)
	matches := re.FindAllStringSubmatch(buf.String(), -1)
	if len(matches) < 2 {
		t.Fatalf("no bucket lines in output:\n%s", buf.String())
	}
	for _, m := range matches {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < last {
			t.Fatalf("bucket le=%s count %d < previous %d (not cumulative)", m[1], n, last)
		}
		last = n
	}
	if last != 3 {
		t.Fatalf("final bucket count = %d, want 3", last)
	}
}

func TestWritePrometheusNilSafe(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"ep.rx_packets":             "tack_ep_rx_packets",
		"ep.anomaly.stall":          "tack_ep_anomaly_stall",
		"weird-name@2":              "tack_weird_name_2",
		"ep.batch.read_size":        "tack_ep_batch_read_size",
		"telemetry.dropped_events":  "tack_telemetry_dropped_events",
		"already_clean:with_colons": "tack_already_clean:with_colons",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestVisitDeterministic locks the satellite contract: Visit (and the
// Each iterator under it) walk instruments in a stable order — grouped
// counters, gauges, histograms, each sorted by name — regardless of
// creation order.
func TestVisitDeterministic(t *testing.T) {
	build := func(order []string) []string {
		reg := NewRegistry()
		for _, n := range order {
			switch n[0] {
			case 'c':
				reg.Counter(n).Inc()
			case 'g':
				reg.Gauge(n).Set(1)
			default:
				reg.Histogram(n).Observe(1)
			}
		}
		var names []string
		reg.Visit(func(name string, kind MetricKind, value float64) {
			names = append(names, name)
		})
		return names
	}
	a := build([]string{"c.b", "g.x", "h.z", "c.a", "g.y"})
	b := build([]string{"g.y", "c.a", "c.b", "h.z", "g.x"})
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("visit order depends on creation order: %v vs %v", a, b)
	}
	want := []string{"c.a", "c.b", "g.x", "g.y", "h.z"}
	if strings.Join(a, ",") != strings.Join(want, ",") {
		t.Fatalf("visit order = %v, want %v", a, want)
	}
}

// TestVisitValues checks the scalar projection each kind exports.
func TestVisitValues(t *testing.T) {
	reg := buildTestRegistry()
	got := map[string]float64{}
	reg.Visit(func(name string, kind MetricKind, value float64) { got[name] = value })
	if got["ep.rx_packets"] != 42 {
		t.Errorf("counter value = %v, want 42", got["ep.rx_packets"])
	}
	if got["ep.conns"] != 3.5 {
		t.Errorf("gauge value = %v, want 3.5", got["ep.conns"])
	}
	if got["snd.rtt_s"] != 5 {
		t.Errorf("histogram value (count) = %v, want 5", got["snd.rtt_s"])
	}
}

// TestSnapshotDeterministic pins Snapshot to the same stable ordering.
func TestSnapshotDeterministic(t *testing.T) {
	reg := buildTestRegistry()
	a, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
}
