package trace

import (
	"strings"
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func TestSamplerCollectsOnCadence(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewSampler(loop, 10*sim.Millisecond)
	n := 0.0
	sr := s.Add("count", "", func() (float64, bool) { n++; return n, true })
	s.Start()
	loop.RunUntil(55 * sim.Millisecond)
	// Samples at 0,10,...,50 ms = 6 instants.
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	vals := sr.Values()
	if len(vals) != 6 || vals[0] != 1 || vals[5] != 6 {
		t.Fatalf("values = %v", vals)
	}
	if last, ok := sr.Last(); !ok || last != 6 {
		t.Fatalf("Last = %v,%v", last, ok)
	}
}

func TestSamplerGaps(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewSampler(loop, 10*sim.Millisecond)
	i := 0
	sr := s.Add("gappy", "ms", func() (float64, bool) {
		i++
		return float64(i), i%2 == 0 // odd samples are gaps
	})
	s.Start()
	loop.RunUntil(45 * sim.Millisecond)
	if got := len(sr.Values()); got != 2 {
		t.Fatalf("valid values = %d, want 2", got)
	}
	out := s.Table(1)
	if !strings.Contains(out, "-") {
		t.Fatalf("gaps not rendered:\n%s", out)
	}
	if !strings.Contains(out, "gappy (ms)") {
		t.Fatalf("unit label missing:\n%s", out)
	}
}

func TestSamplerStartIdempotent(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewSampler(loop, 10*sim.Millisecond)
	s.Add("x", "", func() (float64, bool) { return 1, true })
	s.Start()
	s.Start() // must not double the cadence
	loop.RunUntil(35 * sim.Millisecond)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (single cadence)", s.Len())
	}
}

func TestSamplerMinimumInterval(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewSampler(loop, 0)
	s.Add("x", "", func() (float64, bool) { return 1, true })
	s.Start()
	loop.RunUntil(5 * sim.Millisecond)
	if s.Len() > 6 {
		t.Fatalf("interval floor not applied: %d samples in 5ms", s.Len())
	}
}

func TestTableStep(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewSampler(loop, 10*sim.Millisecond)
	s.Add("x", "", func() (float64, bool) { return 3.5, true })
	s.Start()
	loop.RunUntil(95 * sim.Millisecond)
	all := strings.Count(s.Table(1), "\n")
	every5 := strings.Count(s.Table(5), "\n")
	if all <= every5 {
		t.Fatalf("step did not reduce rows: %d vs %d", all, every5)
	}
	if !strings.Contains(s.Table(0), "3.5") {
		t.Fatal("step<1 should behave as 1 and include values")
	}
}

func TestSeriesLastEmpty(t *testing.T) {
	sr := &Series{Name: "e"}
	if _, ok := sr.Last(); ok {
		t.Fatal("empty series Last should be !ok")
	}
}
