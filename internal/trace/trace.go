// Package trace provides time-series instrumentation for simulated flows:
// a Sampler polls arbitrary probes on a fixed virtual-time cadence and
// renders aligned series, the tooling behind time-course outputs like the
// paper's Figure 6(a) RTTmin tracking plot.
package trace

import (
	"fmt"
	"strings"

	"github.com/tacktp/tack/internal/sim"
)

// Probe returns one metric observation; ok=false records a gap (rendered
// blank) rather than a zero.
type Probe func() (value float64, ok bool)

// Series is one sampled metric.
type Series struct {
	Name   string
	Unit   string
	probe  Probe
	points []point
}

type point struct {
	at  sim.Time
	val float64
	ok  bool
}

// Values returns the sampled values (gaps omitted).
func (s *Series) Values() []float64 {
	out := make([]float64, 0, len(s.points))
	for _, p := range s.points {
		if p.ok {
			out = append(out, p.val)
		}
	}
	return out
}

// Last returns the most recent valid observation.
func (s *Series) Last() (float64, bool) {
	for i := len(s.points) - 1; i >= 0; i-- {
		if s.points[i].ok {
			return s.points[i].val, true
		}
	}
	return 0, false
}

// Sampler polls registered probes every interval of virtual time.
type Sampler struct {
	loop     *sim.Loop
	interval sim.Time
	series   []*Series
	times    []sim.Time
	running  bool
}

// NewSampler returns a sampler on loop with the given cadence (minimum
// 1 ms to bound event volume).
func NewSampler(loop *sim.Loop, interval sim.Time) *Sampler {
	if interval < sim.Millisecond {
		interval = sim.Millisecond
	}
	return &Sampler{loop: loop, interval: interval}
}

// Add registers a named probe and returns its series.
func (s *Sampler) Add(name, unit string, probe Probe) *Series {
	sr := &Series{Name: name, Unit: unit, probe: probe}
	s.series = append(s.series, sr)
	return sr
}

// Start begins sampling (idempotent).
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	var tick func()
	tick = func() {
		s.times = append(s.times, s.loop.Now())
		for _, sr := range s.series {
			v, ok := sr.probe()
			sr.points = append(sr.points, point{at: s.loop.Now(), val: v, ok: ok})
		}
		s.loop.After(s.interval, tick)
	}
	s.loop.After(0, tick)
}

// Len returns the number of sampling instants so far.
func (s *Sampler) Len() int { return len(s.times) }

// Table renders the collected series as an aligned text table, emitting
// every step-th sample (step <= 1 emits all).
func (s *Sampler) Table(step int) string {
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "t")
	for _, sr := range s.series {
		label := sr.Name
		if sr.Unit != "" {
			label += " (" + sr.Unit + ")"
		}
		fmt.Fprintf(&b, "  %-16s", label)
	}
	b.WriteByte('\n')
	for i := 0; i < len(s.times); i += step {
		fmt.Fprintf(&b, "%-12s", s.times[i].String())
		for _, sr := range s.series {
			if i < len(sr.points) && sr.points[i].ok {
				fmt.Fprintf(&b, "  %-16.4g", sr.points[i].val)
			} else {
				fmt.Fprintf(&b, "  %-16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
