package holbench

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
)

// TestHoLBlockingWin is the PR's acceptance benchmark: under 2% loss with
// 8 concurrent streams over the in-sim 802.11n hybrid path, p95 per-object
// completion must improve by at least 30% versus serializing the same
// objects on one stream. The transport below the stream layer is identical
// in both arms; the gap is the head-of-line-blocking cost of funneling
// independent objects through one ordered, flow-controlled stream.
func TestHoLBlockingWin(t *testing.T) {
	base := Config{Objects: 8, ObjectBytes: 256 << 10, Loss: 0.02, Seed: 1}

	serial := base
	serial.Serialize = true
	sres, err := Run(serial)
	if err != nil {
		t.Fatalf("serialized arm: %v", err)
	}
	mres, err := Run(base)
	if err != nil {
		t.Fatalf("multiplexed arm: %v", err)
	}

	if sres.Retransmits == 0 || mres.Retransmits == 0 {
		t.Fatalf("loss never hit the transport (serial retx %d, mux retx %d)",
			sres.Retransmits, mres.Retransmits)
	}
	t.Logf("serialized: p50=%v p95=%v max=%v goodput=%.1f Mbit/s retx=%d",
		sres.P50, sres.P95, sres.Max, sres.GoodputBps/1e6, sres.Retransmits)
	t.Logf("multiplexed: p50=%v p95=%v max=%v goodput=%.1f Mbit/s retx=%d fairness=%.3f",
		mres.P50, mres.P95, mres.Max, mres.GoodputBps/1e6, mres.Retransmits, mres.Fairness)

	improvement := 1 - mres.P95.Seconds()/sres.P95.Seconds()
	t.Logf("p95 improvement: %.1f%%", improvement*100)
	if improvement < 0.30 {
		t.Errorf("p95 per-object completion improved only %.1f%%, want >= 30%% (serial %v, mux %v)",
			improvement*100, sres.P95, mres.P95)
	}
}

// TestSchedulerProfiles checks the observable scheduling contract on the
// same workload: round-robin progresses objects evenly (Jain's index near
// 1), while strict priority serves objects one at a time (index near 1/N
// when the first object completes).
func TestSchedulerProfiles(t *testing.T) {
	base := Config{Objects: 8, ObjectBytes: 128 << 10, Loss: -1, Seed: 3}

	rr := base
	rr.Scheduler = stream.SchedulerRoundRobin
	rres, err := Run(rr)
	if err != nil {
		t.Fatalf("rr: %v", err)
	}
	if rres.Fairness < 0.9 {
		t.Errorf("round-robin fairness %.3f, want >= 0.9", rres.Fairness)
	}

	prio := base
	prio.Scheduler = stream.SchedulerPriority
	pres, err := Run(prio)
	if err != nil {
		t.Fatalf("priority: %v", err)
	}
	if pres.Fairness > 0.5 {
		t.Errorf("strict-priority fairness %.3f, want <= 0.5 (one object at a time)", pres.Fairness)
	}
	// Priority must also get its preferred object out far sooner than
	// round-robin finishes its first.
	if pres.Completions[len(pres.Completions)-1] == 0 {
		t.Fatal("priority arm recorded no completions")
	}
	t.Logf("rr: fairness=%.3f p50=%v; priority: fairness=%.3f first-obj spread %v..%v",
		rres.Fairness, rres.P50, pres.Fairness, pres.P50, pres.Max)
}

// TestLosslessParity sanity-checks the harness itself: with no loss and a
// stream window too large to bind (so neither flow control nor recovery
// differs between arms), both arms move the same bytes in similar total
// time — any remaining gap would be hidden harness bias.
func TestLosslessParity(t *testing.T) {
	base := Config{Objects: 4, ObjectBytes: 128 << 10, Loss: -1, Seed: 2,
		StreamWindow: 4 << 20}
	serial := base
	serial.Serialize = true
	sres, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Retransmits != 0 || mres.Retransmits != 0 {
		t.Fatalf("lossless run retransmitted (serial %d, mux %d)", sres.Retransmits, mres.Retransmits)
	}
	ratio := mres.Max.Seconds() / sres.Max.Seconds()
	if ratio > 1.5 || ratio < 1/1.5 {
		t.Errorf("lossless total completion diverges: serial %v vs mux %v (ratio %.2f)",
			sres.Max, mres.Max, ratio)
	}
	_ = sim.Time(0)
}
