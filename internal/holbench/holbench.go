// Package holbench measures the head-of-line-blocking cost of serialized
// delivery versus stream multiplexing over a lossy TACK connection.
//
// The workload fetches N equally sized objects over the paper's hybrid
// path (client ↔ AP on an in-sim 802.11n medium, AP ↔ server over an
// emulated WAN with random data-direction loss). The multiplexed arm
// carries one object per stream; the baseline serializes the same
// objects back-to-back on a single stream. Everything below the stream
// layer — congestion control, acknowledgment policy, loss recovery — is
// identical, so any difference in per-object completion comes from the
// stream layer itself: with one ordered stream, a retransmission hole
// parks every later object's bytes in the reassembly buffer (they cannot
// be delivered, so the single flow-control window cannot be replenished
// and the whole pipeline stalls); with per-object streams only the hole's
// own stream stalls while its siblings keep delivering and crediting
// their windows.
package holbench

import (
	"fmt"
	"sort"

	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

// Config parameterizes one run. The zero value of any field selects the
// default noted on it.
type Config struct {
	// Objects is the number of equally sized objects to fetch (default 8).
	Objects int
	// ObjectBytes is the size of each object (default 256 KiB).
	ObjectBytes int
	// Serialize carries all objects back-to-back on a single stream (the
	// head-of-line-blocking baseline) instead of one stream per object.
	Serialize bool
	// Scheduler selects the stream scheduler for the multiplexed arm
	// (default round-robin).
	Scheduler string
	// StreamWindow is the per-stream receive window (default 64 KiB).
	StreamWindow int
	// Loss is the WAN data-direction random loss rate (default 0.02).
	// Negative selects a lossless run.
	Loss float64
	// BurstLoss layers Gilbert–Elliott burst loss on the WAN data
	// direction (zero disables). Bursts clustered on short objects strand
	// stream tails, so the recovery path — tail loss probe versus full
	// RTO — dominates the high completion percentiles.
	BurstLoss netem.GilbertElliott
	// Detector selects the sender's loss detector (default RACK; set
	// transport.DetectorDupThresh for the A/B baseline).
	Detector transport.LossDetector
	// RateBps is the WAN bottleneck rate (default 100 Mbit/s).
	RateBps float64
	// OWD is the WAN one-way propagation delay (default 10 ms).
	OWD sim.Time
	// Seed seeds the simulation (default 1).
	Seed int64
	// MaxSimTime caps the run (default 60 s simulated).
	MaxSimTime sim.Time
	// Metrics optionally collects transport and stream counters.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Objects == 0 {
		c.Objects = 8
	}
	if c.ObjectBytes == 0 {
		c.ObjectBytes = 256 << 10
	}
	if c.Scheduler == "" {
		c.Scheduler = stream.SchedulerRoundRobin
	}
	if c.StreamWindow == 0 {
		c.StreamWindow = 64 << 10
	}
	if c.Loss == 0 {
		c.Loss = 0.02
	} else if c.Loss < 0 {
		c.Loss = 0
	}
	if c.RateBps == 0 {
		c.RateBps = 100e6
	}
	if c.OWD == 0 {
		c.OWD = 10 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 60 * sim.Second
	}
	return c
}

// Result reports one run's per-object completion profile.
type Result struct {
	// Completions holds each object's completion time (from flow start),
	// indexed by object. An object completes when the application has
	// read its final byte.
	Completions []sim.Time
	// P50, P95, P99 and Max are nearest-rank percentiles over Completions.
	P50, P95, P99, Max sim.Time
	// GoodputBps is total object bytes over the last completion.
	GoodputBps float64
	// Fairness is Jain's index over per-object delivered bytes sampled
	// when the first object completes (1.0 = perfectly even progress;
	// 1/N = fully serialized).
	Fairness float64
	// Retransmits counts transport-level retransmissions (the run must
	// actually have been lossy to mean anything).
	Retransmits int
	// Timeouts, TLPProbes and RackMarked expose the sender's recovery-path
	// counters, attributing tail recoveries to the probe or the RTO.
	Timeouts, TLPProbes, RackMarked int
}

// percentile returns the nearest-rank p-th percentile of sorted d.
func percentile(d []sim.Time, p float64) sim.Time {
	if len(d) == 0 {
		return 0
	}
	idx := int(float64(len(d))*p+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d) {
		idx = len(d) - 1
	}
	return d[idx]
}

// jain computes Jain's fairness index over xs (1 for all-equal shares).
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Run executes one simulated fetch and reports the completion profile.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	loop := sim.NewLoop(cfg.Seed)

	scfg := stream.Default()
	scfg.Scheduler = cfg.Scheduler
	scfg.RecvWindow = cfg.StreamWindow
	scfg.MaxStreams = cfg.Objects + 1
	// Deep send buffer so the single-goroutine harness can queue every
	// object up front; the schedulers and flow control do the pacing.
	scfg.SendBuffer = cfg.Objects*cfg.ObjectBytes + 1<<10

	tcfg := transport.Config{
		Mode:    transport.ModeTACK,
		Streams: &scfg,
		Metrics: cfg.Metrics,
		Loss:    transport.LossDetection{Detector: cfg.Detector},
	}
	path, _, _, _ := topo.HybridPath(loop,
		topo.WLANConfig{Standard: phy.Std80211n},
		topo.WANConfig{
			RateBps: cfg.RateBps, OWD: cfg.OWD,
			QueueBytes: 256 << 10, DataLoss: cfg.Loss,
			Impair: netem.Impairments{GE: cfg.BurstLoss},
		})
	flow, err := topo.NewFlow(loop, tcfg, path)
	if err != nil {
		return Result{}, err
	}

	// Queue the workload: one stream per object, or every object
	// back-to-back on stream 0 for the serialized baseline.
	mux := flow.Sender.Streams()
	nStreams := cfg.Objects
	if cfg.Serialize {
		nStreams = 1
	}
	chunk := make([]byte, cfg.ObjectBytes)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for s := 0; s < nStreams; s++ {
		ss, err := mux.Open(stream.Options{Priority: s, Weight: 1})
		if err != nil {
			return Result{}, err
		}
		writes := 1
		if cfg.Serialize {
			writes = cfg.Objects
		}
		for w := 0; w < writes; w++ {
			if _, err := ss.Write(chunk); err != nil {
				return Result{}, fmt.Errorf("queue object: %w", err)
			}
		}
		if err := ss.Close(); err != nil {
			return Result{}, err
		}
	}

	// Receiver application: poll the stream mux every millisecond, drain
	// whatever is deliverable (crediting flow-control windows), and stamp
	// each object's completion.
	completions := make([]sim.Time, cfg.Objects)
	objBytes := make([]int64, cfg.Objects)
	var firstDone sim.Time
	var fairSample []float64
	done := 0
	scratch := make([]byte, 64<<10)
	// Streams are polled in accept order (a slice, not a map) so the
	// read/credit sequence — and therefore the whole simulation — is
	// deterministic for a given seed.
	var streams []*stream.RecvStream
	retired := make(map[uint32]bool)
	var poll *sim.Timer
	poll = sim.NewTimer(loop, func() {
		rm := flow.Receiver.Streams()
		for {
			rs := rm.TryAccept()
			if rs == nil {
				break
			}
			streams = append(streams, rs)
		}
		for _, rs := range streams {
			id := rs.ID()
			if retired[id] {
				continue
			}
			for {
				n, eof, err := rs.ReadAvailable(scratch)
				if err != nil {
					retired[id] = true
					break
				}
				if n > 0 {
					if cfg.Serialize {
						// Object k spans bytes [k*S, (k+1)*S) of stream 0.
						total := objBytes[0]
						for rem := int64(n); rem > 0; {
							obj := int(total / int64(cfg.ObjectBytes))
							left := int64(cfg.ObjectBytes) - total%int64(cfg.ObjectBytes)
							step := rem
							if step > left {
								step = left
							}
							total += step
							rem -= step
							if total%int64(cfg.ObjectBytes) == 0 && obj < cfg.Objects {
								completions[obj] = loop.Now()
								done++
								if firstDone == 0 {
									firstDone = loop.Now()
									fairSample = []float64{float64(total)}
								}
							}
						}
						objBytes[0] = total
					} else {
						obj := int(id)
						objBytes[obj] += int64(n)
						if objBytes[obj] == int64(cfg.ObjectBytes) {
							completions[obj] = loop.Now()
							done++
							if firstDone == 0 {
								firstDone = loop.Now()
								fairSample = make([]float64, 0, cfg.Objects)
								for o := 0; o < cfg.Objects; o++ {
									fairSample = append(fairSample, float64(objBytes[o]))
								}
							}
						}
					}
				}
				if eof {
					retired[id] = true
					break
				}
				if n == 0 {
					break
				}
			}
		}
		if done < cfg.Objects {
			poll.Reset(loop.Now() + sim.Millisecond)
		}
	})
	poll.Reset(sim.Millisecond)

	flow.Start()
	for loop.Now() < cfg.MaxSimTime && done < cfg.Objects {
		next := loop.Now() + 10*sim.Millisecond
		if next > cfg.MaxSimTime {
			next = cfg.MaxSimTime
		}
		loop.RunUntil(next)
	}
	if done < cfg.Objects {
		return Result{}, fmt.Errorf("holbench: %d/%d objects completed within %v (serialize=%v)",
			done, cfg.Objects, cfg.MaxSimTime, cfg.Serialize)
	}

	res := Result{
		Completions: completions,
		Retransmits: flow.Sender.Stats.Retransmits,
		Timeouts:    flow.Sender.Stats.Timeouts,
		TLPProbes:   flow.Sender.Stats.TLPProbes,
		RackMarked:  flow.Sender.Stats.RackMarked,
		Fairness:    jain(fairSample),
	}
	sorted := append([]sim.Time(nil), completions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.P50 = percentile(sorted, 0.50)
	res.P95 = percentile(sorted, 0.95)
	res.P99 = percentile(sorted, 0.99)
	res.Max = sorted[len(sorted)-1]
	if res.Max > 0 {
		res.GoodputBps = float64(cfg.Objects*cfg.ObjectBytes) * 8 / res.Max.Seconds()
	}
	return res, nil
}
