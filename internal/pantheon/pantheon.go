// Package pantheon reproduces the paper's §6.6 horizontal evaluation: a
// Pantheon-style community benchmark that runs a population of transport
// schemes over an ensemble of randomized WAN scenarios and ranks them per
// scenario by Kleinrock's power metric log(throughput_avg / OWD_95th).
//
// The real Pantheon measured wild Internet paths for 200 days; here each
// scenario is an emulated path sampled from realistic ranges (bandwidth,
// RTT, loss, queue depth), optionally with competing cross traffic, which
// preserves the figure's who-beats-whom ranking structure.
package pantheon

import (
	"fmt"
	"math"
	"sort"

	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

// Scheme is one ranked transport configuration.
type Scheme struct {
	Name string
	// Config builds the transport configuration for a run.
	Config func() transport.Config
}

// DefaultSchemes returns the scheme population: TCP-TACK plus the
// implemented baseline family. (Sprout/Verus/Indigo from the paper are
// learned/forecast controllers tied to cellular traces and are out of
// scope; the six families below preserve the ranking structure.)
func DefaultSchemes() []Scheme {
	legacy := func(cc string) func() transport.Config {
		return func() transport.Config {
			return transport.Config{Mode: transport.ModeLegacy, CC: cc}
		}
	}
	return []Scheme{
		{Name: "tcp-tack", Config: func() transport.Config {
			return transport.Config{Mode: transport.ModeTACK, CC: "bbr", RichTACK: true}
		}},
		{Name: "tcp-bbr", Config: legacy("bbr")},
		{Name: "tcp-cubic", Config: legacy("cubic")},
		{Name: "tcp-vegas", Config: legacy("vegas")},
		{Name: "tcp-reno", Config: legacy("reno")},
		{Name: "copa", Config: legacy("copa")},
		{Name: "pcc-allegro", Config: legacy("pcc")},
	}
}

// Scenario is one emulated path configuration.
type Scenario struct {
	RateBps  float64
	OWD      sim.Time
	Loss     float64
	QueueBDP float64 // queue depth as a multiple of bdp
	Dur      sim.Time
	Seed     int64
	// CrossTraffic runs a competing legacy CUBIC flow over the same path
	// (the paper's §6.6 "single flow, or cross traffic" workloads). The
	// fair share then halves, which the power metric reflects naturally.
	CrossTraffic bool
}

// String summarizes the scenario.
func (s Scenario) String() string {
	tag := ""
	if s.CrossTraffic {
		tag = "/cross"
	}
	return fmt.Sprintf("%.0fMbps/%v/%.2f%%/q=%.1fbdp%s", s.RateBps/1e6, 2*s.OWD, s.Loss*100, s.QueueBDP, tag)
}

// SampleScenarios draws n randomized scenarios from Pantheon-like ranges.
func SampleScenarios(n int, seed int64, dur sim.Time) []Scenario {
	rng := sim.NewLoop(seed).Rand()
	out := make([]Scenario, n)
	for i := range out {
		rate := (5 + rng.Float64()*195) * 1e6              // 5–200 Mbit/s
		owd := sim.Time(2+rng.Intn(120)) * sim.Millisecond // 4–240 ms RTT
		loss := 0.0
		if rng.Float64() < 0.4 {
			loss = rng.Float64() * 0.01 // up to 1%
		}
		out[i] = Scenario{
			RateBps:      rate,
			OWD:          owd,
			Loss:         loss,
			QueueBDP:     0.5 + rng.Float64()*4.5,
			Dur:          dur,
			Seed:         rng.Int63(),
			CrossTraffic: rng.Float64() < 0.3,
		}
	}
	return out
}

// RunResult is one scheme's outcome on one scenario.
type RunResult struct {
	Scheme    string
	Goodput   float64 // bits/s
	OWD95     sim.Time
	Power     float64
	Completed bool
}

// RunScheme measures one scheme over one scenario.
func RunScheme(sc Scenario, scheme Scheme) RunResult {
	loop := sim.NewLoop(sc.Seed)
	queueBytes := int(sc.RateBps / 8 * (2 * sc.OWD).Seconds() * sc.QueueBDP)
	if queueBytes < 32<<10 {
		queueBytes = 32 << 10
	}
	path, _, _ := topo.WANPath(loop, topo.WANConfig{
		RateBps:    sc.RateBps,
		OWD:        sc.OWD,
		QueueBytes: queueBytes,
		DataLoss:   sc.Loss,
		AckLoss:    sc.Loss,
	})
	cfg := scheme.Config()
	cfg.ConnID = 1
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		return RunResult{Scheme: scheme.Name}
	}
	if sc.CrossTraffic {
		cross, err := topo.NewFlow(loop, transport.Config{
			Mode: transport.ModeLegacy, CC: "cubic", ConnID: 2,
		}, path)
		if err == nil {
			cross.Start()
		}
	}
	flow.Start()
	loop.RunUntil(sc.Dur)
	delivered := flow.Receiver.Delivered()
	goodput := float64(delivered) * 8 / sc.Dur.Seconds()
	owd95 := sim.Time(flow.Receiver.OWD.Percentile(95) * 1e9)
	power := math.Inf(-1)
	if goodput > 0 && owd95 > 0 {
		power = math.Log(goodput / owd95.Seconds())
	}
	return RunResult{
		Scheme:    scheme.Name,
		Goodput:   goodput,
		OWD95:     owd95,
		Power:     power,
		Completed: delivered > 0,
	}
}

// Ranking aggregates per-scenario ranks for each scheme.
type Ranking struct {
	Scheme string
	Ranks  *stats.Summary // 1 = best per scenario
	Mean   float64
}

// Evaluate runs every scheme over every scenario and returns rankings
// sorted best-first, plus the raw per-scenario results.
func Evaluate(scenarios []Scenario, schemes []Scheme) ([]Ranking, [][]RunResult) {
	perScheme := map[string]*stats.Summary{}
	for _, s := range schemes {
		perScheme[s.Name] = stats.NewSummary()
	}
	all := make([][]RunResult, len(scenarios))
	for i, sc := range scenarios {
		results := make([]RunResult, len(schemes))
		for j, scheme := range schemes {
			results[j] = RunScheme(sc, scheme)
		}
		all[i] = results
		// Rank by power, best (highest) first.
		order := make([]int, len(results))
		for k := range order {
			order[k] = k
		}
		sort.SliceStable(order, func(a, b int) bool {
			return results[order[a]].Power > results[order[b]].Power
		})
		for rank, idx := range order {
			perScheme[results[idx].Scheme].Add(float64(rank + 1))
		}
	}
	out := make([]Ranking, 0, len(schemes))
	for _, s := range schemes {
		r := perScheme[s.Name]
		out = append(out, Ranking{Scheme: s.Name, Ranks: r, Mean: r.Mean()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Mean < out[b].Mean })
	return out, all
}
