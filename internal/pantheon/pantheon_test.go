package pantheon

import (
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func TestSampleScenariosDeterministic(t *testing.T) {
	a := SampleScenarios(5, 42, sim.Second)
	b := SampleScenarios(5, 42, sim.Second)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scenario sampling not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
	for _, sc := range a {
		if sc.RateBps < 5e6 || sc.RateBps > 200e6 {
			t.Fatalf("rate out of range: %v", sc.RateBps)
		}
		if sc.OWD < 2*sim.Millisecond || sc.OWD > 122*sim.Millisecond {
			t.Fatalf("owd out of range: %v", sc.OWD)
		}
		if sc.Loss < 0 || sc.Loss > 0.01 {
			t.Fatalf("loss out of range: %v", sc.Loss)
		}
	}
}

func TestDefaultSchemesIncludeTACKAndBaselines(t *testing.T) {
	names := map[string]bool{}
	for _, s := range DefaultSchemes() {
		names[s.Name] = true
	}
	for _, want := range []string{"tcp-tack", "tcp-bbr", "tcp-cubic", "tcp-vegas"} {
		if !names[want] {
			t.Fatalf("scheme %q missing", want)
		}
	}
}

func TestRunSchemeProducesTraffic(t *testing.T) {
	sc := Scenario{RateBps: 50e6, OWD: 10 * sim.Millisecond, QueueBDP: 2, Dur: 2 * sim.Second, Seed: 1}
	res := RunScheme(sc, DefaultSchemes()[0]) // tcp-tack
	if !res.Completed || res.Goodput < 5e6 {
		t.Fatalf("tack run: %+v", res)
	}
	if res.OWD95 <= 0 {
		t.Fatalf("no OWD measured: %+v", res)
	}
}

func TestEvaluateRanksAllSchemes(t *testing.T) {
	scenarios := SampleScenarios(2, 7, sim.Second)
	schemes := DefaultSchemes()[:3] // keep the smoke test fast
	rankings, raw := Evaluate(scenarios, schemes)
	if len(rankings) != 3 || len(raw) != 2 {
		t.Fatalf("sizes: %d rankings, %d scenario rows", len(rankings), len(raw))
	}
	for _, r := range rankings {
		if r.Ranks.Count() != 2 {
			t.Fatalf("%s ranked in %d scenarios, want 2", r.Scheme, r.Ranks.Count())
		}
		if r.Mean < 1 || r.Mean > 3 {
			t.Fatalf("%s mean rank %v out of range", r.Scheme, r.Mean)
		}
	}
	// Rankings are sorted best-first.
	for i := 1; i < len(rankings); i++ {
		if rankings[i-1].Mean > rankings[i].Mean {
			t.Fatal("rankings not sorted")
		}
	}
}
