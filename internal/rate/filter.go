// Package rate provides windowed extremum filters and delivery-rate
// estimation.
//
// The TACK receiver estimates the path's delivery rate (bw in paper Eq. 3)
// as a windowed maximum of per-TACK-interval delivery-rate samples; the
// round-trip timing advancements (paper §5.2) use windowed minimum filters
// over one-way-delay and RTT samples at both endpoints.
package rate

import "github.com/tacktp/tack/internal/sim"

// sample is one timestamped observation inside a windowed filter.
type sample struct {
	at  sim.Time
	val float64
}

// MaxFilter tracks the maximum observation within a sliding time window.
// The zero value is unusable; construct with NewMaxFilter.
type MaxFilter struct {
	window sim.Time
	// samples holds a monotonically decreasing deque: samples[0] is the
	// current window maximum.
	samples []sample
}

// NewMaxFilter returns a max filter over the given window length.
func NewMaxFilter(window sim.Time) *MaxFilter { return &MaxFilter{window: window} }

// Update folds in an observation at time now and returns the new window max.
func (f *MaxFilter) Update(now sim.Time, v float64) float64 {
	f.expire(now)
	for len(f.samples) > 0 && f.samples[len(f.samples)-1].val <= v {
		f.samples = f.samples[:len(f.samples)-1]
	}
	f.samples = append(f.samples, sample{at: now, val: v})
	return f.samples[0].val
}

// Get returns the current window max, expiring stale samples first.
// It returns 0 when no sample is live.
func (f *MaxFilter) Get(now sim.Time) float64 {
	f.expire(now)
	if len(f.samples) == 0 {
		return 0
	}
	return f.samples[0].val
}

// Empty reports whether the filter holds no live samples at time now.
func (f *MaxFilter) Empty(now sim.Time) bool {
	f.expire(now)
	return len(f.samples) == 0
}

// SetWindow changes the window length for subsequent queries.
func (f *MaxFilter) SetWindow(w sim.Time) { f.window = w }

func (f *MaxFilter) expire(now sim.Time) {
	cut := now - f.window
	i := 0
	for i < len(f.samples) && f.samples[i].at < cut {
		i++
	}
	if i > 0 {
		f.samples = f.samples[i:]
	}
}

// MinFilter tracks the minimum observation within a sliding time window.
// It mirrors MaxFilter; paper §5.2 stacks one at the receiver (per-interval
// minimum OWD) and one at the sender (minimum RTT over τ ≤ 10 s).
type MinFilter struct {
	window sim.Time
	// samples holds a monotonically increasing deque: samples[0] is the
	// current window minimum.
	samples []sample
}

// NewMinFilter returns a min filter over the given window length.
func NewMinFilter(window sim.Time) *MinFilter { return &MinFilter{window: window} }

// Update folds in an observation at time now and returns the new window min.
func (f *MinFilter) Update(now sim.Time, v float64) float64 {
	f.expire(now)
	for len(f.samples) > 0 && f.samples[len(f.samples)-1].val >= v {
		f.samples = f.samples[:len(f.samples)-1]
	}
	f.samples = append(f.samples, sample{at: now, val: v})
	return f.samples[0].val
}

// Get returns the current window min, expiring stale samples first.
// It returns 0 when no sample is live; check Empty to disambiguate.
func (f *MinFilter) Get(now sim.Time) float64 {
	f.expire(now)
	if len(f.samples) == 0 {
		return 0
	}
	return f.samples[0].val
}

// Empty reports whether the filter holds no live samples at time now.
func (f *MinFilter) Empty(now sim.Time) bool {
	f.expire(now)
	return len(f.samples) == 0
}

// SetWindow changes the window length for subsequent queries.
func (f *MinFilter) SetWindow(w sim.Time) { f.window = w }

func (f *MinFilter) expire(now sim.Time) {
	cut := now - f.window
	i := 0
	for i < len(f.samples) && f.samples[i].at < cut {
		i++
	}
	if i > 0 {
		f.samples = f.samples[i:]
	}
}
