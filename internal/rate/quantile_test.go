package rate

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/tacktp/tack/internal/sim"
)

func TestQuantileFilterBasics(t *testing.T) {
	f := NewQuantileFilter(sim.Second)
	if _, ok := f.Quantile(0, 50); ok {
		t.Fatal("empty filter should report !ok")
	}
	for i, v := range []float64{30, 10, 20, 40} {
		f.Update(sim.Time(i)*sim.Millisecond, v)
	}
	if got, _ := f.Min(10 * sim.Millisecond); got != 10 {
		t.Fatalf("min = %v, want 10", got)
	}
	if got, _ := f.Quantile(10*sim.Millisecond, 100); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	if got, _ := f.Quantile(10*sim.Millisecond, 50); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if f.Len(10*sim.Millisecond) != 4 {
		t.Fatalf("Len = %d", f.Len(10*sim.Millisecond))
	}
}

func TestQuantileFilterExpiry(t *testing.T) {
	f := NewQuantileFilter(10 * sim.Millisecond)
	f.Update(0, 1)
	f.Update(8*sim.Millisecond, 100)
	if got, _ := f.Min(9 * sim.Millisecond); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	// The 1 expires at t=11ms.
	if got, _ := f.Min(12 * sim.Millisecond); got != 100 {
		t.Fatalf("min after expiry = %v, want 100", got)
	}
	if _, ok := f.Min(30 * sim.Millisecond); ok {
		t.Fatal("fully expired filter should report !ok")
	}
}

func TestQuantileAgainstMinFilter(t *testing.T) {
	// Quantile(0) must agree with MinFilter on identical streams.
	qf := NewQuantileFilter(50 * sim.Millisecond)
	mf := NewMinFilter(50 * sim.Millisecond)
	vals := []float64{9, 3, 7, 1, 8, 2, 6}
	for i, v := range vals {
		at := sim.Time(i*7) * sim.Millisecond
		qf.Update(at, v)
		mf.Update(at, v)
		q, _ := qf.Min(at)
		if m := mf.Get(at); q != m {
			t.Fatalf("at %v: quantile-min %v != minfilter %v", at, q, m)
		}
	}
}

// Property: quantiles match a brute-force computation over live samples.
func TestQuickQuantileMatchesBrute(t *testing.T) {
	type obs struct {
		DtMs uint8
		Val  uint16
	}
	f := func(observations []obs, pRaw uint8) bool {
		window := 64 * sim.Millisecond
		qf := NewQuantileFilter(window)
		var hist []sample
		now := sim.Time(0)
		p := float64(pRaw % 101)
		for _, o := range observations {
			now += sim.Time(o.DtMs%16) * sim.Millisecond
			qf.Update(now, float64(o.Val))
			hist = append(hist, sample{at: now, val: float64(o.Val)})
			var live []float64
			for _, h := range hist {
				if h.at >= now-window {
					live = append(live, h.val)
				}
			}
			sort.Float64s(live)
			want := bruteQuantile(live, p)
			got, ok := qf.Quantile(now, p)
			if !ok || math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func bruteQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
