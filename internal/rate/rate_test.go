package rate

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tacktp/tack/internal/sim"
)

func TestMaxFilterBasics(t *testing.T) {
	f := NewMaxFilter(10 * sim.Millisecond)
	if got := f.Update(0, 5); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := f.Update(sim.Millisecond, 3); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := f.Update(2*sim.Millisecond, 9); got != 9 {
		t.Fatalf("max = %v, want 9", got)
	}
}

func TestMaxFilterExpiry(t *testing.T) {
	f := NewMaxFilter(10 * sim.Millisecond)
	f.Update(0, 9)
	f.Update(5*sim.Millisecond, 4)
	// At t=11ms the 9 (from t=0) has left the window.
	if got := f.Get(11 * sim.Millisecond); got != 4 {
		t.Fatalf("max after expiry = %v, want 4", got)
	}
	if !f.Empty(100 * sim.Millisecond) {
		t.Fatal("filter should be empty after window passes")
	}
	if got := f.Get(200 * sim.Millisecond); got != 0 {
		t.Fatalf("empty max = %v, want 0", got)
	}
}

func TestMinFilterBasics(t *testing.T) {
	f := NewMinFilter(10 * sim.Millisecond)
	f.Update(0, 5)
	if got := f.Update(sim.Millisecond, 8); got != 5 {
		t.Fatalf("min = %v, want 5", got)
	}
	if got := f.Update(2*sim.Millisecond, 2); got != 2 {
		t.Fatalf("min = %v, want 2", got)
	}
	// The 2 expires at t=13ms (>= 2+10+1); the 8 was evicted by the 2, so empty... no:
	// deque after Update(2ms,2) holds only {2ms:2}; at 13ms it's gone.
	if !f.Empty(13 * sim.Millisecond) {
		t.Fatal("min filter should be empty at 13ms")
	}
}

func TestMinFilterTracksNewMinAfterExpiry(t *testing.T) {
	f := NewMinFilter(10 * sim.Millisecond)
	f.Update(0, 1)
	f.Update(sim.Millisecond, 7)
	f.Update(2*sim.Millisecond, 5)
	// window [1ms..11ms): the 1 at t=0 expired, remaining mins are 7 evicted? No:
	// deque holds increasing values: after updates deque = {0:1, 1ms:7}? The 5 evicts 7 -> {0:1, 2ms:5}.
	if got := f.Get(11 * sim.Millisecond); got != 5 {
		t.Fatalf("min after expiry = %v, want 5", got)
	}
}

func TestSetWindow(t *testing.T) {
	f := NewMaxFilter(100 * sim.Millisecond)
	f.Update(0, 9)
	f.SetWindow(sim.Millisecond)
	if got := f.Get(50 * sim.Millisecond); got != 0 {
		t.Fatalf("after shrinking window, max = %v, want 0", got)
	}
}

// Property: the filters agree with a brute-force window scan.
func TestQuickFiltersMatchBruteForce(t *testing.T) {
	type obs struct {
		DtMs uint8
		Val  uint16
	}
	f := func(observations []obs, windowMs uint8) bool {
		window := sim.Time(int64(windowMs)+1) * sim.Millisecond
		maxF := NewMaxFilter(window)
		minF := NewMinFilter(window)
		var hist []sample
		now := sim.Time(0)
		for _, o := range observations {
			now += sim.Time(o.DtMs) * sim.Millisecond
			v := float64(o.Val)
			gotMax := maxF.Update(now, v)
			gotMin := minF.Update(now, v)
			hist = append(hist, sample{at: now, val: v})
			wantMax, wantMin := math.Inf(-1), math.Inf(1)
			for _, h := range hist {
				if h.at >= now-window {
					wantMax = math.Max(wantMax, h.val)
					wantMin = math.Min(wantMin, h.val)
				}
			}
			if gotMax != wantMax || gotMin != wantMin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverySampleBps(t *testing.T) {
	// Train of 3 packets, 1250 B each, spaced 1 ms: train rate counts the
	// last two packets over the 2 ms span = 10 Mbit/s.
	s := DeliverySample{Bytes: 3750, Elapsed: 3 * sim.Millisecond,
		TrainBytes: 2500, TrainSpan: 2 * sim.Millisecond, Packets: 3}
	if got := s.Bps(); math.Abs(got-10e6) > 1 {
		t.Fatalf("Bps = %v, want 10e6", got)
	}
	if got := s.IntervalBps(); math.Abs(got-10e6) > 1 {
		t.Fatalf("IntervalBps = %v, want 10e6", got)
	}
	if (DeliverySample{Packets: 1}).Bps() != 0 {
		t.Fatal("single-packet interval carries no rate information")
	}
	if (DeliverySample{Bytes: 100, Elapsed: 0}).IntervalBps() != 0 {
		t.Fatal("zero elapsed should give 0 rate")
	}
}

func TestDeliveryEstimatorIntervalRate(t *testing.T) {
	e := NewDeliveryEstimator(sim.Second)
	// 3 packets of 1250 B over a 3 ms interval: 10 Mbit/s throughput.
	e.OnDeliver(0, 1250)
	e.OnDeliver(sim.Millisecond, 1250)
	e.OnDeliver(2*sim.Millisecond, 1250)
	s := e.EndInterval(3 * sim.Millisecond)
	if s.Bytes != 3750 || s.Packets != 3 {
		t.Fatalf("sample = %+v", s)
	}
	if got := e.MaxBps(3 * sim.Millisecond); math.Abs(got-10e6) > 1 {
		t.Fatalf("MaxBps = %v, want 10e6", got)
	}
	// A slower second interval must not lower the max.
	e.OnDeliver(10*sim.Millisecond, 1250)
	e.OnDeliver(20*sim.Millisecond, 1250)
	e.EndInterval(23 * sim.Millisecond)
	if got := e.MaxBps(23 * sim.Millisecond); math.Abs(got-10e6) > 1 {
		t.Fatalf("MaxBps after slow interval = %v, want 10e6", got)
	}
	if e.TotalBytes() != 3750+2500 {
		t.Fatalf("TotalBytes = %d", e.TotalBytes())
	}
}

func TestDeliveryEstimatorEmptyInterval(t *testing.T) {
	e := NewDeliveryEstimator(sim.Second)
	s := e.EndInterval(sim.Millisecond)
	if s.Bytes != 0 {
		t.Fatalf("empty interval bytes = %d", s.Bytes)
	}
	if got := e.MaxBps(sim.Millisecond); got != 0 {
		t.Fatalf("MaxBps with no data = %v, want 0", got)
	}
	// Single packet: degenerate interval, no sample.
	e.OnDeliver(2*sim.Millisecond, 1250)
	e.EndInterval(4 * sim.Millisecond)
	if got := e.MaxBps(4 * sim.Millisecond); got != 0 {
		t.Fatalf("single-packet MaxBps = %v, want 0", got)
	}
}

func TestDeliveryEstimatorWindowExpiry(t *testing.T) {
	e := NewDeliveryEstimator(10 * sim.Millisecond)
	e.OnDeliver(0, 12500)
	e.OnDeliver(sim.Millisecond, 12500)
	e.EndInterval(2 * sim.Millisecond) // 100 Mbit/s interval
	if got := e.MaxBps(2 * sim.Millisecond); got == 0 {
		t.Fatal("expected a live sample")
	}
	if got := e.MaxBps(20 * sim.Millisecond); got != 0 {
		t.Fatalf("expired MaxBps = %v, want 0", got)
	}
}
