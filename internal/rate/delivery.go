package rate

import "github.com/tacktp/tack/internal/sim"

// DeliverySample is one delivery-rate observation over a measurement
// interval ending at a TACK.
type DeliverySample struct {
	// Bytes delivered within the interval (all packets).
	Bytes int64
	// Elapsed is the whole interval length.
	Elapsed sim.Time
	// TrainBytes / TrainSpan describe the packet train: bytes excluding the
	// first packet, over the span from first to last arrival. This removes
	// the fencepost bias of dividing N packets by N−1 serialization gaps.
	TrainBytes int64
	TrainSpan  sim.Time
	// Packets counts arrivals in the interval.
	Packets int
}

// Bps returns the train-based delivery rate in bits per second — an
// unbiased estimate of the bottleneck drain rate for a contiguous train.
// Intervals with fewer than two packets yield 0 (no rate information).
func (s DeliverySample) Bps() float64 {
	if s.Packets < 2 || s.TrainSpan <= 0 {
		return 0
	}
	return float64(s.TrainBytes) * 8 / s.TrainSpan.Seconds()
}

// IntervalBps returns bytes-over-interval throughput (includes idle time;
// a lower bound on the path rate).
func (s DeliverySample) IntervalBps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / s.Elapsed.Seconds()
}

// DeliveryEstimator computes per-interval delivery-rate samples at the
// receiver and keeps the windowed maximum delivery rate ("bw" in paper
// Eq. 3 and §5.4: a max filter over θ_filter = 5–10 RTTs).
type DeliveryEstimator struct {
	max        *MaxFilter
	intervalAt sim.Time

	firstAt    sim.Time
	firstBytes int
	lastAt     sim.Time
	bytes      int64
	packets    int

	started    bool
	totalBytes int64
}

// NewDeliveryEstimator returns an estimator whose max filter spans window.
func NewDeliveryEstimator(window sim.Time) *DeliveryEstimator {
	return &DeliveryEstimator{max: NewMaxFilter(window)}
}

// OnDeliver records bytes arriving at time now.
func (e *DeliveryEstimator) OnDeliver(now sim.Time, bytes int) {
	if bytes <= 0 {
		return
	}
	if !e.started {
		e.started = true
		e.intervalAt = now
	}
	if e.packets == 0 {
		e.firstAt = now
		e.firstBytes = bytes
	}
	e.lastAt = now
	e.packets++
	e.bytes += int64(bytes)
	e.totalBytes += int64(bytes)
}

// EndInterval closes the current measurement interval (called when a TACK
// is emitted), folds its throughput sample into the max filter, and returns
// the sample.
//
// The filtered value is the *interval throughput* (bytes over the whole
// interval): under a shared bottleneck this measures the flow's achieved
// share rather than the instantaneous drain rate, which keeps a
// receiver-coordinated BBR no more aggressive than the sender-based one.
// Degenerate intervals (fewer than two packets, or shorter than 1 ms) carry
// no usable rate information and are skipped.
func (e *DeliveryEstimator) EndInterval(now sim.Time) DeliverySample {
	s := DeliverySample{
		Bytes:      e.bytes,
		Elapsed:    now - e.intervalAt,
		TrainBytes: e.bytes - int64(e.firstBytes),
		TrainSpan:  e.lastAt - e.firstAt,
		Packets:    e.packets,
	}
	if s.Packets >= 2 && s.Elapsed >= sim.Millisecond {
		if bps := s.IntervalBps(); bps > 0 {
			e.max.Update(now, bps)
		}
	}
	e.intervalAt = now
	e.bytes = 0
	e.packets = 0
	e.firstBytes = 0
	return s
}

// MaxBps returns the current windowed maximum delivery rate in bits/s.
func (e *DeliveryEstimator) MaxBps(now sim.Time) float64 { return e.max.Get(now) }

// TotalBytes returns the total bytes delivered since construction.
func (e *DeliveryEstimator) TotalBytes() int64 { return e.totalBytes }

// SetWindow adjusts the max-filter window (θ_filter), e.g. as RTT estimates
// firm up.
func (e *DeliveryEstimator) SetWindow(w sim.Time) { e.max.SetWindow(w) }
