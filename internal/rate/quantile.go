package rate

import (
	"sort"

	"github.com/tacktp/tack/internal/sim"
)

// QuantileFilter keeps every observation inside a sliding time window and
// answers arbitrary percentile queries. The TACK paper's §5.2 footnote
// notes that the minimum-RTT estimation generalizes to the x-th percentile
// for x ∈ (0, 100]; this filter is that generalization (a windowed min is
// Quantile(0)).
//
// Queries sort lazily, so the filter suits control-rate usage (per ACK or
// per interval), not per-packet hot paths.
type QuantileFilter struct {
	window  sim.Time
	samples []sample
	sorted  []float64
	dirty   bool
}

// NewQuantileFilter returns a filter over the given window length.
func NewQuantileFilter(window sim.Time) *QuantileFilter {
	return &QuantileFilter{window: window}
}

// Update folds in an observation at time now.
func (f *QuantileFilter) Update(now sim.Time, v float64) {
	f.expire(now)
	f.samples = append(f.samples, sample{at: now, val: v})
	f.dirty = true
}

// Len returns the number of live samples at time now.
func (f *QuantileFilter) Len(now sim.Time) int {
	f.expire(now)
	return len(f.samples)
}

// Quantile returns the p-th percentile (p in [0,100]) of the live samples;
// ok is false when the window is empty. Linear interpolation between
// closest ranks.
func (f *QuantileFilter) Quantile(now sim.Time, p float64) (float64, bool) {
	f.expire(now)
	n := len(f.samples)
	if n == 0 {
		return 0, false
	}
	if f.dirty {
		f.sorted = f.sorted[:0]
		for _, s := range f.samples {
			f.sorted = append(f.sorted, s.val)
		}
		sort.Float64s(f.sorted)
		f.dirty = false
	}
	if p <= 0 {
		return f.sorted[0], true
	}
	if p >= 100 {
		return f.sorted[n-1], true
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return f.sorted[n-1], true
	}
	return f.sorted[lo]*(1-frac) + f.sorted[lo+1]*frac, true
}

// Min is Quantile(0).
func (f *QuantileFilter) Min(now sim.Time) (float64, bool) { return f.Quantile(now, 0) }

// SetWindow changes the window length for subsequent queries.
func (f *QuantileFilter) SetWindow(w sim.Time) { f.window = w }

func (f *QuantileFilter) expire(now sim.Time) {
	cut := now - f.window
	i := 0
	for i < len(f.samples) && f.samples[i].at < cut {
		i++
	}
	if i > 0 {
		f.samples = f.samples[i:]
		f.dirty = true
	}
}
