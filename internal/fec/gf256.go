// GF(2^8) arithmetic for the Reed-Solomon repair code, using the AES-ish
// primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d) with generator 2. The
// exp table is doubled so products of two logs never need a mod-255.
package fec

var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul returns a·b in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns a^-1 in GF(2^8); a must be nonzero.
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// gfDiv returns a/b in GF(2^8); b must be nonzero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// addScaled folds c·src into dst position-wise: dst[i] ^= c·src[i] for the
// length of src (dst must be at least as long). The c==1 fast path is the
// whole XOR scheme; the general path walks the log/exp tables once per
// nonzero byte.
func addScaled(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
	default:
		lc := int(gfLog[c])
		for i, s := range src {
			if s != 0 {
				dst[i] ^= gfExp[lc+int(gfLog[s])]
			}
		}
	}
}

// coeff returns the repair-matrix coefficient applied to data symbol i by
// repair symbol j. For Reed-Solomon it is the Cauchy element
// 1/(x_j ⊕ y_i) with x_j = 255-j and y_i = i: the x and y coordinate sets
// are distinct and disjoint whenever k+r ≤ 255, and every square submatrix
// of a Cauchy matrix is invertible, so any k of the k+r symbols
// reconstruct the group (MDS). Anchoring x_j at 255-j rather than k+j
// makes the coefficients independent of the group length, which lets a
// group seal early (fewer data symbols than planned) without re-coding.
// The XOR scheme is the all-ones row: a single parity symbol.
func coeff(scheme Scheme, j, i int) byte {
	if scheme == SchemeXOR {
		return 1
	}
	return gfInv(byte(255-j) ^ byte(i))
}
