package fec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/seqspace"
)

// mkData builds the i-th source packet of a synthetic group: varying
// payload sizes exercise the zero-padding path.
func mkData(i int, size int) *packet.Packet {
	payload := make([]byte, size)
	for b := range payload {
		payload[b] = byte(i*31 + b)
	}
	return &packet.Packet{
		Type: packet.TypeData, ConnID: 7, PktSeq: uint64(100 + i),
		Seq: uint64(5000 + i*1400), Payload: payload,
		HasStream: true, StreamID: 3, StreamOff: uint64(i * 1400),
		StreamFIN: i == 11, FIN: i == 11,
	}
}

// encodeGroup runs k packets through an encoder and returns the tagged
// sources plus the sealed repairs.
func encodeGroup(t *testing.T, scheme Scheme, k, r int, sizes []int) (srcs, reps []*packet.Packet) {
	t.Helper()
	var enc Encoder
	enc.Begin(42, scheme, k, r)
	for i := 0; i < k; i++ {
		p := mkData(i, sizes[i%len(sizes)])
		p.HasFEC, p.FECGroup = true, enc.Group()
		p.FECIndex = uint8(enc.Add(p))
		srcs = append(srcs, p)
	}
	if !enc.Full() {
		t.Fatalf("encoder not full after %d adds", k)
	}
	enc.Seal(99, 7, func(rp *packet.Packet) {
		if err := rp.Sane(); err != nil {
			t.Fatalf("sealed repair fails Sane: %v", err)
		}
		reps = append(reps, rp)
	})
	if len(reps) != r {
		t.Fatalf("sealed %d repairs, want %d", len(reps), r)
	}
	return srcs, reps
}

// checkRecovered verifies a reconstructed packet matches its original
// field-for-field.
func checkRecovered(t *testing.T, got, want *packet.Packet) {
	t.Helper()
	if got.PktSeq != want.PktSeq || got.Seq != want.Seq ||
		got.StreamID != want.StreamID || got.StreamOff != want.StreamOff ||
		got.StreamFIN != want.StreamFIN || got.FIN != want.FIN || !got.HasStream {
		t.Fatalf("recovered header diverges:\n got=%+v\nwant=%+v", got, want)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("recovered payload diverges (%d vs %d bytes)", len(got.Payload), len(want.Payload))
	}
}

// TestRecoverEveryLossPattern drops every subset of up to r symbols from
// an RS group and demands exact reconstruction — the MDS property the
// Cauchy matrix promises.
func TestRecoverEveryLossPattern(t *testing.T) {
	const k, r = 6, 2
	sizes := []int{700, 1400, 1, 333, 1024, 64}
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ { // a==b → single loss
			srcs, reps := encodeGroup(t, SchemeRS, k, r, sizes)
			dec := NewDecoder(0, 0)
			for i, p := range srcs {
				if i == a || i == b {
					continue
				}
				if out := dec.AddSource(p); out != nil {
					t.Fatalf("premature recovery with %d missing", k-map[bool]int{true: 1, false: 2}[a == b])
				}
			}
			var rec []*packet.Packet
			for _, rp := range reps {
				rec = append(rec, dec.AddRepair(rp)...)
			}
			lost := map[int]bool{a: true, b: true}
			if len(rec) != len(lost) {
				t.Fatalf("drop {%d,%d}: recovered %d packets, want %d", a, b, len(rec), len(lost))
			}
			for _, p := range rec {
				checkRecovered(t, p, srcs[p.FECIndex])
			}
			if dec.Dropped != 0 {
				t.Fatalf("drop {%d,%d}: decoder dropped %d honest symbols", a, b, dec.Dropped)
			}
		}
	}
}

// TestXORSingleLoss recovers each single loss from an XOR parity group.
func TestXORSingleLoss(t *testing.T) {
	const k = 5
	sizes := []int{900, 1400, 30, 512, 1}
	for lost := 0; lost < k; lost++ {
		srcs, reps := encodeGroup(t, SchemeXOR, k, 1, sizes)
		dec := NewDecoder(0, 0)
		for i, p := range srcs {
			if i != lost {
				dec.AddSource(p)
			}
		}
		rec := dec.AddRepair(reps[0])
		if len(rec) != 1 {
			t.Fatalf("lost %d: recovered %d packets, want 1", lost, len(rec))
		}
		checkRecovered(t, rec[0], srcs[lost])
	}
}

// TestRepairBeforeData delivers all repairs first (deep reorder): recovery
// must trigger off the final source arrival instead.
func TestRepairBeforeData(t *testing.T) {
	const k, r = 4, 2
	srcs, reps := encodeGroup(t, SchemeRS, k, r, []int{800, 801, 802, 803})
	dec := NewDecoder(0, 0)
	for _, rp := range reps {
		if out := dec.AddRepair(rp); out != nil {
			t.Fatal("recovery with zero sources held")
		}
	}
	// Two sources lost, two arrive late.
	if out := dec.AddSource(srcs[1]); out != nil {
		t.Fatal("premature recovery")
	}
	rec := dec.AddSource(srcs[3])
	if len(rec) != 2 {
		t.Fatalf("recovered %d, want 2", len(rec))
	}
	for _, p := range rec {
		checkRecovered(t, p, srcs[p.FECIndex])
	}
	if dec.RepairsUsed != 2 {
		t.Fatalf("RepairsUsed = %d, want 2", dec.RepairsUsed)
	}
}

// TestDuplicateAndWasted pins the waste accounting: a fully-received group
// counts its repairs wasted (never double-delivers), and duplicate repairs
// count wasted too.
func TestDuplicateAndWasted(t *testing.T) {
	const k, r = 3, 1
	srcs, reps := encodeGroup(t, SchemeRS, k, r, []int{100, 200, 300})
	dec := NewDecoder(0, 0)
	for _, p := range srcs {
		dec.AddSource(p)
		if out := dec.AddSource(p); out != nil { // duplicate source
			t.Fatal("duplicate source triggered recovery")
		}
	}
	if out := dec.AddRepair(reps[0]); out != nil {
		t.Fatal("repair for complete group delivered packets")
	}
	if dec.RepairsWasted != 1 {
		t.Fatalf("RepairsWasted = %d, want 1", dec.RepairsWasted)
	}
	if out := dec.AddRepair(reps[0]); out != nil { // duplicate repair, group done
		t.Fatal("duplicate repair delivered packets")
	}
	if dec.RepairsWasted != 2 {
		t.Fatalf("RepairsWasted = %d, want 2", dec.RepairsWasted)
	}
	if dec.Recovered != 0 || dec.RepairsUsed != 0 {
		t.Fatalf("complete group counted recovery: %+v", dec)
	}
}

// TestRepairArrivesBeforeLossThenWasted: repairs held, then the group
// completes via data — the held repairs are wasted, not used.
func TestRepairArrivesBeforeLossThenWasted(t *testing.T) {
	const k, r = 3, 2
	srcs, reps := encodeGroup(t, SchemeRS, k, r, []int{64, 64, 64})
	dec := NewDecoder(0, 0)
	dec.AddRepair(reps[0])
	dec.AddRepair(reps[1])
	dec.AddSource(srcs[0])
	dec.AddSource(srcs[1])
	// The final source makes the group complete: 2 held repairs could
	// have recovered, but nothing was missing... except the decoder sees
	// missing=0 only at the end; with 2 repairs and 1 missing it recovers
	// eagerly at srcs[1]. Verify totals instead: everything delivered or
	// recovered exactly once.
	rec := dec.AddSource(srcs[2])
	total := dec.Recovered + 2 + 1 // recovered + fed sources
	if total < 3 {
		t.Fatalf("group under-delivered: %+v", dec)
	}
	if dec.RepairsUsed+dec.RepairsWasted != 2 {
		t.Fatalf("repairs not fully accounted: used=%d wasted=%d", dec.RepairsUsed, dec.RepairsWasted)
	}
	_ = rec
}

// TestEarlySealShortGroup seals a group below its configured k: the
// repairs must carry the true length and still recover, at a
// proportionally shrunk repair count.
func TestEarlySealShortGroup(t *testing.T) {
	var enc Encoder
	enc.Begin(9, SchemeRS, 12, 2)
	var srcs []*packet.Packet
	for i := 0; i < 3; i++ { // stream ends after 3 of 12
		p := mkData(i, 500)
		p.HasFEC, p.FECGroup = true, enc.Group()
		p.FECIndex = uint8(enc.Add(p))
		srcs = append(srcs, p)
	}
	var reps []*packet.Packet
	enc.Seal(5, 7, func(rp *packet.Packet) { reps = append(reps, rp) })
	if len(reps) != 1 { // ceil(3·2/12) = 1: the cap survives the short tail
		t.Fatalf("short group sealed %d repairs, want 1", len(reps))
	}
	if reps[0].FECGroupLen != 3 {
		t.Fatalf("short group advertises k=%d, want 3", reps[0].FECGroupLen)
	}
	dec := NewDecoder(0, 0)
	dec.AddSource(srcs[0])
	dec.AddSource(srcs[2])
	rec := dec.AddRepair(reps[0])
	if len(rec) != 1 {
		t.Fatalf("recovered %d, want 1", len(rec))
	}
	checkRecovered(t, rec[0], srcs[1])
}

// TestDecoderHostileInput feeds conflicting geometry, bogus indices, and
// oversized symbols: all must be dropped and counted, never recovered
// from, and the honest remainder must still work.
func TestDecoderHostileInput(t *testing.T) {
	const k, r = 4, 2
	srcs, reps := encodeGroup(t, SchemeRS, k, r, []int{256, 256, 256, 256})
	dec := NewDecoder(0, 0)
	dec.AddRepair(reps[0])

	// Conflicting geometry for the same group.
	evil := *reps[1]
	evil.FECGroupLen = 9
	if out := dec.AddRepair(&evil); out != nil {
		t.Fatal("conflicting-geometry repair accepted")
	}
	// Source index beyond pinned k.
	ghost := mkData(0, 64)
	ghost.HasFEC, ghost.FECGroup, ghost.FECIndex = true, 42, 200
	if out := dec.AddSource(ghost); out != nil {
		t.Fatal("out-of-geometry source accepted")
	}
	// Oversized symbol refused outright.
	big := mkData(0, DefaultMaxSymbol+1)
	big.HasFEC, big.FECGroup, big.FECIndex = true, 42, 0
	dec.AddSource(big)
	if dec.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", dec.Dropped)
	}

	// The honest code still recovers around the garbage.
	dec.AddRepair(reps[1])
	for i := 2; i < k; i++ {
		dec.AddSource(srcs[i])
	}
	if dec.Recovered != 2 {
		t.Fatalf("Recovered = %d, want 2 after hostile noise", dec.Recovered)
	}
}

// TestDecoderEviction bounds group state: flooding distinct group ids must
// cap the map at MaxGroups.
func TestDecoderEviction(t *testing.T) {
	dec := NewDecoder(8, 0)
	for g := 0; g < 100; g++ {
		p := mkData(0, 32)
		p.HasFEC, p.FECGroup, p.FECIndex = true, uint32(g), 0
		dec.AddSource(p)
	}
	if len(dec.groups) > 8 {
		t.Fatalf("decoder holds %d groups, cap 8", len(dec.groups))
	}
}

// TestControllerLaw pins the adaptive geometry against hand-computed
// points of the control law.
func TestControllerLaw(t *testing.T) {
	opts := Options{Scheme: SchemeRS, GroupLen: 12, MaxOverhead: 0.2, Adaptive: true}
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
	c := NewController(opts)

	// No loss observed: one repair per max-length group.
	if k, r := c.Geometry(); k != 12 || r != 1 {
		t.Fatalf("idle geometry (%d,%d), want (12,1)", k, r)
	}

	// Sustained 5% loss, bursts of 2: overhead grows toward 2/k ≈ 10%.
	for i := 0; i < 50; i++ {
		c.OnAck(50, []seqspace.Range{{Lo: 10, Hi: 12}})
	}
	k, r := c.Geometry()
	if r != 2 {
		t.Fatalf("bursty geometry r=%d, want 2", r)
	}
	if ratio := float64(r) / float64(k); ratio > opts.MaxOverhead {
		t.Fatalf("ratio %.3f exceeds cap %.3f", ratio, opts.MaxOverhead)
	}

	// Heavy loss saturates at the cap, never beyond.
	for i := 0; i < 50; i++ {
		c.OnAck(300, []seqspace.Range{{Lo: 0, Hi: 4}})
	}
	k, r = c.Geometry()
	if ratio := float64(r) / float64(k); ratio > opts.MaxOverhead+1e-9 {
		t.Fatalf("saturated ratio %.3f exceeds cap %.3f", ratio, opts.MaxOverhead)
	}

	// Reset forgets the regime.
	c.Reset()
	if k, r := c.Geometry(); k != 12 || r != 1 {
		t.Fatalf("post-reset geometry (%d,%d), want (12,1)", k, r)
	}
}

// TestControllerXOR: the XOR scheme moves k only, keeping r = 1 and the
// ratio under the cap.
func TestControllerXOR(t *testing.T) {
	c := NewController(Options{Scheme: SchemeXOR, GroupLen: 16, MaxOverhead: 0.25, Adaptive: true})
	for i := 0; i < 50; i++ {
		c.OnAck(100, []seqspace.Range{{Lo: 5, Hi: 6}})
	}
	k, r := c.Geometry()
	if r != 1 {
		t.Fatalf("xor r=%d, want 1", r)
	}
	if k < 4 || k > 16 {
		t.Fatalf("xor k=%d outside sane range", k)
	}
	if 1/float64(k) > 0.25+1e-9 {
		t.Fatalf("xor ratio %.3f exceeds cap", 1/float64(k))
	}
}

// TestOptionsValidate sweeps the bounds.
func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{}, // disabled
		{Scheme: SchemeXOR, GroupLen: 4, MaxOverhead: 0.25},
		{Scheme: SchemeRS, GroupLen: 128, MaxOverhead: 1, Adaptive: true},
	}
	for i, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("valid[%d]: %v", i, err)
		}
	}
	invalid := []Options{
		{Scheme: 99, GroupLen: 8, MaxOverhead: 0.5},
		{Scheme: SchemeRS, GroupLen: 0, MaxOverhead: 0.5},
		{Scheme: SchemeRS, GroupLen: 129, MaxOverhead: 0.5},
		{Scheme: SchemeRS, GroupLen: 8, MaxOverhead: 0},
		{Scheme: SchemeRS, GroupLen: 8, MaxOverhead: 1.5},
		{Scheme: SchemeRS, GroupLen: 4, MaxOverhead: 0.2}, // 0.8 repairs: no budget
	}
	for i, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("invalid[%d] accepted: %+v", i, o)
		}
	}
}

// TestGFField sanity-checks the GF(2^8) tables: inverses, distributivity
// on random triples.
func TestGFField(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%d", a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails at (%d,%d,%d)", a, b, c)
		}
		if b != 0 && gfMul(gfDiv(a, b), b) != a {
			t.Fatalf("div/mul round trip fails at (%d,%d)", a, b)
		}
	}
}

// FuzzDecoderInjection throws structured garbage at the decoder alongside
// one honest group: it must never panic, and the honest group must still
// recover when its symbols make it through.
func FuzzDecoderInjection(f *testing.F) {
	f.Add(uint32(42), uint8(0), uint8(4), uint8(2), uint8(2), []byte{1, 2, 3})
	f.Add(uint32(1), uint8(200), uint8(255), uint8(255), uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, grp uint32, idx, k, r, scheme uint8, payload []byte) {
		dec := NewDecoder(16, 1024)
		// Hostile repair (only Sane-shaped ones reach AddRepair in the
		// real receiver, but the decoder must survive anything).
		dec.AddRepair(&packet.Packet{
			Type: packet.TypeRepair, FECGroup: grp, FECIndex: idx,
			FECGroupLen: k, FECRepairCount: r, FECScheme: scheme,
			Payload: payload,
		})
		// Hostile source.
		dec.AddSource(&packet.Packet{
			Type: packet.TypeData, HasStream: true, HasFEC: true,
			FECGroup: grp, FECIndex: idx, StreamID: 1, Payload: payload,
		})
		// An honest group threaded through the same decoder still works.
		var enc Encoder
		enc.Begin(grp+1, SchemeXOR, 3, 1)
		var srcs []*packet.Packet
		for i := 0; i < 3; i++ {
			p := mkData(i, 40)
			p.HasFEC, p.FECGroup = true, grp+1
			p.FECIndex = uint8(enc.Add(p))
			srcs = append(srcs, p)
		}
		var reps []*packet.Packet
		enc.Seal(1, 7, func(rp *packet.Packet) { reps = append(reps, rp) })
		dec.AddSource(srcs[0])
		dec.AddSource(srcs[2])
		rec := dec.AddRepair(reps[0])
		if len(rec) != 1 {
			t.Fatalf("honest group failed to recover amid noise: %d packets", len(rec))
		}
		if !bytes.Equal(rec[0].Payload, srcs[1].Payload) {
			t.Fatal("honest recovery corrupted by injected noise")
		}
	})
}

// BenchmarkEncodeGroup measures the sender-side fold cost per packet.
func BenchmarkEncodeGroup(b *testing.B) {
	for _, scheme := range []Scheme{SchemeXOR, SchemeRS} {
		b.Run(scheme.String(), func(b *testing.B) {
			p := mkData(0, 1400)
			var enc Encoder
			b.SetBytes(1400)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%8 == 0 {
					enc.Begin(uint32(i), scheme, 8, 2)
				}
				p.HasFEC, p.FECGroup = true, enc.Group()
				p.FECIndex = uint8(enc.Add(p))
				if enc.Full() {
					enc.Seal(0, 1, func(*packet.Packet) {})
				}
			}
		})
	}
}

func TestSchemeString(t *testing.T) {
	for want, s := range map[string]Scheme{"none": SchemeNone, "xor": SchemeXOR, "rs": SchemeRS} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if got := Scheme(9).String(); got != fmt.Sprintf("Scheme(9)") {
		t.Errorf("unknown scheme string %q", got)
	}
}
