// Package fec implements the forward-error-correction stream class: group
// repair coding over STREAM frames so latency-critical streams deliver
// through burst loss with zero retransmission RTTs.
//
// The sender tags each outgoing stream-bearing DATA packet as a source
// symbol of the current group (packet.HasFEC + FECGroup/FECIndex) and
// accumulates it into an Encoder. When the group seals — k symbols, or
// early at a flush boundary — the encoder emits r REPAIR packets, each a
// coded combination of the group's source symbols. The receiver's Decoder
// collects source and repair symbols per group and, once any k of the k+r
// symbols have arrived, reconstructs the missing DATA packets exactly:
// headers and payload, ready to inject into per-stream reassembly as if
// they had arrived off the wire.
//
// Two schemes are supported: SchemeXOR (one parity symbol, repairs any
// single loss per group) and SchemeRS (Reed-Solomon over GF(2^8) via a
// Cauchy matrix, repairs up to r losses per group). A Controller adapts
// the (k, r) geometry online to the observed Gilbert-Elliott loss regime,
// clamped to a configured overhead cap.
//
// The package is sans-IO and deterministic: it moves bytes between
// packet.Packet values and never touches clocks, sockets, or goroutines.
package fec

import (
	"encoding/binary"
	"fmt"

	"github.com/tacktp/tack/internal/packet"
)

// Scheme selects the repair coding discipline.
type Scheme uint8

// Coding schemes. The values are carried on the wire in REPAIR packets
// (packet.Packet.FECScheme), so they are stable protocol constants.
const (
	// SchemeNone disables FEC (the zero value: streams opt in).
	SchemeNone Scheme = 0
	// SchemeXOR sends one parity symbol per group: cheapest, repairs any
	// single loss per group.
	SchemeXOR Scheme = 1
	// SchemeRS sends r Reed-Solomon repair symbols per group: repairs up
	// to r losses per group at r/k overhead.
	SchemeRS Scheme = 2
)

// String returns the scheme's name.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeXOR:
		return "xor"
	case SchemeRS:
		return "rs"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// maxSymbols bounds k+r: the Cauchy coordinate space is GF(2^8) minus the
// diagonal, and symbol indices ride in single wire bytes.
const maxSymbols = 255

// Options are the per-stream FEC knobs (stream.Options.FEC, re-exported
// through the tack facade).
type Options struct {
	// Scheme selects the coding discipline; SchemeNone (zero) disables FEC
	// for the stream.
	Scheme Scheme
	// GroupLen is k, the (maximum) number of data symbols per group.
	// Smaller groups repair faster and tolerate denser bursts at higher
	// overhead. Bounds: 1..128.
	GroupLen int
	// MaxOverhead caps the repair redundancy ratio r/k in (0, 1]. The
	// encoder never exceeds it, adaptive or not.
	MaxOverhead float64
	// Adaptive lets the Controller retune (k, r) online from the observed
	// loss rate and burstiness; when false the geometry is static at the
	// configured GroupLen and the overhead cap.
	Adaptive bool
}

// Enabled reports whether the options request FEC at all.
func (o Options) Enabled() bool { return o.Scheme != SchemeNone }

// Validate bounds-checks the options. The zero value (FEC disabled) is
// always valid.
func (o Options) Validate() error {
	if o.Scheme == SchemeNone {
		return nil
	}
	if o.Scheme != SchemeXOR && o.Scheme != SchemeRS {
		return fmt.Errorf("fec: unknown scheme %d", uint8(o.Scheme))
	}
	if o.GroupLen < 1 || o.GroupLen > 128 {
		return fmt.Errorf("fec: GroupLen %d outside 1..128", o.GroupLen)
	}
	if o.MaxOverhead <= 0 || o.MaxOverhead > 1 {
		return fmt.Errorf("fec: MaxOverhead %g outside (0, 1]", o.MaxOverhead)
	}
	// At least one repair symbol must fit under the cap at the configured
	// group length, or the stream could never emit any protection.
	if float64(o.GroupLen)*o.MaxOverhead < 1 {
		return fmt.Errorf("fec: GroupLen %d × MaxOverhead %g grants no repair budget (need ≥ 1)",
			o.GroupLen, o.MaxOverhead)
	}
	return nil
}

// symbolHeaderLen is the serialized per-symbol header: the fields of the
// original DATA packet a recovery must resynthesize — packet number,
// connection-level byte offset, stream ID, stream offset, payload length,
// and flags. Coding runs over header+payload so a recovered symbol is a
// complete packet, not just bytes.
const symbolHeaderLen = 8 + 8 + 4 + 8 + 2 + 1

// Symbol flag bits.
const (
	symFIN       = 1 // connection-level FIN rode on the packet
	symStreamFIN = 2 // last frame of its stream
)

// appendSymbol serializes the recoverable fields of a stream-bearing DATA
// packet as one FEC source symbol.
func appendSymbol(buf []byte, p *packet.Packet) []byte {
	buf = binary.BigEndian.AppendUint64(buf, p.PktSeq)
	buf = binary.BigEndian.AppendUint64(buf, p.Seq)
	buf = binary.BigEndian.AppendUint32(buf, p.StreamID)
	buf = binary.BigEndian.AppendUint64(buf, p.StreamOff)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
	var f byte
	if p.FIN {
		f |= symFIN
	}
	if p.StreamFIN {
		f |= symStreamFIN
	}
	buf = append(buf, f)
	return append(buf, p.Payload...)
}

// parseSymbol reconstructs a DATA packet from a recovered symbol. It
// returns false when the symbol is internally inconsistent (declared
// payload longer than the symbol) — possible only when the solve consumed
// corrupted or adversarial inputs, never from honest loss.
func parseSymbol(sym []byte) (*packet.Packet, bool) {
	if len(sym) < symbolHeaderLen {
		return nil, false
	}
	plen := int(binary.BigEndian.Uint16(sym[28:]))
	if symbolHeaderLen+plen > len(sym) {
		return nil, false
	}
	f := sym[30]
	p := &packet.Packet{
		Type:      packet.TypeData,
		PktSeq:    binary.BigEndian.Uint64(sym),
		Seq:       binary.BigEndian.Uint64(sym[8:]),
		HasStream: true,
		StreamID:  binary.BigEndian.Uint32(sym[16:]),
		StreamOff: binary.BigEndian.Uint64(sym[20:]),
		FIN:       f&symFIN != 0,
		StreamFIN: f&symStreamFIN != 0,
		Payload:   append([]byte(nil), sym[symbolHeaderLen:symbolHeaderLen+plen]...),
	}
	return p, true
}
