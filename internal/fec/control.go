package fec

import (
	"math"

	"github.com/tacktp/tack/internal/seqspace"
)

// Controller adapts the group geometry (k, r) to the loss regime the
// receiver reports. It runs two EWMA estimators off the sender's ack
// stream — the receiver-computed loss rate ρ and the mean gap run length
// from the unacked-block lists (a direct read on Gilbert-Elliott
// burstiness) — and derives geometry from a simple control law:
//
//	ρ̂  = EWMA loss rate, b̂ = EWMA burst length (≥ 1)
//	ρ* = clamp(gain·ρ̂, 1/GroupLen, MaxOverhead)   // overhead tracks loss, gain = 2
//	r  = clamp(round(b̂), 1, ⌊GroupLen·MaxOverhead⌋) // repairs sized to one burst
//	k  = clamp(round(r/ρ*), ⌈r/MaxOverhead⌉, GroupLen)
//
// so under light loss the stream pays one repair per max-length group, and
// as loss or burstiness grows the groups shorten and grow repairs until
// the overhead cap binds. SchemeXOR pins r = 1 and moves only k. With
// Adaptive off the geometry is static: the configured GroupLen with the
// repair budget the cap affords.
type Controller struct {
	opts Options

	seeded    bool
	lossEWMA  float64 // data-path loss rate, 0..1
	burstEWMA float64 // mean consecutive-loss run length in packets
}

// ewmaAlpha weighs each new ack sample; ~4 acks to move halfway.
const ewmaAlpha = 0.25

// redundancyGain scales the loss estimate into the target overhead: 2×
// leaves headroom for the loss estimate lagging the channel.
const redundancyGain = 2.0

// NewController returns a controller for the given (validated) options.
func NewController(opts Options) *Controller {
	return &Controller{opts: opts}
}

// OnAck folds one acknowledgment's receiver-side observations into the
// estimators: the loss rate in permille and the unacked (gap) block list,
// whose run lengths sample burstiness.
func (c *Controller) OnAck(lossPermille uint16, unacked []seqspace.Range) {
	if !c.opts.Adaptive {
		return
	}
	loss := float64(lossPermille) / 1000
	if loss > 1 {
		loss = 1
	}
	if !c.seeded {
		c.seeded = true
		c.lossEWMA = loss
	} else {
		c.lossEWMA += ewmaAlpha * (loss - c.lossEWMA)
	}
	for _, r := range unacked {
		run := float64(r.Hi - r.Lo)
		if run <= 0 {
			continue
		}
		if c.burstEWMA == 0 {
			c.burstEWMA = run
		} else {
			c.burstEWMA += ewmaAlpha * (run - c.burstEWMA)
		}
	}
}

// Reset clears the estimators (path migration: the new path's loss regime
// is unknown).
func (c *Controller) Reset() {
	c.seeded = false
	c.lossEWMA, c.burstEWMA = 0, 0
}

// LossEstimate returns the current smoothed loss-rate estimate (0..1).
func (c *Controller) LossEstimate() float64 { return c.lossEWMA }

// BurstEstimate returns the current smoothed burst-length estimate in
// packets (0 until a gap has been observed).
func (c *Controller) BurstEstimate() float64 { return c.burstEWMA }

// Geometry returns the (k, r) the next group should use under the current
// estimates, always honoring r/k ≤ MaxOverhead.
func (c *Controller) Geometry() (k, r int) {
	o := c.opts
	rMax := int(float64(o.GroupLen) * o.MaxOverhead)
	if rMax < 1 {
		rMax = 1 // Validate guarantees GroupLen·MaxOverhead ≥ 1
	}
	if !o.Adaptive {
		if o.Scheme == SchemeXOR {
			return o.GroupLen, 1
		}
		return o.GroupLen, rMax
	}

	rhoMin := 1 / float64(o.GroupLen)
	rho := redundancyGain * c.lossEWMA
	if rho < rhoMin {
		rho = rhoMin
	}
	if rho > o.MaxOverhead {
		rho = o.MaxOverhead
	}

	if o.Scheme == SchemeXOR {
		k = clampInt(int(math.Round(1/rho)), ceilDiv(1, o.MaxOverhead), o.GroupLen)
		return k, 1
	}

	r = clampInt(int(math.Round(c.burstEWMA)), 1, rMax)
	k = clampInt(int(math.Round(float64(r)/rho)), ceilDiv(float64(r), o.MaxOverhead), o.GroupLen)
	if k < r {
		k = r // degenerate caps: never more repairs than data
	}
	return k, r
}

// Ratio returns the redundancy ratio r/k of the current geometry.
func (c *Controller) Ratio() float64 {
	k, r := c.Geometry()
	return float64(r) / float64(k)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ceilDiv returns ⌈num/den⌉ for positive floats as an int ≥ 1.
func ceilDiv(num, den float64) int {
	n := int(math.Ceil(num / den))
	if n < 1 {
		n = 1
	}
	return n
}
