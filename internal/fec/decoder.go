package fec

import (
	"github.com/tacktp/tack/internal/packet"
)

// Decoder is the receiver half: it collects source and repair symbols per
// group and reconstructs missing DATA packets once any k of a group's k+r
// symbols have arrived. It is defensive by construction — symbols with
// bogus indices, conflicting geometry, or oversized payloads are dropped
// and counted, never trusted — and bounded: at most MaxGroups groups are
// tracked (FIFO eviction) and symbols larger than MaxSymbol are refused,
// so a hostile peer cannot grow receiver memory without limit.
type Decoder struct {
	maxGroups int
	maxSymbol int

	groups map[uint32]*group
	order  []uint32 // group-id arrival order for FIFO eviction

	// Counters (the receiver mirrors them into telemetry).
	Recovered      uint64 // packets reconstructed
	RecoveredBytes uint64 // payload bytes reconstructed
	RepairsUsed    uint64 // repair symbols consumed by successful solves
	RepairsWasted  uint64 // repairs that arrived for already-complete groups, duplicates, or expired unused
	Dropped        uint64 // symbols rejected: bad geometry, bogus index, oversize, corrupt solve
}

// group tracks one FEC group's arrivals. Geometry (k, r, scheme) is
// unknown until the first repair arrives: source symbols carry only their
// group id and index, so until then they are parked by index.
type group struct {
	geomKnown bool
	scheme    Scheme
	k, r      int

	src     [][]byte // serialized source symbols by index
	have    []bool
	nHave   int // count of held sources with index < k (== len(src) pre-geometry)
	repairs [][]byte
	repHave []bool
	nRep    int
	maxLen  int
	done    bool // fully received or recovered: arrivals are duplicates/waste
}

// DefaultMaxGroups bounds decoder group state; with in-order delivery only
// a handful of groups are ever open, so 64 tolerates deep reorder while
// capping memory.
const DefaultMaxGroups = 64

// DefaultMaxSymbol bounds one symbol's serialized size: generously above
// any real MTU-framed DATA packet.
const DefaultMaxSymbol = 8192

// NewDecoder returns a decoder tracking at most maxGroups concurrent
// groups of symbols no larger than maxSymbol bytes (≤0 selects defaults).
func NewDecoder(maxGroups, maxSymbol int) *Decoder {
	if maxGroups <= 0 {
		maxGroups = DefaultMaxGroups
	}
	if maxSymbol <= 0 {
		maxSymbol = DefaultMaxSymbol
	}
	return &Decoder{
		maxGroups: maxGroups,
		maxSymbol: maxSymbol,
		groups:    make(map[uint32]*group),
	}
}

// Reset discards all group state (path migration, connection restart).
func (d *Decoder) Reset() {
	for id := range d.groups {
		delete(d.groups, id)
	}
	d.order = d.order[:0]
}

func (d *Decoder) lookup(id uint32) *group {
	if g, ok := d.groups[id]; ok {
		return g
	}
	for len(d.groups) >= d.maxGroups {
		oldest := d.order[0]
		d.order = d.order[1:]
		if g, ok := d.groups[oldest]; ok {
			if !g.done {
				d.RepairsWasted += uint64(g.nRep)
			}
			delete(d.groups, oldest)
		}
	}
	g := &group{}
	d.groups[id] = g
	d.order = append(d.order, id)
	return g
}

// AddSource feeds a received FEC-tagged DATA packet (HasFEC set) into its
// group and returns any packets recovery reconstructed as a consequence —
// non-nil when this source was the last straw for a group whose repairs
// arrived first (reorder).
func (d *Decoder) AddSource(p *packet.Packet) []*packet.Packet {
	sym := appendSymbol(nil, p)
	if len(sym) > d.maxSymbol || int(p.FECIndex) >= maxSymbols {
		d.Dropped++
		return nil
	}
	g := d.lookup(p.FECGroup)
	if g.done {
		return nil // late duplicate of a settled group
	}
	idx := int(p.FECIndex)
	if g.geomKnown && idx >= g.k {
		d.Dropped++ // index beyond the geometry the repairs pinned
		return nil
	}
	for len(g.src) <= idx {
		g.src = append(g.src, nil)
		g.have = append(g.have, false)
	}
	if g.have[idx] {
		return nil // duplicate source
	}
	g.src[idx] = sym
	g.have[idx] = true
	g.nHave++
	if len(sym) > g.maxLen {
		g.maxLen = len(sym)
	}
	return d.tryRecover(p.FECGroup, g)
}

// AddRepair feeds a received REPAIR packet into its group and returns any
// packets recovery reconstructed. The packet must already have passed
// packet.Sane (k ≥ 1, r ≥ 1, index < r, k+r ≤ 255, known scheme).
func (d *Decoder) AddRepair(p *packet.Packet) []*packet.Packet {
	if len(p.Payload) > d.maxSymbol || Scheme(p.FECScheme) == SchemeNone ||
		(Scheme(p.FECScheme) != SchemeXOR && Scheme(p.FECScheme) != SchemeRS) {
		d.Dropped++
		return nil
	}
	g := d.lookup(p.FECGroup)
	if g.done {
		d.RepairsWasted++
		return nil
	}
	k, r := int(p.FECGroupLen), int(p.FECRepairCount)
	if g.geomKnown {
		if g.k != k || g.r != r || g.scheme != Scheme(p.FECScheme) {
			d.Dropped++ // conflicting geometry: someone is lying
			return nil
		}
	} else {
		g.geomKnown = true
		g.k, g.r, g.scheme = k, r, Scheme(p.FECScheme)
		g.repairs = make([][]byte, r)
		g.repHave = make([]bool, r)
		// Drop parked sources whose index the pinned geometry disavows.
		for i := k; i < len(g.src); i++ {
			if g.have[i] {
				g.have[i] = false
				g.nHave--
				d.Dropped++
			}
		}
		if len(g.src) > k {
			g.src, g.have = g.src[:k], g.have[:k]
		}
		for len(g.src) < k {
			g.src = append(g.src, nil)
			g.have = append(g.have, false)
		}
	}
	j := int(p.FECIndex)
	if j >= g.r || g.repHave[j] {
		d.RepairsWasted++ // duplicate (Sane already bounds j < r)
		return nil
	}
	g.repairs[j] = append([]byte(nil), p.Payload...)
	g.repHave[j] = true
	g.nRep++
	if len(p.Payload) > g.maxLen {
		g.maxLen = len(p.Payload)
	}
	return d.tryRecover(p.FECGroup, g)
}

// tryRecover runs when a group might have become solvable: k known, and
// the held sources plus repairs cover the k data symbols.
func (d *Decoder) tryRecover(id uint32, g *group) []*packet.Packet {
	if !g.geomKnown {
		return nil
	}
	missing := g.k - g.nHave
	if missing == 0 {
		// Fully received off the wire: every repair on hand bought nothing.
		g.done = true
		d.RepairsWasted += uint64(g.nRep)
		return nil
	}
	if missing > g.nRep {
		return nil // not yet solvable
	}
	recovered := d.solve(id, g, missing)
	if recovered == nil {
		return nil
	}
	g.done = true
	d.RepairsUsed += uint64(missing)
	d.RepairsWasted += uint64(g.nRep - missing)
	return recovered
}

// solve reconstructs the m missing source symbols by Gaussian elimination
// over GF(2^8): each available repair j contributes the equation
// Σ_{i missing} coeff(j,i)·s_i = repair_j ⊕ Σ_{i held} coeff(j,i)·s_i.
// Returns nil (and counts a drop) if the system is singular — impossible
// for honestly-coded Cauchy/XOR symbols, reachable only via forged input —
// or if a solved symbol fails structural parsing.
func (d *Decoder) solve(id uint32, g *group, m int) []*packet.Packet {
	missing := make([]int, 0, m)
	for i := 0; i < g.k; i++ {
		if !g.have[i] {
			missing = append(missing, i)
		}
	}

	// Build one augmented row per available repair: coefficients over the
	// missing indices plus the repair folded with every held source.
	type row struct {
		co  []byte
		rhs []byte
	}
	rows := make([]row, 0, g.nRep)
	for j := 0; j < g.r; j++ {
		if !g.repHave[j] {
			continue
		}
		rhs := make([]byte, g.maxLen)
		copy(rhs, g.repairs[j])
		for i := 0; i < g.k; i++ {
			if g.have[i] {
				addScaled(rhs, g.src[i], coeff(g.scheme, j, i))
			}
		}
		co := make([]byte, m)
		for c, i := range missing {
			co[c] = coeff(g.scheme, j, i)
		}
		rows = append(rows, row{co, rhs})
	}

	// Forward elimination with partial pivoting over the byte matrix.
	for col := 0; col < m; col++ {
		piv := -1
		for r := col; r < len(rows); r++ {
			if rows[r].co[col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			d.Dropped++ // singular: forged or corrupted symbols
			return nil
		}
		rows[col], rows[piv] = rows[piv], rows[col]
		// Normalize the pivot row to a leading 1.
		if c := rows[col].co[col]; c != 1 {
			inv := gfInv(c)
			for x := col; x < m; x++ {
				rows[col].co[x] = gfMul(rows[col].co[x], inv)
			}
			scaleRow(rows[col].rhs, inv)
		}
		for r := 0; r < len(rows); r++ {
			if r == col || rows[r].co[col] == 0 {
				continue
			}
			c := rows[r].co[col]
			for x := col; x < m; x++ {
				rows[r].co[x] ^= gfMul(c, rows[col].co[x])
			}
			addScaled(rows[r].rhs, rows[col].rhs, c)
		}
	}

	out := make([]*packet.Packet, 0, m)
	for c, i := range missing {
		p, ok := parseSymbol(rows[c].rhs)
		if !ok {
			d.Dropped++
			return nil
		}
		p.HasFEC = true
		p.FECGroup = id
		p.FECIndex = uint8(i)
		out = append(out, p)
	}
	for _, p := range out {
		d.Recovered++
		d.RecoveredBytes += uint64(len(p.Payload))
	}
	return out
}

// scaleRow multiplies a byte vector by c in place.
func scaleRow(v []byte, c byte) {
	if c == 1 {
		return
	}
	lc := int(gfLog[c])
	for i, b := range v {
		if b != 0 {
			v[i] = gfExp[lc+int(gfLog[b])]
		}
	}
}
