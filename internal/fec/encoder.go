package fec

import (
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/sim"
)

// Encoder accumulates the source symbols of one FEC group and produces its
// repair symbols. It keeps r running accumulators — one per repair — so
// source packets are folded in as they are sent and never stored: group
// memory is r × max-symbol-length regardless of k.
//
// The accumulator storage is retained across groups, so a long-lived
// stream encoder settles into zero steady-state allocation on the Add
// path; only Seal allocates (the repair payloads it hands off).
type Encoder struct {
	scheme Scheme
	k, r   int
	group  uint32
	n      int // source symbols folded in so far
	maxLen int // longest serialized symbol in this group
	acc    [][]byte
	sym    []byte // serialization scratch, reused
}

// Begin starts a new group with the given identifier and geometry. Any
// unsealed previous group is discarded. Geometry must satisfy k ≥ 1,
// r ≥ 1, k+r ≤ 255 (callers go through Options.Validate / Controller).
func (e *Encoder) Begin(group uint32, scheme Scheme, k, r int) {
	e.scheme, e.k, e.r = scheme, k, r
	e.group = group
	e.n, e.maxLen = 0, 0
	if cap(e.acc) < r {
		e.acc = append(e.acc[:cap(e.acc)], make([][]byte, r-cap(e.acc))...)
	}
	e.acc = e.acc[:r]
	for j := range e.acc {
		e.acc[j] = e.acc[j][:0]
	}
}

// Group returns the current group identifier.
func (e *Encoder) Group() uint32 { return e.group }

// Len returns the number of source symbols folded into the current group.
func (e *Encoder) Len() int { return e.n }

// Full reports whether the group has reached its configured k.
func (e *Encoder) Full() bool { return e.n >= e.k }

// Add folds a stream-bearing DATA packet into the group as its next source
// symbol and returns the symbol index the packet must carry on the wire
// (packet.FECIndex). The packet is serialized header+payload; shorter
// symbols are implicitly zero-padded to the group maximum, which coding
// over GF(2^8) makes free (scaled zeros contribute nothing).
func (e *Encoder) Add(p *packet.Packet) int {
	e.sym = appendSymbol(e.sym[:0], p)
	if len(e.sym) > e.maxLen {
		e.maxLen = len(e.sym)
	}
	for j := range e.acc {
		// Grow this accumulator to the symbol length with explicit zeros
		// before folding (append may hand back dirty capacity).
		for len(e.acc[j]) < len(e.sym) {
			e.acc[j] = append(e.acc[j], 0)
		}
		addScaled(e.acc[j], e.sym, coeff(e.scheme, j, e.n))
	}
	idx := e.n
	e.n++
	return idx
}

// Seal closes the group and emits its repair packets, one per repair
// symbol, stamped with the actual group geometry (k = symbols folded in —
// a group sealed early carries its true length, and the length-independent
// Cauchy coefficients keep the code consistent). When the group sealed
// early the repair count is scaled down proportionally so a short tail
// group cannot blow the overhead cap. An empty group emits nothing.
// After Seal the encoder is empty until the next Begin.
func (e *Encoder) Seal(now sim.Time, connID uint32, emit func(*packet.Packet)) {
	if e.n == 0 {
		return
	}
	r := e.r
	if e.n < e.k {
		// Proportional repair budget for the short group, at least one.
		r = (e.n*e.r + e.k - 1) / e.k
		if r < 1 {
			r = 1
		}
	}
	for j := 0; j < r; j++ {
		emit(&packet.Packet{
			Type:           packet.TypeRepair,
			ConnID:         connID,
			SentAt:         now,
			FECGroup:       e.group,
			FECGroupLen:    uint8(e.n),
			FECRepairCount: uint8(r),
			FECIndex:       uint8(j),
			FECScheme:      uint8(e.scheme),
			Payload:        append([]byte(nil), e.acc[j][:e.maxLen]...),
		})
	}
	e.n, e.maxLen = 0, 0
	for j := range e.acc {
		e.acc[j] = e.acc[j][:0]
	}
}
