package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/cc"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

func init() {
	register("fig5a", runFig5a)
	register("fig5b", runFig5b)
}

// runFig5a reproduces Figure 5(a): the CDF of data blocked in the receive
// buffer (head-of-line blocking) with and without loss-event IACKs, over
// randomly sampled lossy paths (ρ ∈ [0,3%], RTT ∈ [1,200] ms). Both arms
// use a fixed send rate so the inflow is identical and the blocked volume
// purely reflects hole dwell time.
func runFig5a(opt Options) (*Result, error) {
	samples := opt.count(12)
	dur := opt.dur(20 * sim.Second)
	rng := sim.NewLoop(opt.seed()).Rand()

	run := func(disable bool, loss float64, owd sim.Time, seed int64) *stats.Summary {
		loop := sim.NewLoop(seed)
		path, _, _ := topo.WANPath(loop, topo.WANConfig{
			RateBps: 50e6, OWD: owd, DataLoss: loss, QueueBytes: 4 << 20,
		})
		cfg := transport.Config{Mode: transport.ModeTACK, CC: "static",
			DisableIACK: disable, RecvBuf: 256 << 20}
		flow, err := topo.NewFlow(loop, cfg, path)
		if err != nil {
			panic(err)
		}
		flow.Start()
		flow.Sender.Controller().(*cc.Static).SetRate(30e6)
		loop.RunUntil(dur)
		return flow.Receiver.BlockedSamples
	}

	with := stats.NewSummary()
	without := stats.NewSummary()
	for i := 0; i < samples; i++ {
		loss := rng.Float64() * 0.03
		owd := sim.Time(1+rng.Intn(100)) * sim.Millisecond
		seed := rng.Int63()
		for _, v := range run(false, loss, owd, seed).Values() {
			with.Add(v)
		}
		for _, v := range run(true, loss, owd, seed).Values() {
			without.Add(v)
		}
	}
	tbl := stats.NewTable("Percentile", "With IACK (bytes)", "Without IACK (bytes)")
	for _, p := range []float64{50, 75, 90, 99} {
		tbl.AddRow(fmt.Sprintf("P%.0f", p),
			fmt.Sprintf("%.0f", with.Percentile(p)),
			fmt.Sprintf("%.0f", without.Percentile(p)))
	}
	notes := fmt.Sprintf("Paper shape: the with-IACK CDF sits far left of without-IACK. Medians: %.0f vs %.0f bytes.",
		with.Median(), without.Median())
	return &Result{ID: "fig5a", Title: "IACK reduces receive-buffer memory pressure (HoLB)", Table: tbl.String(), Notes: notes}, nil
}

// runFig5b reproduces Figure 5(b): bandwidth utilization on a
// bidirectionally lossy path (RTT 200 ms, ρ = 1% data loss) as the
// ACK-path loss rate ρ′ sweeps 0.2–10%, for TACK-rich, TACK-poor and the
// legacy TCP BBR baseline (SACK).
func runFig5b(opt Options) (*Result, error) {
	const linkBps = 50e6
	dur := opt.dur(30 * sim.Second)
	ackLosses := []float64{0.002, 0.01, 0.05, 0.10}
	if opt.Quick {
		ackLosses = []float64{0.002, 0.10}
	}
	wan := func(ackLoss float64) topo.WANConfig {
		return topo.WANConfig{RateBps: linkBps, OWD: 100 * sim.Millisecond,
			DataLoss: 0.01, AckLoss: ackLoss}
	}
	seeds := opt.count(3)
	warmup := dur / 4
	// steadyUtil measures goodput after a warmup quarter (startup
	// convergence is not what Figure 5(b) studies), averaged over seeds.
	steadyUtil := func(al float64, cfg transport.Config) (float64, error) {
		sum := 0.0
		for i := 0; i < seeds; i++ {
			loop := sim.NewLoop(opt.seed() + int64(i*1000))
			path, _, _ := topo.WANPath(loop, wan(al))
			flow, err := topo.NewFlow(loop, cfg, path)
			if err != nil {
				return 0, err
			}
			flow.Start()
			loop.RunUntil(warmup)
			base := flow.Receiver.Delivered()
			loop.RunUntil(dur)
			sum += float64(flow.Receiver.Delivered()-base) * 8 / (dur - warmup).Seconds() / linkBps
		}
		return sum / float64(seeds), nil
	}
	tbl := stats.NewTable("ACK loss", "TACK-rich", "TACK-poor", "TCP BBR")
	var richAt10, poorAt10, bbrAt10 float64
	for _, al := range ackLosses {
		rich := tackConfig()
		poor := tackConfig()
		poor.RichTACK = false
		bbr := legacyBBRConfig()
		uRich, err := steadyUtil(al, rich)
		if err != nil {
			return nil, err
		}
		uPoor, err := steadyUtil(al, poor)
		if err != nil {
			return nil, err
		}
		uBBR, err := steadyUtil(al, bbr)
		if err != nil {
			return nil, err
		}
		if al == 0.10 {
			richAt10, poorAt10, bbrAt10 = uRich, uPoor, uBBR
		}
		tbl.AddRow(stats.Pct(al), stats.Pct(uRich), stats.Pct(uPoor), stats.Pct(uBBR))
	}
	notes := fmt.Sprintf(
		"Paper shape: TACK-rich utilization barely degrades with ACK loss (paper: 92.7%%→90.8%%); TACK-poor and BBR fall off. At 10%%: rich %.0f%%, poor %.0f%%, bbr %.0f%%.",
		richAt10*100, poorAt10*100, bbrAt10*100)
	return &Result{ID: "fig5b", Title: "Rich TACKs keep utilization under bidirectional loss (RTT 200 ms, rho=1%)", Table: tbl.String(), Notes: notes}, nil
}
