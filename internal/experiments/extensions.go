package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

func init() {
	register("ext-split", runExtSplit)
	register("ext-reorder", runExtReorder)
	register("ext-pacing", runExtPacing)
}

// runExtSplit explores the §7 TCP-splitting discussion: an end-to-end
// TCP-TACK connection over WLAN+WAN versus a split connection terminated at
// the AP, reporting goodput and the proxy's unacknowledged backlog (the
// reliability cost of splitting).
func runExtSplit(opt Options) (*Result, error) {
	dur := opt.dur(20 * sim.Second)
	wlan := topo.WLANConfig{Standard: phy.Std80211n}
	wan := topo.WANConfig{RateBps: 500e6, OWD: 100 * sim.Millisecond}

	e2e, err := runHybridFlow(opt.seed(), wlan, wan, tackConfig(), dur)
	if err != nil {
		return nil, err
	}

	loop := sim.NewLoop(opt.seed())
	sf, err := topo.NewSplitFlow(loop, tackConfig(), tackConfig(), wlan, wan)
	if err != nil {
		return nil, err
	}
	sf.Start()
	loop.RunUntil(dur)
	splitGoodput := float64(sf.Server.Delivered()) * 8 / dur.Seconds()
	clientMin, _ := sf.Client.RTTMin()

	tbl := stats.NewTable("Deployment", "Goodput Mbit/s", "Client RTTmin", "Proxy backlog (bytes)")
	tbl.AddRow("end-to-end TACK", stats.Mbps(e2e.GoodputBps), "(end-to-end)", "0")
	tbl.AddRow("split at AP", stats.Mbps(splitGoodput), clientMin.String(),
		fmt.Sprintf("%d", sf.ProxyBacklog()))
	notes := "§7 discussion: splitting shortens the client's control loop (local RTTmin) at the cost of proxy-held data that is not end-to-end acknowledged."
	return &Result{ID: "ext-split", Title: "Extension: TCP splitting at the access point (§7)", Table: tbl.String(), Notes: notes}, nil
}

// runExtReorder reproduces the §7 reordering discussion: spurious
// retransmissions versus the reordering delay, with the fixed RTTmin/4
// settle delay and with the adaptive variant (the paper's future work).
func runExtReorder(opt Options) (*Result, error) {
	dur := opt.dur(30 * sim.Second)
	tbl := stats.NewTable("Reorder delay", "fixed-settle retx", "adaptive retx", "fixed Mbit/s", "adaptive Mbit/s")
	for _, d := range []sim.Time{2 * sim.Millisecond, 8 * sim.Millisecond, 15 * sim.Millisecond} {
		fr, fg := runReorderFlow(opt.seed(), false, d, dur)
		ar, ag := runReorderFlow(opt.seed(), true, d, dur)
		tbl.AddRow(d.String(), fmt.Sprintf("%d", fr), fmt.Sprintf("%d", ar),
			stats.Mbps(fg), stats.Mbps(ag))
	}
	notes := "§7: reordering within the settle delay is free; beyond it the fixed delay retransmits spuriously, while the adaptive delay (the paper's future work) backs off when duplicates appear."
	return &Result{ID: "ext-reorder", Title: "Extension: reordering tolerance and adaptive IACK delay (§7)", Table: tbl.String(), Notes: notes}, nil
}

// runReorderFlow measures one flow over a reordering path.
func runReorderFlow(seed int64, adaptive bool, reorderDelay sim.Time, dur sim.Time) (retx int, goodput float64) {
	loop := sim.NewLoop(seed)
	path, _, _ := topo.WANPath(loop, topo.WANConfig{
		RateBps: 50e6, OWD: 20 * sim.Millisecond, QueueBytes: 4 << 20,
		ReorderRate: 0.05, ReorderDelay: reorderDelay,
	})
	cfg := tackConfig()
	cfg.AdaptiveSettle = adaptive
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		panic(err)
	}
	flow.Start()
	loop.RunUntil(dur)
	return flow.Sender.Stats.Retransmits, float64(flow.Receiver.Delivered()) * 8 / dur.Seconds()
}

// runExtPacing is the ablation bench for the paper's §5.3 send-pattern
// claim: pacing versus ACK-clocked bursts on a shallow-buffered path.
func runExtPacing(opt Options) (*Result, error) {
	dur := opt.dur(20 * sim.Second)
	run := func(disablePacing bool) (flowMetrics, error) {
		cfg := tackConfig()
		cfg.DisablePacing = disablePacing
		m, _, err := runWANFlow(opt.seed(), topo.WANConfig{
			RateBps: 50e6, OWD: 50 * sim.Millisecond, QueueBytes: 128 << 10,
		}, cfg, dur)
		return m, err
	}
	paced, err := run(false)
	if err != nil {
		return nil, err
	}
	burst, err := run(true)
	if err != nil {
		return nil, err
	}
	lossRate := func(m flowMetrics) float64 {
		if m.DataPackets == 0 {
			return 0
		}
		return float64(m.Retransmits) / float64(m.DataPackets)
	}
	tbl := stats.NewTable("Send pattern", "Goodput Mbit/s", "Retransmit rate", "95th pct OWD")
	tbl.AddRow("paced", stats.Mbps(paced.GoodputBps), stats.Pct(lossRate(paced)), paced.OWD95.String())
	tbl.AddRow("ACK-clocked bursts", stats.Mbps(burst.GoodputBps), stats.Pct(lossRate(burst)), burst.OWD95.String())
	notes := "§5.3: with TACK's low ACK frequency, each ACK releases a large burst; pacing smooths it. Expect the burst arm to lose more and queue deeper on a shallow buffer."
	return &Result{ID: "ext-pacing", Title: "Extension: pacing vs ACK-clocked bursts (§5.3 ablation)", Table: tbl.String(), Notes: notes}, nil
}

var _ = transport.Config{}
