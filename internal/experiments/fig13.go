package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

func init() {
	register("fig13", runFig13)
}

// fig13Case is one row of the paper's Figure 13 hybrid WLAN+WAN matrix.
type fig13Case struct {
	id      int
	std     phy.Standard
	wlanBps float64
	wanRTT  sim.Time
	wanBps  float64
	loss    float64 // ρ = ρ′
}

// runFig13 reproduces Figure 13: performance over combined WLAN + WAN
// links (topology of Figure 12). Four cases: {54,300} Mbit/s WLAN ×
// {20,200} ms WAN RTT × {clean, (1%,1%)} loss; reporting goodput, data
// packet count, and ACK count for TCP BBR and TCP-TACK.
func runFig13(opt Options) (*Result, error) {
	dur := opt.dur(40 * sim.Second)
	cases := []fig13Case{
		{1, phy.Std80211g, 54e6, 20 * sim.Millisecond, 100e6, 0},
		{2, phy.Std80211g, 54e6, 20 * sim.Millisecond, 100e6, 0.01},
		{3, phy.Std80211n, 300e6, 200 * sim.Millisecond, 500e6, 0},
		{4, phy.Std80211n, 300e6, 200 * sim.Millisecond, 500e6, 0.01},
	}
	if opt.Quick {
		cases = cases[:2]
	}
	tbl := stats.NewTable("Case", "WLAN", "WAN", "(rho,rho')",
		"BBR Mbit/s", "BBR data#", "BBR ACK#",
		"TACK Mbit/s", "TACK data#", "TACK ACK#")
	seeds := opt.count(3)
	warmup := dur / 4
	// One row cell set, averaged over seeds with the startup quarter
	// excluded from the goodput (the table studies steady behaviour).
	measure := func(wlan topo.WLANConfig, wan topo.WANConfig, cfg transport.Config) (goodput float64, dataPkts, acks int, err error) {
		for i := 0; i < seeds; i++ {
			loop := sim.NewLoop(opt.seed() + int64(i*1000))
			path, _, _, _ := topo.HybridPath(loop, wlan, wan)
			flow, ferr := topo.NewFlow(loop, cfg, path)
			if ferr != nil {
				return 0, 0, 0, ferr
			}
			flow.Start()
			loop.RunUntil(warmup)
			base := flow.Receiver.Delivered()
			loop.RunUntil(dur)
			goodput += float64(flow.Receiver.Delivered()-base) * 8 / (dur - warmup).Seconds()
			dataPkts += flow.Sender.Stats.DataPackets
			acks += flow.Receiver.Stats.AcksSent()
		}
		return goodput / float64(seeds), dataPkts / seeds, acks / seeds, nil
	}
	type rowStat struct{ tackAcks int }
	var rows []rowStat
	for _, c := range cases {
		wlan := topo.WLANConfig{Standard: c.std}
		wan := topo.WANConfig{RateBps: c.wanBps, OWD: c.wanRTT / 2,
			DataLoss: c.loss, AckLoss: c.loss}
		bbrG, bbrData, bbrAcks, err := measure(wlan, wan, legacyBBRConfig())
		if err != nil {
			return nil, err
		}
		tackG, tackData, tackAcks, err := measure(wlan, wan, tackConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowStat{tackAcks: tackAcks})
		tbl.AddRow(fmt.Sprintf("%d", c.id),
			fmt.Sprintf("%s", c.std),
			fmt.Sprintf("%v/%.0fM", c.wanRTT, c.wanBps/1e6),
			fmt.Sprintf("(%.0f%%,%.0f%%)", c.loss*100, c.loss*100),
			stats.Mbps(bbrG), fmt.Sprintf("%d", bbrData), fmt.Sprintf("%d", bbrAcks),
			stats.Mbps(tackG), fmt.Sprintf("%d", tackData), fmt.Sprintf("%d", tackAcks))
	}
	notes := "Paper shape: TACK wins goodput in the clean cases and case 2; its ACK count in case 1 (20 ms RTT) is ~10x case 3 (200 ms RTT) per Eq. 3, and the lossy cases add loss-event IACKs on the return path. Known gap: in case 4 (1% loss at 200 ms) our receiver-coordinated BBR discovers bandwidth more slowly than the sender-based baseline, so TACK trails there (the paper's stack wins all four)."
	if len(rows) == 4 {
		notes += fmt.Sprintf(" Here: case1/case3 TACK ACK ratio = %.1fx.",
			float64(rows[0].tackAcks)/float64(rows[2].tackAcks))
	}
	return &Result{ID: "fig13", Title: "Hybrid WLAN+WAN performance (Figure 12 topology)", Table: tbl.String(), Notes: notes}, nil
}
