package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
)

func init() {
	register("fig6a", runFig6a)
	register("fig6b", runFig6b)
}

// runFig6a reproduces Figure 6(a): the minimum-RTT microbenchmark. A flow
// runs across an emulated path with a fixed 100 ms bidirectional latency;
// the sender tracks both the legacy sampled estimate and the advanced
// (Δt-corrected, min-OWD-echo) estimate. The paper reports the sampled
// estimate 8–18% above the true floor while the advanced one tracks it.
func runFig6a(opt Options) (*Result, error) {
	dur := opt.dur(25 * sim.Second)
	loop := sim.NewLoop(opt.seed())
	// Paper setup: two Wi-Fi endpoints with an emulator forwarding and a
	// fixed 100 ms bidirectional latency — the WLAN hop supplies the
	// queueing/airtime jitter that separates the estimators.
	path, _, _, _ := topo.HybridPath(loop,
		topo.WLANConfig{Standard: phy.Std80211g},
		topo.WANConfig{RateBps: 200e6, OWD: 50 * sim.Millisecond})
	flow, err := topo.NewFlow(loop, tackConfig(), path)
	if err != nil {
		return nil, err
	}
	flow.Start()
	tbl := stats.NewTable("t", "sampled RTTmin", "advanced RTTmin")
	var lastSampled, lastAdvanced sim.Time
	step := dur / 5
	for at := step; at <= dur; at += step {
		loop.RunUntil(at)
		s, _ := flow.Sender.SampledRTTMin()
		a, _ := flow.Sender.AdvancedRTTMin()
		lastSampled, lastAdvanced = s, a
		tbl.AddRow(at.String(), s.String(), a.String())
	}
	bias := 0.0
	if lastAdvanced > 0 {
		bias = float64(lastSampled-lastAdvanced) / float64(lastAdvanced) * 100
	}
	notes := fmt.Sprintf("True floor 100 ms (+ serialization). Final sampled-vs-advanced bias: %.1f%% (paper: 8–18%%).", bias)
	return &Result{ID: "fig6a", Title: "Round-trip timing microbenchmark (fixed 100 ms latency)", Table: tbl.String(), Notes: notes}, nil
}

// runFig6b reproduces Figure 6(b): the end-to-end effect of the advanced
// timing. Two identical TACK flows run over a queue-prone path; one drives
// its controller from the legacy sampled estimator ("before"), the other
// from the advanced estimator ("after"). The paper reports ~20% lower
// 95th-percentile OWD and ~54% less loss after the change.
func runFig6b(opt Options) (*Result, error) {
	dur := opt.dur(30 * sim.Second)
	wlan := topo.WLANConfig{Standard: phy.Std80211g}
	wan := topo.WANConfig{RateBps: 200e6, OWD: 50 * sim.Millisecond}
	run := func(legacyTiming bool) (flowMetrics, error) {
		cfg := tackConfig()
		cfg.LegacyTiming = legacyTiming
		m, err := runHybridFlow(opt.seed(), wlan, wan, cfg, dur)
		return m, err
	}
	before, err := run(true)
	if err != nil {
		return nil, err
	}
	after, err := run(false)
	if err != nil {
		return nil, err
	}
	lossRate := func(m flowMetrics) float64 {
		if m.DataPackets == 0 {
			return 0
		}
		return float64(m.Retransmits) / float64(m.DataPackets)
	}
	tbl := stats.NewTable("Timing", "95th pct OWD", "Retransmit rate", "Goodput Mbit/s")
	tbl.AddRow("sampling (before)", before.OWD95.String(), stats.Pct(lossRate(before)), stats.Mbps(before.GoodputBps))
	tbl.AddRow("advanced (after)", after.OWD95.String(), stats.Pct(lossRate(after)), stats.Mbps(after.GoodputBps))
	owdDrop := 0.0
	if before.OWD95 > 0 {
		owdDrop = (1 - float64(after.OWD95)/float64(before.OWD95)) * 100
	}
	notes := fmt.Sprintf("Paper: 20%% lower P95 OWD and 54%% less loss, without sacrificing throughput. Here: OWD95 down %.0f%%.", owdDrop)
	return &Result{ID: "fig6b", Title: "Advanced round-trip timing lowers latency and loss", Table: tbl.String(), Notes: notes}, nil
}
