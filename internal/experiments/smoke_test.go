package experiments

import "testing"

// TestAllExperimentsQuick smoke-runs every registered experiment in quick
// mode, asserting they produce non-empty tables without error.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if r.Table == "" {
				t.Fatal("empty table")
			}
			t.Log("\n" + r.String())
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown id should error")
	}
}
