package experiments

import (
	"strings"
	"testing"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
)

func TestIDsCoverEveryPaperFigure(t *testing.T) {
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	want := []string{
		"fig1", "fig3", "fig5a", "fig5b", "fig6a", "fig6b", "fig8",
		"fig9a", "fig9b", "fig10a", "fig10b", "fig11", "fig13", "fig14",
		"fig15", "fig16", "fig17",
		"ext-split", "ext-reorder", "ext-pacing",
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registered %d experiments, expected %d: %v", len(have), len(want), IDs())
	}
}

func TestUDPToolDeterministic(t *testing.T) {
	cfg := udpToolConfig{
		Std: phy.Std80211n, FrameSize: 1518, AckSize: 64,
		AckEveryL: 2, Dur: sim.Second, Seed: 5,
	}
	a := runUDPTool(cfg)
	b := runUDPTool(cfg)
	if a != b {
		t.Fatalf("udp tool not deterministic: %+v vs %+v", a, b)
	}
	if a.DataFrames == 0 || a.AckFrames == 0 {
		t.Fatalf("no traffic: %+v", a)
	}
}

func TestUDPToolSaturatedExceedsCBR(t *testing.T) {
	base := udpToolConfig{Std: phy.Std80211n, FrameSize: 1518, AckSize: 64, Dur: sim.Second, Seed: 5}
	cbr := base
	cbr.SendBps = 50e6
	sat := base // SendBps 0 saturates
	rCBR := runUDPTool(cbr)
	rSat := runUDPTool(sat)
	if rCBR.DataBps < 45e6 || rCBR.DataBps > 52e6 {
		t.Fatalf("CBR achieved %.1f Mbit/s, want ~50", rCBR.DataBps/1e6)
	}
	if rSat.DataBps < 3*rCBR.DataBps {
		t.Fatalf("saturated (%.1f) should far exceed 50 Mbit/s CBR", rSat.DataBps/1e6)
	}
}

func TestUDPToolPeriodicAckMode(t *testing.T) {
	cfg := udpToolConfig{
		Std: phy.Std80211n, FrameSize: 1518, AckSize: 64,
		AckPeriod: 20 * sim.Millisecond, Dur: sim.Second, Seed: 5,
	}
	r := runUDPTool(cfg)
	// ~50 acks expected from the periodic generator.
	if r.AckFrames < 40 || r.AckFrames > 60 {
		t.Fatalf("periodic acks = %d, want ~50", r.AckFrames)
	}
}

func TestOptionsScaling(t *testing.T) {
	q := Options{Quick: true}
	if q.dur(8*sim.Second) != 2*sim.Second {
		t.Fatalf("quick dur = %v", q.dur(8*sim.Second))
	}
	if q.count(12) != 3 {
		t.Fatalf("quick count = %d", q.count(12))
	}
	if q.count(2) != 1 {
		t.Fatal("quick count must floor at 1")
	}
	full := Options{}
	if full.dur(8*sim.Second) != 8*sim.Second || full.count(12) != 12 {
		t.Fatal("full options must not scale")
	}
	if (Options{}).seed() != 1 || (Options{Seed: 9}).seed() != 9 {
		t.Fatal("seed defaulting broken")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Table: "body\n", Notes: "n"}
	out := r.String()
	for _, frag := range []string{"== x: T ==", "body", "n"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in %q", frag, out)
		}
	}
}
