package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/pantheon"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

func init() {
	register("fig14", runFig14)
	register("fig15", runFig15)
}

// runFig14 reproduces Figure 14: the Pantheon-style horizontal evaluation —
// per-scenario power-metric rankings of the implemented scheme population
// over a randomized WAN ensemble.
func runFig14(opt Options) (*Result, error) {
	n := opt.count(16)
	dur := opt.dur(16 * sim.Second)
	scenarios := pantheon.SampleScenarios(n, opt.seed(), dur)
	schemes := pantheon.DefaultSchemes()
	rankings, _ := pantheon.Evaluate(scenarios, schemes)
	tbl := stats.NewTable("Rank", "Scheme", "mean rank", "median", "best", "worst")
	for i, r := range rankings {
		tbl.AddRow(fmt.Sprintf("%d", i+1), r.Scheme,
			fmt.Sprintf("%.2f", r.Mean),
			fmt.Sprintf("%.0f", r.Ranks.Median()),
			fmt.Sprintf("%.0f", r.Ranks.Min()),
			fmt.Sprintf("%.0f", r.Ranks.Max()))
	}
	pos := 0
	for i, r := range rankings {
		if r.Scheme == "tcp-tack" {
			pos = i + 1
		}
	}
	notes := fmt.Sprintf("Paper shape: TCP-TACK ranks among the top schemes (near TCP Vegas) under the power metric log(throughput/OWD95). Here TCP-TACK placed #%d of %d.", pos, len(rankings))
	return &Result{ID: "fig14", Title: "Pantheon-style WAN ranking (Kleinrock power metric)", Table: tbl.String(), Notes: notes}, nil
}

// runFig15 reproduces Figure 15: TCP friendliness. Two flows share a
// randomized bottleneck for 60 seconds; we report each flow's mean ratio of
// achieved throughput to its fair share, for the pairings BBR/CUBIC,
// TACK/CUBIC and TACK/BBR.
func runFig15(opt Options) (*Result, error) {
	pairsPerCell := opt.count(8)
	dur := opt.dur(60 * sim.Second)
	rng := sim.NewLoop(opt.seed()).Rand()

	type pairing struct {
		name   string
		a, b   func() transport.Config
		labelA string
		labelB string
	}
	legacy := func(ccName string) func() transport.Config {
		return func() transport.Config {
			return transport.Config{Mode: transport.ModeLegacy, CC: ccName}
		}
	}
	pairings := []pairing{
		{"BBR vs CUBIC", legacy("bbr"), legacy("cubic"), "TCP BBR", "TCP CUBIC"},
		{"TACK vs CUBIC", tackConfig2, legacy("cubic"), "TCP-TACK", "TCP CUBIC"},
		{"TACK vs BBR", tackConfig2, legacy("bbr"), "TCP-TACK", "TCP BBR"},
	}
	tbl := stats.NewTable("Pairing", "flow A", "A ratio", "flow B", "B ratio")
	var tackVsCubic, bbrVsCubic float64
	for _, p := range pairings {
		ra, rb := stats.NewSummary(), stats.NewSummary()
		for i := 0; i < pairsPerCell; i++ {
			bw := (1 + rng.Float64()*99) * 1e6
			owd := sim.Time(1+rng.Intn(100)) * sim.Millisecond
			queue := int((0.5 + rng.Float64()*4.5) * bw / 8 * (2 * owd).Seconds())
			if queue < 32<<10 {
				queue = 32 << 10
			}
			seed := rng.Int63()
			ga, gb := runSharedBottleneck(seed, bw, owd, queue, p.a(), p.b(), dur)
			fair := bw / 2
			ra.Add(ga / fair)
			rb.Add(gb / fair)
		}
		tbl.AddRow(p.name, p.labelA, fmt.Sprintf("%.2f", ra.Mean()), p.labelB, fmt.Sprintf("%.2f", rb.Mean()))
		if p.name == "TACK vs CUBIC" {
			tackVsCubic = ra.Mean()
		}
		if p.name == "BBR vs CUBIC" {
			bbrVsCubic = ra.Mean()
		}
	}
	notes := fmt.Sprintf("Paper shape: the TACK-based receiver-coordinated BBR shows the same friendliness profile as standard BBR (ratio vs CUBIC: BBR %.2f, TACK %.2f here) — the ACK mechanism does not change controller aggressiveness.", bbrVsCubic, tackVsCubic)
	return &Result{ID: "fig15", Title: "TCP friendliness: throughput vs ideal fair share", Table: tbl.String(), Notes: notes}, nil
}

// tackConfig2 mirrors tackConfig as a plain function value.
func tackConfig2() transport.Config { return tackConfig() }

// runSharedBottleneck runs two flows (configs a at ConnID 1, b at ConnID 2)
// over one shared WAN bottleneck and returns their goodputs.
func runSharedBottleneck(seed int64, bw float64, owd sim.Time, queue int, ca, cb transport.Config, dur sim.Time) (float64, float64) {
	loop := sim.NewLoop(seed)
	path, _, _ := topo.WANPath(loop, topo.WANConfig{RateBps: bw, OWD: owd, QueueBytes: queue})
	ca.ConnID = 1
	cb.ConnID = 2
	fa, err := topo.NewFlow(loop, ca, path)
	if err != nil {
		panic(err)
	}
	fb, err := topo.NewFlow(loop, cb, path)
	if err != nil {
		panic(err)
	}
	fa.Start()
	// Stagger the second flow slightly (real concurrent starts).
	loop.After(100*sim.Millisecond, func() { fb.Start() })
	loop.RunUntil(dur)
	return float64(fa.Receiver.Delivered()) * 8 / dur.Seconds(),
		float64(fb.Receiver.Delivered()) * 8 / dur.Seconds()
}
