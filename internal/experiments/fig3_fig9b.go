package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
)

func init() {
	register("fig3", runFig3)
	register("fig9b", runFig9b)
}

// runFig3 reproduces Figure 3: data-path and ACK-path throughput as the
// data:ACK ratio varies from 1:1 to 16:1 over 802.11n, using the UDP tool
// (100 Mbit/s CBR of 1518-byte frames, 64-byte acks).
func runFig3(opt Options) (*Result, error) {
	tbl := stats.NewTable("data:ACKs", "Data Mbit/s", "ACK Mbit/s", "Collisions")
	dur := opt.dur(8 * sim.Second)
	var first, last udpToolResult
	for _, l := range []int{16, 8, 4, 2, 1} {
		// The paper offers 100 Mbit/s against its testbed's ~110 Mbit/s
		// effective ceiling; our calibrated A-MPDU ceiling is ~194 Mbit/s,
		// so we saturate the sender (SendBps=0) to keep the medium in the
		// same contention regime.
		r := runUDPTool(udpToolConfig{
			Std:       phy.Std80211n,
			FrameSize: 1518,
			AckSize:   64,
			SendBps:   0,
			AckEveryL: l,
			Dur:       dur,
			Seed:      opt.seed(),
		})
		if l == 16 {
			first = r
		}
		if l == 1 {
			last = r
		}
		tbl.AddRow(fmt.Sprintf("%d:1", l), stats.Mbps(r.DataBps), fmt.Sprintf("%.3f", r.AckBps/1e6),
			fmt.Sprintf("%d", r.Collisions))
	}
	notes := fmt.Sprintf("Shape check: data throughput declines monotonically as ACKs thicken (16:1 %.1f -> 1:1 %.1f Mbit/s) while the ACK path carries only a few Mbit/s — the decline is medium-acquisition overhead, not ACK bytes.",
		first.DataBps/1e6, last.DataBps/1e6)
	return &Result{ID: "fig3", Title: "Contention between data packets and ACKs (802.11n)", Table: tbl.String(), Notes: notes}, nil
}

// runFig9b reproduces Figure 9(b): the *ideal* goodput trend of ACK
// thinning — TCP L=1…16 emulated with the UDP tool (transport control not
// disturbed), TACK(L=2) as periodic acking at β/RTTmin with RTT = 80 ms,
// against the UDP baseline (no ACKs at all) and the PHY capacity.
func runFig9b(opt Options) (*Result, error) {
	const rtt = 80 * sim.Millisecond
	dur := opt.dur(8 * sim.Second)
	std := phy.Std80211n
	tbl := stats.NewTable("Scheme", "Ideal goodput Mbit/s")
	run := func(l int, period sim.Time) float64 {
		r := runUDPTool(udpToolConfig{
			Std: std, FrameSize: 1518, AckSize: 64,
			AckEveryL: l, AckPeriod: period,
			Dur: dur, Seed: opt.seed(),
		})
		return r.DataBps
	}
	var tcp1, tack, baseline float64
	for _, l := range []int{1, 2, 4, 8, 16} {
		g := run(l, 0)
		if l == 1 {
			tcp1 = g
		}
		tbl.AddRow(fmt.Sprintf("TCP (L=%d)", l), stats.Mbps(g))
	}
	// TACK at 300 Mbit/s-class rates is periodic: β/RTTmin = 50 Hz.
	tack = run(0, rtt/4)
	tbl.AddRow("TACK (L=2)", stats.Mbps(tack))
	baseline = run(0, 0)
	tbl.AddRow("UDP Baseline", stats.Mbps(baseline))
	tbl.AddRow("PHY Capacity", stats.Mbps(phy.Get(std).DataRate))
	notes := fmt.Sprintf("Shape check: goodput rises monotonically with thinning; TACK (%.1f) approaches the UDP baseline (%.1f), far above per-packet TCP (%.1f).",
		tack/1e6, baseline/1e6, tcp1/1e6)
	return &Result{ID: "fig9b", Title: "Ideal goodput trend of ACK thinning (802.11n, RTT 80 ms)", Table: tbl.String(), Notes: notes}, nil
}
