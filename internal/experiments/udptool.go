package experiments

import (
	"github.com/tacktp/tack/internal/mac"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
)

// udpToolResult is one run of the paper's UDP-based measurement tool
// (§3.2, "ackemu"): a sender blasting fixed-size frames with the receiver
// answering one small frame per L data frames.
type udpToolResult struct {
	DataBps    float64
	AckBps     float64
	DataFrames int
	AckFrames  int
	Collisions int
}

// udpToolConfig parameterizes the tool.
type udpToolConfig struct {
	Std       phy.Standard
	FrameSize int      // data frame size (paper: 1518)
	AckSize   int      // ack frame size (paper: 64)
	SendBps   float64  // offered data rate; <=0 saturates
	AckEveryL int      // one ack per L data frames; 0 disables acks
	AckPeriod sim.Time // alternatively, one ack per period (periodic mode)
	Dur       sim.Time
	Seed      int64
}

// runUDPTool emulates the tool over the DCF simulator.
func runUDPTool(cfg udpToolConfig) udpToolResult {
	loop := sim.NewLoop(cfg.Seed)
	m := mac.NewMedium(loop, phy.Get(cfg.Std))
	snd := m.AddStation("data", 512)
	rcv := m.AddStation("ack", 512)

	var res udpToolResult
	pending := 0
	rcv.Receive = func(f *mac.Frame) {
		res.DataFrames++
		if cfg.AckEveryL > 0 {
			pending++
			for pending >= cfg.AckEveryL {
				pending -= cfg.AckEveryL
				rcv.Send(snd, cfg.AckSize, nil)
			}
		}
	}
	snd.Receive = func(f *mac.Frame) { res.AckFrames++ }

	if cfg.AckPeriod > 0 {
		var tick func()
		tick = func() {
			rcv.Send(snd, cfg.AckSize, nil)
			loop.After(cfg.AckPeriod, tick)
		}
		loop.After(cfg.AckPeriod, tick)
	}

	if cfg.SendBps > 0 {
		// CBR source.
		interval := sim.Time(float64(cfg.FrameSize*8) / cfg.SendBps * 1e9)
		var gen func()
		gen = func() {
			snd.Send(rcv, cfg.FrameSize, nil)
			loop.After(interval, gen)
		}
		loop.After(0, gen)
	} else {
		// Saturated source: keep the queue topped up.
		var refill func()
		refill = func() {
			for snd.QueueLen() < 64 {
				snd.Send(rcv, cfg.FrameSize, nil)
			}
			loop.After(sim.Millisecond, refill)
		}
		loop.After(0, refill)
	}

	loop.RunUntil(cfg.Dur)
	res.DataBps = float64(res.DataFrames) * float64(cfg.FrameSize) * 8 / cfg.Dur.Seconds()
	res.AckBps = float64(res.AckFrames) * float64(cfg.AckSize) * 8 / cfg.Dur.Seconds()
	res.Collisions = snd.Stats.Collisions + rcv.Stats.Collisions
	return res
}
