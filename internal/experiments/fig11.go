package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/mac"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
	"github.com/tacktp/tack/internal/video"
)

func init() {
	register("fig11", runFig11)
}

// miracastResult is one scheme's outcome in the projection A/B test.
type miracastResult struct {
	Rebuffer    float64 // fraction of session time stalled
	Macroblocks float64 // events per 30 min
}

// miracastWLAN builds the shared noisy 802.11n medium used by all schemes:
// PER models the in-room interference the paper's public-space deployment
// experienced.
const (
	miracastPER     = 0.06
	miracastBitrate = 55e6 // high-resolution projection stream
	miracastFPS     = 60
	// miracastCrossBps saturates part of the channel, modelling the paper's
	// public room ("over 10 additional APs and over 100 wireless users").
	miracastCrossBps = 60e6
)

// addMiracastCross attaches a pair of background stations contending for
// the same medium at a constant offered load.
func addMiracastCross(loop *sim.Loop, m *mac.Medium) {
	a := m.AddStation("bg-src", 256)
	b := m.AddStation("bg-dst", 256)
	b.Receive = func(*mac.Frame) {}
	bits := float64(1518 * 8)
	interval := sim.Time(bits / miracastCrossBps * 1e9)
	var gen func()
	gen = func() {
		a.Send(b, 1518, nil)
		loop.After(interval, gen)
	}
	loop.After(0, gen)
}

// runMiracastReliable streams the video over a reliable transport; a frame
// plays once all of its bytes are delivered in order.
func runMiracastReliable(seed int64, cfg transport.Config, dur sim.Time) miracastResult {
	loop := sim.NewLoop(seed)
	path, medium := topo.WLANPath(loop, topo.WLANConfig{Standard: phy.Std80211n, PER: miracastPER})
	addMiracastCross(loop, medium)
	cfg.AppPaced = true
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		panic(err)
	}
	flow.Start()

	src := video.NewSource(miracastBitrate)
	playout := video.NewPlayout(miracastFPS, 5)
	// frameEnds[i] is the stream offset at which frame i completes.
	var frameEnds []uint64
	var total uint64
	nextPlayed := 0

	frame := src.Interval()
	var tick func()
	tick = func() {
		n := src.NextFrameBytes()
		total += uint64(n)
		frameEnds = append(frameEnds, total)
		flow.Sender.AddBytes(int64(n))
		// Deliver completed frames to the playout model.
		delivered := uint64(flow.Receiver.Delivered())
		for nextPlayed < len(frameEnds) && frameEnds[nextPlayed] <= delivered {
			playout.OnFrame(loop.Now(), false)
			nextPlayed++
		}
		playout.Tick(loop.Now())
		loop.After(frame, tick)
	}
	loop.After(0, tick)
	loop.RunUntil(dur)
	playout.Finish(dur)
	return miracastResult{
		Rebuffer:    playout.RebufferRatio(dur),
		Macroblocks: playout.MacroblockPer30Min(dur),
	}
}

// runMiracastRTP streams the video as raw fragments over the MAC (RTP/UDP):
// no retransmission; a frame with fragments still missing at its render
// deadline plays corrupted (macroblocking).
func runMiracastRTP(seed int64, dur sim.Time) miracastResult {
	loop := sim.NewLoop(seed)
	m := mac.NewMedium(loop, phy.Get(phy.Std80211n))
	m.PER = miracastPER
	addMiracastCross(loop, m)
	// An RTP stack's socket queue absorbs a frame burst but not sustained
	// backlog; late/dropped fragments are simply gone.
	phone := m.AddStation("phone", 512)
	tv := m.AddStation("tv", 512)
	// MAC retries are bounded much lower for latency-sensitive RTP
	// (the paper's predecessor product behaviour: residual loss surfaces
	// as artifacts rather than delay).
	fragSize := 1439

	type frameState struct {
		need int
		got  int
		due  sim.Time
	}
	frames := map[int]*frameState{}
	playout := video.NewPlayout(miracastFPS, 5)
	tv.Receive = func(f *mac.Frame) {
		id := f.Payload.(int)
		if st, ok := frames[id]; ok {
			st.got++
		}
	}

	src := video.NewSource(miracastBitrate)
	frame := src.Interval()
	renderBudget := 6 * frame // ~100 ms Miracast-typical playout deadline
	id := 0
	var tick func()
	tick = func() {
		now := loop.Now()
		n := src.NextFrameBytes()
		nf := (n + fragSize - 1) / fragSize
		frames[id] = &frameState{need: nf, due: now + renderBudget}
		for i := 0; i < nf; i++ {
			sz := fragSize
			if i == nf-1 {
				sz = n - (nf-1)*fragSize
			}
			phone.Send(tv, sz+79, id)
		}
		// Render frames whose deadline passed.
		for fid, st := range frames {
			if now >= st.due {
				playout.OnFrame(now, st.got < st.need)
				delete(frames, fid)
			}
		}
		playout.Tick(now)
		id++
		loop.After(frame, tick)
	}
	loop.After(0, tick)
	loop.RunUntil(dur)
	playout.Finish(dur)
	return miracastResult{
		Rebuffer:    playout.RebufferRatio(dur),
		Macroblocks: playout.MacroblockPer30Min(dur),
	}
}

// runFig11 reproduces Figure 11: wireless projection (Miracast) A/B test —
// macroblocking artifacts and rebuffering ratio for RTP+UDP, TCP CUBIC,
// TCP BBR and TCP-TACK over a noisy in-room 802.11n link.
func runFig11(opt Options) (*Result, error) {
	dur := opt.dur(60 * sim.Second)
	rtp := runMiracastRTP(opt.seed(), dur)
	cubicCfg := transport.Config{Mode: transport.ModeLegacy, CC: "cubic"}
	bbrCfg := legacyBBRConfig()
	tackCfg := tackConfig()
	// Appendix B.3: latency-sensitive applications set L=1 (the
	// TCP_QUICKACK-like option) and a finer settle fraction, trading a few
	// more ACKs for immediate tail acknowledgment.
	tackCfg.Params.L = 1
	tackCfg.Params.SettleFraction = 8
	cubic := runMiracastReliable(opt.seed(), cubicCfg, dur)
	bbr := runMiracastReliable(opt.seed(), bbrCfg, dur)
	tack := runMiracastReliable(opt.seed(), tackCfg, dur)

	tbl := stats.NewTable("Metric", "RTP+UDP", "TCP CUBIC", "TCP BBR", "TCP-TACK")
	tbl.AddRow("Macroblocking (times/30min)",
		fmt.Sprintf("%.0f", rtp.Macroblocks), fmt.Sprintf("%.0f", cubic.Macroblocks),
		fmt.Sprintf("%.0f", bbr.Macroblocks), fmt.Sprintf("%.0f", tack.Macroblocks))
	tbl.AddRow("Rebuffering (%)",
		stats.Pct(rtp.Rebuffer), stats.Pct(cubic.Rebuffer),
		stats.Pct(bbr.Rebuffer), stats.Pct(tack.Rebuffer))
	notes := "Paper: RTP+UDP macroblocks 5–6 times/30min with 0 rebuffering; reliable transports never macroblock but rebuffer (CUBIC 30–58%, BBR 5–15%, TACK 3–10%). Expected ordering: TACK lowest rebuffering among reliable transports; only RTP macroblocks."
	return &Result{ID: "fig11", Title: "Miracast wireless projection A/B (802.11n, noisy room)", Table: tbl.String(), Notes: notes}, nil
}
