// Package experiments reproduces every table and figure of the TACK
// paper's evaluation (§3.2, §5, §6 and the appendices). Each experiment is
// registered under the paper's figure id (fig1 … fig17) and can be run by
// the tackbench command or the repository's benchmark harness.
//
// Absolute numbers depend on the simulated substrate; the experiments are
// judged on the paper's qualitative shape (who wins, by roughly what
// factor, where crossovers fall) — see EXPERIMENTS.md for the side-by-side
// record.
package experiments

import (
	"fmt"
	"sort"

	"github.com/tacktp/tack/internal/mac"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

// Options tunes a run.
type Options struct {
	// Quick shrinks durations/ensembles for smoke tests and benchmarks.
	Quick bool
	// Seed makes runs reproducible (0 selects 1).
	Seed int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// dur scales a duration down 4x in quick mode.
func (o Options) dur(full sim.Time) sim.Time {
	if o.Quick {
		return full / 4
	}
	return full
}

// count scales an ensemble size down in quick mode.
func (o Options) count(full int) int {
	if o.Quick {
		n := full / 4
		if n < 1 {
			n = 1
		}
		return n
	}
	return full
}

// Result is one experiment's rendered output.
type Result struct {
	ID    string
	Title string
	Table string
	Notes string
}

// String renders the result for terminal output.
func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	if r.Notes != "" {
		s += "\n" + r.Notes + "\n"
	}
	return s
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

var registry = map[string]Runner{}
var order []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	order = append(order, id)
}

// IDs lists registered experiments in registration (paper) order.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(opt)
}

// flowMetrics summarizes one measured flow.
type flowMetrics struct {
	GoodputBps  float64
	DataPackets int
	AcksSent    int
	Retransmits int
	Timeouts    int
	OWD95       sim.Time
	LossIACKs   int
	Delivered   int64
	Done        bool
	SndStats    transport.SenderStats
	RcvStats    transport.ReceiverStats
}

func metricsOf(f *topo.Flow, dur sim.Time) flowMetrics {
	return flowMetrics{
		GoodputBps:  float64(f.Receiver.Delivered()) * 8 / dur.Seconds(),
		DataPackets: f.Sender.Stats.DataPackets,
		AcksSent:    f.Receiver.Stats.AcksSent(),
		Retransmits: f.Sender.Stats.Retransmits,
		Timeouts:    f.Sender.Stats.Timeouts,
		OWD95:       sim.Time(f.Receiver.OWD.Percentile(95) * 1e9),
		LossIACKs:   f.Receiver.Stats.LossIACKs,
		Delivered:   f.Receiver.Delivered(),
		Done:        f.Sender.Done(),
		SndStats:    f.Sender.Stats,
		RcvStats:    f.Receiver.Stats,
	}
}

// runWLANFlow measures one flow over a two-station WLAN.
func runWLANFlow(seed int64, std phy.Standard, cfg transport.Config, dur sim.Time) (flowMetrics, *mac.Medium, error) {
	loop := sim.NewLoop(seed)
	path, medium := topo.WLANPath(loop, topo.WLANConfig{Standard: std})
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		return flowMetrics{}, nil, err
	}
	flow.Start()
	loop.RunUntil(dur)
	return metricsOf(flow, dur), medium, nil
}

// runHybridFlow measures one flow over WLAN + WAN (paper Figure 12).
func runHybridFlow(seed int64, wlan topo.WLANConfig, wan topo.WANConfig, cfg transport.Config, dur sim.Time) (flowMetrics, error) {
	loop := sim.NewLoop(seed)
	path, _, _, _ := topo.HybridPath(loop, wlan, wan)
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		return flowMetrics{}, err
	}
	flow.Start()
	loop.RunUntil(dur)
	return metricsOf(flow, dur), nil
}

// runWANFlow measures one flow over a wired emulated path.
func runWANFlow(seed int64, wan topo.WANConfig, cfg transport.Config, dur sim.Time) (flowMetrics, *topo.Flow, error) {
	loop := sim.NewLoop(seed)
	path, _, _ := topo.WANPath(loop, wan)
	flow, err := topo.NewFlow(loop, cfg, path)
	if err != nil {
		return flowMetrics{}, nil, err
	}
	flow.Start()
	loop.RunUntil(dur)
	return metricsOf(flow, dur), flow, nil
}

// tackConfig returns the TCP-TACK configuration used across experiments.
func tackConfig() transport.Config {
	return transport.Config{Mode: transport.ModeTACK, CC: "bbr", RichTACK: true}
}

// legacyBBRConfig returns the TCP BBR baseline (delayed ACKs, SACK+FACK
// loss detection, sender timing).
func legacyBBRConfig() transport.Config {
	return transport.Config{Mode: transport.ModeLegacy, CC: "bbr"}
}
