package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/analytic"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
)

func init() {
	register("fig8", runFig8)
	register("fig16", runFig16)
	register("fig17", runFig17)
}

// stdGoodput maps each standard to its UDP-baseline goodput (paper Fig. 7),
// the bw operating point of the Figure 8 frequency analysis.
var stdGoodput = map[phy.Standard]float64{
	phy.Std80211b:  7e6,
	phy.Std80211g:  26e6,
	phy.Std80211n:  210e6,
	phy.Std80211ac: 590e6,
}

// runFig8 reproduces Figure 8: the ACK-frequency reduction Δf = f_tcp −
// f_tack across standards and RTTs (a), and the absolute frequency table
// comparing TCP(L=2) with TACK(L=2) (b).
func runFig8(opt Options) (*Result, error) {
	rtts := []sim.Time{10 * sim.Millisecond, 80 * sim.Millisecond, 200 * sim.Millisecond}
	tbl := stats.NewTable("Link", "RTTmin", "f_tcp(L=2) Hz", "f_tack Hz", "reduced Hz", "reduced %")
	for _, std := range phy.All() {
		bw := stdGoodput[std]
		for _, rtt := range rtts {
			ftcp := analytic.FreqByteCount(bw, 2)
			ftack := analytic.FreqTACK(bw, 2, 4, rtt)
			tbl.AddRow(std.String(), rtt.String(),
				fmt.Sprintf("%.0f", ftcp), fmt.Sprintf("%.0f", ftack),
				fmt.Sprintf("%.0f", ftcp-ftack), stats.Pct(1-ftack/ftcp))
		}
	}
	notes := "Paper Figure 8(b) anchors: 802.11b@10ms ≈ 294 Hz for both (byte-counting regime); 802.11ac: TACK 400 Hz at 10 ms vs TCP ≈ 24.8 kHz, dropping to 50 Hz at 80 ms — two to three orders of magnitude."
	return &Result{ID: "fig8", Title: "ACK frequency reduction over 802.11 links (analytic, Eq. 3–5)", Table: tbl.String(), Notes: notes}, nil
}

// runFig16 reproduces the Appendix B.1 analysis behind Figure 16: the
// minimum send window and ideal buffer requirement as β varies, showing
// why β = 1 degenerates and β = 4 is the robust default.
func runFig16(opt Options) (*Result, error) {
	bdp := 1e6 // 1 MB reference bdp
	tbl := stats.NewTable("beta", "W_min / bdp", "buffer / bdp", "note")
	for _, beta := range []int{2, 3, 4, 6, 8} {
		w := analytic.MinSendWindow(bdp, beta) / bdp
		b := analytic.BufferRequirement(bdp, beta) / bdp
		note := ""
		if beta == 2 {
			note = "minimum viable (Appendix B.1)"
		}
		if beta == 4 {
			note = "paper default (robustness headroom)"
		}
		tbl.AddRow(fmt.Sprintf("%d", beta), fmt.Sprintf("%.2f", w), fmt.Sprintf("%.2f", b), note)
	}
	notes := "β=1 is stop-and-wait (utilization collapses; MinSendWindow panics by design). Doubling β=2→4 cuts the ideal buffer need from 1.00 to 0.33 bdp (§7)."
	return &Result{ID: "fig16", Title: "Lower bound of beta: send window and buffer requirement (Appendix B)", Table: tbl.String(), Notes: notes}, nil
}

// runFig17 reproduces Figure 17: ACK frequency as a function of bandwidth
// (a) and of RTTmin (b), with the analytic pivot points where TACK switches
// between the byte-counting and periodic regimes.
func runFig17(opt Options) (*Result, error) {
	tblA := stats.NewTable("bw Mbit/s", "f_tcp(L=1) Hz", "f_tack@10ms", "f_tack@80ms", "f_tack@200ms")
	for _, bwM := range []float64{1, 2, 5, 10, 50, 100, 500, 1000, 3000} {
		bw := bwM * 1e6
		tblA.AddRow(fmt.Sprintf("%.0f", bwM),
			fmt.Sprintf("%.0f", analytic.FreqPerPacket(bw)),
			fmt.Sprintf("%.0f", analytic.FreqTACK(bw, 1, 4, 10*sim.Millisecond)),
			fmt.Sprintf("%.0f", analytic.FreqTACK(bw, 1, 4, 80*sim.Millisecond)),
			fmt.Sprintf("%.0f", analytic.FreqTACK(bw, 1, 4, 200*sim.Millisecond)))
	}
	tblB := stats.NewTable("RTTmin ms", "f_tack@0.1Mbps", "f_tack@100Mbps", "f_tack@1000Mbps")
	for _, rttMs := range []int64{1, 5, 10, 20, 40, 80, 100} {
		rtt := sim.Time(rttMs) * sim.Millisecond
		tblB.AddRow(fmt.Sprintf("%d", rttMs),
			fmt.Sprintf("%.1f", analytic.FreqTACK(0.1e6, 1, 4, rtt)),
			fmt.Sprintf("%.0f", analytic.FreqTACK(100e6, 1, 4, rtt)),
			fmt.Sprintf("%.0f", analytic.FreqTACK(1000e6, 1, 4, rtt)))
	}
	pivot10 := analytic.PivotBandwidth(4, 1, 10*sim.Millisecond) / 1e6
	pivot100M := analytic.PivotRTT(4, 1, 100e6)
	notes := fmt.Sprintf("Pivot points: at RTTmin=10 ms the regimes cross at %.1f Mbit/s; at 100 Mbit/s they cross at %v. Above the pivot TACK is periodic (flat in bw), below it byte-counting (flat in RTT).",
		pivot10, pivot100M)
	return &Result{
		ID: "fig17", Title: "ACK frequency dynamics vs bandwidth and RTTmin (Appendix B.4)",
		Table: tblA.String() + "\n" + tblB.String(), Notes: notes,
	}, nil
}
