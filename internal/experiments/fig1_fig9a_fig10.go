package experiments

import (
	"fmt"

	"github.com/tacktp/tack/internal/ackpolicy"
	"github.com/tacktp/tack/internal/phy"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stats"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
)

func init() {
	register("fig1", runFig1)
	register("fig9a", runFig9a)
	register("fig10a", runFig10a)
	register("fig10b", runFig10b)
}

// wlanPair runs TCP-TACK and TCP-BBR over a WLAN + high-rate WAN hybrid
// (the WAN hop adds the experiment's RTT without throttling), returning
// both flows' metrics.
func wlanPair(opt Options, std phy.Standard, rtt sim.Time, dur sim.Time) (tack, bbr flowMetrics, err error) {
	wlan := topo.WLANConfig{Standard: std}
	wan := topo.WANConfig{RateBps: 2e9, OWD: rtt / 2}
	tack, err = runHybridFlow(opt.seed(), wlan, wan, tackConfig(), dur)
	if err != nil {
		return
	}
	bbr, err = runHybridFlow(opt.seed(), wlan, wan, legacyBBRConfig(), dur)
	return
}

// runFig1 reproduces Figure 1 (and the ACK-reduction headline): percentage
// of ACKs reduced and goodput improved, TCP-TACK over TCP-BBR, per 802.11
// standard.
func runFig1(opt Options) (*Result, error) {
	dur := opt.dur(12 * sim.Second)
	tbl := stats.NewTable("Link", "ACKs reduced", "Goodput improved", "TACK Mbit/s", "BBR Mbit/s")
	notes := ""
	for _, std := range phy.All() {
		// The paper's public-room RTT ranged 4-200 ms; 80 ms is a
		// representative midpoint (and puts every standard in the regime
		// the paper's Figure 8 analyzes).
		tack, bbr, err := wlanPair(opt, std, 80*sim.Millisecond, dur)
		if err != nil {
			return nil, err
		}
		ackRed := 1 - float64(tack.AcksSent)/float64(bbr.AcksSent)
		gain := tack.GoodputBps/bbr.GoodputBps - 1
		tbl.AddRow(std.String(), stats.Pct(ackRed), stats.Pct(gain),
			stats.Mbps(tack.GoodputBps), stats.Mbps(bbr.GoodputBps))
	}
	notes = "Paper: ACK reduction 90.5/95.4/99.4/99.8%, goodput gain 20.0/26.3/27.7/28.1% (b/g/n/ac); both grow with PHY rate."
	return &Result{ID: "fig1", Title: "TCP-TACK vs TCP-BBR in WLAN (preview headline)", Table: tbl.String(), Notes: notes}, nil
}

// runFig9a reproduces Figure 9(a): absolute goodput improvement
// (TACK − TCP) per standard across RTTs.
func runFig9a(opt Options) (*Result, error) {
	dur := opt.dur(10 * sim.Second)
	tbl := stats.NewTable("Link", "RTT", "Improvement Mbit/s", "TACK Mbit/s", "BBR Mbit/s")
	rtts := []sim.Time{10 * sim.Millisecond, 80 * sim.Millisecond, 200 * sim.Millisecond}
	if opt.Quick {
		rtts = rtts[:1]
	}
	for _, std := range phy.All() {
		for _, rtt := range rtts {
			tack, bbr, err := wlanPair(opt, std, rtt, dur)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(std.String(), rtt.String(),
				stats.Mbps(tack.GoodputBps-bbr.GoodputBps),
				stats.Mbps(tack.GoodputBps), stats.Mbps(bbr.GoodputBps))
		}
	}
	return &Result{
		ID: "fig9a", Title: "Goodput improvement grows with PHY rate, insensitive to RTT",
		Table: tbl.String(),
		Notes: "Paper shape: faster links enlarge the absolute improvement; latency barely moves it.",
	}, nil
}

// runFig10a reproduces Figure 10(a): actual goodput of TCP-TACK vs TCP BBR
// per 802.11 standard (paper: 6/24/198/556 vs 5/19/155/434 Mbit/s).
func runFig10a(opt Options) (*Result, error) {
	dur := opt.dur(12 * sim.Second)
	tbl := stats.NewTable("Link", "TCP-TACK Mbit/s", "TCP BBR Mbit/s", "Gain")
	for _, std := range phy.All() {
		tack, bbr, err := wlanPair(opt, std, 20*sim.Millisecond, dur)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(std.String(), stats.Mbps(tack.GoodputBps), stats.Mbps(bbr.GoodputBps),
			stats.Pct(tack.GoodputBps/bbr.GoodputBps-1))
	}
	return &Result{
		ID: "fig10a", Title: "Actual goodput: TCP-TACK vs TCP BBR over WLAN",
		Table: tbl.String(),
		Notes: "Paper: 20–28.1% gain, growing with PHY rate.",
	}, nil
}

// runFig10b reproduces Figure 10(b): *actual* goodput of legacy TCP with
// ACK thinning (L = 1,2,4,8,16) against TCP-TACK, over 802.11n with a
// ρ = 0.1% impairment and RTT 80 ms. Legacy TCP's control loops degrade as
// ACKs thin; TACK's co-design does not.
func runFig10b(opt Options) (*Result, error) {
	dur := opt.dur(12 * sim.Second)
	wlan := topo.WLANConfig{Standard: phy.Std80211n}
	wan := topo.WANConfig{RateBps: 2e9, OWD: 40 * sim.Millisecond, DataLoss: 0.001}
	tbl := stats.NewTable("Scheme", "Actual goodput Mbit/s")
	ls := []int{1, 2, 4, 8, 16}
	if opt.Quick {
		ls = []int{1, 8}
	}
	var l1, l16 float64
	for _, l := range ls {
		cfg := legacyBBRConfig()
		if l == 1 {
			cfg.AckPolicy = ackpolicy.NewPerPacket()
		} else {
			cfg.AckPolicy = ackpolicy.NewByteCount(l)
		}
		m, err := runHybridFlow(opt.seed(), wlan, wan, cfg, dur)
		if err != nil {
			return nil, err
		}
		if l == 1 {
			l1 = m.GoodputBps
		}
		if l == ls[len(ls)-1] {
			l16 = m.GoodputBps
		}
		tbl.AddRow(fmt.Sprintf("TCP (L=%d)", l), stats.Mbps(m.GoodputBps))
	}
	tackM, err := runHybridFlow(opt.seed(), wlan, wan, tackConfig(), dur)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("TACK (L=2)", stats.Mbps(tackM.GoodputBps))
	notes := fmt.Sprintf(
		"Paper shape: legacy TCP fails to follow the ideal rising trend when ACKs thin (L=1 %.1f vs L=16 %.1f Mbit/s here), while TACK (%.1f) approaches the ideal.",
		l1/1e6, l16/1e6, tackM.GoodputBps/1e6)
	return &Result{
		ID: "fig10b", Title: "ACK thinning disturbs legacy TCP (802.11n, RTT 80 ms, rho=0.1%)",
		Table: tbl.String(), Notes: notes,
	}, nil
}

// ensure transport import is used even if configs change.
var _ = transport.Config{}
