package packet

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/tacktp/tack/internal/seqspace"
)

// codecCases enumerates one representative packet per wire shape: every
// type, with and without optional structure (payload, feedback block,
// block lists, flags).
func codecCases() map[string]*Packet {
	return map[string]*Packet{
		"syn":      {Type: TypeSYN, ConnID: 1, PktSeq: 0, SentAt: 5},
		"syn+data": {Type: TypeSYN, ConnID: 1, Seq: 0, Payload: bytes.Repeat([]byte{3}, 100)},
		"synack":   {Type: TypeSYNACK, ConnID: 1, IACK: IACKHandshake, Ack: &AckInfo{Window: 1 << 20, EchoDeparture: 9}},
		"data":     {Type: TypeData, ConnID: 2, PktSeq: 9, Seq: 1500, Payload: bytes.Repeat([]byte{7}, 1439), OldestPktSeq: 4},
		"data+fin": {Type: TypeData, ConnID: 2, PktSeq: 10, Seq: 2939, Payload: []byte{1}, FIN: true, Retrans: true, IsProbe: true},
		"data+nil": {Type: TypeData, ConnID: 2, PktSeq: 11, Seq: 2940},
		"stream-data": {Type: TypeData, ConnID: 2, PktSeq: 12, Seq: 4096, Payload: bytes.Repeat([]byte{9}, 1400),
			HasStream: true, StreamID: 7, StreamOff: 1 << 21, OldestPktSeq: 5},
		"stream-fin": {Type: TypeData, ConnID: 2, PktSeq: 13, Seq: 5496,
			HasStream: true, StreamID: 8, StreamOff: 0, StreamFIN: true},
		"stream-retrans": {Type: TypeData, ConnID: 2, PktSeq: 14, Seq: 4096, Payload: []byte{1, 2, 3},
			HasStream: true, StreamID: 7, StreamOff: 1 << 21, StreamFIN: true, Retrans: true},
		"stream-fec": {Type: TypeData, ConnID: 2, PktSeq: 15, Seq: 5496, Payload: bytes.Repeat([]byte{5}, 1200),
			HasStream: true, StreamID: 7, StreamOff: 1 << 22, OldestPktSeq: 6,
			HasFEC: true, FECGroup: 41, FECIndex: 3},
		"repair": {Type: TypeRepair, ConnID: 2, PktSeq: 0, SentAt: 17, Payload: bytes.Repeat([]byte{6}, 1431),
			FECGroup: 41, FECGroupLen: 8, FECRepairCount: 2, FECIndex: 1, FECScheme: 2},
		"tack-bare": {Type: TypeTACK, ConnID: 3, PktSeq: 12},
		"tack": {Type: TypeTACK, ConnID: 3, PktSeq: 13, Ack: &AckInfo{
			CumAck: 4096, CumPktSeq: 7, LargestPktSeq: 40, AckSeq: 2, Window: 1 << 20,
			AckDelay: 11, EchoDeparture: 22, FirstEchoDeparture: 33,
			DeliveryRate: 1e9, LossRatePermille: 12, ReportedThrough: 38,
			AckedBlocks:   []seqspace.Range{{Lo: 1, Hi: 5}, {Lo: 9, Hi: 12}},
			UnackedBlocks: []seqspace.Range{{Lo: 5, Hi: 9}},
		}},
		"iack-loss": {Type: TypeIACK, ConnID: 3, IACK: IACKLoss, AckOldestPktSeq: 6,
			Ack: &AckInfo{UnackedBlocks: []seqspace.Range{{Lo: 2, Hi: 3}}}},
		"iack-rttsync": {Type: TypeIACK, ConnID: 3, IACK: IACKRTTSync, RTTMinNS: 20e6,
			Ack: &AckInfo{LossRatePermille: 5}},
		"tack-windows": {Type: TypeTACK, ConnID: 3, PktSeq: 14, Ack: &AckInfo{
			CumAck: 8192, CumPktSeq: 9, LargestPktSeq: 44, AckSeq: 3, Window: 1 << 20,
			AckedBlocks: []seqspace.Range{{Lo: 2, Hi: 6}},
			StreamWindows: []StreamWindow{
				{ID: 0, Limit: 1 << 18}, {ID: 3, Limit: 1 << 19}, {ID: InitialWindowID, Limit: 1 << 16},
			},
		}},
		"iack-window": {Type: TypeIACK, ConnID: 3, IACK: IACKWindow,
			Ack: &AckInfo{Window: 0, StreamWindows: []StreamWindow{{ID: 5, Limit: 1 << 20}}}},
		"fin":            {Type: TypeFIN, ConnID: 4, Seq: 1 << 30},
		"finack":         {Type: TypeFINACK, ConnID: 4, Ack: &AckInfo{CumAck: 1 << 30}},
		"path-challenge": {Type: TypePathChallenge, ConnID: 5, SentAt: 7, Token: 0xdeadbeefcafef00d},
		"path-response":  {Type: TypePathResponse, ConnID: 5, SentAt: 8, Token: 0xdeadbeefcafef00d},
	}
}

// TestMarshalLenMatchesEncodedLen guards the exact-size invariant
// AppendMarshal relies on: EncodedLen must predict the marshalled length
// for every packet shape, so pre-sized buffers never regrow.
func TestMarshalLenMatchesEncodedLen(t *testing.T) {
	for name, p := range codecCases() {
		if got, want := len(p.Marshal()), p.EncodedLen(); got != want {
			t.Errorf("%s: len(Marshal()) = %d, EncodedLen() = %d", name, got, want)
		}
	}
}

// TestAppendMarshalMatchesMarshal asserts byte-identical encodes and that
// AppendMarshal appends (preserving buffer prefixes) rather than
// overwriting.
func TestAppendMarshalMatchesMarshal(t *testing.T) {
	for name, p := range codecCases() {
		legacy := p.Marshal()
		appended := p.AppendMarshal([]byte("prefix"))
		if !bytes.HasPrefix(appended, []byte("prefix")) {
			t.Fatalf("%s: AppendMarshal clobbered the prefix", name)
		}
		if !bytes.Equal(appended[len("prefix"):], legacy) {
			t.Errorf("%s: AppendMarshal and Marshal disagree", name)
		}
	}
}

// TestDecodeIntoMatchesUnmarshal decodes every case both ways and demands
// semantically equal packets.
func TestDecodeIntoMatchesUnmarshal(t *testing.T) {
	for name, p := range codecCases() {
		wire := p.Marshal()
		legacy, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", name, err)
		}
		var into Packet
		if err := DecodeInto(&into, wire); err != nil {
			t.Fatalf("%s: DecodeInto: %v", name, err)
		}
		if !packetsEqual(legacy, &into) {
			t.Errorf("%s: DecodeInto diverges:\n legacy=%+v\n into=%+v", name, legacy, &into)
		}
	}
}

// TestDecodeIntoReuse cycles one Packet through every wire shape twice and
// checks each decode stands alone — stale payload, ack state, and flags
// from the previous decode must never leak into the next.
func TestDecodeIntoReuse(t *testing.T) {
	var reused Packet
	for round := 0; round < 2; round++ {
		for name, p := range codecCases() {
			wire := p.Marshal()
			if err := DecodeInto(&reused, wire); err != nil {
				t.Fatalf("%s: DecodeInto: %v", name, err)
			}
			want, err := Unmarshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			if !packetsEqual(want, &reused) {
				t.Errorf("round %d %s: reused decode diverges:\n want=%+v\n got=%+v",
					round, name, want, &reused)
			}
			if !bytes.Equal(reused.Marshal(), wire) {
				t.Errorf("round %d %s: re-encode of reused decode not byte-identical", round, name)
			}
		}
	}
}

// TestDecodeIntoTruncated feeds every truncation of a rich TACK to
// DecodeInto on a reused packet: each must error without panicking, and a
// subsequent full decode must still succeed.
func TestDecodeIntoTruncated(t *testing.T) {
	full := codecCases()["tack"].Marshal()
	var p Packet
	for cut := 0; cut < len(full); cut++ {
		if err := DecodeInto(&p, full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := DecodeInto(&p, full); err != nil {
		t.Fatalf("full decode after truncated attempts: %v", err)
	}
}

// packetsEqual compares decoded packets semantically: nil and empty
// payloads/block lists are equivalent (storage-reusing decodes keep empty
// non-nil slices).
func packetsEqual(a, b *Packet) bool {
	ac, bc := *a, *b
	ac.Payload, bc.Payload = nil, nil
	ac.Ack, bc.Ack = nil, nil
	ac.spareAck, bc.spareAck = nil, nil
	if !reflect.DeepEqual(ac, bc) {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	if (a.Ack == nil) != (b.Ack == nil) {
		return false
	}
	if a.Ack == nil {
		return true
	}
	aa, ba := *a.Ack, *b.Ack
	if !rangesEqual(aa.AckedBlocks, ba.AckedBlocks) || !rangesEqual(aa.UnackedBlocks, ba.UnackedBlocks) {
		return false
	}
	if !windowsEqual(aa.StreamWindows, ba.StreamWindows) {
		return false
	}
	aa.AckedBlocks, ba.AckedBlocks = nil, nil
	aa.UnackedBlocks, ba.UnackedBlocks = nil, nil
	aa.StreamWindows, ba.StreamWindows = nil, nil
	return reflect.DeepEqual(aa, ba)
}

func windowsEqual(a, b []StreamWindow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func rangesEqual(a, b []seqspace.Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPathFrameRoundTrip pins the PATH_CHALLENGE/PATH_RESPONSE wire shape:
// the 8-byte validation token must survive a decode exactly (path
// validation compares it verbatim), the frames carry nothing else beyond
// the common header, and Sane accepts them.
func TestPathFrameRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypePathChallenge, TypePathResponse} {
		p := &Packet{Type: typ, ConnID: 9, SentAt: 123, Token: 0xfeedfacecafebeef}
		wire := p.Marshal()
		if len(wire) != commonHeaderLen+8 {
			t.Fatalf("%v: encoded %d bytes, want %d", typ, len(wire), commonHeaderLen+8)
		}
		q, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("%v: decode: %v", typ, err)
		}
		if q.Token != p.Token {
			t.Fatalf("%v: token %#x != %#x", typ, q.Token, p.Token)
		}
		if err := q.Sane(); err != nil {
			t.Fatalf("%v: Sane rejected honest path frame: %v", typ, err)
		}
	}
}

// benchPackets are the hot-path shapes: a full-size data packet, a rich
// TACK, a full-size stream frame, a TACK carrying stream-window
// advertisements, and a full-size FEC repair symbol.
func benchPackets() (data, tack, stream, tackWindows, repair *Packet) {
	cases := codecCases()
	return cases["data"], cases["tack"], cases["stream-data"], cases["tack-windows"], cases["repair"]
}

// BenchmarkMarshal measures AppendMarshal into a reused buffer — the
// endpoint egress path. Must report 0 allocs/op.
func BenchmarkMarshal(b *testing.B) {
	data, tack, stream, tackWindows, repair := benchPackets()
	for _, bc := range []struct {
		name string
		p    *Packet
	}{{"data", data}, {"tack", tack}, {"stream-data", stream}, {"tack-windows", tackWindows}, {"repair", repair}} {
		b.Run(bc.name, func(b *testing.B) {
			buf := make([]byte, 0, bc.p.EncodedLen())
			b.SetBytes(int64(bc.p.EncodedLen()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = bc.p.AppendMarshal(buf[:0])
			}
			_ = buf
		})
	}
}

// BenchmarkUnmarshal measures DecodeInto into a reused packet — the
// endpoint ingress path. Must report 0 allocs/op once storage is warm.
func BenchmarkUnmarshal(b *testing.B) {
	data, tack, stream, tackWindows, repair := benchPackets()
	for _, bc := range []struct {
		name string
		p    *Packet
	}{{"data", data}, {"tack", tack}, {"stream-data", stream}, {"tack-windows", tackWindows}, {"repair", repair}} {
		b.Run(bc.name, func(b *testing.B) {
			wire := bc.p.Marshal()
			var p Packet
			if err := DecodeInto(&p, wire); err != nil { // warm storage
				b.Fatal(err)
			}
			b.SetBytes(int64(len(wire)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeInto(&p, wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
