// Package packet defines the TACK transport wire format.
//
// A packet has a fixed common header (version, type, connection id, packet
// number, departure timestamp) followed by a type-specific body. The packet
// number (PKT.SEQ, paper §5.1) is carried by every packet and monotonically
// increases with each transmission — retransmissions of the same byte range
// get fresh packet numbers, which is what removes retransmission ambiguity
// and enables receiver-based loss detection.
//
// The same encoding is used by the in-process simulator (which mostly passes
// *Packet values around but relies on WireSize for airtime computation) and
// by the UDP runner (which marshals to the wire verbatim).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

// Version is the wire-format version emitted by this library.
const Version = 1

// Type discriminates packet bodies.
type Type uint8

// Packet types.
const (
	TypeInvalid Type = iota
	TypeSYN          // connection open (client -> server)
	TypeSYNACK       // connection accept (server -> client)
	TypeData         // bytestream segment
	TypeTACK         // periodic / byte-counting Tame ACK
	TypeIACK         // instant, event-driven ACK
	TypeFIN          // sender is done
	TypeFINACK       // FIN acknowledgment
	// TypePathChallenge probes a new peer address during path migration:
	// the endpoint sends it to an unvalidated address carrying a
	// crypto-random token the true owner must echo back.
	TypePathChallenge
	// TypePathResponse echoes a PATH_CHALLENGE token, proving the sender
	// owns (is on-path at) the challenged address.
	TypePathResponse
	// TypeRepair carries one forward-error-correction repair symbol over a
	// group of FEC-tagged DATA packets (internal/fec). Repair packets ride
	// outside the data PKT.SEQ space — they are fire-and-forget fill, never
	// acked, retransmitted, or counted as data loss.
	TypeRepair
)

// String returns the conventional name of the type.
func (t Type) String() string {
	switch t {
	case TypeSYN:
		return "SYN"
	case TypeSYNACK:
		return "SYNACK"
	case TypeData:
		return "DATA"
	case TypeTACK:
		return "TACK"
	case TypeIACK:
		return "IACK"
	case TypeFIN:
		return "FIN"
	case TypeFINACK:
		return "FINACK"
	case TypePathChallenge:
		return "PATH_CHALLENGE"
	case TypePathResponse:
		return "PATH_RESPONSE"
	case TypeRepair:
		return "REPAIR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IACKKind identifies the instant event that triggered an IACK (paper §4.4).
type IACKKind uint8

// IACK kinds.
const (
	IACKLoss      IACKKind = iota + 1 // receiver detected missing packets
	IACKWindow                        // abrupt receive-window change (zero / large release)
	IACKRTTSync                       // sender syncs updated RTTmin to receiver
	IACKHandshake                     // completes connection establishment
	IACKKeepalive                     // liveness probe
)

// String returns the kind's name.
func (k IACKKind) String() string {
	switch k {
	case IACKLoss:
		return "loss"
	case IACKWindow:
		return "window"
	case IACKRTTSync:
		return "rttsync"
	case IACKHandshake:
		return "handshake"
	case IACKKeepalive:
		return "keepalive"
	default:
		return fmt.Sprintf("IACKKind(%d)", uint8(k))
	}
}

// AckInfo is the feedback block shared by TACK and IACK bodies.
//
// CumAck / CumPktSeq acknowledge the contiguous prefix; AckedBlocks and
// UnackedBlocks are the paper's "acked list" and "unacked list" over the
// PKT.SEQ space; the delivery/loss fields sync receiver-side transport
// statistics to the sender (paper §4.4 "more information carried in ACKs").
type AckInfo struct {
	// CumAck is the next expected byte offset (all bytes < CumAck received).
	CumAck uint64
	// CumPktSeq is the highest packet number below which every packet's
	// payload has been received (possibly via retransmission).
	CumPktSeq uint64
	// LargestPktSeq is the largest packet number seen so far.
	LargestPktSeq uint64
	// AckSeq numbers the ACKs themselves so the sender can estimate the
	// ACK-path loss rate ρ′ (paper §5.4).
	AckSeq uint64
	// Window is the receiver's available window in bytes (AWND).
	Window uint64
	// AckDelay is Δt⋆: time between receiving the echoed packet and sending
	// this ACK, enabling the sender's explicit RTT correction (paper §4.3).
	AckDelay sim.Time
	// EchoDeparture echoes the departure timestamp t0⋆ of the packet that
	// achieved the minimum one-way delay within the ACK interval (§5.2).
	EchoDeparture sim.Time
	// FirstEchoDeparture echoes the departure timestamp of the *first*
	// pending packet of the ACK interval — what a legacy TCP timestamp
	// echo (RFC 7323 TSecr under delayed ACKs) would carry. The paper's
	// Figure 6(a) contrasts RTT sampling built on this (biased by the full
	// ACK delay) against the corrected estimate built on EchoDeparture+Δt⋆.
	FirstEchoDeparture sim.Time
	// DeliveryRate is the receiver-computed windowed-max delivery rate in
	// bits per second (bw of Eq. 3), zero when unknown.
	DeliveryRate uint64
	// LossRatePermille is the receiver-computed data-path loss rate ρ in
	// 1/1000 units.
	LossRatePermille uint16
	// ReportedThrough is the packet number below which UnackedBlocks is
	// complete: every PKT.SEQ < ReportedThrough that is not inside a listed
	// gap was received. The sender may release those segments even when
	// their acked blocks were crowded out of the budget.
	ReportedThrough uint64
	// AckedBlocks lists contiguous received PKT.SEQ ranges (newest first
	// priority when truncated).
	AckedBlocks []seqspace.Range
	// UnackedBlocks lists PKT.SEQ gaps believed lost (oldest first priority
	// when truncated).
	UnackedBlocks []seqspace.Range
	// StreamWindows carries per-stream flow-control advertisements for the
	// stream multiplexing layer, sorted by ascending stream ID. Each entry
	// raises the absolute byte limit the peer may send on that stream. The
	// sentinel ID InitialWindowID advertises the initial window granted to
	// streams the receiver has not seen yet (sent on the SYNACK).
	StreamWindows []StreamWindow
}

// StreamWindow is one per-stream flow-control advertisement inside an
// AckInfo: the sender of the referenced stream may transmit stream bytes
// with offsets strictly below Limit.
type StreamWindow struct {
	// ID is the stream identifier (or InitialWindowID for the default grant).
	ID uint32
	// Limit is the absolute per-stream byte offset the peer may send up to.
	Limit uint64
}

// InitialWindowID is the pseudo-stream ID whose StreamWindow entry
// advertises the initial flow-control window granted to every
// not-yet-advertised stream.
const InitialWindowID = ^uint32(0)

// Packet is one transport PDU.
type Packet struct {
	Type    Type
	ConnID  uint32
	PktSeq  uint64   // packet number; fresh for every transmission
	SentAt  sim.Time // departure timestamp (sender clock)
	IsProbe bool     // marks bandwidth-probe data (excluded from app goodput)

	// Data fields (TypeData, and initial-data-bearing SYN).
	Seq     uint64 // byte offset of Payload within the stream
	Payload []byte
	Retrans bool // retransmission flag (diagnostics only)
	FIN     bool // last segment of the stream

	// Stream-multiplexing fields (TypeData with HasStream set): the payload
	// is a STREAM frame carrying bytes [StreamOff, StreamOff+len(Payload))
	// of stream StreamID. The connection-level Seq space still covers the
	// bytes (flow ordering, CumAck, loss accounting are unchanged); the
	// stream fields only direct where the payload lands at the receiver.
	HasStream bool
	StreamID  uint32 // stream identifier
	StreamOff uint64 // byte offset of Payload within the stream
	StreamFIN bool   // last frame of stream StreamID
	// OldestPktSeq is the sender's oldest outstanding packet number: every
	// PKT.SEQ below it has either been acknowledged or superseded by a
	// retransmission, so the receiver may discard its loss-tracking state
	// below this floor (holes under it can never fill).
	OldestPktSeq uint64

	// Ack fields (TypeTACK, TypeIACK, TypeSYNACK, TypeFINACK).
	Ack      *AckInfo
	IACK     IACKKind
	RTTMinNS int64 // IACKRTTSync payload: sender's RTTmin estimate in ns
	// AckOldestPktSeq mirrors OldestPktSeq on sender-originated IACKs
	// (state sync, §4.4): it keeps the receiver's loss-state floor fresh
	// even when the data path is momentarily idle or window-starved.
	AckOldestPktSeq uint64

	// Token is the path-validation token (TypePathChallenge /
	// TypePathResponse): a crypto-random 8-byte value a PATH_RESPONSE must
	// echo verbatim from the challenged address to validate it.
	Token uint64

	// FEC fields. A stream-bearing DATA packet with HasFEC set is a source
	// symbol of FEC group FECGroup at position FECIndex; a TypeRepair packet
	// carries one repair symbol for that group in Payload, along with the
	// group geometry (FECGroupLen data symbols, FECRepairCount repair
	// symbols, FECScheme coding discipline) the receiver needs to decode
	// without per-stream configuration.
	HasFEC         bool
	FECGroup       uint32 // FEC group identifier (connection-scoped counter)
	FECIndex       uint8  // symbol position: data index in group, or repair index
	FECGroupLen    uint8  // TypeRepair: k, number of data symbols in the group
	FECRepairCount uint8  // TypeRepair: r, number of repair symbols for the group
	FECScheme      uint8  // TypeRepair: coding scheme (internal/fec Scheme values)

	// spareAck parks AckInfo storage across Reset/DecodeInto cycles while
	// the packet carries no feedback block, so a pooled Packet alternating
	// between data and ack datagrams stays allocation-free.
	spareAck *AckInfo
}

// Reset clears p for reuse while retaining its Payload, AckInfo, and
// ack-block storage, so a subsequent DecodeInto can decode without
// allocating.
func (p *Packet) Reset() {
	payload := p.Payload[:0]
	spare := p.Ack
	if spare == nil {
		spare = p.spareAck
	}
	if spare != nil {
		acked, unacked := spare.AckedBlocks[:0], spare.UnackedBlocks[:0]
		windows := spare.StreamWindows[:0]
		*spare = AckInfo{AckedBlocks: acked, UnackedBlocks: unacked, StreamWindows: windows}
	}
	*p = Packet{Payload: payload, spareAck: spare}
}

// overheadEthIPUDP approximates Ethernet + IPv4 + UDP framing so WireSize
// matches what the paper puts on air (64-byte ACKs, 1518-byte data frames).
const overheadEthIPUDP = 18 + 20 + 8

const commonHeaderLen = 1 + 1 + 4 + 8 + 8 // version, type, connid, pktseq, sentat

// ackFixedLen is the encoded size of AckInfo minus variable blocks (the
// trailing three bytes count acked blocks, unacked blocks, and stream
// windows).
const ackFixedLen = 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 2 + 1 + 1 + 1

// streamHeaderLen is the extra DATA-body length when HasStream is set
// (stream ID + stream offset).
const streamHeaderLen = 4 + 8

// streamWindowLen is the encoded size of one StreamWindow entry.
const streamWindowLen = 4 + 8

// fecTagLen is the extra DATA-body length when HasFEC is set (FEC group id
// + symbol index).
const fecTagLen = 4 + 1

// repairFixedLen is the fixed REPAIR-body length: group id, group length k,
// repair count r, repair index, scheme, payload length.
const repairFixedLen = 4 + 1 + 1 + 1 + 1 + 2

// EncodedLen returns the body+header length of the transport PDU in bytes
// (excluding Ethernet/IP/UDP framing).
func (p *Packet) EncodedLen() int {
	n := commonHeaderLen
	switch p.Type {
	case TypeData, TypeSYN:
		n += 8 + 8 + 2 + 1 + len(p.Payload) // seq, oldest, paylen, flags
		if p.HasStream {
			n += streamHeaderLen
		}
		if p.HasFEC {
			n += fecTagLen
		}
	case TypeTACK, TypeIACK, TypeSYNACK, TypeFINACK:
		n += 1 + 8 + 8 + 1 // iack kind, rttmin, oldest, has-ack marker
		if p.Ack != nil {
			n += ackFixedLen + 16*(len(p.Ack.AckedBlocks)+len(p.Ack.UnackedBlocks)) +
				streamWindowLen*len(p.Ack.StreamWindows)
		}
	case TypeFIN:
		n += 8 // final seq
	case TypePathChallenge, TypePathResponse:
		n += 8 // validation token
	case TypeRepair:
		n += repairFixedLen + len(p.Payload)
	}
	return n
}

// WireSize returns the full on-air frame size in bytes including layer-2/3/4
// framing; the MAC simulator charges airtime for this size.
func (p *Packet) WireSize() int { return p.EncodedLen() + overheadEthIPUDP }

// IsAck reports whether the packet carries acknowledgment feedback.
func (p *Packet) IsAck() bool {
	switch p.Type {
	case TypeTACK, TypeIACK, TypeSYNACK, TypeFINACK:
		return true
	}
	return false
}

// errTruncated is returned when a buffer is too short for the declared
// structure.
var errTruncated = errors.New("packet: truncated")

// Marshal encodes the packet to a freshly allocated wire-byte slice.
func (p *Packet) Marshal() []byte {
	return p.AppendMarshal(make([]byte, 0, p.EncodedLen()))
}

// AppendMarshal appends the packet's wire encoding to buf and returns the
// extended slice. It appends exactly EncodedLen bytes; a caller that
// provides that much spare capacity gets an allocation-free encode.
func (p *Packet) AppendMarshal(buf []byte) []byte {
	buf = append(buf, Version, byte(p.Type))
	buf = binary.BigEndian.AppendUint32(buf, p.ConnID)
	buf = binary.BigEndian.AppendUint64(buf, p.PktSeq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.SentAt))
	switch p.Type {
	case TypeData, TypeSYN:
		buf = binary.BigEndian.AppendUint64(buf, p.Seq)
		buf = binary.BigEndian.AppendUint64(buf, p.OldestPktSeq)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
		buf = append(buf, p.flags())
		if p.HasStream {
			buf = binary.BigEndian.AppendUint32(buf, p.StreamID)
			buf = binary.BigEndian.AppendUint64(buf, p.StreamOff)
		}
		if p.HasFEC {
			buf = binary.BigEndian.AppendUint32(buf, p.FECGroup)
			buf = append(buf, p.FECIndex)
		}
		buf = append(buf, p.Payload...)
	case TypeTACK, TypeIACK, TypeSYNACK, TypeFINACK:
		buf = append(buf, byte(p.IACK))
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.RTTMinNS))
		buf = binary.BigEndian.AppendUint64(buf, p.AckOldestPktSeq)
		if p.Ack == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			buf = p.Ack.marshal(buf)
		}
	case TypeFIN:
		buf = binary.BigEndian.AppendUint64(buf, p.Seq)
	case TypePathChallenge, TypePathResponse:
		buf = binary.BigEndian.AppendUint64(buf, p.Token)
	case TypeRepair:
		buf = binary.BigEndian.AppendUint32(buf, p.FECGroup)
		buf = append(buf, p.FECGroupLen, p.FECRepairCount, p.FECIndex, p.FECScheme)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
		buf = append(buf, p.Payload...)
	}
	return buf
}

func (p *Packet) flags() byte {
	var f byte
	if p.Retrans {
		f |= 1
	}
	if p.FIN {
		f |= 2
	}
	if p.IsProbe {
		f |= 4
	}
	if p.HasStream {
		f |= 8
	}
	if p.StreamFIN {
		f |= 16
	}
	if p.HasFEC {
		f |= 32
	}
	return f
}

func (a *AckInfo) marshal(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, a.CumAck)
	buf = binary.BigEndian.AppendUint64(buf, a.CumPktSeq)
	buf = binary.BigEndian.AppendUint64(buf, a.LargestPktSeq)
	buf = binary.BigEndian.AppendUint64(buf, a.AckSeq)
	buf = binary.BigEndian.AppendUint64(buf, a.Window)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.AckDelay))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.EchoDeparture))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.FirstEchoDeparture))
	buf = binary.BigEndian.AppendUint64(buf, a.DeliveryRate)
	buf = binary.BigEndian.AppendUint64(buf, a.ReportedThrough)
	buf = binary.BigEndian.AppendUint16(buf, a.LossRatePermille)
	buf = append(buf, byte(len(a.AckedBlocks)), byte(len(a.UnackedBlocks)), byte(len(a.StreamWindows)))
	for _, r := range a.AckedBlocks {
		buf = binary.BigEndian.AppendUint64(buf, r.Lo)
		buf = binary.BigEndian.AppendUint64(buf, r.Hi)
	}
	for _, r := range a.UnackedBlocks {
		buf = binary.BigEndian.AppendUint64(buf, r.Lo)
		buf = binary.BigEndian.AppendUint64(buf, r.Hi)
	}
	for _, w := range a.StreamWindows {
		buf = binary.BigEndian.AppendUint32(buf, w.ID)
		buf = binary.BigEndian.AppendUint64(buf, w.Limit)
	}
	return buf
}

// Unmarshal decodes a packet from wire bytes into a fresh Packet.
func Unmarshal(buf []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeInto(p, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto decodes a packet from wire bytes into the caller-owned p,
// reusing p's payload, AckInfo, and ack-block storage where capacity
// allows. The decoded packet owns copies of everything it references —
// buf may be reused immediately. On error p is left reset.
func DecodeInto(p *Packet, buf []byte) error {
	p.Reset()
	if len(buf) < commonHeaderLen {
		return errTruncated
	}
	if buf[0] != Version {
		return fmt.Errorf("packet: unknown version %d", buf[0])
	}
	p.Type = Type(buf[1])
	p.ConnID = binary.BigEndian.Uint32(buf[2:])
	p.PktSeq = binary.BigEndian.Uint64(buf[6:])
	p.SentAt = sim.Time(binary.BigEndian.Uint64(buf[14:]))
	body := buf[commonHeaderLen:]
	switch p.Type {
	case TypeData, TypeSYN:
		if len(body) < 19 {
			p.Reset()
			return errTruncated
		}
		p.Seq = binary.BigEndian.Uint64(body)
		p.OldestPktSeq = binary.BigEndian.Uint64(body[8:])
		plen := int(binary.BigEndian.Uint16(body[16:]))
		f := body[18]
		p.Retrans = f&1 != 0
		p.FIN = f&2 != 0
		p.IsProbe = f&4 != 0
		p.HasStream = f&8 != 0
		p.StreamFIN = f&16 != 0
		p.HasFEC = f&32 != 0
		body = body[19:]
		if p.HasStream {
			if len(body) < streamHeaderLen {
				p.Reset()
				return errTruncated
			}
			p.StreamID = binary.BigEndian.Uint32(body)
			p.StreamOff = binary.BigEndian.Uint64(body[4:])
			body = body[streamHeaderLen:]
		}
		if p.HasFEC {
			if len(body) < fecTagLen {
				p.Reset()
				return errTruncated
			}
			p.FECGroup = binary.BigEndian.Uint32(body)
			p.FECIndex = body[4]
			body = body[fecTagLen:]
		}
		if len(body) < plen {
			p.Reset()
			return errTruncated
		}
		p.Payload = append(p.Payload[:0], body[:plen]...)
	case TypeTACK, TypeIACK, TypeSYNACK, TypeFINACK:
		if len(body) < 18 {
			p.Reset()
			return errTruncated
		}
		p.IACK = IACKKind(body[0])
		p.RTTMinNS = int64(binary.BigEndian.Uint64(body[1:]))
		p.AckOldestPktSeq = binary.BigEndian.Uint64(body[9:])
		has := body[17]
		body = body[18:]
		if has == 1 {
			a := p.spareAck
			if a == nil {
				a = &AckInfo{}
			}
			if err := a.decodeInto(body); err != nil {
				p.Reset()
				return err
			}
			p.Ack, p.spareAck = a, nil
		}
	case TypeFIN:
		if len(body) < 8 {
			p.Reset()
			return errTruncated
		}
		p.Seq = binary.BigEndian.Uint64(body)
	case TypePathChallenge, TypePathResponse:
		if len(body) < 8 {
			p.Reset()
			return errTruncated
		}
		p.Token = binary.BigEndian.Uint64(body)
	case TypeRepair:
		if len(body) < repairFixedLen {
			p.Reset()
			return errTruncated
		}
		p.FECGroup = binary.BigEndian.Uint32(body)
		p.FECGroupLen = body[4]
		p.FECRepairCount = body[5]
		p.FECIndex = body[6]
		p.FECScheme = body[7]
		plen := int(binary.BigEndian.Uint16(body[8:]))
		body = body[repairFixedLen:]
		if len(body) < plen {
			p.Reset()
			return errTruncated
		}
		p.Payload = append(p.Payload[:0], body[:plen]...)
	default:
		err := fmt.Errorf("packet: unknown type %d", buf[1])
		p.Reset()
		return err
	}
	return nil
}

// decodeInto decodes a feedback block into a, reusing its block-slice
// capacity. a must arrive zeroed apart from retained storage (Reset does
// this).
func (a *AckInfo) decodeInto(body []byte) error {
	if len(body) < ackFixedLen {
		return errTruncated
	}
	a.CumAck = binary.BigEndian.Uint64(body)
	a.CumPktSeq = binary.BigEndian.Uint64(body[8:])
	a.LargestPktSeq = binary.BigEndian.Uint64(body[16:])
	a.AckSeq = binary.BigEndian.Uint64(body[24:])
	a.Window = binary.BigEndian.Uint64(body[32:])
	a.AckDelay = sim.Time(binary.BigEndian.Uint64(body[40:]))
	a.EchoDeparture = sim.Time(binary.BigEndian.Uint64(body[48:]))
	a.FirstEchoDeparture = sim.Time(binary.BigEndian.Uint64(body[56:]))
	a.DeliveryRate = binary.BigEndian.Uint64(body[64:])
	a.ReportedThrough = binary.BigEndian.Uint64(body[72:])
	a.LossRatePermille = binary.BigEndian.Uint16(body[80:])
	nAcked, nUnacked, nWindows := int(body[82]), int(body[83]), int(body[84])
	body = body[ackFixedLen:]
	if len(body) < 16*(nAcked+nUnacked)+streamWindowLen*nWindows {
		return errTruncated
	}
	for i := 0; i < nAcked; i++ {
		a.AckedBlocks = append(a.AckedBlocks, seqspace.Range{
			Lo: binary.BigEndian.Uint64(body),
			Hi: binary.BigEndian.Uint64(body[8:]),
		})
		body = body[16:]
	}
	for i := 0; i < nUnacked; i++ {
		a.UnackedBlocks = append(a.UnackedBlocks, seqspace.Range{
			Lo: binary.BigEndian.Uint64(body),
			Hi: binary.BigEndian.Uint64(body[8:]),
		})
		body = body[16:]
	}
	for i := 0; i < nWindows; i++ {
		a.StreamWindows = append(a.StreamWindows, StreamWindow{
			ID:    binary.BigEndian.Uint32(body),
			Limit: binary.BigEndian.Uint64(body[4:]),
		})
		body = body[streamWindowLen:]
	}
	return nil
}

// MaxBlocks returns how many 16-byte blocks fit in an ACK without the frame
// exceeding mss bytes on the wire; the TACK encoder truncates block lists to
// this budget (paper §5.1 "limited by MSS").
func MaxBlocks(mss int) int {
	budget := mss - commonHeaderLen - 10 - ackFixedLen - overheadEthIPUDP
	if budget < 0 {
		return 0
	}
	n := budget / 16
	if n > 255 {
		n = 255 // block counts are single bytes on the wire
	}
	return n
}

// errInsane is the base error for Sane failures.
var errInsane = errors.New("packet: insane field")

// Sane performs structural sanity validation on a decoded packet, catching
// in-flight corruption that survives DecodeInto's framing checks (a flipped
// bit in a count, sequence, or timestamp field still parses). It verifies
// internal consistency only — invariants any honest sender upholds — so a
// legitimate packet never fails, while a corrupted one is rejected before
// its fields can poison RTT estimation, loss accounting, or retransmission
// state. It deliberately is not a checksum: corruption confined to payload
// bytes is indistinguishable from valid data at this layer. Content
// integrity belongs to the framing around the codec — the endpoint wraps
// every datagram in a CRC32-C trailer, and the in-sim link drops corrupted
// frames outright (FCS semantics) — leaving Sane as the defense against
// hostile-but-well-framed input.
func (p *Packet) Sane() error {
	if p.SentAt < 0 {
		return fmt.Errorf("%w: negative departure timestamp", errInsane)
	}
	switch p.Type {
	case TypeData, TypeSYN:
		if p.Seq+uint64(len(p.Payload)) < p.Seq {
			return fmt.Errorf("%w: byte range wraps uint64", errInsane)
		}
		if p.HasStream && p.StreamOff+uint64(len(p.Payload)) < p.StreamOff {
			return fmt.Errorf("%w: stream byte range wraps uint64", errInsane)
		}
		if p.StreamFIN && !p.HasStream {
			return fmt.Errorf("%w: StreamFIN without stream frame", errInsane)
		}
		// FEC source symbols are always stream frames: recovery synthesizes
		// a STREAM frame, so a non-stream FEC tag is structurally bogus.
		if p.HasFEC && !p.HasStream {
			return fmt.Errorf("%w: FEC tag without stream frame", errInsane)
		}
		// The sender's oldest outstanding packet can never exceed the
		// packet number it just minted.
		if p.OldestPktSeq > p.PktSeq+1 {
			return fmt.Errorf("%w: OldestPktSeq %d beyond PktSeq %d", errInsane, p.OldestPktSeq, p.PktSeq)
		}
	case TypeTACK, TypeIACK, TypeSYNACK, TypeFINACK:
		if p.IACK > IACKKeepalive {
			return fmt.Errorf("%w: unknown IACK kind %d", errInsane, p.IACK)
		}
		if a := p.Ack; a != nil {
			if err := a.sane(); err != nil {
				return err
			}
		}
	case TypeRepair:
		// Honest encoders emit k≥1 data symbols, r≥1 repair symbols, a
		// repair index inside [0, r), and a group small enough for GF(2^8)
		// coding (k+r ≤ 255 distinct symbol coordinates).
		if p.FECGroupLen == 0 || p.FECRepairCount == 0 {
			return fmt.Errorf("%w: empty FEC group geometry k=%d r=%d", errInsane, p.FECGroupLen, p.FECRepairCount)
		}
		if p.FECIndex >= p.FECRepairCount {
			return fmt.Errorf("%w: repair index %d beyond repair count %d", errInsane, p.FECIndex, p.FECRepairCount)
		}
		if int(p.FECGroupLen)+int(p.FECRepairCount) > 255 {
			return fmt.Errorf("%w: FEC group k+r=%d exceeds GF(256) coordinates", errInsane, int(p.FECGroupLen)+int(p.FECRepairCount))
		}
		if p.FECScheme == 0 {
			return fmt.Errorf("%w: zero FEC scheme", errInsane)
		}
	}
	return nil
}

// sane validates the internal consistency of a feedback block.
func (a *AckInfo) sane() error {
	// The contiguous frontier and the completeness frontier can reach at
	// most one past the largest packet number seen.
	if a.CumPktSeq > a.LargestPktSeq+1 {
		return fmt.Errorf("%w: CumPktSeq %d beyond LargestPktSeq %d", errInsane, a.CumPktSeq, a.LargestPktSeq)
	}
	if a.ReportedThrough > a.LargestPktSeq+1 {
		return fmt.Errorf("%w: ReportedThrough %d beyond LargestPktSeq %d", errInsane, a.ReportedThrough, a.LargestPktSeq)
	}
	if a.AckDelay < 0 || a.EchoDeparture < 0 || a.FirstEchoDeparture < 0 {
		return fmt.Errorf("%w: negative timing field", errInsane)
	}
	if a.LossRatePermille > 1000 {
		return fmt.Errorf("%w: loss rate %d‰ exceeds 1000", errInsane, a.LossRatePermille)
	}
	for _, blocks := range [2][]seqspace.Range{a.AckedBlocks, a.UnackedBlocks} {
		prev := uint64(0)
		for _, r := range blocks {
			if r.Hi <= r.Lo {
				return fmt.Errorf("%w: empty/inverted block %v", errInsane, r)
			}
			if r.Lo < prev {
				return fmt.Errorf("%w: blocks out of order at %v", errInsane, r)
			}
			if r.Hi > a.LargestPktSeq+1 {
				return fmt.Errorf("%w: block %v beyond LargestPktSeq %d", errInsane, r, a.LargestPktSeq)
			}
			prev = r.Hi
		}
	}
	// Honest encoders emit stream windows sorted by ascending stream ID
	// (the InitialWindowID sentinel, being the maximum, sorts last), with
	// no duplicates.
	for i, w := range a.StreamWindows {
		if i > 0 && w.ID <= a.StreamWindows[i-1].ID {
			return fmt.Errorf("%w: stream windows out of order at id %d", errInsane, w.ID)
		}
	}
	return nil
}
