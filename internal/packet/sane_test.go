package packet

import (
	"testing"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

func saneAck() *AckInfo {
	return &AckInfo{
		CumAck: 4096, CumPktSeq: 10, LargestPktSeq: 20, AckSeq: 7,
		Window: 1 << 20, AckDelay: 3 * sim.Millisecond,
		EchoDeparture: 40 * sim.Millisecond, FirstEchoDeparture: 38 * sim.Millisecond,
		DeliveryRate: 12e6, LossRatePermille: 15, ReportedThrough: 18,
		AckedBlocks:   []seqspace.Range{{Lo: 0, Hi: 11}, {Lo: 14, Hi: 21}},
		UnackedBlocks: []seqspace.Range{{Lo: 11, Hi: 14}},
	}
}

func TestSaneAcceptsHonestPackets(t *testing.T) {
	pkts := []Packet{
		{Type: TypeSYN, ConnID: 1, PktSeq: 0, Payload: []byte("hi")},
		{Type: TypeSYNACK, ConnID: 1, PktSeq: 0, Ack: &AckInfo{Window: 1 << 20}},
		{Type: TypeData, ConnID: 1, PktSeq: 9, Seq: 4096, Payload: make([]byte, 1400), OldestPktSeq: 10},
		{Type: TypeTACK, ConnID: 1, PktSeq: 3, Ack: saneAck()},
		{Type: TypeIACK, ConnID: 1, PktSeq: 4, IACK: IACKLoss, Ack: saneAck()},
		{Type: TypeIACK, ConnID: 1, PktSeq: 5, IACK: IACKRTTSync, RTTMinNS: 1e7},
		{Type: TypeFIN, ConnID: 1, PktSeq: 6, Seq: 1 << 30},
		{Type: TypeFINACK, ConnID: 1, PktSeq: 7, Ack: saneAck()},
	}
	for _, p := range pkts {
		if err := p.Sane(); err != nil {
			t.Errorf("%v: honest packet rejected: %v", p.Type, err)
		}
		// And after a wire round trip.
		var dec Packet
		if err := DecodeInto(&dec, p.Marshal()); err != nil {
			t.Fatalf("%v: decode: %v", p.Type, err)
		}
		if err := dec.Sane(); err != nil {
			t.Errorf("%v: round-tripped packet rejected: %v", p.Type, err)
		}
	}
}

func TestSaneRejectsCorruptFields(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Packet)
	}{
		{"negative SentAt", func(p *Packet) { p.SentAt = -1 }},
		{"byte range wrap", func(p *Packet) { p.Type = TypeData; p.Ack = nil; p.Seq = ^uint64(0) - 10; p.Payload = make([]byte, 100) }},
		{"oldest beyond pktseq", func(p *Packet) { p.Type = TypeData; p.Ack = nil; p.PktSeq = 5; p.OldestPktSeq = 1000 }},
		{"bogus IACK kind", func(p *Packet) { p.IACK = 99 }},
		{"cum beyond largest", func(p *Packet) { p.Ack.CumPktSeq = p.Ack.LargestPktSeq + 2 }},
		{"reported beyond largest", func(p *Packet) { p.Ack.ReportedThrough = p.Ack.LargestPktSeq + 2 }},
		{"negative ack delay", func(p *Packet) { p.Ack.AckDelay = -sim.Millisecond }},
		{"loss rate over 1000", func(p *Packet) { p.Ack.LossRatePermille = 1001 }},
		{"inverted block", func(p *Packet) { p.Ack.AckedBlocks[0] = seqspace.Range{Lo: 9, Hi: 3} }},
		{"out-of-order blocks", func(p *Packet) { p.Ack.AckedBlocks[0], p.Ack.AckedBlocks[1] = p.Ack.AckedBlocks[1], p.Ack.AckedBlocks[0] }},
		{"block beyond largest", func(p *Packet) { p.Ack.UnackedBlocks[0].Hi = p.Ack.LargestPktSeq + 5 }},
	}
	for _, tc := range cases {
		p := Packet{Type: TypeTACK, ConnID: 1, PktSeq: 3, Ack: saneAck()}
		tc.mut(&p)
		if err := p.Sane(); err == nil {
			t.Errorf("%s: corrupt packet accepted", tc.name)
		}
	}
}
