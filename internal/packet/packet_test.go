package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

func TestDataRoundTrip(t *testing.T) {
	p := &Packet{
		Type:    TypeData,
		ConnID:  7,
		PktSeq:  42,
		SentAt:  123 * sim.Millisecond,
		Seq:     1500,
		Payload: bytes.Repeat([]byte{0xAB}, 1460),
		Retrans: true,
		FIN:     true,
		IsProbe: true,
	}
	buf := p.Marshal()
	if len(buf) != p.EncodedLen() {
		t.Fatalf("EncodedLen = %d, marshal produced %d", p.EncodedLen(), len(buf))
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestTACKRoundTrip(t *testing.T) {
	p := &Packet{
		Type:   TypeTACK,
		ConnID: 9,
		PktSeq: 100,
		SentAt: sim.Second,
		Ack: &AckInfo{
			CumAck:           99999,
			CumPktSeq:        88,
			LargestPktSeq:    120,
			AckSeq:           17,
			Window:           1 << 20,
			AckDelay:         3 * sim.Millisecond,
			EchoDeparture:    990 * sim.Millisecond,
			DeliveryRate:     200e6,
			LossRatePermille: 12,
			AckedBlocks:      []seqspace.Range{{Lo: 1, Hi: 2}, {Lo: 4, Hi: 7}, {Lo: 10, Hi: 11}},
			UnackedBlocks:    []seqspace.Range{{Lo: 2, Hi: 4}, {Lo: 7, Hi: 10}},
		},
	}
	buf := p.Marshal()
	if len(buf) != p.EncodedLen() {
		t.Fatalf("EncodedLen = %d, marshal produced %d", p.EncodedLen(), len(buf))
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestIACKRoundTrip(t *testing.T) {
	p := &Packet{
		Type:     TypeIACK,
		ConnID:   1,
		PktSeq:   5,
		IACK:     IACKRTTSync,
		RTTMinNS: 12345678,
		Ack:      &AckInfo{CumAck: 10, UnackedBlocks: []seqspace.Range{{Lo: 3, Hi: 5}}},
	}
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestControlRoundTrips(t *testing.T) {
	for _, p := range []*Packet{
		{Type: TypeSYN, ConnID: 3, PktSeq: 0, Seq: 0},
		{Type: TypeSYNACK, ConnID: 3, PktSeq: 0, IACK: IACKHandshake},
		{Type: TypeFIN, ConnID: 3, PktSeq: 9, Seq: 4096},
		{Type: TypeFINACK, ConnID: 3, PktSeq: 2, Ack: &AckInfo{CumAck: 4096}},
	} {
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", p.Type, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%v round trip mismatch:\n p=%+v\n q=%+v", p.Type, p, q)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil buffer should fail")
	}
	if _, err := Unmarshal([]byte{99, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad version should fail")
	}
	p := &Packet{Type: TypeData, Payload: []byte("hello")}
	buf := p.Marshal()
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[1] = 200 // unknown type
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestWireSizeMatchesPaperScale(t *testing.T) {
	// A full-sized data packet should be close to the paper's 1518-byte
	// frame; a minimal ACK close to its 64-byte frame.
	data := &Packet{Type: TypeData, Payload: make([]byte, 1400)}
	if s := data.WireSize(); s < 1400+46 || s > 1518 {
		t.Fatalf("data wire size = %d, want within [1446,1518]", s)
	}
	ack := &Packet{Type: TypeIACK, IACK: IACKKeepalive}
	if s := ack.WireSize(); s < 64 || s > 128 {
		t.Fatalf("bare ack wire size = %d, want small (64..128)", s)
	}
}

func TestIsAck(t *testing.T) {
	for typ, want := range map[Type]bool{
		TypeData: false, TypeSYN: false, TypeFIN: false,
		TypeTACK: true, TypeIACK: true, TypeSYNACK: true, TypeFINACK: true,
	} {
		if got := (&Packet{Type: typ}).IsAck(); got != want {
			t.Errorf("IsAck(%v) = %v, want %v", typ, got, want)
		}
	}
}

func TestMaxBlocks(t *testing.T) {
	n := MaxBlocks(1500)
	if n < 60 || n > 100 {
		t.Fatalf("MaxBlocks(1500) = %d, want roughly 80", n)
	}
	if MaxBlocks(0) != 0 {
		t.Fatal("MaxBlocks(0) should be 0")
	}
	if MaxBlocks(1<<20) != 255 {
		t.Fatal("MaxBlocks should clamp at 255 (single-byte count)")
	}
}

func TestTypeAndKindStrings(t *testing.T) {
	if TypeTACK.String() != "TACK" || TypeData.String() != "DATA" {
		t.Fatal("Type.String broken")
	}
	if Type(99).String() == "" || IACKKind(99).String() == "" {
		t.Fatal("unknown values must still format")
	}
	if IACKLoss.String() != "loss" {
		t.Fatal("IACKKind.String broken")
	}
}

// Property: any randomly populated TACK survives a marshal/unmarshal cycle.
func TestQuickTACKRoundTrip(t *testing.T) {
	f := func(cum, largest, wnd uint64, delayNS int64, nAcked, nUnacked uint8, lossPm uint16) bool {
		a := &AckInfo{
			CumAck: cum, LargestPktSeq: largest, Window: wnd,
			AckDelay:         sim.Time(delayNS & 0x7fffffffffffffff),
			LossRatePermille: lossPm,
		}
		for i := 0; i < int(nAcked%40); i++ {
			a.AckedBlocks = append(a.AckedBlocks, seqspace.Range{Lo: uint64(i * 10), Hi: uint64(i*10 + 3)})
		}
		for i := 0; i < int(nUnacked%40); i++ {
			a.UnackedBlocks = append(a.UnackedBlocks, seqspace.Range{Lo: uint64(i*10 + 3), Hi: uint64(i*10 + 7)})
		}
		p := &Packet{Type: TypeTACK, ConnID: 1, PktSeq: largest, Ack: a}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, q)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary bytes.
func TestQuickUnmarshalNoPanic(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Unmarshal(raw)
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalData(b *testing.B) {
	p := &Packet{Type: TypeData, Payload: make([]byte, 1400), Seq: 1 << 30, PktSeq: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkUnmarshalTACK(b *testing.B) {
	a := &AckInfo{CumAck: 1 << 40}
	for i := 0; i < 32; i++ {
		a.AckedBlocks = append(a.AckedBlocks, seqspace.Range{Lo: uint64(i * 4), Hi: uint64(i*4 + 2)})
	}
	buf := (&Packet{Type: TypeTACK, Ack: a}).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
